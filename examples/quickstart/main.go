// Quickstart: multiply two 16x16 matrices on a 4-PE partition of the
// simulated PASM prototype in SIMD mode, verify the product, and print
// the timing — the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/matmul"
	"repro/internal/pasm"
)

func main() {
	// The machine: the 16-PE, 4-MC prototype with its 8 MHz MC68000s,
	// Fetch Unit queues, and Extra-Stage Cube network.
	cfg := pasm.DefaultConfig()

	// The workload: C = A x B on a 4-PE partition, SIMD mode. A is the
	// identity (the multiplicand never affects MC68000 multiply
	// timing), B is uniform random 16-bit data — the paper's protocol.
	spec := matmul.Spec{N: 16, P: 4, Muls: 1, Mode: matmul.SIMD}
	a := matmul.Identity(spec.N)
	b := matmul.Random(spec.N, 42)

	res, c, err := matmul.Execute(cfg, spec, a, b)
	if err != nil {
		log.Fatal(err)
	}
	if !matmul.Equal(c, matmul.Reference(a, b)) {
		log.Fatal("wrong product")
	}

	fmt.Printf("C = A x B, n=%d, p=%d, %s mode\n", spec.N, spec.P, spec.Mode)
	fmt.Printf("  %d cycles = %.2f ms at %.0f MHz\n",
		res.Cycles, 1e3*res.Seconds(cfg), cfg.ClockHz/1e6)
	fmt.Printf("  %d PE instructions, %d MC instructions\n", res.Instrs, res.MCInstrs)
	fmt.Printf("  %d network bytes moved through the Extra-Stage Cube\n", res.NetTransfers)
	fmt.Printf("  PEs starved for instructions for %d cycles (control flow hidden)\n", res.PEStarveCycles)
	fmt.Printf("  MCs throttled by queue back-pressure for %d cycles\n", res.MCStallCycles)
	fmt.Println("  product verified against the host reference")
}
