// Service example: start an in-process pasmd (the same service the
// daemon wraps), submit experiment specs through the Go client, and
// show the three serving regimes — cold miss, request coalescing, and
// cache hit — plus the metrics that expose them.
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	// An in-process server; in production this is `pasmd -addr ...`.
	opts := experiments.DefaultOptions()
	opts.Parallelism = 2
	svc := service.New(service.Config{QueueDepth: 16, Workers: 1, Options: opts})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cl := client.New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// 1. Cold miss: the spec has never been seen, so a worker runs the
	// full Table-1 simulation.
	spec := experiments.Spec{Exps: []string{"table1"}, Seed: 1988}
	t0 := time.Now()
	raw, st, err := cl.Run(ctx, spec, client.SubmitOptions{Wait: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold miss:  job %s %s in %v (%d bytes)\n", st.ID, st.State, time.Since(t0).Round(time.Millisecond), len(raw))

	// The document is the same v2 schema pasmbench -json writes.
	var rep experiments.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("            schema %s, %d experiment(s), %d summary keys\n",
		rep.Schema, len(rep.Experiments), len(rep.Experiments[0].Summary))

	// 2. Coalescing: identical specs submitted while one is in flight
	// share a single execution — all goroutines get the same job ID.
	slow := experiments.Spec{
		Cells: []experiments.CellSpec{{N: 128, P: 4, Muls: 2, Mode: "mimd"}},
		Seed:  7,
	}
	var wg sync.WaitGroup
	ids := make([]string, 4)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, st, err := cl.Run(ctx, slow, client.SubmitOptions{Wait: 60 * time.Second})
			if err != nil {
				log.Fatal(err)
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	fmt.Printf("coalesced:  4 concurrent submits -> job IDs %v\n", ids)

	// 3. Cache hit: resubmitting a finished spec never re-simulates.
	t0 = time.Now()
	_, st, err = cl.Run(ctx, spec, client.SubmitOptions{Wait: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache hit:  job %s cached=%v in %v\n", st.ID, st.Cached, time.Since(t0).Round(time.Microsecond))

	// The counters tell the same story.
	m, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics:    submitted=%v coalesced=%v served_from_cache=%v cache hits=%v misses=%v\n",
		m["service/submitted"], m["service/coalesced"], m["service/served_from_cache"],
		m["cache/hits"], m["cache/misses"])
}
