// Partitions: PASM's defining feature — the machine dynamically
// partitioned into independent virtual SIMD and/or MIMD machines.
// Three jobs share one 16-PE machine (and its single shared
// Extra-Stage Cube) simultaneously: an 8-PE SIMD matrix
// multiplication, a 4-PE S/MIMD one, and a serial baseline on a
// single PE. The buddy allocator places each job on an aligned
// subcube, each partition routes through its own subcube view of the
// shared network, and their timings are identical to solo runs.
package main

import (
	"fmt"
	"log"

	"repro/internal/matmul"
	"repro/internal/partition"
	"repro/internal/pasm"
)

func matmulJob(name string, spec matmul.Spec, seed uint32) partition.Job {
	return partition.Job{
		Name: name,
		PEs:  maxInt(spec.P, 1),
		Run: func(vm *pasm.VM) (pasm.RunResult, error) {
			prog, l, err := matmul.Build(spec)
			if err != nil {
				return pasm.RunResult{}, err
			}
			a := matmul.Identity(spec.N)
			b := matmul.Random(spec.N, seed)
			if err := vm.EstablishShift(); err != nil {
				return pasm.RunResult{}, err
			}
			if err := matmul.Load(vm, l, a, b); err != nil {
				return pasm.RunResult{}, err
			}
			var res pasm.RunResult
			if spec.Mode == matmul.SIMD {
				res, err = vm.RunSIMD(prog)
			} else {
				res, err = vm.RunMIMD(prog)
			}
			if err != nil {
				return pasm.RunResult{}, err
			}
			c, err := matmul.ReadC(vm, l)
			if err != nil {
				return pasm.RunResult{}, err
			}
			if !matmul.Equal(c, b) {
				return pasm.RunResult{}, fmt.Errorf("%s computed a wrong product", name)
			}
			return res, nil
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func main() {
	cfg := pasm.DefaultConfig()
	machine, err := partition.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	jobs := []partition.Job{
		matmulJob("SIMD matmul n=32", matmul.Spec{N: 32, P: 8, Muls: 1, Mode: matmul.SIMD}, 1),
		matmulJob("S/MIMD matmul n=16", matmul.Spec{N: 16, P: 4, Muls: 1, Mode: matmul.SMIMD}, 2),
		matmulJob("serial matmul n=16", matmul.Spec{N: 16, Muls: 1, Mode: matmul.Serial}, 3),
	}
	fmt.Printf("running %d jobs concurrently on one %d-PE machine\n\n", len(jobs), machine.PEs())
	results, err := machine.RunJobs(jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %5s %12s %12s\n", "job", "PEs", "cycles", "seconds")
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Name, r.Err)
		}
		fmt.Printf("%-22s %2d..%-2d %12d %12.4f\n",
			r.Name, r.Base, r.Base+len(r.Result.PEClocks)-1,
			r.Result.Cycles, r.Result.Seconds(cfg))
	}

	met := machine.Metrics("")
	fmt.Printf("\nall products verified; machine back to %.0f free PEs (peak occupancy %.0f)\n",
		met["pes_free"], met["pes_busy_peak"])
}
