// Partitions: PASM's defining feature — the machine dynamically
// partitioned into independent virtual SIMD and/or MIMD machines.
// Three jobs share the 16-PE machine simultaneously: an 8-PE SIMD
// matrix multiplication, a 4-PE S/MIMD one, and a serial baseline on a
// single PE. Each partition has its own Micro Controllers, Fetch
// Units, and network circuits; their timings are identical to solo
// runs because established circuits never interfere.
package main

import (
	"fmt"
	"log"

	"repro/internal/matmul"
	"repro/internal/pasm"
)

func matmulJob(name string, spec matmul.Spec, seed uint32) pasm.Job {
	return pasm.Job{
		Name: name,
		P:    maxInt(spec.P, 1),
		Run: func(vm *pasm.VM) (pasm.RunResult, error) {
			prog, l, err := matmul.Build(spec)
			if err != nil {
				return pasm.RunResult{}, err
			}
			a := matmul.Identity(spec.N)
			b := matmul.Random(spec.N, seed)
			if err := vm.EstablishShift(); err != nil {
				return pasm.RunResult{}, err
			}
			if err := matmul.Load(vm, l, a, b); err != nil {
				return pasm.RunResult{}, err
			}
			var res pasm.RunResult
			if spec.Mode == matmul.SIMD {
				res, err = vm.RunSIMD(prog)
			} else {
				res, err = vm.RunMIMD(prog)
			}
			if err != nil {
				return pasm.RunResult{}, err
			}
			c, err := matmul.ReadC(vm, l)
			if err != nil {
				return pasm.RunResult{}, err
			}
			if !matmul.Equal(c, b) {
				return pasm.RunResult{}, fmt.Errorf("%s computed a wrong product", name)
			}
			return res, nil
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func main() {
	cfg := pasm.DefaultConfig()
	sys, err := pasm.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	jobs := []pasm.Job{
		matmulJob("SIMD matmul n=32", matmul.Spec{N: 32, P: 8, Muls: 1, Mode: matmul.SIMD}, 1),
		matmulJob("S/MIMD matmul n=16", matmul.Spec{N: 16, P: 4, Muls: 1, Mode: matmul.SMIMD}, 2),
		matmulJob("serial matmul n=16", matmul.Spec{N: 16, Muls: 1, Mode: matmul.Serial}, 3),
	}
	fmt.Printf("running %d jobs concurrently on one %d-PE machine\n\n", len(jobs), cfg.NumPEs)
	results, err := sys.RunJobs(jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %5s %12s %12s\n", "job", "PEs", "cycles", "seconds")
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Name, r.Err)
		}
		fmt.Printf("%-22s %2d..%-2d %12d %12.4f\n",
			r.Name, r.Base, r.Base+len(r.Result.PEClocks)-1,
			r.Result.Cycles, r.Result.Seconds(cfg))
	}
	fmt.Printf("\nall products verified; machine back to %d free PEs\n", sys.FreePEs())
}
