// Decoupling: the paper's central experiment (Figure 7). The MC68000
// multiply takes 38 + 2*ones(multiplier) cycles — data dependent. In
// SIMD lockstep every broadcast instruction costs the worst case
// across the PEs; decoupled into asynchronous MIMD streams, each PE
// pays only its own times. This program sweeps the number of
// inner-loop multiplies at n=64, p=4 and locates the granularity at
// which decoupling starts to win — approximately fourteen multiplies,
// as in the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/matmul"
	"repro/internal/pasm"
	"repro/internal/stats"
)

func main() {
	cfg := pasm.DefaultConfig()
	const n, p = 64, 4
	a := matmul.Identity(n)
	b := matmul.Random(n, 7)

	fmt.Printf("SIMD vs S/MIMD, n=%d, p=%d, sweeping inner-loop multiplies\n\n", n, p)
	fmt.Printf("%5s %12s %12s   winner\n", "muls", "SIMD", "S/MIMD")

	var xs []int
	var simd, smimd []int64
	for _, m := range []int{1, 5, 10, 13, 14, 15, 20, 30} {
		rs, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: m, Mode: matmul.SIMD}, a, b)
		if err != nil {
			log.Fatal(err)
		}
		rh, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: m, Mode: matmul.SMIMD}, a, b)
		if err != nil {
			log.Fatal(err)
		}
		winner := "SIMD"
		if rh.Cycles < rs.Cycles {
			winner = "S/MIMD"
		}
		fmt.Printf("%5d %12d %12d   %s\n", m, rs.Cycles, rh.Cycles, winner)
		xs = append(xs, m)
		simd = append(simd, rs.Cycles)
		smimd = append(smimd, rh.Cycles)
	}

	fmt.Printf("\ncrossover at about %.1f multiplies per inner loop (paper: ~14)\n",
		stats.Crossover(xs, simd, smimd))
	fmt.Println("\nWhy: each asynchronous multiply saves E[max over p PEs] - E[own]")
	fmt.Println("cycles of lockstep worst-case charging, but S/MIMD pays DRAM fetch")
	fmt.Println("wait states and loses the MC control-flow overlap; the savings only")
	fmt.Println("accumulate past the fixed per-iteration SIMD advantage at ~14 multiplies.")
}
