// Reduce: global sum-of-squares by recursive doubling over the cube
// network. Each of the log2(p) combining steps reconfigures the
// circuit-switched Extra-Stage Cube to a different cube_k permutation
// at run time, and the local squaring phase has data-dependent MULU
// times — the paper's lockstep-vs-decoupled tradeoff in a third
// algorithmic shape. When it finishes, every PE holds the global sum
// (an all-reduce).
package main

import (
	"fmt"
	"log"

	"repro/internal/pasm"
	"repro/internal/reduce"
	"repro/internal/stats"
)

func main() {
	cfg := pasm.DefaultConfig()
	const n = 4096
	v := reduce.RandomVector(n, 31)
	want := reduce.Reference(v)

	serial, sums, err := reduce.Execute(cfg, reduce.Spec{N: n, Mode: reduce.Serial}, v)
	if err != nil {
		log.Fatal(err)
	}
	if sums[0] != want {
		log.Fatal("serial sum wrong")
	}

	fmt.Printf("sum of squares of %d values (answer %d on every PE)\n\n", n, want)
	fmt.Printf("%5s %-8s %12s %10s %10s %10s\n", "p", "mode", "cycles", "speedup", "exchanges", "reconfigs")
	fmt.Printf("%5d %-8s %12d %10s %10s %10s\n", 1, "SISD", serial.Cycles, "1.00", "-", "-")
	for _, p := range []int{4, 16} {
		for _, mode := range []reduce.Mode{reduce.SIMD, reduce.MIMD, reduce.SMIMD} {
			res, sums, err := reduce.Execute(cfg, reduce.Spec{N: n, P: p, Mode: mode}, v)
			if err != nil {
				log.Fatalf("%s p=%d: %v", mode, p, err)
			}
			for i, s := range sums {
				if s != want {
					log.Fatalf("%s p=%d: PE %d sum %d != %d", mode, p, i, s, want)
				}
			}
			fmt.Printf("%5d %-8s %12d %10.2f %10d %10d\n",
				p, mode, res.Cycles,
				stats.Speedup(serial.Cycles, res.Cycles),
				res.NetTransfers/2, res.NetReconfigs)
		}
	}
	fmt.Println("\neach PE reconfigures its circuit log2(p) times — a different cube_k")
	fmt.Println("permutation per combining step — and every PE ends with the answer.")
}
