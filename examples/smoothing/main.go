// Smoothing: image processing — the application domain PASM was built
// for — on the simulated prototype. A 3x3 mean filter runs over a
// 32x32 image of 8-bit pixels distributed as row strips across 4 PEs,
// in all four program variants. The halo-row exchange reconfigures the
// circuit-switched network at run time (up-shift circuits, then
// down-shift circuits), and the kernel's DIVU has quotient-dependent
// timing, so the paper's SIMD-vs-decoupled question carries over to
// this domain.
package main

import (
	"fmt"
	"log"

	"repro/internal/pasm"
	"repro/internal/smoothing"
)

func main() {
	cfg := pasm.DefaultConfig()
	const h, w, p = 32, 32, 4
	img := smoothing.RandomImage(h, w, 2024)
	want := smoothing.Reference(img)

	fmt.Printf("3x3 mean filter, %dx%d image, p=%d\n\n", h, w, p)
	fmt.Printf("%-8s %12s %10s %12s %10s\n", "mode", "cycles", "ms @8MHz", "net bytes", "reconfigs")
	for _, mode := range []smoothing.Mode{smoothing.Serial, smoothing.SIMD, smoothing.MIMD, smoothing.SMIMD} {
		res, out, err := smoothing.Execute(cfg, smoothing.Spec{H: h, W: w, P: p, Mode: mode}, img)
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		if !smoothing.Equal(out, want) {
			log.Fatalf("%s: wrong image", mode)
		}
		fmt.Printf("%-8s %12d %10.2f %12d %10d\n",
			mode, res.Cycles, 1e3*res.Seconds(cfg), res.NetTransfers, res.NetReconfigs)
	}
	fmt.Println("\nall outputs verified against the host reference; the MIMD variants")
	fmt.Println("establish their own circuits at run time (2 per PE), and the pure-MIMD")
	fmt.Println("phase ordering rides on the network's destination-in-use blocking.")
}
