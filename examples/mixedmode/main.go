// Mixedmode: the architecture feature the paper proposes — decoupling
// small grains of variable execution-time operations from SIMD
// sections into asynchronous MIMD bursts — implemented literally: a
// broadcast jump switches the PEs to asynchronous execution from their
// own memories, and a jump into the SIMD instruction space rejoins the
// lockstep stream (paper Section 3's mode-switch mechanism).
//
// The measured result sharpens the paper's granularity question: on
// the matrix multiplication, per-element bursts NEVER beat pure SIMD,
// no matter how many multiplies they contain, because each burst
// reuses a single multiplier — its timing variation is perfectly
// correlated, so the rejoin barrier pays exactly the lockstep maximum
// and the mode switches are pure overhead. S/MIMD overtakes SIMD at
// ~14 multiplies only because its synchronization interval spans n/p
// INDEPENDENT multipliers. Decoupling pays per independent
// variable-time draw, not per decoupled instruction.
package main

import (
	"fmt"
	"log"

	"repro/internal/matmul"
	"repro/internal/pasm"
)

func main() {
	cfg := pasm.DefaultConfig()
	const n, p = 64, 4
	a := matmul.Identity(n)
	b := matmul.Random(n, 1988)

	fmt.Printf("matrix multiplication n=%d, p=%d: pure SIMD vs per-element\n", n, p)
	fmt.Printf("mixed-mode bursts vs whole-program S/MIMD decoupling\n\n")
	fmt.Printf("%5s %12s %12s %12s %12s %12s\n", "muls", "SIMD", "Mixed", "S/MIMD", "Mixed/SIMD", "S-M/SIMD")
	for _, m := range []int{1, 5, 14, 30} {
		var cyc [3]int64
		for i, mode := range []matmul.Mode{matmul.SIMD, matmul.Mixed, matmul.SMIMD} {
			res, c, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: m, Mode: mode}, a, b)
			if err != nil {
				log.Fatalf("%s muls=%d: %v", mode, m, err)
			}
			if !matmul.Equal(c, b) { // identity A
				log.Fatalf("%s muls=%d: wrong product", mode, m)
			}
			cyc[i] = res.Cycles
		}
		fmt.Printf("%5d %12d %12d %12d %12.4f %12.4f\n",
			m, cyc[0], cyc[1], cyc[2],
			float64(cyc[1])/float64(cyc[0]), float64(cyc[2])/float64(cyc[0]))
	}
	fmt.Println("\nMixed approaches SIMD from above but never crosses (correlated bursts);")
	fmt.Println("S/MIMD crosses near 14 multiplies (independent draws per sync interval).")
}
