// Barrier: the Fetch-Unit barrier synchronization trick of paper
// Section 3, driven directly through the pasm API with hand-written
// assembly. Each PE does a different amount of work, then reads a word
// from the SIMD instruction space; the Fetch Unit releases the word
// only when every PE of the partition has requested one, so the read
// doubles as a hardware barrier for MIMD programs. The program then
// uses the barrier to do a polling-free network ring exchange, exactly
// as the S/MIMD matrix multiplication does.
package main

import (
	"fmt"
	"log"

	"repro/internal/m68k"
	"repro/internal/pasm"
)

const src = `
	; Per-PE program: spin for mem[$100] iterations, barrier, then
	; send mem[$102]'s low byte around the ring without any polling.
	movea.l	#$F10000, a0	; network transmit register
	movea.l	#$F00000, a1	; SIMD space: barrier on read
	move.w	$100, d0	; skew: per-PE busy-work count
spin:	dbra	d0, spin
	move.w	(a1), d7	; BARRIER: all PEs aligned here
	move.w	$102, d1
	move.b	d1, (a0)	; safe: every buffer is free
	move.w	(a1), d7	; BARRIER: all data in flight
	move.b	2(a0), d2	; safe: every buffer is full
	move.w	d2, $104
	halt
`

func main() {
	cfg := pasm.DefaultConfig()
	cfg.PEMemBytes = 1 << 16
	const p = 4
	vm, err := pasm.NewVM(cfg, p)
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.EstablishShift(); err != nil { // PE i -> PE (i-1) mod p
		log.Fatal(err)
	}

	prog, err := m68k.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	skews := []uint16{50, 4000, 700, 1500} // very unequal arrival times
	for i, pe := range vm.PEs {
		if err := pe.Mem.WriteWords(0x100, []uint16{skews[i], uint16(100 + i)}); err != nil {
			log.Fatal(err)
		}
	}

	res, err := vm.RunMIMD(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d PEs, skews %v iterations, %d barrier rounds\n\n", p, skews, res.BarrierRounds)
	fmt.Printf("%3s %10s %12s %10s\n", "PE", "sent", "received", "finish")
	for i, pe := range vm.PEs {
		got, _ := pe.Mem.Read(0x104, m68k.Word)
		want := 100 + (i+1)%p
		status := "ok"
		if got != uint32(want) {
			status = fmt.Sprintf("WRONG (want %d)", want)
		}
		fmt.Printf("%3d %10d %12d %10d  %s\n", i, 100+i, got, res.PEClocks[i], status)
	}
	fmt.Println("\nEvery PE finishes at (or just after) the slowest PE's barrier")
	fmt.Println("arrival: the barrier equalized the skew, and the transfers needed")
	fmt.Println("no status polling — the paper's S/MIMD communication protocol.")
}
