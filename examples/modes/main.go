// Modes: run the same matrix multiplication in all four of the paper's
// program variants — optimized serial (SISD), lockstep SIMD,
// asynchronous MIMD with network polling, and hybrid S/MIMD with
// Fetch-Unit barriers — across several problem sizes, and show the
// tradeoffs of Figure 6: SIMD fastest at one multiply per inner loop,
// the parallel versions about a factor p over serial, and the MIMD
// variants closing on SIMD as n grows.
package main

import (
	"fmt"
	"log"

	"repro/internal/matmul"
	"repro/internal/pasm"
	"repro/internal/stats"
)

func main() {
	cfg := pasm.DefaultConfig()
	const p = 4
	modes := []matmul.Mode{matmul.Serial, matmul.SIMD, matmul.MIMD, matmul.SMIMD}

	fmt.Printf("matrix multiplication, p=%d, one multiply per inner loop\n\n", p)
	fmt.Printf("%5s %12s %12s %12s %12s %10s\n", "n", "SISD", "SIMD", "MIMD", "S/MIMD", "SIMD eff.")
	for _, n := range []int{8, 16, 32, 64} {
		cycles := map[matmul.Mode]int64{}
		a := matmul.Identity(n)
		b := matmul.Random(n, uint32(n))
		for _, mode := range modes {
			res, c, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: 1, Mode: mode}, a, b)
			if err != nil {
				log.Fatalf("%s n=%d: %v", mode, n, err)
			}
			if !matmul.Equal(c, b) { // identity A: C == B
				log.Fatalf("%s n=%d: wrong product", mode, n)
			}
			cycles[mode] = res.Cycles
		}
		fmt.Printf("%5d %12d %12d %12d %12d %10.3f\n",
			n, cycles[matmul.Serial], cycles[matmul.SIMD],
			cycles[matmul.MIMD], cycles[matmul.SMIMD],
			stats.Efficiency(cycles[matmul.Serial], cycles[matmul.SIMD], p))
	}
	fmt.Println("\nSIMD efficiency above 1.0 is the paper's superlinear speed-up:")
	fmt.Println("the MCs execute all loop control in parallel with PE computation,")
	fmt.Println("and the Fetch Unit queue delivers instructions with one less wait")
	fmt.Println("state than the PEs' own dynamic RAM.")
}
