// Command pasmreport runs the complete reproduction and writes a
// self-contained markdown report: every table, the figure shapes as
// ASCII charts, and a PASS/FAIL checklist of the paper's qualitative
// claims. Exit status 1 if any claim fails.
//
// Usage:
//
//	pasmreport [-full] [-seed N] [-o report.md] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full problem sizes (n up to 256; slow)")
	seed := flag.Uint("seed", 1988, "seed for the random B matrices")
	out := flag.String("o", "", "write the report to this file (default stdout)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "host goroutines running experiment cells (report is identical for any value)")
	flag.Parse()

	// The report runs every experiment; the shared spec type supplies
	// the same option mapping pasmbench and pasmd use.
	spec := experiments.Spec{Exps: []string{"all", "ext"}, Full: *full, Seed: uint32(*seed)}
	opts, err := experiments.OptionsFor(spec, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmreport:", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pasmreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	claims, err := report.Generate(opts, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmreport:", err)
		os.Exit(1)
	}
	passed := 0
	for _, c := range claims {
		if c.Pass {
			passed++
		}
	}
	fmt.Fprintf(os.Stderr, "pasmreport: %d/%d claims pass\n", passed, len(claims))
	if !report.AllPass(claims) {
		os.Exit(1)
	}
}
