// Command pasmrun executes one matrix-multiplication configuration on
// the simulated PASM prototype and reports its timing in detail:
// cycles, seconds at 8 MHz, the execution-time component breakdown,
// instruction counts, network traffic, barrier rounds, and Fetch Unit
// queue occupancy.
//
// Usage:
//
//	pasmrun [-n 64] [-p 4] [-muls 1] [-mode simd|mimd|smimd|mixed|sisd]
//	        [-seed N] [-verify] [-asm] [-trace N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/m68k"
	"repro/internal/matmul"
	"repro/internal/pasm"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 64, "matrix dimension (power of two)")
	p := flag.Int("p", 4, "number of PEs (power of two)")
	muls := flag.Int("muls", 1, "multiplies per inner loop (1 = plain algorithm)")
	mode := flag.String("mode", "simd", "execution mode: sisd, simd, mimd, smimd, mixed")
	seed := flag.Uint("seed", 1988, "seed for the random B matrix")
	verify := flag.Bool("verify", true, "check the product against the host reference")
	asm := flag.Bool("asm", false, "print the generated assembly and exit")
	traceN := flag.Int("trace", 0, "print the last N executed instructions of every unit")
	workers := flag.Int("workers", 1, "host goroutines advancing PE segments in MIMD execution (simulation is identical for any value)")
	flag.Parse()

	var m matmul.Mode
	switch *mode {
	case "sisd", "serial":
		m = matmul.Serial
	case "simd":
		m = matmul.SIMD
	case "mimd":
		m = matmul.MIMD
	case "smimd":
		m = matmul.SMIMD
	case "mixed":
		m = matmul.Mixed
	default:
		fmt.Fprintf(os.Stderr, "pasmrun: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	spec := matmul.Spec{N: *n, P: *p, Muls: *muls, Mode: m}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(2)
	}

	if *asm {
		src, err := matmul.Generate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pasmrun:", err)
			os.Exit(1)
		}
		fmt.Print(src)
		return
	}

	cfg := pasm.DefaultConfig()
	cfg.HostWorkers = *workers
	a := matmul.Identity(*n)
	b := matmul.Random(*n, uint32(*seed))

	prog, l, err := matmul.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	buffers := map[string]*trace.Buffer{}
	if *traceN > 0 {
		vm.TraceHook = func(unit string, cpu *m68k.CPU) {
			buf := trace.New(*traceN)
			buffers[unit] = buf
			buf.Attach(unit, cpu)
		}
	}
	if err := vm.EstablishShift(); err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	if err := matmul.Load(vm, l, a, b); err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	var res pasm.RunResult
	if spec.Mode == matmul.SIMD || spec.Mode == matmul.Mixed {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	c, err := matmul.ReadC(vm, l)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	if *verify {
		if !matmul.Equal(c, b) { // identity A: C must equal B
			fmt.Fprintln(os.Stderr, "pasmrun: WRONG PRODUCT")
			os.Exit(1)
		}
	}

	fmt.Printf("matmul %s  n=%d  p=%d  multiplies/inner-loop=%d\n", m, *n, spec.P, *muls)
	fmt.Printf("  execution time : %d cycles = %.4f s at %.0f MHz\n",
		res.Cycles, stats.Seconds(res.Cycles, cfg.ClockHz), cfg.ClockHz/1e6)
	fmt.Printf("  breakdown      : mult %d (%.1f%%), comm %d (%.1f%%), other %d (%.1f%%)\n",
		res.Regions[m68k.RegionMult], pct(res.Regions[m68k.RegionMult], res.Cycles),
		res.Regions[m68k.RegionComm], pct(res.Regions[m68k.RegionComm], res.Cycles),
		res.Regions[m68k.RegionOther]+res.Regions[m68k.RegionControl],
		pct(res.Regions[m68k.RegionOther]+res.Regions[m68k.RegionControl], res.Cycles))
	fmt.Printf("  PE instructions: %d total", res.Instrs)
	if res.MCInstrs > 0 {
		fmt.Printf("  (MC instructions: %d)", res.MCInstrs)
	}
	fmt.Println()
	if res.MCInstrs > 0 {
		fmt.Printf("  fetch unit     : PEs starved %d cycles, MC stalled %d cycles, controller stalled %d cycles\n",
			res.PEStarveCycles, res.MCStallCycles, res.QueueStallCycles)
	}
	if res.NetTransfers > 0 {
		fmt.Printf("  network        : %d bytes transferred\n", res.NetTransfers)
	}
	if res.BarrierRounds > 0 {
		fmt.Printf("  barriers       : %d rounds\n", res.BarrierRounds)
	}
	if *verify {
		fmt.Println("  result verified against host reference")
	}
	if *traceN > 0 {
		fmt.Printf("\nlast %d instructions per unit:\n", *traceN)
		for _, unit := range sortedKeys(buffers) {
			fmt.Printf("--- %s (%d instructions executed) ---\n", unit, buffers[unit].Total())
			fmt.Print(buffers[unit].String())
		}
	}
}

func sortedKeys(m map[string]*trace.Buffer) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
