// Command pasmrun executes one matrix-multiplication configuration on
// the simulated PASM prototype and reports its timing in detail:
// cycles, seconds at 8 MHz, the execution-time component breakdown,
// instruction counts, network traffic, barrier rounds, and Fetch Unit
// queue occupancy. The observability flags expose the run's event
// stream: -trace prints an interleaved per-unit listing, -trace-out
// writes Chrome trace-event JSON for Perfetto, and -metrics prints the
// per-unit utilization table (to stderr, keeping stdout identical).
//
// Usage:
//
//	pasmrun [-n 64] [-p 4] [-muls 1] [-mode simd|mimd|smimd|mixed|sisd]
//	        [-seed N] [-verify] [-asm] [-trace N] [-trace-out FILE]
//	        [-metrics] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/m68k"
	"repro/internal/matmul"
	"repro/internal/obs"
	"repro/internal/pasm"
	"repro/internal/stats"
)

func main() {
	n := flag.Int("n", 64, "matrix dimension (power of two)")
	p := flag.Int("p", 4, "number of PEs (power of two)")
	muls := flag.Int("muls", 1, "multiplies per inner loop (1 = plain algorithm)")
	mode := flag.String("mode", "simd", "execution mode: sisd, simd, mimd, smimd, mixed")
	seed := flag.Uint("seed", 1988, "seed for the random B matrix")
	verify := flag.Bool("verify", true, "check the product against the host reference")
	asm := flag.Bool("asm", false, "print the generated assembly and exit")
	traceN := flag.Int("trace", 0, "print the last N events of every unit as one interleaved listing")
	traceOut := flag.String("trace-out", "", "write the full event stream as Chrome trace-event JSON to `file` (load in ui.perfetto.dev)")
	metrics := flag.Bool("metrics", false, "print the per-unit utilization/wait table to stderr")
	workers := flag.Int("workers", 1, "host goroutines advancing PE segments in MIMD execution (simulation is identical for any value)")
	flag.Parse()

	// The shared spec type (internal/experiments) owns mode parsing and
	// validation — the same construction pasmbench, pasmd, and the
	// service client use.
	cell := experiments.CellSpec{N: *n, P: *p, Muls: *muls, Mode: *mode}
	spec, err := cell.MatmulSpec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(2)
	}
	m := spec.Mode

	if *asm {
		src, err := matmul.Generate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pasmrun:", err)
			os.Exit(1)
		}
		fmt.Print(src)
		return
	}

	cfg := pasm.DefaultConfig()
	cfg.HostWorkers = *workers
	var rec *obs.Recorder
	if *traceN > 0 || *traceOut != "" || *metrics {
		ocfg := obs.Config{Metrics: true}
		if *traceN > 0 || *traceOut != "" {
			ocfg.Events = obs.AllKinds
		}
		if *traceN > 0 && *traceOut == "" {
			// Listing only: a ring of the last N events per unit is
			// enough. A Chrome trace needs the whole stream.
			ocfg.Limit = *traceN
		}
		rec = obs.New(ocfg)
		cfg.Obs = rec
	}
	a := matmul.Identity(*n)
	b := matmul.Random(*n, uint32(*seed))

	prog, l, err := matmul.Build(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	if err := vm.EstablishShift(); err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	if err := matmul.Load(vm, l, a, b); err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	var res pasm.RunResult
	if spec.Mode == matmul.SIMD || spec.Mode == matmul.Mixed {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	c, err := matmul.ReadC(vm, l)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmrun:", err)
		os.Exit(1)
	}
	if *verify {
		if !matmul.Equal(c, b) { // identity A: C must equal B
			fmt.Fprintln(os.Stderr, "pasmrun: WRONG PRODUCT")
			os.Exit(1)
		}
	}

	fmt.Printf("matmul %s  n=%d  p=%d  multiplies/inner-loop=%d\n", m, *n, spec.P, *muls)
	fmt.Printf("  execution time : %d cycles = %.4f s at %.0f MHz\n",
		res.Cycles, stats.Seconds(res.Cycles, cfg.ClockHz), cfg.ClockHz/1e6)
	fmt.Printf("  breakdown      : mult %d (%.1f%%), comm %d (%.1f%%), other %d (%.1f%%)\n",
		res.Regions[m68k.RegionMult], pct(res.Regions[m68k.RegionMult], res.Cycles),
		res.Regions[m68k.RegionComm], pct(res.Regions[m68k.RegionComm], res.Cycles),
		res.Regions[m68k.RegionOther]+res.Regions[m68k.RegionControl],
		pct(res.Regions[m68k.RegionOther]+res.Regions[m68k.RegionControl], res.Cycles))
	fmt.Printf("  PE instructions: %d total", res.Instrs)
	if res.MCInstrs > 0 {
		fmt.Printf("  (MC instructions: %d)", res.MCInstrs)
	}
	fmt.Println()
	if res.MCInstrs > 0 {
		fmt.Printf("  fetch unit     : PEs starved %d cycles, MC stalled %d cycles, controller stalled %d cycles\n",
			res.PEStarveCycles, res.MCStallCycles, res.QueueStallCycles)
	}
	if res.NetTransfers > 0 {
		fmt.Printf("  network        : %d bytes transferred\n", res.NetTransfers)
	}
	if res.BarrierRounds > 0 {
		fmt.Printf("  barriers       : %d rounds\n", res.BarrierRounds)
	}
	if *verify {
		fmt.Println("  result verified against host reference")
	}
	disasm := func(pc int) string { return prog.Instrs[pc].String() }
	if *traceN > 0 {
		fmt.Printf("\nlast %d events per unit (interleaved, simulated-time order):\n", *traceN)
		if err := obs.WriteListing(os.Stdout, rec, disasm); err != nil {
			fmt.Fprintln(os.Stderr, "pasmrun:", err)
			os.Exit(1)
		}
	}
	if *metrics {
		if err := obs.WriteUnitTable(os.Stderr, rec); err != nil {
			fmt.Fprintln(os.Stderr, "pasmrun:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pasmrun:", err)
			os.Exit(1)
		}
		if err := obs.WriteChromeTrace(f, rec, disasm); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "pasmrun:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pasmrun:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pasmrun: wrote Chrome trace to %s (load in ui.perfetto.dev)\n", *traceOut)
	}
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
