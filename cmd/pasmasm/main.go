// Command pasmasm assembles an MC68000 source file with the
// simulator's assembler and prints the structured listing (instruction
// indices, word counts, accounting regions), or times a straight-line
// program on a single simulated PE.
//
// Usage:
//
//	pasmasm [-time] [-dram] file.s
//	pasmasm -e 'move.w d0, d1'    (assemble a one-liner from the flag)
//
// -time runs the program on one PE (it must end in HALT) and reports
// cycles and instructions; -dram charges DRAM wait states and refresh
// for instruction fetches (MIMD-style) instead of zero-wait fetches.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/m68k"
)

func main() {
	timeIt := flag.Bool("time", false, "execute on one PE and report cycles")
	dram := flag.Bool("dram", false, "with -time: fetch from DRAM (wait states + refresh)")
	hex := flag.Bool("hex", false, "print the MC68000 binary encoding")
	expr := flag.String("e", "", "assemble this source text instead of a file")
	flag.Parse()

	var src string
	switch {
	case *expr != "":
		src = *expr
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pasmasm:", err)
			os.Exit(1)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "pasmasm: need a source file or -e 'source'")
		flag.Usage()
		os.Exit(2)
	}

	prog, err := m68k.Assemble(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasmasm:", err)
		os.Exit(1)
	}
	fmt.Print(prog.Disassemble())

	if *hex {
		words, err := prog.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pasmasm: encode:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%d words of MC68000 object code:\n", len(words))
		for i, w := range words {
			if i%8 == 0 {
				fmt.Printf("%06X:", i*2)
			}
			fmt.Printf(" %04X", w)
			if i%8 == 7 || i == len(words)-1 {
				fmt.Println()
			}
		}
	}

	if *timeIt {
		mem := m68k.NewMemory(1 << 20)
		if *dram {
			mem.WaitStates = 1
			mem.RefreshPeriod = 256
			mem.RefreshStall = 2
		}
		cpu := m68k.NewCPU(prog, mem)
		cpu.FetchFromMem = *dram
		cpu.A[7] = mem.Size() - 4
		st := cpu.Run(1 << 32)
		if st != m68k.StatusHalted {
			fmt.Fprintf(os.Stderr, "pasmasm: program did not halt: %v (err=%v)\n", st, cpu.Err)
			os.Exit(1)
		}
		fmt.Printf("\n%d instructions, %d cycles (%.2f cycles/instruction)\n",
			cpu.InstrCount, cpu.Clock, float64(cpu.Clock)/float64(cpu.InstrCount))
		for r := m68k.RegionID(0); r < m68k.NumRegions; r++ {
			if cpu.Regions[r] > 0 {
				fmt.Printf("  %-8s %12d cycles\n", r, cpu.Regions[r])
			}
		}
	}
}
