// Command pasmd serves the PASM experiment engine over HTTP: submit
// experiment specs (any named sweep or custom matmul cells), poll or
// long-poll job status, and fetch result documents byte-identical to
// `pasmbench -json` output with host timings off. Identical in-flight
// specs coalesce into one execution; finished results are served from
// a content-addressed LRU cache; a bounded queue with deadline-aware
// admission control rejects overload with 503 + Retry-After instead
// of growing without bound.
//
// Usage:
//
//	pasmd [-addr 127.0.0.1:8037] [-addr-file FILE] [-name NAME]
//	      [-queue 64] [-workers 2] [-parallel N]
//	      [-sched fcfs|sjf] [-classes "interactive=50,batch=0"]
//	      [-starve-limit 8] [-admit-rate 0] [-admit-burst 8]
//	      [-machine-pes 0] [-policy firstfit]
//	      [-cache-entries 256] [-cache-bytes N]
//	      [-fill-secret SECRET]
//	      [-trace-sample 0] [-trace-ring 64] [-debug-addr ADDR]
//	      [-drain-timeout 5m] [-linger 2s]
//	      [-chaos-profile "run:error=0.1,..." [-chaos-seed N]]
//
// -sched sjf turns on SLO-aware scheduling: submits carrying an SLO
// class (X-Pasm-Class header or "class" body field, with targets from
// -classes or an explicit X-Pasm-Slo-Ms) are ordered by class urgency
// first, then by predicted cost from the closed-form timing model, so
// a cheap interactive probe never queues behind a long batch sweep.
// -starve-limit bounds both directions: a bypassed batch job is
// promoted after that many bypasses, and no interactive job can be
// bypassed by promotions more than that many times. Per-class latency
// quantiles, SLO hit/miss counters, and a Jain fairness index over
// client completions appear in /metrics.
//
// -admit-rate enables per-client token-bucket admission control:
// clients identified by X-Pasm-Client (or "client" body field) above
// their rate get 429 + Retry-After before consuming a queue slot.
//
// -machine-pes switches the instance to partition mode: instead of a
// fixed worker pool, jobs are packed onto subcube partitions of one
// shared machine of that many PEs (a power of two up to 1024). Each
// job runs inside a partition of its spec's pes — results are
// byte-identical to the classic path — and -policy picks which
// pending job gets a freed partition (firstfit, bestfit, sizeaware).
// Partition occupancy and fragmentation appear under "partition/" in
// /metrics. 0 (the default) keeps the classic worker pool.
//
// -trace-sample arms request tracing: requests arriving with an
// X-Pasm-Trace header are always traced (the upstream hop paid the
// sampling decision), and headerless requests are traced with this
// probability. Traced requests get per-stage spans (admit, queue, run)
// plus a capture of the simulated-clock event stream, browsable at
// /debug/requests and exportable as a merged Perfetto trace at
// /debug/requests/{trace}/perfetto. -trace-ring bounds retention.
//
// -debug-addr starts a second listener serving net/http/pprof; worker
// goroutines run under a pprof label pasm_trace=<trace id> so CPU
// profiles can be sliced per traced request.
//
// -fill-secret arms the cluster-internal peer-fill endpoint
// (/internal/v1/fill): a pasmgw gateway started with the same secret
// can push results computed elsewhere into this instance's cache.
// Without the flag the endpoint rejects everything — it shares the
// public listener, so it is never open anonymously.
//
// -chaos-profile enables deterministic fault injection (package
// faults) at the admission, cache, execution, and HTTP points;
// -chaos-seed picks the decision sequence, so a chaos run is
// reproducible from its flags alone. Injected fault counts appear
// under "faults/" in /metrics. Without the flag the injector is
// absent and the serving path runs at full speed.
//
// -workers is the number of jobs executing concurrently; each job
// additionally fans its experiment cells across -parallel host
// goroutines (the same engine as `pasmbench -parallel`), so
// workers*parallel should track the host CPU count.
//
// -addr-file writes the actually-bound address (useful with ":0") so
// wrappers and the smoke test can find the server.
//
// On SIGINT/SIGTERM the server drains: new submissions get 503 +
// Retry-After, every accepted job still executes, status and result
// endpoints keep answering until the queue is empty plus -linger, then
// the process exits. No accepted job is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr listener (DefaultServeMux)
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/partition"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8037", "listen address (use :0 for an ephemeral port)")
	name := flag.String("name", "", "stable instance name reported in /healthz (cluster replicas set this; empty is fine standalone)")
	addrFile := flag.String("addr-file", "", "write the bound address to `file` after listening")
	queue := flag.Int("queue", 64, "max queued (admitted but unstarted) jobs; overload beyond this gets 503")
	workers := flag.Int("workers", 2, "jobs executing concurrently (ignored in partition mode)")
	machinePEs := flag.Int("machine-pes", 0, "partition mode: share one machine of this many PEs across jobs (0 = classic worker pool)")
	policy := flag.String("policy", "firstfit", "partition scheduling policy: firstfit, bestfit, or sizeaware")
	parallel := flag.Int("parallel", runtime.NumCPU(), "host goroutines per job for experiment cell fan-out")
	cacheEntries := flag.Int("cache-entries", 256, "result cache bound, entries (0 = unbounded)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache bound, total value bytes (0 = unbounded)")
	fillSecret := flag.String("fill-secret", "", "shared secret arming the peer-fill endpoint (empty = fills disabled)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "max time to finish accepted jobs on shutdown")
	linger := flag.Duration("linger", 2*time.Second, "after the queue drains, keep serving status/result reads this long so waiting clients can collect")
	sched := flag.String("sched", "fcfs", "queue scheduling: fcfs (arrival order) or sjf (SLO class priority + shortest predicted job first)")
	classes := flag.String("classes", "", "SLO class defaults, comma-separated name=slo_ms (e.g. \"interactive=50,batch=0\"); empty accepts any class with explicit slo_ms")
	starveLimit := flag.Int("starve-limit", service.DefaultStarveLimit, "sjf anti-starvation: promote a job after this many bypasses")
	admitRate := flag.Float64("admit-rate", 0, "per-client admission rate, requests/sec (0 = no rate limiting); over-rate identified clients get 429 + Retry-After")
	admitBurst := flag.Float64("admit-burst", 8, "per-client admission burst (token bucket depth)")
	chaosProfile := flag.String("chaos-profile", "", "fault-injection profile, e.g. \"run:error=0.1,panic=0.05,delay=0.2@20ms;http:error=0.1\" (empty = no injection)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the deterministic fault decision sequences")
	traceSample := flag.Float64("trace-sample", 0, "probability of tracing a headerless request (X-Pasm-Trace requests are always traced)")
	traceRing := flag.Int("trace-ring", 64, "finished traced requests retained for /debug/requests")
	debugAddr := flag.String("debug-addr", "", "second listener for net/http/pprof (empty = off)")
	flag.Parse()

	comp := "pasmd"
	if *name != "" {
		comp = "pasmd/" + *name
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", comp)

	var injector *faults.Injector
	if *chaosProfile != "" {
		profile, err := faults.ParseProfile(*chaosProfile)
		if err != nil {
			logger.Error("bad chaos profile", "err", err)
			return 1
		}
		injector = faults.New(*chaosSeed, profile)
		logger.Warn("CHAOS enabled", "seed", *chaosSeed, "profile", profile.String())
	}

	tracer := telemetry.New(telemetry.Config{
		Component: comp,
		Sample:    *traceSample,
		Ring:      *traceRing,
		Seed:      *chaosSeed,
		Logger:    logger,
	})

	schedMode, err := service.ParseSchedulerMode(*sched)
	if err != nil {
		logger.Error("bad scheduler", "err", err)
		return 1
	}
	var classDefaults map[string]int64
	if *classes != "" {
		classDefaults, err = service.ParseClasses(*classes)
		if err != nil {
			logger.Error("bad classes", "err", err)
			return 1
		}
	}

	opts := experiments.DefaultOptions()
	opts.Parallelism = *parallel
	var machine *partition.Machine
	var schedPolicy partition.Policy
	if *machinePEs > 0 {
		p, err := partition.ParsePolicy(*policy)
		if err != nil {
			logger.Error("bad policy", "err", err)
			return 1
		}
		schedPolicy = p
		machineCfg := opts.Config
		machineCfg.NumPEs = *machinePEs
		if machineCfg.PEsPerMC > *machinePEs {
			machineCfg.PEsPerMC = *machinePEs
		}
		m, err := partition.New(machineCfg)
		if err != nil {
			logger.Error("bad machine size", "pes", *machinePEs, "err", err)
			return 1
		}
		machine = m
		logger.Info("partition mode", "machine_pes", *machinePEs, "policy", *policy)
	}
	svc := service.New(service.Config{
		QueueDepth:  *queue,
		Workers:     *workers,
		Machine:     machine,
		Policy:      schedPolicy,
		Sched:       schedMode,
		StarveLimit: *starveLimit,
		Classes:     classDefaults,
		AdmitRate:   *admitRate,
		AdmitBurst:  *admitBurst,
		Options:     opts,
		Cache:       cache.Config{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes},
		Name:        *name,
		FillSecret:  *fillSecret,
		Faults:      injector,
		Telemetry:   tracer,
		Logger:      logger,
	})

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "err", err)
			return 1
		}
		// DefaultServeMux carries net/http/pprof's handlers.
		go func() { _ = http.Serve(dln, nil) }()
		logger.Info("pprof listening", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Error("writing addr file failed", "file", *addrFile, "err", err)
			return 1
		}
	}
	logger.Info("listening", "addr", bound, "queue", *queue, "workers", *workers,
		"parallel", *parallel, "sched", string(schedMode), "cache_entries", *cacheEntries,
		"trace_sample", *traceSample, "code", experiments.CodeVersion)

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		return 1
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "queued", svc.QueueLen())
	}

	// Drain order matters: first the job queue (submissions now 503,
	// status/result GETs still served), then the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		logger.Error("drain failed", "err", err)
		srv.Close()
		return 1
	}
	// Clients long-polling the final job learn of completion exactly
	// when the drain finishes; give them a window to fetch results
	// before the listener goes away.
	time.Sleep(*linger)
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown failed", "err", err)
		return 1
	}
	logger.Info("drained, bye")
	return 0
}
