// Command interpbench measures the interpreter tiers' throughput on
// the paper's matmul rows and records the speedups in
// BENCH_interp.json.
//
// For every selected fig6/fig7 row it runs the generated program on
// each tier — dynamic reference, exec-table, superinstructions +
// segment memo — timing only the simulation itself (program build,
// operand load, and result readback are excluded; they are identical
// across tiers and amortized once per request on the serving path).
// MIPS is simulated instructions per host second; the simulated
// instruction count is tier-invariant, so the MIPS ratio is exactly
// the simulation-time ratio.
//
// With -against, the measured super-tier speedups are compared to a
// previously recorded BENCH_interp.json and the run fails if any row
// regresses below the recorded ratio (with a noise margin) — the CI
// gate that keeps the fast tier fast.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/matmul"
	"repro/internal/pasm"
)

// Schema identifies the BENCH_interp.json document format.
const Schema = "interpbench/v1"

// regressionMargin is how far below a recorded speedup a measured one
// may fall before -against fails the run. Wall-clock MIPS on shared CI
// hosts is noisy — the MIMD/S-MIMD rows run host goroutines that race
// with whatever else the machine is doing, so their ratios wobble by
// tens of percent run to run. 0.6 absorbs that while still catching a
// real regression: losing the super tier drops the SISD row's ratio
// from ~9x to ~1x, far through any plausible floor.
const regressionMargin = 0.6

var tiers = []string{"reference", "table", "super"}

// Row is one measured matmul configuration.
type Row struct {
	Name string `json:"name"`
	// Instrs is the simulated instruction count, identical on every
	// tier (the differential tests enforce it; this tool re-checks).
	Instrs int64 `json:"instrs"`
	// MIPS maps tier name to simulated instructions per host second.
	MIPS map[string]float64 `json:"mips"`
	// SuperVsReference and SuperVsTable are the super tier's speedup
	// ratios: MIPS[super]/MIPS[reference] and MIPS[super]/MIPS[table].
	SuperVsReference float64 `json:"super_vs_reference"`
	SuperVsTable     float64 `json:"super_vs_table"`
}

// Doc is the BENCH_interp.json document.
type Doc struct {
	Schema string `json:"schema"`
	// Reps is the measurement repetitions per (row, tier); the
	// fastest repetition is kept.
	Reps int   `json:"reps"`
	Rows []Row `json:"rows"`
}

// rows is the measured configuration set: the fig6 mode sweep at the
// paper's largest quick size and the fig7 multiply sweep's extremes,
// where the superinstruction kernel executor matters most.
var rows = []struct {
	name string
	spec matmul.Spec
}{
	{"fig6/n=64/SISD", matmul.Spec{N: 64, P: 1, Muls: 1, Mode: matmul.Serial}},
	{"fig6/n=64/SIMD", matmul.Spec{N: 64, P: 4, Muls: 1, Mode: matmul.SIMD}},
	{"fig6/n=64/MIMD", matmul.Spec{N: 64, P: 4, Muls: 1, Mode: matmul.MIMD}},
	{"fig6/n=64/S-MIMD", matmul.Spec{N: 64, P: 4, Muls: 1, Mode: matmul.SMIMD}},
	{"fig7/muls=14/S-MIMD", matmul.Spec{N: 64, P: 4, Muls: 14, Mode: matmul.SMIMD}},
	{"fig7/muls=30/SIMD", matmul.Spec{N: 64, P: 4, Muls: 30, Mode: matmul.SIMD}},
	{"fig7/muls=30/S-MIMD", matmul.Spec{N: 64, P: 4, Muls: 30, Mode: matmul.SMIMD}},
}

func configFor(tier string) pasm.Config {
	cfg := pasm.DefaultConfig()
	switch tier {
	case "reference":
		cfg.DisableExecTable = true
		cfg.DisableSegmentMemo = true
	case "table":
		cfg.DisableSuperinstructions = true
		cfg.DisableSegmentMemo = true
	}
	return cfg
}

// simulate runs spec once on the tier and returns the simulation-only
// host seconds and the simulated instruction count.
func simulate(tier string, spec matmul.Spec, a, b matmul.Matrix) (float64, int64, error) {
	cfg := configFor(tier)
	prog, l, err := matmul.Build(spec)
	if err != nil {
		return 0, 0, err
	}
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		return 0, 0, err
	}
	if err := vm.EstablishShift(); err != nil {
		return 0, 0, err
	}
	if err := matmul.Load(vm, l, a, b); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	var res pasm.RunResult
	if spec.Mode == matmul.SIMD || spec.Mode == matmul.Mixed {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return 0, 0, err
	}
	c, err := matmul.ReadC(vm, l)
	if err != nil {
		return 0, 0, err
	}
	if !matmul.Equal(c, b) {
		return 0, 0, fmt.Errorf("%s tier computed a wrong product", tier)
	}
	return elapsed, res.Instrs, nil
}

func measure(reps int) (*Doc, error) {
	doc := &Doc{Schema: Schema, Reps: reps}
	for _, r := range rows {
		a := matmul.Identity(r.spec.N)
		b := matmul.Random(r.spec.N, 1988+uint32(r.spec.N))
		row := Row{Name: r.name, MIPS: map[string]float64{}}
		for _, tier := range tiers {
			best := 0.0
			for k := 0; k < reps; k++ {
				el, instrs, err := simulate(tier, r.spec, a, b)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", r.name, tier, err)
				}
				if row.Instrs == 0 {
					row.Instrs = instrs
				} else if instrs != row.Instrs {
					return nil, fmt.Errorf("%s: %s tier simulated %d instructions, others %d",
						r.name, tier, instrs, row.Instrs)
				}
				if mips := float64(instrs) / el / 1e6; mips > best {
					best = mips
				}
			}
			row.MIPS[tier] = best
		}
		row.SuperVsReference = row.MIPS["super"] / row.MIPS["reference"]
		row.SuperVsTable = row.MIPS["super"] / row.MIPS["table"]
		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(os.Stderr, "%-20s ref=%8.2f table=%8.2f super=%8.2f MIPS  (super/ref %.2fx, super/table %.2fx)\n",
			r.name, row.MIPS["reference"], row.MIPS["table"], row.MIPS["super"],
			row.SuperVsReference, row.SuperVsTable)
	}
	return doc, nil
}

// compare fails if any measured row's super-vs-reference speedup fell
// below the recorded one by more than the noise margin.
func compare(doc *Doc, againstPath string) error {
	buf, err := os.ReadFile(againstPath)
	if err != nil {
		return err
	}
	var against Doc
	if err := json.Unmarshal(buf, &against); err != nil {
		return fmt.Errorf("%s: %w", againstPath, err)
	}
	recorded := map[string]float64{}
	for _, r := range against.Rows {
		recorded[r.Name] = r.SuperVsReference
	}
	var failed bool
	for _, r := range doc.Rows {
		want, ok := recorded[r.Name]
		if !ok {
			continue
		}
		floor := want * regressionMargin
		if r.SuperVsReference < floor {
			failed = true
			fmt.Fprintf(os.Stderr, "REGRESSION %s: super/reference %.2fx < %.2fx (recorded %.2fx)\n",
				r.Name, r.SuperVsReference, floor, want)
		}
	}
	if failed {
		return fmt.Errorf("super tier regressed below the ratios recorded in %s", againstPath)
	}
	fmt.Fprintf(os.Stderr, "no regression vs %s\n", againstPath)
	return nil
}

func main() {
	out := flag.String("out", "", "write the measured document to `file`")
	against := flag.String("against", "", "fail if super-tier speedups regress below `file`'s recorded ratios")
	reps := flag.Int("reps", 3, "repetitions per (row, tier); fastest kept")
	flag.Parse()

	doc, err := measure(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "interpbench: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "interpbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "interpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *against != "" {
		if err := compare(doc, *against); err != nil {
			fmt.Fprintf(os.Stderr, "interpbench: %v\n", err)
			os.Exit(1)
		}
	}
}
