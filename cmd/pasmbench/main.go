// Command pasmbench regenerates the paper's tables and figures on the
// simulated PASM prototype.
//
// Usage:
//
//	pasmbench [-exp all|table1|fig6|fig7|fig8|fig9|fig10|fig11|fig12]
//	          [-full] [-seed N]
//
// -full runs the paper's complete problem-size set (n up to 256),
// which takes a few minutes of host time; the default quick set caps n
// at 64 and reproduces every qualitative result.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

type renderer interface{ Render() string }

type plotter interface{ Plot() string }

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig6..fig12, ext, ext-crossover, ext-model, ext-fault")
	full := flag.Bool("full", false, "run the paper's full problem sizes (n up to 256; slow)")
	seed := flag.Uint("seed", 1988, "seed for the random B matrices")
	plots := flag.Bool("plot", false, "also render ASCII charts of the figure shapes")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Full = *full
	opts.Seed = uint32(*seed)

	runners := map[string]func() (renderer, error){
		"table1": func() (renderer, error) { return experiments.Table1(opts) },
		"fig6":   func() (renderer, error) { return experiments.Fig6(opts) },
		"fig7":   func() (renderer, error) { return experiments.Fig7(opts) },
		"fig8":   func() (renderer, error) { return experiments.Breakdown(opts, 1) },
		"fig9":   func() (renderer, error) { return experiments.Breakdown(opts, 14) },
		"fig10":  func() (renderer, error) { return experiments.Breakdown(opts, 30) },
		"fig11":  func() (renderer, error) { return experiments.Fig11(opts) },
		"fig12":  func() (renderer, error) { return experiments.Fig12(opts) },
		// Extensions beyond the paper (see DESIGN.md §6):
		"ext-crossover": func() (renderer, error) { return experiments.CrossoverVsP(opts) },
		"ext-model":     func() (renderer, error) { return experiments.ModelValidation(opts) },
		"ext-fault":     func() (renderer, error) { return experiments.FaultTolerance(opts) },
		"ext-workloads": func() (renderer, error) { return experiments.Workloads(opts) },
		"ext-mixed":     func() (renderer, error) { return experiments.MixedMode(opts) },
	}
	order := []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	if *exp == "ext" {
		*exp = "ext-crossover,ext-model,ext-fault,ext-workloads,ext-mixed"
	}

	var selected []string
	switch *exp {
	case "all":
		selected = order
	default:
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "pasmbench: unknown experiment %q\n", name)
				flag.Usage()
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	for _, name := range selected {
		start := time.Now()
		res, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *plots {
			if p, ok := res.(plotter); ok {
				fmt.Println(p.Plot())
			}
		}
		fmt.Printf("[%s completed in %.1fs host time]\n\n", name, time.Since(start).Seconds())
	}
}
