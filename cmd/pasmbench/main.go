// Command pasmbench regenerates the paper's tables and figures on the
// simulated PASM prototype.
//
// Usage:
//
//	pasmbench [-exp all|table1|fig6|fig7|fig8|fig9|fig10|fig11|fig12]
//	          [-full] [-seed N] [-parallel N] [-json FILE]
//
// -full runs the paper's complete problem-size set (n up to 256),
// which takes a few minutes of host time; the default quick set caps n
// at 64 and reproduces every qualitative result.
//
// -parallel sets the number of host goroutines running independent
// experiment cells; the default is one per CPU. The tables are
// byte-identical for any value — per-experiment host timings go to
// stderr so stdout can be diffed across parallelism levels.
//
// -json additionally writes every selected experiment's simulated
// metrics and host wall-clock time to FILE.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

type renderer interface{ Render() string }

type plotter interface{ Plot() string }

// summarizer exposes an experiment's simulated metrics for -json.
type summarizer interface {
	Summary() map[string]float64
}

// jsonExperiment is one experiment's entry in the -json report.
type jsonExperiment struct {
	Name        string             `json:"name"`
	HostSeconds float64            `json:"host_seconds"`
	Summary     map[string]float64 `json:"summary,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Schema      string           `json:"schema"`
	Full        bool             `json:"full"`
	Seed        uint32           `json:"seed"`
	Parallel    int              `json:"parallel"`
	HostSeconds float64          `json:"host_seconds"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig6..fig12, ext, ext-crossover, ext-model, ext-fault")
	full := flag.Bool("full", false, "run the paper's full problem sizes (n up to 256; slow)")
	seed := flag.Uint("seed", 1988, "seed for the random B matrices")
	plots := flag.Bool("plot", false, "also render ASCII charts of the figure shapes")
	parallel := flag.Int("parallel", runtime.NumCPU(), "host goroutines running experiment cells (results are identical for any value)")
	jsonPath := flag.String("json", "", "write simulated metrics and host timings to this file as JSON")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Full = *full
	opts.Seed = uint32(*seed)
	opts.Parallelism = *parallel

	runners := map[string]func() (renderer, error){
		"table1": func() (renderer, error) { return experiments.Table1(opts) },
		"fig6":   func() (renderer, error) { return experiments.Fig6(opts) },
		"fig7":   func() (renderer, error) { return experiments.Fig7(opts) },
		"fig8":   func() (renderer, error) { return experiments.Breakdown(opts, 1) },
		"fig9":   func() (renderer, error) { return experiments.Breakdown(opts, 14) },
		"fig10":  func() (renderer, error) { return experiments.Breakdown(opts, 30) },
		"fig11":  func() (renderer, error) { return experiments.Fig11(opts) },
		"fig12":  func() (renderer, error) { return experiments.Fig12(opts) },
		// Extensions beyond the paper (see DESIGN.md §6):
		"ext-crossover": func() (renderer, error) { return experiments.CrossoverVsP(opts) },
		"ext-model":     func() (renderer, error) { return experiments.ModelValidation(opts) },
		"ext-fault":     func() (renderer, error) { return experiments.FaultTolerance(opts) },
		"ext-workloads": func() (renderer, error) { return experiments.Workloads(opts) },
		"ext-mixed":     func() (renderer, error) { return experiments.MixedMode(opts) },
	}
	order := []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	ext := []string{"ext-crossover", "ext-model", "ext-fault", "ext-workloads", "ext-mixed"}

	var selected []string
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "all":
			selected = append(selected, order...)
		case "ext":
			selected = append(selected, ext...)
		default:
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "pasmbench: unknown experiment %q\n", name)
				flag.Usage()
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	report := jsonReport{
		Schema:   "pasmbench/v1",
		Full:     *full,
		Seed:     uint32(*seed),
		Parallel: *parallel,
	}
	suiteStart := time.Now()
	for _, name := range selected {
		start := time.Now()
		res, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		fmt.Println(res.Render())
		if *plots {
			if p, ok := res.(plotter); ok {
				fmt.Println(p.Plot())
			}
		}
		// Host timing is non-deterministic; keep it off stdout so the
		// rendered tables can be byte-compared across runs.
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs host time]\n", name, elapsed)

		entry := jsonExperiment{Name: name, HostSeconds: elapsed}
		if s, ok := res.(summarizer); ok {
			entry.Summary = s.Summary()
		}
		report.Experiments = append(report.Experiments, entry)
	}
	report.HostSeconds = time.Since(suiteStart).Seconds()

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: encoding json: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", *jsonPath)
	}
}
