// Command pasmbench regenerates the paper's tables and figures on the
// simulated PASM prototype.
//
// Usage:
//
//	pasmbench [-exp all|table1|fig6|fig7|fig8|fig9|fig10|fig11|fig12|ext|...]
//	          [-full] [-seed N] [-parallel N] [-json FILE|-]
//	          [-host-timings=false] [-remote ADDR]
//	          [-metrics] [-trace-out FILE]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// -full runs the paper's complete problem-size set (n up to 256),
// which takes a few minutes of host time; the default quick set caps n
// at 64 and reproduces every qualitative result.
//
// -parallel sets the number of host goroutines running independent
// experiment cells; the default is one per CPU. The tables are
// byte-identical for any value — per-experiment host timings go to
// stderr so stdout can be diffed across parallelism levels.
//
// -json additionally writes every selected experiment's simulated
// metrics and host wall-clock time to FILE (schema pasmbench/v2; the
// v1 fields are unchanged, -metrics adds "obs/" summary keys). With
// "-json -" the document goes to stdout instead, the rendered tables
// are suppressed, and stdout is pure JSON — pipe-safe for jq.
//
// -host-timings=false omits the non-deterministic host wall-clock and
// parallelism fields from the -json document, making it a pure
// function of the experiment spec (the form the pasmd service caches
// and serves).
//
// -remote ADDR submits the spec to a pasmd daemon instead of
// simulating locally, and writes the returned document to the -json
// target (stdout when "-" or unset). The daemon's bytes are identical
// to a local run with -host-timings=false.
//
// -metrics attaches the observability layer to every experiment cell
// and aggregates per-cell counters and histograms (MULU cycle
// distribution, barrier waits, queue occupancy) into the summaries; a
// machine-wide registry dump goes to stderr. -trace-out records one
// representative S/MIMD cell with full event capture and writes it as
// Chrome trace-event JSON for ui.perfetto.dev. -cpuprofile and
// -memprofile write host pprof profiles of the simulator itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/matmul"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injected streams and an exit code: testable, and
// profile-flushing defers execute before the process exits.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pasmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run: all, table1, fig6..fig12, ext, ext-crossover, ext-model, ext-fault")
	full := fs.Bool("full", false, "run the paper's full problem sizes (n up to 256; slow)")
	pes := fs.Int("pes", 0, "simulated machine size, a power of two up to 1024 (0 = the 16-PE prototype; larger machines change ext-workloads and ext-partition)")
	seed := fs.Uint("seed", 1988, "seed for the random B matrices")
	plots := fs.Bool("plot", false, "also render ASCII charts of the figure shapes")
	parallel := fs.Int("parallel", runtime.NumCPU(), "host goroutines running experiment cells (results are identical for any value)")
	jsonPath := fs.String("json", "", "write simulated metrics and host timings to this file as JSON (\"-\" for stdout, suppressing tables)")
	hostTimings := fs.Bool("host-timings", true, "include host wall-clock and parallelism in the -json document (disable for byte-reproducible output)")
	remote := fs.String("remote", "", "submit the spec to a pasmd daemon at `addr` instead of simulating locally")
	interp := fs.String("interp", "super", "interpreter tier: super (superinstructions+segment memo), table (exec-table dispatch), reference (dynamic dispatch); simulated results are identical")
	metrics := fs.Bool("metrics", false, "aggregate observability metrics per experiment (adds obs/ keys to -json summaries; registry dump on stderr)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace of one representative S/MIMD cell to `file` (load in ui.perfetto.dev)")
	cpuprofile := fs.String("cpuprofile", "", "write a host CPU profile to `file`")
	memprofile := fs.String("memprofile", "", "write a host heap profile to `file`")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := experiments.Spec{
		Exps:    experiments.ParseExpList(*exp),
		Full:    *full,
		PEs:     *pes,
		Seed:    uint32(*seed),
		Observe: *metrics,
	}
	if _, err := spec.Normalize(); err != nil {
		fmt.Fprintf(stderr, "pasmbench: %v\n", err)
		fs.Usage()
		return 2
	}

	if *remote != "" {
		return runRemote(*remote, spec, *jsonPath, stdout, stderr)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "pasmbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "pasmbench: starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
		fmt.Fprintf(stderr, "[cpu profile -> %s]\n", *cpuprofile)
	}

	opts := experiments.DefaultOptions()
	opts.Parallelism = *parallel
	opts.Seed = uint32(*seed) // RunSpec re-derives this from the spec; writeRepresentativeTrace reads it directly
	switch *interp {
	case "super":
		// Default: all tiers enabled.
	case "table":
		opts.Config.DisableSuperinstructions = true
		opts.Config.DisableSegmentMemo = true
	case "reference":
		opts.Config.DisableExecTable = true
		opts.Config.DisableSegmentMemo = true
	default:
		fmt.Fprintf(stderr, "pasmbench: unknown -interp tier %q (want super, table, or reference)\n", *interp)
		return 2
	}
	opts.InterpTier = *interp
	jsonToStdout := *jsonPath == "-"

	hook := func(name string, res experiments.Result, hostSeconds float64) {
		if !jsonToStdout {
			fmt.Fprintln(stdout, res.Render())
			if *plots {
				if p, ok := res.(experiments.Plotter); ok {
					fmt.Fprintln(stdout, p.Plot())
				}
			}
		}
		// Host timing is non-deterministic; keep it off stdout so the
		// rendered tables can be byte-compared across runs.
		if *hostTimings {
			fmt.Fprintf(stderr, "[%s completed in %.1fs host time]\n", name, hostSeconds)
		}
	}
	report, err := experiments.RunSpec(spec, experiments.RunConfig{
		Options: opts,
		Timings: *hostTimings,
		Hook:    hook,
	})
	if err != nil {
		fmt.Fprintf(stderr, "pasmbench: %v\n", err)
		return 1
	}

	if *metrics {
		// Machine-wide registry dump: merged across every selected
		// experiment's cells. Diagnostics only, so stderr.
		if err := writeMetricsDump(stderr, report.Experiments); err != nil {
			fmt.Fprintf(stderr, "pasmbench: metrics dump: %v\n", err)
			return 1
		}
	}

	if *traceOut != "" {
		if err := writeRepresentativeTrace(*traceOut, opts); err != nil {
			fmt.Fprintf(stderr, "pasmbench: trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "[wrote Chrome trace of S/MIMD n=16 p=4 muls=14 to %s]\n", *traceOut)
	}

	if *jsonPath != "" {
		buf, err := report.Marshal()
		if err != nil {
			fmt.Fprintf(stderr, "pasmbench: encoding json: %v\n", err)
			return 1
		}
		if jsonToStdout {
			if _, err := stdout.Write(buf); err != nil {
				fmt.Fprintf(stderr, "pasmbench: %v\n", err)
				return 1
			}
		} else {
			if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
				fmt.Fprintf(stderr, "pasmbench: writing %s: %v\n", *jsonPath, err)
				return 1
			}
			fmt.Fprintf(stderr, "[wrote %s]\n", *jsonPath)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "pasmbench: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "pasmbench: writing heap profile: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "[heap profile -> %s]\n", *memprofile)
	}
	return 0
}

// runRemote submits the spec to a pasmd daemon and writes the served
// document (byte-identical to a local -host-timings=false run) to the
// -json target, defaulting to stdout.
func runRemote(addr string, spec experiments.Spec, jsonPath string, stdout, stderr io.Writer) int {
	cl := client.New(addr)
	start := time.Now()
	raw, st, err := cl.Run(context.Background(), spec, client.SubmitOptions{Wait: 30 * time.Second})
	if err != nil {
		fmt.Fprintf(stderr, "pasmbench: remote: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "[remote job %s done in %.1fs round trip, cached=%t]\n",
		st.ID, time.Since(start).Seconds(), st.Cached)
	if jsonPath == "" || jsonPath == "-" {
		if _, err := stdout.Write(raw); err != nil {
			fmt.Fprintf(stderr, "pasmbench: %v\n", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
		fmt.Fprintf(stderr, "pasmbench: writing %s: %v\n", jsonPath, err)
		return 1
	}
	fmt.Fprintf(stderr, "[wrote %s]\n", jsonPath)
	return 0
}

// writeMetricsDump prints the "obs/" summary keys of every experiment,
// sorted, as the suite's aggregated metrics view.
func writeMetricsDump(w io.Writer, exps []experiments.ReportExperiment) error {
	for _, e := range exps {
		keys := make([]string, 0, len(e.Summary))
		for k := range e.Summary {
			if strings.HasPrefix(k, "obs/") {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			continue
		}
		sort.Strings(keys)
		if _, err := fmt.Fprintf(w, "[observability: %s]\n", e.Name); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %-44s %g\n", k, e.Summary[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeRepresentativeTrace runs one deterministic S/MIMD cell near the
// paper's Figure 7 crossover (n=16, p=4, 14 multiplies) with full
// event capture and exports it as Chrome trace-event JSON.
func writeRepresentativeTrace(path string, opts experiments.Options) error {
	spec := matmul.Spec{N: 16, P: 4, Muls: 14, Mode: matmul.SMIMD}
	rec := obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	cfg := opts.Config
	cfg.Obs = rec
	a := matmul.Identity(spec.N)
	b := matmul.Random(spec.N, opts.Seed+uint32(spec.N))
	if _, _, err := matmul.Execute(cfg, spec, a, b); err != nil {
		return err
	}
	prog, _, err := matmul.Build(spec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec, func(pc int) string { return prog.Instrs[pc].String() }); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
