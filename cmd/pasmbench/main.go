// Command pasmbench regenerates the paper's tables and figures on the
// simulated PASM prototype.
//
// Usage:
//
//	pasmbench [-exp all|table1|fig6|fig7|fig8|fig9|fig10|fig11|fig12]
//	          [-full] [-seed N] [-parallel N] [-json FILE]
//	          [-metrics] [-trace-out FILE]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// -full runs the paper's complete problem-size set (n up to 256),
// which takes a few minutes of host time; the default quick set caps n
// at 64 and reproduces every qualitative result.
//
// -parallel sets the number of host goroutines running independent
// experiment cells; the default is one per CPU. The tables are
// byte-identical for any value — per-experiment host timings go to
// stderr so stdout can be diffed across parallelism levels.
//
// -json additionally writes every selected experiment's simulated
// metrics and host wall-clock time to FILE (schema pasmbench/v2; the
// v1 fields are unchanged, -metrics adds "obs/" summary keys).
//
// -metrics attaches the observability layer to every experiment cell
// and aggregates per-cell counters and histograms (MULU cycle
// distribution, barrier waits, queue occupancy) into the summaries; a
// machine-wide registry dump goes to stderr. -trace-out records one
// representative S/MIMD cell with full event capture and writes it as
// Chrome trace-event JSON for ui.perfetto.dev. -cpuprofile and
// -memprofile write host pprof profiles of the simulator itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/matmul"
	"repro/internal/obs"
)

type renderer interface{ Render() string }

type plotter interface{ Plot() string }

// summarizer exposes an experiment's simulated metrics for -json.
type summarizer interface {
	Summary() map[string]float64
}

// jsonExperiment is one experiment's entry in the -json report.
type jsonExperiment struct {
	Name        string             `json:"name"`
	HostSeconds float64            `json:"host_seconds"`
	Summary     map[string]float64 `json:"summary,omitempty"`
}

// jsonReport is the top-level -json document. Schema pasmbench/v2
// extends v1 with the "observe" flag; all v1 fields are unchanged, and
// with -metrics the per-experiment summaries additionally carry
// "obs/"-prefixed keys.
type jsonReport struct {
	Schema      string           `json:"schema"`
	Full        bool             `json:"full"`
	Seed        uint32           `json:"seed"`
	Parallel    int              `json:"parallel"`
	Observe     bool             `json:"observe"`
	HostSeconds float64          `json:"host_seconds"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	os.Exit(run())
}

// run is main with an exit code, so profile-flushing defers execute.
func run() int {
	exp := flag.String("exp", "all", "experiment to run: all, table1, fig6..fig12, ext, ext-crossover, ext-model, ext-fault")
	full := flag.Bool("full", false, "run the paper's full problem sizes (n up to 256; slow)")
	seed := flag.Uint("seed", 1988, "seed for the random B matrices")
	plots := flag.Bool("plot", false, "also render ASCII charts of the figure shapes")
	parallel := flag.Int("parallel", runtime.NumCPU(), "host goroutines running experiment cells (results are identical for any value)")
	jsonPath := flag.String("json", "", "write simulated metrics and host timings to this file as JSON")
	metrics := flag.Bool("metrics", false, "aggregate observability metrics per experiment (adds obs/ keys to -json summaries; registry dump on stderr)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace of one representative S/MIMD cell to `file` (load in ui.perfetto.dev)")
	cpuprofile := flag.String("cpuprofile", "", "write a host CPU profile to `file`")
	memprofile := flag.String("memprofile", "", "write a host heap profile to `file`")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: starting CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "[cpu profile -> %s]\n", *cpuprofile)
	}

	opts := experiments.DefaultOptions()
	opts.Full = *full
	opts.Seed = uint32(*seed)
	opts.Parallelism = *parallel
	opts.Observe = *metrics

	runners := map[string]func() (renderer, error){
		"table1": func() (renderer, error) { return experiments.Table1(opts) },
		"fig6":   func() (renderer, error) { return experiments.Fig6(opts) },
		"fig7":   func() (renderer, error) { return experiments.Fig7(opts) },
		"fig8":   func() (renderer, error) { return experiments.Breakdown(opts, 1) },
		"fig9":   func() (renderer, error) { return experiments.Breakdown(opts, 14) },
		"fig10":  func() (renderer, error) { return experiments.Breakdown(opts, 30) },
		"fig11":  func() (renderer, error) { return experiments.Fig11(opts) },
		"fig12":  func() (renderer, error) { return experiments.Fig12(opts) },
		// Extensions beyond the paper (see DESIGN.md §6):
		"ext-crossover": func() (renderer, error) { return experiments.CrossoverVsP(opts) },
		"ext-model":     func() (renderer, error) { return experiments.ModelValidation(opts) },
		"ext-fault":     func() (renderer, error) { return experiments.FaultTolerance(opts) },
		"ext-workloads": func() (renderer, error) { return experiments.Workloads(opts) },
		"ext-mixed":     func() (renderer, error) { return experiments.MixedMode(opts) },
	}
	order := []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	ext := []string{"ext-crossover", "ext-model", "ext-fault", "ext-workloads", "ext-mixed"}

	var selected []string
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		switch name {
		case "all":
			selected = append(selected, order...)
		case "ext":
			selected = append(selected, ext...)
		default:
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "pasmbench: unknown experiment %q\n", name)
				flag.Usage()
				return 2
			}
			selected = append(selected, name)
		}
	}

	report := jsonReport{
		Schema:   "pasmbench/v2",
		Full:     *full,
		Seed:     uint32(*seed),
		Parallel: *parallel,
		Observe:  *metrics,
	}
	suiteStart := time.Now()
	for _, name := range selected {
		start := time.Now()
		res, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: %s: %v\n", name, err)
			return 1
		}
		elapsed := time.Since(start).Seconds()
		fmt.Println(res.Render())
		if *plots {
			if p, ok := res.(plotter); ok {
				fmt.Println(p.Plot())
			}
		}
		// Host timing is non-deterministic; keep it off stdout so the
		// rendered tables can be byte-compared across runs.
		fmt.Fprintf(os.Stderr, "[%s completed in %.1fs host time]\n", name, elapsed)

		entry := jsonExperiment{Name: name, HostSeconds: elapsed}
		if s, ok := res.(summarizer); ok {
			entry.Summary = s.Summary()
		}
		report.Experiments = append(report.Experiments, entry)
	}
	report.HostSeconds = time.Since(suiteStart).Seconds()

	if *metrics {
		// Machine-wide registry dump: merged across every selected
		// experiment's cells. Diagnostics only, so stderr.
		if err := writeMetricsDump(os.Stderr, report.Experiments); err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: metrics dump: %v\n", err)
			return 1
		}
	}

	if *traceOut != "" {
		if err := writeRepresentativeTrace(*traceOut, opts); err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[wrote Chrome trace of S/MIMD n=16 p=4 muls=14 to %s]\n", *traceOut)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: encoding json: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: writing %s: %v\n", *jsonPath, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[wrote %s]\n", *jsonPath)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pasmbench: writing heap profile: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[heap profile -> %s]\n", *memprofile)
	}
	return 0
}

// writeMetricsDump prints the "obs/" summary keys of every experiment,
// sorted, as the suite's aggregated metrics view.
func writeMetricsDump(w *os.File, exps []jsonExperiment) error {
	for _, e := range exps {
		keys := make([]string, 0, len(e.Summary))
		for k := range e.Summary {
			if strings.HasPrefix(k, "obs/") {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			continue
		}
		sortStrings(keys)
		if _, err := fmt.Fprintf(w, "[observability: %s]\n", e.Name); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %-44s %g\n", k, e.Summary[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// writeRepresentativeTrace runs one deterministic S/MIMD cell near the
// paper's Figure 7 crossover (n=16, p=4, 14 multiplies) with full
// event capture and exports it as Chrome trace-event JSON.
func writeRepresentativeTrace(path string, opts experiments.Options) error {
	spec := matmul.Spec{N: 16, P: 4, Muls: 14, Mode: matmul.SMIMD}
	rec := obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	cfg := opts.Config
	cfg.Obs = rec
	a := matmul.Identity(spec.N)
	b := matmul.Random(spec.N, opts.Seed+uint32(spec.N))
	if _, _, err := matmul.Execute(cfg, spec, a, b); err != nil {
		return err
	}
	prog, _, err := matmul.Build(spec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec, func(pc int) string { return prog.Instrs[pc].String() }); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
