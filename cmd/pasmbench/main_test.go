package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestJSONStdoutIsPure: `pasmbench -json -` must emit nothing but the
// JSON document on stdout (tables suppressed, diagnostics on stderr),
// so `pasmbench -json - | jq` and remote-mode byte comparisons work.
func TestJSONStdoutIsPure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "table1", "-parallel", "2", "-json", "-"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var rep experiments.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\nstdout:\n%s", err, stdout.String())
	}
	if rep.Schema != experiments.SchemaV22 {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.PEs != experiments.DefaultPEs {
		t.Errorf("pes = %d, want the %d-PE prototype", rep.PEs, experiments.DefaultPEs)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "table1" {
		t.Errorf("experiments = %+v", rep.Experiments)
	}
	if rep.Interp == nil || rep.Interp.Tier != "super" {
		t.Errorf("observe section interp = %+v, want the default super tier", rep.Interp)
	}
	if strings.Contains(stdout.String(), "Table 1") {
		t.Error("rendered table leaked onto JSON stdout")
	}
}

// TestInterpTierInReport: the v2.1 observe section names the tier the
// -interp flag selected and carries the segment-cache counters — zero
// for the tiers that run with the cache disabled.
func TestInterpTierInReport(t *testing.T) {
	get := func(tier string) experiments.Report {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-exp", "fig8", "-interp", tier, "-host-timings=false", "-json", "-"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
		}
		var rep experiments.Report
		if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	sup := get("super")
	if sup.Interp == nil || sup.Interp.Tier != "super" {
		t.Fatalf("super run: interp = %+v", sup.Interp)
	}
	if sup.Interp.MemoHits+sup.Interp.MemoMisses == 0 {
		t.Error("super run: segment cache was never consulted")
	}
	tab := get("table")
	if tab.Interp == nil || tab.Interp.Tier != "table" {
		t.Fatalf("table run: interp = %+v", tab.Interp)
	}
	if tab.Interp.MemoHits != 0 || tab.Interp.MemoMisses != 0 {
		t.Errorf("table run: cache counters nonzero with the memo disabled: %+v", tab.Interp)
	}
}

// TestHostTimingsOff: with -host-timings=false the document is
// byte-reproducible across runs and parallelism levels, and carries
// no wall-clock fields.
func TestHostTimingsOff(t *testing.T) {
	out := func(parallel string) []byte {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-exp", "table1", "-parallel", parallel, "-host-timings=false", "-json", "-"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
		}
		return stdout.Bytes()
	}
	a, b := out("1"), out("4")
	if !bytes.Equal(a, b) {
		t.Errorf("deterministic output differs across runs/parallelism:\n%s\nvs\n%s", a, b)
	}
	if bytes.Contains(a, []byte("host_seconds")) || bytes.Contains(a, []byte("parallel")) {
		t.Errorf("-host-timings=false leaked wall-clock fields:\n%s", a)
	}
}

// TestDefaultStdoutIsTables: without -json -, stdout still carries the
// rendered tables (the pre-service behavior).
func TestDefaultStdoutIsTables(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "table1", "-parallel", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Table 1: Prototype raw performance") {
		t.Errorf("rendered table missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "completed in") {
		t.Errorf("host-timing diagnostics missing from stderr:\n%s", stderr.String())
	}
}

// TestUnknownExperiment keeps the usage exit code.
func TestUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Errorf("stderr: %s", stderr.String())
	}
}
