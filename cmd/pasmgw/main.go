// Command pasmgw is the fault-tolerant gateway for a pasmd cluster: it
// serves the same /v1 job API as a single pasmd while routing each
// submission across N replicas, failing over when a replica refuses,
// errors, or hangs, and keeping per-replica circuit breakers so a dead
// replica costs nothing after it trips. Because a result document is a
// pure function of (spec, code version), any replica's answer is
// byte-identical to any other's — the gateway can re-route, hedge, and
// cache-fill freely without ever changing what the client reads.
//
// Usage:
//
//	pasmgw -replica a=127.0.0.1:8041 -replica b=127.0.0.1:8042 ...
//	       [-addr 127.0.0.1:8040] [-addr-file FILE]
//	       [-policy hash|least-loaded|round-robin]
//	       [-hedge 0] [-health-interval 1s]
//	       [-fill-secret SECRET] [-no-peer-fill]
//	       [-breaker-failures 3] [-breaker-cooldown 5s]
//	       [-chaos-profile "conn:error=0.1,...;body:error=0.05" [-chaos-seed N]]
//
// Each -replica is "name=addr"; the name is the replica's stable
// consistent-hash identity (survives restarts and port changes), so
// give replicas the same names across runs. Bare addresses get
// generated names r0, r1, ... in flag order.
//
// Routing: "hash" (default) sends each spec to its consistent-hash
// owner, maximizing replica-local cache hits; "least-loaded" picks the
// replica with the smallest queue+in-flight load from the last health
// check; "round-robin" rotates. All policies fail over along the
// spec's deterministic ring order. -hedge launches a second submit at
// the next replica when the first has not answered in time.
//
// Peer cache fill: when a result was computed off its hash owner, the
// gateway pushes the bytes to the owner's cache in the background, so
// one computation becomes a cluster-wide cache hit. Fills authenticate
// with -fill-secret, which must match every replica's pasmd
// -fill-secret; without it peer fill is disabled automatically (the
// replicas would reject the pushes anyway). -no-peer-fill disables it
// explicitly.
//
// -chaos-profile arms the deterministic fault injector on the
// *gateway's replica connections* (points "conn" and "body": refused
// connections, slow round trips, mid-body cuts), which is how the
// cluster smoke test exercises failover without killing processes.
//
// On SIGINT/SIGTERM the gateway drains: new submissions get 503 +
// Retry-After, reads keep answering so clients can collect accepted
// jobs, then the listener shuts down. Replicas are not touched.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
)

// replicaList collects repeated -replica flags.
type replicaList []string

func (r *replicaList) String() string { return strings.Join(*r, ",") }
func (r *replicaList) Set(v string) error {
	if v == "" {
		return errors.New("empty replica")
	}
	*r = append(*r, v)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var replicas replicaList
	flag.Var(&replicas, "replica", "replica as name=addr (repeatable; bare addr gets a generated name)")
	addr := flag.String("addr", "127.0.0.1:8040", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to `file` after listening")
	policyFlag := flag.String("policy", "hash", "routing policy: hash, least-loaded, or round-robin")
	hedge := flag.Duration("hedge", 0, "launch the submit at the next replica if the first has not answered in this long (0 = off)")
	healthInterval := flag.Duration("health-interval", time.Second, "active health check period per replica")
	noPeerFill := flag.Bool("no-peer-fill", false, "disable pushing off-owner results into the owner's cache")
	fillSecret := flag.String("fill-secret", "", "shared secret for peer-fill pushes; must match the replicas' pasmd -fill-secret (empty = peer fill disabled)")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive failures that open a replica's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open breaker base cooldown before the half-open probe (doubles per failed probe)")
	chaosProfile := flag.String("chaos-profile", "", "fault-injection profile for replica connections, e.g. \"conn:error=0.2;body:error=0.1\" (empty = no injection)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the deterministic fault decision sequences")
	flag.Parse()

	if len(replicas) == 0 {
		fmt.Fprintln(os.Stderr, "pasmgw: at least one -replica required")
		return 1
	}
	policy, err := cluster.ParsePolicy(*policyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasmgw: %v\n", err)
		return 1
	}

	var transport http.RoundTripper
	if *chaosProfile != "" {
		profile, err := faults.ParseProfile(*chaosProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pasmgw: %v\n", err)
			return 1
		}
		injector := faults.New(*chaosSeed, profile)
		transport = injector.Transport(http.DefaultTransport)
		fmt.Fprintf(os.Stderr, "pasmgw: CHAOS enabled on replica connections: seed=%d profile=%q\n", *chaosSeed, profile)
	}

	if *fillSecret == "" && !*noPeerFill {
		fmt.Fprintln(os.Stderr, "pasmgw: no -fill-secret: peer cache fill disabled (replicas reject unauthenticated fills)")
		*noPeerFill = true
	}

	gw, err := cluster.New(cluster.Config{
		Registry: cluster.RegistryConfig{
			Replicas:       replicas,
			HealthInterval: *healthInterval,
			Breaker: cluster.BreakerConfig{
				ConsecutiveFailures: *breakerFailures,
				Cooldown:            *breakerCooldown,
				Seed:                *chaosSeed,
			},
			Transport:  transport,
			FillSecret: *fillSecret,
		},
		Policy:          policy,
		Hedge:           *hedge,
		DisablePeerFill: *noPeerFill,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasmgw: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pasmgw: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pasmgw: writing %s: %v\n", *addrFile, err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "pasmgw: listening on %s (replicas=%d policy=%s hedge=%s peer-fill=%t)\n",
		bound, len(replicas), policy, *hedge, !*noPeerFill)

	gw.Start()
	defer gw.Stop()

	srv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "pasmgw: serve: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "pasmgw: %v: draining\n", s)
	}

	// Lossless drain: flip to shedding new submits, then let the HTTP
	// shutdown wait out in-flight requests (including long-polls) so
	// every client holding an accepted job can collect its result.
	gw.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pasmgw: http shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "pasmgw: drained, bye")
	return 0
}
