// Command pasmgw is the fault-tolerant gateway for a pasmd cluster: it
// serves the same /v1 job API as a single pasmd while routing each
// submission across N replicas, failing over when a replica refuses,
// errors, or hangs, and keeping per-replica circuit breakers so a dead
// replica costs nothing after it trips. Because a result document is a
// pure function of (spec, code version), any replica's answer is
// byte-identical to any other's — the gateway can re-route, hedge, and
// cache-fill freely without ever changing what the client reads.
//
// Usage:
//
//	pasmgw -replica a=127.0.0.1:8041 -replica b=127.0.0.1:8042 ...
//	       [-addr 127.0.0.1:8040] [-addr-file FILE]
//	       [-policy hash|least-loaded|round-robin]
//	       [-hedge 0] [-health-interval 1s]
//	       [-fill-secret SECRET] [-no-peer-fill]
//	       [-breaker-failures 3] [-breaker-cooldown 5s]
//	       [-trace-sample 0] [-trace-ring 64] [-debug-addr ADDR]
//	       [-chaos-profile "conn:error=0.1,...;body:error=0.05" [-chaos-seed N]]
//
// -trace-sample arms request tracing at the gateway: submissions
// carrying X-Pasm-Trace are always traced, headerless ones with this
// probability. A traced submit gets route/attempt/hedge spans, its
// context is forwarded to the winning replica (one trace ID spans
// gateway -> replica -> worker), and the gateway's view is browsable
// at /debug/requests. -debug-addr starts a net/http/pprof listener.
//
// Each -replica is "name=addr"; the name is the replica's stable
// consistent-hash identity (survives restarts and port changes), so
// give replicas the same names across runs. Bare addresses get
// generated names r0, r1, ... in flag order.
//
// Routing: "hash" (default) sends each spec to its consistent-hash
// owner, maximizing replica-local cache hits; "least-loaded" picks the
// replica with the smallest queue+in-flight load from the last health
// check; "round-robin" rotates. All policies fail over along the
// spec's deterministic ring order. -hedge launches a second submit at
// the next replica when the first has not answered in time.
//
// Peer cache fill: when a result was computed off its hash owner, the
// gateway pushes the bytes to the owner's cache in the background, so
// one computation becomes a cluster-wide cache hit. Fills authenticate
// with -fill-secret, which must match every replica's pasmd
// -fill-secret; without it peer fill is disabled automatically (the
// replicas would reject the pushes anyway). -no-peer-fill disables it
// explicitly.
//
// -chaos-profile arms the deterministic fault injector on the
// *gateway's replica connections* (points "conn" and "body": refused
// connections, slow round trips, mid-body cuts), which is how the
// cluster smoke test exercises failover without killing processes.
//
// On SIGINT/SIGTERM the gateway drains: new submissions get 503 +
// Retry-After, reads keep answering so clients can collect accepted
// jobs, then the listener shuts down. Replicas are not touched.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // -debug-addr listener (DefaultServeMux)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// replicaList collects repeated -replica flags.
type replicaList []string

func (r *replicaList) String() string { return strings.Join(*r, ",") }
func (r *replicaList) Set(v string) error {
	if v == "" {
		return errors.New("empty replica")
	}
	*r = append(*r, v)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var replicas replicaList
	flag.Var(&replicas, "replica", "replica as name=addr (repeatable; bare addr gets a generated name)")
	addr := flag.String("addr", "127.0.0.1:8040", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to `file` after listening")
	policyFlag := flag.String("policy", "hash", "routing policy: hash, least-loaded, or round-robin")
	hedge := flag.Duration("hedge", 0, "launch the submit at the next replica if the first has not answered in this long (0 = off)")
	healthInterval := flag.Duration("health-interval", time.Second, "active health check period per replica")
	noPeerFill := flag.Bool("no-peer-fill", false, "disable pushing off-owner results into the owner's cache")
	fillSecret := flag.String("fill-secret", "", "shared secret for peer-fill pushes; must match the replicas' pasmd -fill-secret (empty = peer fill disabled)")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive failures that open a replica's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open breaker base cooldown before the half-open probe (doubles per failed probe)")
	chaosProfile := flag.String("chaos-profile", "", "fault-injection profile for replica connections, e.g. \"conn:error=0.2;body:error=0.1\" (empty = no injection)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for the deterministic fault decision sequences")
	traceSample := flag.Float64("trace-sample", 0, "probability of tracing a headerless submit (X-Pasm-Trace submits are always traced)")
	traceRing := flag.Int("trace-ring", 64, "finished traced requests retained for /debug/requests")
	debugAddr := flag.String("debug-addr", "", "second listener for net/http/pprof (empty = off)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "pasmgw")

	if len(replicas) == 0 {
		logger.Error("at least one -replica required")
		return 1
	}
	policy, err := cluster.ParsePolicy(*policyFlag)
	if err != nil {
		logger.Error("bad policy", "err", err)
		return 1
	}

	var transport http.RoundTripper
	if *chaosProfile != "" {
		profile, err := faults.ParseProfile(*chaosProfile)
		if err != nil {
			logger.Error("bad chaos profile", "err", err)
			return 1
		}
		injector := faults.New(*chaosSeed, profile)
		transport = injector.Transport(http.DefaultTransport)
		logger.Warn("CHAOS enabled on replica connections", "seed", *chaosSeed, "profile", profile.String())
	}

	if *fillSecret == "" && !*noPeerFill {
		logger.Info("no -fill-secret: peer cache fill disabled (replicas reject unauthenticated fills)")
		*noPeerFill = true
	}

	tracer := telemetry.New(telemetry.Config{
		Component: "pasmgw",
		Sample:    *traceSample,
		Ring:      *traceRing,
		Seed:      *chaosSeed,
		Logger:    logger,
	})

	gw, err := cluster.New(cluster.Config{
		Registry: cluster.RegistryConfig{
			Replicas:       replicas,
			HealthInterval: *healthInterval,
			Breaker: cluster.BreakerConfig{
				ConsecutiveFailures: *breakerFailures,
				Cooldown:            *breakerCooldown,
				Seed:                *chaosSeed,
			},
			Transport:  transport,
			FillSecret: *fillSecret,
		},
		Policy:          policy,
		Hedge:           *hedge,
		DisablePeerFill: *noPeerFill,
		Logger:          logger,
		Telemetry:       tracer,
	})
	if err != nil {
		logger.Error("gateway init failed", "err", err)
		return 1
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "err", err)
			return 1
		}
		// DefaultServeMux carries net/http/pprof's handlers.
		go func() { _ = http.Serve(dln, nil) }()
		logger.Info("pprof listening", "addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Error("writing addr file failed", "file", *addrFile, "err", err)
			return 1
		}
	}
	logger.Info("listening", "addr", bound, "replicas", len(replicas), "policy", string(policy),
		"hedge", *hedge, "peer_fill", !*noPeerFill, "trace_sample", *traceSample)

	gw.Start()
	defer gw.Stop()

	srv := &http.Server{Handler: gw.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		logger.Error("serve failed", "err", err)
		return 1
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	}

	// Lossless drain: flip to shedding new submits, then let the HTTP
	// shutdown wait out in-flight requests (including long-polls) so
	// every client holding an accepted job can collect its result.
	gw.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown failed", "err", err)
		return 1
	}
	logger.Info("drained, bye")
	return 0
}
