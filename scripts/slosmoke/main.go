// Command slosmoke is the end-to-end gate for SLO-aware serving
// (make slo-smoke). It builds the real pasmd binary, starts it with
// `-sched sjf -classes interactive=50,batch=0`, replays the committed
// golden workload trace (internal/workload/testdata) open-loop against
// it, and asserts:
//
//  1. lossless drain: every one of the trace's requests completes
//     successfully — SLO scheduling reorders work, it never drops it;
//  2. per-class serving metrics appear: latency quantiles for both
//     classes, SLO hit/miss counters for the interactive class, the
//     scheduler mode marker, and a sane Jain fairness index;
//  3. per-client token-bucket admission: a second daemon started with
//     -admit-rate rejects an over-rate client with 429 + Retry-After
//     while leaving other clients untouched.
//
// Exit status 0 only if every check passes.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/workload"
)

const goldenTrace = "internal/workload/testdata/golden_200.tracev1"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slosmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "slosmoke: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "slosmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pasmd := filepath.Join(dir, "pasmd")
	if out, err := exec.Command("go", "build", "-o", pasmd, "./cmd/pasmd").CombinedOutput(); err != nil {
		return fmt.Errorf("building pasmd: %v\n%s", err, out)
	}

	raw, err := os.ReadFile(goldenTrace)
	if err != nil {
		return err
	}
	tr, err := workload.Parse(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", goldenTrace, err)
	}

	if err := sloReplay(dir, pasmd, tr); err != nil {
		return err
	}
	return admissionCheck(dir, pasmd)
}

// startDaemon launches pasmd with the given extra flags and returns a
// client plus a stopper.
func startDaemon(dir, pasmd, tag string, extra ...string) (*client.Client, func(), error) {
	addrFile := filepath.Join(dir, "addr-"+tag)
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-parallel", "2",
	}, extra...)
	daemon := exec.Command(pasmd, args...)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return nil, nil, fmt.Errorf("starting pasmd: %v", err)
	}
	stop := func() { daemon.Process.Kill(); daemon.Wait() }
	deadline := time.Now().Add(15 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return client.New(strings.TrimSpace(string(raw))), stop, nil
		}
		if time.Now().After(deadline) {
			stop()
			return nil, nil, errors.New("pasmd never wrote its address file")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sloReplay drives the golden trace open-loop (at 2x speed — the
// schedule pressure matters, not wall time) through an SJF daemon and
// checks lossless completion plus the per-class metrics surface.
func sloReplay(dir, pasmd string, tr *workload.Trace) error {
	cl, stop, err := startDaemon(dir, pasmd, "slo",
		"-workers", "2", "-queue", "512",
		"-sched", "sjf", "-classes", "interactive=50,batch=0")
	if err != nil {
		return err
	}
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if _, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %v", err)
	}

	fmt.Fprintf(os.Stderr, "slosmoke: replaying %d requests from %s\n", len(tr.Requests), goldenTrace)
	errs := make([]error, len(tr.Requests))
	var wg sync.WaitGroup
	start := time.Now()
	for i, r := range tr.Requests {
		due := time.Duration(r.AtUS/2) * time.Microsecond
		if wait := time.Until(start.Add(due)); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int, r workload.Request) {
			defer wg.Done()
			_, _, err := cl.Run(ctx, r.Spec, client.SubmitOptions{
				Wait: 60 * time.Second, Class: r.Class, SLOMs: r.SLOMs, ClientID: r.Client,
			})
			errs[i] = err
		}(i, r)
	}
	wg.Wait()

	// 1. Lossless: every request completed.
	failed := 0
	for i, err := range errs {
		if err != nil {
			failed++
			if failed <= 3 {
				fmt.Fprintf(os.Stderr, "slosmoke: request %d: %v\n", i, err)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d trace requests failed", failed, len(tr.Requests))
	}
	fmt.Fprintln(os.Stderr, "slosmoke: all trace requests completed (lossless) ✓")

	// 2. The per-class serving metrics surface.
	m, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if m["service/sched_sjf"] != 1 {
		return errors.New("metrics do not mark the sjf scheduler")
	}
	for _, class := range []string{"interactive", "batch"} {
		base := "service/class_total_ms/" + class
		if m[base+"/count"] < 1 {
			return fmt.Errorf("no %s class latency histogram in /metrics", class)
		}
		for _, q := range []string{"/p50", "/p95", "/p99"} {
			if _, ok := m[base+q]; !ok {
				return fmt.Errorf("missing %s quantile %s", class, q)
			}
		}
	}
	verdicts := m["service/class_slo_ok/interactive"] + m["service/class_slo_miss/interactive"]
	if verdicts < 1 {
		return errors.New("no SLO verdicts recorded for the interactive class")
	}
	j := m["service/fairness_jain"]
	if !(j > 0 && j <= 1.0000001) {
		return fmt.Errorf("fairness_jain = %v, want in (0,1]", j)
	}
	fmt.Fprintf(os.Stderr, "slosmoke: per-class quantiles + SLO verdicts + fairness %.3f ✓\n", j)
	return nil
}

// admissionCheck verifies the 429 path: a daemon with a tight
// per-client rate refuses an over-rate client and tells it when to
// come back, while a different client id sails through.
func admissionCheck(dir, pasmd string) error {
	cl, stop, err := startDaemon(dir, pasmd, "admit",
		"-workers", "2", "-queue", "64",
		"-admit-rate", "1", "-admit-burst", "2")
	if err != nil {
		return err
	}
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %v", err)
	}

	spec := func(seed uint32) experiments.Spec {
		return experiments.Spec{Exps: []string{"table1"}, Seed: seed}
	}
	limited := 0
	var lastErr error
	for i := 0; i < 5; i++ {
		_, err := cl.Submit(ctx, spec(uint32(100+i)), client.SubmitOptions{ClientID: "greedy"})
		if err != nil {
			var api *client.APIError
			if errors.As(err, &api) && api.Status == 429 {
				limited++
				if api.RetryAfter <= 0 {
					return errors.New("429 without a Retry-After hint")
				}
				continue
			}
			lastErr = err
		}
	}
	if lastErr != nil {
		return fmt.Errorf("unexpected submit error: %v", lastErr)
	}
	if limited == 0 {
		return errors.New("greedy client burst of 5 was never rate-limited (burst 2, rate 1/s)")
	}
	// A polite, distinct client is untouched.
	if _, err := cl.Submit(ctx, spec(200), client.SubmitOptions{ClientID: "polite"}); err != nil {
		return fmt.Errorf("distinct client should not be limited: %v", err)
	}
	// Anonymous submits are never rate-limited.
	if _, err := cl.Submit(ctx, spec(201), client.SubmitOptions{}); err != nil {
		return fmt.Errorf("anonymous submit should not be limited: %v", err)
	}
	fmt.Fprintf(os.Stderr, "slosmoke: admission control: %d/5 greedy submits got 429 + Retry-After ✓\n", limited)
	return nil
}
