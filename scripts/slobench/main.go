// Command slobench is the SLO-aware scheduling comparison behind
// BENCH_slo.json (make bench-slo): it replays the committed golden
// workload trace (200 requests, an interactive probe cohort against a
// batch sweep cohort) through the real scheduler queue under FCFS and
// under priority-SJF, using the deterministic virtual-time replay
// harness (service.Replay), and asserts:
//
//  1. the short class's p99 improves under SJF (the point of the
//     scheduler) without starving the batch class;
//  2. replaying the same trace twice yields byte-identical schedule
//     logs (the determinism acceptance criterion);
//  3. in execute mode, the per-request report SHA-256 digests are
//     identical across scheduler modes — scheduling changes *when*
//     work runs, never *what bytes* it produces.
//
// The run is a pure function of the committed trace, so the JSON it
// writes is stable across machines and -race.
//
// Usage: slobench [-trace FILE] [-exec-requests 12] [-out BENCH_slo.json]
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/workload"
)

type classDoc struct {
	Count   int     `json:"count"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	MaxMs   float64 `json:"max_ms"`
	SLOMiss int     `json:"slo_miss,omitempty"`
}

type modeDoc struct {
	Mode       string              `json:"mode"`
	Classes    map[string]classDoc `json:"classes"`
	Fairness   float64             `json:"fairness_jain"`
	MakespanMs float64             `json:"makespan_ms"`
	Promoted   int64               `json:"promoted"`
	LogSHA256  string              `json:"log_sha256"`
}

type benchDoc struct {
	Schema          string  `json:"schema"`
	Trace           string  `json:"trace"`
	Requests        int     `json:"requests"`
	Workers         int     `json:"workers"`
	Code            string  `json:"code_version"`
	FCFS            modeDoc `json:"fcfs"`
	SJF             modeDoc `json:"sjf"`
	ShortClass      string  `json:"short_class"`
	ShortP99Improve float64 `json:"short_class_p99_improvement"`
	ReplayIdentical bool    `json:"replay_twice_identical"`
	ResultIdentity  bool    `json:"result_bytes_identical_across_modes"`
	ExecRequests    int     `json:"exec_requests"`
}

func modeResult(tr *workload.Trace, mode service.SchedulerMode, workers int) (*service.ReplayResult, modeDoc, error) {
	res, err := service.Replay(tr, service.ReplayConfig{Sched: mode, Workers: workers})
	if err != nil {
		return nil, modeDoc{}, err
	}
	sum := sha256.Sum256(res.Log)
	doc := modeDoc{
		Mode:       string(mode),
		Classes:    map[string]classDoc{},
		Fairness:   res.Fairness,
		MakespanMs: float64(res.MakespanUS) / 1000,
		Promoted:   res.Promoted,
		LogSHA256:  hex.EncodeToString(sum[:]),
	}
	for class, cs := range res.Classes {
		doc.Classes[class] = classDoc{
			Count:   cs.Count,
			P50Ms:   float64(cs.P50US) / 1000,
			P95Ms:   float64(cs.P95US) / 1000,
			P99Ms:   float64(cs.P99US) / 1000,
			MaxMs:   float64(cs.MaxUS) / 1000,
			SLOMiss: cs.SLOMiss,
		}
	}
	return res, doc, nil
}

// shaSet collects the distinct report digests of an execute-mode
// replay, keyed by request seq (order-independent identity).
func shaSet(tr *workload.Trace, mode service.SchedulerMode) (map[int]string, error) {
	opts := experiments.DefaultOptions()
	opts.Parallelism = 2
	res, err := service.Replay(tr, service.ReplayConfig{
		Sched: mode, Workers: 2, Execute: true, Options: opts,
	})
	if err != nil {
		return nil, err
	}
	out := map[int]string{}
	for _, o := range res.Outcomes {
		out[o.Seq] = o.SHA
	}
	return out, nil
}

func run() error {
	tracePath := flag.String("trace", "internal/workload/testdata/golden_200.tracev1", "workload trace to replay")
	execN := flag.Int("exec-requests", 12, "trace prefix executed for real to check result byte-identity across modes")
	workers := flag.Int("workers", 1, "virtual worker pool (1 = maximum queueing pressure)")
	out := flag.String("out", "BENCH_slo.json", "output file (\"-\" for stdout)")
	flag.Parse()

	raw, err := os.ReadFile(*tracePath)
	if err != nil {
		return err
	}
	tr, err := workload.Parse(raw)
	if err != nil {
		return fmt.Errorf("%s: %w", *tracePath, err)
	}

	doc := benchDoc{
		Schema:     "pasm-slobench/1",
		Trace:      *tracePath,
		Requests:   len(tr.Requests),
		Workers:    *workers,
		Code:       experiments.CodeVersion,
		ShortClass: "interactive",
	}

	fcfsRes, fcfsDoc, err := modeResult(tr, service.SchedFCFS, *workers)
	if err != nil {
		return err
	}
	sjfRes, sjfDoc, err := modeResult(tr, service.SchedSJF, *workers)
	if err != nil {
		return err
	}
	doc.FCFS, doc.SJF = fcfsDoc, sjfDoc

	// 1. Short-class p99 must improve, batch must not be starved.
	fShort, ok := fcfsRes.Classes[doc.ShortClass]
	if !ok {
		return fmt.Errorf("trace has no %q class", doc.ShortClass)
	}
	sShort := sjfRes.Classes[doc.ShortClass]
	if sShort.P99US >= fShort.P99US {
		return fmt.Errorf("sjf %s p99 %dus is not better than fcfs %dus",
			doc.ShortClass, sShort.P99US, fShort.P99US)
	}
	doc.ShortP99Improve = float64(fShort.P99US) / float64(sShort.P99US)
	if sjfRes.Classes["batch"].Count != fcfsRes.Classes["batch"].Count {
		return fmt.Errorf("batch completions differ across modes (starvation?)")
	}

	// 2. Replay-twice determinism, both modes.
	for _, mode := range []service.SchedulerMode{service.SchedFCFS, service.SchedSJF} {
		again, err := service.Replay(tr, service.ReplayConfig{Sched: mode, Workers: *workers})
		if err != nil {
			return err
		}
		var first []byte
		if mode == service.SchedFCFS {
			first = fcfsRes.Log
		} else {
			first = sjfRes.Log
		}
		if !bytes.Equal(again.Log, first) {
			return fmt.Errorf("%s: replaying the same trace twice diverged", mode)
		}
	}
	doc.ReplayIdentical = true

	// 3. Result byte-identity across modes: execute a trace prefix for
	// real under both schedulers; every request's report digest must
	// match regardless of scheduling order.
	sub := &workload.Trace{Header: tr.Header, Requests: tr.Requests[:min(*execN, len(tr.Requests))]}
	sub.Header.Requests = len(sub.Requests)
	doc.ExecRequests = len(sub.Requests)
	fcfsSHA, err := shaSet(sub, service.SchedFCFS)
	if err != nil {
		return err
	}
	sjfSHA, err := shaSet(sub, service.SchedSJF)
	if err != nil {
		return err
	}
	for seq, sha := range fcfsSHA {
		if sjfSHA[seq] != sha {
			return fmt.Errorf("request %d: report bytes differ across scheduler modes", seq)
		}
	}
	doc.ResultIdentity = true

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return nil
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "slobench: %s p99 %.2fms (fcfs) -> %.2fms (sjf), %.1fx better; wrote %s\n",
		doc.ShortClass, doc.FCFS.Classes[doc.ShortClass].P99Ms, doc.SJF.Classes[doc.ShortClass].P99Ms,
		doc.ShortP99Improve, *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slobench: FAIL:", err)
		os.Exit(1)
	}
}
