// Command chaossmoke is the resilience gate for the pasmd serving path
// (make chaos-smoke). It starts a daemon with a fixed fault-injection
// profile — errors, delays, and panics at the admission, cache,
// execution, and HTTP points — drives a fleet of distinct specs
// through a retrying client, and asserts the chaos invariants:
//
//  1. no accepted job is lost: every job the daemon admits reaches a
//     terminal state, and every spec eventually completes despite
//     injected failures (the client resubmits failed jobs);
//  2. every result is byte-identical to a fault-free local run of the
//     same spec — chaos may slow or fail work, never corrupt it;
//  3. /metrics proves the chaos was real: injected fault counts are
//     non-zero and the server observed client retries;
//  4. the daemon survives it all (injected panics self-heal) and still
//     drains cleanly on SIGTERM.
//
// The chaos seed is fixed, so the injector's per-point decision
// sequences are reproducible run to run. Exit status 0 only if every
// check passes.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

// chaosProfile exercises every fault point. Rates are high enough that
// a short run injects every fault class, low enough that each spec
// completes within a few resubmissions.
const chaosProfile = "admit:error=0.1;cache:error=0.25;" +
	"run:error=0.15,panic=0.1,delay=0.25@20ms;" +
	"http:error=0.12,panic=0.03,delay=0.15@10ms"

const chaosSeed = "1988"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaossmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "chaossmoke: PASS")
}

// specs are small distinct jobs: cheap to reference locally, numerous
// enough that the fault sequences hit admission, cache, run, and HTTP
// probes many times each.
func specs() []experiments.Spec {
	out := []experiments.Spec{
		{Exps: []string{"table1"}, Seed: 1988},
	}
	for seed := uint32(1); seed <= 5; seed++ {
		out = append(out, experiments.Spec{
			Cells: []experiments.CellSpec{{N: 16, P: 4, Muls: 1, Mode: "mimd"}},
			Seed:  seed,
		})
	}
	return out
}

func run() error {
	dir, err := os.MkdirTemp("", "chaossmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pasmd := filepath.Join(dir, "pasmd")
	if out, err := exec.Command("go", "build", "-o", pasmd, "./cmd/pasmd").CombinedOutput(); err != nil {
		return fmt.Errorf("building pasmd: %v\n%s", err, out)
	}

	// Fault-free local reference bytes for every spec, computed with
	// the same engine and marshaling as the daemon's runner.
	opts := experiments.DefaultOptions()
	opts.Parallelism = 2
	want := make([][]byte, len(specs()))
	for i, spec := range specs() {
		rep, err := experiments.RunSpec(spec, experiments.RunConfig{Options: opts})
		if err != nil {
			return fmt.Errorf("local reference for spec %d: %v", i, err)
		}
		if want[i], err = rep.Marshal(); err != nil {
			return fmt.Errorf("marshaling reference %d: %v", i, err)
		}
	}

	addrFile := filepath.Join(dir, "addr")
	daemon := exec.Command(pasmd,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-queue", "16", "-workers", "2", "-parallel", "2",
		"-chaos-seed", chaosSeed, "-chaos-profile", chaosProfile)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting pasmd: %v", err)
	}
	defer daemon.Process.Kill()

	addr, err := waitForFile(addrFile, 15*time.Second)
	if err != nil {
		return err
	}
	cl := client.New(strings.TrimSpace(addr)).WithRetry(client.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Seed:        7,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if _, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %v", err)
	}

	// Drive every spec to completion. Injected run faults and panics
	// fail individual jobs; the client answers by resubmitting — the
	// invariant is that accepted jobs always reach a terminal state
	// (never lost or stuck) and completed bytes are always correct.
	var accepted, failedRuns int
	for i, spec := range specs() {
		got, attempts, err := runToCompletion(ctx, cl, spec, 40)
		if err != nil {
			return fmt.Errorf("spec %d never completed: %v", i, err)
		}
		accepted += attempts.accepted
		failedRuns += attempts.failed
		if !bytes.Equal(got, want[i]) {
			return fmt.Errorf("spec %d: result differs from fault-free local run\nserved:\n%s\nlocal:\n%s", i, got, want[i])
		}
	}
	fmt.Fprintf(os.Stderr, "chaossmoke: %d specs byte-identical under chaos (%d jobs accepted, %d failed+resubmitted) ✓\n",
		len(specs()), accepted, failedRuns)

	// The chaos must have been real, and the server must have seen the
	// client retrying: both are visible in /metrics.
	m, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if m["faults/injected_total"] <= 0 {
		return fmt.Errorf("faults/injected_total = %v, want > 0 — chaos profile inactive?", m["faults/injected_total"])
	}
	if m["service/retried_submits"] <= 0 {
		return fmt.Errorf("service/retried_submits = %v, want > 0 — client retries invisible to server", m["service/retried_submits"])
	}
	fmt.Fprintf(os.Stderr, "chaossmoke: metrics: injected=%v retried_submits=%v panics_recovered=%v ✓\n",
		m["faults/injected_total"], m["service/retried_submits"], m["service/panics_recovered"])

	// The daemon took panics and errors all run; it must still drain
	// cleanly.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %v", err)
	}
	exit := make(chan error, 1)
	go func() { exit <- daemon.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			return fmt.Errorf("pasmd exited uncleanly after chaos run: %v", err)
		}
	case <-time.After(60 * time.Second):
		return errors.New("pasmd did not exit after drain")
	}
	fmt.Fprintln(os.Stderr, "chaossmoke: clean drain after chaos ✓")
	return nil
}

type attemptCount struct {
	accepted int // jobs the daemon admitted
	failed   int // admitted jobs that ended failed (injected faults)
}

// runToCompletion submits spec until one admitted job finishes done,
// returning its result bytes. Every admitted job is waited to a
// terminal state — a job that never settles is an invariant violation,
// not a retryable condition.
func runToCompletion(ctx context.Context, cl *client.Client, spec experiments.Spec, maxSubmits int) ([]byte, attemptCount, error) {
	var count attemptCount
	for s := 0; s < maxSubmits; s++ {
		st, err := cl.Submit(ctx, spec, client.SubmitOptions{})
		if err != nil {
			// Submission itself exhausted its retries (injected admission
			// or HTTP faults); nothing was accepted, try again.
			continue
		}
		count.accepted++
		st, err = waitTerminal(ctx, cl, st.ID)
		if err != nil {
			return nil, count, fmt.Errorf("accepted job %s lost: %v", st.ID, err)
		}
		switch st.State {
		case service.StateDone:
			res, err := cl.Result(ctx, st.ID)
			if err != nil {
				return nil, count, fmt.Errorf("result of done job %s: %v", st.ID, err)
			}
			return res, count, nil
		case service.StateFailed:
			count.failed++ // injected run fault or panic: resubmit
		default:
			return nil, count, fmt.Errorf("job %s ended %s (%s)", st.ID, st.State, st.Error)
		}
	}
	return nil, count, fmt.Errorf("no success in %d submissions", maxSubmits)
}

// waitTerminal polls (rather than long-polls) so injected HTTP faults
// on individual status reads are retried quickly by the client policy.
func waitTerminal(ctx context.Context, cl *client.Client, id string) (service.JobStatus, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Job(ctx, id)
		if err != nil {
			return service.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return service.JobStatus{}, fmt.Errorf("job %s not terminal after 60s", id)
}

func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for %s", path)
}
