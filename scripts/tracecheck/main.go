// Command tracecheck validates a Chrome trace-event JSON file against
// the subset of the format the obs exporter emits (and Perfetto
// requires): a traceEvents array whose entries carry a name, a known
// phase, integer pid/tid, a timestamp on non-metadata events, and a
// non-negative duration on complete events. Used by `make trace-smoke`.
//
// Usage: go run ./scripts/tracecheck FILE
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
	n, err := obs.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s ok (%d events)\n", os.Args[1], n)
}
