// Command loadgen is a closed-loop micro load generator for pasmd:
// -c concurrent clients each submit-wait-fetch -n/-c requests back to
// back, and the run reports throughput and latency percentiles. Two
// phases separate the serving regimes:
//
//	cold — every request uses a distinct seed, so every request is a
//	       cache miss that simulates from scratch;
//	hit  — every request uses the same spec (pre-warmed), so every
//	       request is served from the result cache.
//
// Usage:
//
//	loadgen -addr HOST:PORT [-c 4] [-n 40] [-exp table1]
//	        [-phase both|cold|hit] [-seed 1988] [-out FILE|-]
//	        [-pes-mix "4:0.5,16:0.3,64:0.2"]
//	        [-gateway] [-trace-sample 0]
//	loadgen -cohorts SPEC [-duration 5s] [-seed 1988] -record FILE
//	loadgen -addr HOST:PORT [-cohorts SPEC | -replay FILE] [-speed 1]
//
// The second and third forms are the open-loop workload engine
// (internal/workload): -cohorts describes multi-client cohorts with
// Poisson/Gamma/Weibull arrivals, per-cohort spec mixes, SLO classes,
// and diurnal ramps (see docs/WORKLOAD.md for the grammar); -record
// writes the generated trace as versioned JSONL without touching any
// server; -replay fires a previously recorded trace file. Open-loop
// runs submit at the trace's own timestamps — arrival times never
// depend on response times, so the run measures how latency degrades
// under a fixed offered load instead of throttling with the server.
// -speed scales replay time (2 = twice as fast). Requests carry their
// cohort's SLO class and client identity, and the report adds
// per-class client-observed percentiles, SLO hit rates, and the
// server's fairness index.
//
// -pes-mix drives a partition-mode server (pasmd -machine-pes) with a
// mixed-size job storm: each cold-phase request draws its spec's pes
// from the given size:weight distribution (deterministically from
// -seed, so two runs submit the identical storm). Sizes must be powers
// of two and should not exceed the server's machine. Empty (default)
// leaves pes off the spec — the 16-PE prototype.
//
// The JSON document (BENCH_service.json in CI) goes to -out; progress
// goes to stderr.
//
// -gateway marks -addr as a pasmgw gateway: after the phases the run
// snapshots the gateway's /metrics and records the cluster-wide cache
// hit rate, failovers, hedges, and peer fills alongside the latency
// numbers (BENCH_cluster.json compares these for 1 vs 3 replicas).
//
// After the phases the run also reads the server's /metrics v2
// per-stage latency histograms (queue wait, run, total — cluster-level
// aggregates in -gateway mode) and reports a stage breakdown: where a
// request's time went server-side, next to the client-observed
// percentiles. -trace-sample attaches an X-Pasm-Trace context to that
// fraction of submissions, so a loadgen run leaves inspectable
// request timelines in the server's /debug/requests ring.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/prng"
	"repro/internal/workload"
)

type phaseResult struct {
	Phase      string  `json:"phase"`
	Requests   int     `json:"requests"`
	Concurrent int     `json:"concurrent"`
	Errors     int     `json:"errors"`
	Seconds    float64 `json:"seconds"`
	Throughput float64 `json:"throughput_rps"`
	P50Millis  float64 `json:"p50_ms"`
	P90Millis  float64 `json:"p90_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MaxMillis  float64 `json:"max_ms"`
	Bytes      int64   `json:"bytes_total"`
}

// clusterStats summarizes a gateway's /metrics after the run
// (-gateway mode only).
type clusterStats struct {
	Replicas  float64 `json:"replicas"`
	Healthy   float64 `json:"healthy"`
	CacheHits float64 `json:"cache_hits"`
	Misses    float64 `json:"cache_misses"`
	HitRate   float64 `json:"hit_rate"`
	Failovers float64 `json:"failovers"`
	Hedges    float64 `json:"hedges"`
	PeerFills float64 `json:"peer_fills"`
}

// stageStats is one server-side serving stage's latency summary, read
// from /metrics v2 after the phases (service/* histograms standalone,
// cluster/* aggregates in -gateway mode).
type stageStats struct {
	Stage  string  `json:"stage"`
	Count  float64 `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// classResult is one SLO class's client-observed summary from an
// open-loop workload run.
type classResult struct {
	Class     string  `json:"class"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	RateLimit int     `json:"rate_limited,omitempty"`
	SLOMs     int64   `json:"slo_ms,omitempty"`
	SLOHits   int     `json:"slo_hits,omitempty"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`
}

type benchDoc struct {
	Schema   string        `json:"schema"`
	Addr     string        `json:"addr"`
	Exp      string        `json:"exp,omitempty"`
	PesMix   string        `json:"pes_mix,omitempty"`
	Workload string        `json:"workload,omitempty"`
	Host     string        `json:"host"`
	CPUs     int           `json:"cpus"`
	Code     string        `json:"code_version"`
	Phases   []phaseResult `json:"phases,omitempty"`
	Classes  []classResult `json:"classes,omitempty"`
	Fairness float64       `json:"fairness_jain,omitempty"`
	Stages   []stageStats  `json:"server_stages,omitempty"`
	Cluster  *clusterStats `json:"cluster,omitempty"`
}

// pesMixEntry is one size class of the -pes-mix distribution.
type pesMixEntry struct {
	pes    int
	weight float64
}

// parsePesMix parses "4:0.5,16:0.3,64:0.2" into size classes.
func parsePesMix(s string) ([]pesMixEntry, error) {
	var mix []pesMixEntry
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sizeStr, weightStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("pes-mix entry %q is not size:weight", part)
		}
		pes, err := strconv.Atoi(strings.TrimSpace(sizeStr))
		if err != nil || pes < 1 || pes&(pes-1) != 0 {
			return nil, fmt.Errorf("pes-mix size %q must be a power of two", sizeStr)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("pes-mix weight %q must be a positive number", weightStr)
		}
		mix = append(mix, pesMixEntry{pes: pes, weight: w})
		total += w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("pes-mix %q holds no entries", s)
	}
	for i := range mix {
		mix[i].weight /= total
	}
	return mix, nil
}

// mixSpec builds request i's spec under a -pes-mix storm: the size is
// drawn deterministically from the mix (same seed, same storm), and
// the work is a matmul cell that spans the drawn partition — named
// sweeps are pinned to the 16-PE prototype, so small partitions get a
// proportionate custom cell instead.
func mixSpec(mix []pesMixEntry, seed uint32, i int) experiments.Spec {
	r := float64(prng.New(seed+uint32(i)).Uint32()) / (1 << 32)
	pes := mix[len(mix)-1].pes
	for _, e := range mix {
		if r < e.weight {
			pes = e.pes
			break
		}
		r -= e.weight
	}
	n := pes
	if n < 8 {
		n = 8
	}
	return experiments.Spec{
		Cells: []experiments.CellSpec{{N: n, P: pes, Muls: 1, Mode: "simd"}},
		PEs:   pes,
		Seed:  seed + uint32(i),
	}
}

// serverStages extracts the per-stage breakdown from a flattened
// /metrics map under the given prefix.
func serverStages(m map[string]float64, prefix string) []stageStats {
	var out []stageStats
	for _, stage := range []string{"queue_wait_ms", "partition_wait_ms", "run_ms", "total_ms"} {
		base := prefix + stage
		if m[base+"/count"] == 0 {
			continue
		}
		out = append(out, stageStats{
			Stage:  stage,
			Count:  m[base+"/count"],
			MeanMS: m[base+"/mean"],
			P50MS:  m[base+"/p50"],
			P95MS:  m[base+"/p95"],
			P99MS:  m[base+"/p99"],
		})
	}
	return out
}

func main() {
	addr := flag.String("addr", "", "pasmd address (required)")
	c := flag.Int("c", 4, "concurrent closed-loop clients")
	n := flag.Int("n", 40, "total requests per phase")
	exp := flag.String("exp", "table1", "experiment to request")
	phase := flag.String("phase", "both", "cold, hit, or both")
	seed := flag.Uint("seed", 1988, "base seed (cold phase uses seed+i per request)")
	pesMix := flag.String("pes-mix", "", "weighted machine-size mix for cold requests, e.g. \"4:0.5,16:0.3,64:0.2\" (empty = no pes field)")
	gateway := flag.Bool("gateway", false, "treat -addr as a pasmgw gateway and record cluster metrics")
	traceSample := flag.Float64("trace-sample", 0, "attach an X-Pasm-Trace context to this fraction of submissions")
	out := flag.String("out", "-", "write the JSON results to `file` (\"-\" for stdout)")
	cohorts := flag.String("cohorts", "", "open-loop workload cohorts, e.g. \"name=probe,proc=poisson,rate=50,class=interactive,slo=50,mix=table1;name=bulk,proc=weibull,shape=0.6,rate=5,mix=cell(32,16,1,smimd)\"")
	duration := flag.Duration("duration", 5*time.Second, "generated workload length (with -cohorts)")
	record := flag.String("record", "", "write the generated trace to `file` as workload/tracev1 JSONL and exit (no server needed)")
	replay := flag.String("replay", "", "fire a recorded trace `file` instead of generating one")
	speed := flag.Float64("speed", 1, "open-loop time scale (2 = replay twice as fast)")
	flag.Parse()

	// Workload engine forms: generate (and optionally just record) or
	// replay a trace, open-loop.
	var trace *workload.Trace
	switch {
	case *cohorts != "" && *replay != "":
		fmt.Fprintln(os.Stderr, "loadgen: -cohorts and -replay are mutually exclusive")
		os.Exit(2)
	case *cohorts != "":
		cs, err := workload.ParseCohorts(*cohorts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		trace, err = workload.Generate(workload.GenConfig{
			Name: "loadgen", Seed: int64(*seed), Duration: *duration, Cohorts: cs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
	case *replay != "":
		raw, err := os.ReadFile(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if trace, err = workload.Parse(raw); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", *replay, err)
			os.Exit(1)
		}
	}
	if *record != "" {
		if trace == nil {
			fmt.Fprintln(os.Stderr, "loadgen: -record needs -cohorts (or -replay to re-encode)")
			os.Exit(2)
		}
		raw, err := trace.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*record, raw, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: recorded %d requests to %s\n", len(trace.Requests), *record)
		return
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		flag.Usage()
		os.Exit(2)
	}

	var mix []pesMixEntry
	if *pesMix != "" {
		var err error
		if mix, err = parsePesMix(*pesMix); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
	}

	cl := client.New(*addr)
	if *traceSample > 0 {
		cl = cl.WithTracing(*traceSample, uint64(*seed)|1)
	}
	ctx := context.Background()
	doc := benchDoc{
		Schema: "pasm-loadgen/1",
		Addr:   *addr,
		Exp:    *exp,
		PesMix: *pesMix,
		CPUs:   runtime.NumCPU(),
		Code:   experiments.CodeVersion,
	}
	if h, err := os.Hostname(); err == nil {
		doc.Host = h
	}
	if _, err := cl.Health(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	if trace != nil {
		doc.Workload = trace.Header.Name
		doc.Classes = runTrace(ctx, cl, trace, *speed)
		if m, err := cl.Metrics(ctx); err == nil {
			prefix := "service/"
			if *gateway {
				prefix = "cluster/"
			}
			doc.Fairness = m[prefix+"fairness_jain"]
			doc.Stages = serverStages(m, prefix)
		}
		writeDoc(doc, *out)
		return
	}

	spec := func(s uint32) experiments.Spec {
		return experiments.Spec{Exps: []string{*exp}, Seed: s}
	}
	if *phase == "both" || *phase == "cold" {
		doc.Phases = append(doc.Phases, runPhase(ctx, cl, "cold", *c, *n, func(i int) experiments.Spec {
			if mix != nil {
				return mixSpec(mix, uint32(*seed), i)
			}
			return spec(uint32(*seed) + uint32(i))
		}))
	}
	if *phase == "both" || *phase == "hit" {
		// Pre-warm one entry, then hammer it: every timed request hits.
		warm := spec(uint32(*seed))
		if _, _, err := cl.Run(ctx, warm, client.SubmitOptions{Wait: 60 * time.Second}); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: warm-up: %v\n", err)
			os.Exit(1)
		}
		doc.Phases = append(doc.Phases, runPhase(ctx, cl, "hit", *c, *n, func(int) experiments.Spec {
			return warm
		}))
	}

	// Server-side stage breakdown from /metrics v2: how the requests'
	// time split across queue wait, run, and total on the serving side.
	m, err := cl.Metrics(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: metrics: %v\n", err)
		os.Exit(1)
	}
	stagePrefix := "service/"
	if *gateway {
		stagePrefix = "cluster/"
	}
	doc.Stages = serverStages(m, stagePrefix)
	if len(doc.Stages) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: server stages:  %-14s %8s %8s %8s %8s %8s\n",
			"stage", "count", "mean", "p50", "p95", "p99")
		for _, st := range doc.Stages {
			fmt.Fprintf(os.Stderr, "loadgen:                 %-14s %8.0f %8.2f %8.2f %8.2f %8.2f\n",
				st.Stage, st.Count, st.MeanMS, st.P50MS, st.P95MS, st.P99MS)
		}
	}

	if *gateway {
		cs := &clusterStats{
			Replicas:  m["cluster/replicas"],
			Healthy:   m["cluster/healthy"],
			CacheHits: m["cluster/cache_hits"],
			Misses:    m["cluster/cache_misses"],
			Failovers: m["cluster/failovers"],
			Hedges:    m["cluster/hedges"],
			PeerFills: m["cluster/peer_fills"],
		}
		if total := cs.CacheHits + cs.Misses; total > 0 {
			cs.HitRate = cs.CacheHits / total
		}
		doc.Cluster = cs
		fmt.Fprintf(os.Stderr, "loadgen: cluster: %g/%g healthy, hit rate %.2f, %g failovers, %g peer fills\n",
			cs.Healthy, cs.Replicas, cs.HitRate, cs.Failovers, cs.PeerFills)
	}

	writeDoc(doc, *out)
}

func writeDoc(doc benchDoc, out string) {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", out)
}

// runTrace fires a trace open-loop: request i is submitted at its
// recorded offset (scaled by speed), regardless of how earlier
// requests are faring — offered load is fixed by the trace, and
// latency absorbs the pressure. Each submission carries its cohort's
// class, SLO, and client identity; results aggregate per class.
func runTrace(ctx context.Context, cl *client.Client, tr *workload.Trace, speed float64) []classResult {
	if speed <= 0 {
		speed = 1
	}
	fmt.Fprintf(os.Stderr, "loadgen: open-loop trace %q: %d requests, speed %gx\n",
		tr.Header.Name, len(tr.Requests), speed)
	type obs struct {
		class   string
		sloMS   int64
		ms      float64
		err     error
		limited bool
	}
	results := make([]obs, len(tr.Requests))
	var wg sync.WaitGroup
	start := time.Now()
	for i, r := range tr.Requests {
		due := time.Duration(float64(r.AtUS) / speed * float64(time.Microsecond))
		if wait := time.Until(start.Add(due)); wait > 0 {
			time.Sleep(wait)
		}
		wg.Add(1)
		go func(i int, r workload.Request) {
			defer wg.Done()
			t0 := time.Now()
			_, _, err := cl.Run(ctx, r.Spec, client.SubmitOptions{
				Wait: 60 * time.Second, Class: r.Class, SLOMs: r.SLOMs, ClientID: r.Client,
			})
			o := obs{class: r.Class, sloMS: r.SLOMs, ms: time.Since(t0).Seconds() * 1000, err: err}
			if err != nil && strings.Contains(err.Error(), "429") {
				o.limited = true
			}
			results[i] = o
		}(i, r)
	}
	wg.Wait()

	byClass := map[string][]obs{}
	for _, o := range results {
		byClass[o.class] = append(byClass[o.class], o)
	}
	names := make([]string, 0, len(byClass))
	for c := range byClass {
		names = append(names, c)
	}
	sort.Strings(names)
	var out []classResult
	for _, name := range names {
		group := byClass[name]
		cr := classResult{Class: name, Requests: len(group)}
		var lat []float64
		for _, o := range group {
			if o.sloMS > cr.SLOMs {
				cr.SLOMs = o.sloMS
			}
			if o.err != nil {
				cr.Errors++
				if o.limited {
					cr.RateLimit++
				}
				continue
			}
			lat = append(lat, o.ms)
			if o.sloMS > 0 && o.ms <= float64(o.sloMS) {
				cr.SLOHits++
			}
		}
		sort.Float64s(lat)
		pct := func(p float64) float64 {
			if len(lat) == 0 {
				return 0
			}
			i := int(p*float64(len(lat))) - 1
			if i < 0 {
				i = 0
			}
			return lat[i]
		}
		cr.P50Millis, cr.P95Millis, cr.P99Millis = pct(0.50), pct(0.95), pct(0.99)
		if len(lat) > 0 {
			cr.MaxMillis = lat[len(lat)-1]
		}
		fmt.Fprintf(os.Stderr, "loadgen: class %-12s %4d reqs, %d errors, p50 %.1fms p99 %.1fms\n",
			name, cr.Requests, cr.Errors, cr.P50Millis, cr.P99Millis)
		out = append(out, cr)
	}
	return out
}

// runPhase drives n requests through c closed-loop workers and
// aggregates latencies.
func runPhase(ctx context.Context, cl *client.Client, name string, c, n int, specFor func(i int) experiments.Spec) phaseResult {
	fmt.Fprintf(os.Stderr, "loadgen: phase %s: %d requests, %d clients\n", name, n, c)
	lat := make([]float64, n)
	var errs, bytesTotal int64
	var next int64 = -1
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				t0 := time.Now()
				raw, _, err := cl.Run(ctx, specFor(i), client.SubmitOptions{Wait: 60 * time.Second})
				lat[i] = time.Since(t0).Seconds() * 1000
				if err != nil {
					atomic.AddInt64(&errs, 1)
					fmt.Fprintf(os.Stderr, "loadgen: request %d: %v\n", i, err)
					continue
				}
				atomic.AddInt64(&bytesTotal, int64(len(raw)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if n == 0 {
			return 0
		}
		i := int(p*float64(n)) - 1
		if i < 0 {
			i = 0
		}
		return lat[i]
	}
	res := phaseResult{
		Phase:      name,
		Requests:   n,
		Concurrent: c,
		Errors:     int(errs),
		Seconds:    elapsed,
		Throughput: float64(n) / elapsed,
		P50Millis:  pct(0.50),
		P90Millis:  pct(0.90),
		P99Millis:  pct(0.99),
		MaxMillis:  lat[n-1],
		Bytes:      bytesTotal,
	}
	fmt.Fprintf(os.Stderr, "loadgen: phase %s: %.1f req/s, p50 %.1fms, p99 %.1fms, %d errors\n",
		name, res.Throughput, res.P50Millis, res.P99Millis, res.Errors)
	return res
}
