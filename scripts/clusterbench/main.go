// Command clusterbench measures the pasm cluster serving path through
// pasmgw (make bench-cluster). It runs the same loadgen workload
// against two topologies — one replica and three replicas behind the
// gateway — and writes a combined document comparing latency, cache
// hit rate, and peer-fill activity:
//
//	clusterbench [-c 4] [-n 40] [-exp table1] [-out BENCH_cluster.json]
//
// The interesting comparison: with the hash routing policy, the
// three-replica hit rate should match the single-replica hit rate
// (each spec always lands on its owner), and the cold phase spreads
// across replicas. The per-topology sections are verbatim loadgen
// documents (schema pasm-loadgen/1) with the cluster metrics block.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"flag"
)

type topoResult struct {
	Replicas int             `json:"replicas"`
	Doc      json.RawMessage `json:"result"`
}

func main() {
	c := flag.Int("c", 4, "concurrent loadgen clients")
	n := flag.Int("n", 40, "requests per phase")
	exp := flag.String("exp", "table1", "experiment to request")
	out := flag.String("out", "BENCH_cluster.json", "output `file`")
	flag.Parse()
	if err := run(*c, *n, *exp, *out); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench: FAIL:", err)
		os.Exit(1)
	}
}

func run(c, n int, exp, out string) error {
	dir, err := os.MkdirTemp("", "clusterbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pasmd := filepath.Join(dir, "pasmd")
	pasmgw := filepath.Join(dir, "pasmgw")
	loadgen := filepath.Join(dir, "loadgen")
	for bin, pkg := range map[string]string{
		pasmd: "./cmd/pasmd", pasmgw: "./cmd/pasmgw", loadgen: "./scripts/loadgen",
	} {
		if b, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, b)
		}
	}

	doc := struct {
		Schema     string       `json:"schema"`
		Topologies []topoResult `json:"topologies"`
	}{Schema: "pasm-cluster-bench/1"}

	for _, replicas := range []int{1, 3} {
		raw, err := runTopology(dir, pasmd, pasmgw, loadgen, replicas, c, n, exp)
		if err != nil {
			return fmt.Errorf("topology %d: %v", replicas, err)
		}
		doc.Topologies = append(doc.Topologies, topoResult{Replicas: replicas, Doc: raw})
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		os.Stdout.Write(buf)
		return nil
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "clusterbench: wrote %s\n", out)
	return nil
}

// runTopology starts `replicas` pasmd daemons and a pasmgw in front,
// drives loadgen -gateway through it, and returns the loadgen JSON.
func runTopology(dir, pasmd, pasmgw, loadgen string, replicas, c, n int, exp string) (json.RawMessage, error) {
	fmt.Fprintf(os.Stderr, "clusterbench: topology: %d replica(s)\n", replicas)
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Signal(syscall.SIGTERM)
			}
		}
		for _, p := range procs {
			p.Wait()
		}
	}()

	var replicaFlags []string
	for i := 0; i < replicas; i++ {
		name := fmt.Sprintf("r%d", i)
		addrFile := filepath.Join(dir, fmt.Sprintf("addr-%d-%s", replicas, name))
		cmd := exec.Command(pasmd,
			"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-name", name,
			"-queue", "64", "-workers", "2", "-parallel", "2")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("starting %s: %v", name, err)
		}
		procs = append(procs, cmd)
		addr, err := waitForFile(addrFile, 15*time.Second)
		if err != nil {
			return nil, err
		}
		replicaFlags = append(replicaFlags, "-replica", name+"="+strings.TrimSpace(addr))
	}

	gwAddrFile := filepath.Join(dir, fmt.Sprintf("addr-%d-gw", replicas))
	gwArgs := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", gwAddrFile, "-policy", "hash",
	}, replicaFlags...)
	gw := exec.Command(pasmgw, gwArgs...)
	gw.Stderr = os.Stderr
	if err := gw.Start(); err != nil {
		return nil, fmt.Errorf("starting pasmgw: %v", err)
	}
	procs = append(procs, gw)
	gwAddr, err := waitForFile(gwAddrFile, 15*time.Second)
	if err != nil {
		return nil, err
	}

	outFile := filepath.Join(dir, fmt.Sprintf("bench-%d.json", replicas))
	lg := exec.Command(loadgen,
		"-addr", strings.TrimSpace(gwAddr), "-gateway",
		"-c", fmt.Sprint(c), "-n", fmt.Sprint(n), "-exp", exp, "-out", outFile)
	lg.Stderr = os.Stderr
	if err := lg.Run(); err != nil {
		return nil, fmt.Errorf("loadgen: %v", err)
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for %s", path)
}
