// Command covercheck is the coverage gate (make cover). It runs
// `go test -cover` over every package, prints per-package statement
// coverage, and fails if any package falls more than -slack points
// below the checked-in baseline (COVERAGE_baseline.json) — so coverage
// can only ratchet up. Run with -update after intentionally improving
// coverage to raise the floor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var coverLine = regexp.MustCompile(`^(ok|FAIL)\s+(\S+)\s+.*coverage: ([0-9.]+)% of statements`)

func main() {
	baselinePath := flag.String("baseline", "COVERAGE_baseline.json", "per-package coverage floor `file`")
	slack := flag.Float64("slack", 0.5, "allowed drop below baseline, percentage points")
	update := flag.Bool("update", false, "rewrite the baseline from the current run instead of gating")
	flag.Parse()

	if err := run(*baselinePath, *slack, *update); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "covercheck: PASS")
}

func run(baselinePath string, slack float64, update bool) error {
	cmd := exec.Command("go", "test", "-count=1", "-cover", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test -cover failed:\n%s", out)
	}

	current := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		if m := coverLine.FindStringSubmatch(sc.Text()); m != nil {
			pct, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return fmt.Errorf("parsing %q: %v", sc.Text(), err)
			}
			current[m[2]] = pct
		}
	}
	if len(current) == 0 {
		return fmt.Errorf("no coverage lines in go test output:\n%s", out)
	}

	if update {
		b, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baselinePath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "covercheck: wrote %s (%d packages)\n", baselinePath, len(current))
		return nil
	}

	baseline := map[string]float64{}
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -update to create it): %v", err)
	}
	if err := json.Unmarshal(b, &baseline); err != nil {
		return fmt.Errorf("parsing %s: %v", baselinePath, err)
	}

	pkgs := make([]string, 0, len(current))
	for pkg := range current {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	var failures []string
	for _, pkg := range pkgs {
		cur := current[pkg]
		floor, tracked := baseline[pkg]
		switch {
		case !tracked:
			fmt.Printf("%-40s %6.1f%%  (new — add with -update)\n", pkg, cur)
		case cur+slack < floor:
			fmt.Printf("%-40s %6.1f%%  BELOW baseline %.1f%%\n", pkg, cur, floor)
			failures = append(failures, fmt.Sprintf("%s: %.1f%% < %.1f%%", pkg, cur, floor))
		default:
			fmt.Printf("%-40s %6.1f%%  (baseline %.1f%%)\n", pkg, cur, floor)
		}
	}
	for pkg := range baseline {
		if _, ok := current[pkg]; !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but produced no coverage (tests deleted?)", pkg))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("coverage regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
