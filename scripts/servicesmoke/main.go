// Command servicesmoke is the end-to-end gate for the pasmd serving
// path (make service-smoke). It builds the real binaries, starts a
// daemon on an ephemeral port, and asserts the acceptance criteria:
//
//  1. a submitted Table-1 spec returns bytes identical to local
//     `pasmbench -json - -host-timings=false` — cold miss and cache
//     hit, via both the Go client and `pasmbench -remote`;
//  2. with a single busy worker and a depth-1 queue, the next distinct
//     submission gets 503 + Retry-After instead of unbounded queuing;
//  3. SIGTERM drains gracefully: new work is rejected, every accepted
//     job finishes and its result stays fetchable, the process exits 0.
//
// Exit status 0 only if every check passes.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servicesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "servicesmoke: PASS")
}

// slowCell is a ~2s simulation (n=256 MIMD): long enough to observe
// queue states deterministically, short enough for CI.
func slowSpec(seed uint32) experiments.Spec {
	return experiments.Spec{
		Cells: []experiments.CellSpec{{N: 256, P: 4, Muls: 2, Mode: "mimd"}},
		Seed:  seed,
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "servicesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pasmd := filepath.Join(dir, "pasmd")
	pasmbench := filepath.Join(dir, "pasmbench")
	for bin, pkg := range map[string]string{pasmd: "./cmd/pasmd", pasmbench: "./cmd/pasmbench"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Local reference bytes: the deterministic v2 document.
	table1 := []string{"-exp", "table1", "-seed", "1988", "-parallel", "2", "-host-timings=false", "-json", "-"}
	want, err := exec.Command(pasmbench, table1...).Output()
	if err != nil {
		return fmt.Errorf("local pasmbench: %v", err)
	}

	// Start the daemon: one worker, one queue slot, ephemeral port.
	addrFile := filepath.Join(dir, "addr")
	daemon := exec.Command(pasmd,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-queue", "1", "-workers", "1", "-parallel", "2")
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting pasmd: %v", err)
	}
	defer daemon.Process.Kill()

	addr, err := waitForFile(addrFile, 15*time.Second)
	if err != nil {
		return err
	}
	cl := client.New(strings.TrimSpace(addr))
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// 0. The enriched /healthz body: the cluster gateway routes on these
	// fields, so their presence and sanity are part of the contract.
	h, err := cl.HealthInfo(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	switch {
	case h.Status != "ok":
		return fmt.Errorf("healthz status = %q, want ok", h.Status)
	case h.Draining:
		return errors.New("healthz claims draining on a fresh daemon")
	case h.Workers != 1:
		return fmt.Errorf("healthz workers = %d, want 1", h.Workers)
	case h.Code != experiments.CodeVersion:
		return fmt.Errorf("healthz code = %q, want %q", h.Code, experiments.CodeVersion)
	}
	fmt.Fprintln(os.Stderr, "servicesmoke: enriched /healthz body sane ✓")

	// 1a. Cold miss through the Go client: byte-identical.
	spec := experiments.Spec{Exps: []string{"table1"}, Seed: 1988}
	got, st, err := cl.Run(ctx, spec, client.SubmitOptions{Wait: 30 * time.Second})
	if err != nil {
		return fmt.Errorf("cold submit: %v", err)
	}
	if st.Cached {
		return errors.New("cold submit claims cached")
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("cold result differs from local pasmbench -json:\nserved:\n%s\nlocal:\n%s", got, want)
	}
	fmt.Fprintln(os.Stderr, "servicesmoke: cold miss byte-identical ✓")

	// 1b. Cache hit: served instantly, same bytes.
	got, st, err = cl.Run(ctx, spec, client.SubmitOptions{Wait: 30 * time.Second})
	if err != nil {
		return fmt.Errorf("hit submit: %v", err)
	}
	if !st.Cached {
		return errors.New("resubmit was not served from cache")
	}
	if !bytes.Equal(got, want) {
		return errors.New("cache hit bytes differ")
	}
	fmt.Fprintln(os.Stderr, "servicesmoke: cache hit byte-identical ✓")

	// 1c. The CLI remote mode end to end.
	remoteOut, err := exec.Command(pasmbench,
		"-remote", strings.TrimSpace(addr), "-exp", "table1", "-seed", "1988", "-json", "-").Output()
	if err != nil {
		return fmt.Errorf("pasmbench -remote: %v", err)
	}
	if !bytes.Equal(remoteOut, want) {
		return errors.New("pasmbench -remote bytes differ from local run")
	}
	fmt.Fprintln(os.Stderr, "servicesmoke: pasmbench -remote byte-identical ✓")

	// 2. Backpressure: occupy the worker, fill the queue, expect 503.
	slowA, err := cl.Submit(ctx, slowSpec(1), client.SubmitOptions{})
	if err != nil {
		return fmt.Errorf("slow A: %v", err)
	}
	if err := waitForState(ctx, cl, slowA.ID, service.StateRunning); err != nil {
		return fmt.Errorf("slow A never ran: %v", err)
	}
	slowB, err := cl.Submit(ctx, slowSpec(2), client.SubmitOptions{})
	if err != nil {
		return fmt.Errorf("slow B should queue: %v", err)
	}
	_, err = cl.Submit(ctx, slowSpec(3), client.SubmitOptions{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		return fmt.Errorf("queue-full submit: err = %v, want HTTP 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		return errors.New("503 without a Retry-After hint")
	}
	fmt.Fprintf(os.Stderr, "servicesmoke: queue full -> 503, retry after %s ✓\n", apiErr.RetryAfter)

	// 3. Graceful shutdown with accepted jobs still in flight.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %v", err)
	}
	if err := waitForDraining(ctx, cl); err != nil {
		return err
	}
	if _, err = cl.Submit(ctx, slowSpec(4), client.SubmitOptions{}); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		return fmt.Errorf("drain submit: err = %v, want HTTP 503", err)
	}
	for _, j := range []service.JobStatus{slowA, slowB} {
		st, err := cl.Wait(ctx, j.ID)
		if err != nil {
			return fmt.Errorf("waiting for %s during drain: %v", j.ID, err)
		}
		if st.State != service.StateDone {
			return fmt.Errorf("accepted job %s ended %s (%s) — drain lost work", j.ID, st.State, st.Error)
		}
		if res, err := cl.Result(ctx, j.ID); err != nil || len(res) == 0 {
			return fmt.Errorf("result of %s during drain: %v", j.ID, err)
		}
	}
	fmt.Fprintln(os.Stderr, "servicesmoke: drain completed both accepted jobs ✓")

	exit := make(chan error, 1)
	go func() { exit <- daemon.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			return fmt.Errorf("pasmd exited uncleanly: %v", err)
		}
	case <-time.After(60 * time.Second):
		return errors.New("pasmd did not exit after drain")
	}
	fmt.Fprintln(os.Stderr, "servicesmoke: clean exit after drain ✓")
	return nil
}

func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for %s", path)
}

func waitForState(ctx context.Context, cl *client.Client, id string, want service.State) error {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Job(ctx, id)
		if err != nil {
			return err
		}
		if st.State == want {
			return nil
		}
		if st.State.Terminal() {
			return fmt.Errorf("job %s reached %s, wanted %s", id, st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("timed out waiting for %s -> %s", id, want)
}

func waitForDraining(ctx context.Context, cl *client.Client) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		h, err := cl.Health(ctx)
		if err == nil && h["draining"] == true {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return errors.New("daemon never reported draining after SIGTERM")
}
