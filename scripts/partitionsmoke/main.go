// Command partitionsmoke is the end-to-end gate for partition mode
// (make partition-smoke). It builds the real binaries, starts pasmd
// with -machine-pes 64, and asserts the partitioned-machine contract:
//
//  1. /healthz advertises the machine size and scheduling policy;
//  2. partition residency is invisible in the results: a pes=32 spec
//     served while co-resident with another job is byte-identical to
//     local `pasmbench -pes 32 -json -` with host timings off (the
//     subcube isomorphism, measured across the HTTP boundary);
//  3. concurrent packing really happens: four 16-PE jobs fill all 64
//     PEs at once, and the machine returns to fully free;
//  4. a `loadgen -pes-mix` mixed-size storm completes with zero
//     errors;
//  5. a spec larger than the machine is a 400, not a queued job;
//  6. SIGTERM drains: every accepted job — including ones still
//     waiting for a partition — finishes, and the process exits 0.
//
// Exit status 0 only if every check passes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partitionsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: PASS")
}

// slowSpec is a ~1s MIMD cell pinned to a pes-PE partition: long
// enough that a batch of submissions overlaps on the machine, short
// enough for CI. Distinct seeds keep submissions from coalescing.
func slowSpec(pes int, seed uint32) experiments.Spec {
	return experiments.Spec{
		Cells: []experiments.CellSpec{{N: 128, P: 4, Muls: 2, Mode: "mimd"}},
		PEs:   pes,
		Seed:  seed,
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "partitionsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pasmd := filepath.Join(dir, "pasmd")
	pasmbench := filepath.Join(dir, "pasmbench")
	loadgen := filepath.Join(dir, "loadgen")
	for bin, pkg := range map[string]string{
		pasmd: "./cmd/pasmd", pasmbench: "./cmd/pasmbench", loadgen: "./scripts/loadgen",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Local reference: a standalone 32-PE machine's deterministic
	// document. The daemon must reproduce these bytes from inside a
	// 32-PE partition of its 64-PE machine.
	want, err := exec.Command(pasmbench, "-exp", "table1", "-pes", "32", "-seed", "1988",
		"-parallel", "2", "-host-timings=false", "-json", "-").Output()
	if err != nil {
		return fmt.Errorf("local pasmbench -pes 32: %v", err)
	}

	addrFile := filepath.Join(dir, "addr")
	daemon := exec.Command(pasmd,
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-queue", "32", "-machine-pes", "64", "-policy", "sizeaware", "-parallel", "2")
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("starting pasmd: %v", err)
	}
	defer daemon.Process.Kill()

	addrRaw, err := waitForFile(addrFile, 15*time.Second)
	if err != nil {
		return err
	}
	addr := strings.TrimSpace(addrRaw)
	cl := client.New(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// 1. Partition mode shows up in /healthz.
	h, err := cl.HealthInfo(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	switch {
	case h.Status != "ok":
		return fmt.Errorf("healthz status = %q, want ok", h.Status)
	case h.MachinePEs != 64:
		return fmt.Errorf("healthz machine_pes = %d, want 64", h.MachinePEs)
	case h.Policy != "sizeaware":
		return fmt.Errorf("healthz policy = %q, want sizeaware", h.Policy)
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: /healthz advertises machine_pes=64 policy=sizeaware ✓")

	// 2. Byte identity from inside a partition, with a co-resident job
	// on the machine. The 16-PE filler lands on a low subcube, so the
	// pes=32 job runs at a nonzero base — the strongest version of the
	// residency check.
	filler, err := cl.Submit(ctx, slowSpec(16, 7001), client.SubmitOptions{})
	if err != nil {
		return fmt.Errorf("filler submit: %v", err)
	}
	spec := experiments.Spec{Exps: []string{"table1"}, PEs: 32, Seed: 1988}
	got, st, err := cl.Run(ctx, spec, client.SubmitOptions{Wait: 60 * time.Second})
	if err != nil {
		return fmt.Errorf("pes=32 submit: %v", err)
	}
	if st.Cached {
		return errors.New("cold pes=32 submit claims cached")
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("partition-resident result differs from standalone pasmbench -pes 32:\nserved:\n%s\nlocal:\n%s", got, want)
	}
	if _, err := cl.Wait(ctx, filler.ID); err != nil {
		return fmt.Errorf("filler: %v", err)
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: co-resident pes=32 job byte-identical to a standalone 32-PE machine ✓")

	// 2b. Cache hit keyed on pes: the same spec again is a hit, and a
	// different pes is a distinct (cold) document.
	got2, st2, err := cl.Run(ctx, spec, client.SubmitOptions{Wait: 60 * time.Second})
	if err != nil {
		return fmt.Errorf("pes=32 resubmit: %v", err)
	}
	if !st2.Cached || !bytes.Equal(got2, got) {
		return errors.New("pes=32 resubmit was not an identical cache hit")
	}
	got16, st16, err := cl.Run(ctx, experiments.Spec{Exps: []string{"table1"}, PEs: 16, Seed: 1988},
		client.SubmitOptions{Wait: 60 * time.Second})
	if err != nil {
		return fmt.Errorf("pes=16 submit: %v", err)
	}
	if st16.Cached {
		return errors.New("pes=16 variant hit the pes=32 cache entry — pes is missing from the key")
	}
	if bytes.Equal(got16, got) {
		return errors.New("pes=16 and pes=32 documents are identical — pes is not reaching the engine")
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: cache keys distinguish pes ✓")

	// 3. Concurrent packing: four 16-PE jobs fill the machine.
	var jobs []service.JobStatus
	for i := 0; i < 4; i++ {
		st, err := cl.Submit(ctx, slowSpec(16, uint32(7100+i)), client.SubmitOptions{})
		if err != nil {
			return fmt.Errorf("packing submit %d: %v", i, err)
		}
		jobs = append(jobs, st)
	}
	for _, j := range jobs {
		if st, err := cl.Wait(ctx, j.ID); err != nil || st.State != service.StateDone {
			return fmt.Errorf("packing job %s: state=%v err=%v", j.ID, st.State, err)
		}
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	if m["partition/pes_total"] != 64 {
		return fmt.Errorf("partition/pes_total = %v, want 64", m["partition/pes_total"])
	}
	if peak := m["partition/pes_busy_peak"]; peak != 64 {
		return fmt.Errorf("partition/pes_busy_peak = %v, want 64 (four 16-PE jobs never co-resident)", peak)
	}
	if m["partition/pes_busy"] != 0 {
		return fmt.Errorf("partition/pes_busy = %v after all jobs done", m["partition/pes_busy"])
	}
	if m["partition/leases_total"] != m["partition/releases_total"] {
		return fmt.Errorf("leases_total=%v != releases_total=%v", m["partition/leases_total"], m["partition/releases_total"])
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: four 16-PE jobs packed to pes_busy_peak=64 ✓")

	// 4. The loadgen mixed-size storm against the partitioned daemon.
	lgOut := filepath.Join(dir, "loadgen.json")
	lg := exec.Command(loadgen, "-addr", addr, "-phase", "cold", "-n", "12", "-c", "4",
		"-pes-mix", "4:0.5,16:0.3,64:0.2", "-out", lgOut)
	lg.Stderr = os.Stderr
	if err := lg.Run(); err != nil {
		return fmt.Errorf("loadgen -pes-mix: %v", err)
	}
	var doc struct {
		Phases []struct {
			Requests int `json:"requests"`
			Errors   int `json:"errors"`
		} `json:"phases"`
	}
	raw, err := os.ReadFile(lgOut)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("loadgen output: %v", err)
	}
	if len(doc.Phases) != 1 || doc.Phases[0].Requests != 12 || doc.Phases[0].Errors != 0 {
		return fmt.Errorf("loadgen phases = %+v, want 12 requests, 0 errors", doc.Phases)
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: loadgen -pes-mix storm, 12/12 ok ✓")

	// 5. A spec bigger than the machine is a bad request.
	_, err = cl.Submit(ctx, experiments.Spec{Exps: []string{"table1"}, PEs: 128, Seed: 1}, client.SubmitOptions{})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		return fmt.Errorf("oversize submit: err = %v, want HTTP 400", err)
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: pes=128 on a 64-PE machine -> 400 ✓")

	// 6. Drain with jobs still waiting for a partition: six 32-PE jobs
	// run two at a time, so SIGTERM arrives with most still pending.
	var drainJobs []service.JobStatus
	for i := 0; i < 6; i++ {
		st, err := cl.Submit(ctx, slowSpec(32, uint32(7200+i)), client.SubmitOptions{})
		if err != nil {
			return fmt.Errorf("drain submit %d: %v", i, err)
		}
		drainJobs = append(drainJobs, st)
	}
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM: %v", err)
	}
	if err := waitForDraining(ctx, cl); err != nil {
		return err
	}
	if _, err = cl.Submit(ctx, slowSpec(16, 7999), client.SubmitOptions{}); !errors.As(err, &apiErr) || apiErr.Status != 503 {
		return fmt.Errorf("drain submit: err = %v, want HTTP 503", err)
	}
	for _, j := range drainJobs {
		st, err := cl.Wait(ctx, j.ID)
		if err != nil {
			return fmt.Errorf("waiting for %s during drain: %v", j.ID, err)
		}
		if st.State != service.StateDone {
			return fmt.Errorf("accepted job %s ended %s (%s) — drain lost work", j.ID, st.State, st.Error)
		}
		if res, err := cl.Result(ctx, j.ID); err != nil || len(res) == 0 {
			return fmt.Errorf("result of %s during drain: %v", j.ID, err)
		}
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: drain completed all six accepted jobs ✓")

	exit := make(chan error, 1)
	go func() { exit <- daemon.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			return fmt.Errorf("pasmd exited uncleanly: %v", err)
		}
	case <-time.After(120 * time.Second):
		return errors.New("pasmd did not exit after drain")
	}
	fmt.Fprintln(os.Stderr, "partitionsmoke: clean exit after drain ✓")
	return nil
}

func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for %s", path)
}

func waitForDraining(ctx context.Context, cl *client.Client) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		h, err := cl.Health(ctx)
		if err == nil && h["draining"] == true {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return errors.New("daemon never reported draining after SIGTERM")
}
