#!/bin/sh
# Record a host-performance baseline: runs the full quick experiment
# suite (paper tables/figures plus extensions) through the parallel
# cell fan-out and writes wall-clock plus simulated-cycle results to
# BENCH_baseline.json.
#
# Usage: scripts/bench.sh [output.json] [baseline-to-compare.json]
#
# With a second argument, the new run's simulated metrics are diffed
# against that baseline after stripping the host-dependent fields
# (host timings, parallelism, schema/observe markers) — proving that a
# run with the observability hooks detached reproduces the baseline's
# simulated numbers exactly.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_baseline.json}"
against="${2:-}"

go build ./...
go run ./cmd/pasmbench -exp all,ext -json "$out" >/dev/null
echo "baseline written to $out:"
grep -E '"(name|host_seconds)"' "$out" | sed 's/^ *//' | head -40

if [ -n "$against" ]; then
    a="$(mktemp)"; b="$(mktemp)"
    trap 'rm -f "$a" "$b"' EXIT
    grep -Ev '"(host_seconds|parallel|schema|observe)":' "$out" >"$a"
    grep -Ev '"(host_seconds|parallel|schema|observe)":' "$against" >"$b"
    if diff "$a" "$b" >/dev/null; then
        echo "simulated metrics in $out match $against"
    else
        echo "simulated metrics in $out DIFFER from $against:" >&2
        diff "$a" "$b" >&2 || true
        exit 1
    fi
fi
