#!/bin/sh
# Record a host-performance baseline: runs the full quick experiment
# suite (paper tables/figures plus extensions) through the parallel
# cell fan-out and writes wall-clock plus simulated-cycle results to
# BENCH_baseline.json. Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_baseline.json}"

go build ./...
go run ./cmd/pasmbench -exp all,ext -json "$out" >/dev/null
echo "baseline written to $out:"
grep -E '"(name|host_seconds)"' "$out" | sed 's/^ *//' | head -40
