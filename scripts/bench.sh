#!/bin/sh
# Record a host-performance baseline: runs the full quick experiment
# suite (paper tables/figures plus extensions) through the parallel
# cell fan-out and writes wall-clock plus simulated-cycle results to
# BENCH_baseline.json.
#
# Usage: scripts/bench.sh [output.json] [baseline-to-compare.json]
#        scripts/bench.sh interp [output.json] [recorded-to-compare.json]
#        scripts/bench.sh partition [output.json] [machine-pes]
#
# With a second argument, the new run's simulated metrics are diffed
# against that baseline after stripping the host-dependent fields
# (host timings, parallelism, schema/observe/interp markers) — proving
# that a run with the observability hooks detached reproduces the
# baseline's simulated numbers exactly.
#
# The `interp` mode measures per-row simulation-only MIPS for each
# interpreter tier (reference / exec-table / superinstructions+memo)
# via cmd/interpbench and writes BENCH_interp.json; with a third
# argument it additionally fails if the super tier's speedup ratios
# regressed below that recorded document (the `make bench-interp` CI
# gate).
#
# The `partition` mode runs the ext-partition co-scheduling sweep on a
# 64-PE machine (override with a third argument) and writes
# BENCH_partition.json: makespan, speedup, utilization, and peak
# fragmentation of a mixed-size job storm under each scheduling policy
# against the serial whole-machine baseline.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "interp" ]; then
    out="${2:-BENCH_interp.json}"
    against="${3:-}"
    go build ./...
    if [ -n "$against" ]; then
        go run ./cmd/interpbench -out "$out" -against "$against"
    else
        go run ./cmd/interpbench -out "$out"
    fi
    exit 0
fi

if [ "${1:-}" = "partition" ]; then
    out="${2:-BENCH_partition.json}"
    pes="${3:-64}"
    go build ./...
    go run ./cmd/pasmbench -exp ext-partition -pes "$pes" -json "$out" >/dev/null
    echo "partition benchmark written to $out:"
    grep -E '"(policy/[a-z]+/(makespan|speedup|utilization_pct)|serial/makespan|machine/pes)"' "$out" |
        sed 's/^ *//' | sort
    exit 0
fi

out="${1:-BENCH_baseline.json}"
against="${2:-}"

go build ./...
go run ./cmd/pasmbench -exp all,ext -json "$out" >/dev/null
echo "baseline written to $out:"
grep -E '"(name|host_seconds)"' "$out" | sed 's/^ *//' | head -40

# strip removes every host- or schema-dependent line so two runs can be
# compared on simulated content alone: wall clock, parallelism, schema
# markers, and the v2.1 interp block (tier provenance + cache counters).
strip() {
    sed '/"interp": {/,/}/d' "$1" |
        grep -Ev '"(host_seconds|parallel|schema|observe)":'
}

if [ -n "$against" ]; then
    a="$(mktemp)"; b="$(mktemp)"
    trap 'rm -f "$a" "$b"' EXIT
    strip "$out" >"$a"
    strip "$against" >"$b"
    if diff "$a" "$b" >/dev/null; then
        echo "simulated metrics in $out match $against"
    else
        echo "simulated metrics in $out DIFFER from $against:" >&2
        diff "$a" "$b" >&2 || true
        exit 1
    fi
fi
