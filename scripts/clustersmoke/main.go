// Command clustersmoke is the fault-tolerance gate for the pasm
// cluster (make cluster-smoke). It builds pasmd and pasmgw, starts
// three replicas behind a gateway, and proves the cluster invariants
// under real process chaos:
//
//  1. all-healthy: every spec driven through the gateway completes
//     with bytes identical to a fault-free local run, and round-robin
//     routing plus result fetches produce peer cache fills (a result
//     computed off its hash owner lands in the owner's cache);
//  2. replica killed mid-run (SIGKILL, no warning): the gateway fails
//     over, the killed replica's breaker opens, and every spec still
//     completes byte-identical — jobs that died with the replica are
//     resubmitted by the client and served by the survivors;
//  3. replica restarted on the same address: the health loop's probe
//     closes the breaker and the replica rejoins the rotation;
//  4. drain: SIGTERM stops the gateway cleanly (sheds new submits,
//     finishes reads), and the replicas drain cleanly after it.
//
// The workload seeds and replica names are fixed, so ring ownership
// and the spec set are reproducible run to run. Exit 0 only if every
// check passes.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "clustersmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "clustersmoke: PASS")
}

// specs builds the workload: distinct small specs, re-seeded per phase
// so each phase is all cache misses unless peer fill or caching did
// its job.
func specs(base uint32, n int) []experiments.Spec {
	out := make([]experiments.Spec, n)
	for i := range out {
		out[i] = experiments.Spec{
			Cells: []experiments.CellSpec{{N: 16, P: 4, Muls: 1, Mode: "mimd"}},
			Seed:  base + uint32(i),
		}
	}
	return out
}

// reference computes fault-free local bytes for each spec — the
// cluster must serve exactly these, whatever fails.
func reference(ss []experiments.Spec) ([][]byte, error) {
	opts := experiments.DefaultOptions()
	opts.Parallelism = 2
	out := make([][]byte, len(ss))
	for i, spec := range ss {
		rep, err := experiments.RunSpec(spec, experiments.RunConfig{Options: opts})
		if err != nil {
			return nil, fmt.Errorf("local reference %d: %v", i, err)
		}
		if out[i], err = rep.Marshal(); err != nil {
			return nil, fmt.Errorf("marshaling reference %d: %v", i, err)
		}
	}
	return out, nil
}

type replica struct {
	name string
	addr string
	cmd  *exec.Cmd
}

// fillSecret authenticates the gateway's peer-fill pushes to the
// replicas; any value works as long as both sides agree.
const fillSecret = "clustersmoke-fill-secret"

func run() error {
	dir, err := os.MkdirTemp("", "clustersmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pasmd := filepath.Join(dir, "pasmd")
	pasmgw := filepath.Join(dir, "pasmgw")
	for bin, pkg := range map[string]string{pasmd: "./cmd/pasmd", pasmgw: "./cmd/pasmgw"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	// Three replicas on ephemeral ports.
	startReplica := func(name, addr string) (*replica, error) {
		addrFile := filepath.Join(dir, "addr-"+name+"-"+fmt.Sprint(time.Now().UnixNano()))
		cmd := exec.Command(pasmd,
			"-addr", addr, "-addr-file", addrFile, "-name", name,
			"-queue", "16", "-workers", "2", "-parallel", "2",
			"-fill-secret", fillSecret)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("starting replica %s: %v", name, err)
		}
		bound, err := waitForFile(addrFile, 15*time.Second)
		if err != nil {
			cmd.Process.Kill()
			return nil, err
		}
		return &replica{name: name, addr: strings.TrimSpace(bound), cmd: cmd}, nil
	}

	var reps []*replica
	defer func() {
		for _, r := range reps {
			if r.cmd.Process != nil {
				r.cmd.Process.Kill()
			}
		}
	}()
	for _, name := range []string{"a", "b", "c"} {
		r, err := startReplica(name, "127.0.0.1:0")
		if err != nil {
			return err
		}
		reps = append(reps, r)
	}

	// Gateway: round-robin so traffic regularly lands off-owner (that
	// is what makes peer fill observable), fast health checks and a
	// short breaker cooldown so kill/recovery round-trips quickly.
	gwAddrFile := filepath.Join(dir, "addr-gw")
	gw := exec.Command(pasmgw,
		"-addr", "127.0.0.1:0", "-addr-file", gwAddrFile,
		"-replica", "a="+reps[0].addr,
		"-replica", "b="+reps[1].addr,
		"-replica", "c="+reps[2].addr,
		"-policy", "round-robin",
		"-health-interval", "300ms",
		"-breaker-failures", "2",
		"-breaker-cooldown", "500ms",
		"-fill-secret", fillSecret)
	gw.Stderr = os.Stderr
	if err := gw.Start(); err != nil {
		return fmt.Errorf("starting pasmgw: %v", err)
	}
	defer gw.Process.Kill()
	gwAddr, err := waitForFile(gwAddrFile, 15*time.Second)
	if err != nil {
		return err
	}
	cl := client.New(strings.TrimSpace(gwAddr)).WithRetry(client.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Seed:        11,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if _, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("gateway healthz: %v", err)
	}

	// Phase 1 — all healthy: everything completes, bytes exact, and
	// round-robin + result fetches trigger peer fills.
	phase1 := specs(1000, 9)
	if err := drivePhase(ctx, cl, "healthy", phase1); err != nil {
		return err
	}
	if err := waitMetric(ctx, cl, "cluster/peer_fills", 1, 10*time.Second); err != nil {
		return fmt.Errorf("peer fill never observed: %v", err)
	}
	m, _ := cl.Metrics(ctx)
	fmt.Fprintf(os.Stderr, "clustersmoke: phase 1: peer_fills=%g dups=%g ✓\n",
		m["cluster/peer_fills"], m["cluster/peer_fill_dups"])

	// Phase 2 — SIGKILL replica b mid-run: no drain, no goodbye. Drive
	// traffic immediately so live requests hit the dead address and
	// fail over before the health loop catches up.
	if err := reps[1].cmd.Process.Kill(); err != nil {
		return fmt.Errorf("killing replica b: %v", err)
	}
	go reps[1].cmd.Wait() // reap
	fmt.Fprintln(os.Stderr, "clustersmoke: killed replica b (SIGKILL)")
	phase2 := specs(2000, 9)
	if err := drivePhase(ctx, cl, "b-dead", phase2); err != nil {
		return err
	}
	m, err = cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics after kill: %v", err)
	}
	if m["replicas/b/breaker_opens"] < 1 {
		return fmt.Errorf("replicas/b/breaker_opens = %g, want >= 1 — breaker never tripped", m["replicas/b/breaker_opens"])
	}
	if m["cluster/failovers"] < 1 {
		return fmt.Errorf("cluster/failovers = %g, want >= 1 — dead replica never failed over", m["cluster/failovers"])
	}
	fmt.Fprintf(os.Stderr, "clustersmoke: phase 2: failovers=%g breaker_opens(b)=%g shed=%g ✓\n",
		m["cluster/failovers"], m["replicas/b/breaker_opens"], m["cluster/shed"])

	// Phase 3 — restart b on the same address: the health probe closes
	// the breaker and b rejoins.
	rb, err := startReplica("b", reps[1].addr)
	if err != nil {
		return fmt.Errorf("restarting replica b: %v", err)
	}
	reps[1] = rb
	if err := waitMetric(ctx, cl, "replicas/b/breaker_closes", 1, 15*time.Second); err != nil {
		return fmt.Errorf("breaker never closed after restart: %v", err)
	}
	if err := waitMetric(ctx, cl, "replicas/b/alive", 1, 15*time.Second); err != nil {
		return fmt.Errorf("replica b never marked alive after restart: %v", err)
	}
	phase3 := specs(3000, 9)
	if err := drivePhase(ctx, cl, "b-restarted", phase3); err != nil {
		return err
	}
	m, _ = cl.Metrics(ctx)
	if m["replicas/b/forwarded"] < 1 {
		return fmt.Errorf("replicas/b/forwarded = %g after rejoin, want >= 1", m["replicas/b/forwarded"])
	}
	fmt.Fprintf(os.Stderr, "clustersmoke: phase 3: b rejoined (breaker_closes=%g, forwarded=%g) ✓\n",
		m["replicas/b/breaker_closes"], m["replicas/b/forwarded"])

	// Phase 4 — drain: SIGTERM the gateway; it must shed new submits
	// and exit cleanly. Then the replicas drain cleanly too.
	if err := gw.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("SIGTERM gateway: %v", err)
	}
	if err := waitExit(gw, 30*time.Second); err != nil {
		return fmt.Errorf("gateway drain: %v", err)
	}
	for _, r := range reps {
		if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("SIGTERM replica %s: %v", r.name, err)
		}
	}
	for _, r := range reps {
		if err := waitExit(r.cmd, 60*time.Second); err != nil {
			return fmt.Errorf("replica %s drain: %v", r.name, err)
		}
	}
	fmt.Fprintln(os.Stderr, "clustersmoke: phase 4: clean drain ✓")
	return nil
}

// drivePhase runs every spec to done through the gateway and checks
// byte-identity against fault-free local runs. A job lost to a killed
// replica surfaces as a wait/result error; the answer is resubmission
// (the gateway routes it to a survivor) — what may never happen is a
// wrong byte.
func drivePhase(ctx context.Context, cl *client.Client, name string, ss []experiments.Spec) error {
	want, err := reference(ss)
	if err != nil {
		return err
	}
	for i, spec := range ss {
		got, err := runToCompletion(ctx, cl, spec, 40)
		if err != nil {
			return fmt.Errorf("phase %s: spec %d never completed: %v", name, i, err)
		}
		if !bytes.Equal(got, want[i]) {
			return fmt.Errorf("phase %s: spec %d: bytes differ from fault-free local run", name, i)
		}
	}
	fmt.Fprintf(os.Stderr, "clustersmoke: phase %s: %d specs byte-identical ✓\n", name, len(ss))
	return nil
}

// runToCompletion submits until an accepted job reaches done, fetching
// its result. Failed or lost jobs (killed replica) are resubmitted.
func runToCompletion(ctx context.Context, cl *client.Client, spec experiments.Spec, maxSubmits int) ([]byte, error) {
	var lastErr error
	for s := 0; s < maxSubmits; s++ {
		st, err := cl.Submit(ctx, spec, client.SubmitOptions{Wait: 30 * time.Second})
		if err != nil {
			lastErr = err
			continue
		}
		if !st.State.Terminal() {
			if st, err = waitTerminal(ctx, cl, st.ID); err != nil {
				lastErr = err // job likely died with its replica: resubmit
				continue
			}
		}
		if st.State != service.StateDone {
			lastErr = fmt.Errorf("job %s ended %s (%s)", st.ID, st.State, st.Error)
			continue
		}
		res, err := cl.Result(ctx, st.ID)
		if err != nil {
			lastErr = fmt.Errorf("result of done job %s: %v", st.ID, err)
			continue
		}
		return res, nil
	}
	return nil, fmt.Errorf("no success in %d submissions (last: %v)", maxSubmits, lastErr)
}

func waitTerminal(ctx context.Context, cl *client.Client, id string) (service.JobStatus, error) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Job(ctx, id)
		if err != nil {
			return service.JobStatus{}, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return service.JobStatus{}, fmt.Errorf("job %s not terminal after 60s", id)
}

// waitMetric polls the gateway until the metric reaches min.
func waitMetric(ctx context.Context, cl *client.Client, key string, min float64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last float64
	for time.Now().Before(deadline) {
		m, err := cl.Metrics(ctx)
		if err == nil {
			last = m[key]
			if last >= min {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("%s = %g after %s, want >= %g", key, last, timeout, min)
}

func waitExit(cmd *exec.Cmd, timeout time.Duration) error {
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			return fmt.Errorf("unclean exit: %v", err)
		}
		return nil
	case <-time.After(timeout):
		cmd.Process.Kill()
		return fmt.Errorf("no exit within %s", timeout)
	}
}

func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return string(b), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for %s", path)
}
