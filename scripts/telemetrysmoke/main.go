// Command telemetrysmoke is the end-to-end gate for request tracing
// and serving telemetry (make telemetry-smoke). It builds pasmd and
// pasmgw, starts three traced replicas behind a traced gateway, and
// proves the observability invariants:
//
//  1. one trace ID spans the whole serving path: a client-minted
//     X-Pasm-Trace context shows route/attempt spans at the gateway
//     and admit/queue/run spans (run on the worker track) at the
//     replica that served it, all under the same ID;
//  2. the merged Perfetto export at the replica is valid Chrome trace
//     JSON carrying both clock domains — host-time serving spans and
//     the simulated-clock event stream of the same request;
//  3. /metrics v2 exposes per-stage latency quantiles standalone and
//     aggregated cluster-wide at the gateway;
//  4. detached telemetry stays free: the full span choreography
//     against a nil tracer allocates nothing.
//
// Exit 0 only if every check passes.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetrysmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "telemetrysmoke: PASS")
}

// trace is the client-minted context for the traced request: fixed, so
// every assertion below can name it.
const trace = "00000000ab1e50da"

type replica struct {
	name string
	addr string
	cmd  *exec.Cmd
}

func run() error {
	dir, err := os.MkdirTemp("", "telemetrysmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	pasmd := filepath.Join(dir, "pasmd")
	pasmgw := filepath.Join(dir, "pasmgw")
	for bin, pkg := range map[string]string{pasmd: "./cmd/pasmd", pasmgw: "./cmd/pasmgw"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}

	var reps []*replica
	defer func() {
		for _, r := range reps {
			if r.cmd.Process != nil {
				r.cmd.Process.Kill()
			}
		}
	}()
	for _, name := range []string{"a", "b", "c"} {
		addrFile := filepath.Join(dir, "addr-"+name)
		cmd := exec.Command(pasmd,
			"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-name", name,
			"-queue", "16", "-workers", "2", "-parallel", "2",
			"-trace-sample", "0") // propagated contexts are always traced
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting replica %s: %v", name, err)
		}
		bound, err := waitForFile(addrFile, 15*time.Second)
		if err != nil {
			cmd.Process.Kill()
			return err
		}
		reps = append(reps, &replica{name: name, addr: strings.TrimSpace(bound), cmd: cmd})
	}

	gwAddrFile := filepath.Join(dir, "addr-gw")
	gw := exec.Command(pasmgw,
		"-addr", "127.0.0.1:0", "-addr-file", gwAddrFile,
		"-replica", "a="+reps[0].addr,
		"-replica", "b="+reps[1].addr,
		"-replica", "c="+reps[2].addr,
		"-health-interval", "300ms",
		"-trace-sample", "1")
	gw.Stderr = os.Stderr
	if err := gw.Start(); err != nil {
		return fmt.Errorf("starting pasmgw: %v", err)
	}
	defer gw.Process.Kill()
	gwAddr, err := waitForFile(gwAddrFile, 15*time.Second)
	if err != nil {
		return err
	}
	gwAddr = strings.TrimSpace(gwAddr)

	cl := client.New(gwAddr)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if _, err := cl.Health(ctx); err != nil {
		return fmt.Errorf("gateway healthz: %v", err)
	}

	// One traced request through the whole path: client context,
	// gateway routing, replica execution. The simulated cells make the
	// sim-clock capture non-trivial.
	spec := experiments.Spec{
		Cells: []experiments.CellSpec{{N: 16, P: 4, Muls: 1, Mode: "smimd"}},
		Seed:  4242,
	}
	if _, _, err := cl.Run(ctx, spec, client.SubmitOptions{
		Wait:        60 * time.Second,
		TraceHeader: trace,
	}); err != nil {
		return fmt.Errorf("traced run: %v", err)
	}

	// Check 1a — gateway hop recorded the trace with routing spans.
	gwSnap, err := fetchSnapshot(gwAddr, trace)
	if err != nil {
		return fmt.Errorf("gateway trace: %v", err)
	}
	if err := wantSpans(gwSnap, "route", "attempt"); err != nil {
		return fmt.Errorf("gateway trace: %v", err)
	}
	fmt.Fprintln(os.Stderr, "telemetrysmoke: gateway spans ✓ (route, attempt)")

	// Check 1b — the same trace ID continued on the serving replica
	// with every serving stage, run on the worker track.
	var repSnap *telemetry.ReqSnapshot
	var served *replica
	for _, r := range reps {
		if snap, err := fetchSnapshot(r.addr, trace); err == nil {
			repSnap, served = snap, r
			break
		}
	}
	if repSnap == nil {
		return fmt.Errorf("no replica recorded trace %s", trace)
	}
	if err := wantSpans(repSnap, "admit", "queue", "run"); err != nil {
		return fmt.Errorf("replica %s trace: %v", served.name, err)
	}
	for _, sp := range repSnap.Spans {
		if sp.Name == "run" && sp.Track != "worker" {
			return fmt.Errorf("run span on track %q, want worker", sp.Track)
		}
	}
	if repSnap.Parent == "" {
		return fmt.Errorf("replica trace did not continue the gateway span context")
	}
	fmt.Fprintf(os.Stderr, "telemetrysmoke: replica %s spans ✓ (admit, queue, run@worker, parent=%s)\n",
		served.name, repSnap.Parent)

	// Check 2 — merged Perfetto export: valid Chrome trace JSON with
	// both the host-time serving track and the simulated clock track.
	perfetto, err := httpGet(served.addr, "/debug/requests/"+trace+"/perfetto")
	if err != nil {
		return fmt.Errorf("perfetto export: %v", err)
	}
	n, err := obs.ValidateChromeTrace(perfetto)
	if err != nil {
		return fmt.Errorf("perfetto export invalid: %v", err)
	}
	body := string(perfetto)
	for _, want := range []string{"simulated clock", "run", "serving"} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("perfetto export (%d events) lacks %q", n, want)
		}
	}
	fmt.Fprintf(os.Stderr, "telemetrysmoke: perfetto export ✓ (%d events, host+sim tracks)\n", n)

	// Check 3 — /metrics v2 per-stage quantiles: replica-local and
	// cluster-aggregated at the gateway.
	m, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("gateway metrics: %v", err)
	}
	for _, key := range []string{
		"cluster/total_ms/p50", "cluster/total_ms/p99", "cluster/run_ms/p95",
		"telemetry/traces_started",
	} {
		if _, ok := m[key]; !ok {
			return fmt.Errorf("gateway metrics missing %q", key)
		}
	}
	if m["telemetry/traces_finished"] < 1 {
		return fmt.Errorf("gateway finished no traces: %v", m["telemetry/traces_finished"])
	}
	fmt.Fprintln(os.Stderr, "telemetrysmoke: cluster stage quantiles + trace counters ✓")

	// Check 4 — the detached path costs nothing: the full span
	// choreography against a nil tracer is zero allocations.
	var nilTracer *telemetry.Tracer
	allocs := testing.AllocsPerRun(200, func() {
		tr := nilTracer.Start("", "submit")
		sp := tr.Span("admit").Attr("outcome", "queued").OnTrack("worker")
		sp.EndSpan()
		tr.Finish()
	})
	if allocs != 0 {
		return fmt.Errorf("detached telemetry allocates: %v allocs/op", allocs)
	}
	fmt.Fprintln(os.Stderr, "telemetrysmoke: detached path 0 allocs ✓")
	return nil
}

// fetchSnapshot pulls one trace's timeline from a host's
// /debug/requests endpoint.
func fetchSnapshot(addr, trace string) (*telemetry.ReqSnapshot, error) {
	data, err := httpGet(addr, "/debug/requests/"+trace)
	if err != nil {
		return nil, err
	}
	var snap telemetry.ReqSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %v", err)
	}
	return &snap, nil
}

func wantSpans(snap *telemetry.ReqSnapshot, names ...string) error {
	have := map[string]bool{}
	for _, sp := range snap.Spans {
		have[sp.Name] = true
	}
	for _, want := range names {
		if !have[want] {
			return fmt.Errorf("missing %q span (have %v)", want, snap.Spans)
		}
	}
	return nil
}

func httpGet(addr, path string) ([]byte, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	resp, err := http.Get(addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return data, nil
}

// waitForFile polls for an -addr-file to appear (replicas and the
// gateway write their bound addresses there).
func waitForFile(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
			return string(data), nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("timed out waiting for %s", path)
}
