package reduce

import (
	"testing"
	"testing/quick"

	"repro/internal/pasm"
	"repro/internal/prng"
)

func testConfig() pasm.Config {
	cfg := pasm.DefaultConfig()
	cfg.PEMemBytes = 1 << 16
	return cfg
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{N: 0, P: 4, Mode: MIMD},
		{N: 8, P: 3, Mode: MIMD},
		{N: 10, P: 4, Mode: MIMD},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
	if err := (Spec{N: 64, P: 8, Mode: SIMD}).Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestReference(t *testing.T) {
	if got := Reference([]uint16{3, 4}); got != 25 {
		t.Errorf("3^2+4^2 = %d, want 25", got)
	}
	// Wraparound: 256^2 = 65536 = 0 mod 2^16.
	if got := Reference([]uint16{256, 256}); got != 0 {
		t.Errorf("wraparound sum = %d, want 0", got)
	}
}

func TestGenerateAssembles(t *testing.T) {
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		for _, tc := range []struct{ n, p int }{{16, 4}, {64, 16}, {8, 1}, {32, 2}} {
			if _, _, err := Build(Spec{N: tc.n, P: tc.p, Mode: mode}); err != nil {
				t.Errorf("%s n=%d p=%d: %v", mode, tc.n, tc.p, err)
			}
		}
	}
}

// verify runs a spec and checks every PE agrees with the host.
func verify(t *testing.T, spec Spec, seed uint32) pasm.RunResult {
	t.Helper()
	v := RandomVector(spec.N, seed)
	res, sums, err := Execute(testConfig(), spec, v)
	if err != nil {
		t.Fatalf("%s n=%d p=%d: %v", spec.Mode, spec.N, spec.P, err)
	}
	want := Reference(v)
	for i, s := range sums {
		if s != want {
			t.Fatalf("%s n=%d p=%d: PE %d sum %d, want %d", spec.Mode, spec.N, spec.P, i, s, want)
		}
	}
	return res
}

func TestAllModesAllSizes(t *testing.T) {
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		for _, tc := range []struct{ n, p int }{{16, 2}, {16, 4}, {64, 8}, {64, 16}, {32, 1}} {
			verify(t, Spec{N: tc.n, P: tc.p, Mode: mode}, uint32(tc.n*tc.p)+uint32(mode))
		}
	}
}

func TestCubeExchangeTraffic(t *testing.T) {
	// log2(p) steps, one 2-byte exchange per PE per step, plus one
	// reconfiguration per step per PE.
	res := verify(t, Spec{N: 64, P: 8, Mode: MIMD}, 7)
	if want := int64(8 * 3 * 2); res.NetTransfers != want {
		t.Errorf("bytes = %d, want %d", res.NetTransfers, want)
	}
	if want := int64(8 * 3); res.NetReconfigs != want {
		t.Errorf("reconfigs = %d, want %d", res.NetReconfigs, want)
	}
}

func TestSMIMDBarriersPerStep(t *testing.T) {
	// One connect barrier plus four byte barriers per step.
	res := verify(t, Spec{N: 64, P: 8, Mode: SMIMD}, 8)
	if want := 3 * 5; res.BarrierRounds != want {
		t.Errorf("barrier rounds = %d, want %d", res.BarrierRounds, want)
	}
}

func TestSIMDFasterThanMIMDOnReduce(t *testing.T) {
	// The local phase dominates (n/p elements); SIMD's hidden control
	// and fast fetch beat the lockstep MULU penalty at this size.
	v := RandomVector(256, 5)
	rs, _, err := Execute(testConfig(), Spec{N: 256, P: 4, Mode: SIMD}, v)
	if err != nil {
		t.Fatal(err)
	}
	rm, _, err := Execute(testConfig(), Spec{N: 256, P: 4, Mode: MIMD}, v)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles >= rm.Cycles {
		t.Errorf("SIMD %d !< MIMD %d", rs.Cycles, rm.Cycles)
	}
}

func TestSpeedupScalesWithP(t *testing.T) {
	const n = 1024
	v := RandomVector(n, 6)
	serial, _, err := Execute(testConfig(), Spec{N: n, Mode: Serial}, v)
	if err != nil {
		t.Fatal(err)
	}
	prev := serial.Cycles
	for _, p := range []int{2, 4, 8, 16} {
		res, _, err := Execute(testConfig(), Spec{N: n, P: p, Mode: MIMD}, v)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles >= prev {
			t.Errorf("p=%d (%d cycles) not faster than p/2 (%d)", p, res.Cycles, prev)
		}
		prev = res.Cycles
	}
	// Near-linear at n/p = 64: speedup within 25% of p.
	speedup := float64(serial.Cycles) / float64(prev)
	if speedup < 12 {
		t.Errorf("speedup at p=16: %.1f, want > 12", speedup)
	}
}

// Property: any vector, any valid (n, p, mode) combination reduces to
// the host reference on every PE.
func TestReduceProperty(t *testing.T) {
	modes := []Mode{SIMD, MIMD, SMIMD}
	f := func(seed uint32) bool {
		g := prng.New(seed)
		p := 1 << g.Intn(4)               // 1,2,4,8
		n := p * (1 + g.Intn(8))          // up to 8 elements per PE
		mode := modes[g.Intn(len(modes))] // serial covered elsewhere
		v := RandomVector(n, seed+1)
		_, sums, err := Execute(testConfig(), Spec{N: n, P: p, Mode: mode}, v)
		if err != nil {
			return false
		}
		want := Reference(v)
		for _, s := range sums {
			if s != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
