package reduce

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/pasm"
)

// tier selects one of the three interpreter configurations under
// differential test (see cmd/pasmbench's -interp flag).
type tier int

const (
	tierReference tier = iota
	tierTable
	tierSuper
)

var allTiers = []tier{tierReference, tierTable, tierSuper}

func (tr tier) String() string {
	switch tr {
	case tierReference:
		return "reference"
	case tierTable:
		return "table"
	default:
		return "super"
	}
}

func (tr tier) apply(cfg *pasm.Config) {
	switch tr {
	case tierReference:
		cfg.DisableExecTable = true
		cfg.DisableSegmentMemo = true
	case tierTable:
		cfg.DisableSuperinstructions = true
		cfg.DisableSegmentMemo = true
	}
}

// executeWith runs one reduction end to end on the given interpreter
// tier with a full observability recorder attached. workers > 1
// advances MIMD-section PEs on parallel host goroutines.
func executeWith(t *testing.T, spec Spec, v []uint16, tr tier, workers int) (pasm.RunResult, []uint16, *obs.Recorder) {
	t.Helper()
	prog, l, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	tr.apply(&cfg)
	cfg.HostWorkers = workers
	cfg.Obs = obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := Load(vm, l, v); err != nil {
		t.Fatal(err)
	}
	var res pasm.RunResult
	if spec.Mode == SIMD {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		t.Fatalf("%v run: %v", spec.Mode, err)
	}
	sums, err := ReadResults(vm, l)
	if err != nil {
		t.Fatal(err)
	}
	return res, sums, cfg.Obs
}

// TestInterpreterTierEquivalenceReduce runs every reduction program
// variant through the 3-way interpreter matrix — dynamic reference,
// exec table, superinstructions + segment memo — and requires
// identical run results (cycle counts, per-PE clocks, region
// breakdowns), identical sums, and event-for-event identical
// observability streams. The super tier runs with parallel host
// workers so `go test -race` exercises the memo layer's per-PE
// isolation.
func TestInterpreterTierEquivalenceReduce(t *testing.T) {
	const n, p = 64, 8
	v := RandomVector(n, 0xBEEF)
	want := Reference(v)
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		spec := Spec{N: n, P: p, Mode: mode}
		var resRef pasm.RunResult
		var sumsRef []uint16
		var obsRef *obs.Recorder
		for _, tr := range allTiers {
			workers := 1
			if tr == tierSuper {
				workers = 4
			}
			res, sums, rec := executeWith(t, spec, v, tr, workers)
			res.MemoHits, res.MemoMisses = 0, 0
			for i, s := range sums {
				if s != want {
					t.Errorf("%v/%v: PE %d sum = %d, want %d", mode, tr, i, s, want)
				}
			}
			if tr == tierReference {
				resRef, sumsRef, obsRef = res, sums, rec
				continue
			}
			label := mode.String() + "/" + tr.String()
			if !reflect.DeepEqual(res, resRef) {
				t.Errorf("%s: run results differ:\nreference: %+v\ngot:       %+v", label, resRef, res)
			}
			if !reflect.DeepEqual(sums, sumsRef) {
				t.Errorf("%s: sums differ: reference %v vs %v", label, sumsRef, sums)
			}
			re, ge := obsRef.Merged(), rec.Merged()
			if len(re) != len(ge) {
				t.Errorf("%s: event counts differ: reference %d vs %d", label, len(re), len(ge))
				continue
			}
			for i := range re {
				if re[i] != ge[i] {
					t.Errorf("%s: event %d differs: reference %+v vs %+v", label, i, re[i], ge[i])
					break
				}
			}
			rm, gm := obsRef.Metrics().Flatten(""), rec.Metrics().Flatten("")
			if !reflect.DeepEqual(rm, gm) {
				t.Errorf("%s: metrics differ:\nreference: %v\ngot:       %v", label, rm, gm)
			}
		}
	}
}
