package reduce

import (
	"reflect"
	"testing"

	"repro/internal/m68k"
	"repro/internal/obs"
	"repro/internal/pasm"
)

// executeWith runs one reduction end to end with a full observability
// recorder attached, optionally forcing every CPU onto the dynamic
// reference interpreter path instead of the pre-resolved execution
// table.
func executeWith(t *testing.T, spec Spec, v []uint16, dynamic bool) (pasm.RunResult, []uint16, *obs.Recorder) {
	t.Helper()
	prog, l, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	cfg.Obs = obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		t.Fatal(err)
	}
	vm.TraceHook = func(unit string, cpu *m68k.CPU) {
		cpu.DisableExecTable = dynamic
	}
	if err := Load(vm, l, v); err != nil {
		t.Fatal(err)
	}
	var res pasm.RunResult
	if spec.Mode == SIMD {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		t.Fatalf("%v run: %v", spec.Mode, err)
	}
	sums, err := ReadResults(vm, l)
	if err != nil {
		t.Fatal(err)
	}
	return res, sums, cfg.Obs
}

// TestExecTableEquivalenceReduce runs every reduction program variant
// through both interpreter paths and requires identical run results
// (cycle counts, per-PE clocks, region breakdowns), identical sums,
// and event-for-event identical observability streams.
func TestExecTableEquivalenceReduce(t *testing.T) {
	const n, p = 64, 8
	v := RandomVector(n, 0xBEEF)
	want := Reference(v)
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		spec := Spec{N: n, P: p, Mode: mode}
		resTab, sumsTab, obsTab := executeWith(t, spec, v, false)
		resDyn, sumsDyn, obsDyn := executeWith(t, spec, v, true)

		if !reflect.DeepEqual(resTab, resDyn) {
			t.Errorf("%v: run results differ:\ntable:   %+v\ndynamic: %+v", mode, resTab, resDyn)
		}
		if !reflect.DeepEqual(sumsTab, sumsDyn) {
			t.Errorf("%v: sums differ: table %v vs dynamic %v", mode, sumsTab, sumsDyn)
		}
		for i, s := range sumsTab {
			if s != want {
				t.Errorf("%v: PE %d sum = %d, want %d", mode, i, s, want)
			}
		}

		te, de := obsTab.Merged(), obsDyn.Merged()
		if len(te) != len(de) {
			t.Errorf("%v: event counts differ: table %d vs dynamic %d", mode, len(te), len(de))
			continue
		}
		for i := range te {
			if te[i] != de[i] {
				t.Errorf("%v: event %d differs: table %+v vs dynamic %+v", mode, i, te[i], de[i])
				break
			}
		}
		tm, dm := obsTab.Metrics().Flatten(""), obsDyn.Metrics().Flatten("")
		if !reflect.DeepEqual(tm, dm) {
			t.Errorf("%v: metrics differ:\ntable:   %v\ndynamic: %v", mode, tm, dm)
		}
	}
}
