// Package reduce implements the third workload: a global
// sum-of-squares all-reduce by recursive doubling — the classic
// cube-network algorithm (Stone's "parallel computers" chapter the
// paper cites for standard algorithms). Each PE squares and sums its
// n/p local elements (MULU: data-dependent, so SIMD lockstep pays the
// per-element maximum again), then log2(p) exchange steps combine the
// partial sums: at step k every PE swaps its partial with PE i XOR 2^k
// and adds. The cube_k permutations are exactly the interconnection
// patterns a single pass of the Extra-Stage Cube realizes, and each
// step reconfigures the circuits at run time — a different permutation
// per step, unlike the matrix multiplication's single static shift.
//
// When the reduction finishes, every PE holds the global sum (an
// all-reduce), which the host verifies against all per-PE copies.
package reduce

import (
	"fmt"
	"strings"

	"repro/internal/m68k"
	"repro/internal/pasm"
)

// Mode mirrors the program variants.
type Mode int

// Program variants.
const (
	Serial Mode = iota
	SIMD
	MIMD
	SMIMD
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "SISD"
	case SIMD:
		return "SIMD"
	case MIMD:
		return "MIMD"
	case SMIMD:
		return "S/MIMD"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec describes one reduction configuration.
type Spec struct {
	// N is the total element count, divisible by P.
	N int
	// P is the PE count (power of two; ignored for Serial).
	P int
	// Mode selects the program variant.
	Mode Mode
}

// Validate checks the spec.
func (s Spec) Validate() error {
	p := s.p()
	switch {
	case s.N < 1:
		return fmt.Errorf("reduce: n=%d < 1", s.N)
	case p < 1 || p&(p-1) != 0:
		return fmt.Errorf("reduce: p=%d must be a power of two", p)
	case s.N%p != 0:
		return fmt.Errorf("reduce: n=%d not divisible by p=%d", s.N, p)
	case s.N/p > 32767:
		return fmt.Errorf("reduce: n/p=%d exceeds the loop counter", s.N/p)
	}
	return nil
}

func (s Spec) p() int {
	if s.Mode == Serial {
		return 1
	}
	return s.P
}

// steps returns log2(p).
func (s Spec) steps() int {
	k := 0
	for q := s.p(); q > 1; q >>= 1 {
		k++
	}
	return k
}

// Layout is the per-PE memory map.
type Layout struct {
	N, P     int
	Local    int    // elements per PE
	Steps    int    // log2(p)
	VecBase  uint32 // Local words of input
	Partners uint32 // Steps words: partner line per exchange step
	Result   uint32 // word: the all-reduced sum
	End      uint32
}

// NewLayout computes the map.
func NewLayout(n, p int) (Layout, error) {
	if p < 1 || n%p != 0 {
		return Layout{}, fmt.Errorf("reduce: bad layout n=%d p=%d", n, p)
	}
	l := Layout{N: n, P: p, Local: n / p}
	for q := p; q > 1; q >>= 1 {
		l.Steps++
	}
	l.VecBase = 0x1000
	l.Partners = l.VecBase + uint32(2*l.Local)
	l.Result = l.Partners + uint32(2*maxInt(l.Steps, 1))
	l.End = l.Result + 2
	return l, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MemBytes returns the PE memory size needed.
func (l Layout) MemBytes() uint32 {
	need := l.End + 4096
	size := uint32(1 << 12)
	for size < need {
		size <<= 1
	}
	return size
}

func (l Layout) equs() string {
	return fmt.Sprintf(`	.equ LOCAL, %d
	.equ STEPS, %d
	.equ VEC, $%X
	.equ PARTNERS, $%X
	.equ RESULT, $%X
	.equ NETX, $%X
	.equ SIMDSPACE, $%X
	.equ RELEASE, %d
`, l.Local, l.Steps, l.VecBase, l.Partners, l.Result,
		pasm.AddrNetXmit, pasm.AddrSIMDSpace, pasm.NetCtrlRelease)
}

// Generate emits the assembly for a spec.
func Generate(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	l, err := NewLayout(spec.N, spec.p())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; reduce %s n=%d p=%d (generated)\n", spec.Mode, spec.N, spec.p())
	b.WriteString(l.equs())
	if spec.Mode == SIMD {
		genSIMD(&b, spec)
	} else {
		genMIMD(&b, spec)
	}
	return b.String(), nil
}

// Build generates and assembles.
func Build(spec Spec) (*m68k.Program, Layout, error) {
	src, err := Generate(spec)
	if err != nil {
		return nil, Layout{}, err
	}
	l, err := NewLayout(spec.N, spec.p())
	if err != nil {
		return nil, Layout{}, err
	}
	prog, err := m68k.Assemble(src)
	if err != nil {
		return nil, Layout{}, fmt.Errorf("reduce: generated program does not assemble: %w", err)
	}
	return prog, l, nil
}

// genMIMD emits the Serial/MIMD/SMIMD program. Registers: d2 holds the
// running partial sum, a5 the network base, a6 walks the partner
// table. MIMD phase ordering between exchange steps rides on the
// network's destination-in-use establishment blocking, exactly as in
// the smoothing workload.
func genMIMD(b *strings.Builder, spec Spec) {
	b.WriteString(`	.region other
	lea	NETX, a5
	clr.w	d2
	.region mult
	; local sum of squares (MULU: data-dependent time)
	lea	VEC, a0
	move.w	#LOCAL-1, d6
local:	move.w	(a0)+, d0
	mulu.w	d0, d0
	add.w	d0, d2
	dbra	d6, local
`)
	if spec.p() > 1 {
		b.WriteString(`	.region comm
	lea	PARTNERS, a6
	move.w	#STEPS-1, d5
step:	move.w	(a6)+, d0
	move.w	d0, 8(a5)	; establish circuit to cube-k partner
`)
		if spec.Mode == SMIMD {
			b.WriteString("\tmove.w\tSIMDSPACE, d3\t; everyone connected and drained\n")
		}
		b.WriteString("\tmove.w\td2, d0\n")
		if spec.Mode == MIMD {
			b.WriteString(`tx1:	tst.w	4(a5)
	beq	tx1
	move.b	d0, (a5)
rx1:	tst.w	6(a5)
	beq	rx1
	move.b	2(a5), d1
	lsr.w	#8, d0
tx2:	tst.w	4(a5)
	beq	tx2
	move.b	d0, (a5)
rx2:	tst.w	6(a5)
	beq	rx2
	move.b	2(a5), d0
`)
		} else {
			b.WriteString(`	move.w	SIMDSPACE, d3
	move.b	d0, (a5)
	move.w	SIMDSPACE, d3
	move.b	2(a5), d1
	lsr.w	#8, d0
	move.w	SIMDSPACE, d3
	move.b	d0, (a5)
	move.w	SIMDSPACE, d3
	move.b	2(a5), d0
`)
		}
		b.WriteString(`	lsl.w	#8, d0
	move.b	d1, d0
	add.w	d0, d2		; combine the partner's partial
	dbra	d5, step
	move.w	#RELEASE, 8(a5)
`)
	}
	b.WriteString(`	.region other
	move.w	d2, RESULT
	halt
`)
}

// genSIMD emits the MC program plus PE blocks. The per-step circuit
// establishment is split into a release-all block and a connect block
// so cross-group conflicts cannot arise in lockstep.
func genSIMD(b *strings.Builder, spec Spec) {
	b.WriteString(`	.region control
	bcast	init
	move.w	#LOCAL-1, d0
mloc:	bcast	elem
	dbra	d0, mloc
`)
	if spec.p() > 1 {
		b.WriteString(`	move.w	#STEPS-1, d5
mstep:	bcast	rel
	bcast	conn
	bcast	xchg
	dbra	d5, mstep
	bcast	rel
`)
	}
	b.WriteString(`	bcast	fini
	halt

	.region other
	.block	init
	lea	NETX, a5
	clr.w	d2
	lea	VEC, a0
	lea	PARTNERS, a6
	.endblock

	.region mult
	.block	elem
	move.w	(a0)+, d0
	mulu.w	d0, d0
	add.w	d0, d2
	.endblock
`)
	if spec.p() > 1 {
		b.WriteString(`
	.region comm
	.block	rel
	move.w	#RELEASE, 8(a5)
	.endblock
	.block	conn
	move.w	(a6)+, d0
	move.w	d0, 8(a5)
	.endblock
	.block	xchg
	move.w	d2, d0
	move.b	d0, (a5)
	move.b	2(a5), d1
	lsr.w	#8, d0
	move.b	d0, (a5)
	move.b	2(a5), d0
	lsl.w	#8, d0
	move.b	d1, d0
	add.w	d0, d2
	.endblock
`)
	}
	b.WriteString(`
	.region other
	.block	fini
	move.w	d2, RESULT
	.endblock
`)
}
