package reduce

import (
	"fmt"

	"repro/internal/m68k"
	"repro/internal/pasm"
	"repro/internal/prng"
)

// RandomVector returns n uniform 16-bit values.
func RandomVector(n int, seed uint32) []uint16 {
	v := make([]uint16, n)
	prng.New(seed).Fill(v)
	return v
}

// Reference computes the 16-bit wraparound sum of squares on the host.
func Reference(v []uint16) uint16 {
	var sum uint16
	for _, x := range v {
		sum += x * x
	}
	return sum
}

// Load distributes the vector and the per-PE cube-partner tables.
func Load(vm *pasm.VM, l Layout, v []uint16) error {
	if len(v) != l.N {
		return fmt.Errorf("reduce: vector has %d elements, layout wants %d", len(v), l.N)
	}
	if vm.P != l.P {
		return fmt.Errorf("reduce: partition has %d PEs, layout wants %d", vm.P, l.P)
	}
	for i, pe := range vm.PEs {
		pe.Mem.Reset()
		if err := pe.Mem.WriteWords(l.VecBase, v[i*l.Local:(i+1)*l.Local]); err != nil {
			return err
		}
		partners := make([]uint16, l.Steps)
		for k := 0; k < l.Steps; k++ {
			partners[k] = uint16(i ^ 1<<k)
		}
		if err := pe.Mem.WriteWords(l.Partners, partners); err != nil {
			return err
		}
	}
	return nil
}

// ReadResults returns every PE's copy of the all-reduced sum.
func ReadResults(vm *pasm.VM, l Layout) ([]uint16, error) {
	out := make([]uint16, vm.P)
	for i, pe := range vm.PEs {
		v, err := pe.Mem.Read(l.Result, m68k.Word)
		if err != nil {
			return nil, err
		}
		out[i] = uint16(v)
	}
	return out, nil
}

// Execute builds, loads, runs and verifies one configuration,
// returning the run result and the per-PE sums.
func Execute(cfg pasm.Config, spec Spec, v []uint16) (pasm.RunResult, []uint16, error) {
	prog, l, err := Build(spec)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	if err := Load(vm, l, v); err != nil {
		return pasm.RunResult{}, nil, err
	}
	var res pasm.RunResult
	if spec.Mode == SIMD {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	sums, err := ReadResults(vm, l)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	return res, sums, nil
}
