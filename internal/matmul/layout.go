// Package matmul implements the paper's matrix-multiplication
// workload: the columnar data layout of Figure 5, the parallel
// algorithm of Figure 3 (each PE owns n/p adjacent columns of A, B and
// C; A's columns rotate left through a static PE i -> PE (i-1) mod p
// circuit, internal moves being pointer swaps), and generators that
// emit MC68000 assembly for the four program variants measured in the
// paper: optimized serial (SISD), pure SIMD, pure MIMD with network
// polling, and the hybrid S/MIMD using Fetch-Unit barrier
// synchronization.
package matmul

import (
	"fmt"

	"repro/internal/m68k"
	"repro/internal/pasm"
)

// Mode selects one of the paper's four program variants.
type Mode int

// Program variants (paper Section 5).
const (
	// Serial is the optimized single-PE program (SISD), run on a
	// one-PE partition in MIMD mode.
	Serial Mode = iota
	// SIMD runs control flow on the MCs and broadcasts
	// data-processing instructions through the Fetch Unit queue.
	SIMD
	// MIMD runs complete asynchronous programs on the PEs, polling
	// the network transfer-register status around every transfer.
	MIMD
	// SMIMD is the hybrid: the MIMD program with transfers protected
	// by Fetch-Unit barrier reads instead of polling.
	SMIMD
	// Mixed is the paper's envisioned fine-grained decoupling: the
	// SIMD program, but each inner-loop element's multiply-accumulate
	// runs as an asynchronous MIMD burst (broadcast jump out, jump
	// back into the SIMD space), so only the variable-time grain
	// leaves lockstep.
	Mixed
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "SISD"
	case SIMD:
		return "SIMD"
	case MIMD:
		return "MIMD"
	case SMIMD:
		return "S/MIMD"
	case Mixed:
		return "Mixed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec describes one experiment configuration.
type Spec struct {
	// N is the matrix dimension (n x n), a power of two, 4..256 in the
	// paper.
	N int
	// P is the number of PEs (ignored for Serial, which uses 1).
	P int
	// Muls is the number of multiply instructions in the innermost
	// loop (the paper's dependent variable; 1 is the plain algorithm,
	// the extras are straight-line multiplies whose results are
	// discarded).
	Muls int
	// Mode selects the program variant.
	Mode Mode
}

// Validate checks a specification.
func (s Spec) Validate() error {
	switch {
	case s.N < 2 || s.N&(s.N-1) != 0:
		return fmt.Errorf("matmul: n=%d must be a power of two >= 2", s.N)
	case s.Mode != Serial && (s.P < 1 || s.P&(s.P-1) != 0):
		return fmt.Errorf("matmul: p=%d must be a power of two >= 1", s.P)
	case s.Mode != Serial && s.N < s.P:
		return fmt.Errorf("matmul: n=%d < p=%d leaves idle PEs", s.N, s.P)
	case s.Muls < 1:
		return fmt.Errorf("matmul: inner-loop multiplies %d < 1", s.Muls)
	case s.Muls > 64:
		return fmt.Errorf("matmul: inner-loop multiplies %d > 64 (block would overflow the queue)", s.Muls)
	}
	return nil
}

// p returns the effective partition size.
func (s Spec) p() int {
	if s.Mode == Serial {
		return 1
	}
	return s.P
}

// Layout is the per-PE memory map for a given (n, p): each PE holds
// n/p adjacent columns of each matrix, a pointer table TT indexing the
// (rotating) A columns, and a small variable area.
type Layout struct {
	N, P     int
	Cols     int    // n/p columns per PE
	ColBytes uint32 // bytes per column (2n)

	ABase  uint32 // Cols columns of A
	BBase  uint32 // Cols columns of B
	CBase  uint32 // Cols columns of C
	TTBase uint32 // Cols long-word column pointers
	IOff   uint32 // word: this PE's i*(n/p), pre-calculated (paper Sec. 4)
	VCount uint32 // word: v-loop working counter (MIMD variants)
	End    uint32 // first unused byte
}

// NewLayout computes the memory map.
func NewLayout(n, p int) (Layout, error) {
	if p < 1 || n < p || n%p != 0 {
		return Layout{}, fmt.Errorf("matmul: bad layout n=%d p=%d", n, p)
	}
	l := Layout{N: n, P: p, Cols: n / p, ColBytes: uint32(2 * n)}
	matBytes := uint32(l.Cols) * l.ColBytes
	l.ABase = 0x1000
	l.BBase = l.ABase + matBytes
	l.CBase = l.BBase + matBytes
	l.TTBase = l.CBase + matBytes
	l.IOff = l.TTBase + uint32(4*l.Cols)
	l.VCount = l.IOff + 2
	l.End = l.VCount + 2
	return l, nil
}

// MemBytes returns the PE memory size needed for this layout.
func (l Layout) MemBytes() uint32 {
	// Round up to a power of two with headroom for the stack.
	need := l.End + 4096
	size := uint32(1 << 12)
	for size < need {
		size <<= 1
	}
	return size
}

// equs renders the layout as assembler .equ definitions shared by all
// program generators.
func (l Layout) equs() string {
	return fmt.Sprintf(`	.equ N, %d
	.equ COLS, %d
	.equ COLBYTES, %d
	.equ MASK, %d
	.equ ABASE, $%X
	.equ BBASE, $%X
	.equ CBASE, $%X
	.equ TTBASE, $%X
	.equ IOFF, $%X
	.equ VCOUNT, $%X
	.equ NETX, $%X
	.equ SIMDSPACE, $%X
`, l.N, l.Cols, l.ColBytes, l.N-1,
		l.ABase, l.BBase, l.CBase, l.TTBase, l.IOff, l.VCount,
		pasm.AddrNetXmit, pasm.AddrSIMDSpace)
}

// Build generates and assembles the program for a spec, returning the
// program and the layout its data must follow.
func Build(spec Spec) (*m68k.Program, Layout, error) {
	if err := spec.Validate(); err != nil {
		return nil, Layout{}, err
	}
	l, err := NewLayout(spec.N, spec.p())
	if err != nil {
		return nil, Layout{}, err
	}
	src, err := Generate(spec)
	if err != nil {
		return nil, Layout{}, err
	}
	prog, err := m68k.Assemble(src)
	if err != nil {
		return nil, Layout{}, fmt.Errorf("matmul: generated program does not assemble: %w", err)
	}
	return prog, l, nil
}
