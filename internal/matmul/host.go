package matmul

import (
	"fmt"

	"repro/internal/pasm"
	"repro/internal/prng"
)

// Matrix is an n x n matrix of 16-bit unsigned values in column-major
// order: m[c][r] is row r of column c. Columnar storage is what the
// machine uses (paper Figure 5), so the host representation matches.
type Matrix [][]uint16

// NewMatrix returns a zero n x n matrix.
func NewMatrix(n int) Matrix {
	m := make(Matrix, n)
	backing := make([]uint16, n*n)
	for c := range m {
		m[c], backing = backing[:n], backing[n:]
	}
	return m
}

// Identity returns the n x n identity matrix. The paper uses it for
// the A (multiplicand) side: the MC68000 multiply time depends only on
// the multiplier, so the identity simplifies verification without
// changing any timing.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// Random returns an n x n matrix of uniformly distributed 16-bit
// values from the given seed (the paper's B side: "random data,
// produced from a uniformly distributed random number generator").
func Random(n int, seed uint32) Matrix {
	m := NewMatrix(n)
	g := prng.New(seed)
	for c := range m {
		g.Fill(m[c])
	}
	return m
}

// Reference computes A x B with 16-bit wraparound on the host, for
// verifying machine results ("overflow was ignored").
func Reference(a, b Matrix) Matrix {
	n := len(a)
	c := NewMatrix(n)
	for col := 0; col < n; col++ {
		for k := 0; k < n; k++ {
			bv := b[col][k]
			if bv == 0 {
				continue
			}
			ac := a[k]
			cc := c[col]
			for r := 0; r < n; r++ {
				cc[r] += ac[r] * bv
			}
		}
	}
	return c
}

// Equal reports whether two matrices are identical.
func Equal(a, b Matrix) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if len(a[c]) != len(b[c]) {
			return false
		}
		for r := range a[c] {
			if a[c][r] != b[c][r] {
				return false
			}
		}
	}
	return true
}

// Load writes the operand matrices and per-PE constants into the
// partition's PE memories following the layout: PE i holds columns
// i*(n/p) .. (i+1)*(n/p)-1 of A, B and C, plus its pre-calculated
// IOFF = i*(n/p).
func Load(vm *pasm.VM, l Layout, a, b Matrix) error {
	if len(a) != l.N || len(b) != l.N {
		return fmt.Errorf("matmul: matrices are %dx?, layout wants n=%d", len(a), l.N)
	}
	if vm.P != l.P {
		return fmt.Errorf("matmul: partition has %d PEs, layout wants %d", vm.P, l.P)
	}
	for i, pe := range vm.PEs {
		pe.Mem.Reset()
		for v := 0; v < l.Cols; v++ {
			g := i*l.Cols + v
			if err := pe.Mem.WriteWords(l.ABase+uint32(v)*l.ColBytes, a[g]); err != nil {
				return err
			}
			if err := pe.Mem.WriteWords(l.BBase+uint32(v)*l.ColBytes, b[g]); err != nil {
				return err
			}
		}
		if err := pe.Mem.WriteWords(l.IOff, []uint16{uint16(i * l.Cols)}); err != nil {
			return err
		}
	}
	return nil
}

// ReadC extracts the result matrix from the PE memories.
func ReadC(vm *pasm.VM, l Layout) (Matrix, error) {
	c := NewMatrix(l.N)
	for i, pe := range vm.PEs {
		for v := 0; v < l.Cols; v++ {
			col, err := pe.Mem.ReadWords(l.CBase+uint32(v)*l.ColBytes, l.N)
			if err != nil {
				return nil, err
			}
			copy(c[i*l.Cols+v], col)
		}
	}
	return c, nil
}

// Execute builds the program for spec, loads the operands into a fresh
// partition, runs it in the appropriate mode, and returns the timing
// result and the computed C matrix. This is the single entry point the
// experiments and examples use.
func Execute(cfg pasm.Config, spec Spec, a, b Matrix) (pasm.RunResult, Matrix, error) {
	prog, l, err := Build(spec)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	if err := vm.EstablishShift(); err != nil {
		return pasm.RunResult{}, nil, err
	}
	if err := Load(vm, l, a, b); err != nil {
		return pasm.RunResult{}, nil, err
	}
	var res pasm.RunResult
	switch spec.Mode {
	case SIMD, Mixed:
		res, err = vm.RunSIMD(prog)
	default:
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	c, err := ReadC(vm, l)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	return res, c, nil
}
