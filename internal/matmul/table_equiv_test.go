package matmul

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/pasm"
)

// tier selects one of the three interpreter configurations under
// differential test: the dynamic reference path, the pre-resolved
// execution table, and the superinstruction tier with segment
// memoization on top.
type tier int

const (
	tierReference tier = iota
	tierTable
	tierSuper
)

var allTiers = []tier{tierReference, tierTable, tierSuper}

func (tr tier) String() string {
	switch tr {
	case tierReference:
		return "reference"
	case tierTable:
		return "table"
	default:
		return "super"
	}
}

// apply configures cfg for the tier the same way cmd/pasmbench's
// -interp flag does.
func (tr tier) apply(cfg *pasm.Config) {
	switch tr {
	case tierReference:
		cfg.DisableExecTable = true
		cfg.DisableSegmentMemo = true
	case tierTable:
		cfg.DisableSuperinstructions = true
		cfg.DisableSegmentMemo = true
	}
}

// executeWith runs one spec end to end on the given interpreter tier
// with a full observability recorder attached. workers > 1 advances
// MIMD-section PEs on parallel host goroutines.
func executeWith(t *testing.T, spec Spec, a, b Matrix, tr tier, workers int) (pasm.RunResult, Matrix, *obs.Recorder) {
	t.Helper()
	prog, l, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pasm.DefaultConfig()
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	tr.apply(&cfg)
	cfg.HostWorkers = workers
	cfg.Obs = obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EstablishShift(); err != nil {
		t.Fatal(err)
	}
	if err := Load(vm, l, a, b); err != nil {
		t.Fatal(err)
	}
	var res pasm.RunResult
	switch spec.Mode {
	case SIMD, Mixed:
		res, err = vm.RunSIMD(prog)
	default:
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		t.Fatalf("%v run: %v", spec.Mode, err)
	}
	c, err := ReadC(vm, l)
	if err != nil {
		t.Fatal(err)
	}
	return res, c, cfg.Obs
}

// diffObs requires two recorders to have captured the same simulated
// run: identical merged event streams (every field, in order) and
// identical flattened metrics. Any divergence means the two
// interpreter paths disagree about what the machine did, not just
// about the final answer.
func diffObs(t *testing.T, label string, ref, got *obs.Recorder) {
	t.Helper()
	re, ge := ref.Merged(), got.Merged()
	if len(re) != len(ge) {
		t.Errorf("%s: event counts differ: reference %d vs %d", label, len(re), len(ge))
		return
	}
	for i := range re {
		if re[i] != ge[i] {
			t.Errorf("%s: event %d differs: reference %+v vs %+v", label, i, re[i], ge[i])
			return
		}
	}
	rm, gm := ref.Metrics().Flatten(""), got.Metrics().Flatten("")
	if !reflect.DeepEqual(rm, gm) {
		t.Errorf("%s: metrics differ:\nreference: %v\ngot:       %v", label, rm, gm)
	}
}

// diffResults requires two run results to describe the same simulated
// execution. The segment-cache hit/miss counters are host-side
// diagnostics that legitimately differ across tiers, so they are
// normalized away before comparison.
func diffResults(t *testing.T, label string, ref, got pasm.RunResult) {
	t.Helper()
	ref.MemoHits, ref.MemoMisses = 0, 0
	got.MemoHits, got.MemoMisses = 0, 0
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("%s: run results differ:\nreference: %+v\ngot:       %+v", label, ref, got)
	}
}

// TestInterpreterTierEquivalenceAllPrograms runs all generated
// matrix-multiplication programs through the 3-way interpreter matrix
// — dynamic reference, exec table, superinstructions + segment memo —
// and requires identical cycle counts, per-PE clocks, region
// breakdowns, instruction counts, results, and (event for event)
// identical observability streams. The super tier additionally runs
// with parallel host workers, so `go test -race` exercises the memo
// layer's per-PE isolation.
func TestInterpreterTierEquivalenceAllPrograms(t *testing.T) {
	const n, p = 8, 4
	a := Identity(n)
	b := Random(n, 0xC0FFEE)
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		spec := Spec{N: n, P: p, Muls: 2, Mode: mode}
		resRef, cRef, obsRef := executeWith(t, spec, a, b, tierReference, 1)
		want := Reference(a, b)
		if !Equal(cRef, want) {
			t.Errorf("%v: reference result is wrong", mode)
		}
		for _, tr := range []tier{tierTable, tierSuper} {
			workers := 1
			if tr == tierSuper {
				workers = 4
			}
			res, c, rec := executeWith(t, spec, a, b, tr, workers)
			label := mode.String() + "/" + tr.String()
			diffResults(t, label, resRef, res)
			diffObs(t, label, obsRef, rec)
			if !Equal(c, cRef) {
				t.Errorf("%s: result matrices differ", label)
			}
		}
	}
}

// TestSegmentMemoReplayIdentity reruns the same MIMD program on one VM
// so the second run replays segments recorded by the first, and
// requires the replayed run to be indistinguishable from a fresh
// memo-off execution.
func TestSegmentMemoReplayIdentity(t *testing.T) {
	const n, p = 16, 4
	a := Identity(n)
	b := Random(n, 0xFACE)
	spec := Spec{N: n, P: p, Muls: 4, Mode: MIMD}
	prog, l, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pasm.DefaultConfig()
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EstablishShift(); err != nil {
		t.Fatal(err)
	}
	var first pasm.RunResult
	for run := 0; run < 3; run++ {
		if err := Load(vm, l, a, b); err != nil {
			t.Fatal(err)
		}
		res, err := vm.RunMIMD(prog)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ReadC(vm, l)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(c, Reference(a, b)) {
			t.Fatalf("run %d: wrong product", run)
		}
		res.MemoHits, res.MemoMisses = 0, 0
		if run == 0 {
			first = res
			continue
		}
		if !reflect.DeepEqual(res, first) {
			t.Errorf("run %d diverged from run 0:\nfirst: %+v\ngot:   %+v", run, first, res)
		}
	}
	if vm.MemoHits() == 0 {
		t.Error("segment cache never replayed across identical reruns")
	}
}
