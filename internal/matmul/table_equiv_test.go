package matmul

import (
	"reflect"
	"testing"

	"repro/internal/m68k"
	"repro/internal/obs"
	"repro/internal/pasm"
)

// executeWith runs one spec end to end with a full observability
// recorder attached, optionally forcing every CPU the VM creates onto
// the dynamic reference interpreter path instead of the pre-resolved
// execution table.
func executeWith(t *testing.T, spec Spec, a, b Matrix, dynamic bool) (pasm.RunResult, Matrix, *obs.Recorder) {
	t.Helper()
	prog, l, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pasm.DefaultConfig()
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	cfg.Obs = obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		t.Fatal(err)
	}
	vm.TraceHook = func(unit string, cpu *m68k.CPU) {
		cpu.DisableExecTable = dynamic
	}
	if err := vm.EstablishShift(); err != nil {
		t.Fatal(err)
	}
	if err := Load(vm, l, a, b); err != nil {
		t.Fatal(err)
	}
	var res pasm.RunResult
	switch spec.Mode {
	case SIMD, Mixed:
		res, err = vm.RunSIMD(prog)
	default:
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		t.Fatalf("%v run: %v", spec.Mode, err)
	}
	c, err := ReadC(vm, l)
	if err != nil {
		t.Fatal(err)
	}
	return res, c, cfg.Obs
}

// diffObs requires two recorders to have captured the same simulated
// run: identical merged event streams (every field, in order) and
// identical flattened metrics. Any divergence means the two
// interpreter paths disagree about what the machine did, not just
// about the final answer.
func diffObs(t *testing.T, label string, tab, dyn *obs.Recorder) {
	t.Helper()
	te, de := tab.Merged(), dyn.Merged()
	if len(te) != len(de) {
		t.Errorf("%s: event counts differ: table %d vs dynamic %d", label, len(te), len(de))
		return
	}
	for i := range te {
		if te[i] != de[i] {
			t.Errorf("%s: event %d differs: table %+v vs dynamic %+v", label, i, te[i], de[i])
			return
		}
	}
	tm, dm := tab.Metrics().Flatten(""), dyn.Metrics().Flatten("")
	if !reflect.DeepEqual(tm, dm) {
		t.Errorf("%s: metrics differ:\ntable:   %v\ndynamic: %v", label, tm, dm)
	}
}

// TestExecTableEquivalenceAllPrograms runs all four generated
// matrix-multiplication programs through both interpreter paths — the
// pre-resolved execution table and the per-step dynamic reference —
// and requires identical cycle counts, per-PE clocks, region
// breakdowns, instruction counts, results, and (event for event)
// identical observability streams.
func TestExecTableEquivalenceAllPrograms(t *testing.T) {
	const n, p = 8, 4
	a := Identity(n)
	b := Random(n, 0xC0FFEE)
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		spec := Spec{N: n, P: p, Muls: 1, Mode: mode}
		resTab, cTab, obsTab := executeWith(t, spec, a, b, false)
		resDyn, cDyn, obsDyn := executeWith(t, spec, a, b, true)
		diffObs(t, mode.String(), obsTab, obsDyn)

		if resTab.Cycles != resDyn.Cycles {
			t.Errorf("%v: cycles differ: table %d vs dynamic %d", mode, resTab.Cycles, resDyn.Cycles)
		}
		if resTab.Instrs != resDyn.Instrs || resTab.MCInstrs != resDyn.MCInstrs {
			t.Errorf("%v: instruction counts differ: PE %d/%d, MC %d/%d",
				mode, resTab.Instrs, resDyn.Instrs, resTab.MCInstrs, resDyn.MCInstrs)
		}
		if resTab.Regions != resDyn.Regions {
			t.Errorf("%v: region breakdown differs: %v vs %v", mode, resTab.Regions, resDyn.Regions)
		}
		if len(resTab.PEClocks) != len(resDyn.PEClocks) {
			t.Fatalf("%v: PE count differs", mode)
		}
		for i := range resTab.PEClocks {
			if resTab.PEClocks[i] != resDyn.PEClocks[i] {
				t.Errorf("%v: PE %d clock differs: %d vs %d", mode, i, resTab.PEClocks[i], resDyn.PEClocks[i])
			}
		}
		if !Equal(cTab, cDyn) {
			t.Errorf("%v: result matrices differ", mode)
		}
		want := Reference(a, b)
		if !Equal(cTab, want) {
			t.Errorf("%v: table-path result is wrong", mode)
		}
	}
}
