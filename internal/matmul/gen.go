package matmul

import (
	"fmt"
	"strings"
)

// Generate emits the MC68000 assembly source for a spec. The register
// conventions, loop structure, and per-element instruction sequences
// follow Section 4/5 of the paper:
//
//   - the inner loop multiplies one A-column element (multiplicand,
//     timing-neutral) by the B element held in a register (multiplier,
//     whose 1-bits determine the MULU time) and accumulates into C;
//   - extra inner-loop multiplies are straight-line code so control
//     flow overlap cannot skew the measurements, and their results are
//     discarded so C is unaffected;
//   - the B row index is (i*(n/p) + v + j) mod n, with i*(n/p)
//     pre-calculated per PE in its data segment (IOFF);
//   - A columns rotate left once per j step: internal columns by a
//     pointer swap in TT, the boundary column through the network as
//     2n 8-bit transfers (one shift on transmit, one on receive, an
//     OR, per 16-bit element);
//   - the serial version is the optimized SISD program with the same
//     per-element kernel and no communication.
func Generate(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	l, err := NewLayout(spec.N, spec.p())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(fmt.Sprintf("; matmul %s n=%d p=%d muls=%d (generated)\n", spec.Mode, spec.N, spec.p(), spec.Muls))
	b.WriteString(l.equs())
	switch spec.Mode {
	case Serial:
		genSerial(&b, spec)
	case SIMD, Mixed:
		genSIMD(&b, spec, l)
	case MIMD, SMIMD:
		genMIMD(&b, spec, l)
	}
	return b.String(), nil
}

// extraMuls emits the straight-line added multiplies (all but the
// algorithm's own one). The multiplier is the same B element as the
// real multiply, so the added work has identical data-dependent
// timing; the destination is the scratch register d5, so the results
// never reach C.
func extraMuls(b *strings.Builder, count int) {
	for i := 1; i < count; i++ {
		b.WriteString("\tmulu.w\td2, d5\n")
	}
}

// genSerial emits the optimized serial program: for each C column c,
// for each k, the scalar B[k][c] multiplies A's column k into C's
// column c. All matrices are columnar, every inner-loop access is
// sequential, and the accumulate is the same add-to-memory as the
// parallel kernel, so speed-up measurements compare like with like.
func genSerial(b *strings.Builder, spec Spec) {
	b.WriteString(`	.region other
	; clear C
	lea	CBASE, a1
	move.w	#N*COLS-1, d6
clrl:	clr.w	(a1)+
	dbra	d6, clrl
	lea	CBASE, a6	; C column base (advances per c)
	lea	BBASE, a4	; B walks sequentially across the whole run
	move.w	#N-1, d7	; c loop
cloop:	lea	ABASE, a0	; A columns walk k=0..n-1 within each c
	move.w	#N-1, d3	; k loop
	.region mult
kloop:	movea.l	a6, a1		; C column restarts every k
	move.w	(a4)+, d2	; b = B[k][c] - the data-dependent multiplier
	move.w	#N-1, d6	; r loop over column elements
rloop:	move.w	(a0)+, d0
	mulu.w	d2, d0
	add.w	d0, (a1)+
`)
	extraMuls(b, spec.Muls)
	b.WriteString(`	dbra	d6, rloop
	dbra	d3, kloop
	.region other
	adda.w	#COLBYTES, a6
	dbra	d7, cloop
	halt
`)
}

// genMIMD emits the asynchronous per-PE program (pure MIMD with
// status polling, or S/MIMD with barrier reads when spec.Mode is
// SMIMD). All control flow runs on the PE from its own DRAM.
func genMIMD(b *strings.Builder, spec Spec, l Layout) {
	p := spec.p()
	b.WriteString(`	.region other
	lea	NETX, a5
	move.w	IOFF, d4	; jbase = i*(n/p) + j
	clr.w	d5
	; clear C
	lea	CBASE, a1
	move.w	#N*COLS-1, d6
clrl:	clr.w	(a1)+
	dbra	d6, clrl
	; TT[v] = &A column v
	lea	TTBASE, a3
	lea	ABASE, a0
	move.w	#COLS-1, d6
ttl:	move.l	a0, (a3)+
	adda.w	#COLBYTES, a0
	dbra	d6, ttl
	move.w	#N-1, d7	; j loop
jloop:	lea	CBASE, a1
	lea	BBASE, a2
	lea	TTBASE, a3
	move.w	d4, d3
	and.w	#MASK, d3	; rb for v=0
	move.w	#COLS, VCOUNT
	.region mult
vloop:	move.w	d3, d0		; b address = BBASE + v*COLBYTES + 2*rb
	add.w	d0, d0
	movea.l	a2, a4
	adda.w	d0, a4
	move.w	(a4), d2	; b
	movea.l	(a3), a0	; A column via TT[v]
	move.w	#N-1, d6
eloop:	move.w	(a0)+, d0
	mulu.w	d2, d0
	add.w	d0, (a1)+
`)
	extraMuls(b, spec.Muls)
	b.WriteString(`	dbra	d6, eloop
	.region other
	addq.l	#4, a3
	adda.w	#COLBYTES, a2
	addq.w	#1, d3
	and.w	#MASK, d3
	subq.w	#1, VCOUNT
	bne	vloop
`)
	// Rotation: boundary column through the network (skipped when the
	// partition is a single PE, where the "transfer" is the identity),
	// then the TT pointer shift.
	b.WriteString(`	.region comm
	lea	TTBASE, a3
	movea.l	(a3), a0	; departing (lowest) column
	movea.l	a0, a4		; its storage becomes the new highest column
`)
	if p > 1 {
		b.WriteString("\tmove.w\t#N-1, d6\nxloop:\tmove.w\t(a0), d0\n")
		if spec.Mode == MIMD {
			// Polled transfers: the asynchronous network operations
			// necessitate polling the buffer status (paper Sec. 5.2).
			b.WriteString(`txw1:	tst.w	4(a5)
	beq	txw1
	move.b	d0, (a5)
rxw1:	tst.w	6(a5)
	beq	rxw1
	move.b	2(a5), d1
	lsr.w	#8, d0
txw2:	tst.w	4(a5)
	beq	txw2
	move.b	d0, (a5)
rxw2:	tst.w	6(a5)
	beq	rxw2
	move.b	2(a5), d0
`)
		} else {
			// Barrier-synchronized transfers: each network operation
			// becomes a simple move bracketed by Fetch-Unit barrier
			// reads (paper Sec. 5.3); d3 is free here and absorbs the
			// dummy word.
			b.WriteString(`	move.w	SIMDSPACE, d3
	move.b	d0, (a5)
	move.w	SIMDSPACE, d3
	move.b	2(a5), d1
	lsr.w	#8, d0
	move.w	SIMDSPACE, d3
	move.b	d0, (a5)
	move.w	SIMDSPACE, d3
	move.b	2(a5), d0
`)
		}
		b.WriteString(`	lsl.w	#8, d0
	move.b	d1, d0
	move.w	d0, (a0)+
	dbra	d6, xloop
`)
	}
	b.WriteString("\t.region other\n")
	if l.Cols > 1 {
		b.WriteString(`	lea	TTBASE, a3
	move.w	#COLS-2, d6
trot:	move.l	4(a3), (a3)
	addq.l	#4, a3
	dbra	d6, trot
`)
	}
	b.WriteString(`	move.l	a4, (a3)
	addq.w	#1, d4
	dbra	d7, jloop
	halt
`)
}

// genSIMD emits the MC control program plus the PE broadcast blocks.
// Every loop and counter lives on the MC; the PEs see only the
// straight-line blocks delivered through the Fetch Unit queue.
func genSIMD(b *strings.Builder, spec Spec, l Layout) {
	p := spec.p()
	b.WriteString(`	.region control
	bcast	init
	move.w	#N*COLS/4-1, d0
mclr:	bcast	clr4
	dbra	d0, mclr
	move.w	#COLS-1, d0
mtt:	bcast	ttstep
	dbra	d0, mtt
	move.w	#N-1, d7	; j loop
mjloop:	bcast	jreset
	move.w	#COLS-1, d5	; v loop
mvloop:	bcast	colsetup
	move.w	#N-1, d6	; element loop
meloop:	bcast	elem
	dbra	d6, meloop
	bcast	vstep
	dbra	d5, mvloop
	bcast	rotsetup
`)
	if p > 1 {
		b.WriteString(`	move.w	#N-1, d6
mxloop:	bcast	xfer
	dbra	d6, mxloop
`)
	}
	if l.Cols > 1 {
		b.WriteString(`	move.w	#COLS-2, d5
mrot:	bcast	rotstep
	dbra	d5, mrot
`)
	}
	b.WriteString(`	bcast	rotlast
	bcast	jinc
	dbra	d7, mjloop
	halt

	.region other
	.block	init
	lea	NETX, a5
	move.w	IOFF, d4
	clr.w	d5
	lea	CBASE, a1
	lea	TTBASE, a3
	lea	ABASE, a0
	.endblock

	.block	clr4
	clr.w	(a1)+
	clr.w	(a1)+
	clr.w	(a1)+
	clr.w	(a1)+
	.endblock

	.block	ttstep
	move.l	a0, (a3)+
	adda.w	#COLBYTES, a0
	.endblock

	.block	jreset
	lea	CBASE, a1
	lea	BBASE, a2
	lea	TTBASE, a3
	move.w	d4, d3
	and.w	#MASK, d3
	.endblock

	.region mult
	.block	colsetup
	move.w	d3, d0
	add.w	d0, d0
	movea.l	a2, a4
	adda.w	d0, a4
	move.w	(a4), d2
	movea.l	(a3), a0
	.endblock

	.block	elem
`)
	if spec.Mode == Mixed {
		// The paper's fine-grained decoupling: only the variable-time
		// multiply grain leaves lockstep. The broadcast jump switches
		// every PE to asynchronous execution from its own memory;
		// jumping back into the SIMD space rejoins the stream (the
		// Fetch Unit release is the implicit barrier).
		b.WriteString("\tmove.w\t(a0)+, d0\n\tjmp\tmelem\n")
	} else {
		b.WriteString("\tmove.w\t(a0)+, d0\n\tmulu.w\td2, d0\n\tadd.w\td0, (a1)+\n")
		extraMuls(b, spec.Muls)
	}
	b.WriteString(`	.endblock

	.region other
	.block	vstep
	addq.l	#4, a3
	adda.w	#COLBYTES, a2
	addq.w	#1, d3
	and.w	#MASK, d3
	.endblock

	.region comm
	.block	rotsetup
	lea	TTBASE, a3
	movea.l	(a3), a0
	movea.l	a0, a4
	.endblock
`)
	if p > 1 {
		b.WriteString(`
	.block	xfer
	move.w	(a0), d0
	move.b	d0, (a5)
	move.b	2(a5), d1
	lsr.w	#8, d0
	move.b	d0, (a5)
	move.b	2(a5), d0
	lsl.w	#8, d0
	move.b	d1, d0
	move.w	d0, (a0)+
	.endblock
`)
	}
	b.WriteString(`
	.region other
	.block	rotstep
	move.l	4(a3), (a3)
	addq.l	#4, a3
	.endblock

	.block	rotlast
	move.l	a4, (a3)
	.endblock

	.block	jinc
	addq.w	#1, d4
	.endblock
`)
	if spec.Mode == Mixed {
		b.WriteString("\n\t.region mult\n\t; asynchronous multiply burst (fetched from PE memory)\nmelem:\tmulu.w\td2, d0\n")
		extraMuls(b, spec.Muls)
		b.WriteString("\tadd.w\td0, (a1)+\n\tjmp\tSIMDSPACE\n")
	}
}
