package matmul

import (
	"testing"

	"repro/internal/pasm"
)

func testConfig() pasm.Config {
	cfg := pasm.DefaultConfig()
	cfg.PEMemBytes = 1 << 16
	return cfg
}

func TestReferenceSmall(t *testing.T) {
	// [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
	a := NewMatrix(2)
	a[0][0], a[1][0] = 1, 2
	a[0][1], a[1][1] = 3, 4
	b := NewMatrix(2)
	b[0][0], b[1][0] = 5, 6
	b[0][1], b[1][1] = 7, 8
	c := Reference(a, b)
	want := [][]uint16{{19, 43}, {22, 50}} // column-major
	for col := range want {
		for r := range want[col] {
			if c[col][r] != want[col][r] {
				t.Errorf("c[%d][%d] = %d, want %d", col, r, c[col][r], want[col][r])
			}
		}
	}
}

func TestReferenceIdentity(t *testing.T) {
	b := Random(8, 77)
	c := Reference(Identity(8), b)
	if !Equal(c, b) {
		t.Error("I x B != B")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{N: 3, P: 1, Muls: 1, Mode: MIMD},
		{N: 8, P: 3, Muls: 1, Mode: MIMD},
		{N: 8, P: 4, Muls: 0, Mode: MIMD},
		{N: 8, P: 4, Muls: 100, Mode: MIMD},
		{N: 4, P: 8, Muls: 1, Mode: MIMD},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
	if err := (Spec{N: 3, P: 1, Muls: 1, Mode: Serial}); err.Validate() == nil {
		t.Error("serial n=3 accepted")
	}
	good := Spec{N: 64, P: 4, Muls: 14, Mode: SMIMD}
	if err := good.Validate(); err != nil {
		t.Errorf("%+v rejected: %v", good, err)
	}
}

func TestLayoutDisjoint(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{4, 1}, {8, 4}, {64, 4}, {256, 16}, {256, 1}} {
		l, err := NewLayout(tc.n, tc.p)
		if err != nil {
			t.Fatalf("n=%d p=%d: %v", tc.n, tc.p, err)
		}
		mat := uint32(l.Cols) * l.ColBytes
		if l.BBase != l.ABase+mat || l.CBase != l.BBase+mat || l.TTBase != l.CBase+mat {
			t.Errorf("n=%d p=%d: overlapping regions %+v", tc.n, tc.p, l)
		}
		if l.MemBytes() < l.End {
			t.Errorf("n=%d p=%d: MemBytes %d < End %d", tc.n, tc.p, l.MemBytes(), l.End)
		}
	}
}

func TestGenerateAssembles(t *testing.T) {
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		for _, tc := range []struct{ n, p, m int }{{4, 4, 1}, {8, 4, 3}, {16, 8, 1}, {16, 16, 2}, {8, 1, 1}} {
			spec := Spec{N: tc.n, P: tc.p, Muls: tc.m, Mode: mode}
			if _, _, err := Build(spec); err != nil {
				t.Errorf("%s n=%d p=%d m=%d: %v", mode, tc.n, tc.p, tc.m, err)
			}
		}
	}
}

// verify runs a spec against random A and B and checks the machine's C
// against the host reference. Random A (not the paper's identity)
// exercises the full data path.
func verify(t *testing.T, spec Spec, seed uint32) pasm.RunResult {
	t.Helper()
	a := Random(spec.N, seed)
	b := Random(spec.N, seed+1)
	res, c, err := Execute(testConfig(), spec, a, b)
	if err != nil {
		t.Fatalf("%s n=%d p=%d m=%d: %v", spec.Mode, spec.N, spec.P, spec.Muls, err)
	}
	if want := Reference(a, b); !Equal(c, want) {
		t.Fatalf("%s n=%d p=%d m=%d: wrong product", spec.Mode, spec.N, spec.P, spec.Muls)
	}
	return res
}

func TestSerialCorrect(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		verify(t, Spec{N: n, Muls: 1, Mode: Serial}, uint32(n))
	}
	verify(t, Spec{N: 8, Muls: 5, Mode: Serial}, 99)
}

func TestMIMDCorrect(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{4, 4}, {8, 2}, {8, 4}, {16, 4}, {16, 8}, {16, 16}, {8, 1}} {
		verify(t, Spec{N: tc.n, P: tc.p, Muls: 1, Mode: MIMD}, uint32(tc.n*tc.p))
	}
	verify(t, Spec{N: 8, P: 4, Muls: 7, Mode: MIMD}, 123)
}

func TestSMIMDCorrect(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{4, 4}, {8, 4}, {16, 8}, {16, 16}} {
		verify(t, Spec{N: tc.n, P: tc.p, Muls: 1, Mode: SMIMD}, uint32(tc.n+tc.p))
	}
	verify(t, Spec{N: 8, P: 4, Muls: 14, Mode: SMIMD}, 5)
}

func TestSIMDCorrect(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{4, 4}, {8, 2}, {8, 4}, {16, 4}, {16, 8}, {16, 16}, {8, 1}} {
		verify(t, Spec{N: tc.n, P: tc.p, Muls: 1, Mode: SIMD}, uint32(3*tc.n+tc.p))
	}
	verify(t, Spec{N: 8, P: 4, Muls: 30, Mode: SIMD}, 7)
}

func TestAllModesAgree(t *testing.T) {
	// The same operands through all four programs must give the same C.
	a := Random(16, 1000)
	b := Random(16, 1001)
	var first Matrix
	for _, spec := range []Spec{
		{N: 16, Muls: 1, Mode: Serial},
		{N: 16, P: 4, Muls: 1, Mode: SIMD},
		{N: 16, P: 4, Muls: 1, Mode: MIMD},
		{N: 16, P: 4, Muls: 1, Mode: SMIMD},
	} {
		_, c, err := Execute(testConfig(), spec, a, b)
		if err != nil {
			t.Fatalf("%s: %v", spec.Mode, err)
		}
		if first == nil {
			first = c
		} else if !Equal(first, c) {
			t.Errorf("%s disagrees with serial result", spec.Mode)
		}
	}
}

func TestExtraMulsDoNotChangeResult(t *testing.T) {
	a := Random(8, 50)
	b := Random(8, 51)
	_, c1, err := Execute(testConfig(), Spec{N: 8, P: 4, Muls: 1, Mode: SIMD}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, c30, err := Execute(testConfig(), Spec{N: 8, P: 4, Muls: 30, Mode: SIMD}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(c1, c30) {
		t.Error("added multiplies changed the product")
	}
}

func TestExtraMulsIncreaseTime(t *testing.T) {
	a := Identity(8)
	b := Random(8, 52)
	r1, _, err := Execute(testConfig(), Spec{N: 8, P: 4, Muls: 1, Mode: SMIMD}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r5, _, err := Execute(testConfig(), Spec{N: 8, P: 4, Muls: 5, Mode: SMIMD}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Cycles <= r1.Cycles {
		t.Errorf("5 multiplies (%d cycles) not slower than 1 (%d)", r5.Cycles, r1.Cycles)
	}
}

func TestNetworkTrafficMatchesAnalysis(t *testing.T) {
	// The algorithm performs n byte-pair transfers per PE per j step:
	// n rotations x n elements x 2 bytes per PE (paper: 2n network
	// operations per column, n^2 element transfers per PE overall).
	n, p := 8, 4
	res := verify(t, Spec{N: n, P: p, Muls: 1, Mode: MIMD}, 77)
	want := int64(2 * n * n * p)
	if res.NetTransfers != want {
		t.Errorf("network bytes = %d, want %d", res.NetTransfers, want)
	}
}

func TestSMIMDBarrierCount(t *testing.T) {
	// Four barriers per transferred element: n^2 elements -> 4n^2
	// rounds.
	n, p := 8, 4
	res := verify(t, Spec{N: n, P: p, Muls: 1, Mode: SMIMD}, 11)
	want := 4 * n * n
	if res.BarrierRounds != want {
		t.Errorf("barrier rounds = %d, want %d", res.BarrierRounds, want)
	}
}

func TestDeterministicCycles(t *testing.T) {
	spec := Spec{N: 8, P: 4, Muls: 1, Mode: SIMD}
	a, b := Identity(8), Random(8, 4242)
	r1, _, err := Execute(testConfig(), spec, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Execute(testConfig(), spec, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Instrs != r2.Instrs {
		t.Errorf("non-deterministic: %v vs %v", r1, r2)
	}
}

func TestIdentityAVersusRandomATimingInvariant(t *testing.T) {
	// The paper's key measurement trick: the multiplicand (A) does not
	// affect MULU time, so identity-A and random-A runs must take
	// exactly the same cycles when B is fixed.
	spec := Spec{N: 8, P: 4, Muls: 1, Mode: SIMD}
	b := Random(8, 321)
	rI, _, err := Execute(testConfig(), spec, Identity(8), b)
	if err != nil {
		t.Fatal(err)
	}
	rA, _, err := Execute(testConfig(), spec, Random(8, 654), b)
	if err != nil {
		t.Fatal(err)
	}
	if rI.Cycles != rA.Cycles {
		t.Errorf("A data changed timing: %d vs %d cycles", rI.Cycles, rA.Cycles)
	}
}

// TestBothOrdersWithoutReformatting: the paper chose the columnar
// layout so "BxA may be calculated as well as AxB without
// rearrangement of the data" — swapping which matrix is loaded where
// computes the transposed-order product with the same program.
func TestBothOrdersWithoutReformatting(t *testing.T) {
	a := Random(8, 201)
	b := Random(8, 202)
	spec := Spec{N: 8, P: 4, Muls: 1, Mode: SIMD}
	_, ab, err := Execute(testConfig(), spec, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, ba, err := Execute(testConfig(), spec, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ab, Reference(a, b)) {
		t.Error("AxB wrong")
	}
	if !Equal(ba, Reference(b, a)) {
		t.Error("BxA wrong")
	}
	if Equal(ab, ba) {
		t.Error("AxB == BxA for random matrices (suspicious)")
	}
}

// TestGenerateSourceIsStable: program generation is deterministic.
func TestGenerateSourceIsStable(t *testing.T) {
	s1, err := Generate(Spec{N: 16, P: 4, Muls: 5, Mode: SMIMD})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Generate(Spec{N: 16, P: 4, Muls: 5, Mode: SMIMD})
	if s1 != s2 {
		t.Error("generation not deterministic")
	}
	if len(s1) < 500 {
		t.Errorf("generated source suspiciously short (%d bytes)", len(s1))
	}
}

func TestMixedCorrect(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{4, 4}, {8, 2}, {8, 4}, {16, 8}, {16, 16}, {8, 1}} {
		verify(t, Spec{N: tc.n, P: tc.p, Muls: 1, Mode: Mixed}, uint32(5*tc.n+tc.p))
	}
	verify(t, Spec{N: 8, P: 4, Muls: 14, Mode: Mixed}, 9)
}

func TestMixedAgreesWithSerial(t *testing.T) {
	a := Random(16, 1100)
	b := Random(16, 1101)
	_, want, err := Execute(testConfig(), Spec{N: 16, Muls: 1, Mode: Serial}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := Execute(testConfig(), Spec{N: 16, P: 4, Muls: 1, Mode: Mixed}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(want, got) {
		t.Error("Mixed disagrees with serial")
	}
}

// TestMixedNeverBeatsSIMDOnCorrelatedBursts pins the central insight
// of the mixed-mode extension: per-element decoupled bursts reuse one
// multiplier, so their execution-time variation is perfectly
// correlated within the burst — the rejoin pays the same maximum a
// per-instruction lockstep would, and the mode switches are pure
// overhead. (S/MIMD's much coarser per-rotation granularity aggregates
// n/p independent multipliers, which is where its gain comes from.)
func TestMixedNeverBeatsSIMDOnCorrelatedBursts(t *testing.T) {
	a := Identity(32)
	b := Random(32, 77)
	for _, m := range []int{1, 14, 30} {
		rs, _, err := Execute(testConfig(), Spec{N: 32, P: 4, Muls: m, Mode: SIMD}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		rx, _, err := Execute(testConfig(), Spec{N: 32, P: 4, Muls: m, Mode: Mixed}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if rx.Cycles <= rs.Cycles {
			t.Errorf("muls=%d: Mixed (%d) beat SIMD (%d) despite correlated bursts", m, rx.Cycles, rs.Cycles)
		}
		// The relative penalty must shrink as bursts grow (overhead
		// amortizes).
		_ = m
	}
}
