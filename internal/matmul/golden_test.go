package matmul

import (
	"testing"

	"repro/internal/m68k"
	"repro/internal/pasm"
)

// TestGoldenCycleCounts pins exact cycle counts for a grid of small
// configurations. The simulator is deterministic, so any change to
// instruction timings, queue arithmetic, network costs, or program
// generation shows up here first. If a change is *intentional*,
// set the constant to 0 to have the test log the measured value to
// fill in.
func TestGoldenCycleCounts(t *testing.T) {
	golden := []struct {
		spec Spec
		want int64
	}{
		{Spec{N: 8, Muls: 1, Mode: Serial}, 52387},
		{Spec{N: 8, P: 4, Muls: 1, Mode: SIMD}, 20311},
		{Spec{N: 8, P: 4, Muls: 1, Mode: MIMD}, 31969},
		{Spec{N: 8, P: 4, Muls: 1, Mode: SMIMD}, 31436},
		{Spec{N: 16, P: 8, Muls: 3, Mode: SIMD}, 137161},
		{Spec{N: 16, P: 8, Muls: 3, Mode: SMIMD}, 177474},
	}
	cfg := pasm.DefaultConfig()
	cfg.PEMemBytes = 1 << 16
	for i, g := range golden {
		a := Identity(g.spec.N)
		b := Random(g.spec.N, 1988+uint32(g.spec.N))
		res, c, err := Execute(cfg, g.spec, a, b)
		if err != nil {
			t.Fatalf("%v: %v", g.spec, err)
		}
		if !Equal(c, b) {
			t.Fatalf("%v: wrong product", g.spec)
		}
		if g.want == 0 {
			t.Logf("golden[%d] %s n=%d p=%d m=%d: %d cycles (fill in)",
				i, g.spec.Mode, g.spec.N, g.spec.P, g.spec.Muls, res.Cycles)
			continue
		}
		if res.Cycles != g.want {
			t.Errorf("%s n=%d p=%d m=%d: %d cycles, golden %d",
				g.spec.Mode, g.spec.N, g.spec.P, g.spec.Muls, res.Cycles, g.want)
		}
	}
}

// TestGeneratedProgramsEncode round-trips every MIMD-family generated
// program through the binary encoder and decoder: the encoding length
// must equal the timing model's instruction words, and the decoded
// stream must match instruction for instruction. (SIMD programs
// contain MC-only pseudo-instructions and are intentionally not
// encodable.)
func TestGeneratedProgramsEncode(t *testing.T) {
	for _, spec := range []Spec{
		{N: 8, Muls: 1, Mode: Serial},
		{N: 64, Muls: 30, Mode: Serial},
		{N: 8, P: 4, Muls: 1, Mode: MIMD},
		{N: 64, P: 4, Muls: 30, Mode: MIMD},
		{N: 64, P: 16, Muls: 14, Mode: SMIMD},
	} {
		prog, _, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		words, err := prog.Encode()
		if err != nil {
			t.Fatalf("%s n=%d muls=%d: encode: %v", spec.Mode, spec.N, spec.Muls, err)
		}
		total := 0
		for _, in := range prog.Instrs {
			total += int(in.Words)
		}
		if total != len(words) {
			t.Fatalf("%s: Words sum %d != encoding %d", spec.Mode, total, len(words))
		}
		back, err := m68k.Decode(words)
		if err != nil {
			t.Fatalf("%s: decode: %v", spec.Mode, err)
		}
		if len(back.Instrs) != len(prog.Instrs) {
			t.Fatalf("%s: decoded %d instrs, want %d", spec.Mode, len(back.Instrs), len(prog.Instrs))
		}
		for i := range prog.Instrs {
			if prog.Instrs[i].Op != back.Instrs[i].Op || prog.Instrs[i].Words != back.Instrs[i].Words {
				t.Errorf("%s: instr %d: %s -> %s", spec.Mode, i,
					prog.Instrs[i].String(), back.Instrs[i].String())
			}
		}
	}
}
