package m68k

import "math/bits"

// Instruction timing, after the MC68000 User's Manual execution-time
// tables (8 MHz part; times are in clock cycles and include the
// instruction's own fetch at zero wait states). Wait states for
// fetching from DRAM rather than the Fetch Unit queue, and DRAM
// refresh interference, are charged separately by the CPU using
// Memory.Penalty, which is how the SIMD/MIMD fetch-speed difference of
// the paper's Table 1 arises.
//
// The central data-dependent times:
//
//	MULU <ea>,Dn = 38 + 2*n + EA, n = number of 1 bits in the source
//	MULS <ea>,Dn = 38 + 2*n + EA, n = number of 01/10 boundaries in
//	               (source << 1) viewed as a 17-bit pattern
//	DIVU <ea>,Dn = 76 + 2*n + EA, n = number of 1 bits in the 16-bit
//	               quotient (an approximation of the manual's
//	               data-dependent 76..140 range, documented here)

// eaReadCycles is the effective-address calculation + operand fetch
// time for a source read of byte/word size.
func eaReadCycles(o Operand, sz Size) int64 {
	long := int64(0)
	if sz == Long {
		long = 4
	}
	switch o.Mode {
	case ModeDataReg, ModeAddrReg, ModeNone, ModeLabel:
		return 0
	case ModeIndirect, ModePostInc:
		return 4 + long
	case ModePreDec:
		return 6 + long
	case ModeDisp:
		return 8 + long
	case ModeAbs:
		if uint32(o.Val) > 0xFFFF {
			return 12 + long
		}
		return 8 + long
	case ModeImm:
		return 4 + long
	}
	return 0
}

// eaWriteCycles is the destination-write time for MOVE-class stores.
// (The 68000 quirk that MOVE to -(An) costs the same as to (An) is
// reflected here.)
func eaWriteCycles(o Operand, sz Size) int64 {
	long := int64(0)
	if sz == Long {
		long = 4
	}
	switch o.Mode {
	case ModeDataReg, ModeAddrReg:
		return 0
	case ModeIndirect, ModePostInc, ModePreDec:
		return 4 + long
	case ModeDisp:
		return 8 + long
	case ModeAbs:
		if uint32(o.Val) > 0xFFFF {
			return 12 + long
		}
		return 8 + long
	}
	return 0
}

// MuluCycles returns the full MULU <ea>,Dn time for a given 16-bit
// source operand: 38 + 2*ones(src), plus the source EA time, which is
// added by the interpreter. Exported so that workload generators and
// analytic models can predict instruction times.
func MuluCycles(src uint16) int64 {
	return 38 + 2*int64(bits.OnesCount16(src))
}

// MulsCycles returns the MULS time for a 16-bit source: 38 + 2*n where
// n counts the 01/10 pattern boundaries in src<<1 (per the manual).
func MulsCycles(src uint16) int64 {
	pattern := uint32(src) << 1
	n := bits.OnesCount32(pattern ^ (pattern>>1)&0x1FFFF)
	return 38 + 2*int64(n)
}

// DivuCycles returns the modeled DIVU time for a quotient value.
func DivuCycles(quotient uint16) int64 {
	return 76 + 2*int64(bits.OnesCount16(quotient))
}

// baseCycles returns the table execution time of an instruction,
// excluding data-dependent components (MULU/MULS/DIVU add those at
// execution time) and excluding wait states.
func baseCycles(in *Instr) int64 {
	sz := in.Size
	switch in.Op {
	case NOP, HALT:
		return 4
	case MOVE:
		base := int64(4)
		if sz == Long {
			// move.l register-to-register is 4; memory traffic is in
			// the EA components.
		}
		return base + eaReadCycles(in.Src, sz) + eaWriteCycles(in.Dst, sz)
	case MOVEA:
		return 4 + eaReadCycles(in.Src, sz)
	case MOVEQ:
		return 4
	case LEA:
		switch in.Src.Mode {
		case ModeIndirect:
			return 4
		case ModeDisp:
			return 8
		case ModeAbs:
			if uint32(in.Src.Val) > 0xFFFF {
				return 12
			}
			return 8
		}
		return 4
	case CLR, NOT, NEG:
		if in.Dst.IsMem() {
			return 8 + eaReadCycles(in.Dst, sz)
		}
		if sz == Long {
			return 6
		}
		return 4
	case TST:
		return 4 + eaReadCycles(in.Dst, sz)
	case ADD, SUB, AND, OR, EOR:
		if in.Dst.IsMem() {
			return 8 + eaReadCycles(in.Dst, sz)
		}
		if sz == Long {
			return 6 + eaReadCycles(in.Src, sz)
		}
		return 4 + eaReadCycles(in.Src, sz)
	case CMP:
		if sz == Long {
			return 6 + eaReadCycles(in.Src, sz)
		}
		return 4 + eaReadCycles(in.Src, sz)
	case ADDA, SUBA:
		if sz == Long {
			return 6 + eaReadCycles(in.Src, sz)
		}
		return 8 + eaReadCycles(in.Src, sz)
	case CMPA:
		return 6 + eaReadCycles(in.Src, sz)
	case ADDQ, SUBQ:
		if in.Dst.IsMem() {
			return 8 + eaReadCycles(in.Dst, sz)
		}
		if in.Dst.Mode == ModeAddrReg || sz == Long {
			return 8
		}
		return 4
	case ADDI, SUBI, ANDI, ORI, EORI:
		if in.Dst.IsMem() {
			return 12 + eaReadCycles(in.Dst, sz)
		}
		if sz == Long {
			return 16
		}
		return 8
	case CMPI:
		if in.Dst.IsMem() {
			return 8 + eaReadCycles(in.Dst, sz)
		}
		if sz == Long {
			return 14
		}
		return 8
	case MULU, MULS:
		// data-dependent part added at execution; EA time here
		return eaReadCycles(in.Src, Word)
	case DIVU:
		return eaReadCycles(in.Src, Word)
	case LSL, LSR, ASL, ASR, ROL, ROR:
		// 6 + 2n (word) / 8 + 2n (long); n added at execution for
		// register counts, here for immediate counts.
		base := int64(6)
		if sz == Long {
			base = 8
		}
		if in.Src.Mode == ModeImm {
			return base + 2*int64(in.Src.Val)
		}
		return base
	case SWAP:
		return 4
	case EXG:
		return 6
	case EXT:
		return 4
	case BCC:
		return 10 // taken; not-taken adjusts to 8 at execution
	case DBCC:
		return 10 // loop-taken; expired 14, cc-true 12 at execution
	case JMP:
		return jmpCycles(in.Dst, 10)
	case JSR:
		return jmpCycles(in.Dst, 18)
	case RTS:
		return 16
	case BCAST, SETMASK:
		// Modeled as move.w #imm,(FU register): 4 + imm fetch 4 +
		// register-file write 4.
		return 12
	case BTST:
		if in.Dst.IsMem() {
			return 4 + eaReadCycles(in.Dst, Byte) + immExtra(in, 4)
		}
		return 6 + immExtra(in, 4)
	case BSET, BCLR, BCHG:
		if in.Dst.IsMem() {
			return 8 + eaReadCycles(in.Dst, Byte) + immExtra(in, 4)
		}
		return 8 + immExtra(in, 4)
	}
	return 4
}

// immExtra adds the immediate-operand fetch time for bit instructions.
func immExtra(in *Instr, t int64) int64 {
	if in.Src.Mode == ModeImm {
		return t
	}
	return 0
}

func jmpCycles(o Operand, absW int64) int64 {
	switch o.Mode {
	case ModeIndirect:
		return absW - 2
	case ModeDisp:
		return absW
	case ModeAbs:
		if uint32(o.Val) > 0xFFFF {
			return absW + 2
		}
		return absW
	case ModeLabel:
		return absW
	}
	return absW
}
