package m68k

import (
	"testing"
)

// TestEncodeGoldenOpcodes pins known MC68000 encodings.
func TestEncodeGoldenOpcodes(t *testing.T) {
	cases := []struct {
		src  string
		want []uint16
	}{
		{"nop", []uint16{0x4E71}},
		{"rts", []uint16{0x4E75}},
		{"halt", []uint16{0x4AFC}}, // ILLEGAL as the simulator's halt
		{"move.w d0, d1", []uint16{0x3200}},
		{"move.w (a0)+, d0", []uint16{0x3018}},
		{"move.w d0, (a1)", []uint16{0x3280}},
		{"move.b d0, (a5)", []uint16{0x1A80}},
		{"move.w #100, d3", []uint16{0x363C, 100}},
		{"move.l #$12345678, d1", []uint16{0x223C, 0x1234, 0x5678}},
		{"move.w 8(a2), d0", []uint16{0x302A, 8}},
		{"move.w $1000, d0", []uint16{0x3038, 0x1000}},
		{"move.w $F10000, d0", []uint16{0x3039, 0x00F1, 0x0000}},
		{"movea.l #$1000, a0", []uint16{0x207C, 0x0000, 0x1000}},
		{"moveq #1, d0", []uint16{0x7001}},
		{"moveq #-1, d7", []uint16{0x7EFF}},
		{"add.w d1, d0", []uint16{0xD041}},
		{"add.w d0, (a1)+", []uint16{0xD159}},
		{"sub.w d2, d3", []uint16{0x9642}},
		{"mulu.w d1, d0", []uint16{0xC0C1}},
		{"muls.w d1, d0", []uint16{0xC1C1}},
		{"divu.w d1, d0", []uint16{0x80C1}},
		{"clr.w d3", []uint16{0x4243}},
		{"clr.w (a1)+", []uint16{0x4259}},
		{"tst.w d0", []uint16{0x4A40}},
		{"swap d2", []uint16{0x4842}},
		{"ext.w d1", []uint16{0x4881}},
		{"ext.l d2", []uint16{0x48C2}},
		{"exg d3, d4", []uint16{0xC744}},
		{"lea $1000, a3", []uint16{0x47F8, 0x1000}},
		{"addq.w #1, d0", []uint16{0x5240}},
		{"addq.w #8, d0", []uint16{0x5040}}, // 8 encodes as 0
		{"subq.l #4, a3", []uint16{0x598B}},
		{"addi.w #5, d1", []uint16{0x0641, 5}},
		{"cmpi.w #3, d1", []uint16{0x0C41, 3}},
		{"and.w #15, d3", []uint16{0xC67C, 15}}, // immediate source EA (canonical assemblers emit ANDI)
		{"lsl.w #8, d0", []uint16{0xE148}},
		{"lsr.w #1, d1", []uint16{0xE249}},
		{"asr.w #2, d2", []uint16{0xE442}},
		{"rol.w #4, d6", []uint16{0xE95E}},
		{"lsl.w d1, d0", []uint16{0xE368}},
		{"btst #2, d1", []uint16{0x0801, 2}},
		{"bset d1, d0", []uint16{0x03C0}},
		{"adda.w #2, a0", []uint16{0xD0FC, 2}},
		{"dbra d0, x\nx: nop", []uint16{0x51C8, 0x0002, 0x4E71}},
		{"jmp x\nx: nop", []uint16{0x4EF8, 0x0004, 0x4E71}},
		{"jsr x\nx: nop", []uint16{0x4EB8, 0x0004, 0x4E71}},
	}
	for _, tc := range cases {
		p, err := Assemble(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		got, err := p.Encode()
		if err != nil {
			t.Errorf("%q: encode: %v", tc.src, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%q: encoded %04X, want %04X", tc.src, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%q: word %d = %04X, want %04X", tc.src, i, got[i], tc.want[i])
			}
		}
	}
}

func TestEncodeBranchForms(t *testing.T) {
	// Backward short branch.
	p := MustAssemble("x: nop\n bra x")
	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// bra at byte 2; disp = 0 - 4 = -4 = 0xFC.
	if len(words) != 2 || words[1] != 0x60FC {
		t.Errorf("short bra = %04X", words)
	}

	// Branch to the immediately following instruction must take the
	// word form (byte displacement 0 means "word follows").
	p = MustAssemble("beq next\nnext: nop")
	words, err = p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 3 || words[0] != 0x6700 || words[1] != 0x0002 {
		t.Errorf("word-form beq = %04X", words)
	}
	if p.Instrs[0].Words != 2 {
		t.Errorf("relaxation missed: Words = %d", p.Instrs[0].Words)
	}
}

func TestRelaxationLongBranch(t *testing.T) {
	// A branch over >127 bytes of code must be relaxed to word form.
	src := "top: nop\n"
	for i := 0; i < 100; i++ {
		src += "\tmove.w #1, d0\n" // 2 words each = 400 bytes
	}
	src += "\tbra top\n halt"
	p := MustAssemble(src)
	bra := p.Instrs[101]
	if bra.Op != BCC || bra.Words != 2 {
		t.Fatalf("long bra not relaxed: %+v", bra)
	}
	if _, err := p.Encode(); err != nil {
		t.Fatalf("encode: %v", err)
	}
}

func TestEncodeRejectsMCOnly(t *testing.T) {
	p := MustAssemble(`
		bcast   b
		halt
		.block  b
		nop
		.endblock
	`)
	if _, err := p.Encode(); err == nil {
		t.Error("BCAST encoded")
	}
	p = MustAssemble("setmask #3\n halt")
	if _, err := p.Encode(); err == nil {
		t.Error("SETMASK encoded")
	}
}

// roundTrip encodes a program and decodes it back, comparing the
// instruction streams (ops, sizes, operands, branch targets, widths).
func roundTrip(t *testing.T, p *Program, name string) {
	t.Helper()
	words, err := p.Encode()
	if err != nil {
		t.Fatalf("%s: encode: %v", name, err)
	}
	total := 0
	for _, in := range p.Instrs {
		total += int(in.Words)
	}
	if total != len(words) {
		t.Fatalf("%s: Words sum %d != encoding length %d (fetch timing would be wrong)", name, total, len(words))
	}
	q, err := Decode(words)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("%s: decoded %d instructions, want %d", name, len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], q.Instrs[i]
		if a.Op != b.Op || a.Size != b.Size || a.Cond != b.Cond || a.Words != b.Words {
			t.Errorf("%s: instr %d: %v round-tripped to %v", name, i, a.String(), b.String())
			continue
		}
		if !operandEqual(a.Src, b.Src) || !operandEqual(a.Dst, b.Dst) {
			t.Errorf("%s: instr %d: operands %v -> %v", name, i, a.String(), b.String())
		}
	}
}

// operandEqual compares operands, normalizing sign-extension artifacts
// in immediates (a word immediate -1 encodes as 0xFFFF).
func operandEqual(a, b Operand) bool {
	if a.Mode != b.Mode || a.Reg != b.Reg {
		return false
	}
	if a.Mode == ModeImm || a.Mode == ModeDisp {
		return uint16(a.Val) == uint16(b.Val) || a.Val == b.Val
	}
	return a.Val == b.Val
}

func TestRoundTripHandWritten(t *testing.T) {
	roundTrip(t, MustAssemble(`
		.equ BUF, $1000
start:	movea.l #BUF, a0
		moveq   #7, d1
loop:	move.w  (a0)+, d0
		mulu.w  d0, d0
		add.w   d0, 4(a0)
		lsr.w   #2, d0
		bne     skip
		addq.w  #1, d2
skip:	dbra    d1, loop
		jsr     sub
		bra     start
sub:	clr.w   d3
		not.w   d3
		neg.w   d3
		swap    d3
		ext.l   d3
		exg     d3, d4
		btst    #5, d3
		bset    d1, d4
		cmp.w   d3, d4
		cmpi.w  #9, d3
		suba.l  #2, a0
		tst.b   (a0)
		rts
	`), "handwritten")
}
