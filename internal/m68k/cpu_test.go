package m68k

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// run assembles src, loads it on a CPU with a 64 KiB memory, runs to
// halt, and returns the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	c := NewCPU(p, NewMemory(64*1024))
	c.FetchFromMem = true
	c.A[7] = 0x8000 // stack
	st := c.Run(1 << 20)
	if st != StatusHalted {
		t.Fatalf("status = %v (err=%v, pc=%d)", st, c.Err, c.PC)
	}
	return c
}

func TestArithmeticBasics(t *testing.T) {
	c := run(t, `
		moveq   #10, d0
		moveq   #3, d1
		add.w   d1, d0      ; d0 = 13
		sub.w   #1, d0      ; d0 = 12
		move.w  d0, d2
		mulu.w  d2, d2      ; d2 = 144
		divu.w  #12, d2     ; d2 = 12 rem 0
		halt
	`)
	if got := c.D[0] & 0xFFFF; got != 12 {
		t.Errorf("d0 = %d, want 12", got)
	}
	if got := c.D[2] & 0xFFFF; got != 12 {
		t.Errorf("d2 quotient = %d, want 12", got)
	}
	if got := c.D[2] >> 16; got != 0 {
		t.Errorf("d2 remainder = %d, want 0", got)
	}
}

func TestMemoryAddressing(t *testing.T) {
	c := run(t, `
		.equ BUF, $1000
		movea.l #BUF, a0
		move.w  #111, (a0)+
		move.w  #222, (a0)+
		move.w  #333, (a0)
		movea.l #BUF, a1
		move.w  (a1)+, d0    ; 111
		move.w  (a1)+, d1    ; 222
		move.w  4(a1), d3    ; reads BUF+8 = 0
		move.w  -4(a1), d4   ; reads BUF+0 = 111
		move.w  -(a1), d2    ; back to BUF+2 -> 222
		halt
	`)
	if c.D[0]&0xFFFF != 111 || c.D[1]&0xFFFF != 222 || c.D[2]&0xFFFF != 222 {
		t.Errorf("d0,d1,d2 = %d,%d,%d", c.D[0]&0xFFFF, c.D[1]&0xFFFF, c.D[2]&0xFFFF)
	}
	if c.D[4]&0xFFFF != 111 {
		t.Errorf("d4 = %d, want 111", c.D[4]&0xFFFF)
	}
	v, _ := c.Mem.Read(0x1004, Word)
	if v != 333 {
		t.Errorf("mem[0x1004] = %d, want 333", v)
	}
	if c.A[1] != 0x1002 {
		t.Errorf("a1 = %#x, want 0x1002", c.A[1])
	}
}

func TestRMWToMemory(t *testing.T) {
	c := run(t, `
		.equ X, $2000
		move.w  #5, X
		moveq   #7, d0
		add.w   d0, X        ; X = 12
		sub.w   #2, X        ; X = 10  (subi form)
		halt
	`)
	v, _ := c.Mem.Read(0x2000, Word)
	if v != 10 {
		t.Errorf("X = %d, want 10", v)
	}
}

func TestLoopsAndBranches(t *testing.T) {
	// Sum 1..10 with dbra.
	c := run(t, `
		moveq   #0, d0       ; sum
		moveq   #10, d1      ; i
loop:	add.w   d1, d0
		subq.w  #1, d1
		bne     loop
		halt
	`)
	if got := c.D[0] & 0xFFFF; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}

	c = run(t, `
		moveq   #0, d0
		moveq   #4, d1       ; dbra runs body 5 times (4..0)
loop:	addq.w  #1, d0
		dbra    d1, loop
		halt
	`)
	if got := c.D[0] & 0xFFFF; got != 5 {
		t.Errorf("dbra iterations = %d, want 5", got)
	}
}

func TestConditionalBranches(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint32
	}{
		{"beq-taken", "moveq #0, d1\n tst.w d1\n beq yes\n moveq #0, d0\n bra end\nyes: moveq #1, d0\nend: halt", 1},
		{"bne-not", "moveq #0, d1\n tst.w d1\n bne yes\n moveq #2, d0\n bra end\nyes: moveq #1, d0\nend: halt", 2},
		{"blt-signed", "moveq #-5, d1\n cmp.w #3, d1\n blt yes\n moveq #0, d0\n bra end\nyes: moveq #1, d0\nend: halt", 1},
		{"bhi-unsigned", "move.w #$FFF0, d1\n cmp.w #3, d1\n bhi yes\n moveq #0, d0\n bra end\nyes: moveq #1, d0\nend: halt", 1},
		{"bge-equal", "moveq #3, d1\n cmp.w #3, d1\n bge yes\n moveq #0, d0\n bra end\nyes: moveq #1, d0\nend: halt", 1},
	}
	for _, tc := range cases {
		c := run(t, tc.src)
		if got := c.D[0] & 0xFF; got != tc.want {
			t.Errorf("%s: d0 = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestShiftsAndLogic(t *testing.T) {
	c := run(t, `
		move.w  #$00F0, d0
		lsl.w   #4, d0       ; $0F00
		move.w  #$8001, d1
		lsr.w   #1, d1       ; $4000
		move.w  #$8000, d2
		asr.w   #2, d2       ; $E000 (sign fill)
		move.w  #$F00F, d3
		and.w   #$0FF0, d3   ; $0000
		move.w  #$0F00, d4
		or.w    #$00F0, d4   ; $0FF0
		move.w  #$FFFF, d5
		eor.w   #$F0F0, d5   ; $0F0F
		move.w  #$1234, d6
		rol.w   #4, d6       ; $2341
		not.w   d6           ; $DCBE
		halt
	`)
	want := map[int]uint32{0: 0x0F00, 1: 0x4000, 2: 0xE000, 3: 0, 4: 0x0FF0, 5: 0x0F0F, 6: 0xDCBE}
	for r, w := range want {
		if got := c.D[r] & 0xFFFF; got != w {
			t.Errorf("d%d = $%04X, want $%04X", r, got, w)
		}
	}
}

func TestSwapExtExg(t *testing.T) {
	c := run(t, `
		move.l  #$12345678, d0
		swap    d0           ; $56781234
		move.w  #$0080, d1
		ext.w   d1           ; $FF80
		move.w  #$8000, d2
		ext.l   d2           ; $FFFF8000
		moveq   #1, d3
		moveq   #2, d4
		exg     d3, d4
		halt
	`)
	if c.D[0] != 0x56781234 {
		t.Errorf("swap: d0 = $%08X", c.D[0])
	}
	if c.D[1]&0xFFFF != 0xFF80 {
		t.Errorf("ext.w: d1 = $%04X", c.D[1]&0xFFFF)
	}
	if c.D[2] != 0xFFFF8000 {
		t.Errorf("ext.l: d2 = $%08X", c.D[2])
	}
	if c.D[3] != 2 || c.D[4] != 1 {
		t.Errorf("exg: d3=%d d4=%d", c.D[3], c.D[4])
	}
}

func TestSubroutines(t *testing.T) {
	c := run(t, `
		moveq   #5, d0
		jsr     double
		jsr     double
		halt
double:	add.w   d0, d0
		rts
	`)
	if got := c.D[0] & 0xFFFF; got != 20 {
		t.Errorf("d0 = %d, want 20", got)
	}
}

func TestAddressRegisterOps(t *testing.T) {
	c := run(t, `
		movea.l #$1000, a0
		adda.l  #$20, a0
		suba.l  #$10, a0
		addq.l  #2, a0
		movea.w #$FFFE, a1   ; sign-extends to $FFFFFFFE
		halt
	`)
	if c.A[0] != 0x1012 {
		t.Errorf("a0 = $%X, want $1012", c.A[0])
	}
	if c.A[1] != 0xFFFFFFFE {
		t.Errorf("a1 = $%X, want $FFFFFFFE", c.A[1])
	}
}

func TestByteOps(t *testing.T) {
	c := run(t, `
		.equ B, $3000
		move.b  #$AB, B
		move.b  B, d0
		move.w  #$1234, d1
		move.b  d1, B+1
		move.w  B, d2        ; $AB34
		halt
	`)
	if c.D[0]&0xFF != 0xAB {
		t.Errorf("d0 = $%X", c.D[0]&0xFF)
	}
	if c.D[2]&0xFFFF != 0xAB34 {
		t.Errorf("d2 = $%04X, want $AB34", c.D[2]&0xFFFF)
	}
}

func TestDivuOverflowAndDivZero(t *testing.T) {
	c := run(t, `
		move.l  #$00200000, d0
		divu.w  #2, d0       ; quotient $100000 > $FFFF: overflow, d0 unchanged
		halt
	`)
	if c.D[0] != 0x00200000 {
		t.Errorf("d0 = $%X, want unchanged on overflow", c.D[0])
	}
	if !c.V {
		t.Error("V flag not set on DIVU overflow")
	}

	p := MustAssemble("moveq #0, d1\n divu.w d1, d0\n halt")
	cpu := NewCPU(p, NewMemory(4096))
	if st := cpu.Run(100); st != StatusError {
		t.Fatalf("status = %v, want error on divide by zero", st)
	}
}

func TestAddressErrorOnOddWordAccess(t *testing.T) {
	p := MustAssemble("move.w $1001, d0\n halt")
	c := NewCPU(p, NewMemory(4096))
	if st := c.Run(10); st != StatusError {
		t.Fatalf("status = %v, want error", st)
	}
	if _, ok := c.Err.(*AddressError); !ok {
		// errf wraps; just check text
		if c.Err == nil || !contains(c.Err.Error(), "address error") {
			t.Errorf("err = %v, want address error", c.Err)
		}
	}
}

func TestBoundsError(t *testing.T) {
	p := MustAssemble("move.w $F000, d0\n halt") // beyond the 4 KiB memory
	c := NewCPU(p, NewMemory(4096))
	if st := c.Run(10); st != StatusError {
		t.Fatalf("status = %v, want error", st)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

// Property: MULU computes the exact 32-bit product of 16-bit operands,
// and its cycle count follows 38+2*ones exactly.
func TestMuluProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		p := MustAssemble(`
			mulu.w  d1, d0
			halt
		`)
		c := NewCPU(p, NewMemory(1024))
		c.D[0] = uint32(a)
		c.D[1] = uint32(b)
		before := c.Clock
		if st := c.Run(10); st != StatusHalted {
			return false
		}
		if c.D[0] != uint32(a)*uint32(b) {
			return false
		}
		// First instruction time: MULU table time only (register
		// source, no fetch penalty configured).
		muluTime := c.Clock - before - 4 // minus HALT
		return muluTime == MuluCycles(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ADD.W sets Z and N consistently with the 16-bit result.
func TestAddFlagsProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		p := MustAssemble("add.w d1, d0\n halt")
		c := NewCPU(p, NewMemory(1024))
		c.D[0] = uint32(a)
		c.D[1] = uint32(b)
		if st := c.Run(10); st != StatusHalted {
			return false
		}
		r := uint16(a + b)
		if (r == 0) != c.Z {
			return false
		}
		if (r&0x8000 != 0) != c.N {
			return false
		}
		carry := uint32(a)+uint32(b) > 0xFFFF
		return carry == c.C && c.C == c.X
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CMP leaves both operands unchanged and orders unsigned
// values via the carry flag.
func TestCmpProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		p := MustAssemble("cmp.w d1, d0\n halt")
		c := NewCPU(p, NewMemory(1024))
		c.D[0] = uint32(a)
		c.D[1] = uint32(b)
		if st := c.Run(10); st != StatusHalted {
			return false
		}
		if c.D[0] != uint32(a) || c.D[1] != uint32(b) {
			return false
		}
		return c.C == (b > a) && c.Z == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMuluCyclesTable(t *testing.T) {
	cases := []struct {
		src  uint16
		want int64
	}{
		{0x0000, 38},
		{0xFFFF, 70}, // worst case in the 68000 manual
		{0x0001, 40},
		{0x8000, 40},
		{0x00FF, 54},
	}
	for _, tc := range cases {
		if got := MuluCycles(tc.src); got != tc.want {
			t.Errorf("MuluCycles(%#x) = %d, want %d", tc.src, got, tc.want)
		}
	}
	// Exhaustive consistency with the definition.
	for v := 0; v < 0x10000; v++ {
		if MuluCycles(uint16(v)) != 38+2*int64(bits.OnesCount16(uint16(v))) {
			t.Fatalf("MuluCycles inconsistent at %#x", v)
		}
	}
}

func TestTimingFetchWaitStates(t *testing.T) {
	src := `
		move.w  d0, d1
		move.w  d0, d1
		move.w  d0, d1
		move.w  d0, d1
		halt
	`
	// No wait states (SIMD-queue-like fetch).
	p := MustAssemble(src)
	fast := NewCPU(p, NewMemory(1024))
	fast.FetchFromMem = true // memory has zero wait states anyway
	fast.Run(100)

	// One wait state per access (PE DRAM fetch).
	slow := NewCPU(MustAssemble(src), NewMemory(1024))
	slow.Mem.WaitStates = 1
	slow.FetchFromMem = true
	slow.Run(100)

	if slow.Clock <= fast.Clock {
		t.Errorf("DRAM fetch (%d cycles) not slower than 0-wait fetch (%d)", slow.Clock, fast.Clock)
	}
	// Each of the 5 single-word instructions costs exactly 1 extra cycle.
	if slow.Clock-fast.Clock != 5 {
		t.Errorf("wait-state delta = %d, want 5", slow.Clock-fast.Clock)
	}
}

func TestRefreshInterference(t *testing.T) {
	src := "loop: add.w d0, d1\n dbra d2, loop\n halt"
	mk := func(period, stall int64) int64 {
		c := NewCPU(MustAssemble(src), NewMemory(1024))
		c.Mem.RefreshPeriod = period
		c.Mem.RefreshStall = stall
		c.FetchFromMem = true
		c.D[2] = 999
		if st := c.Run(1 << 16); st != StatusHalted {
			t.Fatalf("status %v", st)
		}
		return c.Clock
	}
	base := mk(0, 0)
	withRefresh := mk(128, 6)
	if withRefresh <= base {
		t.Errorf("refresh did not slow execution: %d vs %d", withRefresh, base)
	}
	overhead := float64(withRefresh-base) / float64(base)
	if overhead > 0.10 {
		t.Errorf("refresh overhead %.1f%% implausibly high", overhead*100)
	}
}

func TestRegionAccounting(t *testing.T) {
	c := run(t, `
		.region mult
		mulu.w  d1, d0
		.region comm
		move.w  d2, d3
		.region other
		halt
	`)
	if c.Regions[RegionMult] == 0 || c.Regions[RegionComm] == 0 {
		t.Errorf("regions not accounted: %v", c.Regions)
	}
	total := int64(0)
	for _, v := range c.Regions {
		total += v
	}
	if total != c.Clock {
		t.Errorf("region sum %d != clock %d", total, c.Clock)
	}
}

func TestCPUReset(t *testing.T) {
	c := run(t, "moveq #9, d0\n halt")
	c.Reset()
	if c.D[0] != 0 || c.Clock != 0 || c.Halted || c.PC != 0 || c.InstrCount != 0 {
		t.Errorf("Reset left state: %+v", c)
	}
	if st := c.Run(100); st != StatusHalted {
		t.Errorf("re-run after Reset: %v", st)
	}
}

func TestStackAndMemoryHelpers(t *testing.T) {
	m := NewMemory(1024)
	if err := m.WriteWords(0x100, []uint16{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ws, err := m.ReadWords(0x100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ws[0] != 1 || ws[1] != 2 || ws[2] != 3 {
		t.Errorf("ReadWords = %v", ws)
	}
	// Big-endian layout.
	b, _ := m.Read(0x100, Byte)
	if b != 0 {
		t.Errorf("high byte = %d, want 0", b)
	}
	b, _ = m.Read(0x101, Byte)
	if b != 1 {
		t.Errorf("low byte = %d, want 1", b)
	}
}

func TestRunStepBudget(t *testing.T) {
	// An infinite loop exhausts the step budget and returns StatusOK.
	p := MustAssemble("loop: bra loop")
	c := NewCPU(p, NewMemory(256))
	if st := c.Run(100); st != StatusOK {
		t.Errorf("status = %v, want OK (budget exhausted)", st)
	}
	if c.InstrCount != 100 {
		t.Errorf("InstrCount = %d, want 100", c.InstrCount)
	}
}
