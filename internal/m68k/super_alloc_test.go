package m68k

import "testing"

// TestSuperPathZeroAllocs pins the superinstruction tier's
// steady-state guarantee: after the first run compiles the block
// cache, re-running the kernel performs zero heap allocations
// (`make bench-smoke` runs this as the CI allocation gate).
func TestSuperPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the non-race CI pass covers this")
	}
	prog := MustAssemble(benchKernel)
	mem := NewMemory(1 << 16)
	mem.WaitStates = 1
	mem.RefreshPeriod = 256
	mem.RefreshStall = 2
	c := NewCPU(prog, mem)
	c.FetchFromMem = true
	c.A[7] = 0x8000
	if st := c.Run(1 << 20); st != StatusHalted {
		t.Fatalf("warmup status %v (err=%v)", st, c.Err)
	}
	n := testing.AllocsPerRun(10, func() {
		c.Reset()
		c.Mem.Reset()
		c.A[7] = 0x8000
		if st := c.Run(1 << 20); st != StatusHalted {
			t.Errorf("status %v (err=%v)", st, c.Err)
		}
	})
	if n != 0 {
		t.Fatalf("superinstruction path allocates %.1f times per run, want 0", n)
	}
}
