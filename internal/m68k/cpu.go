package m68k

import "fmt"

// DeviceBus is the memory-mapped device window (addresses at or above
// DeviceBase). PASM maps the interconnection-network transfer
// registers and the SIMD instruction space here.
//
// A Load or Store may refuse to complete (ok=false), which makes the
// CPU return StatusBlocked with the instruction un-executed; the
// engine advances the CPU's clock and retries. A successful access
// returns any extra device cycles beyond the standard bus access
// already included in the instruction's base time.
type DeviceBus interface {
	Load(addr uint32, sz Size, clock int64) (val uint32, extra int64, ok bool)
	Store(addr uint32, sz Size, val uint32, clock int64) (extra int64, ok bool)
}

// Status is the result of executing one instruction.
type Status uint8

// CPU step results.
const (
	StatusOK       Status = iota
	StatusHalted          // HALT executed (or already halted)
	StatusBlocked         // device access refused; instruction not executed
	StatusBcast           // MC executed BCAST; see LastBcast
	StatusSetMask         // MC executed SETMASK; see LastMask
	StatusSIMDJump        // PE jumped into the SIMD instruction space (MIMD -> SIMD mode switch)
	StatusError           // program error; see Err
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusHalted:
		return "halted"
	case StatusBlocked:
		return "blocked"
	case StatusBcast:
		return "bcast"
	case StatusSetMask:
		return "setmask"
	case StatusSIMDJump:
		return "simdjump"
	default:
		return "error"
	}
}

// BlockInfo describes the device access a blocked CPU is waiting on.
type BlockInfo struct {
	Addr   uint32
	Size   Size
	IsLoad bool
}

// CPU is one MC68000 core: either a PASM PE processor or an MC
// processor. The zero value is not usable; construct with NewCPU.
type CPU struct {
	D [8]uint32 // data registers
	A [8]uint32 // address registers (A7 = stack pointer)
	// Condition codes.
	X, N, Z, V, C bool

	PC    int   // instruction index into Prog.Instrs
	Clock int64 // cycles elapsed

	Prog *Program
	Mem  *Memory
	Dev  DeviceBus

	// FetchFromMem charges instruction-word fetches to Mem (wait
	// states + refresh). True for MIMD/SISD execution from PE main
	// memory; false when instructions arrive from the Fetch Unit
	// queue (SIMD broadcast) whose static RAM has no extra wait.
	FetchFromMem bool

	// FixedMulCycles, when positive, replaces the data-dependent MULU
	// time (38 + 2*ones) with a constant — an ablation knob that
	// removes the paper's non-deterministic instruction times so their
	// effect can be isolated. Zero means faithful behaviour.
	FixedMulCycles int64

	// DisableExecTable forces the dynamic reference path: dispatch
	// function and static cycle cost are recomputed on every step
	// instead of read from the program's pre-resolved execution table.
	// A verification knob — the equivalence tests run both paths
	// against each other; production callers leave it false.
	DisableExecTable bool

	// DisableSuperinstructions forces Run (and the PASM lockstep
	// executor) off the superinstruction tier and back onto
	// per-Step exec-table dispatch. An A/B knob like
	// DisableExecTable; production callers leave it false.
	DisableSuperinstructions bool

	// MemWatch, when non-nil, observes every successful data access
	// to Mem (reads and writes; device-window accesses and
	// instruction fetches are excluded). The PASM segment-memoization
	// layer uses it to capture a segment's external reads and final
	// writes. nil costs one pointer test per access.
	MemWatch func(addr uint32, sz Size, val uint32, write bool)

	// Trace, when non-nil, is called after every committed instruction
	// with the instruction, the PC it executed at, the clock after it,
	// and its cycle cost. Used by the trace package; nil costs nothing.
	Trace func(in *Instr, pc int, clock, cycles int64)

	// Regions accumulates cycles per accounting region.
	Regions [NumRegions]int64
	// InstrCount counts executed instructions.
	InstrCount int64

	Halted    bool
	Err       error
	LastBlock BlockInfo
	// lastLoadWasDev guards against device-to-device moves, which
	// could not be retried safely after a blocked store (the device
	// read is consuming).
	lastLoadWasDev bool
	// LastBcast is the block range of the most recent BCAST.
	LastBcast BlockRange
	// LastMask is the value of the most recent SETMASK.
	LastMask uint32

	pend  [2]pendInc
	npend int

	// tab is the program's execution table, cached on first Step.
	tab []execEntry
	// sup is the program's superinstruction table, cached on first
	// runSuper/ExecSuperAt.
	sup []superOp
}

type pendInc struct {
	reg   uint8
	delta int32
}

// NewCPU returns a CPU executing prog against mem.
func NewCPU(prog *Program, mem *Memory) *CPU {
	return &CPU{Prog: prog, Mem: mem}
}

// Reset restores registers, flags, clock and counters; the program,
// memory and configuration are kept.
func (c *CPU) Reset() {
	c.D = [8]uint32{}
	c.A = [8]uint32{}
	c.X, c.N, c.Z, c.V, c.C = false, false, false, false, false
	c.PC = 0
	c.Clock = 0
	c.Regions = [NumRegions]int64{}
	c.InstrCount = 0
	c.Halted = false
	c.Err = nil
	c.npend = 0
}

// Step executes one instruction, fetching it at the current PC and
// charging DRAM fetch penalties if FetchFromMem is set. The hot path
// reads the instruction's pre-resolved dispatch function, static cycle
// cost, and fetch word count from the program's execution table; the
// inner loop is an index, a function call, and a cycle add.
func (c *CPU) Step() Status {
	if c.Halted {
		return StatusHalted
	}
	if c.Err != nil {
		return StatusError
	}
	if c.PC < 0 || c.PC >= len(c.Prog.Instrs) {
		c.Err = fmt.Errorf("m68k: PC %d outside program (%d instructions)", c.PC, len(c.Prog.Instrs))
		return StatusError
	}
	in := &c.Prog.Instrs[c.PC]
	if c.DisableExecTable {
		fetch := int64(0)
		if c.FetchFromMem {
			fetch = c.Mem.Penalty(c.Clock, int64(in.Words))
		}
		return c.exec(in, fetch)
	}
	if c.tab == nil {
		c.tab = c.Prog.table()
	}
	e := &c.tab[c.PC]
	fetch := int64(0)
	if c.FetchFromMem {
		fetch = c.Mem.Penalty(c.Clock, e.words)
	}
	c.lastLoadWasDev = false
	return e.fn(c, in, e.base+fetch, fetch, c.PC+1)
}

// ExecBroadcast executes a single broadcast instruction delivered by
// the Fetch Unit (no fetch wait states; the queue is static RAM). The
// caller owns lockstep bookkeeping. The instruction must be
// straight-line (no branches); the PASM SIMD executor validates this
// when blocks are registered.
func (c *CPU) ExecBroadcast(in *Instr) Status {
	if c.Halted {
		return StatusHalted
	}
	if c.Err != nil {
		return StatusError
	}
	return c.exec(in, 0)
}

// ExecBroadcastAt is ExecBroadcast through the execution-table fast
// path: idx is the instruction's index in the program, so its
// pre-resolved dispatch function and static cycle cost are used
// directly. The PASM lockstep executor calls this in its inner loop.
func (c *CPU) ExecBroadcastAt(idx int) Status {
	if !c.DisableExecTable && !c.DisableSuperinstructions {
		return c.ExecSuperAt(idx)
	}
	if c.Halted {
		return StatusHalted
	}
	if c.Err != nil {
		return StatusError
	}
	in := &c.Prog.Instrs[idx]
	if c.DisableExecTable {
		return c.exec(in, 0)
	}
	if c.tab == nil {
		c.tab = c.Prog.table()
	}
	e := &c.tab[idx]
	c.lastLoadWasDev = false
	return e.fn(c, in, e.base, 0, c.PC+1)
}

// Run executes up to maxSteps instructions, stopping early on any
// non-OK status. It returns the last status (StatusOK means the step
// budget was exhausted with the program still running). Unless a tier
// knob disables it, execution goes through the superinstruction
// engine; both paths are instruction-for-instruction equivalent.
func (c *CPU) Run(maxSteps int64) Status {
	if !c.DisableExecTable && !c.DisableSuperinstructions {
		return c.runSuper(maxSteps)
	}
	for i := int64(0); i < maxSteps; i++ {
		if st := c.Step(); st != StatusOK {
			return st
		}
	}
	return StatusOK
}

// errf records a program error.
func (c *CPU) errf(in *Instr, format string, args ...any) Status {
	c.Err = fmt.Errorf("m68k: line %d (%s): %s", in.Line, in.Op, fmt.Sprintf(format, args...))
	c.npend = 0
	return StatusError
}

// effective-address helpers -------------------------------------------

// curA returns An with pending post-inc/pre-dec adjustments applied.
func (c *CPU) curA(reg uint8) uint32 {
	v := c.A[reg]
	for i := 0; i < c.npend; i++ {
		if c.pend[i].reg == reg {
			v = uint32(int64(v) + int64(c.pend[i].delta))
		}
	}
	return v
}

func (c *CPU) addPend(reg uint8, delta int32) {
	if c.npend < len(c.pend) {
		c.pend[c.npend] = pendInc{reg, delta}
		c.npend++
	}
}

func (c *CPU) commitPend() {
	for i := 0; i < c.npend; i++ {
		p := c.pend[i]
		c.A[p.reg] = uint32(int64(c.A[p.reg]) + int64(p.delta))
	}
	c.npend = 0
}

// incBytes is the post-inc/pre-dec step: operand size, except byte
// accesses through A7 keep the stack word aligned.
func incBytes(reg uint8, sz Size) int32 {
	b := int32(sz.Bytes())
	if sz == Byte && reg == 7 {
		b = 2
	}
	return b
}

// ea resolves a memory operand to an address, registering pending
// register adjustments (committed only when the instruction succeeds).
func (c *CPU) ea(o Operand, sz Size) uint32 {
	switch o.Mode {
	case ModeIndirect:
		return c.curA(o.Reg)
	case ModePostInc:
		a := c.curA(o.Reg)
		c.addPend(o.Reg, incBytes(o.Reg, sz))
		return a
	case ModePreDec:
		c.addPend(o.Reg, -incBytes(o.Reg, sz))
		return c.curA(o.Reg)
	case ModeDisp:
		return uint32(int64(c.curA(o.Reg)) + int64(o.Val))
	case ModeAbs:
		return uint32(o.Val)
	}
	return 0
}

// operand access -------------------------------------------------------

// opRead reads an operand value (masked to size). blocked=true means a
// device refused; the caller must bail without side effects.
func (c *CPU) opRead(o Operand, sz Size, cycles *int64) (val uint32, blocked bool, err error) {
	switch o.Mode {
	case ModeDataReg:
		return mask(c.D[o.Reg], sz), false, nil
	case ModeAddrReg:
		return mask(c.A[o.Reg], sz), false, nil
	case ModeImm:
		return mask(uint32(o.Val), sz), false, nil
	case ModeNone:
		return 0, false, nil
	}
	addr := c.ea(o, sz)
	if addr >= DeviceBase {
		if c.Dev == nil {
			return 0, false, fmt.Errorf("device access at $%X with no device bus", addr)
		}
		v, extra, ok := c.Dev.Load(addr, sz, c.Clock)
		if !ok {
			c.LastBlock = BlockInfo{Addr: addr, Size: sz, IsLoad: true}
			return 0, true, nil
		}
		c.lastLoadWasDev = true
		*cycles += extra
		return mask(v, sz), false, nil
	}
	v, err := c.Mem.Read(addr, sz)
	if err != nil {
		return 0, false, err
	}
	acc := int64(1)
	if sz == Long {
		acc = 2
	}
	*cycles += c.Mem.Penalty(c.Clock, acc)
	if c.MemWatch != nil {
		c.MemWatch(addr, sz, v, false)
	}
	return v, false, nil
}

// opWrite writes a value to an operand destination.
func (c *CPU) opWrite(o Operand, sz Size, val uint32, cycles *int64) (blocked bool, err error) {
	switch o.Mode {
	case ModeDataReg:
		c.D[o.Reg] = merge(c.D[o.Reg], val, sz)
		return false, nil
	case ModeAddrReg:
		c.A[o.Reg] = signExtTo32(val, sz)
		return false, nil
	}
	addr := c.ea(o, sz)
	if addr >= DeviceBase {
		if c.Dev == nil {
			return false, fmt.Errorf("device access at $%X with no device bus", addr)
		}
		if c.lastLoadWasDev {
			return false, fmt.Errorf("device-to-device move at $%X cannot be retried safely", addr)
		}
		extra, ok := c.Dev.Store(addr, sz, mask(val, sz), c.Clock)
		if !ok {
			c.LastBlock = BlockInfo{Addr: addr, Size: sz, IsLoad: false}
			return true, nil
		}
		*cycles += extra
		return false, nil
	}
	if err := c.Mem.Write(addr, sz, mask(val, sz)); err != nil {
		return false, err
	}
	acc := int64(1)
	if sz == Long {
		acc = 2
	}
	*cycles += c.Mem.Penalty(c.Clock, acc)
	if c.MemWatch != nil {
		c.MemWatch(addr, sz, mask(val, sz), true)
	}
	return false, nil
}

// value helpers --------------------------------------------------------

func mask(v uint32, sz Size) uint32 {
	switch sz {
	case Byte:
		return v & 0xFF
	case Word:
		return v & 0xFFFF
	default:
		return v
	}
}

// merge stores a sized value into the low part of a register.
func merge(old, v uint32, sz Size) uint32 {
	switch sz {
	case Byte:
		return old&^uint32(0xFF) | v&0xFF
	case Word:
		return old&^uint32(0xFFFF) | v&0xFFFF
	default:
		return v
	}
}

func signExtTo32(v uint32, sz Size) uint32 {
	switch sz {
	case Byte:
		return uint32(int32(int8(v)))
	case Word:
		return uint32(int32(int16(v)))
	default:
		return v
	}
}

func signBit(sz Size) uint32 {
	switch sz {
	case Byte:
		return 0x80
	case Word:
		return 0x8000
	default:
		return 0x80000000
	}
}

// flag computation (staged: callers apply the returned flags only when
// the instruction is certain to complete).

type flags struct {
	n, z, v, cc bool
	setX        bool
	x           bool
}

func nzFlags(v uint32, sz Size) flags {
	return flags{n: v&signBit(sz) != 0, z: mask(v, sz) == 0}
}

func addFlags(a, b, r uint32, sz Size) flags {
	sb := signBit(sz)
	f := nzFlags(r, sz)
	f.v = (a&sb == b&sb) && (r&sb != a&sb)
	f.cc = uint64(mask(a, sz))+uint64(mask(b, sz)) > uint64(mask(^uint32(0), sz))
	f.setX, f.x = true, f.cc
	return f
}

func subFlags(dst, src, r uint32, sz Size) flags {
	sb := signBit(sz)
	f := nzFlags(r, sz)
	f.v = (dst&sb != src&sb) && (r&sb == src&sb)
	f.cc = mask(src, sz) > mask(dst, sz)
	f.setX, f.x = true, f.cc
	return f
}

func (c *CPU) applyFlags(f flags) {
	c.N, c.Z, c.V, c.C = f.n, f.z, f.v, f.cc
	if f.setX {
		c.X = f.x
	}
}

// condTrue evaluates a branch condition against the flags.
func (c *CPU) condTrue(cc Cond) bool {
	switch cc {
	case CondT:
		return true
	case CondF:
		return false
	case CondEQ:
		return c.Z
	case CondNE:
		return !c.Z
	case CondCS:
		return c.C
	case CondCC:
		return !c.C
	case CondLT:
		return c.N != c.V
	case CondGE:
		return c.N == c.V
	case CondLE:
		return c.Z || c.N != c.V
	case CondGT:
		return !c.Z && c.N == c.V
	case CondHI:
		return !c.C && !c.Z
	case CondLS:
		return c.C || c.Z
	case CondMI:
		return c.N
	case CondPL:
		return !c.N
	case CondVS:
		return c.V
	case CondVC:
		return !c.V
	}
	return false
}

// commit finalizes a successful instruction.
func (c *CPU) commit(in *Instr, cycles int64, nextPC int) Status {
	c.commitPend()
	c.Clock += cycles
	c.Regions[in.Region] += cycles
	c.InstrCount++
	pc := c.PC
	c.PC = nextPC
	if c.Trace != nil {
		c.Trace(in, pc, c.Clock, cycles)
	}
	return StatusOK
}
