package m68k

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestAllBranchConditions drives every condition code through both
// outcomes.
func TestAllBranchConditions(t *testing.T) {
	type tc struct {
		setup string // leaves flags in a known state
		br    string
		taken bool
	}
	cases := []tc{
		{"move.w #1, d1\n tst.w d1", "beq", false},
		{"move.w #0, d1\n tst.w d1", "beq", true},
		{"move.w #1, d1\n tst.w d1", "bne", true},
		{"move.w #0, d1\n tst.w d1", "bne", false},
		{"move.w #1, d1\n cmp.w #2, d1", "bcs", true},     // 1 < 2 unsigned
		{"move.w #3, d1\n cmp.w #2, d1", "bcc", true},     // 3 >= 2 unsigned
		{"move.w #1, d1\n cmp.w #2, d1", "blt", true},     // signed
		{"move.w #3, d1\n cmp.w #2, d1", "bge", true},     //
		{"move.w #2, d1\n cmp.w #2, d1", "ble", true},     // equal
		{"move.w #3, d1\n cmp.w #2, d1", "bgt", true},     //
		{"move.w #3, d1\n cmp.w #2, d1", "bhi", true},     //
		{"move.w #2, d1\n cmp.w #2, d1", "bls", true},     // equal
		{"move.w #-1, d1\n tst.w d1", "bmi", true},        //
		{"move.w #1, d1\n tst.w d1", "bpl", true},         //
		{"move.w #$7FFF, d1\n add.w #1, d1", "bvs", true}, // signed overflow
		{"move.w #1, d1\n add.w #1, d1", "bvc", true},     //
		{"move.w #1, d1\n tst.w d1", "bt", true},          // always
	}
	for _, c := range cases {
		src := c.setup + "\n\t" + c.br + " yes\n\tmoveq #0, d0\n\tbra end\nyes:\tmoveq #1, d0\nend:\thalt"
		cpu := run(t, src)
		got := cpu.D[0]&0xFF == 1
		if got != c.taken {
			t.Errorf("%s after %q: taken=%v, want %v", c.br, c.setup, got, c.taken)
		}
	}
}

// TestAlu1Memory covers NOT/NEG with memory destinations.
func TestAlu1Memory(t *testing.T) {
	c := run(t, `
		.equ X, $2000
		move.w  #$00FF, X
		not.w   X          ; $FF00
		move.w  #5, X+2
		neg.w   X+2        ; $FFFB
		halt
	`)
	v, _ := c.Mem.Read(0x2000, Word)
	if v != 0xFF00 {
		t.Errorf("not.w mem = $%04X", v)
	}
	v, _ = c.Mem.Read(0x2002, Word)
	if v != 0xFFFB {
		t.Errorf("neg.w mem = $%04X", v)
	}
}

// TestStatusStrings covers the Status and enum String methods.
func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOK: "ok", StatusHalted: "halted", StatusBlocked: "blocked",
		StatusBcast: "bcast", StatusSetMask: "setmask", StatusError: "error",
	} {
		if st.String() != want {
			t.Errorf("Status(%d) = %q, want %q", st, st.String(), want)
		}
	}
	if Op(200).String() == "" || Cond(99).String() == "" || RegionID(77).String() == "" {
		t.Error("out-of-range enum Strings empty")
	}
	if (BlockRange{Start: 3, End: 9}).Len() != 6 {
		t.Error("BlockRange.Len wrong")
	}
}

// TestMemoryHelpers covers Size and Reset.
func TestMemoryHelpers(t *testing.T) {
	m := NewMemory(4096)
	if m.Size() != 4096 {
		t.Errorf("Size = %d", m.Size())
	}
	m.Write(0x10, Word, 0xBEEF)
	m.WaitStates = 1
	m.RefreshPeriod = 100
	m.RefreshStall = 2
	m.Penalty(500, 1)
	m.Reset()
	if v, _ := m.Read(0x10, Word); v != 0 {
		t.Error("Reset did not clear contents")
	}
	if m.WaitStates != 1 {
		t.Error("Reset cleared configuration")
	}
	// Refresh phase restarts.
	if p := m.Penalty(0, 1); p != 1+2 {
		t.Errorf("post-Reset penalty = %d, want wait+stall", p)
	}
}

// TestExecBroadcastDirect drives the SIMD-path entry point without the
// pasm executor.
func TestExecBroadcastDirect(t *testing.T) {
	p := MustAssemble(`
		add.w   d1, d0
		mulu.w  d1, d0
	`)
	c := NewCPU(p, NewMemory(1024))
	c.D[0], c.D[1] = 3, 5
	if st := c.ExecBroadcast(&p.Instrs[0]); st != StatusOK {
		t.Fatalf("status %v", st)
	}
	if c.D[0] != 8 {
		t.Errorf("d0 = %d", c.D[0])
	}
	if st := c.ExecBroadcast(&p.Instrs[1]); st != StatusOK {
		t.Fatalf("status %v", st)
	}
	if c.D[0] != 40 {
		t.Errorf("d0 = %d", c.D[0])
	}
	// Halted/errored CPUs refuse.
	c.Halted = true
	if st := c.ExecBroadcast(&p.Instrs[0]); st != StatusHalted {
		t.Errorf("halted broadcast status %v", st)
	}
}

// TestJmpIndirectTiming covers jmpCycles' non-label paths via timing
// only (runtime rejects non-label jumps, so check baseCycles directly).
func TestJmpIndirectTiming(t *testing.T) {
	for _, tc := range []struct {
		o    Operand
		want int64
	}{
		{Operand{Mode: ModeIndirect, Reg: 0}, 8},
		{Operand{Mode: ModeDisp, Reg: 0, Val: 4}, 10},
		{Operand{Mode: ModeAbs, Val: 0x100}, 10},
		{Operand{Mode: ModeAbs, Val: 0x100000}, 12},
		{Operand{Mode: ModeLabel, Val: 3}, 10},
	} {
		in := Instr{Op: JMP, Dst: tc.o}
		if got := baseCycles(&in); got != tc.want {
			t.Errorf("jmp %v: %d cycles, want %d", tc.o, got, tc.want)
		}
	}
}

// TestDisassembleAllOps renders every implemented op at least once.
func TestDisassembleAllOps(t *testing.T) {
	src := `
	nop
	move.w  d0, d1
	movea.l #4096, a0
	moveq   #3, d2
	lea     8(a0), a1
	clr.b   (a0)
	add.l   d0, d1
	adda.w  d0, a1
	addq.b  #1, d1
	addi.w  #2, d1
	sub.w   d1, d2
	suba.l  d0, a1
	subq.w  #1, d2
	subi.w  #1, d2
	mulu.w  d1, d2
	muls.w  d1, d2
	divu.w  d1, d2
	and.w   d1, d2
	andi.w  #3, d2
	or.w    d1, d2
	ori.w   #3, d2
	eor.w   d1, d2
	eori.w  #3, d2
	not.w   d2
	neg.w   d2
	lsl.w   #1, d2
	lsr.w   d1, d2
	asl.w   #1, d2
	asr.w   #1, d2
	rol.w   #1, d2
	ror.w   #1, d2
	swap    d2
	exg     d2, a1
	ext.w   d2
	tst.l   d2
	cmp.w   d1, d2
	cmpa.l  a0, a1
	cmpi.w  #7, d2
	btst    #1, d2
	bset    #1, d2
	bclr    #1, d2
	bchg    #1, d2
	bne     x
x:	dbra    d2, x
	jmp     y
y:	jsr     z
z:	rts
	setmask #3
	halt
	`
	p := MustAssemble(src)
	dis := p.Disassemble()
	for _, op := range []string{"nop", "movea.l", "moveq", "lea", "clr.b", "adda.w",
		"addq.b", "mulu.w", "divu.w", "eori.w", "swap", "exg", "ext.w",
		"cmpa.l", "btst", "bchg", "setmask", "jsr", "rts"} {
		if !strings.Contains(dis, op) {
			t.Errorf("disassembly missing %q", op)
		}
	}
}

// Property: the decoder never panics on arbitrary word streams — it
// either decodes or returns an error.
func TestDecodeFuzzNeverPanics(t *testing.T) {
	f := func(raw []uint16) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked on %04X: %v", raw, r)
			}
		}()
		p, err := Decode(raw)
		if err != nil {
			return true
		}
		// A successful decode must re-encode to the same length.
		if _, err := p.Encode(); err != nil {
			// Some decodable streams are not re-encodable (e.g. a
			// branch landing mid-instruction was caught earlier, so
			// this should not happen).
			t.Logf("decoded but not re-encodable: %04X: %v", raw, err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: decoding any ENCODED program then re-encoding is stable
// (fixed point) for random small arithmetic programs.
func TestEncodeFixpointProperty(t *testing.T) {
	ops := []string{
		"add.w d1, d2", "sub.w d2, d3", "mulu.w d1, d4", "lsr.w #3, d4",
		"move.w d4, $2000", "clr.w d5", "not.w d5", "swap d5",
		"addq.w #5, d6", "cmpi.w #9, d6", "btst #2, d6",
	}
	f := func(seed uint32) bool {
		g := seed
		src := ""
		for i := 0; i < 12; i++ {
			g = g*1664525 + 1013904223
			src += ops[g%uint32(len(ops))] + "\n"
		}
		src += "halt\n"
		p, err := Assemble(src)
		if err != nil {
			return false
		}
		w1, err := p.Encode()
		if err != nil {
			return false
		}
		q, err := Decode(w1)
		if err != nil {
			return false
		}
		w2, err := q.Encode()
		if err != nil {
			return false
		}
		if len(w1) != len(w2) {
			return false
		}
		for i := range w1 {
			if w1[i] != w2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
