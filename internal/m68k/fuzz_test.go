package m68k

import "testing"

// FuzzAssembler feeds arbitrary source to the assembler: it may reject
// anything, but it must never panic — slices the parser indexes,
// expression evaluation, branch relaxation, and the encoder all see
// adversarial input here. On success, the encoder must also survive
// the assembled program (it runs on every cached exec-table build).
//
// Run `go test -fuzz=FuzzAssembler -fuzztime=30s ./internal/m68k`.
func FuzzAssembler(f *testing.F) {
	seeds := []string{
		"",
		"halt",
		"; nothing but a comment\n* and another",
		"\t.equ COUNT, 4\nstart:\tmoveq #COUNT, d0\nloop:\tadd.w d0, d1\n\tdbra d0, loop\n\thalt\n",
		"move.w (a0)+, d0\nmulu.w d2, d0\nadd.w d0, (a1)+\n",
		"move.w 16(a2), d0\nmove.w -4(a2), d0\nmove.w #-1, d0\nmove.w $1000, d0\nmove.w (sp)+, d0\n",
		".region mult\n.block elem\nnop\n.endblock\nbcast elem\n",
		".equ A, 2\n.equ B, A*3+(4/2)\nmove.w #-B, d0\n",
		"bra start\nstart: nop\nbeq start\nbne end\nend: halt\n",
		"label-with-dash: nop",
		"move.w d0",              // missing operand
		"move.w d0, d1, d2",      // extra operand
		"mulu.w #65536, d0",      // immediate out of range
		".equ X\nmove.w #X, d0",  // malformed directive
		".block a\n.block b\n",   // unclosed nested blocks
		"dbra d0, nowhere\n",     // undefined label
		"bcast nosuchblock\n",    // undefined block
		"move.w 32768(a0), d0\n", // displacement overflow
		"start: bra start\n",     // zero-displacement branch (relaxation)
		".equ Z, 1/0\nmove.w #Z, d0\n", // division by zero in expression
		"\x00\x01\x02",
		"move.w (a9), d0\n", // bad register number
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are the failure mode
		}
		if p == nil {
			t.Fatal("Assemble returned nil program and nil error")
		}
		// Anything that assembles must survive image encoding and the
		// exec-table build (the serving path's pre-resolution step)
		// without panicking either; encode errors are fine.
		p.Encode()
		p.table()
	})
}
