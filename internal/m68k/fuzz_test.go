package m68k

import "testing"

// FuzzAssembler feeds arbitrary source to the assembler: it may reject
// anything, but it must never panic — slices the parser indexes,
// expression evaluation, branch relaxation, and the encoder all see
// adversarial input here. On success, the encoder must also survive
// the assembled program (it runs on every cached exec-table build).
//
// Run `go test -fuzz=FuzzAssembler -fuzztime=30s ./internal/m68k`.
func FuzzAssembler(f *testing.F) {
	seeds := []string{
		"",
		"halt",
		"; nothing but a comment\n* and another",
		"\t.equ COUNT, 4\nstart:\tmoveq #COUNT, d0\nloop:\tadd.w d0, d1\n\tdbra d0, loop\n\thalt\n",
		"move.w (a0)+, d0\nmulu.w d2, d0\nadd.w d0, (a1)+\n",
		"move.w 16(a2), d0\nmove.w -4(a2), d0\nmove.w #-1, d0\nmove.w $1000, d0\nmove.w (sp)+, d0\n",
		".region mult\n.block elem\nnop\n.endblock\nbcast elem\n",
		".equ A, 2\n.equ B, A*3+(4/2)\nmove.w #-B, d0\n",
		"bra start\nstart: nop\nbeq start\nbne end\nend: halt\n",
		"label-with-dash: nop",
		"move.w d0",                    // missing operand
		"move.w d0, d1, d2",            // extra operand
		"mulu.w #65536, d0",            // immediate out of range
		".equ X\nmove.w #X, d0",        // malformed directive
		".block a\n.block b\n",         // unclosed nested blocks
		"dbra d0, nowhere\n",           // undefined label
		"bcast nosuchblock\n",          // undefined block
		"move.w 32768(a0), d0\n",       // displacement overflow
		"start: bra start\n",           // zero-displacement branch (relaxation)
		".equ Z, 1/0\nmove.w #Z, d0\n", // division by zero in expression
		"\x00\x01\x02",
		"move.w (a9), d0\n", // bad register number
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejection is fine; panics are the failure mode
		}
		if p == nil {
			t.Fatal("Assemble returned nil program and nil error")
		}
		// Anything that assembles must survive image encoding and the
		// exec-table build (the serving path's pre-resolution step)
		// without panicking either; encode errors are fine.
		p.Encode()
		p.table()
	})
}

// FuzzBlockScanner feeds arbitrary assembled programs to the
// basic-block scanner and checks its two structural invariants on
// whatever the assembler accepts:
//
//   - the blocks partition the program: they tile [0, len(Instrs))
//     exactly, in order, with no gaps or overlaps, and every
//     instruction's BlockIndexOf agrees with the tiling;
//   - pre-summed cycle costs are exact: each block's FixedCycles
//     equals the per-instruction sum of static base cycles, and each
//     fused MULU run's members cover exactly the run they claim.
//
// Run `go test -fuzz=FuzzBlockScanner -fuzztime=30s ./internal/m68k`.
func FuzzBlockScanner(f *testing.F) {
	seeds := []string{
		"halt",
		"nop\nnop\nhalt\n",
		// Straight-line kernel: one block, fusable MULU run.
		"move.w (a0)+, d0\nmulu.w d2, d0\nmulu.w d2, d1\nmulu.w d2, d1\nadd.w d0, (a1)+\nhalt\n",
		// Self-loop block (DBcc back to its own start).
		"\tmoveq #7, d6\nloop:\tmove.w (a0)+, d0\n\tmulu.w d2, d0\n\tadd.w d0, (a1)+\n\tdbra d6, loop\n\thalt\n",
		// Branch targets and fallthroughs carve leaders.
		"start:\tadd.w d0, d1\n\tbeq skip\n\tsub.w d1, d0\nskip:\tbne start\n\thalt\n",
		// Declared SIMD blocks bound broadcast regions.
		".region mult\n.block elem\nadd.w d0, d1\nnop\n.endblock\nbcast elem\nhalt\n",
		// Calls split blocks; RTS terminates one.
		"\tjsr sub\n\thalt\nsub:\tmulu.w d0, d0\n\trts\n",
		// A MULU run broken by a write to the source register.
		"mulu.w d2, d0\nmulu.w d2, d1\nmove.w d3, d2\nmulu.w d2, d1\nhalt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		blocks := p.BasicBlocks()
		if len(p.Instrs) == 0 {
			if len(blocks) != 0 {
				t.Fatalf("empty program produced %d blocks", len(blocks))
			}
			return
		}
		// Partition invariant.
		next := 0
		for bi, b := range blocks {
			if b.Start != next {
				t.Fatalf("block %d starts at %d, want %d (gap or overlap)", bi, b.Start, next)
			}
			if b.End <= b.Start {
				t.Fatalf("block %d is empty or inverted: [%d, %d)", bi, b.Start, b.End)
			}
			next = b.End
			for i := b.Start; i < b.End; i++ {
				if got := p.BlockIndexOf(i); got != bi {
					t.Fatalf("BlockIndexOf(%d) = %d, want %d", i, got, bi)
				}
			}
		}
		if next != len(p.Instrs) {
			t.Fatalf("blocks cover [0, %d), program has %d instructions", next, len(p.Instrs))
		}
		if p.BlockIndexOf(-1) != -1 || p.BlockIndexOf(len(p.Instrs)) != -1 {
			t.Fatal("BlockIndexOf accepted an out-of-range pc")
		}
		// Fused cycle sums equal per-instruction sums.
		for bi, b := range blocks {
			var want int64
			for i := b.Start; i < b.End; i++ {
				want += baseCycles(&p.Instrs[i])
			}
			if b.FixedCycles != want {
				t.Fatalf("block %d FixedCycles = %d, want per-instruction sum %d", bi, b.FixedCycles, want)
			}
		}
		// Fused MULU runs: every member must record the length
		// remaining from itself, stay within one block, and cover only
		// identical MULUs (same registers, same static cost).
		sup := p.super()
		for i := range sup {
			if sup[i].kind != skMuluRun {
				continue
			}
			n := int(sup[i].runLen)
			if n < 1 || i+n > len(sup) {
				t.Fatalf("mulu run at %d: length %d out of range", i, n)
			}
			bi := p.BlockIndexOf(i)
			for k := i; k < i+n; k++ {
				if sup[k].kind != skMuluRun {
					t.Fatalf("mulu run at %d: member %d has kind %d", i, k, sup[k].kind)
				}
				if int(sup[k].runLen) != i+n-k {
					t.Fatalf("mulu run at %d: member %d records length %d, want %d", i, k, sup[k].runLen, i+n-k)
				}
				if p.BlockIndexOf(k) != bi {
					t.Fatalf("mulu run at %d: member %d crosses a block boundary", i, k)
				}
				if sup[k].mreg != sup[i].mreg || sup[k].reg != sup[i].reg ||
					sup[k].region != sup[i].region || sup[k].words != sup[i].words ||
					sup[k].base != sup[i].base {
					t.Fatalf("mulu run at %d: member %d is not an identical MULU", i, k)
				}
			}
		}
	})
}
