package m68k

// Execution-table fast path: every assembled instruction's dispatch
// function, static cycle cost (base time plus EA timing), and fetch
// word count are pre-resolved into a flat per-program table, so the
// interpreter's inner loop is an index, a function call, and a cycle
// add. The table is built once per Program (lazily, under a sync.Once,
// so concurrently executing CPUs of a partition can share it) and is
// read-only afterwards.
//
// baseCycles and resolveHandler remain the single source of truth: the
// table caches their results, and CPU.DisableExecTable forces the
// per-step recomputation path so tests can prove the two agree.

// handler executes one pre-decoded instruction. cycles is the
// instruction's static base time plus the fetch penalty; fetch is the
// penalty alone (DBcc rebuilds its variant times from it); next is the
// fall-through PC.
type handler func(c *CPU, in *Instr, cycles, fetch int64, next int) Status

// execEntry is one instruction's pre-resolved execution state.
type execEntry struct {
	fn    handler
	base  int64 // static cycles: table time + EA components
	words int64 // instruction length in words (fetch penalty accesses)
}

// table returns the program's execution table, building it on first
// use. Programs are immutable after assembly/decoding, so the table is
// computed once and shared by every CPU executing the program.
func (p *Program) table() []execEntry {
	p.tabOnce.Do(func() {
		tab := make([]execEntry, len(p.Instrs))
		for i := range p.Instrs {
			in := &p.Instrs[i]
			tab[i] = execEntry{
				fn:    resolveHandler(in),
				base:  baseCycles(in),
				words: int64(in.Words),
			}
		}
		p.tab = tab
	})
	return p.tab
}

// resolveHandler maps an instruction to its dispatch function. The
// resolution depends only on static instruction fields, so it can be
// cached; forms whose execution path is statically known (quick
// arithmetic on address registers, the SIMD-space jump) resolve to
// specialized handlers.
func resolveHandler(in *Instr) handler {
	switch in.Op {
	case NOP:
		return execNOP
	case HALT:
		return execHALT
	case MOVE:
		return execMOVE
	case MOVEA:
		return execMOVEA
	case MOVEQ:
		return execMOVEQ
	case LEA:
		return execLEA
	case CLR:
		return execCLR
	case ADD, SUB, AND, OR, EOR, ADDI, SUBI, ANDI, ORI, EORI:
		return execALU2
	case ADDQ, SUBQ:
		if in.Dst.Mode == ModeAddrReg {
			return execQuickAddr
		}
		return execALU2
	case CMP, CMPI:
		return execCMP
	case CMPA:
		return execCMPA
	case ADDA, SUBA:
		return execADDA
	case NOT, NEG:
		return execALU1
	case TST:
		return execTST
	case MULU:
		return execMULU
	case MULS:
		return execMULS
	case DIVU:
		return execDIVU
	case LSL, LSR, ASL, ASR, ROL, ROR:
		return execShift
	case SWAP:
		return execSWAP
	case EXG:
		return execEXG
	case EXT:
		return execEXT
	case BCC:
		return execBcc
	case DBCC:
		return execDBcc
	case JMP:
		if in.Dst.Mode == ModeAbs && uint32(in.Dst.Val) >= DeviceBase {
			return execJmpSIMD
		}
		return execJMP
	case JSR:
		return execJSR
	case RTS:
		return execRTS
	case BTST, BSET, BCLR, BCHG:
		return execBitOp
	case BCAST:
		return execBCAST
	case SETMASK:
		return execSETMASK
	}
	return execUnimplemented
}

// The handlers below are the former arms of the interpreter's exec
// switch. Each must be free of side effects until it is certain the
// instruction completes (device accesses may refuse, after which the
// engine retries the same instruction); staged flag and pending
// address-register updates implement that.

func execNOP(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	return c.commit(in, cycles, next)
}

func execHALT(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	c.Halted = true
	c.commit(in, cycles, next)
	return StatusHalted
}

func execMOVE(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	sz := in.Size
	v, blocked, err := c.opRead(in.Src, sz, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	f := nzFlags(v, sz)
	blocked, err = c.opWrite(in.Dst, sz, v, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}

func execMOVEA(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	v, blocked, err := c.opRead(in.Src, in.Size, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	c.A[in.Dst.Reg] = signExtTo32(v, in.Size)
	return c.commit(in, cycles, next)
}

func execMOVEQ(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	v := uint32(in.Src.Val) // sign-extended by the assembler range check
	c.D[in.Dst.Reg] = v
	c.applyFlags(nzFlags(v, Long))
	return c.commit(in, cycles, next)
}

func execLEA(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	c.A[in.Dst.Reg] = c.ea(in.Src, Long)
	c.npend = 0 // LEA computes the address only
	return c.commit(in, cycles, next)
}

func execCLR(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	blocked, err := c.opWrite(in.Dst, in.Size, 0, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	c.applyFlags(flags{z: true})
	return c.commit(in, cycles, next)
}

func execALU2(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	return c.alu2(in, cycles, next)
}

// execQuickAddr is ADDQ/SUBQ to an address register: the quick forms
// act on all 32 bits and do not affect flags.
func execQuickAddr(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	d := uint32(in.Src.Val)
	if in.Op == ADDQ {
		c.A[in.Dst.Reg] += d
	} else {
		c.A[in.Dst.Reg] -= d
	}
	return c.commit(in, cycles, next)
}

func execCMP(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	sz := in.Size
	src, blocked, err := c.opRead(in.Src, sz, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	dst, blocked, err := c.opRead(in.Dst, sz, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	r := dst - src
	f := subFlags(dst, src, r, sz)
	f.setX = false // CMP does not touch X
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}

func execCMPA(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	src, blocked, err := c.opRead(in.Src, in.Size, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	s32 := signExtTo32(src, in.Size)
	d32 := c.A[in.Dst.Reg]
	r := d32 - s32
	f := subFlags(d32, s32, r, Long)
	f.setX = false
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}

func execADDA(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	src, blocked, err := c.opRead(in.Src, in.Size, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	s32 := signExtTo32(src, in.Size)
	if in.Op == ADDA {
		c.A[in.Dst.Reg] += s32
	} else {
		c.A[in.Dst.Reg] -= s32
	}
	return c.commit(in, cycles, next)
}

func execALU1(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	return c.alu1(in, cycles, next)
}

func execTST(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	v, blocked, err := c.opRead(in.Dst, in.Size, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	c.applyFlags(nzFlags(v, in.Size))
	return c.commit(in, cycles, next)
}

func execMULU(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	src, blocked, err := c.opRead(in.Src, Word, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	if c.FixedMulCycles > 0 {
		cycles += c.FixedMulCycles
	} else {
		cycles += MuluCycles(uint16(src))
	}
	r := mask(c.D[in.Dst.Reg], Word) * src
	c.D[in.Dst.Reg] = r
	c.applyFlags(nzFlags(r, Long))
	return c.commit(in, cycles, next)
}

func execMULS(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	src, blocked, err := c.opRead(in.Src, Word, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	cycles += MulsCycles(uint16(src))
	r := uint32(int32(int16(src)) * int32(int16(c.D[in.Dst.Reg])))
	c.D[in.Dst.Reg] = r
	c.applyFlags(nzFlags(r, Long))
	return c.commit(in, cycles, next)
}

func execDIVU(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	src, blocked, err := c.opRead(in.Src, Word, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	if src == 0 {
		return c.errf(in, "divide by zero")
	}
	dividend := c.D[in.Dst.Reg]
	q := dividend / src
	if q > 0xFFFF {
		// Overflow: destination unchanged, V set.
		cycles += 10
		c.applyFlags(flags{v: true, n: c.N, z: c.Z})
		return c.commit(in, cycles, next)
	}
	cycles += DivuCycles(uint16(q))
	rem := dividend % src
	c.D[in.Dst.Reg] = rem<<16 | q
	c.applyFlags(nzFlags(q, Word))
	return c.commit(in, cycles, next)
}

func execShift(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	return c.shift(in, cycles, next)
}

func execSWAP(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	v := c.D[in.Dst.Reg]
	v = v>>16 | v<<16
	c.D[in.Dst.Reg] = v
	c.applyFlags(nzFlags(v, Long))
	return c.commit(in, cycles, next)
}

func execEXG(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	a := c.regPtr(in.Src)
	b := c.regPtr(in.Dst)
	*a, *b = *b, *a
	return c.commit(in, cycles, next)
}

func execEXT(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	v := c.D[in.Dst.Reg]
	if in.Size == Word {
		v = merge(v, uint32(int32(int8(v)))&0xFFFF, Word)
		c.applyFlags(nzFlags(v, Word))
	} else {
		v = uint32(int32(int16(v)))
		c.applyFlags(nzFlags(v, Long))
	}
	c.D[in.Dst.Reg] = v
	return c.commit(in, cycles, next)
}

func execBcc(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	if in.Dst.Mode != ModeLabel {
		return c.errf(in, "branch target must be a label")
	}
	if c.condTrue(in.Cond) {
		return c.commit(in, cycles, int(in.Dst.Val)) // taken: 10 either form
	}
	if in.Words == 2 {
		return c.commit(in, cycles+2, next) // word form not-taken: 12
	}
	return c.commit(in, cycles-2, next) // byte form not-taken: 8
}

func execDBcc(c *CPU, in *Instr, _, fetch int64, next int) Status {
	if in.Dst.Mode != ModeLabel {
		return c.errf(in, "branch target must be a label")
	}
	if c.condTrue(in.Cond) {
		return c.commit(in, 12+fetch, next)
	}
	cnt := uint16(c.D[in.Src.Reg]) - 1
	c.D[in.Src.Reg] = merge(c.D[in.Src.Reg], uint32(cnt), Word)
	if cnt == 0xFFFF {
		return c.commit(in, 14+fetch, next)
	}
	return c.commit(in, 10+fetch, int(in.Dst.Val))
}

// execJmpSIMD is a jump into the SIMD instruction space: the PASM
// MIMD-to-SIMD mode switch (paper Section 3). The PE starts requesting
// broadcast instructions; the executor takes over.
func execJmpSIMD(c *CPU, in *Instr, cycles, _ int64, _ int) Status {
	c.commit(in, cycles, c.PC)
	return StatusSIMDJump
}

func execJMP(c *CPU, in *Instr, cycles, _ int64, _ int) Status {
	if in.Dst.Mode != ModeLabel {
		return c.errf(in, "jump target must be a label")
	}
	return c.commit(in, cycles, int(in.Dst.Val))
}

func execJSR(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	if in.Dst.Mode != ModeLabel {
		return c.errf(in, "call target must be a label")
	}
	sp := c.A[7] - 4
	if err := c.Mem.Write(sp, Long, uint32(next)); err != nil {
		return c.errf(in, "stack push: %v", err)
	}
	if c.MemWatch != nil {
		c.MemWatch(sp, Long, uint32(next), true)
	}
	cycles += c.Mem.Penalty(c.Clock, 2)
	c.A[7] = sp
	return c.commit(in, cycles, int(in.Dst.Val))
}

func execRTS(c *CPU, in *Instr, cycles, _ int64, _ int) Status {
	v, err := c.Mem.Read(c.A[7], Long)
	if err != nil {
		return c.errf(in, "stack pop: %v", err)
	}
	if c.MemWatch != nil {
		c.MemWatch(c.A[7], Long, v, false)
	}
	cycles += c.Mem.Penalty(c.Clock, 2)
	c.A[7] += 4
	return c.commit(in, cycles, int(v))
}

func execBitOp(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	return c.bitOp(in, cycles, next)
}

func execBCAST(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	c.LastBcast = BlockRange{Start: int(in.Src.Val), End: int(in.Dst.Val)}
	c.commit(in, cycles, next)
	return StatusBcast
}

func execSETMASK(c *CPU, in *Instr, cycles, _ int64, next int) Status {
	v, blocked, err := c.opRead(in.Src, Word, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	c.LastMask = v
	c.commit(in, cycles, next)
	return StatusSetMask
}

func execUnimplemented(c *CPU, in *Instr, _, _ int64, _ int) Status {
	return c.errf(in, "unimplemented operation")
}
