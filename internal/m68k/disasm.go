package m68k

import (
	"fmt"
	"strings"
)

// String renders an operand in assembler syntax.
func (o Operand) String() string {
	switch o.Mode {
	case ModeNone:
		return ""
	case ModeDataReg:
		return fmt.Sprintf("d%d", o.Reg)
	case ModeAddrReg:
		return fmt.Sprintf("a%d", o.Reg)
	case ModeIndirect:
		return fmt.Sprintf("(a%d)", o.Reg)
	case ModePostInc:
		return fmt.Sprintf("(a%d)+", o.Reg)
	case ModePreDec:
		return fmt.Sprintf("-(a%d)", o.Reg)
	case ModeDisp:
		return fmt.Sprintf("%d(a%d)", o.Val, o.Reg)
	case ModeAbs:
		return fmt.Sprintf("$%X", uint32(o.Val))
	case ModeImm:
		return fmt.Sprintf("#%d", o.Val)
	case ModeLabel:
		return fmt.Sprintf("L%d", o.Val)
	}
	return "?"
}

// String renders an instruction in assembler syntax.
func (in Instr) String() string {
	var b strings.Builder
	switch in.Op {
	case BCC:
		fmt.Fprintf(&b, "b%s\t%s", in.Cond, in.Dst)
		return b.String()
	case DBCC:
		fmt.Fprintf(&b, "db%s\t%s, %s", in.Cond, in.Src, in.Dst)
		return b.String()
	case BCAST:
		fmt.Fprintf(&b, "bcast\t[%d,%d)", in.Src.Val, in.Dst.Val)
		return b.String()
	}
	b.WriteString(in.Op.String())
	if sized(in.Op) {
		fmt.Fprintf(&b, ".%s", in.Size)
	}
	if in.Src.Mode != ModeNone && in.Dst.Mode != ModeNone {
		fmt.Fprintf(&b, "\t%s, %s", in.Src, in.Dst)
	} else if in.Dst.Mode != ModeNone {
		fmt.Fprintf(&b, "\t%s", in.Dst)
	} else if in.Src.Mode != ModeNone {
		fmt.Fprintf(&b, "\t%s", in.Src)
	}
	return b.String()
}

func sized(op Op) bool {
	switch op {
	case NOP, RTS, HALT, SWAP, EXG, LEA, MOVEQ, JMP, JSR, BCAST, BCC, DBCC:
		return false
	}
	return true
}

// Disassemble renders the whole program with instruction indices,
// labels, block boundaries, and per-instruction word counts — useful
// for debugging generated programs.
func (p *Program) Disassemble() string {
	labelAt := map[int][]string{}
	for name, idx := range p.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	blockStart := map[int][]string{}
	blockEnd := map[int][]string{}
	for name, br := range p.Blocks {
		blockStart[br.Start] = append(blockStart[br.Start], name)
		blockEnd[br.End] = append(blockEnd[br.End], name)
	}
	var b strings.Builder
	for i, in := range p.Instrs {
		for _, n := range blockEnd[i] {
			fmt.Fprintf(&b, "        .endblock ; %s\n", n)
		}
		for _, n := range blockStart[i] {
			fmt.Fprintf(&b, "        .block %s\n", n)
		}
		for _, n := range labelAt[i] {
			fmt.Fprintf(&b, "%s:\n", n)
		}
		fmt.Fprintf(&b, "%5d:  %-32s ; %dw %s\n", i, in.String(), in.Words, in.Region)
	}
	for _, n := range blockEnd[len(p.Instrs)] {
		fmt.Fprintf(&b, "        .endblock ; %s\n", n)
	}
	return b.String()
}
