package m68k

import "testing"

// benchKernel is the shape of the matmul inner-product loop the
// paper's experiments spend their cycles in: pointer-walking loads,
// a data-dependent MULU, a read-modify-write accumulate, and a DBcc
// terminator — plus an artificial muls chain like the fig7 rows.
const benchKernel = `
	.equ SRC, $1000
	.equ DST, $2000
	movea.l #SRC, a0
	movea.l #DST, a1
	move.w  #$55AA, d2
	move.w  #255, d6
rloop:	move.w  (a0)+, d0
	mulu.w  d2, d0
	add.w   d0, (a1)+
	mulu.w  d2, d5
	mulu.w  d2, d5
	mulu.w  d2, d5
	dbra    d6, rloop
	halt
`

// benchRun measures steady-state interpretation of the kernel on one
// CPU with DRAM timing enabled, the configuration the MIMD/SISD
// experiment rows run under.
func benchRun(b *testing.B, disableTable, disableSuper bool) {
	prog := MustAssemble(benchKernel)
	mem := NewMemory(1 << 16)
	mem.WaitStates = 1
	mem.RefreshPeriod = 256
	mem.RefreshStall = 2
	c := NewCPU(prog, mem)
	c.FetchFromMem = true
	c.DisableExecTable = disableTable
	c.DisableSuperinstructions = disableSuper
	c.A[7] = 0x8000
	if st := c.Run(1 << 20); st != StatusHalted {
		b.Fatalf("warmup status %v (err=%v)", st, c.Err)
	}
	instrs := c.InstrCount
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.Mem.Reset()
		c.A[7] = 0x8000
		if st := c.Run(1 << 20); st != StatusHalted {
			b.Fatalf("status %v (err=%v)", st, c.Err)
		}
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "mips")
}

func BenchmarkInterpreterReference(b *testing.B) { benchRun(b, true, true) }
func BenchmarkInterpreterTable(b *testing.B)     { benchRun(b, false, true) }
func BenchmarkInterpreterSuper(b *testing.B)     { benchRun(b, false, false) }
