package m68k

import "fmt"

// Binary encoding of the simulated subset into authentic MC68000
// machine words, and decoding back. The simulator itself executes
// structured instructions, but the encoder serves two purposes: it
// lets generated programs be inspected as real 68000 object code
// (cmd/pasmasm -hex), and — because fetch timing is driven by
// Instr.Words — the round-trip tests cross-validate the timing model's
// instruction lengths against the true encodings.
//
// Simulator pseudo-instructions: HALT encodes as ILLEGAL (0x4AFC), the
// conventional single-word trap. BCAST and SETMASK are MC-side
// operations implemented with Fetch Unit control registers on the real
// machine and have no PE encoding; Encode rejects programs containing
// them (encode the PE-side programs, which is where timing matters).

// EA mode/register field values.
const (
	eaDataReg = 0x00 // 000 rrr
	eaAddrReg = 0x08 // 001 rrr
	eaInd     = 0x10 // 010 rrr
	eaPostInc = 0x18 // 011 rrr
	eaPreDec  = 0x20 // 100 rrr
	eaDisp    = 0x28 // 101 rrr
	eaAbsW    = 0x38 // 111 000
	eaAbsL    = 0x39 // 111 001
	eaImm     = 0x3C // 111 100
)

// eaField returns the 6-bit mode/register field and the extension
// words for an operand.
func eaField(o Operand, sz Size) (field uint16, ext []uint16, err error) {
	switch o.Mode {
	case ModeDataReg:
		return eaDataReg | uint16(o.Reg), nil, nil
	case ModeAddrReg:
		return eaAddrReg | uint16(o.Reg), nil, nil
	case ModeIndirect:
		return eaInd | uint16(o.Reg), nil, nil
	case ModePostInc:
		return eaPostInc | uint16(o.Reg), nil, nil
	case ModePreDec:
		return eaPreDec | uint16(o.Reg), nil, nil
	case ModeDisp:
		return eaDisp | uint16(o.Reg), []uint16{uint16(o.Val)}, nil
	case ModeAbs:
		if uint32(o.Val) > 0xFFFF {
			return eaAbsL, []uint16{uint16(uint32(o.Val) >> 16), uint16(o.Val)}, nil
		}
		return eaAbsW, []uint16{uint16(o.Val)}, nil
	case ModeImm:
		if sz == Long {
			return eaImm, []uint16{uint16(uint32(o.Val) >> 16), uint16(o.Val)}, nil
		}
		return eaImm, []uint16{uint16(o.Val)}, nil
	}
	return 0, nil, fmt.Errorf("m68k: operand %v not encodable", o)
}

// sizeBitsMove returns the MOVE-format size field (01=B, 11=W, 10=L).
func sizeBitsMove(sz Size) uint16 {
	switch sz {
	case Byte:
		return 1
	case Word:
		return 3
	default:
		return 2
	}
}

// sizeBits returns the common 2-bit size field (00=B, 01=W, 10=L).
func sizeBits(sz Size) uint16 { return uint16(sz) }

// condBits maps simulator conditions to 68000 condition codes for Bcc
// and DBcc. For Bcc, code 0001 is BSR, so CondF is not encodable; for
// DBcc, 0001 is the standard DBF/DBRA.
var condBits = map[Cond]uint16{
	CondT: 0x0, CondF: 0x1,
	CondHI: 0x2, CondLS: 0x3,
	CondCC: 0x4, CondCS: 0x5,
	CondNE: 0x6, CondEQ: 0x7,
	CondVC: 0x8, CondVS: 0x9,
	CondPL: 0xA, CondMI: 0xB,
	CondGE: 0xC, CondLT: 0xD,
	CondGT: 0xE, CondLE: 0xF,
}

var condFromBits = func() map[uint16]Cond {
	m := map[uint16]Cond{}
	for c, b := range condBits {
		m[b] = c
	}
	return m
}()

// Encode assembles the program into MC68000 machine words. Branch
// targets become real byte displacements; the result's length in words
// equals the sum of every instruction's Words (verified by tests, and
// relied on by the fetch-timing model).
func (p *Program) Encode() ([]uint16, error) {
	addr := instrAddrs(p)
	var out []uint16
	for i := range p.Instrs {
		words, err := encodeInstr(p, i, addr)
		if err != nil {
			return nil, fmt.Errorf("m68k: instruction %d (%s, line %d): %w", i, p.Instrs[i].Op, p.Instrs[i].Line, err)
		}
		if len(words) != int(p.Instrs[i].Words) {
			return nil, fmt.Errorf("m68k: instruction %d (%s): encoded to %d words but timing model says %d",
				i, &p.Instrs[i], len(words), p.Instrs[i].Words)
		}
		out = append(out, words...)
	}
	return out, nil
}

func labelAddr(p *Program, addr []int32, idx int32) (int32, error) {
	if idx < 0 || int(idx) > len(p.Instrs) {
		return 0, fmt.Errorf("branch target %d outside program", idx)
	}
	if int(idx) == len(p.Instrs) {
		return endAddr(p, addr), nil
	}
	return addr[idx], nil
}

func encodeInstr(p *Program, i int, addr []int32) ([]uint16, error) {
	in := &p.Instrs[i]
	sz := in.Size
	switch in.Op {
	case NOP:
		return []uint16{0x4E71}, nil
	case HALT:
		return []uint16{0x4AFC}, nil // ILLEGAL: the simulator's halt trap
	case RTS:
		return []uint16{0x4E75}, nil
	case BCAST, SETMASK:
		return nil, fmt.Errorf("MC-only pseudo-instruction has no PE encoding")

	case MOVE, MOVEA:
		src, srcExt, err := eaField(in.Src, sz)
		if err != nil {
			return nil, err
		}
		var dstField uint16
		var dstExt []uint16
		if in.Op == MOVEA {
			dstField = eaAddrReg | uint16(in.Dst.Reg)
		} else {
			dstField, dstExt, err = eaField(in.Dst, sz)
			if err != nil {
				return nil, err
			}
			if dstField == eaImm {
				return nil, fmt.Errorf("immediate destination")
			}
		}
		// MOVE: 00 ss RRR MMM mmm rrr (dst reg/mode, src mode/reg)
		op := sizeBitsMove(sz)<<12 |
			(dstField&7)<<9 | (dstField>>3)<<6 | src
		return append(append([]uint16{op}, srcExt...), dstExt...), nil

	case MOVEQ:
		return []uint16{0x7000 | uint16(in.Dst.Reg)<<9 | uint16(uint8(in.Src.Val))}, nil

	case LEA:
		ea, ext, err := eaField(in.Src, Long)
		if err != nil {
			return nil, err
		}
		return append([]uint16{0x41C0 | uint16(in.Dst.Reg)<<9 | ea}, ext...), nil

	case CLR, NEG, NOT, TST:
		base := map[Op]uint16{CLR: 0x4200, NEG: 0x4400, NOT: 0x4600, TST: 0x4A00}[in.Op]
		ea, ext, err := eaField(in.Dst, sz)
		if err != nil {
			return nil, err
		}
		return append([]uint16{base | sizeBits(sz)<<6 | ea}, ext...), nil

	case ADD, SUB, AND, OR, EOR, CMP:
		base := map[Op]uint16{ADD: 0xD000, SUB: 0x9000, AND: 0xC000, OR: 0x8000, EOR: 0xB000, CMP: 0xB000}[in.Op]
		if in.Dst.Mode == ModeDataReg && in.Op != EOR {
			// <ea> op Dn -> Dn: opmode 0ss
			ea, ext, err := eaField(in.Src, sz)
			if err != nil {
				return nil, err
			}
			return append([]uint16{base | uint16(in.Dst.Reg)<<9 | sizeBits(sz)<<6 | ea}, ext...), nil
		}
		if in.Op == CMP {
			return nil, fmt.Errorf("CMP destination must be a data register")
		}
		// Dn op <ea> -> <ea>: opmode 1ss. (EOR only has this form.)
		if in.Src.Mode != ModeDataReg {
			// and #imm / or #imm parsed as AND/OR: encode as the
			// immediate instruction forms.
			if in.Src.Mode == ModeImm {
				return encodeImmediate(map[Op]uint16{AND: 0x0200, OR: 0x0000, EOR: 0x0A00,
					ADD: 0x0600, SUB: 0x0400}[in.Op], in)
			}
			return nil, fmt.Errorf("source must be a data register or immediate")
		}
		ea, ext, err := eaField(in.Dst, sz)
		if err != nil {
			return nil, err
		}
		return append([]uint16{base | uint16(in.Src.Reg)<<9 | (4+sizeBits(sz))<<6 | ea}, ext...), nil

	case ADDA, SUBA, CMPA:
		base := map[Op]uint16{ADDA: 0xD000, SUBA: 0x9000, CMPA: 0xB000}[in.Op]
		opmode := uint16(3) // word
		if sz == Long {
			opmode = 7
		}
		ea, ext, err := eaField(in.Src, sz)
		if err != nil {
			return nil, err
		}
		return append([]uint16{base | uint16(in.Dst.Reg)<<9 | opmode<<6 | ea}, ext...), nil

	case ADDI, SUBI, ANDI, ORI, EORI, CMPI:
		base := map[Op]uint16{ORI: 0x0000, ANDI: 0x0200, SUBI: 0x0400, ADDI: 0x0600, EORI: 0x0A00, CMPI: 0x0C00}[in.Op]
		return encodeImmediate(base, in)

	case ADDQ, SUBQ:
		base := uint16(0x5000)
		if in.Op == SUBQ {
			base |= 0x0100
		}
		data := uint16(in.Src.Val) & 7 // 8 encodes as 0
		ea, ext, err := eaField(in.Dst, sz)
		if err != nil {
			return nil, err
		}
		return append([]uint16{base | data<<9 | sizeBits(sz)<<6 | ea}, ext...), nil

	case MULU, MULS, DIVU:
		base := map[Op]uint16{MULU: 0xC0C0, MULS: 0xC1C0, DIVU: 0x80C0}[in.Op]
		ea, ext, err := eaField(in.Src, Word)
		if err != nil {
			return nil, err
		}
		return append([]uint16{base | uint16(in.Dst.Reg)<<9 | ea}, ext...), nil

	case LSL, LSR, ASL, ASR, ROL, ROR:
		// register shifts: 1110 ccc d ss i tt rrr
		tt := map[Op]uint16{ASL: 0, ASR: 0, LSL: 1, LSR: 1, ROL: 3, ROR: 3}[in.Op]
		dr := uint16(0)
		switch in.Op {
		case LSL, ASL, ROL:
			dr = 1
		}
		var cnt, ir uint16
		if in.Src.Mode == ModeImm {
			cnt = uint16(in.Src.Val) & 7 // 8 encodes as 0
		} else {
			cnt = uint16(in.Src.Reg)
			ir = 1
		}
		return []uint16{0xE000 | cnt<<9 | dr<<8 | sizeBits(sz)<<6 | ir<<5 | tt<<3 | uint16(in.Dst.Reg)}, nil

	case SWAP:
		return []uint16{0x4840 | uint16(in.Dst.Reg)}, nil

	case EXT:
		op := uint16(0x4880) // ext.w
		if sz == Long {
			op = 0x48C0
		}
		return []uint16{op | uint16(in.Dst.Reg)}, nil

	case EXG:
		rx, ry := uint16(in.Src.Reg), uint16(in.Dst.Reg)
		switch {
		case in.Src.Mode == ModeDataReg && in.Dst.Mode == ModeDataReg:
			return []uint16{0xC140 | rx<<9 | ry}, nil
		case in.Src.Mode == ModeAddrReg && in.Dst.Mode == ModeAddrReg:
			return []uint16{0xC148 | rx<<9 | ry}, nil
		case in.Src.Mode == ModeDataReg && in.Dst.Mode == ModeAddrReg:
			return []uint16{0xC188 | rx<<9 | ry}, nil
		default: // An, Dn: canonical form puts the data register first
			return []uint16{0xC188 | ry<<9 | rx}, nil
		}

	case BTST, BSET, BCLR, BCHG:
		tt := map[Op]uint16{BTST: 0, BCHG: 1, BCLR: 2, BSET: 3}[in.Op]
		ea, ext, err := eaField(in.Dst, Byte)
		if err != nil {
			return nil, err
		}
		if in.Src.Mode == ModeImm {
			// 0000 1000 tt eeeeee + bit number word
			words := []uint16{0x0800 | tt<<6 | ea, uint16(in.Src.Val)}
			return append(words, ext...), nil
		}
		// 0000 rrr 1 tt eeeeee
		return append([]uint16{0x0100 | uint16(in.Src.Reg)<<9 | tt<<6 | ea}, ext...), nil

	case BCC:
		cc, ok := condBits[in.Cond]
		if !ok || in.Cond == CondF {
			return nil, fmt.Errorf("condition %v not encodable as Bcc (0001 is BSR)", in.Cond)
		}
		t, err := labelAddr(p, addr, in.Dst.Val)
		if err != nil {
			return nil, err
		}
		disp := t - (addr[i] + 2)
		if in.Words == 1 {
			if disp == 0 || disp < -128 || disp > 127 {
				return nil, fmt.Errorf("byte branch displacement %d out of range (relaxation bug)", disp)
			}
			return []uint16{0x6000 | cc<<8 | uint16(uint8(disp))}, nil
		}
		if disp < -32768 || disp > 32767 {
			return nil, fmt.Errorf("branch displacement %d exceeds word range", disp)
		}
		return []uint16{0x6000 | cc<<8, uint16(disp)}, nil

	case DBCC:
		cc, ok := condBits[in.Cond]
		if !ok {
			return nil, fmt.Errorf("condition %v not encodable", in.Cond)
		}
		t, err := labelAddr(p, addr, in.Dst.Val)
		if err != nil {
			return nil, err
		}
		disp := t - (addr[i] + 2)
		if disp < -32768 || disp > 32767 {
			return nil, fmt.Errorf("DBcc displacement %d exceeds word range", disp)
		}
		return []uint16{0x50C8 | cc<<8 | uint16(in.Src.Reg), uint16(disp)}, nil

	case JMP, JSR:
		base := uint16(0x4EC0) // jmp
		if in.Op == JSR {
			base = 0x4E80
		}
		if in.Dst.Mode == ModeLabel {
			t, err := labelAddr(p, addr, in.Dst.Val)
			if err != nil {
				return nil, err
			}
			if uint32(t) > 0xFFFF {
				return nil, fmt.Errorf("program too large for abs.w jump targets")
			}
			return []uint16{base | eaAbsW, uint16(t)}, nil
		}
		ea, ext, err := eaField(in.Dst, Word)
		if err != nil {
			return nil, err
		}
		return append([]uint16{base | ea}, ext...), nil
	}
	return nil, fmt.Errorf("no encoding for %s", in.Op)
}

// encodeImmediate emits the 0000-family immediate-operand forms.
func encodeImmediate(base uint16, in *Instr) ([]uint16, error) {
	ea, ext, err := eaField(in.Dst, in.Size)
	if err != nil {
		return nil, err
	}
	var imm []uint16
	if in.Size == Long {
		imm = []uint16{uint16(uint32(in.Src.Val) >> 16), uint16(in.Src.Val)}
	} else {
		imm = []uint16{uint16(in.Src.Val)}
	}
	words := append([]uint16{base | sizeBits(in.Size)<<6 | ea}, imm...)
	return append(words, ext...), nil
}
