package m68k

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates MC68000 assembly source into a Program.
//
// Supported syntax (one instruction or directive per line):
//
//	; comment           * comment also accepted
//	label:  move.w  (a0)+, d0
//	        mulu.w  d2, d0
//	        add.w   d0, (a1)+
//	        dbra    d1, label
//	        .equ    NCOLS, 8
//	        .region mult            ; accounting region for what follows
//	        .block  elem            ; begin a SIMD broadcast block
//	        .endblock
//	        bcast   elem            ; MC: enqueue block via the Fetch Unit
//
// Operands: dn, an, sp (=a7), (an), (an)+, -(an), d(an), #expr, $hex or
// expr as an absolute address, and bare identifiers as labels for
// branch/jump/bcast targets. Expressions over .equ names support
// + - * / ( ) and unary minus.
func Assemble(src string) (*Program, error) {
	a := &asm{
		equs:   map[string]int64{},
		labels: map[string]int{},
		blocks: map[string]BlockRange{},
		prog:   &Program{Source: src},
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	if err := a.pass2(src); err != nil {
		return nil, err
	}
	a.prog.Labels = a.labels
	a.prog.Blocks = a.blocks
	relaxBranches(a.prog)
	return a.prog, nil
}

// relaxBranches sizes conditional/unconditional branches: the 68000
// short form holds an 8-bit displacement in the opcode word, but a
// displacement of zero (branch to the next instruction) or one outside
// -128..127 bytes needs the word form with an extension word. Sizes
// and displacements are interdependent, so iterate to a fixpoint
// (growing only, which terminates). Branch timing depends on the form
// (word-form not-taken costs 12 cycles, byte-form 8), which exec reads
// off Words.
func relaxBranches(p *Program) {
	for {
		addr := instrAddrs(p)
		changed := false
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if in.Op != BCC || in.Dst.Mode != ModeLabel || in.Words != 1 {
				continue
			}
			t := int(in.Dst.Val)
			if t < 0 || t > len(p.Instrs) {
				continue // runtime error; leave as is
			}
			var tAddr int32
			if t == len(p.Instrs) {
				tAddr = endAddr(p, addr)
			} else {
				tAddr = addr[t]
			}
			disp := tAddr - (addr[i] + 2)
			if disp == 0 || disp < -128 || disp > 127 {
				in.Words = 2
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// instrAddrs returns each instruction's byte address in the assembled
// image (instructions are laid out contiguously in order).
func instrAddrs(p *Program) []int32 {
	addr := make([]int32, len(p.Instrs))
	var a int32
	for i := range p.Instrs {
		addr[i] = a
		a += int32(p.Instrs[i].Words) * 2
	}
	return addr
}

func endAddr(p *Program, addr []int32) int32 {
	if len(p.Instrs) == 0 {
		return 0
	}
	last := len(p.Instrs) - 1
	return addr[last] + int32(p.Instrs[last].Words)*2
}

// MustAssemble is Assemble for programs known statically correct,
// panicking on error. Intended for program generators and tests.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type asm struct {
	equs   map[string]int64
	labels map[string]int
	blocks map[string]BlockRange
	prog   *Program
	errs   []string
}

func (a *asm) errf(line int, format string, args ...any) {
	a.errs = append(a.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (a *asm) err() error {
	if len(a.errs) == 0 {
		return nil
	}
	return fmt.Errorf("assembly failed:\n  %s", strings.Join(a.errs, "\n  "))
}

// stripComment removes ; and * comments. A '*' only starts a comment at
// the beginning of a line (68k listing style); elsewhere it is the
// multiplication operator.
func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	if t := strings.TrimSpace(line); strings.HasPrefix(t, "*") {
		return ""
	}
	return line
}

// splitLabel splits an optional leading "label:" off a line.
func splitLabel(line string) (label, rest string) {
	i := strings.IndexByte(line, ':')
	if i < 0 {
		return "", line
	}
	cand := strings.TrimSpace(line[:i])
	if cand == "" || !isIdent(cand) {
		return "", line
	}
	return cand, line[i+1:]
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// pass1 collects labels (as instruction indices), .equ values, and
// .block ranges.
func (a *asm) pass1(src string) error {
	idx := 0 // next instruction index
	blockName := ""
	blockStart := 0
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		label, rest := splitLabel(line)
		if label != "" {
			if _, dup := a.labels[label]; dup {
				a.errf(ln+1, "duplicate label %q", label)
			}
			a.labels[label] = idx
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			continue
		}
		mnem, operands := splitMnemonic(rest)
		switch mnem {
		case ".equ":
			parts := splitOperands(operands)
			if len(parts) != 2 {
				a.errf(ln+1, ".equ needs name, value")
				continue
			}
			name := strings.TrimSpace(parts[0])
			if !isIdent(name) {
				a.errf(ln+1, "bad .equ name %q", name)
				continue
			}
			v, err := a.evalExpr(parts[1])
			if err != nil {
				a.errf(ln+1, ".equ %s: %v", name, err)
				continue
			}
			if _, dup := a.equs[name]; dup {
				a.errf(ln+1, "duplicate .equ %q", name)
			}
			a.equs[name] = v
		case ".region":
			// handled in pass2
		case ".block":
			if blockName != "" {
				a.errf(ln+1, ".block inside .block %q", blockName)
			}
			blockName = strings.TrimSpace(operands)
			if !isIdent(blockName) {
				a.errf(ln+1, "bad block name %q", blockName)
				blockName = "?"
			}
			blockStart = idx
		case ".endblock":
			if blockName == "" {
				a.errf(ln+1, ".endblock without .block")
				continue
			}
			if _, dup := a.blocks[blockName]; dup {
				a.errf(ln+1, "duplicate block %q", blockName)
			}
			a.blocks[blockName] = BlockRange{Start: blockStart, End: idx}
			blockName = ""
		default:
			idx++
		}
	}
	if blockName != "" {
		a.errf(0, "unterminated .block %q", blockName)
	}
	return a.err()
}

// splitMnemonic separates the mnemonic from its operand field.
func splitMnemonic(s string) (mnem, operands string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return strings.ToLower(s), ""
	}
	return strings.ToLower(s[:i]), strings.TrimSpace(s[i+1:])
}

// splitOperands splits on commas that are not inside parentheses.
func splitOperands(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	last := strings.TrimSpace(s[start:])
	if last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out
}

func (a *asm) pass2(src string) error {
	region := RegionOther
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		_, rest := splitLabel(line)
		rest = strings.TrimSpace(rest)
		if rest == "" {
			continue
		}
		mnem, operands := splitMnemonic(rest)
		switch mnem {
		case ".equ", ".block", ".endblock":
			continue
		case ".region":
			switch strings.TrimSpace(operands) {
			case "mult":
				region = RegionMult
			case "comm":
				region = RegionComm
			case "control":
				region = RegionControl
			case "other":
				region = RegionOther
			default:
				a.errf(ln+1, "unknown region %q", operands)
			}
			continue
		}
		in, err := a.parseInstr(mnem, operands)
		if err != nil {
			a.errf(ln+1, "%v", err)
			continue
		}
		in.Region = region
		in.Line = ln + 1
		in.Words = instrWords(&in)
		a.prog.Instrs = append(a.prog.Instrs, in)
	}
	return a.err()
}

// mnemonic tables ----------------------------------------------------

type opInfo struct {
	op       Op
	operands int  // expected operand count
	sized    bool // accepts .b/.w/.l suffix
	defSize  Size
}

var mnemonics = map[string]opInfo{
	"nop":     {NOP, 0, false, Word},
	"move":    {MOVE, 2, true, Word},
	"movea":   {MOVEA, 2, true, Long},
	"moveq":   {MOVEQ, 2, false, Long},
	"lea":     {LEA, 2, false, Long},
	"clr":     {CLR, 1, true, Word},
	"add":     {ADD, 2, true, Word},
	"adda":    {ADDA, 2, true, Long},
	"addq":    {ADDQ, 2, true, Word},
	"addi":    {ADDI, 2, true, Word},
	"sub":     {SUB, 2, true, Word},
	"suba":    {SUBA, 2, true, Long},
	"subq":    {SUBQ, 2, true, Word},
	"subi":    {SUBI, 2, true, Word},
	"mulu":    {MULU, 2, true, Word},
	"muls":    {MULS, 2, true, Word},
	"divu":    {DIVU, 2, true, Word},
	"and":     {AND, 2, true, Word},
	"andi":    {ANDI, 2, true, Word},
	"or":      {OR, 2, true, Word},
	"ori":     {ORI, 2, true, Word},
	"eor":     {EOR, 2, true, Word},
	"eori":    {EORI, 2, true, Word},
	"not":     {NOT, 1, true, Word},
	"neg":     {NEG, 1, true, Word},
	"lsl":     {LSL, 2, true, Word},
	"lsr":     {LSR, 2, true, Word},
	"asl":     {ASL, 2, true, Word},
	"asr":     {ASR, 2, true, Word},
	"rol":     {ROL, 2, true, Word},
	"ror":     {ROR, 2, true, Word},
	"swap":    {SWAP, 1, false, Word},
	"exg":     {EXG, 2, false, Long},
	"ext":     {EXT, 1, true, Word},
	"tst":     {TST, 1, true, Word},
	"cmp":     {CMP, 2, true, Word},
	"cmpa":    {CMPA, 2, true, Long},
	"cmpi":    {CMPI, 2, true, Word},
	"btst":    {BTST, 2, false, Byte},
	"bset":    {BSET, 2, false, Byte},
	"bclr":    {BCLR, 2, false, Byte},
	"bchg":    {BCHG, 2, false, Byte},
	"jmp":     {JMP, 1, false, Word},
	"jsr":     {JSR, 1, false, Word},
	"rts":     {RTS, 0, false, Word},
	"halt":    {HALT, 0, false, Word},
	"bcast":   {BCAST, 1, false, Word},
	"setmask": {SETMASK, 1, false, Word},
}

// branch mnemonics: bra, beq, bne, ... and dbra, dbeq, ...
var branchConds = map[string]Cond{
	"ra": CondT, "t": CondT, "f": CondF,
	"eq": CondEQ, "ne": CondNE,
	"cs": CondCS, "lo": CondCS, "cc": CondCC, "hs": CondCC,
	"lt": CondLT, "ge": CondGE, "le": CondLE, "gt": CondGT,
	"hi": CondHI, "ls": CondLS, "mi": CondMI, "pl": CondPL,
	"vs": CondVS, "vc": CondVC,
}

func (a *asm) parseInstr(mnem, operands string) (Instr, error) {
	base, size, hasSize, err := splitSize(mnem)
	if err != nil {
		return Instr{}, err
	}

	// Branches first: b<cc> and db<cc>.
	if cond, ok := branchCond(base, "b"); ok && base != "bcast" {
		if hasSize {
			return Instr{}, fmt.Errorf("branch %s does not take a size", mnem)
		}
		ops := splitOperands(operands)
		if len(ops) != 1 {
			return Instr{}, fmt.Errorf("%s needs one target", base)
		}
		tgt, err := a.parseTarget(ops[0])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: BCC, Cond: cond, Size: Word, Dst: tgt}, nil
	}
	if cond, ok := branchCond(base, "db"); ok {
		if hasSize {
			return Instr{}, fmt.Errorf("%s does not take a size", mnem)
		}
		if base == "dbra" {
			// DBRA is the conventional alias for DBF: decrement and
			// branch until the counter expires ("ra" would otherwise
			// resolve to the always-true condition, which never loops).
			cond = CondF
		}
		ops := splitOperands(operands)
		if len(ops) != 2 {
			return Instr{}, fmt.Errorf("%s needs register, target", base)
		}
		reg, err := a.parseOperand(ops[0])
		if err != nil {
			return Instr{}, err
		}
		if reg.Mode != ModeDataReg {
			return Instr{}, fmt.Errorf("%s counter must be a data register", base)
		}
		tgt, err := a.parseTarget(ops[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: DBCC, Cond: cond, Size: Word, Src: reg, Dst: tgt}, nil
	}

	info, ok := mnemonics[base]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	if hasSize && !info.sized {
		return Instr{}, fmt.Errorf("%s does not take a size suffix", base)
	}
	if !hasSize {
		size = info.defSize
	}
	in := Instr{Op: info.op, Size: size}

	ops := splitOperands(operands)
	if len(ops) == 1 && ops[0] == "" {
		ops = nil
	}
	if len(ops) != info.operands {
		return Instr{}, fmt.Errorf("%s needs %d operand(s), got %d", base, info.operands, len(ops))
	}

	switch info.op {
	case SETMASK:
		in.Src, err = a.parseOperand(ops[0])
		if err != nil {
			return Instr{}, err
		}
		if err := validate(&in); err != nil {
			return Instr{}, err
		}
		return in, nil
	case JMP, JSR:
		tgt, err := a.parseTarget(ops[0])
		if err != nil {
			return Instr{}, err
		}
		in.Dst = tgt
	case BCAST:
		name := strings.TrimSpace(ops[0])
		br, ok := a.blocks[name]
		if !ok {
			return Instr{}, fmt.Errorf("bcast of unknown block %q", name)
		}
		in.Src = Operand{Mode: ModeLabel, Val: int32(br.Start)}
		in.Dst = Operand{Mode: ModeLabel, Val: int32(br.End)}
	default:
		if info.operands >= 1 {
			in.Src, err = a.parseOperand(ops[0])
			if err != nil {
				return Instr{}, err
			}
		}
		if info.operands >= 2 {
			in.Dst, err = a.parseOperand(ops[1])
			if err != nil {
				return Instr{}, err
			}
		}
		if info.operands == 1 { // single-operand ops use Dst
			in.Dst, in.Src = in.Src, Operand{}
		}
	}
	if err := validate(&in); err != nil {
		return Instr{}, err
	}
	return in, nil
}

func branchCond(base, prefix string) (Cond, bool) {
	if !strings.HasPrefix(base, prefix) {
		return 0, false
	}
	c, ok := branchConds[base[len(prefix):]]
	return c, ok
}

func splitSize(mnem string) (base string, size Size, hasSize bool, err error) {
	i := strings.LastIndexByte(mnem, '.')
	if i < 0 {
		return mnem, Word, false, nil
	}
	switch mnem[i+1:] {
	case "b":
		return mnem[:i], Byte, true, nil
	case "w":
		return mnem[:i], Word, true, nil
	case "l":
		return mnem[:i], Long, true, nil
	default:
		return "", 0, false, fmt.Errorf("bad size suffix in %q", mnem)
	}
}

// parseTarget parses a branch/jump target: a label or an absolute
// expression.
func (a *asm) parseTarget(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	if idx, ok := a.labels[s]; ok {
		return Operand{Mode: ModeLabel, Val: int32(idx)}, nil
	}
	if isIdent(s) {
		if _, isEqu := a.equs[s]; !isEqu {
			return Operand{}, fmt.Errorf("unknown label %q", s)
		}
	}
	v, err := a.evalExpr(s)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Mode: ModeAbs, Val: int32(v)}, nil
}

func (a *asm) parseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	// #imm
	if s[0] == '#' {
		v, err := a.evalExpr(s[1:])
		if err != nil {
			return Operand{}, err
		}
		return Operand{Mode: ModeImm, Val: int32(v)}, nil
	}
	// -(an)
	if strings.HasPrefix(s, "-(") && strings.HasSuffix(s, ")") {
		r, ok := addrReg(s[2 : len(s)-1])
		if !ok {
			return Operand{}, fmt.Errorf("bad predecrement operand %q", s)
		}
		return Operand{Mode: ModePreDec, Reg: r}, nil
	}
	// (an)+ and (an)
	if strings.HasPrefix(s, "(") {
		if strings.HasSuffix(s, ")+") {
			r, ok := addrReg(s[1 : len(s)-2])
			if !ok {
				return Operand{}, fmt.Errorf("bad postincrement operand %q", s)
			}
			return Operand{Mode: ModePostInc, Reg: r}, nil
		}
		if strings.HasSuffix(s, ")") {
			r, ok := addrReg(s[1 : len(s)-1])
			if !ok {
				return Operand{}, fmt.Errorf("bad indirect operand %q", s)
			}
			return Operand{Mode: ModeIndirect, Reg: r}, nil
		}
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	// d(an)
	if strings.HasSuffix(s, ")") {
		if i := strings.LastIndexByte(s, '('); i > 0 {
			r, ok := addrReg(s[i+1 : len(s)-1])
			if !ok {
				return Operand{}, fmt.Errorf("bad displacement operand %q", s)
			}
			d, err := a.evalExpr(s[:i])
			if err != nil {
				return Operand{}, err
			}
			if d < -32768 || d > 32767 {
				return Operand{}, fmt.Errorf("displacement %d out of 16-bit range", d)
			}
			return Operand{Mode: ModeDisp, Reg: r, Val: int32(d)}, nil
		}
	}
	// registers
	if r, ok := dataReg(s); ok {
		return Operand{Mode: ModeDataReg, Reg: r}, nil
	}
	if r, ok := addrReg(s); ok {
		return Operand{Mode: ModeAddrReg, Reg: r}, nil
	}
	// absolute address expression
	if isIdent(s) {
		if _, isEqu := a.equs[s]; !isEqu {
			return Operand{}, fmt.Errorf("unknown symbol %q", s)
		}
	}
	v, err := a.evalExpr(s)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Mode: ModeAbs, Val: int32(v)}, nil
}

func dataReg(s string) (uint8, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) == 2 && s[0] == 'd' && s[1] >= '0' && s[1] <= '7' {
		return s[1] - '0', true
	}
	return 0, false
}

func addrReg(s string) (uint8, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "sp" {
		return 7, true
	}
	if len(s) == 2 && s[0] == 'a' && s[1] >= '0' && s[1] <= '7' {
		return s[1] - '0', true
	}
	return 0, false
}

// expression evaluator ------------------------------------------------

// evalExpr evaluates a constant expression over numbers and .equ names
// with + - * / % ( ) and unary minus.
func (a *asm) evalExpr(s string) (int64, error) {
	p := &exprParser{src: s, equs: a.equs}
	v, err := p.parseAddSub()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing junk in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	src  string
	pos  int
	equs map[string]int64
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) parseAddSub() (int64, error) {
	v, err := p.parseMulDiv()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseMulDiv()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseMulDiv()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseMulDiv() (int64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= r
		case '%':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseUnary() (int64, error) {
	switch p.peek() {
	case '-':
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case '(':
		p.pos++
		v, err := p.parseAddSub()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')' in expression %q", p.src)
		}
		p.pos++
		return v, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression %q", p.src)
	}
	c := p.src[p.pos]
	// $hex
	if c == '$' {
		start := p.pos + 1
		end := start
		for end < len(p.src) && isHexDigit(p.src[end]) {
			end++
		}
		if end == start {
			return 0, fmt.Errorf("bad hex literal in %q", p.src)
		}
		p.pos = end
		v, err := strconv.ParseInt(p.src[start:end], 16, 64)
		return v, err
	}
	// decimal or 0x hex
	if c >= '0' && c <= '9' {
		start := p.pos
		end := start
		if strings.HasPrefix(p.src[start:], "0x") || strings.HasPrefix(p.src[start:], "0X") {
			end = start + 2
			for end < len(p.src) && isHexDigit(p.src[end]) {
				end++
			}
		} else {
			for end < len(p.src) && p.src[end] >= '0' && p.src[end] <= '9' {
				end++
			}
		}
		p.pos = end
		v, err := strconv.ParseInt(p.src[start:end], 0, 64)
		return v, err
	}
	// identifier
	start := p.pos
	end := start
	for end < len(p.src) && isIdentByte(p.src[end]) {
		end++
	}
	if end == start {
		return 0, fmt.Errorf("bad expression %q", p.src)
	}
	name := p.src[start:end]
	p.pos = end
	v, ok := p.equs[name]
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", name)
	}
	return v, nil
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.'
}

// validation and size computation --------------------------------------

func validate(in *Instr) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%s: %s", in.Op, fmt.Sprintf(format, args...))
	}
	switch in.Op {
	case MOVEA, ADDA, SUBA, CMPA:
		if in.Dst.Mode != ModeAddrReg {
			return bad("destination must be an address register")
		}
		if in.Size == Byte {
			return bad("byte size not allowed")
		}
	case MOVEQ:
		if in.Src.Mode != ModeImm || in.Dst.Mode != ModeDataReg {
			return bad("needs #imm, dn")
		}
		if in.Src.Val < -128 || in.Src.Val > 127 {
			return bad("immediate %d out of range -128..127", in.Src.Val)
		}
	case LEA:
		if !in.Src.IsMem() && in.Src.Mode != ModeAbs {
			return bad("source must be a memory effective address")
		}
		if in.Src.Mode == ModePostInc || in.Src.Mode == ModePreDec {
			return bad("(an)+ and -(an) are not valid LEA sources")
		}
		if in.Dst.Mode != ModeAddrReg {
			return bad("destination must be an address register")
		}
	case ADDQ, SUBQ:
		if in.Src.Mode != ModeImm || in.Src.Val < 1 || in.Src.Val > 8 {
			return bad("immediate must be 1..8")
		}
	case ADDI, SUBI, CMPI, ANDI, ORI, EORI:
		if in.Src.Mode != ModeImm {
			return bad("source must be immediate")
		}
		if in.Dst.Mode == ModeAddrReg {
			return bad("address register destination not allowed")
		}
	case MULU, MULS, DIVU:
		if in.Dst.Mode != ModeDataReg {
			return bad("destination must be a data register")
		}
		if in.Size != Word {
			return bad("only word size is defined")
		}
	case LSL, LSR, ASL, ASR, ROL, ROR:
		if in.Dst.Mode != ModeDataReg {
			return bad("register shifts only (memory shifts unsupported)")
		}
		switch in.Src.Mode {
		case ModeImm:
			if in.Src.Val < 1 || in.Src.Val > 8 {
				return bad("immediate shift count must be 1..8")
			}
		case ModeDataReg:
		default:
			return bad("count must be #imm or dn")
		}
	case SWAP, EXT:
		if in.Dst.Mode != ModeDataReg {
			return bad("operand must be a data register")
		}
	case EXG:
		okSrc := in.Src.Mode == ModeDataReg || in.Src.Mode == ModeAddrReg
		okDst := in.Dst.Mode == ModeDataReg || in.Dst.Mode == ModeAddrReg
		if !okSrc || !okDst {
			return bad("operands must be registers")
		}
	case CLR, NOT, NEG, TST:
		if in.Dst.Mode == ModeAddrReg || in.Dst.Mode == ModeImm {
			return bad("bad operand mode")
		}
	case BTST, BSET, BCLR, BCHG:
		if in.Src.Mode != ModeDataReg && in.Src.Mode != ModeImm {
			return bad("bit number must be dn or #imm")
		}
		if in.Dst.Mode == ModeAddrReg || in.Dst.Mode == ModeImm {
			return bad("bad destination mode")
		}
	case SETMASK:
		if in.Src.Mode != ModeImm && in.Src.Mode != ModeDataReg {
			return bad("mask must be #imm or dn")
		}
	case MOVE:
		if in.Dst.Mode == ModeImm {
			return bad("cannot move to an immediate")
		}
		if in.Dst.Mode == ModeAddrReg {
			return bad("use movea for address register destinations")
		}
	case ADD, SUB, AND, OR, EOR, CMP:
		if in.Dst.Mode == ModeImm {
			return bad("bad destination")
		}
		if in.Op != CMP && in.Dst.Mode == ModeAddrReg {
			return bad("use the address-register form (adda/suba)")
		}
		if in.Src.IsMem() && in.Dst.IsMem() {
			return bad("memory-to-memory form not supported; go through a register")
		}
		if (in.Op == AND || in.Op == OR || in.Op == EOR) && in.Src.Mode == ModeAddrReg {
			return bad("address register source not allowed")
		}
	}
	// Two device accesses in one instruction would break blocking
	// re-execution; the CPU enforces this at run time, but catch the
	// only assemble-time-visible case (two absolute operands) early.
	return nil
}

// extWords returns the number of extension words an operand occupies.
func extWords(o Operand, sz Size) uint8 {
	switch o.Mode {
	case ModeDisp:
		return 1
	case ModeAbs:
		if uint32(o.Val) > 0xFFFF {
			return 2 // abs.l
		}
		return 1 // abs.w
	case ModeImm:
		if sz == Long {
			return 2
		}
		return 1
	}
	return 0
}

// instrWords computes the instruction length in 16-bit words, which
// drives instruction-fetch timing.
func instrWords(in *Instr) uint8 {
	switch in.Op {
	case NOP, RTS, SWAP, EXG, EXT, MOVEQ, HALT:
		return 1
	case BCC:
		return 1 // short (byte-displacement) branch
	case DBCC:
		return 2
	case JMP, JSR:
		if in.Dst.Mode == ModeLabel {
			return 2 // abs.w target
		}
		return 1 + extWords(in.Dst, Word)
	case BCAST, SETMASK:
		return 2 // modeled as move.w #imm, (fetch-unit register)
	case BTST, BSET, BCLR, BCHG:
		w := uint8(1)
		if in.Src.Mode == ModeImm {
			w++
		}
		return w + extWords(in.Dst, Byte)
	case ADDQ, SUBQ:
		return 1 + extWords(in.Dst, in.Size) // immediate lives in the opcode
	case LSL, LSR, ASL, ASR, ROL, ROR:
		return 1 // count in opcode or register
	}
	w := uint8(1)
	w += extWords(in.Src, in.Size)
	w += extWords(in.Dst, in.Size)
	return w
}
