package m68k

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; a small loop
		.equ    COUNT, 4
start:	moveq   #COUNT, d0
loop:	add.w   d0, d1
		dbra    d0, loop
		halt
	`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Instrs) != 4 {
		t.Fatalf("got %d instructions, want 4", len(p.Instrs))
	}
	if p.Labels["start"] != 0 || p.Labels["loop"] != 1 {
		t.Errorf("labels = %v", p.Labels)
	}
	if p.Instrs[0].Op != MOVEQ || p.Instrs[0].Src.Val != 4 {
		t.Errorf("instr 0 = %+v", p.Instrs[0])
	}
	db := p.Instrs[2]
	if db.Op != DBCC || db.Cond != CondF || db.Dst.Val != 1 {
		t.Errorf("dbra = %+v", db)
	}
}

func TestAssembleOperandModes(t *testing.T) {
	cases := []struct {
		src  string
		mode AddrMode
		reg  uint8
		val  int32
	}{
		{"move.w d3, d0", ModeDataReg, 3, 0},
		{"move.w a5, d0", ModeAddrReg, 5, 0},
		{"move.w (a2), d0", ModeIndirect, 2, 0},
		{"move.w (a2)+, d0", ModePostInc, 2, 0},
		{"move.w -(a2), d0", ModePreDec, 2, 0},
		{"move.w 16(a2), d0", ModeDisp, 2, 16},
		{"move.w -4(a2), d0", ModeDisp, 2, -4},
		{"move.w #42, d0", ModeImm, 0, 42},
		{"move.w #-1, d0", ModeImm, 0, -1},
		{"move.w $1000, d0", ModeAbs, 0, 0x1000},
		{"move.w (sp)+, d0", ModePostInc, 7, 0},
	}
	for _, tc := range cases {
		p, err := Assemble(tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		o := p.Instrs[0].Src
		if o.Mode != tc.mode || o.Reg != tc.reg || o.Val != tc.val {
			t.Errorf("%s: got %+v, want mode=%d reg=%d val=%d", tc.src, o, tc.mode, tc.reg, tc.val)
		}
	}
}

func TestAssembleExpressions(t *testing.T) {
	p, err := Assemble(`
		.equ  BASE, $1000
		.equ  N, 8
		.equ  COLBYTES, N*2
		move.w  BASE+2*COLBYTES, d0
		move.w  #(N-1), d1
		move.w  #N*N/2, d2
		move.w  #-N, d3
	`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if got := p.Instrs[0].Src.Val; got != 0x1000+32 {
		t.Errorf("abs expr = %d, want %d", got, 0x1000+32)
	}
	if got := p.Instrs[1].Src.Val; got != 7 {
		t.Errorf("#(N-1) = %d, want 7", got)
	}
	if got := p.Instrs[2].Src.Val; got != 32 {
		t.Errorf("#N*N/2 = %d, want 32", got)
	}
	if got := p.Instrs[3].Src.Val; got != -8 {
		t.Errorf("#-N = %d, want -8", got)
	}
}

func TestAssembleBlocksAndBcast(t *testing.T) {
	p, err := Assemble(`
		bcast   work
		halt
		.block  work
		.region mult
		mulu.w  d2, d0
		add.w   d0, (a1)+
		.endblock
	`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	br, ok := p.Blocks["work"]
	if !ok {
		t.Fatal("block not recorded")
	}
	if br.Start != 2 || br.End != 4 {
		t.Errorf("block range = %+v, want [2,4)", br)
	}
	bc := p.Instrs[0]
	if bc.Op != BCAST || bc.Src.Val != 2 || bc.Dst.Val != 4 {
		t.Errorf("bcast = %+v", bc)
	}
	if p.Instrs[2].Region != RegionMult {
		t.Errorf("block body region = %v, want mult", p.Instrs[2].Region)
	}
	if got := p.WordsIn(br); got != 2 {
		t.Errorf("WordsIn = %d, want 2", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"bogus d0, d1", "unknown mnemonic"},
		{"move.w d0", "needs 2 operand"},
		{"move.x d0, d1", "bad size suffix"},
		{"bra nowhere", "unknown label"},
		{"moveq #500, d0", "out of range"},
		{"addq.w #9, d0", "must be 1..8"},
		{"mulu.l d1, d0", "only word size"},
		{"mulu.w d1, (a0)", "destination must be a data register"},
		{"move.w d0, a1", "use movea"},
		{"add.w (a0), (a1)", "memory-to-memory"},
		{"lea (a0)+, a1", "not valid LEA sources"},
		{"bcast nothing", "unknown block"},
		{"dbra a0, x\nx: nop", "must be a data register"},
		{".block b\nnop", "unterminated"},
		{"lsl.w #12, d0", "must be 1..8"},
		{"move.w #UNDEF_SYM, d0", "undefined symbol"},
		{"l: nop\nl: nop", "duplicate label"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got none", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestInstrWords(t *testing.T) {
	cases := []struct {
		src  string
		want uint8
	}{
		{"nop", 1},
		{"move.w d0, d1", 1},
		{"move.w #5, d1", 2},
		{"move.l #5, d1", 3},
		{"move.w 8(a0), d1", 2},
		{"move.w 8(a0), 4(a1)", 3},
		{"move.w $100, d1", 2},
		{"move.w $F00000, d1", 3},
		{"addq.w #4, d0", 1},
		{"addi.w #100, d0", 2},
		{"lsl.w #3, d0", 1},
		{"dbra d0, x\nx: nop", 2},
		{"bra x\nnop\nx: nop", 1}, // short forward branch
		{"bra x\nx: nop", 2},      // branch to next instr needs the word form
		{"moveq #1, d0", 1},
	}
	for _, tc := range cases {
		p, err := Assemble(tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if got := p.Instrs[0].Words; got != tc.want {
			t.Errorf("%s: words = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		.equ NET, $F10000
start:	movea.l #NET, a0
		move.w  (a1)+, d0
		mulu.w  d2, d0
		add.w   d0, 6(a2)
		lsr.w   #8, d0
		beq     start
		jmp     start
		halt
	`
	p := MustAssemble(src)
	dis := p.Disassemble()
	for _, want := range []string{"movea.l", "mulu.w", "(a1)+", "6(a2)", "lsr.w", "beq", "jmp", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	// Re-assembling each rendered instruction (with labels resolved to
	// indices) is not generally possible, but the rendering must be
	// stable and non-empty for every instruction.
	for i, in := range p.Instrs {
		if in.String() == "" {
			t.Errorf("instr %d renders empty", i)
		}
	}
}

func TestSplitOperandsParenComma(t *testing.T) {
	got := splitOperands("8(a0), d1")
	if len(got) != 2 || got[0] != "8(a0)" || got[1] != "d1" {
		t.Errorf("splitOperands = %q", got)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("not an instruction at all ###")
}
