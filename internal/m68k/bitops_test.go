package m68k

import (
	"testing"
	"testing/quick"
)

func TestBitOpsOnRegisters(t *testing.T) {
	c := run(t, `
		moveq   #0, d0
		bset    #3, d0       ; d0 = 8
		bset    #0, d0       ; d0 = 9
		bchg    #3, d0       ; d0 = 1
		bclr    #0, d0       ; d0 = 0
		moveq   #5, d1
		btst    #2, d1       ; bit set: Z=0
		halt
	`)
	if c.D[0] != 0 {
		t.Errorf("d0 = %d, want 0", c.D[0])
	}
	if c.Z {
		t.Error("btst of a set bit left Z set")
	}
}

func TestBitOpsZSemantics(t *testing.T) {
	// Z reflects the tested bit BEFORE modification.
	c := run(t, `
		moveq   #0, d0
		bset    #4, d0       ; bit was clear: Z=1 (and stays from bset)
		halt
	`)
	if !c.Z {
		t.Error("bset of a clear bit should set Z")
	}
	if c.D[0] != 16 {
		t.Errorf("d0 = %d, want 16", c.D[0])
	}
}

func TestBitOpsRegisterModulo32(t *testing.T) {
	c := run(t, `
		moveq   #0, d0
		moveq   #33, d1      ; 33 mod 32 = 1
		bset    d1, d0
		halt
	`)
	if c.D[0] != 2 {
		t.Errorf("d0 = %d, want 2 (bit 33 mod 32)", c.D[0])
	}
}

func TestBitOpsOnMemoryAreByteSizedModulo8(t *testing.T) {
	c := run(t, `
		.equ X, $2000
		move.b  #0, X
		bset    #9, X        ; 9 mod 8 = 1
		bset    #0, X
		bchg    #1, X        ; clears bit 1 again
		halt
	`)
	v, _ := c.Mem.Read(0x2000, Byte)
	if v != 1 {
		t.Errorf("mem = %d, want 1", v)
	}
}

func TestBitOpProperty(t *testing.T) {
	// bset then bclr of the same bit restores the value; bchg twice
	// likewise.
	f := func(v uint32, bit uint8) bool {
		b := uint32(bit) % 32
		p := MustAssemble(`
			bset    d1, d0
			bclr    d1, d0
			bchg    d1, d2
			bchg    d1, d2
			halt
		`)
		c := NewCPU(p, NewMemory(256))
		c.D[0] = v
		c.D[1] = b
		c.D[2] = v
		if st := c.Run(10); st != StatusHalted {
			return false
		}
		return c.D[0] == v&^(1<<b) && c.D[2] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitOpOnDeviceRejected(t *testing.T) {
	p := MustAssemble(`
		movea.l #$F10000, a0
		bset    #1, (a0)
		halt
	`)
	c := NewCPU(p, NewMemory(256))
	c.Dev = nullDev{}
	if st := c.Run(10); st != StatusError {
		t.Errorf("bit RMW on device: status %v, want error", st)
	}
}

type nullDev struct{}

func (nullDev) Load(addr uint32, sz Size, clock int64) (uint32, int64, bool) { return 0, 0, true }
func (nullDev) Store(addr uint32, sz Size, val uint32, clock int64) (int64, bool) {
	return 0, true
}

func TestMulsSigned(t *testing.T) {
	c := run(t, `
		move.w  #-3, d0
		move.w  #7, d1
		muls.w  d1, d0       ; -21
		halt
	`)
	if int32(c.D[0]) != -21 {
		t.Errorf("muls = %d, want -21", int32(c.D[0]))
	}
}

func TestMulsCyclesPattern(t *testing.T) {
	// MULS timing counts 01/10 boundaries of src<<1: 0x0000 has none
	// (38 cycles); 0x5555 alternates everywhere (38+2*16).
	if got := MulsCycles(0); got != 38 {
		t.Errorf("MulsCycles(0) = %d", got)
	}
	if got := MulsCycles(0x5555); got != 38+2*16 {
		t.Errorf("MulsCycles(0x5555) = %d, want 70", got)
	}
}

func TestSetmaskAssemblesAndReports(t *testing.T) {
	p := MustAssemble("setmask #5\n halt")
	c := NewCPU(p, NewMemory(256))
	if st := c.Step(); st != StatusSetMask {
		t.Fatalf("status = %v, want setmask", st)
	}
	if c.LastMask != 5 {
		t.Errorf("LastMask = %d", c.LastMask)
	}
	if st := c.Step(); st != StatusHalted {
		t.Errorf("second step = %v", st)
	}
}

func TestPostIncTwiceSameRegister(t *testing.T) {
	// move.w (a0)+, (a0)+ copies mem[a0] to mem[a0+2] and bumps a0 by 4.
	c := run(t, `
		.equ BUF, $1000
		movea.l #BUF, a0
		move.w  #1234, BUF
		move.w  (a0)+, (a0)+
		halt
	`)
	v, _ := c.Mem.Read(0x1002, Word)
	if v != 1234 {
		t.Errorf("copied value = %d", v)
	}
	if c.A[0] != 0x1004 {
		t.Errorf("a0 = $%X, want $1004", c.A[0])
	}
}

func TestNestedSubroutines(t *testing.T) {
	c := run(t, `
		moveq   #1, d0
		jsr     outer
		halt
outer:	addq.w  #2, d0
		jsr     inner
		addq.w  #4, d0
		rts
inner:	addq.w  #8, d0
		rts
	`)
	if got := c.D[0] & 0xFF; got != 15 {
		t.Errorf("d0 = %d, want 15", got)
	}
}

func TestNegAndNotFlags(t *testing.T) {
	c := run(t, `
		moveq   #0, d0
		neg.w   d0           ; 0: Z=1, C=0
		halt
	`)
	if !c.Z || c.C {
		t.Errorf("neg 0: Z=%v C=%v", c.Z, c.C)
	}
	c = run(t, `
		moveq   #1, d0
		neg.w   d0           ; $FFFF: N=1, C=1
		halt
	`)
	if !c.N || !c.C || c.D[0]&0xFFFF != 0xFFFF {
		t.Errorf("neg 1: N=%v C=%v d0=%x", c.N, c.C, c.D[0]&0xFFFF)
	}
}

func TestFixedMulCyclesAblation(t *testing.T) {
	src := "mulu.w d1, d0\n halt"
	timed := func(fixed int64, operand uint32) int64 {
		c := NewCPU(MustAssemble(src), NewMemory(256))
		c.FixedMulCycles = fixed
		c.D[1] = operand
		if st := c.Run(10); st != StatusHalted {
			t.Fatalf("status %v", st)
		}
		return c.Clock
	}
	// Data-dependent: different operands, different times.
	if timed(0, 0x0000) == timed(0, 0xFFFF) {
		t.Error("data dependence missing")
	}
	// Fixed: identical times regardless of data.
	if timed(54, 0x0000) != timed(54, 0xFFFF) {
		t.Error("fixed multiply time still data-dependent")
	}
}
