package m68k

// Superinstruction tier: the second interpreter tier built on top of
// the execution table. The basic-block scanner splits the resolved
// program into straight-line runs, pre-sums each run's fixed cycle
// costs, and the compiler lowers every instruction into a pre-decoded
// micro-op (superOp) specialized for the forms the PASM workloads
// execute in their inner loops — memory/register moves, read-modify-
// write arithmetic, register MULU (including fused runs of identical
// multiplies, the paper's muls chains), and the DBcc/Bcc loop
// terminators. Everything else falls back to the instruction's
// exec-table handler, so the tier is a strict refinement: cycle
// counts, flags, memory traffic, refresh interference, device
// blocking/retry, trace callbacks and error messages are identical to
// the Step path, which the three-way differential tests prove.
//
// Data-dependent costs stay symbolic: MULU's 38+2*ones(source) time,
// DBcc/Bcc branch outcomes, wait states and DRAM refresh are all
// evaluated per execution against live machine state. Only the
// statically known parts (baseCycles, EA decode, dispatch) are fused
// at compile time.
//
// The tier is driven from CPU.Run (and the PASM lockstep executor via
// ExecSuperAt); CPU.Step is untouched. CPU.DisableSuperinstructions
// forces Run back onto the per-Step path for A/B testing.

// BasicBlock is one straight-line run found by the block scanner:
// control enters only at Start and leaves only from End-1 (a device
// block or error can suspend execution mid-block; the engine then
// re-enters at the suspended PC, which is why micro-ops are indexed
// per instruction rather than per block). FixedCycles pre-sums the
// data-independent static cycle costs (baseCycles) of the block.
type BasicBlock struct {
	Start, End  int
	FixedCycles int64
}

// Len returns the number of instructions in the block.
func (b BasicBlock) Len() int { return b.End - b.Start }

// scanBlocks partitions a program into basic blocks. Leaders are the
// entry point, every branch/jump/call target, every instruction after
// a control transfer or engine-visible instruction (HALT, BCAST,
// SETMASK stop CPU.Run), and the boundaries of declared SIMD
// broadcast blocks. The returned blocks tile [0, len(Instrs)) exactly
// — the fuzz target asserts this partition invariant.
func scanBlocks(p *Program) []BasicBlock {
	n := len(p.Instrs)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n+1)
	leader[0] = true
	leader[n] = true
	mark := func(i int) {
		if i >= 0 && i <= n {
			leader[i] = true
		}
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case BCC, DBCC, JSR, JMP:
			if in.Dst.Mode == ModeLabel {
				mark(int(in.Dst.Val))
			}
			mark(i + 1)
		case RTS, HALT, BCAST, SETMASK:
			mark(i + 1)
		}
	}
	for _, b := range p.Blocks {
		mark(b.Start)
		mark(b.End)
	}
	var blocks []BasicBlock
	start := 0
	for i := 1; i <= n; i++ {
		if !leader[i] {
			continue
		}
		var fixed int64
		for j := start; j < i; j++ {
			fixed += baseCycles(&p.Instrs[j])
		}
		blocks = append(blocks, BasicBlock{Start: start, End: i, FixedCycles: fixed})
		start = i
	}
	return blocks
}

// BasicBlocks returns the scanner's partition of the program (built
// lazily with the superinstruction table and shared read-only).
func (p *Program) BasicBlocks() []BasicBlock {
	p.super()
	return p.sblocks
}

// BlockIndexOf returns the index (into BasicBlocks) of the basic
// block containing instruction pc, or -1 when pc is out of range. The
// PASM segment-memoization layer uses it as the block component of
// its cache keys.
func (p *Program) BlockIndexOf(pc int) int {
	p.super()
	if pc < 0 || pc >= len(p.blockOf) {
		return -1
	}
	return int(p.blockOf[pc])
}

// Micro-op kinds. skGeneric dispatches the instruction's exec-table
// handler; the rest are specialized straight-line forms that commit
// inline. Specialized ops perform every failure check (device window,
// bounds, alignment) before mutating any state and fall back to the
// generic handler on trouble, which reproduces the reference bail/
// retry/error behaviour exactly.
const (
	skGeneric uint8 = iota
	skMoveRR        // MOVE Dn/An/#imm -> Dn
	skMoveMR        // MOVE <mem> -> Dn
	skMoveRM        // MOVE Dn/An/#imm -> <mem>
	skMoveaR        // MOVEA Dn/An/#imm -> An
	skMoveaM        // MOVEA <mem> -> An
	skMoveq         // MOVEQ #imm -> Dn
	skLea           // LEA (An)/d(An)/$abs -> An
	skClrD          // CLR Dn
	skClrM          // CLR <mem>
	skAluRR         // ADD/SUB/AND/OR/EOR (+I/Q forms) Dn/#imm -> Dn
	skAluMR         // same, <mem> source -> Dn
	skAluM          // same, Dn/#imm source -> <mem> (read-modify-write)
	skCmpR          // CMP/CMPI Dn/An/#imm, Dn
	skCmpM          // CMP <mem>, Dn
	skAddaR         // ADDA/SUBA Dn/An/#imm -> An
	skAddaM         // ADDA/SUBA <mem> -> An
	skQuickA        // ADDQ/SUBQ #imm -> An
	skTstD          // TST Dn
	skTstM          // TST <mem>
	skMulu          // MULU Dn,Dn
	skMuluRun       // first/interior op of a fused run of identical MULUs
	skDBcc          // DBcc Dn,label
	skBcc           // Bcc label
	skJmp           // JMP label
	skNop           // NOP
)

// superOp is one instruction's pre-decoded micro-op. Field use is
// per-kind: reg is the primary (destination or counter) register,
// mreg doubles as the memory base register or the register source,
// imm as the immediate/quick value, disp as displacement or absolute
// address, inc as the post-increment/pre-decrement byte step, acc as
// the memory operand's bus-access count. fn/in always carry the
// exec-table fallback.
type superOp struct {
	kind    uint8
	size    Size
	cond    Cond
	op8     Op
	srcMode AddrMode
	memMode AddrMode
	reg     uint8
	mreg    uint8
	region  RegionID
	inc     int32
	disp    int32
	imm     uint32
	base    int64
	words   int64
	acc     int64
	target  int32
	runLen  int32
	loopEnd int32 // self-loop block: index of the terminating DBcc (0 = none)
	kern    bool  // self-loop block matches the element-kernel shape (runKernelLoop)
	fn      handler
	in      *Instr
}

// super returns the program's superinstruction table, building it on
// first use (like the execution table, it is immutable and shared by
// every CPU running the program).
func (p *Program) super() []superOp {
	p.supOnce.Do(func() {
		blocks := scanBlocks(p)
		p.sblocks = blocks
		p.blockOf = make([]int32, len(p.Instrs))
		for bi, b := range blocks {
			for i := b.Start; i < b.End; i++ {
				p.blockOf[i] = int32(bi)
			}
		}
		tab := p.table()
		sup := make([]superOp, len(p.Instrs))
		for i := range p.Instrs {
			sup[i] = compileOp(&p.Instrs[i], &tab[i])
		}
		// Fuse runs of identical register MULUs within a block (the
		// paper's artificial muls chains): the source register is not
		// written inside the run, so its data-dependent time is
		// computed once per execution of the run. Each member records
		// the run length remaining from itself, so execution may
		// resume mid-run (Run budget exhaustion) without special
		// cases.
		for _, b := range blocks {
			i := b.Start
			for i < b.End {
				if sup[i].kind != skMulu || sup[i].mreg == sup[i].reg {
					i++
					continue
				}
				j := i
				for j+1 < b.End && sameMulu(&sup[i], &sup[j+1]) {
					j++
				}
				if j > i {
					for k := i; k <= j; k++ {
						sup[k].kind = skMuluRun
						sup[k].runLen = int32(j - k + 1)
					}
				}
				i = j + 1
			}
		}
		// Mark self-loop blocks — a block whose terminating DBcc
		// targets its own start and whose body lowers entirely to
		// specialized micro-ops — for the loop superinstruction
		// executor (runLoop), which interprets whole iterations
		// without per-instruction dispatch.
		for _, b := range blocks {
			e := b.End - 1
			if b.Len() < 2 || sup[e].kind != skDBcc || int(sup[e].target) != b.Start {
				continue
			}
			ok := true
			for k := b.Start; k < e; k++ {
				if !loopKind(sup[k].kind) {
					ok = false
					break
				}
			}
			if ok {
				sup[b.Start].loopEnd = int32(e)
				sup[b.Start].kern = kernelShape(sup, b.Start, e)
			}
		}
		p.sup = sup
	})
	return p.sup
}

// loopKind reports whether a micro-op kind may appear in the body of a
// loop superinstruction: every kind the runLoop executor inlines.
func loopKind(k uint8) bool {
	switch k {
	case skMoveRR, skMoveMR, skMoveRM, skMoveaR, skMoveq, skLea,
		skClrD, skClrM, skAluRR, skAluMR, skAluM, skCmpR, skAddaR,
		skQuickA, skTstD, skMulu, skMuluRun, skNop:
		return true
	}
	return false
}

// kernelShape reports whether the self-loop block [s, e] (e = its
// DBRA) is the canonical element kernel every matmul variant compiles
// to:
//
//	move.w (aS)+, dP
//	mulu.w dR, dP
//	add.w  dP, (aD)+
//	mulu.w dR, dT ...   (optional muls chain, all to one register)
//	dbra   dC, <s>
//
// The shape gives runKernelLoop three loop invariants the generic
// executor cannot use: the multiplier register dR is never written
// inside the loop (its data-dependent MULU time is hoisted), the DBRA
// condition is F (no flag reads anywhere, so interior flag writes are
// dead and only the last writer per iteration is materialized), and
// every register the loop touches is distinct (locals cannot alias).
func kernelShape(sup []superOp, s, e int) bool {
	if e < s+3 {
		return false
	}
	m0, m1, m2, db := &sup[s], &sup[s+1], &sup[s+2], &sup[e]
	if m0.kind != skMoveMR || m0.memMode != ModePostInc || m0.size != Word {
		return false
	}
	if m1.kind != skMulu || m1.reg != m0.reg || m1.mreg == m0.reg {
		return false
	}
	if m2.kind != skAluM || m2.op8 != ADD || m2.size != Word ||
		m2.memMode != ModePostInc || m2.srcMode != ModeDataReg ||
		m2.reg != m0.reg || m2.mreg == m0.mreg {
		return false
	}
	if db.cond != CondF || db.reg == m0.reg || db.reg == m1.mreg {
		return false
	}
	if m1.mreg == db.reg { // multiplier must survive the counter update
		return false
	}
	for k := s; k <= e; k++ {
		if sup[k].region != m0.region {
			return false
		}
	}
	if s+3 < e { // muls chain: MULUs from the same source to one register
		t := sup[s+3].reg
		if t == m0.reg || t == m1.mreg || t == db.reg {
			return false
		}
		for k := s + 3; k < e; k++ {
			tk := &sup[k]
			if (tk.kind != skMulu && tk.kind != skMuluRun) ||
				tk.mreg != m1.mreg || tk.reg != t {
				return false
			}
		}
	}
	return true
}

// MuluRun describes a fused run of identical register MULUs: Len
// consecutive `MULU Src,Dst` instructions (Src never written inside
// the run), each costing Base static cycles plus the data-dependent
// multiply time of Src's low word, all charged to Region. The PASM
// SIMD executor batches such runs through the lockstep queue.
type MuluRun struct {
	Len    int
	Src    uint8
	Dst    uint8
	Base   int64
	Words  int
	Region RegionID
}

// MuluRunAt reports the fused MULU run extending from instruction idx
// (Len counts members from idx to the run's end). ok is false when
// idx is not part of a fused run.
func (p *Program) MuluRunAt(idx int) (MuluRun, bool) {
	sup := p.super()
	if idx < 0 || idx >= len(sup) || sup[idx].kind != skMuluRun {
		return MuluRun{}, false
	}
	op := &sup[idx]
	return MuluRun{
		Len: int(op.runLen), Src: op.mreg, Dst: op.reg,
		Base: op.base, Words: int(op.words), Region: op.region,
	}, true
}

// sameMulu reports whether b is another member of a's MULU run:
// identical register pair, accounting region and fetch length.
func sameMulu(a, b *superOp) bool {
	return b.kind == skMulu && b.mreg == a.mreg && b.reg == a.reg &&
		b.region == a.region && b.words == a.words && b.base == a.base
}

// setMem pre-decodes a memory operand into the micro-op's address
// fields. Returns false for operands that are not memory references.
func setMem(op *superOp, o Operand, sz Size) bool {
	op.acc = 1
	if sz == Long {
		op.acc = 2
	}
	switch o.Mode {
	case ModeIndirect:
		op.memMode, op.mreg = ModeIndirect, o.Reg
	case ModePostInc:
		op.memMode, op.mreg = ModePostInc, o.Reg
		op.inc = incBytes(o.Reg, sz)
	case ModePreDec:
		op.memMode, op.mreg = ModePreDec, o.Reg
		op.inc = incBytes(o.Reg, sz)
	case ModeDisp:
		op.memMode, op.mreg = ModeDisp, o.Reg
		op.disp = o.Val
	case ModeAbs:
		op.memMode, op.disp = ModeAbs, o.Val
	default:
		return false
	}
	return true
}

// regOrImm reports whether an operand is a register or immediate
// source the specialized ops can read without a bus access.
func regOrImm(o Operand) bool {
	switch o.Mode {
	case ModeDataReg, ModeAddrReg, ModeImm:
		return true
	}
	return false
}

// compileOp lowers one instruction to its micro-op. Unhandled forms
// keep skGeneric and execute through the exec-table handler.
func compileOp(in *Instr, e *execEntry) superOp {
	op := superOp{
		kind: skGeneric, size: in.Size, cond: in.Cond, op8: in.Op,
		region: in.Region, base: e.base, words: e.words, fn: e.fn, in: in,
	}
	setSrc := func(o Operand) {
		op.srcMode, op.mreg, op.imm = o.Mode, o.Reg, uint32(o.Val)
	}
	switch in.Op {
	case NOP:
		op.kind = skNop
	case MOVE:
		switch {
		case regOrImm(in.Src) && in.Dst.Mode == ModeDataReg:
			op.kind = skMoveRR
			setSrc(in.Src)
			op.reg = in.Dst.Reg
		case in.Src.IsMem() && in.Dst.Mode == ModeDataReg:
			if setMem(&op, in.Src, in.Size) {
				op.kind = skMoveMR
				op.reg = in.Dst.Reg
			}
		case regOrImm(in.Src) && in.Dst.IsMem():
			srcMode, srcReg, srcImm := in.Src.Mode, in.Src.Reg, uint32(in.Src.Val)
			if setMem(&op, in.Dst, in.Size) {
				op.kind = skMoveRM
				op.srcMode, op.reg, op.imm = srcMode, srcReg, srcImm
			}
		}
	case MOVEA:
		if regOrImm(in.Src) {
			op.kind = skMoveaR
			setSrc(in.Src)
			op.reg = in.Dst.Reg
		} else if setMem(&op, in.Src, in.Size) {
			op.kind = skMoveaM
			op.reg = in.Dst.Reg
		}
	case MOVEQ:
		op.kind = skMoveq
		op.imm = uint32(in.Src.Val)
		op.reg = in.Dst.Reg
	case LEA:
		switch in.Src.Mode {
		case ModeIndirect, ModeDisp, ModeAbs:
			if setMem(&op, in.Src, Long) {
				op.kind = skLea
				op.reg = in.Dst.Reg
			}
		}
	case CLR:
		if in.Dst.Mode == ModeDataReg {
			op.kind = skClrD
			op.reg = in.Dst.Reg
		} else if setMem(&op, in.Dst, in.Size) {
			op.kind = skClrM
		}
	case ADD, SUB, AND, OR, EOR, ADDI, SUBI, ANDI, ORI, EORI:
		switch {
		case regOrImm(in.Src) && in.Dst.Mode == ModeDataReg:
			op.kind = skAluRR
			setSrc(in.Src)
			op.reg = in.Dst.Reg
		case in.Src.IsMem() && in.Dst.Mode == ModeDataReg:
			if setMem(&op, in.Src, in.Size) {
				op.kind = skAluMR
				op.reg = in.Dst.Reg
			}
		case regOrImm(in.Src) && in.Dst.IsMem():
			srcMode, srcReg, srcImm := in.Src.Mode, in.Src.Reg, uint32(in.Src.Val)
			if setMem(&op, in.Dst, in.Size) {
				op.kind = skAluM
				op.srcMode, op.reg, op.imm = srcMode, srcReg, srcImm
			}
		}
	case ADDQ, SUBQ:
		if in.Dst.Mode == ModeAddrReg {
			op.kind = skQuickA
			op.imm = uint32(in.Src.Val)
			op.reg = in.Dst.Reg
		} else if in.Dst.Mode == ModeDataReg {
			op.kind = skAluRR
			setSrc(in.Src)
			op.reg = in.Dst.Reg
		} else if setMem(&op, in.Dst, in.Size) {
			op.kind = skAluM
			op.srcMode, op.imm = ModeImm, uint32(in.Src.Val)
		}
	case CMP, CMPI:
		if in.Dst.Mode == ModeDataReg {
			if regOrImm(in.Src) {
				op.kind = skCmpR
				setSrc(in.Src)
				op.reg = in.Dst.Reg
			} else if setMem(&op, in.Src, in.Size) {
				op.kind = skCmpM
				op.reg = in.Dst.Reg
			}
		}
	case ADDA, SUBA:
		if regOrImm(in.Src) {
			op.kind = skAddaR
			setSrc(in.Src)
			op.reg = in.Dst.Reg
		} else if setMem(&op, in.Src, in.Size) {
			op.kind = skAddaM
			op.reg = in.Dst.Reg
		}
	case TST:
		if in.Dst.Mode == ModeDataReg {
			op.kind = skTstD
			op.reg = in.Dst.Reg
		} else if in.Dst.IsMem() && setMem(&op, in.Dst, in.Size) {
			op.kind = skTstM
		}
	case MULU:
		if in.Src.Mode == ModeDataReg && in.Dst.Mode == ModeDataReg {
			op.kind = skMulu
			op.mreg = in.Src.Reg
			op.reg = in.Dst.Reg
		}
	case DBCC:
		if in.Dst.Mode == ModeLabel {
			op.kind = skDBcc
			op.reg = in.Src.Reg
			op.target = in.Dst.Val
		}
	case BCC:
		if in.Dst.Mode == ModeLabel {
			op.kind = skBcc
			op.target = in.Dst.Val
		}
	case JMP:
		if in.Dst.Mode == ModeLabel {
			op.kind = skJmp
			op.target = in.Dst.Val
		}
	}
	return op
}

// superAddr resolves a micro-op's pre-decoded memory operand to an
// address (the pre-decrement form addresses below the register, which
// is only written back on success).
func (c *CPU) superAddr(op *superOp) uint32 {
	switch op.memMode {
	case ModeIndirect, ModePostInc:
		return c.A[op.mreg]
	case ModePreDec:
		return c.A[op.mreg] - uint32(op.inc)
	case ModeDisp:
		return uint32(int64(c.A[op.mreg]) + int64(op.disp))
	default: // ModeAbs
		return uint32(op.disp)
	}
}

// superIncDec applies a post-increment/pre-decrement register update
// after the access is certain to have completed.
func (c *CPU) superIncDec(op *superOp) {
	switch op.memMode {
	case ModePostInc:
		c.A[op.mreg] += uint32(op.inc)
	case ModePreDec:
		c.A[op.mreg] -= uint32(op.inc)
	}
}

// superSrc reads a register/immediate source operand (masked to
// size), mirroring opRead's register arms. reg is passed explicitly
// because kinds with a memory destination keep their source register
// in op.reg (op.mreg holds the address base), while register-only
// kinds keep it in op.mreg.
func (c *CPU) superSrc(op *superOp, reg uint8) uint32 {
	switch op.srcMode {
	case ModeDataReg:
		return mask(c.D[reg], op.size)
	case ModeAddrReg:
		return mask(c.A[reg], op.size)
	default: // ModeImm
		return mask(op.imm, op.size)
	}
}

// scommit finalizes a specialized micro-op (no staged state to
// commit; specialized ops apply register updates only on success).
func (c *CPU) scommit(op *superOp, pc int, cycles int64, next int) Status {
	c.Clock += cycles
	c.Regions[op.region] += cycles
	c.InstrCount++
	c.PC = next
	if c.Trace != nil {
		c.Trace(op.in, pc, c.Clock, cycles)
	}
	return StatusOK
}

// sfallback dispatches the instruction's exec-table handler: the
// generic micro-op, and the escape hatch specialized ops take before
// mutating state when they meet a device address or a memory fault,
// so blocking, retries and error text match the Step path exactly.
func (c *CPU) sfallback(op *superOp, fetch int64, next int) Status {
	c.lastLoadWasDev = false
	return op.fn(c, op.in, op.base+fetch, fetch, next)
}

// execSuperOp executes one micro-op. pc is the instruction's index
// (for trace callbacks), fetch the already-charged fetch penalty,
// next the fall-through PC. It mirrors handler semantics exactly; see
// the package comment for the equivalence argument.
func (c *CPU) execSuperOp(op *superOp, pc int, fetch int64, next int) Status {
	cycles := op.base + fetch
	switch op.kind {
	case skNop:
		return c.scommit(op, pc, cycles, next)

	case skMoveRR:
		v := c.superSrc(op, op.mreg)
		c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
		c.D[op.reg] = merge(c.D[op.reg], v, op.size)
		return c.scommit(op, pc, cycles, next)

	case skMoveMR:
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		v, err := c.Mem.Read(addr, op.size)
		if err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, v, false)
		}
		c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
		c.D[op.reg] = merge(c.D[op.reg], v, op.size)
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skMoveRM:
		v := c.superSrc(op, op.reg)
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		if err := c.Mem.Write(addr, op.size, v); err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, v, true)
		}
		c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skMoveaR:
		c.A[op.reg] = signExtTo32(c.superSrc(op, op.mreg), op.size)
		return c.scommit(op, pc, cycles, next)

	case skMoveaM:
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		v, err := c.Mem.Read(addr, op.size)
		if err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, v, false)
		}
		c.A[op.reg] = signExtTo32(v, op.size)
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skMoveq:
		v := op.imm
		c.D[op.reg] = v
		c.N, c.Z, c.V, c.C = v&0x80000000 != 0, v == 0, false, false
		return c.scommit(op, pc, cycles, next)

	case skLea:
		c.A[op.reg] = c.superAddr(op)
		return c.scommit(op, pc, cycles, next)

	case skClrD:
		c.D[op.reg] = merge(c.D[op.reg], 0, op.size)
		c.N, c.Z, c.V, c.C = false, true, false, false
		return c.scommit(op, pc, cycles, next)

	case skClrM:
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		if err := c.Mem.Write(addr, op.size, 0); err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, 0, true)
		}
		c.N, c.Z, c.V, c.C = false, true, false, false
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skAluRR:
		src := c.superSrc(op, op.mreg)
		old := mask(c.D[op.reg], op.size)
		r, f := aluOp(op.op8, old, src, op.size)
		c.D[op.reg] = merge(c.D[op.reg], r, op.size)
		c.applyFlags(f)
		return c.scommit(op, pc, cycles, next)

	case skAluMR:
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		src, err := c.Mem.Read(addr, op.size)
		if err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, src, false)
		}
		old := mask(c.D[op.reg], op.size)
		r, f := aluOp(op.op8, old, src, op.size)
		c.D[op.reg] = merge(c.D[op.reg], r, op.size)
		c.applyFlags(f)
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skAluM:
		src := c.superSrc(op, op.reg)
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next) // reference rejects device RMW
		}
		old, err := c.Mem.Read(addr, op.size)
		if err != nil {
			return c.sfallback(op, fetch, next)
		}
		r, f := aluOp(op.op8, old, src, op.size)
		if err := c.Mem.Write(addr, op.size, mask(r, op.size)); err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, 2*op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, old, false)
			c.MemWatch(addr, op.size, mask(r, op.size), true)
		}
		c.applyFlags(f)
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skCmpR:
		src := c.superSrc(op, op.mreg)
		dst := mask(c.D[op.reg], op.size)
		f := subFlags(dst, src, dst-src, op.size)
		f.setX = false
		c.applyFlags(f)
		return c.scommit(op, pc, cycles, next)

	case skCmpM:
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		src, err := c.Mem.Read(addr, op.size)
		if err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, src, false)
		}
		dst := mask(c.D[op.reg], op.size)
		f := subFlags(dst, src, dst-src, op.size)
		f.setX = false
		c.applyFlags(f)
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skAddaR:
		s32 := signExtTo32(c.superSrc(op, op.mreg), op.size)
		if op.op8 == ADDA {
			c.A[op.reg] += s32
		} else {
			c.A[op.reg] -= s32
		}
		return c.scommit(op, pc, cycles, next)

	case skAddaM:
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		v, err := c.Mem.Read(addr, op.size)
		if err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, v, false)
		}
		s32 := signExtTo32(v, op.size)
		if op.op8 == ADDA {
			c.A[op.reg] += s32
		} else {
			c.A[op.reg] -= s32
		}
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skQuickA:
		if op.op8 == ADDQ {
			c.A[op.reg] += op.imm
		} else {
			c.A[op.reg] -= op.imm
		}
		return c.scommit(op, pc, cycles, next)

	case skTstD:
		v := mask(c.D[op.reg], op.size)
		c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
		return c.scommit(op, pc, cycles, next)

	case skTstM:
		addr := c.superAddr(op)
		if addr >= DeviceBase {
			return c.sfallback(op, fetch, next)
		}
		v, err := c.Mem.Read(addr, op.size)
		if err != nil {
			return c.sfallback(op, fetch, next)
		}
		cycles += c.Mem.Penalty(c.Clock, op.acc)
		if c.MemWatch != nil {
			c.MemWatch(addr, op.size, v, false)
		}
		c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
		c.superIncDec(op)
		return c.scommit(op, pc, cycles, next)

	case skMulu, skMuluRun:
		src := mask(c.D[op.mreg], Word)
		if c.FixedMulCycles > 0 {
			cycles += c.FixedMulCycles
		} else {
			cycles += MuluCycles(uint16(src))
		}
		r := mask(c.D[op.reg], Word) * src
		c.D[op.reg] = r
		c.N, c.Z, c.V, c.C = r&0x80000000 != 0, r == 0, false, false
		return c.scommit(op, pc, cycles, next)

	case skDBcc:
		// Variant times rebuilt from the fetch penalty, mirroring
		// execDBcc (the static base is ignored).
		if c.condTrue(op.cond) {
			return c.scommit(op, pc, 12+fetch, next)
		}
		cnt := uint16(c.D[op.reg]) - 1
		c.D[op.reg] = merge(c.D[op.reg], uint32(cnt), Word)
		if cnt == 0xFFFF {
			return c.scommit(op, pc, 14+fetch, next)
		}
		return c.scommit(op, pc, 10+fetch, int(op.target))

	case skBcc:
		if c.condTrue(op.cond) {
			return c.scommit(op, pc, cycles, int(op.target))
		}
		if op.words == 2 {
			return c.scommit(op, pc, cycles+2, next)
		}
		return c.scommit(op, pc, cycles-2, next)

	case skJmp:
		return c.scommit(op, pc, cycles, int(op.target))

	default: // skGeneric
		return c.sfallback(op, fetch, next)
	}
}

// runSuper is the superinstruction execution engine behind CPU.Run:
// per-instruction dispatch through pre-decoded micro-ops, with fused
// runs of identical MULUs executed as one superinstruction. The fetch
// penalty is charged before each micro-op exactly as Step charges it
// (so a blocked instruction still advances the refresh phase), and
// the step budget counts executed instructions one-for-one with the
// Step path.
func (c *CPU) runSuper(maxSteps int64) Status {
	if c.Halted {
		return StatusHalted
	}
	if c.Err != nil {
		return StatusError
	}
	if c.sup == nil {
		c.sup = c.Prog.super()
	}
	sup := c.sup
	mem := c.Mem
	fetchMem := c.FetchFromMem
	var steps int64
	for steps < maxSteps {
		pc := c.PC
		if uint(pc) >= uint(len(sup)) {
			return c.Step() // out of range: identical error path
		}
		op := &sup[pc]
		if op.kind == skMuluRun && c.Trace == nil {
			// Fused run of identical MULUs: the source register is
			// invariant, so its data-dependent time is evaluated once;
			// per-instruction fetch penalties still walk the refresh
			// phase. Flags interior to the run are dead (each MULU
			// overwrites them; X is never touched), so only the final
			// NZVC are materialized.
			n := int64(op.runLen)
			if rem := maxSteps - steps; n > rem {
				n = rem
			}
			src := c.D[op.mreg] & 0xFFFF
			mt := c.FixedMulCycles
			if mt <= 0 {
				mt = MuluCycles(uint16(src))
			}
			per := op.base + mt
			clock := c.Clock
			d := c.D[op.reg]
			if fetchMem {
				for i := int64(0); i < n; i++ {
					clock += per + mem.Penalty(clock, op.words)
					d = (d & 0xFFFF) * src
				}
			} else {
				for i := int64(0); i < n; i++ {
					d = (d & 0xFFFF) * src
				}
				clock += per * n
			}
			c.Regions[op.region] += clock - c.Clock
			c.Clock = clock
			c.InstrCount += n
			c.PC = pc + int(n)
			c.D[op.reg] = d
			c.N, c.Z, c.V, c.C = d&0x80000000 != 0, d == 0, false, false
			steps += n
			continue
		}
		if op.loopEnd != 0 && c.Trace == nil && c.MemWatch == nil {
			if op.kern {
				if n := c.runKernelLoop(sup, pc, int(op.loopEnd), maxSteps-steps); n > 0 {
					steps += n
					continue
				}
				// Partial iteration (budget, fault or device): fall
				// through to the per-member loop executor.
			}
			if n := c.runLoop(sup, pc, int(op.loopEnd), maxSteps-steps); n > 0 {
				steps += n
				continue
			}
			// The first member needs the slow path right now (device
			// address or fault): dispatch it below.
		}
		var fetch int64
		if fetchMem {
			fetch = mem.Penalty(c.Clock, op.words)
		}
		st := c.execSuperOp(op, pc, fetch, pc+1)
		steps++
		if st != StatusOK {
			return st
		}
	}
	return StatusOK
}

// memOK reports whether a direct data access is aligned and in bounds
// (the fast-path guard mirroring Memory.check; any failure bails to
// the slow path, which reproduces the exact error).
func memOK(n uint32, addr uint32, sz Size) bool {
	if sz != Byte && addr&1 != 0 {
		return false
	}
	end := addr + sz.Bytes()
	return end >= addr && end <= n
}

// memLoad reads big-endian data directly (caller has run memOK).
func memLoad(data []byte, addr uint32, sz Size) uint32 {
	switch sz {
	case Byte:
		return uint32(data[addr])
	case Word:
		return uint32(data[addr])<<8 | uint32(data[addr+1])
	default:
		return uint32(data[addr])<<24 | uint32(data[addr+1])<<16 |
			uint32(data[addr+2])<<8 | uint32(data[addr+3])
	}
}

// memStore writes big-endian data directly (caller has run memOK).
func memStore(data []byte, addr uint32, sz Size, val uint32) {
	switch sz {
	case Byte:
		data[addr] = byte(val)
	case Word:
		data[addr] = byte(val >> 8)
		data[addr+1] = byte(val)
	default:
		data[addr] = byte(val >> 24)
		data[addr+1] = byte(val >> 16)
		data[addr+2] = byte(val >> 8)
		data[addr+3] = byte(val)
	}
}

// runLoop is the loop superinstruction executor: it interprets a
// self-loop block (body of whitelisted micro-ops ending in a DBcc back
// to the block start) in a single tight loop with the memory model's
// wait-state/refresh arithmetic inlined and data accessed directly,
// eliminating per-instruction dispatch. It is entered only with trace
// and memory-watch callbacks off; all other semantics — penalty call
// order (fetch then data, both at the instruction-start clock), refresh
// phase evolution, flag materialization, region charges, step budget —
// are identical to execSuperOp, which the differential tests verify.
//
// Any member that needs the slow path (device-window address, fault,
// or a fused run exceeding the remaining budget) makes runLoop flush
// its locals and return with c.PC at that member, before any of the
// member's state (including the refresh phase walked by its fetch
// penalty) has been touched; the caller re-dispatches it exactly as
// the reference path would have executed it. The return value is the
// number of instructions executed (0 = immediate bail: the caller must
// dispatch c.PC itself to guarantee progress).
func (c *CPU) runLoop(sup []superOp, start, end int, budget int64) int64 {
	mem := c.Mem
	data := mem.data
	msize := uint32(len(data))
	ws := mem.WaitStates
	rp := mem.RefreshPeriod
	rs := mem.RefreshStall
	nref := mem.nextRefresh
	clock := c.Clock
	fetchMem := c.FetchFromMem
	var steps, instrs int64
	pc := start

loop:
	for steps < budget {
		op := &sup[pc]
		var cyc int64
		switch op.kind {
		case skDBcc:
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			instrs++
			steps++
			if c.condTrue(op.cond) {
				cyc = 12 + fetch
				clock += cyc
				c.Regions[op.region] += cyc
				pc = end + 1
				break loop
			}
			cnt := uint16(c.D[op.reg]) - 1
			c.D[op.reg] = merge(c.D[op.reg], uint32(cnt), Word)
			if cnt == 0xFFFF {
				cyc = 14 + fetch
				clock += cyc
				c.Regions[op.region] += cyc
				pc = end + 1
				break loop
			}
			cyc = 10 + fetch
			clock += cyc
			c.Regions[op.region] += cyc
			pc = start
			continue

		case skMuluRun:
			n := int64(op.runLen)
			if steps+n > budget {
				break loop // partial run: let the caller's fused path clamp it
			}
			src := c.D[op.mreg] & 0xFFFF
			mt := c.FixedMulCycles
			if mt <= 0 {
				mt = MuluCycles(uint16(src))
			}
			per := op.base + mt
			before := clock
			d := c.D[op.reg]
			if fetchMem {
				for i := int64(0); i < n; i++ {
					f := ws * op.words
					if rp > 0 && clock >= nref {
						f += rs
						nref = clock + rp
					}
					clock += per + f
					d = (d & 0xFFFF) * src
				}
			} else {
				for i := int64(0); i < n; i++ {
					d = (d & 0xFFFF) * src
				}
				clock += per * n
			}
			c.Regions[op.region] += clock - before
			c.D[op.reg] = d
			c.N, c.Z, c.V, c.C = d&0x80000000 != 0, d == 0, false, false
			instrs += n
			steps += n
			pc += int(n)
			continue

		case skMulu:
			src := c.D[op.mreg] & 0xFFFF
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			cyc = op.base + fetch
			if c.FixedMulCycles > 0 {
				cyc += c.FixedMulCycles
			} else {
				cyc += MuluCycles(uint16(src))
			}
			r := (c.D[op.reg] & 0xFFFF) * src
			c.D[op.reg] = r
			c.N, c.Z, c.V, c.C = r&0x80000000 != 0, r == 0, false, false

		case skMoveMR:
			addr := c.superAddr(op)
			if addr >= DeviceBase || !memOK(msize, addr, op.size) {
				break loop
			}
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			cyc = op.base + fetch + ws*op.acc
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
			v := memLoad(data, addr, op.size)
			c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
			c.D[op.reg] = merge(c.D[op.reg], v, op.size)
			c.superIncDec(op)

		case skMoveRM:
			v := c.superSrc(op, op.reg)
			addr := c.superAddr(op)
			if addr >= DeviceBase || !memOK(msize, addr, op.size) {
				break loop
			}
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			cyc = op.base + fetch + ws*op.acc
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
			memStore(data, addr, op.size, v)
			c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
			c.superIncDec(op)

		case skClrM:
			addr := c.superAddr(op)
			if addr >= DeviceBase || !memOK(msize, addr, op.size) {
				break loop
			}
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			cyc = op.base + fetch + ws*op.acc
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
			memStore(data, addr, op.size, 0)
			c.N, c.Z, c.V, c.C = false, true, false, false
			c.superIncDec(op)

		case skAluMR:
			addr := c.superAddr(op)
			if addr >= DeviceBase || !memOK(msize, addr, op.size) {
				break loop
			}
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			cyc = op.base + fetch + ws*op.acc
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
			src := memLoad(data, addr, op.size)
			old := mask(c.D[op.reg], op.size)
			r, f := aluOp(op.op8, old, src, op.size)
			c.D[op.reg] = merge(c.D[op.reg], r, op.size)
			c.applyFlags(f)
			c.superIncDec(op)

		case skAluM:
			src := c.superSrc(op, op.reg)
			addr := c.superAddr(op)
			if addr >= DeviceBase || !memOK(msize, addr, op.size) {
				break loop
			}
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			old := memLoad(data, addr, op.size)
			var rm uint32
			sb := signBit(op.size)
			switch op.op8 {
			case ADD, ADDI, ADDQ:
				// aluOp+addFlags inlined (operands arrive masked).
				rm = mask(old+src, op.size)
				c.N, c.Z = rm&sb != 0, rm == 0
				c.V = (old&sb == src&sb) && (rm&sb != old&sb)
				c.C = uint64(old)+uint64(src) > uint64(mask(^uint32(0), op.size))
				c.X = c.C
			case SUB, SUBI, SUBQ:
				rm = mask(old-src, op.size)
				c.N, c.Z = rm&sb != 0, rm == 0
				c.V = (old&sb != src&sb) && (rm&sb == src&sb)
				c.C = src > old
				c.X = c.C
			default:
				r, f := aluOp(op.op8, old, src, op.size)
				rm = mask(r, op.size)
				c.applyFlags(f)
			}
			memStore(data, addr, op.size, rm)
			cyc = op.base + fetch + ws*2*op.acc
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
			c.superIncDec(op)

		case skMoveRR:
			v := c.superSrc(op, op.mreg)
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			cyc = op.base + fetch
			c.N, c.Z, c.V, c.C = v&signBit(op.size) != 0, v == 0, false, false
			c.D[op.reg] = merge(c.D[op.reg], v, op.size)

		case skAluRR:
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			cyc = op.base + fetch
			src := c.superSrc(op, op.mreg)
			old := mask(c.D[op.reg], op.size)
			var r uint32
			sb := signBit(op.size)
			switch op.op8 {
			case ADD, ADDI, ADDQ:
				r = old + src
				rm := mask(r, op.size)
				c.N, c.Z = rm&sb != 0, rm == 0
				c.V = (old&sb == src&sb) && (rm&sb != old&sb)
				c.C = uint64(old)+uint64(src) > uint64(mask(^uint32(0), op.size))
				c.X = c.C
			case SUB, SUBI, SUBQ:
				r = old - src
				rm := mask(r, op.size)
				c.N, c.Z = rm&sb != 0, rm == 0
				c.V = (old&sb != src&sb) && (rm&sb == src&sb)
				c.C = src > old
				c.X = c.C
			default:
				var f flags
				r, f = aluOp(op.op8, old, src, op.size)
				c.applyFlags(f)
			}
			c.D[op.reg] = merge(c.D[op.reg], r, op.size)

		default:
			// The remaining whitelisted kinds are register-only and
			// rare inside hot loops; charge the fetch penalty here and
			// dispatch the shared micro-op executor (which cannot bail
			// for these kinds).
			var fetch int64
			if fetchMem {
				fetch = ws * op.words
				if rp > 0 && clock >= nref {
					fetch += rs
					nref = clock + rp
				}
			}
			// Flush clock state so the executor sees it, then resync.
			mem.nextRefresh = nref
			c.Clock = clock
			c.execSuperOp(op, pc, fetch, pc+1)
			clock = c.Clock
			nref = mem.nextRefresh
			instrs++ // execSuperOp bumped InstrCount; offset the flush delta
			c.InstrCount--
			steps++
			pc++
			continue
		}
		clock += cyc
		c.Regions[op.region] += cyc
		instrs++
		steps++
		pc++
	}

	mem.nextRefresh = nref
	c.Clock = clock
	c.InstrCount += instrs
	c.PC = pc
	return steps
}

// runKernelLoop executes whole iterations of a kernelShape block (see
// there for the shape and its invariants) with every loop-carried value
// in a local: the two walking pointers, the product register, the chain
// register, the counter, the clock/refresh pair, and the flags (only
// the iteration's last writers are materialized — the interior writes
// are dead because DBRA reads no flags). The multiplier's MULU time is
// computed once, outside the loop.
//
// An iteration runs only when both memory operands pre-check clean
// (non-device, aligned, in bounds) and the budget covers the full
// iteration; otherwise the executor flushes with c.PC still at the
// block start and the caller's generic paths (runLoop, then
// per-instruction dispatch) take over, so every bail, fault and
// partial-budget case goes through the reference machinery. Cycle
// arithmetic is member-by-member in program order, identical to
// execSuperOp's.
func (c *CPU) runKernelLoop(sup []superOp, start, end int, budget int64) int64 {
	m0, m1, m2, db := &sup[start], &sup[start+1], &sup[start+2], &sup[end]
	tail := sup[start+3 : end]
	perIter := int64(end - start + 1)

	mem := c.Mem
	data := mem.data
	msize := uint32(len(data))
	ws := mem.WaitStates
	rp := mem.RefreshPeriod
	rs := mem.RefreshStall
	nref := mem.nextRefresh
	clock := c.Clock
	clock0 := clock
	fetchMem := c.FetchFromMem

	src := c.D[m1.mreg] & 0xFFFF // loop-invariant multiplier
	mt := c.FixedMulCycles
	if mt <= 0 {
		mt = MuluCycles(uint16(src))
	}
	a0 := c.A[m0.mreg]
	a1 := c.A[m2.mreg]
	d0 := c.D[m0.reg]
	cnt := c.D[db.reg]
	var dch uint32
	if len(tail) > 0 {
		dch = c.D[tail[0].reg]
	}
	var nf, zf, vf, cf, xf bool
	var steps int64
	exit := false

	for steps+perIter <= budget {
		if a0 >= DeviceBase || a0&1 != 0 || a0+2 > msize ||
			a1 >= DeviceBase || a1&1 != 0 || a1+2 > msize {
			break // let the generic path run (and bail inside) this iteration
		}
		// move.w (a0)+, d0
		cyc := m0.base
		if fetchMem {
			cyc += ws * m0.words
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
		}
		cyc += ws // one data access
		if rp > 0 && clock >= nref {
			cyc += rs
			nref = clock + rp
		}
		d0 = d0&^0xFFFF | uint32(data[a0])<<8 | uint32(data[a0+1])
		a0 += uint32(m0.inc)
		clock += cyc
		// mulu.w dR, d0
		cyc = m1.base + mt
		if fetchMem {
			cyc += ws * m1.words
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
		}
		d0 = (d0 & 0xFFFF) * src
		clock += cyc
		// add.w d0, (a1)+
		cyc = m2.base
		if fetchMem {
			cyc += ws * m2.words
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
		}
		cyc += ws * 2 // read-modify-write: two data accesses
		if rp > 0 && clock >= nref {
			cyc += rs
			nref = clock + rp
		}
		s2 := d0 & 0xFFFF
		old := uint32(data[a1])<<8 | uint32(data[a1+1])
		rm := (old + s2) & 0xFFFF
		data[a1] = byte(rm >> 8)
		data[a1+1] = byte(rm)
		a1 += uint32(m2.inc)
		nf, zf = rm&0x8000 != 0, rm == 0
		vf = (old&0x8000 == s2&0x8000) && (rm&0x8000 != old&0x8000)
		cf = old+s2 > 0xFFFF
		xf = cf
		clock += cyc
		// muls chain (flags land on the final product below)
		for j := range tail {
			t := &tail[j]
			cyc = t.base + mt
			if fetchMem {
				cyc += ws * t.words
				if rp > 0 && clock >= nref {
					cyc += rs
					nref = clock + rp
				}
			}
			dch = (dch & 0xFFFF) * src
			clock += cyc
		}
		if len(tail) > 0 {
			nf, zf, vf, cf = dch&0x80000000 != 0, dch == 0, false, false
		}
		// dbra dC, <start>
		cyc = 10
		if fetchMem {
			cyc += ws * db.words
			if rp > 0 && clock >= nref {
				cyc += rs
				nref = clock + rp
			}
		}
		c16 := uint16(cnt) - 1
		cnt = cnt&^0xFFFF | uint32(c16)
		steps += perIter
		if c16 == 0xFFFF {
			clock += cyc + 4 // exit variant: 14 + fetch
			exit = true
			break
		}
		clock += cyc
	}

	mem.nextRefresh = nref
	c.Regions[m0.region] += clock - clock0
	c.Clock = clock
	c.A[m0.mreg] = a0
	c.A[m2.mreg] = a1
	c.D[m0.reg] = d0
	c.D[db.reg] = cnt
	if len(tail) > 0 {
		c.D[tail[0].reg] = dch
	}
	c.InstrCount += steps
	if steps > 0 {
		c.N, c.Z, c.V, c.C, c.X = nf, zf, vf, cf, xf
	}
	if exit {
		c.PC = end + 1
	} else {
		c.PC = start
	}
	return steps
}

// ExecSuperAt is ExecBroadcastAt through the superinstruction tier:
// one broadcast-delivered instruction, no fetch penalty, the PASM
// lockstep executor's fast path. Fused MULU runs execute a single
// member (broadcast instructions are released one at a time).
func (c *CPU) ExecSuperAt(idx int) Status {
	if c.Halted {
		return StatusHalted
	}
	if c.Err != nil {
		return StatusError
	}
	if c.sup == nil {
		c.sup = c.Prog.super()
	}
	// Trace callbacks carry the PE's own PC (which counts broadcasts),
	// exactly as the reference broadcast path's commit does.
	return c.execSuperOp(&c.sup[idx], c.PC, 0, c.PC+1)
}
