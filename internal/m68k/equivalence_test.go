package m68k

import (
	"testing"
)

// TestDecodedProgramExecutesIdentically is the strongest encoder
// property: assemble a program, encode it to machine words, decode it
// back, and run both against identical memories — final registers,
// flags, memory, instruction counts and cycle counts must all match.
func TestDecodedProgramExecutesIdentically(t *testing.T) {
	src := `
	.equ BUF, $1000
	movea.l #BUF, a0
	moveq   #63, d1
fill:	move.w  d1, (a0)+
	mulu.w  d1, d2
	dbra    d1, fill
	movea.l #BUF, a0
	moveq   #0, d3
	moveq   #63, d1
sum:	add.w   (a0)+, d3
	lsr.w   #1, d3
	bne     noinc
	addq.w  #1, d4
noinc:	dbra    d1, sum
	jsr     square
	halt
square:	mulu.w  d3, d3
	rts
	`
	orig := MustAssemble(src)
	words, err := orig.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}

	runOne := func(p *Program) *CPU {
		c := NewCPU(p, NewMemory(1<<16))
		c.Mem.WaitStates = 1
		c.Mem.RefreshPeriod = 256
		c.Mem.RefreshStall = 2
		c.FetchFromMem = true
		c.A[7] = 0x8000
		if st := c.Run(1 << 20); st != StatusHalted {
			t.Fatalf("status %v (err=%v)", st, c.Err)
		}
		return c
	}
	a := runOne(orig)
	b := runOne(decoded)

	if a.Clock != b.Clock {
		t.Errorf("cycles differ: %d vs %d", a.Clock, b.Clock)
	}
	if a.InstrCount != b.InstrCount {
		t.Errorf("instruction counts differ: %d vs %d", a.InstrCount, b.InstrCount)
	}
	if a.D != b.D || a.A != b.A {
		t.Errorf("registers differ:\n%v %v\n%v %v", a.D, a.A, b.D, b.A)
	}
	if a.N != b.N || a.Z != b.Z || a.V != b.V || a.C != b.C || a.X != b.X {
		t.Error("flags differ")
	}
	for addr := uint32(0x1000); addr < 0x1100; addr += 2 {
		va, _ := a.Mem.Read(addr, Word)
		vb, _ := b.Mem.Read(addr, Word)
		if va != vb {
			t.Errorf("memory differs at $%X: %d vs %d", addr, va, vb)
		}
	}
}

// TestEncodeDecodeIdempotent: decoding then re-encoding reproduces the
// exact machine words.
func TestEncodeDecodeIdempotent(t *testing.T) {
	src := `
	moveq   #5, d0
l:	mulu.w  d0, d1
	add.w   d1, $2000
	subq.w  #1, d0
	bne     l
	clr.b   $2002
	btst    #3, d1
	halt
	`
	p := MustAssemble(src)
	w1, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(w1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != len(w2) {
		t.Fatalf("lengths differ: %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Errorf("word %d: %04X vs %04X", i, w1[i], w2[i])
		}
	}
}

// TestExecTableMatchesDynamicResolution: the pre-resolved execution
// table must cache exactly what the dynamic path recomputes per step —
// static cycle cost and fetch word count for every instruction.
func TestExecTableMatchesDynamicResolution(t *testing.T) {
	src := `
	.equ BUF, $1000
	movea.l #BUF, a0
	moveq   #15, d1
l:	move.w  d1, (a0)+
	mulu.w  d1, d2
	muls.w  d1, d3
	add.w   d1, d4
	addq.l  #2, a1
	subq.w  #1, d5
	lsl.w   #3, d6
	ror.w   #1, d6
	btst    #3, d6
	tst.w   d4
	cmp.w   d1, d4
	dbra    d1, l
	divu.w  #3, d2
	swap    d2
	exg     d2, d3
	ext.l   d7
	clr.w   $2000
	not.w   $2000
	neg.w   d7
	jsr     sub
	halt
sub:	nop
	rts
	`
	p := MustAssemble(src)
	tab := p.table()
	if len(tab) != len(p.Instrs) {
		t.Fatalf("table has %d entries for %d instructions", len(tab), len(p.Instrs))
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if got, want := tab[i].base, baseCycles(in); got != want {
			t.Errorf("instr %d (%s): table base %d != baseCycles %d", i, in.Op, got, want)
		}
		if got, want := tab[i].words, int64(in.Words); got != want {
			t.Errorf("instr %d (%s): table words %d != %d", i, in.Op, got, want)
		}
		if tab[i].fn == nil {
			t.Errorf("instr %d (%s): nil handler", i, in.Op)
		}
	}
}

// TestExecTableRunEquivalence: executing through the table fast path
// and through the dynamic reference path (DisableExecTable) must agree
// on cycles, instruction counts, registers, flags, and memory.
func TestExecTableRunEquivalence(t *testing.T) {
	src := `
	.equ BUF, $1000
	movea.l #BUF, a0
	moveq   #63, d1
fill:	move.w  d1, (a0)+
	mulu.w  d1, d2
	dbra    d1, fill
	movea.l #BUF, a0
	moveq   #0, d3
	moveq   #63, d1
sum:	add.w   (a0)+, d3
	lsr.w   #1, d3
	bne     noinc
	addq.w  #1, d4
noinc:	dbra    d1, sum
	jsr     square
	halt
square:	mulu.w  d3, d3
	rts
	`
	prog := MustAssemble(src)
	runOne := func(dynamic bool) *CPU {
		c := NewCPU(prog, NewMemory(1<<16))
		c.Mem.WaitStates = 1
		c.Mem.RefreshPeriod = 256
		c.Mem.RefreshStall = 2
		c.FetchFromMem = true
		c.DisableExecTable = dynamic
		c.A[7] = 0x8000
		if st := c.Run(1 << 20); st != StatusHalted {
			t.Fatalf("status %v (err=%v)", st, c.Err)
		}
		return c
	}
	table := runOne(false)
	dynamic := runOne(true)

	if table.Clock != dynamic.Clock {
		t.Errorf("cycles differ: table %d vs dynamic %d", table.Clock, dynamic.Clock)
	}
	if table.InstrCount != dynamic.InstrCount {
		t.Errorf("instruction counts differ: %d vs %d", table.InstrCount, dynamic.InstrCount)
	}
	if table.Regions != dynamic.Regions {
		t.Errorf("region accounting differs: %v vs %v", table.Regions, dynamic.Regions)
	}
	if table.D != dynamic.D || table.A != dynamic.A {
		t.Errorf("registers differ:\n%v %v\n%v %v", table.D, table.A, dynamic.D, dynamic.A)
	}
	if table.N != dynamic.N || table.Z != dynamic.Z || table.V != dynamic.V ||
		table.C != dynamic.C || table.X != dynamic.X {
		t.Error("flags differ")
	}
	for addr := uint32(0x1000); addr < 0x1100; addr += 2 {
		va, _ := table.Mem.Read(addr, Word)
		vb, _ := dynamic.Mem.Read(addr, Word)
		if va != vb {
			t.Errorf("memory differs at $%X: %d vs %d", addr, va, vb)
		}
	}
}

// TestDecodeRejectsGarbage: unsupported opcodes are reported, not
// silently misdecoded.
func TestDecodeRejectsGarbage(t *testing.T) {
	for _, words := range [][]uint16{
		{0xFFFF},         // line-F
		{0xA123},         // line-A
		{0x4E40},         // TRAP #0 (unsupported)
		{0x3200, 0x303C}, // truncated: move.w #imm missing the immediate
	} {
		if _, err := Decode(words); err == nil {
			t.Errorf("decoded garbage %04X", words)
		}
	}
}
