// Package m68k implements the subset of the Motorola MC68000
// architecture needed to reproduce the PASM prototype experiments:
// an assembler, a disassembler, a per-instruction cycle-timing model
// taken from the MC68000 user manual (including the data-dependent
// MULU/DIVU times), and an interpreter with a wait-state/refresh
// memory model.
//
// Programs are kept as structured instructions after assembly; binary
// opcode encodings are not modeled, but instruction sizes in words
// are, because instruction-fetch time (and hence the SIMD/MIMD fetch
// difference central to the paper) depends on them.
package m68k

import (
	"fmt"
	"sync"
)

// Op identifies an operation. The set covers every instruction used by
// the four matrix-multiplication programs plus general-purpose
// arithmetic, logic, shift, and control-flow instructions so that the
// package is usable as a stand-alone simulator.
type Op uint8

// Operations. Bcc condition codes are folded into the single BCC op
// with a Cond field; DBcc likewise.
const (
	NOP Op = iota
	MOVE
	MOVEA
	MOVEQ
	LEA
	CLR
	ADD
	ADDA
	ADDQ
	ADDI
	SUB
	SUBA
	SUBQ
	SUBI
	MULU
	MULS
	DIVU
	AND
	ANDI
	OR
	ORI
	EOR
	EORI
	NOT
	NEG
	LSL
	LSR
	ASL
	ASR
	ROL
	ROR
	SWAP
	EXG
	EXT
	TST
	CMP
	CMPA
	CMPI
	BCC // all conditional and unconditional branches (Cond field)
	DBCC
	JMP
	JSR
	RTS
	BTST
	BSET
	BCLR
	BCHG
	HALT    // simulator pseudo-instruction: stop this CPU
	BCAST   // MC pseudo-instruction: write a Fetch Unit control word
	SETMASK // MC pseudo-instruction: write the Fetch Unit mask register
	numOps
)

var opNames = [numOps]string{
	NOP: "nop", MOVE: "move", MOVEA: "movea", MOVEQ: "moveq", LEA: "lea",
	CLR: "clr", ADD: "add", ADDA: "adda", ADDQ: "addq", ADDI: "addi",
	SUB: "sub", SUBA: "suba", SUBQ: "subq", SUBI: "subi",
	MULU: "mulu", MULS: "muls", DIVU: "divu",
	AND: "and", ANDI: "andi", OR: "or", ORI: "ori", EOR: "eor", EORI: "eori",
	NOT: "not", NEG: "neg",
	LSL: "lsl", LSR: "lsr", ASL: "asl", ASR: "asr", ROL: "rol", ROR: "ror",
	SWAP: "swap", EXG: "exg", EXT: "ext", TST: "tst",
	CMP: "cmp", CMPA: "cmpa", CMPI: "cmpi",
	BCC: "b", DBCC: "db", JMP: "jmp", JSR: "jsr", RTS: "rts",
	BTST: "btst", BSET: "bset", BCLR: "bclr", BCHG: "bchg",
	HALT: "halt", BCAST: "bcast", SETMASK: "setmask",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Size is an operand size suffix (.b, .w, .l).
type Size uint8

// Operand sizes.
const (
	Byte Size = iota
	Word
	Long
)

func (s Size) String() string {
	switch s {
	case Byte:
		return "b"
	case Word:
		return "w"
	default:
		return "l"
	}
}

// Bytes returns the operand width in bytes.
func (s Size) Bytes() uint32 {
	switch s {
	case Byte:
		return 1
	case Word:
		return 2
	default:
		return 4
	}
}

// Cond is a branch condition for BCC/DBCC.
type Cond uint8

// Branch conditions. CondT ("always") makes BCC a BRA and DBCC the
// standard DBRA/DBF loop instruction (DBcc loops while cc is false,
// so DBRA uses CondF).
const (
	CondT  Cond = iota // always (BRA)
	CondF              // never (DBRA/DBF)
	CondEQ             // Z
	CondNE             // !Z
	CondCS             // C (BLO)
	CondCC             // !C (BHS)
	CondLT             // N^V
	CondGE             // !(N^V)
	CondLE             // Z | N^V
	CondGT             // !Z & !(N^V)
	CondHI             // !C & !Z
	CondLS             // C | Z
	CondMI             // N
	CondPL             // !N
	CondVS             // V
	CondVC             // !V
	numConds
)

var condNames = [numConds]string{
	"ra", "f", "eq", "ne", "cs", "cc", "lt", "ge", "le", "gt",
	"hi", "ls", "mi", "pl", "vs", "vc",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// AddrMode is an MC68000 addressing mode.
type AddrMode uint8

// Addressing modes. Indexed modes (d8(An,Xn)) are not needed by the
// PASM programs and are omitted.
const (
	ModeNone     AddrMode = iota
	ModeDataReg           // Dn
	ModeAddrReg           // An
	ModeIndirect          // (An)
	ModePostInc           // (An)+
	ModePreDec            // -(An)
	ModeDisp              // d16(An)
	ModeAbs               // $addr (abs.W/abs.L by value)
	ModeImm               // #imm
	ModeLabel             // branch/jump/bcast target (resolved to instr index)
)

// Operand is one effective-address operand of an instruction.
type Operand struct {
	Mode AddrMode
	Reg  uint8 // register number for Dn/An/(An)/(An)+/-(An)/d(An)
	Val  int32 // displacement, immediate, absolute address, or label index
}

// IsMem reports whether the operand involves a data-memory access.
func (o Operand) IsMem() bool {
	switch o.Mode {
	case ModeIndirect, ModePostInc, ModePreDec, ModeDisp, ModeAbs:
		return true
	}
	return false
}

// RegionID tags an instruction with the execution-time component it is
// accounted under (the paper's Figures 8-10 break total time into
// multiplication, communication, and "other").
type RegionID uint8

// Execution-time accounting regions.
const (
	RegionOther RegionID = iota
	RegionMult
	RegionComm
	RegionControl // control flow executed on the MC in SIMD mode
	NumRegions
)

func (r RegionID) String() string {
	switch r {
	case RegionMult:
		return "mult"
	case RegionComm:
		return "comm"
	case RegionControl:
		return "control"
	default:
		return "other"
	}
}

// Instr is one assembled instruction.
type Instr struct {
	Op     Op
	Size   Size
	Cond   Cond
	Src    Operand
	Dst    Operand
	Words  uint8    // instruction length in 16-bit words (drives fetch time)
	Region RegionID // execution-time accounting region
	Line   int      // source line, for diagnostics
}

// Program is an assembled program: a flat instruction list plus the
// label table. Branch targets are instruction indices, not byte
// addresses; Words is retained per instruction so fetch timing remains
// faithful. Programs are immutable after assembly; the execution table
// (dispatch functions and static cycle costs, built lazily on first
// execution) is shared read-only by every CPU running the program.
type Program struct {
	Instrs []Instr
	Labels map[string]int
	// Blocks maps a SIMD block name to the [start,end) instruction
	// index range holding the block body (used by BCAST).
	Blocks map[string]BlockRange
	Source string

	tabOnce sync.Once
	tab     []execEntry

	supOnce sync.Once
	sup     []superOp
	sblocks []BasicBlock
	blockOf []int32
}

// BlockRange is a [Start,End) range of instruction indices forming a
// SIMD broadcast block.
type BlockRange struct {
	Start, End int
}

// Len returns the number of instructions in the block.
func (b BlockRange) Len() int { return b.End - b.Start }

// WordsIn returns the total instruction words in the range, which is
// what the Fetch Unit controller must enqueue.
func (p *Program) WordsIn(b BlockRange) int {
	w := 0
	for i := b.Start; i < b.End; i++ {
		w += int(p.Instrs[i].Words)
	}
	return w
}
