package m68k

// exec executes one instruction through the dynamic reference path:
// the dispatch function and static cycle cost are recomputed from the
// instruction instead of read from the program's execution table. The
// table path in Step/ExecBroadcastAt caches exactly these two results,
// and the equivalence tests run both paths against each other.
func (c *CPU) exec(in *Instr, fetchPenalty int64) Status {
	c.lastLoadWasDev = false
	return resolveHandler(in)(c, in, baseCycles(in)+fetchPenalty, fetchPenalty, c.PC+1)
}

// bail aborts a partially evaluated instruction, either blocked on a
// device (retryable, no state changed) or with a program error.
func (c *CPU) bail(in *Instr, blocked bool, err error) Status {
	c.npend = 0
	if err != nil {
		return c.errf(in, "%v", err)
	}
	return StatusBlocked
}

// regPtr returns the storage cell for a register operand (EXG).
func (c *CPU) regPtr(o Operand) *uint32 {
	if o.Mode == ModeAddrReg {
		return &c.A[o.Reg]
	}
	return &c.D[o.Reg]
}

// alu2 executes the two-operand ALU forms (ADD/SUB/AND/OR/EOR and
// their immediate and quick variants) to either a data register or a
// memory destination (read-modify-write). Device destinations are
// rejected: an RMW bus cycle against a transfer register is not
// meaningful hardware behaviour.
func (c *CPU) alu2(in *Instr, cycles int64, next int) Status {
	sz := in.Size
	src, blocked, err := c.opRead(in.Src, sz, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	if !in.Dst.IsMem() {
		old := mask(c.D[in.Dst.Reg], sz)
		r, f := aluOp(in.Op, old, src, sz)
		c.D[in.Dst.Reg] = merge(c.D[in.Dst.Reg], r, sz)
		c.applyFlags(f)
		return c.commit(in, cycles, next)
	}
	addr := c.ea(in.Dst, sz)
	if addr >= DeviceBase {
		return c.errf(in, "read-modify-write on device register $%X", addr)
	}
	old, err := c.Mem.Read(addr, sz)
	if err != nil {
		return c.errf(in, "%v", err)
	}
	r, f := aluOp(in.Op, old, src, sz)
	if err := c.Mem.Write(addr, sz, mask(r, sz)); err != nil {
		return c.errf(in, "%v", err)
	}
	if c.MemWatch != nil {
		c.MemWatch(addr, sz, old, false)
		c.MemWatch(addr, sz, mask(r, sz), true)
	}
	acc := int64(2)
	if sz == Long {
		acc = 4
	}
	cycles += c.Mem.Penalty(c.Clock, acc)
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}

// aluOp computes a two-operand ALU result and its flags.
func aluOp(op Op, dst, src uint32, sz Size) (uint32, flags) {
	switch op {
	case ADD, ADDI, ADDQ:
		r := dst + src
		return r, addFlags(dst, src, r, sz)
	case SUB, SUBI, SUBQ:
		r := dst - src
		return r, subFlags(dst, src, r, sz)
	case AND, ANDI:
		r := dst & src
		return r, nzFlags(r, sz)
	case OR, ORI:
		r := dst | src
		return r, nzFlags(r, sz)
	default: // EOR, EORI
		r := dst ^ src
		return r, nzFlags(r, sz)
	}
}

// alu1 executes NOT and NEG (register or memory destination).
func (c *CPU) alu1(in *Instr, cycles int64, next int) Status {
	sz := in.Size
	compute := func(v uint32) (uint32, flags) {
		if in.Op == NOT {
			r := ^v
			return r, nzFlags(r, sz)
		}
		r := -v
		f := subFlags(0, v, r, sz)
		return r, f
	}
	if !in.Dst.IsMem() {
		r, f := compute(mask(c.D[in.Dst.Reg], sz))
		c.D[in.Dst.Reg] = merge(c.D[in.Dst.Reg], r, sz)
		c.applyFlags(f)
		return c.commit(in, cycles, next)
	}
	addr := c.ea(in.Dst, sz)
	if addr >= DeviceBase {
		return c.errf(in, "read-modify-write on device register $%X", addr)
	}
	v, err := c.Mem.Read(addr, sz)
	if err != nil {
		return c.errf(in, "%v", err)
	}
	r, f := compute(v)
	if err := c.Mem.Write(addr, sz, mask(r, sz)); err != nil {
		return c.errf(in, "%v", err)
	}
	if c.MemWatch != nil {
		c.MemWatch(addr, sz, v, false)
		c.MemWatch(addr, sz, mask(r, sz), true)
	}
	acc := int64(2)
	if sz == Long {
		acc = 4
	}
	cycles += c.Mem.Penalty(c.Clock, acc)
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}

// bitOp executes BTST/BSET/BCLR/BCHG: bit numbers are taken modulo 32
// for data-register operands and modulo 8 for memory (byte) operands,
// per the 68000. Z is set from the *tested* (pre-modification) bit.
func (c *CPU) bitOp(in *Instr, cycles int64, next int) Status {
	var bitNum uint32
	if in.Src.Mode == ModeImm {
		bitNum = uint32(in.Src.Val)
	} else {
		bitNum = c.D[in.Src.Reg]
	}
	modify := func(v uint32, bit uint32) uint32 {
		switch in.Op {
		case BSET:
			return v | 1<<bit
		case BCLR:
			return v &^ (1 << bit)
		case BCHG:
			return v ^ 1<<bit
		}
		return v // BTST
	}
	if !in.Dst.IsMem() {
		bit := bitNum % 32
		v := c.D[in.Dst.Reg]
		c.Z = v&(1<<bit) == 0
		c.D[in.Dst.Reg] = modify(v, bit)
		return c.commit(in, cycles, next)
	}
	bit := bitNum % 8
	addr := c.ea(in.Dst, Byte)
	if addr >= DeviceBase {
		return c.errf(in, "bit operation on device register $%X", addr)
	}
	v, err := c.Mem.Read(addr, Byte)
	if err != nil {
		return c.errf(in, "%v", err)
	}
	c.Z = v&(1<<bit) == 0
	if c.MemWatch != nil {
		c.MemWatch(addr, Byte, v, false)
	}
	acc := int64(1)
	if in.Op != BTST {
		if err := c.Mem.Write(addr, Byte, modify(v, bit)); err != nil {
			return c.errf(in, "%v", err)
		}
		if c.MemWatch != nil {
			c.MemWatch(addr, Byte, modify(v, bit), true)
		}
		acc = 2
	}
	cycles += c.Mem.Penalty(c.Clock, acc)
	return c.commit(in, cycles, next)
}

// shift executes the register shift and rotate instructions.
func (c *CPU) shift(in *Instr, cycles int64, next int) Status {
	sz := in.Size
	var count uint32
	if in.Src.Mode == ModeImm {
		count = uint32(in.Src.Val)
	} else {
		count = c.D[in.Src.Reg] & 63
		cycles += 2 * int64(count)
	}
	bitsN := sz.Bytes() * 8
	v := mask(c.D[in.Dst.Reg], sz)
	var r uint32
	f := flags{}
	switch in.Op {
	case LSL, ASL:
		r = v
		for i := uint32(0); i < count; i++ {
			out := r & signBit(sz)
			nr := mask(r<<1, sz)
			f.cc = out != 0
			f.setX, f.x = true, f.cc
			if in.Op == ASL && (nr&signBit(sz) != 0) != (r&signBit(sz) != 0) {
				f.v = true
			}
			r = nr
		}
	case LSR:
		r = v
		for i := uint32(0); i < count; i++ {
			f.cc = r&1 != 0
			f.setX, f.x = true, f.cc
			r >>= 1
		}
	case ASR:
		r = v
		sb := signBit(sz)
		for i := uint32(0); i < count; i++ {
			f.cc = r&1 != 0
			f.setX, f.x = true, f.cc
			r = r>>1 | r&sb
		}
	case ROL:
		r = v
		for i := uint32(0); i < count; i++ {
			out := r & signBit(sz) >> (bitsN - 1)
			r = mask(r<<1|out, sz)
			f.cc = out != 0
		}
	case ROR:
		r = v
		for i := uint32(0); i < count; i++ {
			out := r & 1
			r = r>>1 | out<<(bitsN-1)
			f.cc = out != 0
		}
	}
	if count == 0 {
		r = v
	}
	nz := nzFlags(r, sz)
	f.n, f.z = nz.n, nz.z
	c.D[in.Dst.Reg] = merge(c.D[in.Dst.Reg], r, sz)
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}
