package m68k

// exec executes one instruction. It must be free of side effects until
// it is certain the instruction completes (device accesses may refuse,
// after which the engine retries the same instruction); staged flag
// and pending address-register updates implement that.
func (c *CPU) exec(in *Instr, fetchPenalty int64) Status {
	cycles := baseCycles(in) + fetchPenalty
	next := c.PC + 1
	sz := in.Size
	c.lastLoadWasDev = false

	switch in.Op {
	case NOP:
		return c.commit(in, cycles, next)

	case HALT:
		c.Halted = true
		c.commit(in, cycles, next)
		return StatusHalted

	case MOVE:
		v, blocked, err := c.opRead(in.Src, sz, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		f := nzFlags(v, sz)
		blocked, err = c.opWrite(in.Dst, sz, v, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		c.applyFlags(f)
		return c.commit(in, cycles, next)

	case MOVEA:
		v, blocked, err := c.opRead(in.Src, sz, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		c.A[in.Dst.Reg] = signExtTo32(v, sz)
		return c.commit(in, cycles, next)

	case MOVEQ:
		v := uint32(in.Src.Val) // sign-extended by the assembler range check
		c.D[in.Dst.Reg] = v
		c.applyFlags(nzFlags(v, Long))
		return c.commit(in, cycles, next)

	case LEA:
		c.A[in.Dst.Reg] = c.ea(in.Src, Long)
		c.npend = 0 // LEA computes the address only
		return c.commit(in, cycles, next)

	case CLR:
		blocked, err := c.opWrite(in.Dst, sz, 0, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		c.applyFlags(flags{z: true})
		return c.commit(in, cycles, next)

	case ADD, SUB, AND, OR, EOR:
		return c.alu2(in, cycles, next)

	case ADDI, SUBI, ANDI, ORI, EORI:
		return c.alu2(in, cycles, next)

	case ADDQ, SUBQ:
		if in.Dst.Mode == ModeAddrReg {
			// Address-register quick forms act on all 32 bits and do
			// not affect flags.
			d := uint32(in.Src.Val)
			if in.Op == ADDQ {
				c.A[in.Dst.Reg] += d
			} else {
				c.A[in.Dst.Reg] -= d
			}
			return c.commit(in, cycles, next)
		}
		return c.alu2(in, cycles, next)

	case CMP, CMPI:
		src, blocked, err := c.opRead(in.Src, sz, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		dst, blocked, err := c.opRead(in.Dst, sz, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		r := dst - src
		f := subFlags(dst, src, r, sz)
		f.setX = false // CMP does not touch X
		c.applyFlags(f)
		return c.commit(in, cycles, next)

	case CMPA:
		src, blocked, err := c.opRead(in.Src, sz, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		s32 := signExtTo32(src, sz)
		d32 := c.A[in.Dst.Reg]
		r := d32 - s32
		f := subFlags(d32, s32, r, Long)
		f.setX = false
		c.applyFlags(f)
		return c.commit(in, cycles, next)

	case ADDA, SUBA:
		src, blocked, err := c.opRead(in.Src, sz, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		s32 := signExtTo32(src, sz)
		if in.Op == ADDA {
			c.A[in.Dst.Reg] += s32
		} else {
			c.A[in.Dst.Reg] -= s32
		}
		return c.commit(in, cycles, next)

	case NOT, NEG:
		return c.alu1(in, cycles, next)

	case TST:
		v, blocked, err := c.opRead(in.Dst, sz, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		c.applyFlags(nzFlags(v, sz))
		return c.commit(in, cycles, next)

	case MULU:
		src, blocked, err := c.opRead(in.Src, Word, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		if c.FixedMulCycles > 0 {
			cycles += c.FixedMulCycles
		} else {
			cycles += MuluCycles(uint16(src))
		}
		r := mask(c.D[in.Dst.Reg], Word) * src
		c.D[in.Dst.Reg] = r
		c.applyFlags(nzFlags(r, Long))
		return c.commit(in, cycles, next)

	case MULS:
		src, blocked, err := c.opRead(in.Src, Word, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		cycles += MulsCycles(uint16(src))
		r := uint32(int32(int16(src)) * int32(int16(c.D[in.Dst.Reg])))
		c.D[in.Dst.Reg] = r
		c.applyFlags(nzFlags(r, Long))
		return c.commit(in, cycles, next)

	case DIVU:
		src, blocked, err := c.opRead(in.Src, Word, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		if src == 0 {
			return c.errf(in, "divide by zero")
		}
		dividend := c.D[in.Dst.Reg]
		q := dividend / src
		if q > 0xFFFF {
			// Overflow: destination unchanged, V set.
			cycles += 10
			c.applyFlags(flags{v: true, n: c.N, z: c.Z})
			return c.commit(in, cycles, next)
		}
		cycles += DivuCycles(uint16(q))
		rem := dividend % src
		c.D[in.Dst.Reg] = rem<<16 | q
		c.applyFlags(nzFlags(q, Word))
		return c.commit(in, cycles, next)

	case LSL, LSR, ASL, ASR, ROL, ROR:
		return c.shift(in, cycles, next)

	case SWAP:
		v := c.D[in.Dst.Reg]
		v = v>>16 | v<<16
		c.D[in.Dst.Reg] = v
		c.applyFlags(nzFlags(v, Long))
		return c.commit(in, cycles, next)

	case EXG:
		a := c.regPtr(in.Src)
		b := c.regPtr(in.Dst)
		*a, *b = *b, *a
		return c.commit(in, cycles, next)

	case EXT:
		v := c.D[in.Dst.Reg]
		if sz == Word {
			v = merge(v, uint32(int32(int8(v)))&0xFFFF, Word)
			c.applyFlags(nzFlags(v, Word))
		} else {
			v = uint32(int32(int16(v)))
			c.applyFlags(nzFlags(v, Long))
		}
		c.D[in.Dst.Reg] = v
		return c.commit(in, cycles, next)

	case BCC:
		if in.Dst.Mode != ModeLabel {
			return c.errf(in, "branch target must be a label")
		}
		if c.condTrue(in.Cond) {
			return c.commit(in, cycles, int(in.Dst.Val)) // taken: 10 either form
		}
		if in.Words == 2 {
			return c.commit(in, cycles+2, next) // word form not-taken: 12
		}
		return c.commit(in, cycles-2, next) // byte form not-taken: 8

	case DBCC:
		if in.Dst.Mode != ModeLabel {
			return c.errf(in, "branch target must be a label")
		}
		if c.condTrue(in.Cond) {
			return c.commit(in, 12+fetchPenalty, next)
		}
		cnt := uint16(c.D[in.Src.Reg]) - 1
		c.D[in.Src.Reg] = merge(c.D[in.Src.Reg], uint32(cnt), Word)
		if cnt == 0xFFFF {
			return c.commit(in, 14+fetchPenalty, next)
		}
		return c.commit(in, 10+fetchPenalty, int(in.Dst.Val))

	case JMP:
		if in.Dst.Mode == ModeAbs && uint32(in.Dst.Val) >= DeviceBase {
			// Jump into the SIMD instruction space: the PASM
			// MIMD-to-SIMD mode switch (paper Section 3). The PE
			// starts requesting broadcast instructions; the executor
			// takes over.
			c.commit(in, cycles, c.PC)
			return StatusSIMDJump
		}
		if in.Dst.Mode != ModeLabel {
			return c.errf(in, "jump target must be a label")
		}
		return c.commit(in, cycles, int(in.Dst.Val))

	case JSR:
		if in.Dst.Mode != ModeLabel {
			return c.errf(in, "call target must be a label")
		}
		sp := c.A[7] - 4
		if err := c.Mem.Write(sp, Long, uint32(next)); err != nil {
			return c.errf(in, "stack push: %v", err)
		}
		cycles += c.Mem.Penalty(c.Clock, 2)
		c.A[7] = sp
		return c.commit(in, cycles, int(in.Dst.Val))

	case RTS:
		v, err := c.Mem.Read(c.A[7], Long)
		if err != nil {
			return c.errf(in, "stack pop: %v", err)
		}
		cycles += c.Mem.Penalty(c.Clock, 2)
		c.A[7] += 4
		return c.commit(in, cycles, int(v))

	case BTST, BSET, BCLR, BCHG:
		return c.bitOp(in, cycles, next)

	case BCAST:
		c.LastBcast = BlockRange{Start: int(in.Src.Val), End: int(in.Dst.Val)}
		c.commit(in, cycles, next)
		return StatusBcast

	case SETMASK:
		v, blocked, err := c.opRead(in.Src, Word, &cycles)
		if blocked || err != nil {
			return c.bail(in, blocked, err)
		}
		c.LastMask = v
		c.commit(in, cycles, next)
		return StatusSetMask
	}
	return c.errf(in, "unimplemented operation")
}

// bail aborts a partially evaluated instruction, either blocked on a
// device (retryable, no state changed) or with a program error.
func (c *CPU) bail(in *Instr, blocked bool, err error) Status {
	c.npend = 0
	if err != nil {
		return c.errf(in, "%v", err)
	}
	return StatusBlocked
}

// regPtr returns the storage cell for a register operand (EXG).
func (c *CPU) regPtr(o Operand) *uint32 {
	if o.Mode == ModeAddrReg {
		return &c.A[o.Reg]
	}
	return &c.D[o.Reg]
}

// alu2 executes the two-operand ALU forms (ADD/SUB/AND/OR/EOR and
// their immediate and quick variants) to either a data register or a
// memory destination (read-modify-write). Device destinations are
// rejected: an RMW bus cycle against a transfer register is not
// meaningful hardware behaviour.
func (c *CPU) alu2(in *Instr, cycles int64, next int) Status {
	sz := in.Size
	src, blocked, err := c.opRead(in.Src, sz, &cycles)
	if blocked || err != nil {
		return c.bail(in, blocked, err)
	}
	if !in.Dst.IsMem() {
		old := mask(c.D[in.Dst.Reg], sz)
		r, f := aluOp(in.Op, old, src, sz)
		c.D[in.Dst.Reg] = merge(c.D[in.Dst.Reg], r, sz)
		c.applyFlags(f)
		return c.commit(in, cycles, next)
	}
	addr := c.ea(in.Dst, sz)
	if addr >= DeviceBase {
		return c.errf(in, "read-modify-write on device register $%X", addr)
	}
	old, err := c.Mem.Read(addr, sz)
	if err != nil {
		return c.errf(in, "%v", err)
	}
	r, f := aluOp(in.Op, old, src, sz)
	if err := c.Mem.Write(addr, sz, mask(r, sz)); err != nil {
		return c.errf(in, "%v", err)
	}
	acc := int64(2)
	if sz == Long {
		acc = 4
	}
	cycles += c.Mem.Penalty(c.Clock, acc)
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}

// aluOp computes a two-operand ALU result and its flags.
func aluOp(op Op, dst, src uint32, sz Size) (uint32, flags) {
	switch op {
	case ADD, ADDI, ADDQ:
		r := dst + src
		return r, addFlags(dst, src, r, sz)
	case SUB, SUBI, SUBQ:
		r := dst - src
		return r, subFlags(dst, src, r, sz)
	case AND, ANDI:
		r := dst & src
		return r, nzFlags(r, sz)
	case OR, ORI:
		r := dst | src
		return r, nzFlags(r, sz)
	default: // EOR, EORI
		r := dst ^ src
		return r, nzFlags(r, sz)
	}
}

// alu1 executes NOT and NEG (register or memory destination).
func (c *CPU) alu1(in *Instr, cycles int64, next int) Status {
	sz := in.Size
	compute := func(v uint32) (uint32, flags) {
		if in.Op == NOT {
			r := ^v
			return r, nzFlags(r, sz)
		}
		r := -v
		f := subFlags(0, v, r, sz)
		return r, f
	}
	if !in.Dst.IsMem() {
		r, f := compute(mask(c.D[in.Dst.Reg], sz))
		c.D[in.Dst.Reg] = merge(c.D[in.Dst.Reg], r, sz)
		c.applyFlags(f)
		return c.commit(in, cycles, next)
	}
	addr := c.ea(in.Dst, sz)
	if addr >= DeviceBase {
		return c.errf(in, "read-modify-write on device register $%X", addr)
	}
	v, err := c.Mem.Read(addr, sz)
	if err != nil {
		return c.errf(in, "%v", err)
	}
	r, f := compute(v)
	if err := c.Mem.Write(addr, sz, mask(r, sz)); err != nil {
		return c.errf(in, "%v", err)
	}
	acc := int64(2)
	if sz == Long {
		acc = 4
	}
	cycles += c.Mem.Penalty(c.Clock, acc)
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}

// bitOp executes BTST/BSET/BCLR/BCHG: bit numbers are taken modulo 32
// for data-register operands and modulo 8 for memory (byte) operands,
// per the 68000. Z is set from the *tested* (pre-modification) bit.
func (c *CPU) bitOp(in *Instr, cycles int64, next int) Status {
	var bitNum uint32
	if in.Src.Mode == ModeImm {
		bitNum = uint32(in.Src.Val)
	} else {
		bitNum = c.D[in.Src.Reg]
	}
	modify := func(v uint32, bit uint32) uint32 {
		switch in.Op {
		case BSET:
			return v | 1<<bit
		case BCLR:
			return v &^ (1 << bit)
		case BCHG:
			return v ^ 1<<bit
		}
		return v // BTST
	}
	if !in.Dst.IsMem() {
		bit := bitNum % 32
		v := c.D[in.Dst.Reg]
		c.Z = v&(1<<bit) == 0
		c.D[in.Dst.Reg] = modify(v, bit)
		return c.commit(in, cycles, next)
	}
	bit := bitNum % 8
	addr := c.ea(in.Dst, Byte)
	if addr >= DeviceBase {
		return c.errf(in, "bit operation on device register $%X", addr)
	}
	v, err := c.Mem.Read(addr, Byte)
	if err != nil {
		return c.errf(in, "%v", err)
	}
	c.Z = v&(1<<bit) == 0
	acc := int64(1)
	if in.Op != BTST {
		if err := c.Mem.Write(addr, Byte, modify(v, bit)); err != nil {
			return c.errf(in, "%v", err)
		}
		acc = 2
	}
	cycles += c.Mem.Penalty(c.Clock, acc)
	return c.commit(in, cycles, next)
}

// shift executes the register shift and rotate instructions.
func (c *CPU) shift(in *Instr, cycles int64, next int) Status {
	sz := in.Size
	var count uint32
	if in.Src.Mode == ModeImm {
		count = uint32(in.Src.Val)
	} else {
		count = c.D[in.Src.Reg] & 63
		cycles += 2 * int64(count)
	}
	bitsN := sz.Bytes() * 8
	v := mask(c.D[in.Dst.Reg], sz)
	var r uint32
	f := flags{}
	switch in.Op {
	case LSL, ASL:
		r = v
		for i := uint32(0); i < count; i++ {
			out := r & signBit(sz)
			nr := mask(r<<1, sz)
			f.cc = out != 0
			f.setX, f.x = true, f.cc
			if in.Op == ASL && (nr&signBit(sz) != 0) != (r&signBit(sz) != 0) {
				f.v = true
			}
			r = nr
		}
	case LSR:
		r = v
		for i := uint32(0); i < count; i++ {
			f.cc = r&1 != 0
			f.setX, f.x = true, f.cc
			r >>= 1
		}
	case ASR:
		r = v
		sb := signBit(sz)
		for i := uint32(0); i < count; i++ {
			f.cc = r&1 != 0
			f.setX, f.x = true, f.cc
			r = r>>1 | r&sb
		}
	case ROL:
		r = v
		for i := uint32(0); i < count; i++ {
			out := r & signBit(sz) >> (bitsN - 1)
			r = mask(r<<1|out, sz)
			f.cc = out != 0
		}
	case ROR:
		r = v
		for i := uint32(0); i < count; i++ {
			out := r & 1
			r = r>>1 | out<<(bitsN-1)
			f.cc = out != 0
		}
	}
	if count == 0 {
		r = v
	}
	nz := nzFlags(r, sz)
	f.n, f.z = nz.n, nz.z
	c.D[in.Dst.Reg] = merge(c.D[in.Dst.Reg], r, sz)
	c.applyFlags(f)
	return c.commit(in, cycles, next)
}
