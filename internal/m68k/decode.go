package m68k

import "fmt"

// Decode disassembles MC68000 machine words (as produced by Encode)
// back into a Program. Branch and jump targets are resolved to
// instruction indices; labels and SIMD blocks are not reconstructed
// (they are assembler artifacts). Decode supports exactly the
// simulated subset; any other opcode is an error.
func Decode(words []uint16) (*Program, error) {
	d := &decoder{words: words}
	// First pass: decode instructions, recording their word addresses.
	for d.pos < len(d.words) {
		start := d.pos
		in, err := d.next()
		if err != nil {
			return nil, fmt.Errorf("m68k: decode at word %d (%04x): %w", start, d.words[start], err)
		}
		in.Words = uint8(d.pos - start)
		d.addrs = append(d.addrs, int32(start*2))
		d.instrs = append(d.instrs, in)
	}
	// Second pass: resolve branch byte addresses to instruction indices.
	byAddr := map[int32]int{}
	for i, a := range d.addrs {
		byAddr[a] = i
	}
	end := int32(len(words) * 2)
	for i := range d.instrs {
		in := &d.instrs[i]
		if in.Op != BCC && in.Op != DBCC && !(in.Op == JMP || in.Op == JSR) {
			continue
		}
		if in.Dst.Mode != ModeLabel {
			continue
		}
		target := in.Dst.Val // byte address stashed by next()
		var idx int
		if target == end {
			idx = len(d.instrs)
		} else {
			j, ok := byAddr[target]
			if !ok {
				return nil, fmt.Errorf("m68k: branch at instruction %d targets mid-instruction address $%X", i, target)
			}
			idx = j
		}
		in.Dst.Val = int32(idx)
	}
	return &Program{Instrs: d.instrs, Labels: map[string]int{}, Blocks: map[string]BlockRange{}}, nil
}

type decoder struct {
	words  []uint16
	pos    int
	instrs []Instr
	addrs  []int32
}

func (d *decoder) fetch() (uint16, error) {
	if d.pos >= len(d.words) {
		return 0, fmt.Errorf("truncated instruction")
	}
	w := d.words[d.pos]
	d.pos++
	return w, nil
}

// ea decodes a 6-bit mode/register field, consuming extension words.
func (d *decoder) ea(field uint16, sz Size) (Operand, error) {
	mode := field >> 3
	reg := uint8(field & 7)
	switch mode {
	case 0:
		return Operand{Mode: ModeDataReg, Reg: reg}, nil
	case 1:
		return Operand{Mode: ModeAddrReg, Reg: reg}, nil
	case 2:
		return Operand{Mode: ModeIndirect, Reg: reg}, nil
	case 3:
		return Operand{Mode: ModePostInc, Reg: reg}, nil
	case 4:
		return Operand{Mode: ModePreDec, Reg: reg}, nil
	case 5:
		w, err := d.fetch()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Mode: ModeDisp, Reg: reg, Val: int32(int16(w))}, nil
	case 7:
		switch reg {
		case 0:
			w, err := d.fetch()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Mode: ModeAbs, Val: int32(w)}, nil
		case 1:
			hi, err := d.fetch()
			if err != nil {
				return Operand{}, err
			}
			lo, err := d.fetch()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Mode: ModeAbs, Val: int32(uint32(hi)<<16 | uint32(lo))}, nil
		case 4:
			if sz == Long {
				hi, err := d.fetch()
				if err != nil {
					return Operand{}, err
				}
				lo, err := d.fetch()
				if err != nil {
					return Operand{}, err
				}
				return Operand{Mode: ModeImm, Val: int32(uint32(hi)<<16 | uint32(lo))}, nil
			}
			w, err := d.fetch()
			if err != nil {
				return Operand{}, err
			}
			if sz == Byte {
				return Operand{Mode: ModeImm, Val: int32(int8(w))}, nil
			}
			return Operand{Mode: ModeImm, Val: int32(int16(w))}, nil
		}
	}
	return Operand{}, fmt.Errorf("unsupported addressing mode %d/%d", mode, reg)
}

func sizeFromBits(b uint16) (Size, error) {
	switch b {
	case 0:
		return Byte, nil
	case 1:
		return Word, nil
	case 2:
		return Long, nil
	}
	return 0, fmt.Errorf("bad size field")
}

// next decodes one instruction.
func (d *decoder) next() (Instr, error) {
	op, err := d.fetch()
	if err != nil {
		return Instr{}, err
	}
	base := d.pos * 2 // byte address after the opcode word

	switch {
	case op == 0x4E71:
		return Instr{Op: NOP, Size: Word}, nil
	case op == 0x4AFC:
		return Instr{Op: HALT, Size: Word}, nil
	case op == 0x4E75:
		return Instr{Op: RTS, Size: Word}, nil
	}

	switch op >> 12 {
	case 0x0: // immediates and bit ops
		if op&0x0100 != 0 || op&0x0F00 == 0x0800 {
			// bit operations
			tt := op >> 6 & 3
			bop := [4]Op{BTST, BCHG, BCLR, BSET}[tt]
			var src Operand
			if op&0x0100 != 0 {
				src = Operand{Mode: ModeDataReg, Reg: uint8(op >> 9 & 7)}
			} else {
				w, err := d.fetch()
				if err != nil {
					return Instr{}, err
				}
				src = Operand{Mode: ModeImm, Val: int32(w)}
			}
			dst, err := d.ea(op&0x3F, Byte)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: bop, Size: Byte, Src: src, Dst: dst}, nil
		}
		var iop Op
		switch op & 0x0F00 {
		case 0x0000:
			iop = ORI
		case 0x0200:
			iop = ANDI
		case 0x0400:
			iop = SUBI
		case 0x0600:
			iop = ADDI
		case 0x0A00:
			iop = EORI
		case 0x0C00:
			iop = CMPI
		default:
			return Instr{}, fmt.Errorf("unsupported 0000-family opcode %04x", op)
		}
		sz, err := sizeFromBits(op >> 6 & 3)
		if err != nil {
			return Instr{}, err
		}
		src, err := d.ea(eaImm, sz) // immediate comes first
		if err != nil {
			return Instr{}, err
		}
		dst, err := d.ea(op&0x3F, sz)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: iop, Size: sz, Src: src, Dst: dst}, nil

	case 0x1, 0x2, 0x3: // MOVE / MOVEA
		var sz Size
		switch op >> 12 {
		case 1:
			sz = Byte
		case 3:
			sz = Word
		default:
			sz = Long
		}
		src, err := d.ea(op&0x3F, sz)
		if err != nil {
			return Instr{}, err
		}
		dstField := (op>>9)&7 | (op>>6&7)<<3
		if dstField>>3 == 1 { // address register destination: MOVEA
			return Instr{Op: MOVEA, Size: sz, Src: src, Dst: Operand{Mode: ModeAddrReg, Reg: uint8(dstField & 7)}}, nil
		}
		dst, err := d.ea(dstField, sz)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: MOVE, Size: sz, Src: src, Dst: dst}, nil

	case 0x4:
		switch {
		case op&0xFF00 == 0x4200, op&0xFF00 == 0x4400, op&0xFF00 == 0x4600, op&0xFF00 == 0x4A00:
			sop := map[uint16]Op{0x4200: CLR, 0x4400: NEG, 0x4600: NOT, 0x4A00: TST}[op&0xFF00]
			sz, err := sizeFromBits(op >> 6 & 3)
			if err != nil {
				return Instr{}, err
			}
			dst, err := d.ea(op&0x3F, sz)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: sop, Size: sz, Dst: dst}, nil
		case op&0xFFF8 == 0x4840:
			return Instr{Op: SWAP, Size: Word, Dst: Operand{Mode: ModeDataReg, Reg: uint8(op & 7)}}, nil
		case op&0xFFF8 == 0x4880:
			return Instr{Op: EXT, Size: Word, Dst: Operand{Mode: ModeDataReg, Reg: uint8(op & 7)}}, nil
		case op&0xFFF8 == 0x48C0:
			return Instr{Op: EXT, Size: Long, Dst: Operand{Mode: ModeDataReg, Reg: uint8(op & 7)}}, nil
		case op&0xF1C0 == 0x41C0:
			src, err := d.ea(op&0x3F, Long)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: LEA, Size: Long, Src: src,
				Dst: Operand{Mode: ModeAddrReg, Reg: uint8(op >> 9 & 7)}}, nil
		case op&0xFFC0 == 0x4EC0, op&0xFFC0 == 0x4E80:
			jop := JMP
			if op&0xFFC0 == 0x4E80 {
				jop = JSR
			}
			dst, err := d.ea(op&0x3F, Word)
			if err != nil {
				return Instr{}, err
			}
			if dst.Mode == ModeAbs {
				// Absolute targets inside the image are labels.
				return Instr{Op: jop, Size: Word, Dst: Operand{Mode: ModeLabel, Val: dst.Val}}, nil
			}
			return Instr{Op: jop, Size: Word, Dst: dst}, nil
		}
		return Instr{}, fmt.Errorf("unsupported 0100-family opcode %04x", op)

	case 0x5: // ADDQ/SUBQ/DBcc
		if op&0x00C0 == 0x00C0 {
			// DBcc
			cond, ok := condFromBits[op>>8&0xF]
			if !ok {
				return Instr{}, fmt.Errorf("bad DBcc condition")
			}
			disp, err := d.fetch()
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: DBCC, Cond: cond, Size: Word,
				Src: Operand{Mode: ModeDataReg, Reg: uint8(op & 7)},
				Dst: Operand{Mode: ModeLabel, Val: int32(base) + int32(int16(disp))}}, nil
		}
		qop := ADDQ
		if op&0x0100 != 0 {
			qop = SUBQ
		}
		sz, err := sizeFromBits(op >> 6 & 3)
		if err != nil {
			return Instr{}, err
		}
		data := int32(op >> 9 & 7)
		if data == 0 {
			data = 8
		}
		dst, err := d.ea(op&0x3F, sz)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: qop, Size: sz, Src: Operand{Mode: ModeImm, Val: data}, Dst: dst}, nil

	case 0x6: // Bcc
		cond, ok := condFromBits[op>>8&0xF]
		if !ok || cond == CondF {
			return Instr{}, fmt.Errorf("BSR not supported")
		}
		disp := int32(int8(op & 0xFF))
		if disp == 0 {
			w, err := d.fetch()
			if err != nil {
				return Instr{}, err
			}
			disp = int32(int16(w))
		}
		return Instr{Op: BCC, Cond: cond, Size: Word,
			Dst: Operand{Mode: ModeLabel, Val: int32(base) + disp}}, nil

	case 0x7: // MOVEQ
		return Instr{Op: MOVEQ, Size: Long,
			Src: Operand{Mode: ModeImm, Val: int32(int8(op & 0xFF))},
			Dst: Operand{Mode: ModeDataReg, Reg: uint8(op >> 9 & 7)}}, nil

	case 0x8, 0x9, 0xB, 0xC, 0xD:
		return d.decodeALU(op)

	case 0xE: // shifts
		tt := op >> 3 & 3
		var sop Op
		left := op&0x0100 != 0
		switch tt {
		case 0:
			sop = ASR
			if left {
				sop = ASL
			}
		case 1:
			sop = LSR
			if left {
				sop = LSL
			}
		case 3:
			sop = ROR
			if left {
				sop = ROL
			}
		default:
			return Instr{}, fmt.Errorf("ROX shifts unsupported")
		}
		sz, err := sizeFromBits(op >> 6 & 3)
		if err != nil {
			return Instr{}, err
		}
		var src Operand
		if op&0x0020 != 0 {
			src = Operand{Mode: ModeDataReg, Reg: uint8(op >> 9 & 7)}
		} else {
			cnt := int32(op >> 9 & 7)
			if cnt == 0 {
				cnt = 8
			}
			src = Operand{Mode: ModeImm, Val: cnt}
		}
		return Instr{Op: sop, Size: sz, Src: src,
			Dst: Operand{Mode: ModeDataReg, Reg: uint8(op & 7)}}, nil
	}
	return Instr{}, fmt.Errorf("unsupported opcode %04x", op)
}

// decodeALU handles the 1000/1001/1011/1100/1101 families.
func (d *decoder) decodeALU(op uint16) (Instr, error) {
	family := op >> 12
	opmode := op >> 6 & 7
	reg := uint8(op >> 9 & 7)

	// MULU/MULS/DIVU special opmodes.
	if opmode == 3 || opmode == 7 {
		switch family {
		case 0xC:
			mop := MULU
			if opmode == 7 {
				mop = MULS
			}
			src, err := d.ea(op&0x3F, Word)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: mop, Size: Word, Src: src, Dst: Operand{Mode: ModeDataReg, Reg: reg}}, nil
		case 0x8:
			if opmode == 3 {
				src, err := d.ea(op&0x3F, Word)
				if err != nil {
					return Instr{}, err
				}
				return Instr{Op: DIVU, Size: Word, Src: src, Dst: Operand{Mode: ModeDataReg, Reg: reg}}, nil
			}
		case 0x9, 0xB, 0xD:
			// ADDA/CMPA/SUBA
			aop := map[uint16]Op{0x9: SUBA, 0xB: CMPA, 0xD: ADDA}[family]
			sz := Word
			if opmode == 7 {
				sz = Long
			}
			src, err := d.ea(op&0x3F, sz)
			if err != nil {
				return Instr{}, err
			}
			return Instr{Op: aop, Size: sz, Src: src, Dst: Operand{Mode: ModeAddrReg, Reg: reg}}, nil
		}
	}

	// EXG (inside the 1100 family).
	if family == 0xC && (op&0x01F8 == 0x0140 || op&0x01F8 == 0x0148 || op&0x01F8 == 0x0188) {
		rx, ry := uint8(op>>9&7), uint8(op&7)
		switch op & 0x01F8 {
		case 0x0140:
			return Instr{Op: EXG, Size: Long,
				Src: Operand{Mode: ModeDataReg, Reg: rx}, Dst: Operand{Mode: ModeDataReg, Reg: ry}}, nil
		case 0x0148:
			return Instr{Op: EXG, Size: Long,
				Src: Operand{Mode: ModeAddrReg, Reg: rx}, Dst: Operand{Mode: ModeAddrReg, Reg: ry}}, nil
		default:
			return Instr{Op: EXG, Size: Long,
				Src: Operand{Mode: ModeDataReg, Reg: rx}, Dst: Operand{Mode: ModeAddrReg, Reg: ry}}, nil
		}
	}

	sz, err := sizeFromBits(opmode & 3)
	if err != nil {
		return Instr{}, err
	}
	toEA := opmode&4 != 0
	var aop Op
	switch family {
	case 0x8:
		aop = OR
	case 0x9:
		aop = SUB
	case 0xB:
		if toEA {
			aop = EOR
		} else {
			aop = CMP
		}
	case 0xC:
		aop = AND
	case 0xD:
		aop = ADD
	}
	if toEA {
		dst, err := d.ea(op&0x3F, sz)
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: aop, Size: sz,
			Src: Operand{Mode: ModeDataReg, Reg: reg}, Dst: dst}, nil
	}
	src, err := d.ea(op&0x3F, sz)
	if err != nil {
		return Instr{}, err
	}
	return Instr{Op: aop, Size: sz, Src: src, Dst: Operand{Mode: ModeDataReg, Reg: reg}}, nil
}
