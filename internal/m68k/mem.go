package m68k

import "fmt"

// DeviceBase is the start of the memory-mapped device window. Data
// addresses at or above this value are routed to the CPU's DeviceBus
// (PASM maps the interconnection-network transfer registers and the
// SIMD instruction space there).
const DeviceBase uint32 = 0x00F00000

// Memory models one processor's main memory: big-endian, byte
// addressed, with a configurable per-access wait-state penalty and a
// deterministic DRAM refresh-interference model.
//
// The PASM prototype's PE main memories are dynamic RAM that costs one
// more wait state per access than the Fetch Unit queue's static RAM,
// and DRAM refresh can occasionally steal bus cycles from the CPU (the
// paper, Section 3). Refresh is modeled deterministically: at most one
// stall of RefreshStall cycles is charged per RefreshPeriod of
// simulated time, and only when an access actually collides with it.
type Memory struct {
	data []byte

	// WaitStates is charged once per bus access (a word or byte
	// transfer; longs are two accesses).
	WaitStates int64
	// RefreshPeriod is the minimum spacing, in CPU cycles, between
	// charged refresh stalls. Zero disables refresh modeling.
	RefreshPeriod int64
	// RefreshStall is the cycles stolen by one refresh collision.
	RefreshStall int64

	nextRefresh int64
}

// NewMemory returns a memory of the given size in bytes with no wait
// states and no refresh (static-RAM behaviour); callers configure the
// DRAM penalties explicitly.
func NewMemory(size uint32) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Reset zeroes the contents and the refresh phase but keeps the
// timing configuration.
func (m *Memory) Reset() {
	for i := range m.data {
		m.data[i] = 0
	}
	m.nextRefresh = 0
}

// Penalty returns the wait-state plus refresh cycles for `accesses`
// bus accesses starting at the given CPU clock, advancing the refresh
// phase. It is deterministic in (clock, access history).
func (m *Memory) Penalty(clock int64, accesses int64) int64 {
	p := m.WaitStates * accesses
	if m.RefreshPeriod > 0 && clock >= m.nextRefresh {
		p += m.RefreshStall
		m.nextRefresh = clock + m.RefreshPeriod
	}
	return p
}

// RefreshPhase returns the refresh model's state relative to the
// given CPU clock: the cycles until the next chargeable refresh
// collision (<= 0 means the next access collides). Penalty depends on
// the clock only through this value, so two machine states with equal
// phase behave identically — the property the PASM segment
// memoization relies on to key and replay refresh interference.
func (m *Memory) RefreshPhase(clock int64) int64 {
	return m.nextRefresh - clock
}

// SetRefreshPhase restores the refresh state captured by RefreshPhase
// against a (possibly different) CPU clock.
func (m *Memory) SetRefreshPhase(clock, phase int64) {
	m.nextRefresh = clock + phase
}

// AddressError reports an odd-address word/long access, which the
// MC68000 raises as an address-error exception. The simulator surfaces
// it as a program error.
type AddressError struct {
	Addr uint32
	Size Size
}

func (e *AddressError) Error() string {
	return fmt.Sprintf("m68k: address error: %s access at odd address $%X", e.Size, e.Addr)
}

// BoundsError reports an access outside the memory.
type BoundsError struct {
	Addr uint32
	Size Size
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("m68k: bus error: %s access at $%X beyond memory", e.Size, e.Addr)
}

func (m *Memory) check(addr uint32, sz Size) error {
	if sz != Byte && addr&1 != 0 {
		return &AddressError{Addr: addr, Size: sz}
	}
	if addr+sz.Bytes() > uint32(len(m.data)) || addr+sz.Bytes() < addr {
		return &BoundsError{Addr: addr, Size: sz}
	}
	return nil
}

// Read returns the value of the given size at addr (big-endian).
func (m *Memory) Read(addr uint32, sz Size) (uint32, error) {
	if err := m.check(addr, sz); err != nil {
		return 0, err
	}
	switch sz {
	case Byte:
		return uint32(m.data[addr]), nil
	case Word:
		return uint32(m.data[addr])<<8 | uint32(m.data[addr+1]), nil
	default:
		return uint32(m.data[addr])<<24 | uint32(m.data[addr+1])<<16 |
			uint32(m.data[addr+2])<<8 | uint32(m.data[addr+3]), nil
	}
}

// Write stores the value of the given size at addr (big-endian).
func (m *Memory) Write(addr uint32, sz Size, val uint32) error {
	if err := m.check(addr, sz); err != nil {
		return err
	}
	switch sz {
	case Byte:
		m.data[addr] = byte(val)
	case Word:
		m.data[addr] = byte(val >> 8)
		m.data[addr+1] = byte(val)
	default:
		m.data[addr] = byte(val >> 24)
		m.data[addr+1] = byte(val >> 16)
		m.data[addr+2] = byte(val >> 8)
		m.data[addr+3] = byte(val)
	}
	return nil
}

// WriteWords stores a slice of 16-bit words starting at addr; a
// convenience for loading data segments from the host.
func (m *Memory) WriteWords(addr uint32, words []uint16) error {
	for i, w := range words {
		if err := m.Write(addr+uint32(2*i), Word, uint32(w)); err != nil {
			return err
		}
	}
	return nil
}

// ReadWords reads count 16-bit words starting at addr.
func (m *Memory) ReadWords(addr uint32, count int) ([]uint16, error) {
	out := make([]uint16, count)
	for i := range out {
		v, err := m.Read(addr+uint32(2*i), Word)
		if err != nil {
			return nil, err
		}
		out[i] = uint16(v)
	}
	return out, nil
}
