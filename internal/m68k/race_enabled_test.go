//go:build race

package m68k

const raceEnabled = true
