// Text exporters: the per-unit utilization/wait-breakdown table, the
// aggregated registry dump, and the interleaved event listing used by
// pasmrun -trace. All output is derived from simulated quantities
// only, so it is byte-identical across runs and host worker counts.
package obs

import (
	"fmt"
	"io"

	"repro/internal/m68k"
)

// WriteUnitTable writes one row per unit: final clock, instruction
// count, the synchronization waits the unit accumulated (lockstep
// release, barrier, network data), and the busy fraction that remains.
// Requires Config.Metrics; units without a registry print totals only.
func WriteUnitTable(w io.Writer, r *Recorder) error {
	if _, err := fmt.Fprintf(w, "%-5s %12s %10s %12s %12s %12s %6s\n",
		"unit", "cycles", "instrs", "lockstep-w", "barrier-w", "net-w", "busy%"); err != nil {
		return err
	}
	for _, u := range r.Units() {
		var lock, bar, net int64
		if u.Reg != nil {
			lock = u.Reg.Counter("wait_lockstep_cycles")
			bar = u.Reg.Counter("wait_barrier_cycles")
			net = u.Reg.Counter("wait_net_cycles")
		}
		busy := 0.0
		if u.Clock > 0 {
			busy = 100 * float64(u.Clock-lock-bar-net) / float64(u.Clock)
		}
		if _, err := fmt.Fprintf(w, "%-5s %12d %10d %12d %12d %12d %6.1f\n",
			u.Name, u.Clock, u.Instrs, lock, bar, net, busy); err != nil {
			return err
		}
	}
	return nil
}

// WriteRegistryTable writes an aggregated registry: counters sorted by
// name, then histogram summaries with their populated buckets.
func WriteRegistryTable(w io.Writer, g *Registry) error {
	for _, n := range g.CounterNames() {
		if _, err := fmt.Fprintf(w, "%-24s %14d\n", n, g.Counter(n)); err != nil {
			return err
		}
	}
	for _, n := range g.HistNames() {
		h := g.Histogram(n)
		if h.N == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-24s count=%d mean=%.1f min=%d max=%d\n",
			n, h.N, h.Mean(), h.Min, h.Max); err != nil {
			return err
		}
		for i, b := range h.Bounds {
			if h.Counts[i] != 0 {
				if _, err := fmt.Fprintf(w, "  le=%-6d %14d\n", b, h.Counts[i]); err != nil {
					return err
				}
			}
		}
		if c := h.Counts[len(h.Counts)-1]; c != 0 {
			if _, err := fmt.Fprintf(w, "  overflow  %14d\n", c); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteListing renders the retained events of every unit as one
// interleaved, simulated-timestamp-ordered listing: instruction
// retires (as in the old per-unit trace listing) with barrier,
// network, fetch and mode-switch events woven in between, so S/MIMD
// mode switches and synchronization stalls are visible in context.
// disasm, when non-nil, supplies instruction text by program index.
func WriteListing(w io.Writer, r *Recorder, disasm func(pc int) string) error {
	units := r.Units()
	for _, u := range units {
		if d := u.Dropped(); d > 0 {
			if _, err := fmt.Fprintf(w, "... %s: %d earlier events dropped ...\n", u.Name, d); err != nil {
				return err
			}
		}
	}
	for _, ev := range r.Merged() {
		text := describe(ev, disasm)
		if _, err := fmt.Fprintf(w, "%-5s %10d  +%-6d %s\n",
			units[ev.Unit].Name, ev.Clock, ev.Dur, text); err != nil {
			return err
		}
	}
	return nil
}

// describe renders one event's listing text.
func describe(ev Event, disasm func(pc int) string) string {
	switch ev.Kind {
	case KindInstr:
		text := m68k.Op(ev.Arg).String()
		if disasm != nil {
			text = disasm(int(ev.PC))
		}
		return fmt.Sprintf("pc=%-6d %s", ev.PC, text)
	case KindFetchEnqueue:
		return fmt.Sprintf("fetch-enqueue words=%d", ev.Arg)
	case KindFetchRelease:
		return fmt.Sprintf("fetch-release words=%d", ev.Arg)
	case KindQueueDepth:
		return fmt.Sprintf("queue-depth words=%d", ev.Arg)
	case KindLockstepWait:
		return "lockstep-wait"
	case KindBarrierArrive:
		return "barrier-arrive"
	case KindBarrierRelease:
		return fmt.Sprintf("barrier-release round=%d", ev.Arg)
	case KindNetSend:
		return fmt.Sprintf("net-send dst=%d", ev.Arg)
	case KindNetRecv:
		return "net-recv"
	case KindNetPoll:
		return fmt.Sprintf("net-poll ready=%d", ev.Arg)
	case KindNetReconfig:
		return fmt.Sprintf("net-reconfig dst=%d", ev.Arg)
	case KindModeSwitch:
		if ev.Arg != 0 {
			return "mode-switch -> MIMD section"
		}
		return "mode-switch -> SIMD rejoin"
	}
	return ev.Kind.String()
}
