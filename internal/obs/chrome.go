// Chrome trace-event exporter: renders a recorder's merged stream in
// the trace-event "JSON object format" understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing. The whole machine is one
// process; every simulated unit (PE/MC) is one thread track; one
// trace-timestamp unit is one simulated clock cycle (the file declares
// displayTimeUnit "ns" so viewers show raw cycle numbers rather than
// inventing milliseconds).
package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/m68k"
)

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Comment         string       `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the recorder's merged event stream as Chrome
// trace-event JSON. disasm, when non-nil, names instruction slices
// (typically prog.Instrs[pc].String()); otherwise the opcode mnemonic
// is used. Output is fully deterministic: metadata in unit order, then
// events in merged (Clock, Unit, Seq) order, with JSON maps marshaled
// key-sorted by encoding/json.
func WriteChromeTrace(w io.Writer, r *Recorder, disasm func(pc int) string) error {
	units := r.Units()
	evs := make([]traceEvent, 0, 2*len(units)+len(r.Merged()))
	evs = append(evs, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "PASM VM"},
	})
	for _, u := range units {
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: u.ID,
			Args: map[string]any{"name": u.Name},
		})
		evs = append(evs, traceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: u.ID,
			Args: map[string]any{"sort_index": u.ID},
		})
	}
	for _, ev := range r.Merged() {
		evs = append(evs, convertEvent(ev, units[ev.Unit].Name, disasm))
	}
	buf, err := json.MarshalIndent(chromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ns",
		Comment:         "timestamps are simulated PASM clock cycles",
	}, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// convertEvent maps one simulator event onto a trace event. Slice
// events span [Clock-Dur, Clock]; instants sit at Clock.
func convertEvent(ev Event, unit string, disasm func(pc int) string) traceEvent {
	out := traceEvent{Ts: ev.Clock, Pid: 0, Tid: int(ev.Unit)}
	slice := func(cat, name string) {
		out.Ph, out.Cat, out.Name = "X", cat, name
		out.Ts, out.Dur = ev.Clock-ev.Dur, ev.Dur
	}
	instant := func(cat, name string) {
		out.Ph, out.Cat, out.Name = "i", cat, name
		out.S = "t"
	}
	switch ev.Kind {
	case KindInstr:
		name := m68k.Op(ev.Arg).String()
		if disasm != nil {
			name = disasm(int(ev.PC))
		}
		slice("instr", name)
		out.Args = map[string]any{"pc": ev.PC}
	case KindFetchEnqueue:
		slice("fetch", "fetch-enqueue")
		out.Args = map[string]any{"words": ev.Arg}
	case KindFetchRelease:
		instant("fetch", "fetch-release")
		out.Args = map[string]any{"words": ev.Arg}
	case KindQueueDepth:
		out.Ph, out.Name = "C", unit+" queue depth"
		out.Args = map[string]any{"words": ev.Arg}
	case KindLockstepWait:
		slice("wait", "lockstep-wait")
	case KindBarrierArrive:
		instant("barrier", "barrier-arrive")
	case KindBarrierRelease:
		slice("wait", "barrier-wait")
		out.Args = map[string]any{"round": ev.Arg}
	case KindNetSend:
		instant("net", "net-send")
		out.Args = map[string]any{"dst": ev.Arg, "wait": ev.Dur}
	case KindNetRecv:
		if ev.Dur > 0 {
			slice("wait", "net-recv-wait")
		} else {
			instant("net", "net-recv")
		}
	case KindNetPoll:
		instant("net", "net-poll")
		out.Args = map[string]any{"ready": ev.Arg}
	case KindNetReconfig:
		slice("net", "net-reconfig")
		out.Args = map[string]any{"dst": ev.Arg}
	case KindModeSwitch:
		if ev.Arg != 0 {
			instant("mode", "mimd-section-begin")
		} else {
			instant("mode", "mimd-section-end")
		}
	default:
		instant("", ev.Kind.String())
	}
	return out
}

// ValidateChromeTrace checks that data is a well-formed trace in the
// exporter's schema: a JSON object whose traceEvents entries each
// carry a name, a known phase, integer pid/tid, a timestamp on
// non-metadata events, and a non-negative duration on complete
// events. Used by the trace-smoke CI check and the exporter tests. It
// returns the event count on success.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return 0, fmt.Errorf("obs: event %d has no name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok {
			return 0, fmt.Errorf("obs: event %d (%s) has no phase", i, name)
		}
		switch ph {
		case "M", "X", "i", "I", "C", "B", "E":
		default:
			return 0, fmt.Errorf("obs: event %d (%s) has unknown phase %q", i, name, ph)
		}
		for _, f := range []string{"pid", "tid"} {
			if _, ok := ev[f].(float64); !ok {
				return 0, fmt.Errorf("obs: event %d (%s) has no integer %s", i, name, f)
			}
		}
		if ph == "M" {
			continue
		}
		if _, ok := ev["ts"].(float64); !ok {
			return 0, fmt.Errorf("obs: event %d (%s) has no timestamp", i, name)
		}
		if ph == "X" {
			if dur, present := ev["dur"]; present {
				d, ok := dur.(float64)
				if !ok || d < 0 {
					return 0, fmt.Errorf("obs: event %d (%s) has invalid dur %v", i, name, dur)
				}
			}
		}
	}
	return len(doc.TraceEvents), nil
}
