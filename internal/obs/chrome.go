// Chrome trace-event exporter: renders a recorder's merged stream in
// the trace-event "JSON object format" understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing. The whole machine is one
// process; every simulated unit (PE/MC) is one thread track; one
// trace-timestamp unit is one simulated clock cycle (the file declares
// displayTimeUnit "ns" so viewers show raw cycle numbers rather than
// inventing milliseconds).
package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/m68k"
)

// TraceEvent is one entry of a Chrome trace's traceEvents array.
// Timestamps are float64 so callers can rescale a simulated-cycle
// stream onto a host-microsecond timebase (the telemetry merge);
// whole-number values marshal identically to integers, which keeps
// the golden cycle-domain exports byte-stable.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level JSON object.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Comment         string       `json:"otherData,omitempty"`
}

// ChromeEvents renders a recorder's units and merged stream as trace
// events: per-unit thread metadata first (tids offset by tidBase under
// pid), then the events in merged (Clock, Unit, Seq) order. ts, when
// non-nil, maps a simulated clock value onto the output timebase —
// slice events transform both endpoints, so durations rescale with
// their positions; nil keeps raw cycles. The process_name metadata is
// the caller's to emit (WriteChromeTrace names the lone process; the
// telemetry merge names one process per clock domain).
func ChromeEvents(r *Recorder, disasm func(pc int) string, pid, tidBase int, ts func(clock int64) float64) []TraceEvent {
	units := r.Units()
	merged := r.Merged()
	evs := make([]TraceEvent, 0, 2*len(units)+len(merged))
	for _, u := range units {
		evs = append(evs, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tidBase + u.ID,
			Args: map[string]any{"name": u.Name},
		})
		evs = append(evs, TraceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tidBase + u.ID,
			Args: map[string]any{"sort_index": tidBase + u.ID},
		})
	}
	for _, ev := range merged {
		out := convertEvent(ev, units[ev.Unit].Name, disasm)
		out.Pid = pid
		out.Tid = tidBase + int(ev.Unit)
		if ts != nil && out.Ph != "M" {
			if out.Ph == "X" {
				start, end := ts(int64(out.Ts)), ts(int64(out.Ts+out.Dur))
				out.Ts, out.Dur = start, end-start
			} else {
				out.Ts = ts(int64(out.Ts))
			}
		}
		evs = append(evs, out)
	}
	return evs
}

// WriteChromeTrace writes the recorder's merged event stream as Chrome
// trace-event JSON. disasm, when non-nil, names instruction slices
// (typically prog.Instrs[pc].String()); otherwise the opcode mnemonic
// is used. Output is fully deterministic: metadata in unit order, then
// events in merged (Clock, Unit, Seq) order, with JSON maps marshaled
// key-sorted by encoding/json.
func WriteChromeTrace(w io.Writer, r *Recorder, disasm func(pc int) string) error {
	evs := make([]TraceEvent, 0, 1)
	evs = append(evs, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "PASM VM"},
	})
	evs = append(evs, ChromeEvents(r, disasm, 0, 0, nil)...)
	buf, err := json.MarshalIndent(ChromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ns",
		Comment:         "timestamps are simulated PASM clock cycles",
	}, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// convertEvent maps one simulator event onto a trace event in the raw
// cycle timebase. Slice events span [Clock-Dur, Clock]; instants sit
// at Clock.
func convertEvent(ev Event, unit string, disasm func(pc int) string) TraceEvent {
	out := TraceEvent{Ts: float64(ev.Clock)}
	slice := func(cat, name string) {
		out.Ph, out.Cat, out.Name = "X", cat, name
		out.Ts, out.Dur = float64(ev.Clock-ev.Dur), float64(ev.Dur)
	}
	instant := func(cat, name string) {
		out.Ph, out.Cat, out.Name = "i", cat, name
		out.S = "t"
	}
	switch ev.Kind {
	case KindInstr:
		name := m68k.Op(ev.Arg).String()
		if disasm != nil {
			name = disasm(int(ev.PC))
		}
		slice("instr", name)
		out.Args = map[string]any{"pc": ev.PC}
	case KindFetchEnqueue:
		slice("fetch", "fetch-enqueue")
		out.Args = map[string]any{"words": ev.Arg}
	case KindFetchRelease:
		instant("fetch", "fetch-release")
		out.Args = map[string]any{"words": ev.Arg}
	case KindQueueDepth:
		out.Ph, out.Name = "C", unit+" queue depth"
		out.Args = map[string]any{"words": ev.Arg}
	case KindLockstepWait:
		slice("wait", "lockstep-wait")
	case KindBarrierArrive:
		instant("barrier", "barrier-arrive")
	case KindBarrierRelease:
		slice("wait", "barrier-wait")
		out.Args = map[string]any{"round": ev.Arg}
	case KindNetSend:
		instant("net", "net-send")
		out.Args = map[string]any{"dst": ev.Arg, "wait": ev.Dur}
	case KindNetRecv:
		if ev.Dur > 0 {
			slice("wait", "net-recv-wait")
		} else {
			instant("net", "net-recv")
		}
	case KindNetPoll:
		instant("net", "net-poll")
		out.Args = map[string]any{"ready": ev.Arg}
	case KindNetReconfig:
		slice("net", "net-reconfig")
		out.Args = map[string]any{"dst": ev.Arg}
	case KindModeSwitch:
		if ev.Arg != 0 {
			instant("mode", "mimd-section-begin")
		} else {
			instant("mode", "mimd-section-end")
		}
	default:
		instant("", ev.Kind.String())
	}
	return out
}

// ValidateChromeTrace checks that data is a well-formed trace in the
// exporter's schema: a JSON object whose traceEvents entries each
// carry a name, a known phase, integer pid/tid, a timestamp on
// non-metadata events, and a non-negative duration on complete
// events. Used by the trace-smoke CI check and the exporter tests. It
// returns the event count on success.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		name, ok := ev["name"].(string)
		if !ok || name == "" {
			return 0, fmt.Errorf("obs: event %d has no name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok {
			return 0, fmt.Errorf("obs: event %d (%s) has no phase", i, name)
		}
		switch ph {
		case "M", "X", "i", "I", "C", "B", "E":
		default:
			return 0, fmt.Errorf("obs: event %d (%s) has unknown phase %q", i, name, ph)
		}
		for _, f := range []string{"pid", "tid"} {
			if _, ok := ev[f].(float64); !ok {
				return 0, fmt.Errorf("obs: event %d (%s) has no integer %s", i, name, f)
			}
		}
		if ph == "M" {
			continue
		}
		if _, ok := ev["ts"].(float64); !ok {
			return 0, fmt.Errorf("obs: event %d (%s) has no timestamp", i, name)
		}
		if ph == "X" {
			if dur, present := ev["dur"]; present {
				d, ok := dur.(float64)
				if !ok || d < 0 {
					return 0, fmt.Errorf("obs: event %d (%s) has invalid dur %v", i, name, dur)
				}
			}
		}
	}
	return len(doc.TraceEvents), nil
}
