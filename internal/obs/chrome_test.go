package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// synthRecorder builds a small recorder covering every event shape the
// exporter distinguishes.
func synthRecorder() *Recorder {
	r := New(Config{Events: AllKinds, Metrics: true})
	pe := r.Unit("PE0")
	mc := r.Unit("MC0")
	r.Emit(pe, Event{Kind: KindInstr, Clock: 42, Dur: 42, PC: 3, Arg: 14}) // MULU opcode
	r.Emit(pe, Event{Kind: KindLockstepWait, Clock: 60, Dur: 8})
	r.Emit(pe, Event{Kind: KindBarrierArrive, Clock: 70})
	r.Emit(pe, Event{Kind: KindBarrierRelease, Clock: 100, Dur: 30, Arg: 1})
	r.Emit(pe, Event{Kind: KindNetSend, Clock: 110, Arg: 1})
	r.Emit(pe, Event{Kind: KindNetRecv, Clock: 130, Dur: 12})
	r.Emit(pe, Event{Kind: KindNetRecv, Clock: 140})
	r.Emit(pe, Event{Kind: KindNetPoll, Clock: 150, Arg: 1})
	r.Emit(pe, Event{Kind: KindNetReconfig, Clock: 220, Dur: 64, Arg: 5})
	r.Emit(pe, Event{Kind: KindModeSwitch, Clock: 230, Arg: 1})
	r.Emit(pe, Event{Kind: KindModeSwitch, Clock: 260})
	r.Emit(mc, Event{Kind: KindFetchEnqueue, Clock: 20, Dur: 6, Arg: 3})
	r.Emit(mc, Event{Kind: KindQueueDepth, Clock: 20, Arg: 3})
	r.Emit(mc, Event{Kind: KindFetchRelease, Clock: 30, Arg: 3})
	r.Finish(pe, 260, 1)
	r.Finish(mc, 30, 1)
	return r
}

func TestWriteChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, synthRecorder(), nil); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// 1 process_name + 2*(thread_name+sort) + 14 events.
	if want := 1 + 4 + 14; n != want {
		t.Fatalf("trace has %d events, want %d", n, want)
	}
}

func TestChromeTraceSlicesSpanDuration(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, synthRecorder(), nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "barrier-wait" {
			found = true
			if ev.Ph != "X" || ev.Ts != 70 || ev.Dur != 30 {
				t.Fatalf("barrier-wait slice ph=%s ts=%v dur=%v, want X/70/30", ev.Ph, ev.Ts, ev.Dur)
			}
		}
	}
	if !found {
		t.Fatal("no barrier-wait slice in trace")
	}
}

func TestChromeTraceDisasmNamesInstrs(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, synthRecorder(), func(pc int) string { return "INSTR@3" })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("INSTR@3")) {
		t.Fatal("disasm text not used for instruction slice names")
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"no array":     `{"displayTimeUnit":"ns"}`,
		"no name":      `{"traceEvents":[{"ph":"i","ts":1,"pid":0,"tid":0}]}`,
		"bad phase":    `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":0,"tid":0}]}`,
		"no pid":       `{"traceEvents":[{"name":"x","ph":"i","ts":1,"tid":0}]}`,
		"no timestamp": `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`,
		"negative dur": `{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":-5,"pid":0,"tid":0}]}`,
		"string ts":    `{"traceEvents":[{"name":"x","ph":"i","ts":"1","pid":0,"tid":0}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	ok := `{"traceEvents":[{"name":"m","ph":"M","pid":0,"tid":0},{"name":"x","ph":"X","ts":1,"dur":5,"pid":0,"tid":0}]}`
	if n, err := ValidateChromeTrace([]byte(ok)); err != nil || n != 2 {
		t.Fatalf("well-formed trace rejected: n=%d err=%v", n, err)
	}
}
