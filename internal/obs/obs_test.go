package obs

import (
	"reflect"
	"testing"
)

func TestKindSet(t *testing.T) {
	s := Kinds(KindInstr, KindBarrierRelease)
	if !s.Has(KindInstr) || !s.Has(KindBarrierRelease) {
		t.Fatalf("set %b missing its own members", s)
	}
	if s.Has(KindNetSend) {
		t.Fatalf("set %b has a member it was not given", s)
	}
	for k := Kind(0); k < NumKinds; k++ {
		if !AllKinds.Has(k) {
			t.Fatalf("AllKinds missing %v", k)
		}
		if k.String() == "kind(?)" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestUnitRegistrationIsIdempotent(t *testing.T) {
	r := New(Config{})
	a := r.Unit("PE0")
	b := r.Unit("PE1")
	if a == b {
		t.Fatalf("distinct names got the same id %d", a)
	}
	if again := r.Unit("PE0"); again != a {
		t.Fatalf("re-registering PE0: got %d, want %d", again, a)
	}
	if n := len(r.Units()); n != 2 {
		t.Fatalf("got %d units, want 2", n)
	}
}

func TestEventFilterAndRing(t *testing.T) {
	r := New(Config{Events: Kinds(KindInstr), Limit: 3})
	u := r.Unit("PE0")
	for i := 0; i < 5; i++ {
		r.Emit(u, Event{Kind: KindInstr, Clock: int64(10 * i), PC: int32(i)})
	}
	r.Emit(u, Event{Kind: KindNetSend, Clock: 999}) // filtered out
	got := r.Units()[0].Events()
	if len(got) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(got))
	}
	for i, ev := range got {
		if want := int32(i + 2); ev.PC != want {
			t.Fatalf("event %d: pc %d, want %d (oldest-first after eviction)", i, ev.PC, want)
		}
	}
	if d := r.Units()[0].Dropped(); d != 2 {
		t.Fatalf("dropped %d, want 2", d)
	}
}

func TestMergedOrdersByClockUnitSeq(t *testing.T) {
	r := New(Config{Events: AllKinds})
	p0 := r.Unit("PE0")
	p1 := r.Unit("PE1")
	// Emit out of timestamp order across units, with ties at clock 50.
	r.Emit(p1, Event{Kind: KindInstr, Clock: 50})
	r.Emit(p1, Event{Kind: KindNetSend, Clock: 50})
	r.Emit(p0, Event{Kind: KindInstr, Clock: 70})
	r.Emit(p0, Event{Kind: KindInstr, Clock: 50})
	r.Emit(p0, Event{Kind: KindInstr, Clock: 20})
	got := r.Merged()
	type key struct {
		clock int64
		unit  int32
		seq   int64
	}
	var keys []key
	for _, ev := range got {
		keys = append(keys, key{ev.Clock, ev.Unit, ev.Seq})
	}
	want := []key{
		{20, 0, 2},
		{50, 0, 1},
		{50, 1, 0},
		{50, 1, 1},
		{70, 0, 0},
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("merged order %v, want %v", keys, want)
	}
}

func TestFinishMirrorsTotalsIntoRegistry(t *testing.T) {
	r := New(Config{Metrics: true})
	u := r.Unit("PE0")
	r.Finish(u, 1234, 56)
	unit := r.Units()[0]
	if unit.Clock != 1234 || unit.Instrs != 56 {
		t.Fatalf("totals %d/%d, want 1234/56", unit.Clock, unit.Instrs)
	}
	if c := unit.Reg.Counter("cycles"); c != 1234 {
		t.Fatalf("cycles counter %d, want 1234", c)
	}
	if c := unit.Reg.Counter("instrs"); c != 56 {
		t.Fatalf("instrs counter %d, want 56", c)
	}
}

func TestDetachedEventsStillFeedMetrics(t *testing.T) {
	// Metrics-only configuration: no events retained, registries live.
	r := New(Config{Metrics: true})
	u := r.Unit("PE0")
	r.Emit(u, Event{Kind: KindBarrierRelease, Clock: 100, Dur: 40, Arg: 1})
	if got := r.Units()[0].Events(); len(got) != 0 {
		t.Fatalf("retained %d events with a zero kind set", len(got))
	}
	if c := r.Metrics().Counter("wait_barrier_cycles"); c != 40 {
		t.Fatalf("wait_barrier_cycles %d, want 40", c)
	}
}
