package obs

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for _, v := range []int64{5, 10, 11, 20, 39, 40, 41, 1000} {
		h.Observe(v)
	}
	// Counts[i] holds samples <= Bounds[i]; last bucket is overflow.
	want := []int64{2, 2, 2, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d: count %d, want %d", i, c, want[i])
		}
	}
	if h.N != 8 || h.Min != 5 || h.Max != 1000 {
		t.Fatalf("N/Min/Max = %d/%d/%d, want 8/5/1000", h.N, h.Min, h.Max)
	}
	if got, want := h.Mean(), float64(5+10+11+20+39+40+41+1000)/8; got != want {
		t.Fatalf("mean %v, want %v", got, want)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 20})
	b := NewHistogram([]int64{10, 20})
	a.Observe(5)
	b.Observe(15)
	b.Observe(100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != 3 || a.Min != 5 || a.Max != 100 || a.Sum != 120 {
		t.Fatalf("merged N/Min/Max/Sum = %d/%d/%d/%d", a.N, a.Min, a.Max, a.Sum)
	}
	// Merging an empty histogram must not disturb Min/Max.
	if err := a.Merge(NewHistogram([]int64{10, 20})); err != nil {
		t.Fatal(err)
	}
	if a.Min != 5 || a.Max != 100 {
		t.Fatalf("empty merge disturbed min/max: %d/%d", a.Min, a.Max)
	}
}

func TestHistogramMergeBoundMismatch(t *testing.T) {
	a := NewHistogram([]int64{10, 20})
	if err := a.Merge(NewHistogram([]int64{10})); err == nil {
		t.Fatal("merging different bucket counts did not error")
	}
	if err := a.Merge(NewHistogram([]int64{10, 30})); err == nil {
		t.Fatal("merging different bounds did not error")
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestRegistryMergeAndFlatten(t *testing.T) {
	a := NewRegistry()
	a.Add("net_sends", 2)
	a.Hist("barrier_wait", waitBounds).Observe(100)

	b := NewRegistry()
	b.Add("net_sends", 3)
	b.Add("net_polls", 1)
	b.Hist("barrier_wait", waitBounds).Observe(5000)

	a.Merge(b)
	if c := a.Counter("net_sends"); c != 5 {
		t.Fatalf("net_sends %d, want 5", c)
	}
	if c := a.Counter("net_polls"); c != 1 {
		t.Fatalf("net_polls %d, want 1", c)
	}
	m := a.Flatten("obs/")
	for _, key := range []string{
		"obs/net_sends", "obs/net_polls",
		"obs/barrier_wait/count", "obs/barrier_wait/mean",
		"obs/barrier_wait/le=256", "obs/barrier_wait/le=16384",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("flattened metrics missing %q (have %v)", key, m)
		}
	}
	if m["obs/barrier_wait/count"] != 2 {
		t.Fatalf("barrier_wait/count = %v, want 2", m["obs/barrier_wait/count"])
	}
	for k := range m {
		if !strings.HasPrefix(k, "obs/") {
			t.Fatalf("key %q missing prefix", k)
		}
	}
}

func TestObserveMapsEventsToMetrics(t *testing.T) {
	g := NewRegistry()
	g.observe(Event{Kind: KindLockstepWait, Dur: 12})
	g.observe(Event{Kind: KindNetSend, Dur: 3})
	g.observe(Event{Kind: KindNetRecv, Dur: 4})
	g.observe(Event{Kind: KindQueueDepth, Arg: 6})
	g.observe(Event{Kind: KindModeSwitch, Arg: 1})
	if c := g.Counter("wait_lockstep_cycles"); c != 12 {
		t.Fatalf("wait_lockstep_cycles %d", c)
	}
	if c := g.Counter("wait_net_cycles"); c != 7 {
		t.Fatalf("wait_net_cycles %d, want 7", c)
	}
	if c := g.Counter("mode_switches"); c != 1 {
		t.Fatalf("mode_switches %d", c)
	}
	if h := g.Histogram("queue_depth"); h == nil || h.N != 1 {
		t.Fatalf("queue_depth histogram not populated: %+v", h)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want Min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want Max 100", got)
	}
	// Half the mass is in the overflow bucket (31..100); the median
	// rank (50) lands in overflow, interpolated between 30 and Max.
	p50 := h.Quantile(0.5)
	if p50 < 30 || p50 > 100 {
		t.Fatalf("p50 = %v, want within (30, 100]", p50)
	}
	// p05 lands in the first bucket, interpolated between Min and 10.
	p05 := h.Quantile(0.05)
	if p05 < 1 || p05 > 10 {
		t.Fatalf("p05 = %v, want within [1, 10]", p05)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileSingleValue(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	h.Observe(15)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 15 {
			t.Fatalf("single-sample q=%v = %v, want 15 (clamped to Min/Max)", q, got)
		}
	}
}

func TestCaptureBounds(t *testing.T) {
	c := NewCapture(2, 8)
	if c.Kinds() != AllKinds || c.Limit() != 8 {
		t.Fatalf("capture config: kinds=%v limit=%d", c.Kinds(), c.Limit())
	}
	recs := []*Recorder{New(Config{}), New(Config{}), New(Config{})}
	for _, r := range recs {
		c.Offer(r)
	}
	c.Offer(nil) // ignored
	if c.Seen() != 3 {
		t.Fatalf("seen = %d, want 3", c.Seen())
	}
	cells := c.Cells()
	if len(cells) != 2 || cells[0] != recs[0] || cells[1] != recs[1] {
		t.Fatalf("capture should retain the first 2 offers, got %d", len(cells))
	}
	// Nil capture is fully detached.
	var nilCap *Capture
	nilCap.Offer(recs[0])
	if nilCap.Cells() != nil || nilCap.Seen() != 0 {
		t.Fatalf("nil capture should no-op")
	}
}

func TestCaptureDefaults(t *testing.T) {
	c := NewCapture(0, 0)
	if c.Limit() != 4096 {
		t.Fatalf("default limit = %d, want 4096", c.Limit())
	}
	c.Offer(New(Config{}))
	c.Offer(New(Config{}))
	if len(c.Cells()) != 1 {
		t.Fatalf("default max cells should be 1")
	}
}
