// Package obs is the simulator's unified observability layer: a typed
// simulated-time event stream, a metrics registry of counters and
// fixed-bucket histograms, and exporters (Chrome trace-event JSON for
// Perfetto, text tables, interleaved listings).
//
// Simulation components publish events through nil-checked hooks, so a
// detached recorder costs nothing on the hot path (the interpreter
// steady state stays at zero allocations per instruction). Attached,
// every unit of the simulated machine (PE0.., MC0..) gets its own
// buffer and registry: units are advanced by at most one host
// goroutine at a time, so recording needs no locks even when
// Config.HostWorkers runs PE segments in parallel, and the per-unit
// streams are merged in timestamp order on export. Everything recorded
// is simulated time — the stream is byte-identical for any host worker
// count, which the pasm determinism tests enforce.
package obs

import (
	"sort"
	"sync"

	"repro/internal/m68k"
)

// Kind classifies an event.
type Kind uint8

// Event kinds. Slice events (a duration in simulated cycles) carry the
// completion time in Clock and the length in Dur; instantaneous events
// have Dur 0.
const (
	// KindInstr is one committed instruction: Dur its cycle cost
	// (including any device wait charged to it), PC its instruction
	// index, Arg its opcode (m68k.Op).
	KindInstr Kind = iota
	// KindFetchEnqueue is the Fetch Unit controller finishing a block
	// of words into the queue: Dur the controller busy time (including
	// queue-full stalls), Arg the word count. Published on the MC unit.
	KindFetchEnqueue
	// KindFetchRelease is a broadcast instruction leaving the queue to
	// the lockstep group: Arg the word count. Published on the MC unit.
	KindFetchRelease
	// KindQueueDepth samples the queue occupancy after an enqueue or
	// release: Arg the words in flight. Published on the MC unit.
	KindQueueDepth
	// KindLockstepWait is a PE waiting for a SIMD instruction release
	// (the paper's per-instruction max-of-PEs cost): Dur the wait.
	KindLockstepWait
	// KindBarrierArrive is a PE's first read of the Fetch-Unit barrier
	// in the current round.
	KindBarrierArrive
	// KindBarrierRelease is a barrier round releasing a PE: Dur the
	// cycles it waited on the rest of the partition, Arg the round.
	KindBarrierRelease
	// KindNetSend is a completed transmit-register store: Arg the
	// destination line (-1 when no circuit is established), Dur the
	// cycles spent waiting for the destination register to free.
	KindNetSend
	// KindNetRecv is a completed receive-register load: Dur the cycles
	// spent waiting for in-flight data.
	KindNetRecv
	// KindNetPoll is a status-register poll: Arg 1 when the polled
	// condition (TX ready / RX valid) held, 0 otherwise.
	KindNetPoll
	// KindNetReconfig is a run-time circuit establishment: Arg the
	// destination line, Dur the path set-up cost.
	KindNetReconfig
	// KindModeSwitch marks a PE switching execution modes in a mixed
	// SIMD/MIMD program: Arg 1 entering the asynchronous section, 0
	// rejoining the lockstep stream.
	KindModeSwitch
	// NumKinds is the number of event kinds.
	NumKinds
)

var kindNames = [NumKinds]string{
	KindInstr:          "instr",
	KindFetchEnqueue:   "fetch-enqueue",
	KindFetchRelease:   "fetch-release",
	KindQueueDepth:     "queue-depth",
	KindLockstepWait:   "lockstep-wait",
	KindBarrierArrive:  "barrier-arrive",
	KindBarrierRelease: "barrier-wait",
	KindNetSend:        "net-send",
	KindNetRecv:        "net-recv",
	KindNetPoll:        "net-poll",
	KindNetReconfig:    "net-reconfig",
	KindModeSwitch:     "mode-switch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// KindSet is a bit set of event kinds.
type KindSet uint32

// AllKinds selects every event kind.
const AllKinds KindSet = 1<<NumKinds - 1

// Kinds builds a set from a kind list.
func Kinds(ks ...Kind) KindSet {
	var s KindSet
	for _, k := range ks {
		s |= 1 << k
	}
	return s
}

// Has reports whether k is in the set.
func (s KindSet) Has(k Kind) bool { return s>>k&1 != 0 }

// Event is one simulated-time observation. Clock is the event's
// completion time on the unit's timeline; slice events start at
// Clock-Dur. Seq is the unit-local emission order, which breaks
// timestamp ties deterministically when streams are merged.
type Event struct {
	Kind  Kind
	Unit  int32
	PC    int32 // instruction index (KindInstr)
	Seq   int64
	Clock int64
	Dur   int64
	Arg   int64
}

// Config selects what a Recorder retains.
type Config struct {
	// Events selects the kinds kept in the per-unit event buffers; the
	// zero set records nothing (metrics only).
	Events KindSet
	// Limit caps the retained events per unit, keeping the most recent
	// (a ring, like the old trace buffer). 0 means unlimited.
	Limit int
	// Metrics enables the per-unit metrics registries.
	Metrics bool
}

// Recorder collects the event stream and metrics of one simulated
// machine run. Construct with New; attach via pasm.Config.Obs (or
// VM.Obs directly). Unit registration takes a lock; event emission is
// lock-free because each unit is driven by one host goroutine at a
// time.
type Recorder struct {
	cfg Config

	mu    sync.Mutex
	units []*Unit
	index map[string]int
}

// New returns an empty recorder.
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg, index: map[string]int{}}
}

// Unit is one simulated unit's stream: its retained events, metrics
// registry, and end-of-run totals.
type Unit struct {
	ID   int
	Name string
	// Reg is the unit's metrics registry (nil unless Config.Metrics).
	Reg *Registry
	// Clock and Instrs are the unit's final simulated clock and
	// instruction count, set by Finish at the end of a run.
	Clock  int64
	Instrs int64

	rec      *Recorder
	events   []Event
	next     int
	recorded int64 // events that passed the kind filter
}

// Unit registers (or finds) a unit by name and returns its id.
func (r *Recorder) Unit(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.index[name]; ok {
		return id
	}
	u := &Unit{ID: len(r.units), Name: name, rec: r}
	if r.cfg.Metrics {
		u.Reg = NewRegistry()
	}
	r.units = append(r.units, u)
	r.index[name] = u.ID
	return u.ID
}

// Units returns the registered units in id order.
func (r *Recorder) Units() []*Unit {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Unit, len(r.units))
	copy(out, r.units)
	return out
}

// Emit records one event on a unit's stream. Unit and Seq are filled
// in by the recorder. Safe under host parallelism as long as each unit
// is advanced by one goroutine at a time (the simulator's invariant).
func (r *Recorder) Emit(unit int, ev Event) {
	u := r.units[unit]
	ev.Unit = int32(u.ID)
	if u.Reg != nil {
		u.Reg.observe(ev)
	}
	if !r.cfg.Events.Has(ev.Kind) {
		return
	}
	ev.Seq = u.recorded
	u.recorded++
	if r.cfg.Limit > 0 && len(u.events) == r.cfg.Limit {
		u.events[u.next] = ev
		u.next = (u.next + 1) % r.cfg.Limit
		return
	}
	u.events = append(u.events, ev)
}

// Finish records a unit's end-of-run totals and mirrors them into its
// registry.
func (r *Recorder) Finish(unit int, clock, instrs int64) {
	u := r.units[unit]
	u.Clock = clock
	u.Instrs = instrs
	if u.Reg != nil {
		u.Reg.Add("cycles", clock)
		u.Reg.Add("instrs", instrs)
	}
}

// Events returns the unit's retained events, oldest first.
func (u *Unit) Events() []Event {
	out := make([]Event, 0, len(u.events))
	out = append(out, u.events[u.next:]...)
	out = append(out, u.events[:u.next]...)
	return out
}

// Dropped returns how many of the unit's recorded events were evicted
// by the ring limit.
func (u *Unit) Dropped() int64 { return u.recorded - int64(len(u.events)) }

// Merged returns every unit's retained events merged into one stream
// ordered by (Clock, Unit, Seq) — global simulated-time order with
// deterministic tie-breaks, independent of host scheduling.
func (r *Recorder) Merged() []Event {
	var out []Event
	for _, u := range r.Units() {
		out = append(out, u.Events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		return a.Seq < b.Seq
	})
	return out
}

// Metrics returns the merge of every unit's registry in unit order:
// the machine-wide totals. Per-unit registries remain on Units().
func (r *Recorder) Metrics() *Registry {
	out := NewRegistry()
	for _, u := range r.Units() {
		if u.Reg != nil {
			out.Merge(u.Reg)
		}
	}
	return out
}

// AttachCPU chains the recorder onto a CPU's per-instruction trace
// hook, publishing a KindInstr event for every committed instruction.
// Any previously attached hook keeps firing first.
func (r *Recorder) AttachCPU(unit int, cpu *m68k.CPU) {
	prev := cpu.Trace
	cpu.Trace = func(in *m68k.Instr, pc int, clock, cycles int64) {
		if prev != nil {
			prev(in, pc, clock, cycles)
		}
		r.Emit(unit, Event{
			Kind:  KindInstr,
			PC:    int32(pc),
			Clock: clock,
			Dur:   cycles,
			Arg:   int64(in.Op),
		})
	}
}
