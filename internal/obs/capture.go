package obs

import "sync"

// Capture is a bounded sink for whole-cell event streams: the serving
// path's bridge between a request's host-time trace and the simulated
// clock. A traced request hands a Capture into the experiment engine
// (experiments.Options.Capture); each finished cell's recorder is
// offered here and the first MaxCells are retained, each bounded to
// Limit events per unit. Everything else about the run is unchanged —
// captured events never enter the report, so the byte-identity
// invariant the cache and cluster rest on is untouched.
type Capture struct {
	kinds KindSet
	limit int
	max   int

	mu    sync.Mutex
	cells []*Recorder
	seen  int
}

// NewCapture returns a capture retaining at most maxCells cell
// streams of perUnitLimit events per unit (all kinds). Values <= 0
// take the defaults (1 cell, 4096 events per unit).
func NewCapture(maxCells, perUnitLimit int) *Capture {
	if maxCells <= 0 {
		maxCells = 1
	}
	if perUnitLimit <= 0 {
		perUnitLimit = 4096
	}
	return &Capture{kinds: AllKinds, limit: perUnitLimit, max: maxCells}
}

// Kinds returns the event kinds a captured cell retains.
func (c *Capture) Kinds() KindSet { return c.kinds }

// Limit returns the per-unit event ring bound for captured cells.
func (c *Capture) Limit() int { return c.limit }

// Offer hands a finished cell's recorder to the capture; the first
// MaxCells offers are retained, later ones only counted. Safe from
// parallel cell workers.
func (c *Capture) Offer(rec *Recorder) {
	if c == nil || rec == nil {
		return
	}
	c.mu.Lock()
	c.seen++
	if len(c.cells) < c.max {
		c.cells = append(c.cells, rec)
	}
	c.mu.Unlock()
}

// Cells returns the retained cell recorders in offer order.
func (c *Capture) Cells() []*Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Recorder(nil), c.cells...)
}

// Seen returns how many cells were offered (retained or not).
func (c *Capture) Seen() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen
}
