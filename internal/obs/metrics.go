package obs

import (
	"fmt"
	"sort"

	"repro/internal/m68k"
)

// Histogram bucket bounds per metric. All fixed at construction so
// per-unit and per-cell histograms merge bucket-by-bucket.
var (
	// muluBounds covers the MC68000's data-dependent MULU time,
	// 38 + 2*ones(multiplier) = 38..70 cycles.
	muluBounds = []int64{40, 44, 48, 52, 56, 60, 64, 70}
	// waitBounds covers synchronization waits from "none" to
	// pathological.
	waitBounds = []int64{0, 4, 16, 64, 256, 1024, 4096, 16384}
	// depthBounds covers Fetch Unit queue occupancy in words.
	depthBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}
)

// Histogram is a fixed-bucket histogram of int64 samples. Counts[i]
// holds samples <= Bounds[i] (and > Bounds[i-1]); the final element of
// Counts is the overflow bucket.
type Histogram struct {
	Bounds []int64
	Counts []int64
	N, Sum int64
	Min    int64 // valid when N > 0
	Max    int64
}

// NewHistogram returns a histogram over strictly ascending bucket
// bounds.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{Bounds: b, Counts: make([]int64, len(b)+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation inside the bucket holding that rank, clamped to the
// observed [Min, Max]. Fixed buckets make this an estimate, not an
// exact order statistic, but Min/Max clamping keeps p0/p100 honest and
// the serving-path latency buckets are dense enough for p50/p95/p99
// dashboards. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.Min)
	}
	if q >= 1 {
		return float64(h.Max)
	}
	rank := q * float64(h.N)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			// Bucket i spans (lo, hi]: lo is the previous bound (or the
			// observed Min below the first bound), hi the bound (or the
			// observed Max in the overflow bucket).
			lo, hi := float64(h.Min), float64(h.Max)
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			if i < len(h.Bounds) {
				hi = float64(h.Bounds[i])
			}
			if lo < float64(h.Min) {
				lo = float64(h.Min)
			}
			if hi > float64(h.Max) {
				hi = float64(h.Max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(h.Max)
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Merge folds another histogram with identical bounds into this one.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(h.Bounds), len(o.Bounds))
	}
	for i, b := range h.Bounds {
		if o.Bounds[i] != b {
			return fmt.Errorf("obs: merging histograms with different bounds at bucket %d", i)
		}
	}
	if o.N == 0 {
		return nil
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if h.N == 0 || o.Max > h.Max {
		h.Max = o.Max
	}
	h.N += o.N
	h.Sum += o.Sum
	return nil
}

// Registry is a named set of counters and histograms. It is not safe
// for concurrent use: each unit owns one, and aggregation across units
// or experiment cells serializes merges externally. Counter and
// histogram merging is commutative, so aggregates built from parallel
// cells are deterministic regardless of host completion order.
type Registry struct {
	counters map[string]int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]int64{}, hists: map[string]*Histogram{}}
}

// Add increments a counter.
func (g *Registry) Add(name string, v int64) { g.counters[name] += v }

// Counter returns a counter's value (0 when absent).
func (g *Registry) Counter(name string) int64 { return g.counters[name] }

// Hist returns the named histogram, creating it with the given bounds
// on first use.
func (g *Registry) Hist(name string, bounds []int64) *Histogram {
	h, ok := g.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		g.hists[name] = h
	}
	return h
}

// Histogram returns the named histogram, or nil.
func (g *Registry) Histogram(name string) *Histogram { return g.hists[name] }

// CounterNames returns the counter names, sorted.
func (g *Registry) CounterNames() []string {
	names := make([]string, 0, len(g.counters))
	for n := range g.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistNames returns the histogram names, sorted.
func (g *Registry) HistNames() []string {
	names := make([]string, 0, len(g.hists))
	for n := range g.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds another registry into this one. Histograms with the same
// name must share bounds (they do: bounds are fixed per metric).
func (g *Registry) Merge(o *Registry) {
	for n, v := range o.counters {
		g.counters[n] += v
	}
	for n, h := range o.hists {
		mine, ok := g.hists[n]
		if !ok {
			mine = NewHistogram(h.Bounds)
			g.hists[n] = mine
		}
		if err := mine.Merge(h); err != nil {
			panic(err) // fixed per-metric bounds make this unreachable
		}
	}
}

// Flatten renders the registry as stable scalar metrics: counters as
// prefix+name, histograms as prefix+name+"/count", "/sum", "/mean",
// "/min", "/max" plus per-bucket counts ("/le=N", "/overflow"). All
// values derive from simulated quantities, so two identical runs
// flatten identically.
func (g *Registry) Flatten(prefix string) map[string]float64 {
	m := map[string]float64{}
	for n, v := range g.counters {
		m[prefix+n] = float64(v)
	}
	for n, h := range g.hists {
		if h.N == 0 {
			continue
		}
		m[prefix+n+"/count"] = float64(h.N)
		m[prefix+n+"/sum"] = float64(h.Sum)
		m[prefix+n+"/mean"] = h.Mean()
		m[prefix+n+"/min"] = float64(h.Min)
		m[prefix+n+"/max"] = float64(h.Max)
		for i, b := range h.Bounds {
			if h.Counts[i] != 0 {
				m[fmt.Sprintf("%s%s/le=%d", prefix, n, b)] = float64(h.Counts[i])
			}
		}
		if c := h.Counts[len(h.Counts)-1]; c != 0 {
			m[prefix+n+"/overflow"] = float64(c)
		}
	}
	return m
}

// observe maps one event onto the unit's metrics.
func (g *Registry) observe(ev Event) {
	switch ev.Kind {
	case KindInstr:
		if m68k.Op(ev.Arg) == m68k.MULU {
			g.Hist("mulu_cycles", muluBounds).Observe(ev.Dur)
		}
	case KindLockstepWait:
		g.Add("wait_lockstep_cycles", ev.Dur)
		g.Hist("lockstep_wait", waitBounds).Observe(ev.Dur)
	case KindBarrierArrive:
		g.Add("barrier_arrivals", 1)
	case KindBarrierRelease:
		g.Add("wait_barrier_cycles", ev.Dur)
		g.Hist("barrier_wait", waitBounds).Observe(ev.Dur)
	case KindNetSend:
		g.Add("net_sends", 1)
		g.Add("wait_net_cycles", ev.Dur)
	case KindNetRecv:
		g.Add("net_recvs", 1)
		g.Add("wait_net_cycles", ev.Dur)
	case KindNetPoll:
		g.Add("net_polls", 1)
	case KindNetReconfig:
		g.Add("net_reconfigs", 1)
	case KindQueueDepth:
		g.Hist("queue_depth", depthBounds).Observe(ev.Arg)
	case KindFetchEnqueue:
		g.Add("fetch_enqueues", 1)
	case KindFetchRelease:
		g.Add("fetch_releases", 1)
	case KindModeSwitch:
		g.Add("mode_switches", 1)
	}
}
