package report

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestGenerateQuickReportAllClaimsPass(t *testing.T) {
	var sb strings.Builder
	claims, err := Generate(experiments.DefaultOptions(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 20 {
		t.Fatalf("only %d claims evaluated", len(claims))
	}
	ids := map[string]bool{}
	for _, c := range claims {
		ids[c.ID] = true
	}
	for _, want := range []string{"T1", "F7c", "F11a", "M1", "X1", "X2", "X3", "X4"} {
		if !ids[want] {
			t.Errorf("claim %s missing", want)
		}
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s FAILED: %s (%s)", c.ID, c.Description, c.Detail)
		}
	}
	if !AllPass(claims) {
		t.Error("AllPass false with all claims passing?")
	}
	out := sb.String()
	for _, want := range []string{
		"# PASM reproduction report",
		"## Table 1",
		"## Figure 6", "## Figure 7", "## Figure 8",
		"## Figure 11", "## Figure 12",
		"## Claim checklist",
		"| T1 | PASS |",
		"| F7c | PASS |",
		"superlinear",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "**FAIL**") {
		t.Error("report contains failures")
	}
}

func TestAllPass(t *testing.T) {
	if !AllPass(nil) {
		t.Error("empty claim set should pass")
	}
	if AllPass([]Claim{{Pass: true}, {Pass: false}}) {
		t.Error("failing claim not detected")
	}
}
