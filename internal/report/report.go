// Package report generates the reproduction report: it runs every
// experiment, evaluates the paper's qualitative claims against the
// measurements (the same shape assertions the test suite enforces),
// and writes a self-contained markdown document with the tables, ASCII
// figure shapes, and a PASS/FAIL checklist — one command to audit the
// whole reproduction (cmd/pasmreport).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/experiments"
)

// Claim is one checked statement from the paper.
type Claim struct {
	ID          string
	Description string
	Pass        bool
	Detail      string
}

// Generate runs all experiments with the given options, writes the
// markdown report to w, and returns the evaluated claims.
func Generate(opts experiments.Options, w io.Writer) ([]Claim, error) {
	var claims []Claim
	add := func(id, desc string, pass bool, detail string, args ...any) {
		claims = append(claims, Claim{
			ID: id, Description: desc, Pass: pass,
			Detail: fmt.Sprintf(detail, args...),
		})
	}

	fmt.Fprintf(w, "# PASM reproduction report\n\ngenerated %s; ",
		time.Now().UTC().Format("2006-01-02 15:04 UTC"))
	if opts.Full {
		fmt.Fprint(w, "full problem sizes (paper's n up to 256)\n\n")
	} else {
		fmt.Fprint(w, "quick problem sizes (n up to 64)\n\n")
	}

	section := func(title, body string) {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", title, body)
	}

	// Table 1.
	t1, err := experiments.Table1(opts)
	if err != nil {
		return claims, err
	}
	section("Table 1", t1.Render())
	mips := map[string]map[string]float64{}
	for _, row := range t1.Rows {
		if mips[row.Instruction] == nil {
			mips[row.Instruction] = map[string]float64{}
		}
		mips[row.Instruction][row.Mode] = row.MIPS
	}
	allFaster := true
	for _, m := range mips {
		if m["SIMD"] <= m["MIMD"] {
			allFaster = false
		}
	}
	add("T1", "SIMD raw MIPS exceeds MIMD for every instruction type", allFaster,
		"%d instruction types measured", len(mips))

	// Figure 6.
	f6, err := experiments.Fig6(opts)
	if err != nil {
		return claims, err
	}
	section("Figure 6", f6.Render()+"\n"+f6.Plot())
	first, last := f6.Rows[0], f6.Rows[len(f6.Rows)-1]
	parallelFaster, simdFastest := true, true
	for _, row := range f6.Rows {
		for _, mode := range []string{"SIMD", "MIMD", "S/MIMD"} {
			if row.Cycles[mode] >= row.Cycles["SISD"] {
				parallelFaster = false
			}
		}
		if row.Cycles["SIMD"] > row.Cycles["MIMD"] || row.Cycles["SIMD"] > row.Cycles["S/MIMD"] {
			simdFastest = false
		}
	}
	add("F6a", "every parallel version beats SISD at every n", parallelFaster, "n up to %d", last.N)
	add("F6b", "SIMD is the fastest mode at one multiply per inner loop", simdFastest, "")
	r0 := float64(first.Cycles["MIMD"]) / float64(first.Cycles["S/MIMD"])
	r1 := float64(last.Cycles["MIMD"]) / float64(last.Cycles["S/MIMD"])
	add("F6c", "T_MIMD/T_S-MIMD decreases as n grows (curves converge)", r1 <= r0,
		"%.4f at n=%d -> %.4f at n=%d", r0, first.N, r1, last.N)
	speedup := float64(last.Cycles["SISD"]) / float64(last.Cycles["S/MIMD"])
	add("F6d", "parallel improvement is about a factor of p", speedup > float64(f6.P)*0.6,
		"SISD/S-MIMD = %.2f at n=%d, p=%d", speedup, last.N, f6.P)

	// Figure 7.
	f7, err := experiments.Fig7(opts)
	if err != nil {
		return claims, err
	}
	section("Figure 7", f7.Render()+"\n"+f7.Plot())
	add("F7a", "SIMD wins at one multiply per inner loop", f7.Rows[0].Winner == "SIMD", "")
	lastRow := f7.Rows[len(f7.Rows)-1]
	add("F7b", "S/MIMD wins at thirty multiplies", lastRow.Winner == "S/MIMD", "")
	add("F7c", "crossover at approximately fourteen multiplies",
		f7.Crossover >= 11 && f7.Crossover <= 17, "measured %.1f", f7.Crossover)

	// Figures 8-10.
	for _, muls := range []int{1, 14, 30} {
		bd, err := experiments.Breakdown(opts, muls)
		if err != nil {
			return claims, err
		}
		name := map[int]string{1: "Figure 8", 14: "Figure 9", 30: "Figure 10"}[muls]
		section(name, bd.Render())
		rising := true
		byMode := map[string][]experiments.BreakdownRow{}
		for _, row := range bd.Rows {
			byMode[row.Mode] = append(byMode[row.Mode], row)
		}
		for _, rows := range byMode {
			f := float64(rows[0].Mult) / float64(rows[0].Total)
			l := float64(rows[len(rows)-1].Mult) / float64(rows[len(rows)-1].Total)
			if l <= f {
				rising = false
			}
		}
		add(fmt.Sprintf("F%d", map[int]int{1: 8, 14: 9, 30: 10}[muls]+0),
			fmt.Sprintf("%s: multiplication share grows with n (O(n^3/p) vs O(n^2) comm)", name),
			rising, "")
		switch muls {
		case 14:
			// Totals nearly equal at n=64.
			var s, h int64
			for _, row := range bd.Rows {
				if row.N == 64 {
					if row.Mode == "SIMD" {
						s = row.Total
					} else {
						h = row.Total
					}
				}
			}
			if s > 0 && h > 0 {
				diff := math.Abs(float64(s-h)) / float64(s)
				add("F9b", "at fourteen multiplies the SIMD and S/MIMD totals are equal at n=64",
					diff < 0.01, "relative difference %.3f%%", 100*diff)
			}
		case 30:
			nmax := bd.Rows[len(bd.Rows)-1].N
			var s, h int64
			for _, row := range bd.Rows {
				if row.N == nmax {
					if row.Mode == "SIMD" {
						s = row.Total
					} else {
						h = row.Total
					}
				}
			}
			add("F10b", "at thirty multiplies S/MIMD beats SIMD at the largest n",
				h < s, "%d vs %d cycles at n=%d", h, s, nmax)
		}
	}

	// Figure 11.
	f11, err := experiments.Fig11(opts)
	if err != nil {
		return claims, err
	}
	section("Figure 11", f11.Render()+"\n"+f11.Plot())
	lastE := f11.Rows[len(f11.Rows)-1]
	add("F11a", "SIMD efficiency exceeds unity (superlinear speed-up)",
		lastE.Efficiency["SIMD"] > 1, "%.3f at n=%d", lastE.Efficiency["SIMD"], lastE.X)
	add("F11b", "S/MIMD efficiency exceeds MIMD's and neither reaches 1",
		lastE.Efficiency["S/MIMD"] > lastE.Efficiency["MIMD"] &&
			lastE.Efficiency["S/MIMD"] < 1,
		"S/MIMD %.3f, MIMD %.3f", lastE.Efficiency["S/MIMD"], lastE.Efficiency["MIMD"])
	rising := true
	for i := 1; i < len(f11.Rows); i++ {
		for _, mode := range []string{"MIMD", "S/MIMD"} {
			if f11.Rows[i].Efficiency[mode] <= f11.Rows[i-1].Efficiency[mode] {
				rising = false
			}
		}
	}
	add("F11c", "MIMD-family efficiency rises with problem size", rising, "")

	// Figure 12.
	f12, err := experiments.Fig12(opts)
	if err != nil {
		return claims, err
	}
	section("Figure 12", f12.Render()+"\n"+f12.Plot())
	falling := true
	for i := 1; i < len(f12.Rows); i++ {
		for _, mode := range []string{"SIMD", "MIMD", "S/MIMD"} {
			if f12.Rows[i].Efficiency[mode] >= f12.Rows[i-1].Efficiency[mode] {
				falling = false
			}
		}
	}
	add("F12", "efficiency drops as the number of processors grows", falling, "")

	// Model cross-validation.
	mv, err := experiments.ModelValidation(opts)
	if err != nil {
		return claims, err
	}
	section("Analytic model vs simulator", mv.Render())
	ok := true
	worst := 0.0
	for _, row := range mv.Rows {
		limit := 0.02
		if strings.Contains(row.Name, "gain") {
			limit = 0.15
		}
		if row.RelErr > limit {
			ok = false
		}
		worst = math.Max(worst, row.RelErr)
	}
	add("M1", "closed-form timing model matches the simulator", ok,
		"worst relative error %.1f%%", 100*worst)

	// Extensions beyond the paper.
	cx, err := experiments.CrossoverVsP(opts)
	if err != nil {
		return claims, err
	}
	section("Extension: crossover vs PE count", cx.Render())
	byP := map[int]experiments.CrossoverVsPRow{}
	for _, row := range cx.Rows {
		byP[row.P] = row
	}
	add("X1", "crossover moves later with p (group-local lockstep vs partition-wide barriers)",
		byP[8].Measured > byP[4].Measured &&
			(math.IsNaN(byP[16].Measured) || byP[16].Measured > byP[8].Measured),
		"p=4: %.1f, p=8: %.1f, p=16: %.1f (model %.1f/%.1f/%.1f)",
		byP[4].Measured, byP[8].Measured, byP[16].Measured,
		byP[4].Predicted, byP[8].Predicted, byP[16].Predicted)

	mx, err := experiments.MixedMode(opts)
	if err != nil {
		return claims, err
	}
	section("Extension: fine-grained mixed-mode decoupling", mx.Render())
	mixedNever := true
	for _, row := range mx.Rows {
		if row.Mixed <= row.SIMD {
			mixedNever = false
		}
	}
	lastMx := mx.Rows[len(mx.Rows)-1]
	add("X2", "per-element mixed-mode bursts never beat SIMD (correlated variation), while S/MIMD does",
		mixedNever && lastMx.SMIMD < lastMx.SIMD,
		"Mixed/SIMD %.4f at %d multiplies", float64(lastMx.Mixed)/float64(lastMx.SIMD), lastMx.Muls)

	wl, err := experiments.Workloads(opts)
	if err != nil {
		return claims, err
	}
	section("Extension: additional workload domains", wl.Render())
	wlOK := true
	byKey := map[string]experiments.WorkloadRow{}
	for _, row := range wl.Rows {
		byKey[row.Workload+"/"+row.Mode] = row
	}
	for _, name := range []string{"smoothing 32x32", "reduce n=4096"} {
		if byKey[name+"/SIMD"].Cycles >= byKey[name+"/SISD"].Cycles ||
			byKey[name+"/SIMD"].Cycles >= byKey[name+"/MIMD"].Cycles {
			wlOK = false
		}
	}
	add("X3", "the mode ordering holds across image smoothing and all-reduce (outputs host-verified)", wlOK, "")

	ft, err := experiments.FaultTolerance(opts)
	if err != nil {
		return claims, err
	}
	section("Extension: Extra-Stage Cube fault tolerance", ft.Render())
	ftOK := true
	for _, row := range ft.Rows {
		if !row.OK {
			ftOK = false
		}
	}
	add("X4", "partition isolation under faults; every single connection reroutes; saturating permutations need two passes", ftOK, "")

	// Checklist.
	fmt.Fprint(w, "## Claim checklist\n\n")
	fmt.Fprint(w, "| claim | result | description | detail |\n|---|---|---|---|\n")
	for _, c := range claims {
		mark := "PASS"
		if !c.Pass {
			mark = "**FAIL**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.ID, mark, c.Description, c.Detail)
	}
	fmt.Fprintln(w)
	return claims, nil
}

// AllPass reports whether every claim passed.
func AllPass(claims []Claim) bool {
	for _, c := range claims {
		if !c.Pass {
			return false
		}
	}
	return true
}
