// Package trace provides a lightweight execution tracer for the
// simulated machine: a fixed-capacity ring buffer of per-instruction
// events that CPUs publish through a nil-checked hook, so tracing
// costs nothing unless attached. Intended for debugging generated
// programs and for the verbose mode of cmd/pasmrun.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/m68k"
)

// Event is one executed instruction.
type Event struct {
	Unit   string // "PE3", "MC0", ...
	Seq    int64  // global arrival order in the buffer
	Clock  int64  // unit-local cycle count after the instruction
	Cycles int64  // cycles the instruction took
	PC     int    // instruction index executed
	Text   string // disassembly
}

// Buffer is a ring of the most recent events. The zero value is not
// usable; construct with New. Buffers are not safe for concurrent use;
// attach one buffer per independently running simulation.
type Buffer struct {
	events []Event
	next   int
	total  int64
}

// New returns a buffer retaining the last capacity events.
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{events: make([]Event, 0, capacity)}
}

// Add records an event.
func (b *Buffer) Add(ev Event) {
	ev.Seq = b.total
	b.total++
	if len(b.events) < cap(b.events) {
		b.events = append(b.events, ev)
		return
	}
	b.events[b.next] = ev
	b.next = (b.next + 1) % cap(b.events)
}

// Total returns the number of events ever added.
func (b *Buffer) Total() int64 { return b.total }

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// String renders the retained events as a listing.
func (b *Buffer) String() string {
	var sb strings.Builder
	if dropped := b.total - int64(len(b.events)); dropped > 0 {
		fmt.Fprintf(&sb, "... %d earlier events dropped ...\n", dropped)
	}
	for _, ev := range b.Events() {
		fmt.Fprintf(&sb, "%-5s %10d  +%-4d pc=%-6d %s\n",
			ev.Unit, ev.Clock, ev.Cycles, ev.PC, ev.Text)
	}
	return sb.String()
}

// Attach hooks a CPU's per-instruction trace callback to this buffer
// under the given unit name. Pass prog so events carry disassembly.
func (b *Buffer) Attach(unit string, cpu *m68k.CPU) {
	cpu.Trace = func(in *m68k.Instr, pc int, clock, cycles int64) {
		b.Add(Event{
			Unit:   unit,
			Clock:  clock,
			Cycles: cycles,
			PC:     pc,
			Text:   in.String(),
		})
	}
}
