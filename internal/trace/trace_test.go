package trace

import (
	"strings"
	"testing"

	"repro/internal/m68k"
)

func TestRingBuffer(t *testing.T) {
	b := New(3)
	for i := 0; i < 5; i++ {
		b.Add(Event{Unit: "PE0", PC: i})
	}
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	if evs[0].PC != 2 || evs[2].PC != 4 {
		t.Errorf("wrong window: %+v", evs)
	}
	if b.Total() != 5 {
		t.Errorf("Total = %d", b.Total())
	}
	if evs[0].Seq != 2 {
		t.Errorf("Seq = %d, want 2", evs[0].Seq)
	}
}

func TestBufferCapacityFloor(t *testing.T) {
	b := New(0)
	b.Add(Event{PC: 1})
	b.Add(Event{PC: 2})
	if got := b.Events(); len(got) != 1 || got[0].PC != 2 {
		t.Errorf("capacity floor broken: %+v", got)
	}
}

func TestAttachCapturesExecution(t *testing.T) {
	prog := m68k.MustAssemble(`
		moveq   #3, d0
l:	add.w   d0, d1
	dbra    d0, l
		halt
	`)
	cpu := m68k.NewCPU(prog, m68k.NewMemory(1024))
	b := New(64)
	b.Attach("PE7", cpu)
	if st := cpu.Run(100); st != m68k.StatusHalted {
		t.Fatalf("status %v", st)
	}
	evs := b.Events()
	if int64(len(evs)) != cpu.InstrCount {
		t.Fatalf("traced %d events, executed %d instructions", len(evs), cpu.InstrCount)
	}
	if evs[0].Unit != "PE7" {
		t.Errorf("unit = %q", evs[0].Unit)
	}
	// Clocks are monotone and the last matches the CPU.
	for i := 1; i < len(evs); i++ {
		if evs[i].Clock < evs[i-1].Clock {
			t.Errorf("clock went backwards at %d", i)
		}
	}
	if evs[len(evs)-1].Clock != cpu.Clock {
		t.Errorf("final clock %d != cpu clock %d", evs[len(evs)-1].Clock, cpu.Clock)
	}
	out := b.String()
	for _, want := range []string{"moveq", "add.w", "db", "halt", "PE7"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}

func TestStringReportsDropped(t *testing.T) {
	b := New(2)
	for i := 0; i < 10; i++ {
		b.Add(Event{PC: i})
	}
	if !strings.Contains(b.String(), "8 earlier events dropped") {
		t.Errorf("drop notice missing:\n%s", b.String())
	}
}
