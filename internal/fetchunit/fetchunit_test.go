package fetchunit

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := NewQueue(0, 4); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewQueue(8, 0); err == nil {
		t.Error("wordCycles 0 accepted")
	}
}

func TestEnqueueTiming(t *testing.T) {
	q, _ := NewQueue(64, 4)
	// First block: 3 words issued at t=100 -> last word at 100+12.
	ready, err := q.Enqueue(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ready != 112 {
		t.Errorf("ready = %d, want 112", ready)
	}
	if q.CtrlFree() != 112 {
		t.Errorf("CtrlFree = %d, want 112", q.CtrlFree())
	}
	// Second block issued earlier than the controller frees: chains.
	ready, err = q.Enqueue(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ready != 120 {
		t.Errorf("chained ready = %d, want 120", ready)
	}
	if q.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", q.Pending())
	}
}

func TestQueueFullStallsController(t *testing.T) {
	q, _ := NewQueue(4, 4)
	// Fill the queue: 4 words from t=0, done at 16.
	if _, err := q.Enqueue(0, 4); err != nil {
		t.Fatal(err)
	}
	// Consume the first word only at t=1000.
	if err := q.Consume(1, 1000); err != nil {
		t.Fatal(err)
	}
	// Next word must wait for that dequeue: ready = 1000+4.
	ready, err := q.Enqueue(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ready != 1004 {
		t.Errorf("ready = %d, want 1004 (stalled on full queue)", ready)
	}
}

func TestEnqueueWithoutConsumeIsOrderingError(t *testing.T) {
	q, _ := NewQueue(4, 4)
	if _, err := q.Enqueue(0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue(0, 1); err == nil {
		t.Error("enqueue past an unconsumed full queue accepted")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	q, _ := NewQueue(4, 4)
	if _, err := q.Enqueue(0, 5); err == nil {
		t.Error("entry larger than queue accepted")
	}
}

func TestConsumeMoreThanEnqueued(t *testing.T) {
	q, _ := NewQueue(8, 4)
	if _, err := q.Enqueue(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := q.Consume(3, 10); err == nil {
		t.Error("over-consume accepted")
	}
}

func TestMaxOccupancy(t *testing.T) {
	q, _ := NewQueue(16, 2)
	q.Enqueue(0, 6)
	q.Consume(2, 100)
	q.Enqueue(0, 4)
	if q.MaxOccupancy != 8 {
		t.Errorf("MaxOccupancy = %d, want 8", q.MaxOccupancy)
	}
}

func TestReset(t *testing.T) {
	q, _ := NewQueue(8, 4)
	q.Enqueue(0, 8)
	q.Consume(8, 500)
	q.Reset()
	if q.Pending() != 0 || q.CtrlFree() != 0 || q.MaxOccupancy != 0 {
		t.Error("Reset left state behind")
	}
	ready, err := q.Enqueue(0, 1)
	if err != nil || ready != 4 {
		t.Errorf("after Reset: ready=%d err=%v", ready, err)
	}
}

// Property: with a very deep queue, ready times are exactly
// issue-or-chain plus wordCycles*words — no spurious stalls.
func TestNoStallWhenDeep(t *testing.T) {
	f := func(blocks []uint8) bool {
		q, _ := NewQueue(1<<20, 3)
		expect := int64(0)
		for _, b := range blocks {
			w := int(b%16) + 1
			ready, err := q.Enqueue(0, w)
			if err != nil {
				return false
			}
			expect += int64(3 * w)
			if ready != expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FIFO occupancy accounting never goes negative and pending
// equals enqueued minus consumed.
func TestOccupancyInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		q, _ := NewQueue(32, 2)
		enq, cons := 0, 0
		clock := int64(0)
		for _, op := range ops {
			if op%2 == 0 {
				w := int(op/2%8) + 1
				if enq+w-cons > 32 {
					// Must consume first to respect executor ordering.
					q.Consume(enq-cons, clock)
					cons = enq
				}
				if _, err := q.Enqueue(clock, w); err != nil {
					return false
				}
				enq += w
			} else if enq > cons {
				q.Consume(1, clock)
				cons++
			}
			clock += int64(op)
			if q.Pending() != enq-cons {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	m := AllEnabled(4)
	if m != 0xF {
		t.Errorf("AllEnabled(4) = %#x", m)
	}
	if !m.Enabled(0) || !m.Enabled(3) || m.Enabled(4) {
		t.Error("Enabled bits wrong")
	}
	if m.Count() != 4 {
		t.Errorf("Count = %d", m.Count())
	}
	if Mask(0b1010).Count() != 2 {
		t.Error("Count of 0b1010 != 2")
	}
}
