// Package fetchunit models the PASM Micro Controller's Fetch Unit:
// the finite FIFO queue of SIMD instruction words, the controller that
// moves instruction blocks from the Fetch Unit RAM into the queue word
// by word, and the mask register snapshotted with every enqueued word.
//
// The queue is the architectural feature behind two of the paper's
// headline observations:
//
//   - Control-flow overlap: the MC CPU writes one control word per
//     block and immediately proceeds with loop bookkeeping while the
//     controller streams the block into the queue and the PEs drain
//     it. While the queue stays non-empty the PEs never see control
//     flow at all, which is how SIMD efficiency can exceed 1
//     ("superlinear speed-up", paper Section 10).
//   - Finite depth: when the queue fills, the controller stalls, and
//     a new control word stalls the MC until the controller is free.
//
// The queue stores *timestamps*, not data: the PASM simulator computes
// when each word is enqueued and dequeued, and this package does the
// occupancy arithmetic exactly, word by word.
package fetchunit

import "fmt"

// Queue is the timed Fetch Unit queue of one Micro Controller.
type Queue struct {
	depth      int   // capacity in 16-bit words
	wordCycles int64 // controller cycles to move one word into the queue

	ctrlFree     int64   // when the controller finishes its current block
	enqueuedWord int64   // total words whose enqueue has been scheduled
	consumedWord int64   // total words recorded as dequeued
	freeAt       []int64 // ring: dequeue time of word w at freeAt[w%depth]
	enqSlot      int     // enqueuedWord % depth (ring index kept incrementally)
	consSlot     int     // consumedWord % depth

	// MaxOccupancy tracks the high-water mark of words in flight at
	// enqueue time (observability for the queue-depth ablation).
	MaxOccupancy int
	// FullStalls counts words whose enqueue waited for a slot, and
	// StallCycles the total controller time lost to the full queue —
	// the back-pressure that bounds the MC's run-ahead.
	FullStalls  int64
	StallCycles int64

	// OnEnqueue, when non-nil, observes every completed enqueue: the
	// issue time, the time the last word entered the queue, the word
	// count, and the resulting occupancy. OnConsume observes every
	// dequeue with its release time, word count, and remaining
	// occupancy. Nil hooks cost one pointer test per call.
	OnEnqueue func(issue, ready int64, words, pending int)
	OnConsume func(t int64, words, pending int)
}

// NewQueue returns a queue of the given capacity in words. wordCycles
// is the controller's per-word transfer time.
func NewQueue(depth int, wordCycles int64) (*Queue, error) {
	if depth < 1 {
		return nil, fmt.Errorf("fetchunit: depth %d < 1", depth)
	}
	if wordCycles < 1 {
		return nil, fmt.Errorf("fetchunit: wordCycles %d < 1", wordCycles)
	}
	return &Queue{
		depth:      depth,
		wordCycles: wordCycles,
		freeAt:     make([]int64, depth),
	}, nil
}

// Depth returns the queue capacity in words.
func (q *Queue) Depth() int { return q.depth }

// CtrlFree returns the earliest time the Fetch Unit controller can
// accept a new control word (i.e. when it finishes streaming the
// current block). An MC that executes BCAST before this time stalls.
func (q *Queue) CtrlFree() int64 { return q.ctrlFree }

// Reset clears all queue state.
func (q *Queue) Reset() {
	q.ctrlFree = 0
	q.enqueuedWord = 0
	q.consumedWord = 0
	q.enqSlot = 0
	q.consSlot = 0
	q.MaxOccupancy = 0
	q.FullStalls = 0
	q.StallCycles = 0
	for i := range q.freeAt {
		q.freeAt[i] = 0
	}
}

// Enqueue schedules `words` instruction words, the controller starting
// no earlier than issue. It returns the time the last word is in the
// queue (the entry's ready time). Word w cannot enter until word
// w-depth has been dequeued; the caller must therefore have consumed
// far enough ahead, which the PASM executor guarantees by processing
// entries strictly in FIFO order. Entries larger than the queue
// capacity can never fit and are an error.
func (q *Queue) Enqueue(issue int64, words int) (ready int64, err error) {
	if words < 1 {
		return 0, fmt.Errorf("fetchunit: enqueue of %d words", words)
	}
	if words > q.depth {
		return 0, fmt.Errorf("fetchunit: entry of %d words exceeds queue depth %d", words, q.depth)
	}
	t := q.ctrlFree
	if issue > t {
		t = issue
	}
	for i := 0; i < words; i++ {
		w := q.enqueuedWord
		if w-int64(q.depth) >= q.consumedWord {
			return 0, fmt.Errorf("fetchunit: word %d enqueued before word %d consumed (executor ordering bug)", w, w-int64(q.depth))
		}
		if w >= int64(q.depth) {
			// (w-depth)%depth == w%depth == enqSlot: the slot this word
			// reuses is the one its displaced predecessor occupied.
			if f := q.freeAt[q.enqSlot]; f > t {
				q.FullStalls++
				q.StallCycles += f - t
				t = f // queue full: controller stalls for a slot
			}
		}
		t += q.wordCycles
		q.enqueuedWord = w + 1
		if q.enqSlot++; q.enqSlot == q.depth {
			q.enqSlot = 0
		}
	}
	if occ := int(q.enqueuedWord - q.consumedWord); occ > q.MaxOccupancy {
		q.MaxOccupancy = occ
	}
	q.ctrlFree = t
	if q.OnEnqueue != nil {
		q.OnEnqueue(issue, t, words, q.Pending())
	}
	return t, nil
}

// Consume records that the oldest `words` words were dequeued at time
// t (the release time of the instruction they form).
func (q *Queue) Consume(words int, t int64) error {
	if q.consumedWord+int64(words) > q.enqueuedWord {
		return fmt.Errorf("fetchunit: consuming %d words with only %d enqueued",
			words, q.enqueuedWord-q.consumedWord)
	}
	for i := 0; i < words; i++ {
		q.freeAt[q.consSlot] = t
		q.consumedWord++
		if q.consSlot++; q.consSlot == q.depth {
			q.consSlot = 0
		}
	}
	if q.OnConsume != nil {
		q.OnConsume(t, words, q.Pending())
	}
	return nil
}

// Pending returns the words currently in flight (enqueued, not yet
// consumed).
func (q *Queue) Pending() int { return int(q.enqueuedWord - q.consumedWord) }

// Mask is the Fetch Unit mask register: bit k enables PE k of the MC's
// group. The register value is conceptually enqueued with every word;
// the simulator snapshots it per entry.
type Mask uint32

// AllEnabled returns a mask with the low n bits set.
func AllEnabled(n int) Mask { return Mask(1)<<n - 1 }

// Enabled reports whether PE k participates.
func (m Mask) Enabled(k int) bool { return m>>k&1 != 0 }

// Count returns the number of enabled PEs.
func (m Mask) Count() int {
	c := 0
	for v := m; v != 0; v &= v - 1 {
		c++
	}
	return c
}
