package faults

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestParseProfileRoundTrip: the flag syntax parses, renders
// canonically, and re-parses to the same profile.
func TestParseProfileRoundTrip(t *testing.T) {
	p, err := ParseProfile("run:error=0.15,panic=0.05,delay=0.25@30ms; http:error=0.1 ;cache:delay=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := p[Run]; got.ErrorRate != 0.15 || got.PanicRate != 0.05 || got.DelayRate != 0.25 || got.Delay != 30*time.Millisecond {
		t.Errorf("run profile = %+v", got)
	}
	if got := p[Cache]; got.DelayRate != 0.5 || got.Delay != 10*time.Millisecond {
		t.Errorf("cache delay default: %+v", got)
	}
	s := p.String()
	p2, err := ParseProfile(s)
	if err != nil {
		t.Fatalf("re-parsing %q: %v", s, err)
	}
	if p2.String() != s {
		t.Errorf("round trip: %q -> %q", s, p2.String())
	}
}

func TestParseProfileRejects(t *testing.T) {
	for _, bad := range []string{
		"", "nonsense", "queue:error=0.5", "run:error=1.5",
		"run:error=-0.1", "run:frob=0.5", "run:error", "run:delay=0.5@-3ms",
	} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}

// TestDeterministicSequences: with one seed, a point's decision
// sequence is identical run to run, and changing the seed changes it.
func TestDeterministicSequences(t *testing.T) {
	prof := Profile{Run: {ErrorRate: 0.3, PanicRate: 0.1, DelayRate: 0.2, Delay: time.Millisecond}}
	seq := func(seed uint64) []Action {
		inj := New(seed, prof)
		out := make([]Action, 200)
		for i := range out {
			out[i] = inj.Check(Run)
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if (a[i].Err == nil) != (b[i].Err == nil) || a[i].Panic != b[i].Panic || a[i].Delay != b[i].Delay {
			t.Fatalf("probe %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := seq(43)
	same := true
	for i := range a {
		if (a[i].Err == nil) != (c[i].Err == nil) || a[i].Panic != c[i].Panic || a[i].Delay != c[i].Delay {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 200-probe sequences")
	}
}

// TestInterleavingIndependence: probes of other points between two
// probes of Run must not change Run's decisions (per-point counters).
func TestInterleavingIndependence(t *testing.T) {
	prof := Profile{
		Run:  {ErrorRate: 0.5},
		HTTP: {ErrorRate: 0.5},
	}
	solo := New(7, prof)
	var want []bool
	for i := 0; i < 100; i++ {
		want = append(want, solo.Check(Run).Err != nil)
	}
	mixed := New(7, prof)
	for i := 0; i < 100; i++ {
		mixed.Check(HTTP) // interleaved traffic on another point
		if got := mixed.Check(Run).Err != nil; got != want[i] {
			t.Fatalf("probe %d: interleaved HTTP probes changed Run's decision", i)
		}
	}
}

// TestRatesApproximate: over many probes the observed rates track the
// profile (loose bounds; the draw is a hash, not audited randomness).
func TestRatesApproximate(t *testing.T) {
	inj := New(1988, Profile{Run: {ErrorRate: 0.2, DelayRate: 0.4, Delay: time.Millisecond}})
	const n = 5000
	var errs, delays int
	for i := 0; i < n; i++ {
		act := inj.Check(Run)
		if act.Err != nil {
			errs++
		}
		if act.Delay > 0 {
			delays++
		}
	}
	if float64(errs)/n < 0.15 || float64(errs)/n > 0.25 {
		t.Errorf("error rate %v, want ~0.2", float64(errs)/n)
	}
	if float64(delays)/n < 0.35 || float64(delays)/n > 0.45 {
		t.Errorf("delay rate %v, want ~0.4", float64(delays)/n)
	}
	m := inj.Metrics("faults/")
	if m["faults/run/probes"] != n || m["faults/run/errors"] != float64(errs) {
		t.Errorf("metrics disagree with observed: %v", m)
	}
	if m["faults/injected_total"] != float64(errs+delays) {
		t.Errorf("injected_total = %v, want %d", m["faults/injected_total"], errs+delays)
	}
}

// TestNilInjectorDetached: a nil injector neither faults nor counts.
func TestNilInjectorDetached(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Error("nil injector claims enabled")
	}
	act := inj.Check(Run)
	if act.Err != nil || act.Panic || act.Delay != 0 {
		t.Errorf("nil injector injected %+v", act)
	}
	if m := inj.Metrics("faults/"); m != nil {
		t.Errorf("nil injector has metrics %v", m)
	}
}

// TestInjectedErrorsWrapSentinel.
func TestInjectedErrorsWrapSentinel(t *testing.T) {
	inj := New(3, Profile{Run: {ErrorRate: 1}})
	act := inj.Check(Run)
	if act.Err == nil || !errors.Is(act.Err, ErrInjected) {
		t.Errorf("err = %v, want wrapped ErrInjected", act.Err)
	}
}

// TestConcurrentProbes: Check is safe and counts exactly under
// contention (run with -race).
func TestConcurrentProbes(t *testing.T) {
	inj := New(5, Profile{Run: {ErrorRate: 0.5}, HTTP: {DelayRate: 0.5, Delay: time.Microsecond}})
	var wg sync.WaitGroup
	const per = 500
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				inj.Check(Run)
				inj.Check(HTTP)
			}
		}()
	}
	wg.Wait()
	m := inj.Metrics("")
	if m["run/probes"] != 8*per || m["http/probes"] != 8*per {
		t.Errorf("probe counts %v/%v, want %d", m["run/probes"], m["http/probes"], 8*per)
	}
}
