package faults

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport wraps an http.RoundTripper with the network-level fault
// points, manufacturing the failures a distributed serving path must
// absorb: refused connections and slow round trips (Conn) and response
// bodies cut mid-stream (Body). A nil injector returns next unchanged,
// so the healthy path pays nothing.
//
// Injected failures are indistinguishable from real ones to the
// caller — a Conn error surfaces exactly like a dead replica (wrapped
// in *url.Error by net/http), and a Body cut ends the read with
// io.ErrUnexpectedEOF — so retry, failover, and circuit-breaker logic
// exercised under a profile behaves identically against real faults.
func (i *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if i == nil {
		return next
	}
	if next == nil {
		next = http.DefaultTransport
	}
	return &faultTransport{inj: i, next: next}
}

type faultTransport struct {
	inj  *Injector
	next http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	act := t.inj.Check(Conn)
	if act.Delay > 0 {
		select {
		case <-time.After(act.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if act.Err != nil {
		// Refused before anything was sent: safe to retry on any method.
		return nil, fmt.Errorf("faults: connection refused to %s: %w", req.URL.Host, act.Err)
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if act := t.inj.Check(Body); act.Err != nil && resp.Body != nil {
		// Let roughly half the advertised payload through, then cut.
		limit := resp.ContentLength / 2
		if limit <= 0 {
			limit = 64
		}
		resp.Body = &cutBody{rc: resp.Body, remain: limit}
	}
	return resp, nil
}

// cutBody streams the first remain bytes, then fails the read the way
// a dropped TCP connection would.
type cutBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("faults: response body cut mid-stream: %w", io.ErrUnexpectedEOF)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == io.EOF && b.remain <= 0 {
		// The cut fires before the natural end of the body.
		err = nil
	}
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }
