package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTransportNilDetached: a nil injector returns the inner transport
// untouched — the healthy path has no wrapper at all.
func TestTransportNilDetached(t *testing.T) {
	var inj *Injector
	inner := http.DefaultTransport
	if got := inj.Transport(inner); got != inner {
		t.Fatalf("nil injector wrapped the transport: %T", got)
	}
}

// TestTransportConnRefused: a conn error fires before the request is
// sent — the server never sees it, and the error wraps ErrInjected.
func TestTransportConnRefused(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()

	inj := New(1, Profile{Conn: {ErrorRate: 1}})
	hc := &http.Client{Transport: inj.Transport(nil)}
	_, err := hc.Get(srv.URL)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
	if served != 0 {
		t.Errorf("server saw %d requests, want 0 (refused before send)", served)
	}
	m := inj.Metrics("")
	if m["conn/errors"] != 1 {
		t.Errorf("conn/errors = %v, want 1", m["conn/errors"])
	}
}

// TestTransportBodyCut: the response arrives but its body fails
// mid-stream with io.ErrUnexpectedEOF after a truncated prefix.
func TestTransportBodyCut(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	inj := New(1, Profile{Body: {ErrorRate: 1}})
	hc := &http.Client{Transport: inj.Transport(nil)}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(data) == 0 || len(data) >= len(payload) {
		t.Errorf("read %d bytes, want a strict truncated prefix of %d", len(data), len(payload))
	}
	if string(data) != payload[:len(data)] {
		t.Error("truncated prefix corrupted, not just cut")
	}
}

// TestTransportSlow: a conn delay stretches the round trip without
// failing it.
func TestTransportSlow(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := New(1, Profile{Conn: {DelayRate: 1, Delay: 30 * time.Millisecond}})
	hc := &http.Client{Transport: inj.Transport(nil)}
	start := time.Now()
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("round trip took %s, want >= 30ms injected delay", d)
	}
}

// TestTransportCleanPassThrough: with rates at zero the body streams
// whole and untouched.
func TestTransportCleanPassThrough(t *testing.T) {
	payload := strings.Repeat("y", 1024)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	inj := New(1, Profile{Conn: {}, Body: {}})
	hc := &http.Client{Transport: inj.Transport(nil)}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || string(data) != payload {
		t.Fatalf("read = %d bytes, err %v; want full payload", len(data), err)
	}
}
