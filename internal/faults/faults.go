// Package faults is a deterministic, seed-driven fault injector for
// the serving path. The paper's lesson is that non-deterministic
// instruction time (MULU's 38 + 2·ones(multiplier) cycles) must be
// absorbed by the architecture rather than serialized away; at the
// host level the analogue is a slow, failing, or crashing worker, and
// this package manufactures exactly those conditions on demand so the
// service's absorption machinery (retries, deadlines, panic isolation,
// backpressure) can be exercised reproducibly.
//
// Design constraints, in order:
//
//   - Deterministic: the decision for the n-th probe of a given point
//     is a pure function of (seed, point, n). Concurrent goroutines
//     may interleave probes across points, but each point's own
//     decision sequence never changes, so a chaos run is reproducible
//     from its seed alone.
//   - Free when detached: callers hold a *Injector that is normally
//     nil; every method is nil-receiver safe and the enabled check is
//     one pointer test, so the healthy path stays at its benchmarked
//     throughput.
//   - Observable: every injected fault increments a counter that the
//     service exports under "faults/" in /metrics, which is how the
//     chaos smoke test asserts the profile actually fired.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point identifies an injection site in the serving path.
type Point string

// Injection sites. Each names the operation a decision applies to.
const (
	// Admit probes run on queue admission: an injected error rejects
	// the submit as transient overload (503 + Retry-After).
	Admit Point = "admit"
	// Run probes run in the worker before executing a job: errors fail
	// the job, panics exercise worker panic isolation, delays stretch
	// the execution.
	Run Point = "run"
	// Cache probes run on result-cache lookups: an injected error
	// makes the lookup miss, forcing a recompute (degraded, not down).
	Cache Point = "cache"
	// HTTP probes run per request in the daemon: errors become 500s,
	// delays stall the response, panics abort the connection mid-reply.
	HTTP Point = "http"
	// Conn probes run per outbound request in a fault-wrapped transport
	// (Injector.Transport): an injected error refuses the connection
	// before anything is sent, a delay slows the whole round trip.
	Conn Point = "conn"
	// Body probes run on a fault-wrapped transport's responses: an
	// injected error cuts the response body mid-stream, so the reader
	// sees a truncated payload ending in io.ErrUnexpectedEOF.
	Body Point = "body"
)

// Points lists every injection site (profile validation, metrics).
var Points = []Point{Admit, Run, Cache, HTTP, Conn, Body}

// ErrInjected is the sentinel wrapped by every injected error, so
// tests and logs can tell manufactured failures from real ones.
var ErrInjected = errors.New("injected fault")

// Action is the injector's decision for one probe. The zero Action
// means "proceed normally". At most one of Err/Panic is set; Delay may
// accompany either.
type Action struct {
	// Delay, when positive, asks the caller to stall this long first.
	Delay time.Duration
	// Err, when non-nil, asks the caller to fail the operation. It
	// wraps ErrInjected.
	Err error
	// Panic asks the caller to panic (exercising recovery paths).
	Panic bool
}

// PointProfile sets one site's fault rates. Rates are probabilities in
// [0, 1]; each probe draws error, panic, and delay decisions
// independently (panic wins over error when both fire).
type PointProfile struct {
	ErrorRate float64
	PanicRate float64
	DelayRate float64
	// Delay is the stall applied when a delay decision fires.
	Delay time.Duration
}

func (p PointProfile) active() bool {
	return p.ErrorRate > 0 || p.PanicRate > 0 || p.DelayRate > 0
}

// Profile maps injection sites to their rates. Sites absent from the
// map are never faulted.
type Profile map[Point]PointProfile

// ParseProfile parses the -chaos-profile flag syntax: semicolon-
// separated sites, each "point:key=value,..." with keys error, panic,
// delay (rates in [0,1]) and delay taking an optional "@duration"
// suffix setting the stall length (default 10ms).
//
//	run:error=0.15,panic=0.05,delay=0.25@30ms;http:error=0.1
func ParseProfile(s string) (Profile, error) {
	prof := Profile{}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, rates, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faults: %q missing point name (want point:key=rate,...)", part)
		}
		pt := Point(strings.TrimSpace(point))
		if !validPoint(pt) {
			return nil, fmt.Errorf("faults: unknown point %q (want one of %v)", pt, Points)
		}
		pp := prof[pt]
		for _, kv := range strings.Split(rates, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("faults: %q is not key=rate", kv)
			}
			if key == "delay" {
				rate, dur, err := parseDelay(val)
				if err != nil {
					return nil, err
				}
				pp.DelayRate, pp.Delay = rate, dur
				continue
			}
			rate, err := parseRate(val)
			if err != nil {
				return nil, fmt.Errorf("faults: %s: %v", key, err)
			}
			switch key {
			case "error":
				pp.ErrorRate = rate
			case "panic":
				pp.PanicRate = rate
			default:
				return nil, fmt.Errorf("faults: unknown rate %q (want error, panic, or delay)", key)
			}
		}
		prof[pt] = pp
	}
	if len(prof) == 0 {
		return nil, errors.New("faults: empty profile")
	}
	return prof, nil
}

func validPoint(p Point) bool {
	for _, q := range Points {
		if p == q {
			return true
		}
	}
	return false
}

func parseRate(s string) (float64, error) {
	rate, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", rate)
	}
	return rate, nil
}

func parseDelay(s string) (float64, time.Duration, error) {
	rateStr, durStr, hasDur := strings.Cut(s, "@")
	rate, err := parseRate(rateStr)
	if err != nil {
		return 0, 0, fmt.Errorf("faults: delay: %v", err)
	}
	dur := 10 * time.Millisecond
	if hasDur {
		if dur, err = time.ParseDuration(durStr); err != nil || dur < 0 {
			return 0, 0, fmt.Errorf("faults: bad delay duration %q", durStr)
		}
	}
	return rate, dur, nil
}

// String renders the profile in ParseProfile syntax, points sorted, so
// logs show the exact flag that reproduces a run.
func (p Profile) String() string {
	points := make([]string, 0, len(p))
	for pt := range p {
		points = append(points, string(pt))
	}
	sort.Strings(points)
	var b strings.Builder
	for _, pt := range points {
		pp := p[Point(pt)]
		var kvs []string
		if pp.ErrorRate > 0 {
			kvs = append(kvs, fmt.Sprintf("error=%g", pp.ErrorRate))
		}
		if pp.PanicRate > 0 {
			kvs = append(kvs, fmt.Sprintf("panic=%g", pp.PanicRate))
		}
		if pp.DelayRate > 0 {
			kvs = append(kvs, fmt.Sprintf("delay=%g@%s", pp.DelayRate, pp.Delay))
		}
		if len(kvs) == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s:%s", pt, strings.Join(kvs, ","))
	}
	return b.String()
}

// pointState is one site's call counter and injection tallies.
type pointState struct {
	calls    int64
	errors   int64
	panics   int64
	delays   int64
	delayDur time.Duration // cumulative injected stall
}

// Injector makes seed-driven fault decisions. A nil *Injector is fully
// detached: Check returns the zero Action and Metrics returns nil.
type Injector struct {
	seed    uint64
	profile Profile

	mu    sync.Mutex
	state map[Point]*pointState
}

// New returns an injector drawing decisions from seed under profile.
func New(seed uint64, profile Profile) *Injector {
	inj := &Injector{seed: seed, profile: profile, state: map[Point]*pointState{}}
	for _, pt := range Points {
		inj.state[pt] = &pointState{}
	}
	return inj
}

// Enabled reports whether any point can fire (false for nil).
func (i *Injector) Enabled() bool {
	if i == nil {
		return false
	}
	for _, pp := range i.profile {
		if pp.active() {
			return true
		}
	}
	return false
}

// splitmix64 is the standard 64-bit finalizer-style mixer: a bijective
// hash whose output bits are uniform enough to treat as a random draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// hashPoint folds a point name into the seed stream.
func hashPoint(p Point) uint64 {
	var h uint64 = 14695981039346656037 // FNV-64 offset basis
	for i := 0; i < len(p); i++ {
		h = (h ^ uint64(p[i])) * 1099511628211
	}
	return h
}

// draw returns a uniform [0, 1) value for the n-th probe of a point on
// one decision channel, independent of every other (point, n, channel).
func (i *Injector) draw(p Point, n int64, channel uint64) float64 {
	x := splitmix64(i.seed ^ hashPoint(p) ^ splitmix64(uint64(n)<<2|channel))
	return float64(x>>11) / (1 << 53)
}

// Check makes the decision for one probe of point. Decisions are a
// pure function of (seed, point, per-point call index): two runs with
// the same seed and profile see identical per-point fault sequences no
// matter how calls interleave across points. Safe for concurrent use.
func (i *Injector) Check(point Point) Action {
	if i == nil {
		return Action{}
	}
	pp, ok := i.profile[point]
	if !ok || !pp.active() {
		return Action{}
	}
	i.mu.Lock()
	st := i.state[point]
	n := st.calls
	st.calls++
	var act Action
	if pp.DelayRate > 0 && i.draw(point, n, 0) < pp.DelayRate {
		act.Delay = pp.Delay
		st.delays++
		st.delayDur += pp.Delay
	}
	switch {
	case pp.PanicRate > 0 && i.draw(point, n, 1) < pp.PanicRate:
		act.Panic = true
		st.panics++
	case pp.ErrorRate > 0 && i.draw(point, n, 2) < pp.ErrorRate:
		act.Err = fmt.Errorf("faults: %w at %s probe %d", ErrInjected, point, n)
		st.errors++
	}
	i.mu.Unlock()
	return act
}

// Metrics returns per-point probe and injection counts, keys prefixed
// (the service exports them as "faults/<point>/<kind>"). Nil-safe.
func (i *Injector) Metrics(prefix string) map[string]float64 {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	m := map[string]float64{}
	total := 0.0
	for _, pt := range Points {
		st := i.state[pt]
		if st.calls == 0 && !i.profile[pt].active() {
			continue
		}
		base := prefix + string(pt)
		m[base+"/probes"] = float64(st.calls)
		m[base+"/errors"] = float64(st.errors)
		m[base+"/panics"] = float64(st.panics)
		m[base+"/delays"] = float64(st.delays)
		m[base+"/delay_ms"] = float64(st.delayDur.Milliseconds())
		total += float64(st.errors + st.panics + st.delays)
	}
	m[prefix+"injected_total"] = total
	return m
}
