package partition

import "testing"

// FuzzBuddy drives the allocator with an arbitrary alloc/free
// sequence and checks the structural invariants after every
// operation: blocks tile the machine with no overlap, every block is
// subcube-aligned, free buddies always coalesce, and an emptied
// machine returns to one full-size block. The op stream decodes one
// byte per operation: low 7 bits pick a size class (alloc) or an
// allocation to free; the high bit picks alloc vs free.
func FuzzBuddy(f *testing.F) {
	f.Add(16, []byte{0, 1, 2, 0x80, 3, 0x81, 0x80, 4})
	f.Add(64, []byte{6, 6, 6, 6, 0x82, 0x80, 5, 5, 0x81, 0x83})
	f.Add(1024, []byte{9, 0x80, 10, 8, 8, 0x81, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, total int, ops []byte) {
		if total < MinBlock || total > MaxPEs || total&(total-1) != 0 {
			t.Skip()
		}
		b, err := NewBuddy(total)
		if err != nil {
			t.Fatal(err)
		}
		var held []int
		for _, op := range ops {
			if op < 0x80 {
				pes := 1 << (int(op) % 11) // 1..1024; oversize must just fail cleanly
				base, err := b.Alloc(pes)
				if err == nil {
					held = append(held, base)
					if base%blockFor(pes) != 0 {
						t.Fatalf("Alloc(%d) returned misaligned base %d", pes, base)
					}
				} else if _, ok := b.FitOrder(pes); ok && ValidPEs(pes, total) {
					t.Fatalf("Alloc(%d) failed but FitOrder says it fits: %v", pes, err)
				}
			} else if len(held) > 0 {
				i := int(op&0x7F) % len(held)
				if err := b.Free(held[i]); err != nil {
					t.Fatalf("Free(%d): %v", held[i], err)
				}
				held = append(held[:i], held[i+1:]...)
			}
			if err := b.Check(); err != nil {
				t.Fatalf("invariant violated after op %#x: %v", op, err)
			}
		}
		// Drain: everything frees and the machine coalesces whole.
		for _, base := range held {
			if err := b.Free(base); err != nil {
				t.Fatalf("drain Free(%d): %v", base, err)
			}
		}
		if err := b.Check(); err != nil {
			t.Fatalf("after drain: %v", err)
		}
		if b.FreePEs() != total || b.LargestFree() != total {
			t.Fatalf("drained machine: free=%d largest=%d, want %d", b.FreePEs(), b.LargestFree(), total)
		}
	})
}
