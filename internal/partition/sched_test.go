package partition

import "testing"

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("roundrobin"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// fitState builds a buddy with the given blocks held, for driving
// Pick against a known free state.
func fitState(t *testing.T, total int, hold []int) *Buddy {
	t.Helper()
	b := mustBuddy(t, total)
	for _, pes := range hold {
		mustAlloc(t, b, pes)
	}
	return b
}

func TestPickFirstFit(t *testing.T) {
	// Free: 8..15 (8 PEs). First fit takes the earliest job that
	// fits, backfilling past the 16-PE job at the head.
	b := fitState(t, 16, []int{8})
	pending := []int{16, 4, 2, 8}
	if got := Pick(b, PolicyFirstFit, pending); got != 1 {
		t.Errorf("Pick = %d, want 1 (earliest fitting job)", got)
	}
	if got := Pick(b, PolicyFirstFit, []int{16}); got != -1 {
		t.Errorf("Pick = %d, want -1 when nothing fits", got)
	}
}

func TestPickBestFit(t *testing.T) {
	// Free blocks: one pair (6..7) and one 8-block (8..15). A 2-PE
	// job fits the pair exactly (gap 0); a 4-PE job would split the
	// 8-block (gap 1) — best fit prefers the exact pair even though
	// the 4-PE job arrived first.
	b := fitState(t, 16, []int{4, 2})
	pending := []int{4, 2}
	if got := Pick(b, PolicyBestFit, pending); got != 1 {
		t.Errorf("Pick = %d, want 1 (the exactly-fitting pair)", got)
	}
	// Ties break by arrival: two 2-PE jobs, the first wins.
	if got := Pick(b, PolicyBestFit, []int{2, 2}); got != 0 {
		t.Errorf("tie Pick = %d, want 0", got)
	}
	if got := Pick(b, PolicyBestFit, []int{16}); got != -1 {
		t.Errorf("Pick = %d, want -1 when nothing fits", got)
	}
}

func TestPickSizeAware(t *testing.T) {
	b := mustBuddy(t, 16)
	// Class demand: three 2-PE jobs vs one 8-PE job; the deeper class
	// wins even though the 8-PE job arrived first.
	pending := []int{8, 2, 2, 2}
	if got := Pick(b, PolicySizeAware, pending); got != 1 {
		t.Errorf("Pick = %d, want 1 (earliest job of the deepest class)", got)
	}
	// Equal demand ties to the larger class.
	if got := Pick(b, PolicySizeAware, []int{2, 8}); got != 1 {
		t.Errorf("equal-demand Pick = %d, want 1 (larger class)", got)
	}
	// A class that cannot fit is skipped even if deepest.
	full := fitState(t, 16, []int{8, 4})
	if got := Pick(full, PolicySizeAware, []int{8, 8, 8, 2}); got != 3 {
		t.Errorf("Pick = %d, want 3 (only the 2-PE class fits)", got)
	}
	if got := Pick(full, PolicySizeAware, []int{8, 8}); got != -1 {
		t.Errorf("Pick = %d, want -1", got)
	}
}
