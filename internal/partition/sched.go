package partition

import "fmt"

// Policy selects which pending job a partition scheduler starts next
// when free subcubes exist. All three are deterministic functions of
// the arrival order and the allocator's free state, so a given job
// storm schedules identically on every run.
type Policy string

const (
	// PolicyFirstFit starts the earliest-arrived job that fits —
	// FCFS with backfill: later small jobs run ahead of a large job
	// that cannot be placed yet.
	PolicyFirstFit Policy = "firstfit"
	// PolicyBestFit starts the fitting job whose allocation wastes
	// the least: it minimizes the gap between the chosen job's block
	// order and the smallest free block that can hold it (fewest
	// buddy splits, preserving large free subcubes), breaking ties by
	// arrival.
	PolicyBestFit Policy = "bestfit"
	// PolicySizeAware schedules by size class, in the spirit of
	// MASIM's partition-size-aware task queues: among classes with at
	// least one fitting job it picks the class with the most pending
	// demand (ties to the larger class), then the earliest job in it.
	// Draining the deepest class keeps same-size blocks cycling
	// through the same subcubes, which fights fragmentation.
	PolicySizeAware Policy = "sizeaware"
)

// Policies lists the selectable policies.
func Policies() []Policy {
	return []Policy{PolicyFirstFit, PolicyBestFit, PolicySizeAware}
}

// ParsePolicy validates a policy name (e.g. from a -policy flag).
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if s == string(p) {
			return p, nil
		}
	}
	return "", fmt.Errorf("partition: unknown policy %q (want firstfit, bestfit, or sizeaware)", s)
}

// Fitter answers fit probes against the current free state; both
// *Buddy and *Machine implement it.
type Fitter interface {
	// FitOrder returns the order of the smallest free block that can
	// serve a partition of pes PEs, and whether one exists.
	FitOrder(pes int) (int, bool)
}

// Pick returns the index into pending (partition sizes in arrival
// order) of the job the policy starts next, or -1 when nothing
// pending fits.
func Pick(f Fitter, policy Policy, pending []int) int {
	switch policy {
	case PolicyBestFit:
		best, bestGap := -1, 0
		for i, pes := range pending {
			order, ok := f.FitOrder(pes)
			if !ok {
				continue
			}
			gap := order - orderOf(blockFor(pes))
			if best == -1 || gap < bestGap {
				best, bestGap = i, gap
			}
		}
		return best
	case PolicySizeAware:
		demand := map[int]int{}
		for _, pes := range pending {
			demand[pes]++
		}
		bestClass, bestCount := 0, 0
		for pes, count := range demand {
			if _, ok := f.FitOrder(pes); !ok {
				continue
			}
			if count > bestCount || (count == bestCount && pes > bestClass) {
				bestClass, bestCount = pes, count
			}
		}
		if bestCount == 0 {
			return -1
		}
		for i, pes := range pending {
			if pes == bestClass {
				return i
			}
		}
		return -1
	default: // PolicyFirstFit
		for i, pes := range pending {
			if _, ok := f.FitOrder(pes); ok {
				return i
			}
		}
		return -1
	}
}
