// Package partition models the "P" in PASM: a virtual machine of up
// to 1024 processing elements (the paper's target scale) carved into
// independent power-of-two subcube partitions, each running its own
// SIMD/MIMD job.
//
// Three layers build on each other:
//
//   - Buddy: the subcube allocator. Partitions are powers of two,
//     aligned to their own size (base % size == 0), so every
//     allocation is a subcube of the machine's Extra-Stage Cube and
//     the cube-partitioning rule holds by construction. Split and
//     coalesce follow the classic buddy discipline, which also gives
//     exact fragmentation accounting.
//   - Machine: the simulated hardware pool. It owns one physical
//     escube.Network for the whole machine and hands out Leases whose
//     virtual machines route through subcube views of it
//     (escube.Subcube), so a job on PEs 32..63 is cycle-identical to
//     the same job on a standalone 32-PE machine — the identity the
//     differential tests pin.
//   - Scheduler policies (Pick) and the deterministic co-scheduling
//     simulator (Simulate): how pasmd packs queued jobs onto free
//     partitions, and the discrete-event model the ext-partition
//     experiment and the partition benchmark use to compare policies
//     on the simulated clock.
package partition

import (
	"fmt"
	"math/bits"
	"sort"
)

// MaxPEs bounds the machine size: the paper's target PASM scale.
const MaxPEs = 1024

// MinBlock is the smallest allocatable block. The Extra-Stage Cube
// pairs lines at every stage, so the smallest subcube with private
// interchange boxes is a pair; a 1-PE partition still reserves a
// 2-PE block and uses its even line (exactly like a standalone 1-PE
// machine's 2-line network).
const MinBlock = 2

// blockFor returns the block size reserved for a partition of pes
// processing elements.
func blockFor(pes int) int {
	if pes < MinBlock {
		return MinBlock
	}
	return pes
}

// orderOf returns log2(size) for a power of two.
func orderOf(size int) int { return bits.TrailingZeros(uint(size)) }

// ValidPEs reports whether pes is an allocatable partition size for a
// machine of total PEs: a power of two between 1 and total.
func ValidPEs(pes, total int) bool {
	return pes >= 1 && pes <= total && pes&(pes-1) == 0
}

// Buddy is a buddy allocator over a power-of-two pool of processing
// elements. Blocks are powers of two aligned to their own size, so
// every block is a subcube; free buddies coalesce eagerly, so the
// free state is always the minimal set of maximal subcubes.
//
// Not safe for concurrent use; Machine guards it.
type Buddy struct {
	total    int
	maxOrder int
	// free[order] holds the bases of free blocks of 1<<order PEs,
	// sorted ascending — allocation takes the lowest base, so
	// placement is deterministic.
	free [][]int
	// taken maps an allocated base to its order.
	taken map[int]int

	freePEs   int
	allocs    int64
	frees     int64
	splits    int64
	coalesces int64
	failed    int64
}

// NewBuddy returns an empty allocator over total PEs (a power of two,
// MinBlock..MaxPEs).
func NewBuddy(total int) (*Buddy, error) {
	if total < MinBlock || total > MaxPEs || total&(total-1) != 0 {
		return nil, fmt.Errorf("partition: machine size %d must be a power of two in %d..%d", total, MinBlock, MaxPEs)
	}
	b := &Buddy{
		total:    total,
		maxOrder: orderOf(total),
		taken:    map[int]int{},
		freePEs:  total,
	}
	b.free = make([][]int, b.maxOrder+1)
	b.free[b.maxOrder] = []int{0}
	return b, nil
}

// Total returns the pool size in PEs.
func (b *Buddy) Total() int { return b.total }

// FreePEs returns the unallocated PE count.
func (b *Buddy) FreePEs() int { return b.freePEs }

// LargestFree returns the size of the largest free block (0 when the
// machine is full).
func (b *Buddy) LargestFree() int {
	for o := b.maxOrder; o >= 0; o-- {
		if len(b.free[o]) > 0 {
			return 1 << o
		}
	}
	return 0
}

// FitOrder returns the order of the smallest free block that can
// serve a partition of pes PEs, and whether one exists. This is the
// scheduler's fit probe: ok means an Alloc(pes) would succeed, and
// order - orderOf(blockFor(pes)) is how many splits it would cost.
func (b *Buddy) FitOrder(pes int) (int, bool) {
	if !ValidPEs(pes, b.total) {
		return 0, false
	}
	want := orderOf(blockFor(pes))
	for o := want; o <= b.maxOrder; o++ {
		if len(b.free[o]) > 0 {
			return o, true
		}
	}
	return 0, false
}

// Fragmentation returns the external fragmentation of the free pool:
// 1 - largest_free/free_total, the fraction of free capacity that
// cannot serve a maximal request. 0 when nothing is free (a full
// machine is not fragmented) and 0 when the free pool is one block.
func (b *Buddy) Fragmentation() float64 {
	if b.freePEs == 0 {
		return 0
	}
	return 1 - float64(b.LargestFree())/float64(b.freePEs)
}

// Alloc reserves a block for a partition of pes PEs, returning its
// base. The block is blockFor(pes) PEs, aligned to its own size, at
// the lowest available address; larger free blocks split as needed.
func (b *Buddy) Alloc(pes int) (int, error) {
	if !ValidPEs(pes, b.total) {
		b.failed++
		return 0, fmt.Errorf("partition: size %d invalid for a %d-PE machine (want a power of two in 1..%d)", pes, b.total, b.total)
	}
	want := orderOf(blockFor(pes))
	from, ok := b.FitOrder(pes)
	if !ok {
		b.failed++
		return 0, fmt.Errorf("partition: no free %d-PE subcube (machine fragmented or full: %d PEs free, largest block %d)",
			blockFor(pes), b.freePEs, b.LargestFree())
	}
	base := b.free[from][0]
	b.free[from] = b.free[from][1:]
	// Split down to the wanted order, keeping the lower half (lowest
	// base) and freeing the upper buddy at each step.
	for o := from; o > want; o-- {
		b.insertFree(o-1, base+1<<(o-1))
		b.splits++
	}
	b.taken[base] = want
	b.freePEs -= 1 << want
	b.allocs++
	return base, nil
}

// Free returns the block at base to the pool, coalescing with its
// buddy at every order where both halves are free.
func (b *Buddy) Free(base int) error {
	order, ok := b.taken[base]
	if !ok {
		return fmt.Errorf("partition: free of base %d, which is not allocated", base)
	}
	delete(b.taken, base)
	b.freePEs += 1 << order
	b.frees++
	for order < b.maxOrder {
		buddy := base ^ 1<<order
		if !b.removeFree(order, buddy) {
			break
		}
		if buddy < base {
			base = buddy
		}
		order++
		b.coalesces++
	}
	b.insertFree(order, base)
	return nil
}

// insertFree adds base to the sorted free list of the given order.
func (b *Buddy) insertFree(order, base int) {
	list := b.free[order]
	i := sort.SearchInts(list, base)
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = base
	b.free[order] = list
}

// removeFree removes base from the free list of the given order,
// reporting whether it was present.
func (b *Buddy) removeFree(order, base int) bool {
	list := b.free[order]
	i := sort.SearchInts(list, base)
	if i >= len(list) || list[i] != base {
		return false
	}
	b.free[order] = append(list[:i], list[i+1:]...)
	return true
}

// Allocated returns the allocated blocks as (base, size) pairs,
// sorted by base.
func (b *Buddy) Allocated() [][2]int {
	out := make([][2]int, 0, len(b.taken))
	for base, order := range b.taken {
		out = append(out, [2]int{base, 1 << order})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// FreeBlocks returns the free blocks as (base, size) pairs, sorted by
// base.
func (b *Buddy) FreeBlocks() [][2]int {
	var out [][2]int
	for o, list := range b.free {
		for _, base := range list {
			out = append(out, [2]int{base, 1 << o})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Counters returns the allocator's lifetime event counts.
func (b *Buddy) Counters() (allocs, frees, splits, coalesces, failed int64) {
	return b.allocs, b.frees, b.splits, b.coalesces, b.failed
}

// Check verifies the allocator's invariants, returning the first
// violation: every block (free or allocated) is a power of two
// aligned to its own size, blocks tile the machine exactly (no
// overlap, no gap), no two free buddies are uncoalesced, and the free
// counter matches the free lists. The fuzz target drives this after
// every operation.
func (b *Buddy) Check() error {
	type block struct {
		base, size int
		free       bool
	}
	var all []block
	for _, fb := range b.FreeBlocks() {
		all = append(all, block{fb[0], fb[1], true})
	}
	for base, order := range b.taken {
		all = append(all, block{base, 1 << order, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].base < all[j].base })
	at, freeSum := 0, 0
	for _, blk := range all {
		switch {
		case blk.size < MinBlock || blk.size&(blk.size-1) != 0:
			return fmt.Errorf("block at %d has size %d, not a power of two >= %d", blk.base, blk.size, MinBlock)
		case blk.base%blk.size != 0:
			return fmt.Errorf("block at %d is not aligned to its size %d", blk.base, blk.size)
		case blk.base != at:
			return fmt.Errorf("blocks do not tile: expected a block at %d, found one at %d", at, blk.base)
		}
		at = blk.base + blk.size
		if blk.free {
			freeSum += blk.size
		}
	}
	if at != b.total {
		return fmt.Errorf("blocks cover %d of %d PEs", at, b.total)
	}
	if freeSum != b.freePEs {
		return fmt.Errorf("free lists hold %d PEs, counter says %d", freeSum, b.freePEs)
	}
	for o, list := range b.free {
		for _, base := range list {
			if o < b.maxOrder {
				buddy := base ^ 1<<o
				if i := sort.SearchInts(list, buddy); i < len(list) && list[i] == buddy {
					return fmt.Errorf("free buddies at %d and %d (order %d) left uncoalesced", base, buddy, o)
				}
			}
		}
	}
	if len(b.taken) == 0 {
		if len(b.free[b.maxOrder]) != 1 || b.free[b.maxOrder][0] != 0 {
			return fmt.Errorf("empty machine did not coalesce back to one %d-PE block", b.total)
		}
	}
	return nil
}
