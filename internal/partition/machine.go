package partition

import (
	"fmt"
	"sync"

	"repro/internal/escube"
	"repro/internal/pasm"
)

// Machine is a partitionable PASM machine: a pool of cfg.NumPEs
// processing elements and ONE physical Extra-Stage Cube, carved into
// subcube partitions by a buddy allocator. Acquire leases a
// partition; the lease's virtual machines route through a subcube
// view of the shared network, so co-resident jobs run concurrently
// with cycle counts identical to standalone machines of their size.
//
// Safe for concurrent use.
type Machine struct {
	cfg pasm.Config
	nw  *escube.Network

	// netMu serializes circuit mutations across all partition views
	// of the shared network (escube.Subcube's Locker).
	netMu sync.Mutex

	mu       sync.Mutex
	buddy    *Buddy
	leases   map[int]*Lease
	busyPEs  int
	peakBusy int
	acquired int64
	released int64
}

// New builds a machine of cfg.NumPEs processing elements (a power of
// two, MinBlock..MaxPEs). cfg is the template every lease's virtual
// machines inherit (clock, memory, queue and network timing
// parameters); cfg.Net must be nil — the machine owns the physical
// network.
func New(cfg pasm.Config) (*Machine, error) {
	if cfg.Net != nil {
		return nil, fmt.Errorf("partition: template config must not inject a network")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buddy, err := NewBuddy(cfg.NumPEs)
	if err != nil {
		return nil, err
	}
	nw, err := escube.New(cfg.NumPEs)
	if err != nil {
		return nil, err
	}
	return &Machine{
		cfg:    cfg,
		nw:     nw,
		buddy:  buddy,
		leases: map[int]*Lease{},
	}, nil
}

// Config returns the machine's template configuration.
func (m *Machine) Config() pasm.Config { return m.cfg }

// PEs returns the machine size.
func (m *Machine) PEs() int { return m.cfg.NumPEs }

// FreePEs returns the unallocated PE count.
func (m *Machine) FreePEs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buddy.FreePEs()
}

// FitOrder reports whether a partition of pes PEs can be allocated
// right now, and if so the order of the smallest free block that
// would serve it (the scheduler policies' fit probe).
func (m *Machine) FitOrder(pes int) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buddy.FitOrder(pes)
}

// Lease is an allocated partition: a block of PEs and the subcube
// view of the machine's network its virtual machines route through.
type Lease struct {
	m *Machine
	// Base is the partition's first physical PE.
	Base int
	// PEs is the requested partition size (1..machine size; a 1-PE
	// partition still reserves a 2-PE block, see MinBlock).
	PEs int

	view     *escube.Subcube
	released bool
}

// Acquire leases a partition of pes PEs (a power of two up to the
// machine size) at the lowest free aligned base. The lease must be
// returned with Release.
func (m *Machine) Acquire(pes int) (*Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	base, err := m.buddy.Alloc(pes)
	if err != nil {
		return nil, err
	}
	view, err := m.nw.Subcube(base, blockFor(pes), &m.netMu)
	if err != nil {
		// Unreachable: buddy blocks are aligned subcubes by
		// construction.
		m.buddy.Free(base)
		return nil, err
	}
	l := &Lease{m: m, Base: base, PEs: pes, view: view}
	m.leases[base] = l
	m.busyPEs += blockFor(pes)
	if m.busyPEs > m.peakBusy {
		m.peakBusy = m.busyPEs
	}
	m.acquired++
	return l, nil
}

// Release tears down the partition's circuits and returns its PEs to
// the pool. Releasing twice is an error.
func (l *Lease) Release() error {
	m := l.m
	m.mu.Lock()
	defer m.mu.Unlock()
	if l.released {
		return fmt.Errorf("partition: lease at PE %d released twice", l.Base)
	}
	l.view.ReleaseAll()
	if err := m.buddy.Free(l.Base); err != nil {
		return err
	}
	l.released = true
	delete(m.leases, l.Base)
	m.busyPEs -= blockFor(l.PEs)
	m.released++
	return nil
}

// Config derives the pasm.Config for a virtual machine on this
// partition from a base configuration: the machine shrinks to the
// partition's size, the MC group size clamps to fit, and the network
// is the partition's subcube view. pasm.NewVM validates the rest.
func (l *Lease) Config(base pasm.Config) pasm.Config {
	base.NumPEs = l.PEs
	if base.PEsPerMC > l.PEs {
		base.PEsPerMC = l.PEs
	}
	base.Net = l.view
	return base
}

// NewVM builds a virtual machine of the partition's full size using
// the machine's template configuration.
func (l *Lease) NewVM() (*pasm.VM, error) {
	vm, err := pasm.NewVM(l.Config(l.m.cfg), l.PEs)
	if err != nil {
		return nil, err
	}
	vm.Base = l.Base
	return vm, nil
}

// Job is one unit of work for RunJobs: a partition size and a
// function to execute on the allocated virtual machine.
type Job struct {
	// Name identifies the job in results.
	Name string
	// PEs is the partition size.
	PEs int
	// Run executes the job on its partition (loading memories,
	// establishing circuits, and calling RunSIMD/RunMIMD as needed).
	Run func(vm *pasm.VM) (pasm.RunResult, error)
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Name   string
	Base   int // PE block the job ran on
	Result pasm.RunResult
	Err    error
}

// RunJobs allocates a partition per job and runs all jobs
// concurrently, one goroutine per partition — independent virtual
// machines executing simultaneously, as on the real system. It fails
// fast at allocation time if the jobs cannot coexist; individual job
// errors are reported per job.
func (m *Machine) RunJobs(jobs []Job) ([]JobResult, error) {
	leases := make([]*Lease, len(jobs))
	for i, job := range jobs {
		l, err := m.Acquire(job.PEs)
		if err != nil {
			for _, held := range leases[:i] {
				held.Release()
			}
			return nil, fmt.Errorf("partition: job %q: %w", job.Name, err)
		}
		leases[i] = l
	}
	results := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job, l *Lease) {
			defer wg.Done()
			vm, err := l.NewVM()
			if err != nil {
				results[i] = JobResult{Name: job.Name, Base: l.Base, Err: err}
				return
			}
			res, err := job.Run(vm)
			results[i] = JobResult{Name: job.Name, Base: l.Base, Result: res, Err: err}
		}(i, job, leases[i])
	}
	wg.Wait()
	for _, l := range leases {
		if err := l.Release(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// Metrics returns the machine's occupancy and fragmentation state as
// a flat metric map, every key prefixed (e.g. "partition/").
func (m *Machine) Metrics(prefix string) map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	allocs, frees, splits, coalesces, failed := m.buddy.Counters()
	total := float64(m.buddy.Total())
	out := map[string]float64{
		prefix + "pes_total":          total,
		prefix + "pes_busy":           float64(m.busyPEs),
		prefix + "pes_free":           float64(m.buddy.FreePEs()),
		prefix + "pes_busy_peak":      float64(m.peakBusy),
		prefix + "occupancy_pct":      100 * float64(m.busyPEs) / total,
		prefix + "largest_free_block": float64(m.buddy.LargestFree()),
		prefix + "fragmentation_pct":  100 * m.buddy.Fragmentation(),
		prefix + "leases_active":      float64(len(m.leases)),
		prefix + "leases_total":       float64(m.acquired),
		prefix + "releases_total":     float64(m.released),
		prefix + "alloc_failed_total": float64(failed),
		prefix + "buddy_allocs":       float64(allocs),
		prefix + "buddy_frees":        float64(frees),
		prefix + "buddy_splits":       float64(splits),
		prefix + "buddy_coalesces":    float64(coalesces),
	}
	return out
}
