package partition

import (
	"reflect"
	"testing"

	"repro/internal/matmul"
	"repro/internal/obs"
	"repro/internal/pasm"
)

// capture is one run's full observable surface: the timing result,
// the computed product, the obs event stream per unit, and the
// flattened metrics registry.
type capture struct {
	res     pasm.RunResult
	c       matmul.Matrix
	units   []string
	events  [][]obs.Event
	metrics map[string]float64
}

func runCell(t *testing.T, cfg pasm.Config, spec matmul.Spec) capture {
	t.Helper()
	rec := obs.New(obs.Config{Events: ^obs.KindSet(0), Metrics: true})
	cfg.Obs = rec
	a := matmul.Identity(spec.N)
	b := matmul.Random(spec.N, 7)
	res, c, err := matmul.Execute(cfg, spec, a, b)
	if err != nil {
		t.Fatalf("execute %+v: %v", spec, err)
	}
	if ref := matmul.Reference(a, b); !matmul.Equal(c, ref) {
		t.Fatalf("%+v computed a wrong product", spec)
	}
	out := capture{res: res, c: c, metrics: rec.Metrics().Flatten("")}
	for _, u := range rec.Units() {
		out.units = append(out.units, u.Name)
		out.events = append(out.events, u.Events())
	}
	return out
}

// TestPartitionResidencyByteIdentity is the differential gate the
// partitioned machine rests on: a workload run inside a partition of
// a larger machine — at a non-zero base, with a neighboring partition
// holding circuits through the shared network — produces bit-for-bit
// the same cycle counts, observability event stream, metrics, and
// data results as a standalone machine of the partition's size.
func TestPartitionResidencyByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		spec matmul.Spec
	}{
		{"simd-n16-p4", matmul.Spec{N: 16, P: 4, Muls: 1, Mode: matmul.SIMD}},
		{"smimd-n16-p4", matmul.Spec{N: 16, P: 4, Muls: 1, Mode: matmul.SMIMD}},
		{"mimd-n16-p8", matmul.Spec{N: 16, P: 8, Muls: 1, Mode: matmul.MIMD}},
		{"mixed-n16-p4", matmul.Spec{N: 16, P: 4, Muls: 1, Mode: matmul.Mixed}},
		{"serial-n8", matmul.Spec{N: 8, Muls: 1, Mode: matmul.Serial}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pes := tc.spec.P
			if pes < 1 {
				pes = 1
			}
			m := newTestMachine(t, 64)

			// Standalone reference: a private machine of the
			// partition's size, identically configured.
			std := m.Config()
			std.NumPEs = pes
			if std.PEsPerMC > pes {
				std.PEsPerMC = pes
			}
			want := runCell(t, std, tc.spec)

			// Occupy the low subcube so the target partition lands at
			// a non-zero base, and hold circuits through the shared
			// network while the target runs.
			filler, err := m.Acquire(pes)
			if err != nil {
				t.Fatal(err)
			}
			fillerVM, err := filler.NewVM()
			if err != nil {
				t.Fatal(err)
			}
			if err := fillerVM.EstablishShift(); err != nil {
				t.Fatal(err)
			}
			target, err := m.Acquire(pes)
			if err != nil {
				t.Fatal(err)
			}
			if target.Base == 0 {
				t.Fatalf("target partition at base 0; the test needs a non-zero base")
			}
			got := runCell(t, target.Config(m.Config()), tc.spec)

			if !reflect.DeepEqual(got.res, want.res) {
				t.Errorf("RunResult diverged:\npartition:  %+v\nstandalone: %+v", got.res, want.res)
			}
			if !matmul.Equal(got.c, want.c) {
				t.Error("product matrices diverged")
			}
			if !reflect.DeepEqual(got.units, want.units) {
				t.Errorf("unit sets diverged: %v vs %v", got.units, want.units)
			}
			if !reflect.DeepEqual(got.events, want.events) {
				for i := range got.events {
					if i < len(want.events) && !reflect.DeepEqual(got.events[i], want.events[i]) {
						t.Errorf("event stream of %s diverged (%d vs %d events)",
							got.units[i], len(got.events[i]), len(want.events[i]))
						break
					}
				}
				t.Error("obs event streams diverged")
			}
			if !reflect.DeepEqual(got.metrics, want.metrics) {
				t.Errorf("metrics diverged:\npartition:  %v\nstandalone: %v", got.metrics, want.metrics)
			}

			if err := target.Release(); err != nil {
				t.Fatal(err)
			}
			if err := filler.Release(); err != nil {
				t.Fatal(err)
			}
			if m.FreePEs() != 64 {
				t.Errorf("PEs leaked: %d free", m.FreePEs())
			}
		})
	}
}

// TestConcurrentPartitionsMatchStandalone runs the same cell on four
// co-resident partitions at once; every copy must report exactly the
// standalone timing (ported from the pasm.System test, now through
// the shared-network machine).
func TestConcurrentPartitionsMatchStandalone(t *testing.T) {
	spec := matmul.Spec{N: 16, P: 4, Muls: 1, Mode: matmul.SIMD}
	m := newTestMachine(t, 16)

	std := m.Config()
	std.NumPEs = 4
	solo := runCell(t, std, spec)

	job := func(name string) Job {
		return Job{Name: name, PEs: 4, Run: func(vm *pasm.VM) (pasm.RunResult, error) {
			prog, l, err := matmul.Build(spec)
			if err != nil {
				return pasm.RunResult{}, err
			}
			a := matmul.Identity(spec.N)
			b := matmul.Random(spec.N, 7)
			if err := vm.EstablishShift(); err != nil {
				return pasm.RunResult{}, err
			}
			if err := matmul.Load(vm, l, a, b); err != nil {
				return pasm.RunResult{}, err
			}
			return vm.RunSIMD(prog)
		}}
	}
	results, err := m.RunJobs([]Job{job("a"), job("b"), job("c"), job("d")})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.Result.Cycles != solo.res.Cycles {
			t.Errorf("%s at base %d: %d cycles, standalone took %d (partitions must be independent)",
				r.Name, r.Base, r.Result.Cycles, solo.res.Cycles)
		}
	}
}
