package partition

import (
	"errors"
	"testing"

	"repro/internal/m68k"
	"repro/internal/pasm"
)

func newTestMachine(t *testing.T, pes int) *Machine {
	t.Helper()
	cfg := pasm.DefaultConfig()
	cfg.NumPEs = pes
	cfg.PEMemBytes = 1 << 16
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineAcquireAlignment(t *testing.T) {
	m := newTestMachine(t, 16)
	l8, err := m.Acquire(8)
	if err != nil {
		t.Fatal(err)
	}
	if l8.Base != 0 {
		t.Errorf("first 8-PE partition at base %d, want 0", l8.Base)
	}
	l4, err := m.Acquire(4)
	if err != nil {
		t.Fatal(err)
	}
	if l4.Base != 8 {
		t.Errorf("4-PE partition at base %d, want 8", l4.Base)
	}
	l2, err := m.Acquire(2)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Base != 12 {
		t.Errorf("2-PE partition at base %d, want 12", l2.Base)
	}
	if m.FreePEs() != 2 {
		t.Errorf("FreePEs = %d, want 2", m.FreePEs())
	}
	// A 4-PE partition needs an aligned subcube: only 14..15 remain.
	if _, err := m.Acquire(4); err == nil {
		t.Error("unaligned/unavailable partition accepted")
	}
	if err := l4.Release(); err != nil {
		t.Fatal(err)
	}
	if m.FreePEs() != 6 {
		t.Errorf("FreePEs after release = %d", m.FreePEs())
	}
	// Now 8..11 is free and aligned again.
	if _, err := m.Acquire(4); err != nil {
		t.Errorf("re-acquisition failed: %v", err)
	}
}

func TestMachineReleaseValidation(t *testing.T) {
	m := newTestMachine(t, 16)
	l, err := m.Acquire(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err == nil {
		t.Error("double release accepted")
	}
}

func TestMachineSizeValidation(t *testing.T) {
	m := newTestMachine(t, 16)
	for _, bad := range []int{0, 3, 32, -4} {
		if _, err := m.Acquire(bad); err == nil {
			t.Errorf("Acquire(%d) accepted", bad)
		}
	}
	cfg := pasm.DefaultConfig()
	cfg.Net = &escubeStub{}
	if _, err := New(cfg); err == nil {
		t.Error("template with an injected network accepted")
	}
}

// escubeStub satisfies pasm.Net for the template-validation test.
type escubeStub struct{}

func (*escubeStub) Size() int                        { return 16 }
func (*escubeStub) Establish(src, dst int) error     { return nil }
func (*escubeStub) EstablishPermutation([]int) error { return nil }
func (*escubeStub) Release(int)                      {}
func (*escubeStub) ReleaseAll()                      {}
func (*escubeStub) DestOf(int) int                   { return -1 }
func (*escubeStub) FailBox(int, int) error           { return nil }

func TestRunJobsConcurrently(t *testing.T) {
	m := newTestMachine(t, 16)
	mkJob := func(name string, pes int, value uint16) Job {
		return Job{
			Name: name,
			PEs:  pes,
			Run: func(vm *pasm.VM) (pasm.RunResult, error) {
				prog := m68k.MustAssemble(`
					move.w  $100, d0
					mulu.w  d0, d0
					move.w  d0, $102
					halt
				`)
				for _, pe := range vm.PEs {
					if err := pe.Mem.WriteWords(0x100, []uint16{value}); err != nil {
						return pasm.RunResult{}, err
					}
				}
				if err := vm.EstablishShift(); err != nil {
					return pasm.RunResult{}, err
				}
				res, err := vm.RunMIMD(prog)
				if err != nil {
					return pasm.RunResult{}, err
				}
				for _, pe := range vm.PEs {
					v, _ := pe.Mem.Read(0x102, m68k.Word)
					if v != uint32(value)*uint32(value)&0xFFFF {
						return pasm.RunResult{}, errors.New("wrong result")
					}
				}
				return res, nil
			},
		}
	}
	jobs := []Job{
		mkJob("alpha", 8, 11),
		mkJob("beta", 4, 22),
		mkJob("gamma", 2, 33),
		mkJob("delta", 2, 44),
	}
	results, err := m.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	bases := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("job %s: %v", r.Name, r.Err)
		}
		if r.Result.Cycles == 0 {
			t.Errorf("job %s: no cycles", r.Name)
		}
		if bases[r.Base] {
			t.Errorf("job %s shares base %d", r.Name, r.Base)
		}
		bases[r.Base] = true
	}
	if m.FreePEs() != 16 {
		t.Errorf("PEs leaked: %d free", m.FreePEs())
	}
	metrics := m.Metrics("partition/")
	if metrics["partition/leases_total"] != 4 || metrics["partition/releases_total"] != 4 {
		t.Errorf("lease counters: %+v", metrics)
	}
	if metrics["partition/pes_busy_peak"] != 16 {
		t.Errorf("peak busy = %v, want 16", metrics["partition/pes_busy_peak"])
	}
	if metrics["partition/occupancy_pct"] != 0 {
		t.Errorf("occupancy after drain = %v, want 0", metrics["partition/occupancy_pct"])
	}
}

func TestRunJobsOverallocation(t *testing.T) {
	m := newTestMachine(t, 16)
	jobs := []Job{
		{Name: "a", PEs: 16, Run: func(vm *pasm.VM) (pasm.RunResult, error) { return pasm.RunResult{}, nil }},
		{Name: "b", PEs: 2, Run: func(vm *pasm.VM) (pasm.RunResult, error) { return pasm.RunResult{}, nil }},
	}
	if _, err := m.RunJobs(jobs); err == nil {
		t.Error("over-allocation accepted")
	}
	if m.FreePEs() != 16 {
		t.Errorf("failed RunJobs leaked PEs: %d free", m.FreePEs())
	}
}

func TestLeaseConfigClamps(t *testing.T) {
	m := newTestMachine(t, 64)
	l, err := m.Acquire(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := l.Config(m.Config())
	if cfg.NumPEs != 2 {
		t.Errorf("NumPEs = %d, want 2", cfg.NumPEs)
	}
	if cfg.PEsPerMC != 2 {
		t.Errorf("PEsPerMC = %d, want clamped to 2", cfg.PEsPerMC)
	}
	if cfg.Net == nil || cfg.Net.Size() != 2 {
		t.Errorf("Net view missing or wrong size")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("derived config invalid: %v", err)
	}
	// A 1-PE partition still carries a 2-line view — the standalone
	// 1-PE machine's network size.
	one, err := m.Acquire(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Config(m.Config()); got.Net.Size() != 2 || got.NumPEs != 1 {
		t.Errorf("1-PE lease: NumPEs=%d view=%d", got.NumPEs, got.Net.Size())
	}
	vm, err := one.NewVM()
	if err != nil {
		t.Fatal(err)
	}
	if vm.P != 1 || vm.Base != one.Base {
		t.Errorf("vm.P=%d Base=%d", vm.P, vm.Base)
	}
}
