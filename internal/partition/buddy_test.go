package partition

import "testing"

func mustBuddy(t *testing.T, total int) *Buddy {
	t.Helper()
	b, err := NewBuddy(total)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustAlloc(t *testing.T, b *Buddy, pes int) int {
	t.Helper()
	base, err := b.Alloc(pes)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Check(); err != nil {
		t.Fatalf("after Alloc(%d): %v", pes, err)
	}
	return base
}

func TestBuddyAllocPlacement(t *testing.T) {
	b := mustBuddy(t, 16)
	// Lowest-base, aligned placement, splitting as needed.
	if base := mustAlloc(t, b, 8); base != 0 {
		t.Errorf("first 8-PE block at %d, want 0", base)
	}
	if base := mustAlloc(t, b, 4); base != 8 {
		t.Errorf("4-PE block at %d, want 8", base)
	}
	if base := mustAlloc(t, b, 2); base != 12 {
		t.Errorf("2-PE block at %d, want 12", base)
	}
	if b.FreePEs() != 2 {
		t.Errorf("FreePEs = %d, want 2", b.FreePEs())
	}
	// Only 14..15 remain: a 4-PE subcube cannot fit.
	if _, err := b.Alloc(4); err == nil {
		t.Error("Alloc(4) on a machine with only 2 free PEs accepted")
	}
	if _, ok := b.FitOrder(4); ok {
		t.Error("FitOrder(4) claims a fit")
	}
	if base := mustAlloc(t, b, 2); base != 14 {
		t.Errorf("last pair at %d, want 14", base)
	}
	if b.FreePEs() != 0 || b.LargestFree() != 0 || b.Fragmentation() != 0 {
		t.Errorf("full machine: free=%d largest=%d frag=%v", b.FreePEs(), b.LargestFree(), b.Fragmentation())
	}
}

func TestBuddyMinBlockPairsOnePE(t *testing.T) {
	// A 1-PE partition reserves a 2-PE block: the smallest subcube
	// with private interchange boxes.
	b := mustBuddy(t, 8)
	a := mustAlloc(t, b, 1)
	c := mustAlloc(t, b, 1)
	if a != 0 || c != 2 {
		t.Errorf("two 1-PE partitions at %d and %d, want 0 and 2", a, c)
	}
	if b.FreePEs() != 4 {
		t.Errorf("FreePEs = %d, want 4 (1-PE jobs reserve pairs)", b.FreePEs())
	}
}

func TestBuddyCoalesce(t *testing.T) {
	b := mustBuddy(t, 16)
	bases := make([]int, 8)
	for i := range bases {
		bases[i] = mustAlloc(t, b, 2)
	}
	// Free in an interleaved order; every free must keep invariants and
	// the last must coalesce back to one 16-PE block.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 6, 4} {
		if err := b.Free(bases[i]); err != nil {
			t.Fatal(err)
		}
		if err := b.Check(); err != nil {
			t.Fatalf("after Free(%d): %v", bases[i], err)
		}
	}
	if b.LargestFree() != 16 {
		t.Errorf("LargestFree = %d after freeing everything, want 16", b.LargestFree())
	}
	_, _, splits, coalesces, _ := b.Counters()
	if splits != coalesces {
		t.Errorf("splits=%d coalesces=%d, want equal after returning to empty", splits, coalesces)
	}
}

func TestBuddyFragmentation(t *testing.T) {
	b := mustBuddy(t, 16)
	// Hold PEs 0..3 and 8..11: free = {4..7, 12..15}, largest = 4,
	// fragmentation = 1 - 4/8.
	mustAlloc(t, b, 4) // 0
	keep := mustAlloc(t, b, 4)
	mustAlloc(t, b, 4) // 8
	if err := b.Free(keep); err != nil {
		t.Fatal(err)
	}
	if got := b.FreePEs(); got != 8 {
		t.Fatalf("FreePEs = %d, want 8", got)
	}
	if got := b.LargestFree(); got != 4 {
		t.Errorf("LargestFree = %d, want 4", got)
	}
	if got := b.Fragmentation(); got != 0.5 {
		t.Errorf("Fragmentation = %v, want 0.5", got)
	}
	// An 8-PE request fails even though 8 PEs are free.
	if _, err := b.Alloc(8); err == nil {
		t.Error("Alloc(8) accepted on a fragmented machine with 8 free PEs")
	}
}

func TestBuddyErrors(t *testing.T) {
	if _, err := NewBuddy(3); err == nil {
		t.Error("NewBuddy(3) accepted")
	}
	if _, err := NewBuddy(2048); err == nil {
		t.Error("NewBuddy(2048) accepted (above MaxPEs)")
	}
	b := mustBuddy(t, 16)
	for _, bad := range []int{0, -2, 3, 32} {
		if _, err := b.Alloc(bad); err == nil {
			t.Errorf("Alloc(%d) accepted", bad)
		}
	}
	if err := b.Free(0); err == nil {
		t.Error("Free of an unallocated base accepted")
	}
	base := mustAlloc(t, b, 4)
	if err := b.Free(base); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(base); err == nil {
		t.Error("double Free accepted")
	}
	_, _, _, _, failed := b.Counters()
	if failed != 4 {
		t.Errorf("failed counter = %d, want 4", failed)
	}
}

func TestBuddyBlockLists(t *testing.T) {
	b := mustBuddy(t, 16)
	mustAlloc(t, b, 4)
	mustAlloc(t, b, 2)
	got := b.Allocated()
	want := [][2]int{{0, 4}, {4, 2}}
	if len(got) != len(want) {
		t.Fatalf("Allocated = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Allocated = %v, want %v", got, want)
		}
	}
	free := b.FreeBlocks()
	wantFree := [][2]int{{6, 2}, {8, 8}}
	if len(free) != len(wantFree) {
		t.Fatalf("FreeBlocks = %v, want %v", free, wantFree)
	}
	for i := range wantFree {
		if free[i] != wantFree[i] {
			t.Fatalf("FreeBlocks = %v, want %v", free, wantFree)
		}
	}
}
