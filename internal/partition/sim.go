package partition

import (
	"fmt"
	"sort"
)

// The co-scheduling simulator: a discrete-event model of the
// partition scheduler on the SIMULATED clock. Job durations come from
// real standalone cell simulations — which the subcube isomorphism
// makes exact for any placement — so packing those durations onto the
// machine with a policy reproduces, deterministically, the timeline a
// host-concurrent partitioned run would take. The ext-partition
// experiment and the partition benchmark are built on it.

// SimJob is one job offered to the simulated scheduler.
type SimJob struct {
	// Name identifies the job in results.
	Name string
	// PEs is the requested partition size.
	PEs int
	// Cycles is the job's run time on a PEs-sized machine (from a
	// real simulation; placement-independent by the subcube
	// isomorphism).
	Cycles int64
	// Arrival is the submission time on the simulated clock.
	Arrival int64
}

// SimJobResult is one job's simulated schedule.
type SimJobResult struct {
	Name    string `json:"name"`
	PEs     int    `json:"pes"`
	Base    int    `json:"base"`
	Arrival int64  `json:"arrival"`
	Start   int64  `json:"start"`
	Finish  int64  `json:"finish"`
	// Wait is Start - Arrival: the wait-for-partition time.
	Wait int64 `json:"wait"`
}

// SimResult summarizes one policy's schedule of a job set.
type SimResult struct {
	Policy Policy         `json:"policy"`
	Jobs   []SimJobResult `json:"jobs"`
	// Makespan is the finish time of the last job.
	Makespan int64 `json:"makespan"`
	// BusyPECycles sums PEs*Cycles over the jobs: the useful work.
	BusyPECycles int64 `json:"busy_pe_cycles"`
	// Utilization is BusyPECycles over the machine's capacity during
	// the makespan.
	Utilization float64 `json:"utilization"`
	MeanWait    float64 `json:"mean_wait"`
	MaxWait     int64   `json:"max_wait"`
	// PeakFragmentation is the worst external fragmentation observed
	// at a scheduling point where work was left waiting.
	PeakFragmentation float64 `json:"peak_fragmentation"`
}

// Simulate schedules jobs onto a totalPEs machine under the given
// policy and returns the resulting timeline. Fully deterministic:
// ties in time break by submission order, and allocation always takes
// the lowest free base.
func Simulate(totalPEs int, policy Policy, jobs []SimJob) (SimResult, error) {
	buddy, err := NewBuddy(totalPEs)
	if err != nil {
		return SimResult{}, err
	}
	for _, j := range jobs {
		if !ValidPEs(j.PEs, totalPEs) {
			return SimResult{}, fmt.Errorf("partition: job %q wants %d PEs on a %d-PE machine", j.Name, j.PEs, totalPEs)
		}
		if j.Cycles < 0 || j.Arrival < 0 {
			return SimResult{}, fmt.Errorf("partition: job %q has negative cycles or arrival", j.Name)
		}
	}

	// Arrival order: by time, then submission order.
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Arrival < jobs[order[b]].Arrival
	})

	type running struct {
		idx    int
		base   int
		finish int64
	}
	res := SimResult{Policy: policy, Jobs: make([]SimJobResult, len(jobs))}
	var (
		pending []int // job indices in arrival order
		active  []running
		next    = 0 // next entry of order to arrive
		now     int64
	)
	for next < len(order) || len(pending) > 0 || len(active) > 0 {
		// Advance to the next event: an arrival or a completion.
		var t int64
		have := false
		if next < len(order) {
			t, have = jobs[order[next]].Arrival, true
		}
		for _, r := range active {
			if !have || r.finish < t {
				t, have = r.finish, true
			}
		}
		if !have {
			// Pending jobs but no arrivals or completions left: the
			// remainder can never fit (validated sizes always fit an
			// empty machine, so this means a bug, not a job set).
			return res, fmt.Errorf("partition: scheduler stalled with %d jobs pending", len(pending))
		}
		now = t

		// Completions first (free before place), in submission order.
		sort.SliceStable(active, func(a, b int) bool { return active[a].idx < active[b].idx })
		kept := active[:0]
		for _, r := range active {
			if r.finish == now {
				if err := buddy.Free(r.base); err != nil {
					return res, err
				}
			} else {
				kept = append(kept, r)
			}
		}
		active = kept

		// Arrivals at this instant.
		for next < len(order) && jobs[order[next]].Arrival == now {
			pending = append(pending, order[next])
			next++
		}

		// Place as many pending jobs as the policy and free state
		// allow.
		sizes := make([]int, len(pending))
		for {
			sizes = sizes[:len(pending)]
			for i, idx := range pending {
				sizes[i] = jobs[idx].PEs
			}
			pick := Pick(buddy, policy, sizes)
			if pick < 0 {
				break
			}
			idx := pending[pick]
			base, err := buddy.Alloc(jobs[idx].PEs)
			if err != nil {
				return res, err
			}
			pending = append(pending[:pick], pending[pick+1:]...)
			j := jobs[idx]
			finish := now + j.Cycles
			active = append(active, running{idx: idx, base: base, finish: finish})
			res.Jobs[idx] = SimJobResult{
				Name: j.Name, PEs: j.PEs, Base: base,
				Arrival: j.Arrival, Start: now, Finish: finish,
				Wait: now - j.Arrival,
			}
			if finish > res.Makespan {
				res.Makespan = finish
			}
		}
		if len(pending) > 0 {
			if frag := buddy.Fragmentation(); frag > res.PeakFragmentation {
				res.PeakFragmentation = frag
			}
		}
	}

	var waitSum int64
	for i, j := range jobs {
		res.BusyPECycles += int64(j.PEs) * j.Cycles
		waitSum += res.Jobs[i].Wait
		if res.Jobs[i].Wait > res.MaxWait {
			res.MaxWait = res.Jobs[i].Wait
		}
	}
	if len(jobs) > 0 {
		res.MeanWait = float64(waitSum) / float64(len(jobs))
	}
	if res.Makespan > 0 {
		res.Utilization = float64(res.BusyPECycles) / (float64(totalPEs) * float64(res.Makespan))
	}
	return res, nil
}

// SerialMakespan is the whole-machine baseline the co-scheduling
// sweep compares against: every job runs alone, in arrival order,
// each starting when it has arrived and the machine is idle.
func SerialMakespan(jobs []SimJob) int64 {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Arrival < jobs[order[b]].Arrival
	})
	var now int64
	for _, idx := range order {
		j := jobs[idx]
		if j.Arrival > now {
			now = j.Arrival
		}
		now += j.Cycles
	}
	return now
}
