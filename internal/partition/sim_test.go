package partition

import (
	"reflect"
	"testing"
)

func TestSimulateBackfill(t *testing.T) {
	// A 16-PE machine: the 16-PE job occupies the whole machine; two
	// 4-PE jobs queued behind it share the machine afterwards.
	jobs := []SimJob{
		{Name: "big", PEs: 16, Cycles: 100, Arrival: 0},
		{Name: "a", PEs: 4, Cycles: 50, Arrival: 10},
		{Name: "b", PEs: 4, Cycles: 50, Arrival: 10},
	}
	res, err := Simulate(16, PolicyFirstFit, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Start != 0 || res.Jobs[0].Finish != 100 {
		t.Errorf("big: %+v", res.Jobs[0])
	}
	// Both 4-PE jobs start the instant the big one finishes, on
	// disjoint subcubes, and overlap fully.
	for _, i := range []int{1, 2} {
		if res.Jobs[i].Start != 100 || res.Jobs[i].Finish != 150 {
			t.Errorf("job %d: %+v", i, res.Jobs[i])
		}
		if res.Jobs[i].Wait != 90 {
			t.Errorf("job %d wait = %d, want 90", i, res.Jobs[i].Wait)
		}
	}
	if res.Jobs[1].Base == res.Jobs[2].Base {
		t.Error("co-resident jobs share a base")
	}
	if res.Makespan != 150 {
		t.Errorf("makespan = %d, want 150", res.Makespan)
	}
	if res.MaxWait != 90 || res.MeanWait != 60 {
		t.Errorf("waits: max=%d mean=%v", res.MaxWait, res.MeanWait)
	}
	// Useful work: 16*100 + 2*4*50 = 2000 PE-cycles over 16*150.
	if res.BusyPECycles != 2000 {
		t.Errorf("busy = %d", res.BusyPECycles)
	}
	if want := 2000.0 / (16 * 150); res.Utilization != want {
		t.Errorf("utilization = %v, want %v", res.Utilization, want)
	}
	// Serial baseline: 100 + 50 + 50.
	if s := SerialMakespan(jobs); s != 200 {
		t.Errorf("serial makespan = %d, want 200", s)
	}
}

func TestSimulateFragmentationStall(t *testing.T) {
	// Four 4-PE jobs fill the machine; the two short ones free
	// non-adjacent subcubes (4..7 and 12..15), so at t=10 the machine
	// has 8 free PEs in two 4-blocks — fragmented — and the queued
	// 8-PE job must wait for the long holders to finish.
	jobs := []SimJob{
		{Name: "longA", PEs: 4, Cycles: 100, Arrival: 0},
		{Name: "short1", PEs: 4, Cycles: 10, Arrival: 0},
		{Name: "longB", PEs: 4, Cycles: 100, Arrival: 0},
		{Name: "short2", PEs: 4, Cycles: 10, Arrival: 0},
		{Name: "big", PEs: 8, Cycles: 20, Arrival: 5},
	}
	res, err := Simulate(16, PolicyFirstFit, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[4].Start != 100 {
		t.Errorf("big started at %d, want 100 (after the long holders)", res.Jobs[4].Start)
	}
	// While big waited, the free pool was two scattered 4-blocks:
	// fragmentation 1 - 4/8.
	if res.PeakFragmentation != 0.5 {
		t.Errorf("peak fragmentation = %v, want 0.5", res.PeakFragmentation)
	}
	if res.Makespan != 120 {
		t.Errorf("makespan = %d, want 120", res.Makespan)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	jobs := []SimJob{
		{Name: "a", PEs: 8, Cycles: 70, Arrival: 0},
		{Name: "b", PEs: 8, Cycles: 30, Arrival: 0},
		{Name: "c", PEs: 4, Cycles: 90, Arrival: 20},
		{Name: "d", PEs: 16, Cycles: 40, Arrival: 25},
		{Name: "e", PEs: 2, Cycles: 15, Arrival: 25},
	}
	for _, policy := range Policies() {
		first, err := Simulate(16, policy, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			again, err := Simulate(16, policy, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("%s: run %d diverged:\n%+v\n%+v", policy, i, first, again)
			}
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(16, PolicyFirstFit, []SimJob{{Name: "x", PEs: 3, Cycles: 1}}); err == nil {
		t.Error("non-power-of-two job size accepted")
	}
	if _, err := Simulate(16, PolicyFirstFit, []SimJob{{Name: "x", PEs: 32, Cycles: 1}}); err == nil {
		t.Error("oversize job accepted")
	}
	if _, err := Simulate(16, PolicyFirstFit, []SimJob{{Name: "x", PEs: 4, Cycles: -1}}); err == nil {
		t.Error("negative cycles accepted")
	}
	if _, err := Simulate(3, PolicyFirstFit, nil); err == nil {
		t.Error("non-power-of-two machine accepted")
	}
	res, err := Simulate(16, PolicyFirstFit, nil)
	if err != nil || res.Makespan != 0 {
		t.Errorf("empty job set: %+v, %v", res, err)
	}
}
