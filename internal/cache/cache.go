// Package cache is the content-addressed result cache behind the
// experiment service (internal/service, cmd/pasmd). Values are
// immutable byte slices — finished report documents — addressed by the
// SHA-256 of their spec's canonical encoding plus the code version
// (experiments.Spec.Key), so a hit can be served byte-identical
// without re-running anything, and a simulator change can never serve
// stale bytes.
//
// The cache is LRU-bounded by entry count and total value bytes, and
// exposes hit/miss/eviction counters through an internal/obs registry
// so the service's /metrics endpoint reports cache effectiveness
// alongside queue behavior.
package cache

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/obs"
)

// Key is a content address: SHA-256 of canonical spec + code version.
type Key [sha256.Size]byte

// Config bounds the cache. Zero values mean "no bound" on that axis;
// a cache with no bounds never evicts.
type Config struct {
	// MaxEntries bounds the number of cached results.
	MaxEntries int
	// MaxBytes bounds the sum of value lengths.
	MaxBytes int64
}

type entry struct {
	key Key
	val []byte
}

// Cache is a mutex-guarded LRU map from Key to immutable bytes. Safe
// for concurrent use. Callers must not mutate returned values.
type Cache struct {
	cfg Config

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	bytes int64
	reg   *obs.Registry
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:   cfg,
		ll:    list.New(),
		items: map[Key]*list.Element{},
		reg:   obs.NewRegistry(),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.reg.Add("misses", 1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.reg.Add("hits", 1)
	return el.Value.(*entry).val, true
}

// Contains reports whether a key is cached without touching recency or
// the hit/miss counters (for admission decisions and tests).
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[k]
	return ok
}

// Put stores a value, replacing any previous value for the key, and
// evicts least-recently-used entries until the configured bounds hold.
// A value larger than MaxBytes by itself is stored and then evicted on
// the next Put (the cache never rejects a store outright — the fresh
// result is the one most likely to be fetched next).
func (c *Cache) Put(k Key, v []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(v)) - int64(len(e.val))
		e.val = v
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&entry{key: k, val: v})
		c.bytes += int64(len(v))
		c.reg.Add("puts", 1)
	}
	for c.over() && c.ll.Len() > 1 {
		c.evictOldest()
	}
}

// over reports whether a configured bound is exceeded.
func (c *Cache) over() bool {
	if c.cfg.MaxEntries > 0 && c.ll.Len() > c.cfg.MaxEntries {
		return true
	}
	if c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes {
		return true
	}
	return false
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= int64(len(e.val))
	c.reg.Add("evictions", 1)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total cached value bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Keys returns the cached keys from most to least recently used (test
// and introspection helper).
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Metrics flattens the cache counters plus current occupancy gauges,
// all under the given prefix (the service merges them into /metrics).
func (c *Cache) Metrics(prefix string) map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.reg.Flatten(prefix)
	// Flatten omits never-incremented counters; pin the core ones so
	// the metrics surface is stable from the first scrape.
	for _, name := range []string{"hits", "misses", "evictions", "puts"} {
		if _, ok := m[prefix+name]; !ok {
			m[prefix+name] = 0
		}
	}
	m[prefix+"entries"] = float64(c.ll.Len())
	m[prefix+"bytes"] = float64(c.bytes)
	return m
}
