package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestHitAfterPut(t *testing.T) {
	c := New(Config{MaxEntries: 4})
	k := key(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("result"))
	v, ok := c.Get(k)
	if !ok || string(v) != "result" {
		t.Fatalf("Get = %q, %v; want result, true", v, ok)
	}
	m := c.Metrics("")
	if m["hits"] != 1 || m["misses"] != 1 || m["puts"] != 1 || m["entries"] != 1 {
		t.Errorf("metrics = %v; want 1 hit, 1 miss, 1 put, 1 entry", m)
	}
}

// TestLRUEvictionOrder: the least recently *used* entry goes first,
// and a Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := New(Config{MaxEntries: 3})
	for i := byte(1); i <= 3; i++ {
		c.Put(key(i), []byte{i})
	}
	// Touch 1 so 2 becomes the oldest.
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("expected hit on 1")
	}
	c.Put(key(4), []byte{4})
	if _, ok := c.Get(key(2)); ok {
		t.Error("2 should have been evicted (least recently used)")
	}
	for _, b := range []byte{1, 3, 4} {
		if !c.Contains(key(b)) {
			t.Errorf("%d should have survived", b)
		}
	}
	c.Put(key(5), []byte{5})
	c.Put(key(6), []byte{6})
	// Eviction order after the state above: 3, then 1 (refreshed), ...
	if c.Contains(key(3)) {
		t.Error("3 should have been evicted before refreshed 1")
	}
	if m := c.Metrics(""); m["evictions"] != 3 || m["entries"] != 3 {
		t.Errorf("metrics = %v; want 3 evictions, 3 entries", m)
	}
}

func TestByteBound(t *testing.T) {
	c := New(Config{MaxBytes: 10})
	c.Put(key(1), make([]byte, 4))
	c.Put(key(2), make([]byte, 4))
	c.Put(key(3), make([]byte, 4)) // 12 bytes > 10: evict 1
	if c.Contains(key(1)) {
		t.Error("1 should have been evicted by the byte bound")
	}
	if c.Bytes() != 8 || c.Len() != 2 {
		t.Errorf("bytes=%d len=%d; want 8, 2", c.Bytes(), c.Len())
	}
	// An oversized value is stored (never rejected) but is alone.
	c.Put(key(4), make([]byte, 64))
	if !c.Contains(key(4)) || c.Len() != 1 {
		t.Errorf("oversized value handling: len=%d contains4=%v", c.Len(), c.Contains(key(4)))
	}
}

func TestPutReplace(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	c.Put(key(1), []byte("aa"))
	c.Put(key(1), []byte("bbbb"))
	if v, _ := c.Get(key(1)); string(v) != "bbbb" {
		t.Errorf("replacement not visible: %q", v)
	}
	if c.Bytes() != 4 || c.Len() != 1 {
		t.Errorf("bytes=%d len=%d after replace; want 4, 1", c.Bytes(), c.Len())
	}
}

// TestSpecKeySensitivity drives the cache with real experiment-spec
// keys: every field change must land on a different cache entry, and
// a code-version change is part of the key derivation (pinned by the
// experiments golden test), so same-spec lookups only hit same-code
// entries.
func TestSpecKeySensitivity(t *testing.T) {
	specKey := func(s experiments.Spec) Key {
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		return Key(k)
	}
	c := New(Config{})
	base := experiments.Spec{Exps: []string{"table1"}, Seed: 1988}
	c.Put(specKey(base), []byte("base"))

	for name, s := range map[string]experiments.Spec{
		"exp":     {Exps: []string{"fig6"}, Seed: 1988},
		"seed":    {Exps: []string{"table1"}, Seed: 1989},
		"full":    {Exps: []string{"table1"}, Seed: 1988, Full: true},
		"observe": {Exps: []string{"table1"}, Seed: 1988, Observe: true},
		"cells":   {Exps: []string{"table1"}, Cells: []experiments.CellSpec{{N: 8, P: 2, Muls: 1, Mode: "simd"}}, Seed: 1988},
	} {
		if _, ok := c.Get(specKey(s)); ok {
			t.Errorf("changing %s still hit the cached base entry", name)
		}
	}
	if v, ok := c.Get(specKey(experiments.Spec{Exps: []string{"TABLE1"}, Seed: 1988})); !ok || string(v) != "base" {
		t.Errorf("equivalent spelling missed: %q, %v", v, ok)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(Config{MaxEntries: 8})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := key(byte(i % 16))
				c.Put(k, []byte(fmt.Sprint(i)))
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Errorf("len=%d exceeds bound", c.Len())
	}
}

// TestConcurrentFillEvictAtByteBoundary hammers the cache with
// concurrent fills, replacements, and reads while the byte budget sits
// exactly at an eviction boundary, then checks the accounting
// invariants the serving path depends on:
//
//   - entries == puts − evictions (no entry leaks or double-frees);
//   - Bytes() == the sum of the lengths of the values actually held;
//   - both configured bounds hold at rest;
//   - a served value is never corrupted: every value encodes the key
//     it was stored under, so a cross-wired entry is detected on read.
//
// The table places the budget on, just under, and just over a multiple
// of the value size, mixes value sizes, and includes replacement-heavy
// and entry-bounded variants. Run under -race this is also the
// fill/evict data-race gate.
func TestConcurrentFillEvictAtByteBoundary(t *testing.T) {
	// valFor encodes the key and a size in the value so readers can
	// verify integrity: byte 0 is the key tag, the rest repeats it.
	valFor := func(tag byte, size int) []byte {
		v := make([]byte, size)
		for i := range v {
			v[i] = tag
		}
		return v
	}

	cases := []struct {
		name    string
		cfg     Config
		keys    int   // distinct keys in play
		sizes   []int // value sizes cycled per put
		workers int
		iters   int
	}{
		{"bytes-exact-multiple", Config{MaxBytes: 4 * 32}, 16, []int{32}, 8, 400},
		{"bytes-just-under", Config{MaxBytes: 4*32 - 1}, 16, []int{32}, 8, 400},
		{"bytes-just-over", Config{MaxBytes: 4*32 + 1}, 16, []int{32}, 8, 400},
		{"bytes-mixed-sizes", Config{MaxBytes: 128}, 16, []int{16, 32, 48, 64}, 8, 400},
		{"bytes-replacement-heavy", Config{MaxBytes: 96}, 3, []int{16, 48, 32}, 8, 400},
		{"entries-and-bytes", Config{MaxEntries: 4, MaxBytes: 6 * 32}, 16, []int{32}, 8, 400},
		{"oversized-values", Config{MaxBytes: 64}, 8, []int{32, 128}, 8, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.cfg)
			var wg sync.WaitGroup
			for w := 0; w < tc.workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < tc.iters; i++ {
						tag := byte((w*tc.iters + i) % tc.keys)
						size := tc.sizes[(w+i)%len(tc.sizes)]
						c.Put(key(tag), valFor(tag, size))
						if v, ok := c.Get(key(tag)); ok {
							// The value may be any size another worker
							// stored, but must encode this key.
							if len(v) == 0 || v[0] != tag || v[len(v)-1] != tag {
								t.Errorf("corrupted value for key %d: len=%d first=%d last=%d",
									tag, len(v), v[0], v[len(v)-1])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()

			m := c.Metrics("")
			if got, want := m["puts"]-m["evictions"], float64(c.Len()); got != want {
				t.Errorf("puts(%g) - evictions(%g) = %g, want entries %g",
					m["puts"], m["evictions"], got, want)
			}
			var sum int64
			for _, k := range c.Keys() {
				v, ok := c.Get(k)
				if !ok {
					t.Fatalf("key %x listed but not gettable", k[0])
				}
				if v[0] != k[0] {
					t.Errorf("entry %x holds value tagged %d", k[0], v[0])
				}
				sum += int64(len(v))
			}
			if c.Bytes() != sum {
				t.Errorf("Bytes() = %d, actual held bytes = %d", c.Bytes(), sum)
			}
			if tc.cfg.MaxEntries > 0 && c.Len() > tc.cfg.MaxEntries {
				t.Errorf("len=%d exceeds MaxEntries=%d", c.Len(), tc.cfg.MaxEntries)
			}
			// The byte bound can only rest exceeded when a single
			// oversized value is alone in the cache (documented Put
			// behavior); otherwise it must hold.
			if tc.cfg.MaxBytes > 0 && c.Bytes() > tc.cfg.MaxBytes && c.Len() > 1 {
				t.Errorf("bytes=%d exceeds MaxBytes=%d with %d entries",
					c.Bytes(), tc.cfg.MaxBytes, c.Len())
			}
		})
	}
}
