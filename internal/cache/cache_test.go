package cache

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
)

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestHitAfterPut(t *testing.T) {
	c := New(Config{MaxEntries: 4})
	k := key(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("result"))
	v, ok := c.Get(k)
	if !ok || string(v) != "result" {
		t.Fatalf("Get = %q, %v; want result, true", v, ok)
	}
	m := c.Metrics("")
	if m["hits"] != 1 || m["misses"] != 1 || m["puts"] != 1 || m["entries"] != 1 {
		t.Errorf("metrics = %v; want 1 hit, 1 miss, 1 put, 1 entry", m)
	}
}

// TestLRUEvictionOrder: the least recently *used* entry goes first,
// and a Get refreshes recency.
func TestLRUEvictionOrder(t *testing.T) {
	c := New(Config{MaxEntries: 3})
	for i := byte(1); i <= 3; i++ {
		c.Put(key(i), []byte{i})
	}
	// Touch 1 so 2 becomes the oldest.
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("expected hit on 1")
	}
	c.Put(key(4), []byte{4})
	if _, ok := c.Get(key(2)); ok {
		t.Error("2 should have been evicted (least recently used)")
	}
	for _, b := range []byte{1, 3, 4} {
		if !c.Contains(key(b)) {
			t.Errorf("%d should have survived", b)
		}
	}
	c.Put(key(5), []byte{5})
	c.Put(key(6), []byte{6})
	// Eviction order after the state above: 3, then 1 (refreshed), ...
	if c.Contains(key(3)) {
		t.Error("3 should have been evicted before refreshed 1")
	}
	if m := c.Metrics(""); m["evictions"] != 3 || m["entries"] != 3 {
		t.Errorf("metrics = %v; want 3 evictions, 3 entries", m)
	}
}

func TestByteBound(t *testing.T) {
	c := New(Config{MaxBytes: 10})
	c.Put(key(1), make([]byte, 4))
	c.Put(key(2), make([]byte, 4))
	c.Put(key(3), make([]byte, 4)) // 12 bytes > 10: evict 1
	if c.Contains(key(1)) {
		t.Error("1 should have been evicted by the byte bound")
	}
	if c.Bytes() != 8 || c.Len() != 2 {
		t.Errorf("bytes=%d len=%d; want 8, 2", c.Bytes(), c.Len())
	}
	// An oversized value is stored (never rejected) but is alone.
	c.Put(key(4), make([]byte, 64))
	if !c.Contains(key(4)) || c.Len() != 1 {
		t.Errorf("oversized value handling: len=%d contains4=%v", c.Len(), c.Contains(key(4)))
	}
}

func TestPutReplace(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	c.Put(key(1), []byte("aa"))
	c.Put(key(1), []byte("bbbb"))
	if v, _ := c.Get(key(1)); string(v) != "bbbb" {
		t.Errorf("replacement not visible: %q", v)
	}
	if c.Bytes() != 4 || c.Len() != 1 {
		t.Errorf("bytes=%d len=%d after replace; want 4, 1", c.Bytes(), c.Len())
	}
}

// TestSpecKeySensitivity drives the cache with real experiment-spec
// keys: every field change must land on a different cache entry, and
// a code-version change is part of the key derivation (pinned by the
// experiments golden test), so same-spec lookups only hit same-code
// entries.
func TestSpecKeySensitivity(t *testing.T) {
	specKey := func(s experiments.Spec) Key {
		k, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		return Key(k)
	}
	c := New(Config{})
	base := experiments.Spec{Exps: []string{"table1"}, Seed: 1988}
	c.Put(specKey(base), []byte("base"))

	for name, s := range map[string]experiments.Spec{
		"exp":     {Exps: []string{"fig6"}, Seed: 1988},
		"seed":    {Exps: []string{"table1"}, Seed: 1989},
		"full":    {Exps: []string{"table1"}, Seed: 1988, Full: true},
		"observe": {Exps: []string{"table1"}, Seed: 1988, Observe: true},
		"cells":   {Exps: []string{"table1"}, Cells: []experiments.CellSpec{{N: 8, P: 2, Muls: 1, Mode: "simd"}}, Seed: 1988},
	} {
		if _, ok := c.Get(specKey(s)); ok {
			t.Errorf("changing %s still hit the cached base entry", name)
		}
	}
	if v, ok := c.Get(specKey(experiments.Spec{Exps: []string{"TABLE1"}, Seed: 1988})); !ok || string(v) != "base" {
		t.Errorf("equivalent spelling missed: %q, %v", v, ok)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(Config{MaxEntries: 8})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := key(byte(i % 16))
				c.Put(k, []byte(fmt.Sprint(i)))
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Errorf("len=%d exceeds bound", c.Len())
	}
}
