package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestTracedSubmitRecordsStages: a submit continuing a propagated
// trace context produces admit, queue, and run spans under the same
// trace ID, findable via /debug/requests, and /metrics v2 carries the
// per-stage quantiles.
func TestTracedSubmitRecordsStages(t *testing.T) {
	tr := telemetry.New(telemetry.Config{Component: "pasmd-test", Sample: 0, Seed: 7})
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 8, run: g.run, Telemetry: tr})
	defer s.Shutdown(context.Background())

	const header = "00000000deadbeef/0000beef"
	st, err := s.SubmitTraced(specN(1988), time.Time{}, header)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	g.release()
	waitState(t, s, st.ID, StateDone)

	r := tr.Lookup("00000000deadbeef")
	if r == nil {
		t.Fatalf("trace not recorded")
	}
	snap := r.Snapshot()
	if !snap.Done {
		t.Fatalf("trace not finished after job completion")
	}
	if snap.Parent != "0000beef" {
		t.Fatalf("parent span not continued: %q", snap.Parent)
	}
	got := map[string]telemetry.SpanSnapshot{}
	for _, sp := range snap.Spans {
		got[sp.Name] = sp
	}
	for _, want := range []string{"admit", "queue", "run"} {
		if _, ok := got[want]; !ok {
			t.Fatalf("missing %q span; have %v", want, snap.Spans)
		}
	}
	if got["run"].Track != "worker" {
		t.Fatalf("run span track = %q, want worker", got["run"].Track)
	}
	var outcome string
	for _, a := range got["admit"].Attrs {
		if a.Key == "outcome" {
			outcome = a.Value.(string)
		}
	}
	if outcome != "queued" {
		t.Fatalf("admit outcome = %q, want queued", outcome)
	}

	// /metrics v2: per-stage quantiles derived from the host histograms.
	m := s.Metrics()
	for _, key := range []string{"service/queue_wait_ms/p50", "service/run_ms/p95",
		"service/total_ms/p99", "telemetry/traces_started"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("metrics missing %q", key)
		}
	}
	if m["telemetry/traces_finished"] != 1 {
		t.Fatalf("traces_finished = %v, want 1", m["telemetry/traces_finished"])
	}

	// /debug/requests is mounted on the service handler.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/requests/00000000deadbeef")
	if err != nil {
		t.Fatalf("debug fetch: %v", err)
	}
	defer resp.Body.Close()
	var body telemetry.ReqSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("debug decode: %v", err)
	}
	if body.Trace != "00000000deadbeef" || len(body.Spans) < 3 {
		t.Fatalf("debug snapshot wrong: %+v", body)
	}
}

// TestTracedOutcomes: non-queued submit outcomes (cache hit, coalesce)
// finish their traces at submit return with the right admit outcome.
func TestTracedOutcomes(t *testing.T) {
	tr := telemetry.New(telemetry.Config{Component: "pasmd-test", Sample: 1, Seed: 7})
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 8, run: g.run, Telemetry: tr})
	defer s.Shutdown(context.Background())

	first, err := s.Submit(specN(2001), time.Time{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := s.Submit(specN(2001), time.Time{}); err != nil { // coalesces
		t.Fatalf("coalesced submit: %v", err)
	}
	g.release()
	waitState(t, s, first.ID, StateDone)
	if _, err := s.Submit(specN(2001), time.Time{}); err != nil { // cache hit
		t.Fatalf("cached submit: %v", err)
	}

	recent, _ := tr.Requests()
	outcomes := map[string]bool{}
	for _, r := range recent {
		for _, sp := range r.Spans {
			if sp.Name != "admit" {
				continue
			}
			for _, a := range sp.Attrs {
				if a.Key == "outcome" {
					outcomes[a.Value.(string)] = true
				}
			}
		}
	}
	for _, want := range []string{"queued", "coalesced", "cache_hit"} {
		if !outcomes[want] {
			t.Fatalf("missing admit outcome %q in %v", want, outcomes)
		}
	}
	started, finished, _ := tr.Stats()
	if started != 3 || finished != 3 {
		t.Fatalf("started=%d finished=%d, want 3/3", started, finished)
	}
}

// TestUntracedSubmitUnaffected: with no tracer configured, submits and
// metrics behave exactly as before (the detached path).
func TestUntracedSubmitUnaffected(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 8, run: g.run})
	defer s.Shutdown(context.Background())
	st, err := s.Submit(specN(3001), time.Time{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	g.release()
	waitState(t, s, st.ID, StateDone)
	m := s.Metrics()
	if _, ok := m["telemetry/traces_started"]; ok {
		t.Fatalf("detached service should not export telemetry counters")
	}
	if !strings.Contains(st.ID, "j1-") {
		t.Fatalf("unexpected job id %s", st.ID)
	}
}
