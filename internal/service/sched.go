package service

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/experiments"
	"repro/internal/model"
)

// SchedulerMode selects how queued jobs are ordered.
type SchedulerMode string

// Scheduler modes. FCFS is the pre-SLO behavior (strict arrival
// order); SJF is class-priority + shortest-job-first: jobs are ordered
// by SLO class urgency first (smaller SLO target = more urgent,
// classless best-effort last), then by predicted cost within a class,
// so a table1 probe never queues behind an n=64 sweep that arrived
// first. Aged long jobs are promoted after StarveLimit bypasses, with
// the symmetric bound that no promotion may push any more-urgent
// waiter past StarveLimit bypasses of its own — the property test's
// "no short request waits behind >K long requests" holds by
// construction.
const (
	SchedFCFS SchedulerMode = "fcfs"
	SchedSJF  SchedulerMode = "sjf"
)

// ParseSchedulerMode parses a -sched flag value.
func ParseSchedulerMode(s string) (SchedulerMode, error) {
	switch SchedulerMode(strings.ToLower(s)) {
	case "", SchedFCFS:
		return SchedFCFS, nil
	case SchedSJF, "priority", "slo":
		return SchedSJF, nil
	}
	return "", fmt.Errorf("service: unknown scheduler %q (want fcfs or sjf)", s)
}

// DefaultStarveLimit is how many times a lower-priority job may be
// bypassed before it is promoted ahead of the urgent classes (and,
// symmetrically, how many promotions any urgent job can suffer).
const DefaultStarveLimit = 8

// bestEffortPrio orders classless/SLO-less jobs after every class with
// a target.
const bestEffortPrio = int64(math.MaxInt64)

// classPriority maps an SLO target to a priority rank: tighter target,
// smaller rank, scheduled sooner. No target = best effort.
func classPriority(sloMS int64) int64 {
	if sloMS <= 0 {
		return bestEffortPrio
	}
	return sloMS
}

// ParseClasses parses the -classes flag: comma-separated
// "name=slo_ms" declarations giving each SLO class its default
// latency target ("batch=0" declares a best-effort class).
func ParseClasses(s string) (map[string]int64, error) {
	out := map[string]int64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("service: class %q is not name=slo_ms", part)
		}
		name := strings.TrimSpace(part[:eq])
		var slo int64
		if _, err := fmt.Sscanf(strings.TrimSpace(part[eq+1:]), "%d", &slo); err != nil {
			return nil, fmt.Errorf("service: class %q: bad slo: %w", part, err)
		}
		if slo < 0 {
			return nil, fmt.Errorf("service: class %q: negative slo", part)
		}
		out[name] = slo
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("service: no classes in %q", s)
	}
	return out, nil
}

// expCostCycles is the static predicted cost of each named sweep, in
// simulated cycles — rough magnitudes good enough to rank sweeps
// against cells and each other (the SJF key needs ordering, not
// accuracy). Custom cells use the closed-form model.CellCycles.
var expCostCycles = map[string]float64{
	"table1": 3e5,
	"fig6":   2e6, "fig7": 2e6, "fig8": 3e6, "fig9": 3e6,
	"fig10": 3e6, "fig11": 4e6, "fig12": 4e6,
	"ext-crossover": 8e6, "ext-model": 4e6, "ext-fault": 4e6,
	"ext-workloads": 1.2e7, "ext-mixed": 8e6, "ext-partition": 1.2e7,
}

// predictCost estimates a normalized spec's cost in simulated cycles:
// the Section 4 closed-form algebra for custom cells, static sweep
// weights for named experiments. Pure function of the spec — the
// scheduler it drives is deterministic under trace replay.
func predictCost(spec experiments.Spec) float64 {
	m := model.PrototypeMachine()
	var c float64
	for _, exp := range spec.Exps {
		w, ok := expCostCycles[exp]
		if !ok {
			w = 2e6
		}
		if spec.Full {
			w *= 6 // the full problem-size set is ~6x the quick set
		}
		c += w
	}
	for _, cell := range spec.Cells {
		c += m.CellCycles(cell.Mode, cell.N, cell.P, cell.Muls)
	}
	return c
}

// schedQueue replaces the buffered channel between Submit and the
// workers/dispatcher: a close-then-drain queue whose Pop order is the
// scheduling policy. Like the channel it replaces, Pop keeps
// returning entries after Close until the queue is empty, so graceful
// drain semantics are unchanged; unlike the channel, SJF mode may
// reorder what drains first.
type schedQueue struct {
	mode        SchedulerMode
	starveLimit int

	mu      sync.Mutex
	cond    *sync.Cond
	entries []*job // arrival order
	closed  bool
	// arrivals nudges the partition dispatcher (size 1; the dispatcher
	// re-drains the whole queue per wake, so collapsed signals are
	// harmless).
	arrivals chan struct{}
	promoted int64 // aging promotions (metric)
}

func newSchedQueue(mode SchedulerMode, starveLimit int) *schedQueue {
	if mode == "" {
		mode = SchedFCFS
	}
	if starveLimit <= 0 {
		starveLimit = DefaultStarveLimit
	}
	q := &schedQueue{mode: mode, starveLimit: starveLimit, arrivals: make(chan struct{}, 1)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends an arrival. The caller (Submit, under Service.mu) has
// verified capacity and that the queue is not closed.
func (q *schedQueue) Push(j *job) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		panic("service: push on closed scheduler queue")
	}
	q.entries = append(q.entries, j)
	q.mu.Unlock()
	q.cond.Signal()
	select {
	case q.arrivals <- struct{}{}:
	default:
	}
}

// Len returns the queued-job count.
func (q *schedQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// Promoted returns how many aged jobs were promoted past urgent ones.
func (q *schedQueue) Promoted() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.promoted
}

// Close stops future pushes; queued entries still drain.
func (q *schedQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
	select {
	case q.arrivals <- struct{}{}:
	default:
	}
}

// Pop blocks for the next job under the scheduling policy. ok=false
// means closed and fully drained (the `for j := range queue` exit).
func (q *schedQueue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.entries) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.entries) == 0 {
		return nil, false
	}
	return q.takeLocked(q.pickLocked()), true
}

// TryPop is Pop without blocking; ok=false means currently empty.
func (q *schedQueue) TryPop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.entries) == 0 {
		return nil, false
	}
	return q.takeLocked(q.pickLocked()), true
}

// Drained reports closed-and-empty (the partition dispatcher's exit
// condition).
func (q *schedQueue) Drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed && len(q.entries) == 0
}

func (q *schedQueue) takeLocked(idx int) *job {
	j := q.entries[idx]
	q.entries = append(q.entries[:idx], q.entries[idx+1:]...)
	return j
}

// pickLocked chooses the next entry index. FCFS: strict arrival
// order. SJF: the aging rule first — the oldest entry bypassed at
// least starveLimit times is promoted, unless promoting it would push
// a more-urgent waiter past starveLimit bypasses of its own (the veto
// that bounds every urgent job's total bypasses) — then the best
// (class priority, predicted cost, arrival) triple. Bookkeeping: a
// normal pick charges one bypass to every strictly-less-urgent
// waiter; a promotion charges one to every strictly-more-urgent
// waiter.
func (q *schedQueue) pickLocked() int {
	if q.mode != SchedSJF || len(q.entries) == 1 {
		return 0
	}
	aged := -1
	for i, e := range q.entries {
		if e.skipped >= q.starveLimit && (aged < 0 || e.seq < q.entries[aged].seq) {
			aged = i
		}
	}
	if aged >= 0 {
		ok := true
		for _, e := range q.entries {
			if e.classPrio < q.entries[aged].classPrio && e.bypassed >= q.starveLimit {
				ok = false
				break
			}
		}
		if ok {
			for _, e := range q.entries {
				if e.classPrio < q.entries[aged].classPrio {
					e.bypassed++
				}
			}
			q.promoted++
			return aged
		}
	}
	best := 0
	for i := 1; i < len(q.entries); i++ {
		if schedLess(q.entries[i], q.entries[best]) {
			best = i
		}
	}
	for i, e := range q.entries {
		if i != best && e.classPrio > q.entries[best].classPrio {
			e.skipped++
		}
	}
	return best
}

// schedLess is the SJF order: class urgency, then predicted cost,
// then arrival.
func schedLess(a, b *job) bool {
	if a.classPrio != b.classPrio {
		return a.classPrio < b.classPrio
	}
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.seq < b.seq
}

// sortPending orders the partition dispatcher's backlog with the same
// policy, so a freed region is offered to the most urgent, cheapest
// fit first (the per-pop aging accounting applies to pool mode; the
// dispatcher re-sorts its whole backlog each round instead).
func (q *schedQueue) sortPending(pending []*job) {
	if q.mode != SchedSJF {
		return
	}
	sort.SliceStable(pending, func(i, k int) bool { return schedLess(pending[i], pending[k]) })
}
