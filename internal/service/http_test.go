package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/experiments"
)

func postJob(t *testing.T, url string, req SubmitRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestHTTPByteIdentity runs a real (tiny) spec through the HTTP API
// and checks the served document is byte-identical to the in-process
// deterministic report — on the cold miss and again on the cache hit.
// This is the service-path equivalence the remote CLI mode relies on.
func TestHTTPByteIdentity(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.Parallelism = 2
	s := New(Config{Workers: 1, QueueDepth: 4, Options: opts})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	spec := experiments.Spec{Exps: []string{"table1"}, Seed: 1988}
	local, err := experiments.RunSpec(spec, experiments.RunConfig{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	for round, wantCached := range []bool{false, true} {
		resp, body := postJob(t, srv.URL, SubmitRequest{Spec: spec, WaitMS: 30000})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: submit status %d: %s", round, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if st.State != StateDone || st.Cached != wantCached {
			t.Fatalf("round %d: state=%s cached=%v, want done cached=%v", round, st.State, st.Cached, wantCached)
		}
		rresp, result := getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/result")
		if rresp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: result status %d", round, rresp.StatusCode)
		}
		if rresp.Header.Get("X-Pasm-Cached") != strconv.FormatBool(wantCached) {
			t.Errorf("round %d: X-Pasm-Cached = %q", round, rresp.Header.Get("X-Pasm-Cached"))
		}
		if !bytes.Equal(result, want) {
			t.Errorf("round %d: served bytes differ from local deterministic report\nserved: %s\nlocal:  %s",
				round, result, want)
		}
	}
}

// TestHTTPBackpressure exercises the 503 path end to end: full queue
// and draining both yield 503 with a Retry-After header.
func TestHTTPBackpressure(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 1, run: g.run})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postJob(t, srv.URL, SubmitRequest{Spec: specN(1)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("A: status %d: %s", resp.StatusCode, body)
	}
	var a JobStatus
	json.Unmarshal(body, &a)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := s.Job(a.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("A never started")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, body = postJob(t, srv.URL, SubmitRequest{Spec: specN(2)}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("B: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJob(t, srv.URL, SubmitRequest{Spec: specN(3)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("C: status %d, want 503: %s", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("C: Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}

	// Result of an unfinished job: 409 + Retry-After.
	resp, _ = getBody(t, srv.URL+"/v1/jobs/"+a.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unfinished result: status %d, want 409", resp.StatusCode)
	}

	// Draining: 503 on submit, but accepted work completes.
	go s.Shutdown(context.Background())
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	resp, _ = postJob(t, srv.URL, SubmitRequest{Spec: specN(4)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drain submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain submit: missing Retry-After")
	}
	g.release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)
	resp, _ = getBody(t, srv.URL+"/v1/jobs/"+a.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("drained job result: status %d, want 200", resp.StatusCode)
	}
}

// TestHTTPErrors covers the non-2xx surfaces: bad body, bad spec,
// unknown ids, wait endpoint.
func TestHTTPErrors(t *testing.T) {
	g := newGatedRunner()
	g.release()
	s := New(Config{Workers: 1, QueueDepth: 4, run: g.run})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJob(t, srv.URL, SubmitRequest{Spec: experiments.Spec{Exps: []string{"fig99"}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: status %d, want 400", resp.StatusCode)
	}
	resp, _ = getBody(t, srv.URL+"/v1/jobs/j999-deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp, _ = getBody(t, srv.URL+"/v1/jobs/j999-deadbeef/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result: status %d, want 404", resp.StatusCode)
	}

	// Wait endpoint returns the terminal state.
	_, body := postJob(t, srv.URL, SubmitRequest{Spec: specN(5)})
	var st JobStatus
	json.Unmarshal(body, &st)
	resp, body = getBody(t, srv.URL+"/v1/jobs/"+st.ID+"/wait?timeout_ms=10000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: status %d", resp.StatusCode)
	}
	json.Unmarshal(body, &st)
	if st.State != StateDone {
		t.Errorf("wait returned state %s", st.State)
	}

	// Health and metrics are always JSON.
	resp, body = getBody(t, srv.URL+"/healthz")
	var health map[string]any
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &health) != nil {
		t.Errorf("healthz: %d %s", resp.StatusCode, body)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}
	resp, body = getBody(t, srv.URL+"/metrics")
	var metrics map[string]float64
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &metrics) != nil {
		t.Errorf("metrics: %d %s", resp.StatusCode, body)
	}
	if metrics["service/submitted"] < 1 {
		t.Errorf("metrics missing submitted counter: %v", metrics["service/submitted"])
	}
}

// postFill issues a raw peer-fill request with the given headers.
func postFill(t *testing.T, url string, spec experiments.Spec, body []byte, hdrs map[string]string) *http.Response {
	t.Helper()
	rawSpec, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+FillPath, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(FillSpecHeader, base64.StdEncoding.EncodeToString(rawSpec))
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestFillEndpointSecurity: the fill endpoint shares the public
// listener, so it must be locked down — disabled without a configured
// secret, authenticated per request, pinned to this binary's
// CodeVersion, and body-capped. Only a correctly authenticated,
// version-matched, valid canonical payload lands.
func TestFillEndpointSecurity(t *testing.T) {
	runner := func(context.Context, experiments.Spec) ([]byte, error) { return []byte("computed\n"), nil }

	// No secret configured: the endpoint is disabled outright.
	open := New(Config{Workers: 1, QueueDepth: 4, run: runner})
	defer open.Shutdown(context.Background())
	openSrv := httptest.NewServer(open.Handler())
	defer openSrv.Close()
	if resp := postFill(t, openSrv.URL, specN(7), fillBody(t, 7), map[string]string{
		FillCodeHeader: experiments.CodeVersion,
	}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("fill without configured secret: status %d, want 403", resp.StatusCode)
	}

	s := New(Config{Workers: 1, QueueDepth: 4, FillSecret: "s3cret", MaxFillBytes: 4096, run: runner})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	auth := map[string]string{FillSecretHeader: "s3cret", FillCodeHeader: experiments.CodeVersion}
	cases := []struct {
		name string
		body []byte
		hdrs map[string]string
		want int
	}{
		{"missing secret", fillBody(t, 7), map[string]string{FillCodeHeader: experiments.CodeVersion}, http.StatusForbidden},
		{"wrong secret", fillBody(t, 7), map[string]string{FillSecretHeader: "nope", FillCodeHeader: experiments.CodeVersion}, http.StatusForbidden},
		{"missing code version", fillBody(t, 7), map[string]string{FillSecretHeader: "s3cret"}, http.StatusConflict},
		{"wrong code version", fillBody(t, 7), map[string]string{FillSecretHeader: "s3cret", FillCodeHeader: "pasm-sim/0"}, http.StatusConflict},
		{"oversized body", bytes.Repeat([]byte("x"), 8192), auth, http.StatusRequestEntityTooLarge},
		{"invalid payload", []byte(`{"junk":1}` + "\n"), auth, http.StatusBadRequest},
		{"valid fill", fillBody(t, 7), auth, http.StatusOK},
		{"duplicate fill", fillBody(t, 7), auth, http.StatusAlreadyReported},
	}
	for _, tc := range cases {
		if resp := postFill(t, srv.URL, specN(7), tc.body, tc.hdrs); resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Everything that bounced is visible in metrics; exactly one fill
	// landed.
	m := s.Metrics()
	if m["service/peer_fills"] != 1 {
		t.Errorf("peer_fills = %v, want 1", m["service/peer_fills"])
	}
	if m["service/peer_fill_rejects"] < 4 {
		t.Errorf("peer_fill_rejects = %v, want >= 4", m["service/peer_fill_rejects"])
	}
}
