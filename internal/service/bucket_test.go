package service

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// The token bucket is pure state + caller-supplied clock, so its
// contract is checked as properties over randomized schedules driven
// by a fake clock (no sleeps, no wall time):
//
//  1. Rate bound: over any admit schedule, a client is admitted at
//     most burst + rate·elapsed times — the bucket never over-admits.
//  2. Determinism: the same schedule against a fresh bucket gives the
//     same admit/refuse sequence.
//  3. Starvation-free refill: after a refusal, backing off exactly the
//     returned Retry-After always yields a token, no matter what other
//     clients do in between.

// tickClock is a manually advanced time source.
type tickClock struct{ t time.Time }

func newTickClock() *tickClock {
	return &tickClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *tickClock) advance(d time.Duration) time.Time {
	c.t = c.t.Add(d)
	return c.t
}

// schedule derives a randomized admit schedule from a seed: a list of
// (gap, client) pairs replayed against the bucket.
type step struct {
	gap    time.Duration
	client string
}

func scheduleFrom(seed int64, n int) []step {
	rng := rand.New(rand.NewSource(seed))
	clients := []string{"a", "b", "c"}
	steps := make([]step, n)
	for i := range steps {
		// Gaps from 0 (burst abuse) to ~300ms, biased short.
		gap := time.Duration(rng.Intn(4)) * time.Duration(rng.Intn(100)) * time.Millisecond
		steps[i] = step{gap: gap, client: clients[rng.Intn(len(clients))]}
	}
	return steps
}

func TestBucketNeverExceedsRatePlusBurst(t *testing.T) {
	prop := func(seed int64) bool {
		const rate, burst = 20.0, 5.0
		b := newBuckets(rate, burst, 0)
		clk := newTickClock()
		start := clk.t
		admitted := map[string]int{}
		for _, s := range scheduleFrom(seed, 400) {
			now := clk.advance(s.gap)
			if ok, _ := b.admit(s.client, now); ok {
				admitted[s.client]++
			}
			elapsed := now.Sub(start).Seconds()
			// Small epsilon for float refill accumulation.
			bound := burst + rate*elapsed + 1e-6
			if float64(admitted[s.client]) > bound {
				t.Logf("seed %d: client %s admitted %d > bound %.3f after %.3fs",
					seed, s.client, admitted[s.client], bound, elapsed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		run := func() []bool {
			b := newBuckets(7, 3, 0)
			clk := newTickClock()
			var out []bool
			for _, s := range scheduleFrom(seed, 200) {
				ok, _ := b.admit(s.client, clk.advance(s.gap))
				out = append(out, ok)
			}
			return out
		}
		a, bb := run(), run()
		for i := range a {
			if a[i] != bb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRefillStarvationFree(t *testing.T) {
	prop := func(seed int64) bool {
		b := newBuckets(50, 2, 0)
		clk := newTickClock()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			client := string(rune('a' + rng.Intn(3)))
			ok, wait := b.admit(client, clk.advance(time.Duration(rng.Intn(10))*time.Millisecond))
			if ok {
				continue
			}
			// Noise from other clients must not affect this client's
			// refill (buckets are per-client state).
			for j := 0; j < rng.Intn(4); j++ {
				b.admit("noise", clk.t)
			}
			if ok2, _ := b.admit(client, clk.advance(wait)); !ok2 {
				t.Logf("seed %d: client %s refused after honoring Retry-After %s", seed, client, wait)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketNewClientGetsBurst(t *testing.T) {
	b := newBuckets(1, 4, 0)
	clk := newTickClock()
	for i := 0; i < 4; i++ {
		if ok, _ := b.admit("fresh", clk.t); !ok {
			t.Fatalf("admit %d of burst 4 refused", i)
		}
	}
	if ok, wait := b.admit("fresh", clk.t); ok || wait <= 0 {
		t.Fatalf("burst exhausted: want refusal with positive wait, got ok=%v wait=%s", ok, wait)
	}
}

func TestBucketEviction(t *testing.T) {
	b := newBuckets(1, 1, 2)
	clk := newTickClock()
	b.admit("one", clk.t)
	b.admit("two", clk.t)
	b.admit("three", clk.t) // evicts "one"
	if n := b.clients(); n != 2 {
		t.Fatalf("clients = %d, want 2 after eviction", n)
	}
	// "one" returns as a fresh client: full burst again (more
	// permissive, never a wrongful reject).
	if ok, _ := b.admit("one", clk.t); !ok {
		t.Fatal("evicted client should restart with full burst")
	}
}

func TestBucketDisabled(t *testing.T) {
	if b := newBuckets(0, 10, 0); b != nil {
		t.Fatal("rate 0 should disable admission control (nil buckets)")
	}
}

func TestNewBucketsGuards(t *testing.T) {
	if newBuckets(0, 8, 100) != nil {
		t.Error("rate 0 should disable admission (nil table)")
	}
	b := newBuckets(2, 0, 0)
	if b == nil || b.burst != 1 || b.maxClients != 4096 {
		t.Errorf("degenerate burst/maxClients should clamp, got %+v", b)
	}
}

func TestPushOnClosedQueuePanics(t *testing.T) {
	q := newSchedQueue(SchedFCFS, DefaultStarveLimit)
	q.Close()
	defer func() {
		if recover() == nil {
			t.Error("push on a closed queue should panic")
		}
	}()
	q.Push(mkJob(0, 0, 1))
}
