package service

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/experiments"
)

// Scheduler properties, checked over randomized workloads
// (testing/quick seeds a PRNG that builds the job mix):
//
//  1. SJF ordering: with everything queued, pops come out sorted by
//     (class urgency, predicted cost, arrival).
//  2. Bounded bypass: no short-class (urgent) request is overtaken by
//     more than starveLimit long-class requests that arrived after it
//     — the anti-starvation promotion is itself bounded.
//  3. No starvation: every job pops eventually (trivially true for a
//     drain loop, asserted for completeness).
//  4. FCFS mode is strict arrival order regardless of class/cost.

func mkJob(seq int, sloMS int64, cost float64) *job {
	return &job{seq: seq, slo: sloMS, cost: cost, classPrio: classPriority(sloMS)}
}

// randomJobs builds a mixed workload: ~1/3 urgent (slo 50ms) cheap
// jobs, the rest best-effort with random, mostly larger costs.
func randomJobs(rng *rand.Rand, n int) []*job {
	jobs := make([]*job, n)
	for i := range jobs {
		if rng.Intn(3) == 0 {
			jobs[i] = mkJob(i, 50, 1e5+float64(rng.Intn(100)))
		} else {
			jobs[i] = mkJob(i, 0, 1e6+float64(rng.Intn(1_000_000)))
		}
	}
	return jobs
}

func TestSchedSJFOrdering(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newSchedQueue(SchedSJF, 1_000_000) // starvation aging off
		jobs := randomJobs(rng, 2+rng.Intn(40))
		for _, j := range jobs {
			q.Push(j)
		}
		var prev *job
		for range jobs {
			j, ok := q.TryPop()
			if !ok {
				return false
			}
			if prev != nil && schedLess(j, prev) {
				t.Logf("seed %d: job seq=%d popped after seq=%d out of order", seed, j.seq, prev.seq)
				return false
			}
			prev = j
		}
		_, ok := q.TryPop()
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedFCFSIsArrivalOrder(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newSchedQueue(SchedFCFS, 0)
		jobs := randomJobs(rng, 1+rng.Intn(30))
		for _, j := range jobs {
			q.Push(j)
		}
		for i := range jobs {
			j, ok := q.TryPop()
			if !ok || j.seq != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedBoundedBypass is the satellite property: under SJF with
// aging, no urgent (short-class) request waits behind more than
// starveLimit long-class requests — counted as best-effort jobs that
// pop while the urgent one is queued. Random interleaving of pushes
// and pops exercises promotions and their veto.
func TestSchedBoundedBypass(t *testing.T) {
	const limit = 4
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newSchedQueue(SchedSJF, limit)
		jobs := randomJobs(rng, 30+rng.Intn(60))
		// To *force* starvation pressure, make the best-effort jobs old:
		// push a long prefix of them first, then interleave.
		queued := map[int]bool{}   // urgent jobs currently waiting
		overtaken := map[int]int{} // urgent seq -> best-effort pops while waiting
		popped := 0
		next := 0
		push := func() {
			j := jobs[next]
			q.Push(j)
			if j.classPrio != bestEffortPrio {
				queued[j.seq] = true
			}
			next++
		}
		pop := func() bool {
			j, ok := q.TryPop()
			if !ok {
				return true
			}
			popped++
			if j.classPrio == bestEffortPrio {
				for seq := range queued {
					overtaken[seq]++
					if overtaken[seq] > limit {
						t.Logf("seed %d: urgent seq=%d overtaken %d times (> %d)", seed, seq, overtaken[seq], limit)
						return false
					}
				}
			} else {
				delete(queued, j.seq)
			}
			return true
		}
		for next < len(jobs) || popped < len(jobs) {
			if next < len(jobs) && (popped == len(jobs) || rng.Intn(2) == 0) {
				push()
			} else if !pop() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedAgingPromotes checks the flip side: a best-effort job under
// constant urgent pressure is promoted after starveLimit bypasses
// rather than waiting forever.
func TestSchedAgingPromotes(t *testing.T) {
	const limit = 3
	q := newSchedQueue(SchedSJF, limit)
	batch := mkJob(0, 0, 1e7)
	q.Push(batch)
	seq := 1
	for i := 0; i < 2*limit; i++ {
		q.Push(mkJob(seq, 10, 1e4))
		seq++
		j, ok := q.TryPop()
		if !ok {
			t.Fatal("queue unexpectedly empty")
		}
		if j == batch {
			if i < limit {
				t.Fatalf("batch job promoted after only %d bypasses (limit %d)", i, limit)
			}
			if q.Promoted() != 1 {
				t.Fatalf("Promoted() = %d, want 1", q.Promoted())
			}
			return
		}
	}
	t.Fatalf("batch job never promoted after %d bypasses (limit %d)", 2*limit, limit)
}

// TestSchedPromotionVeto: the promotion cannot push an urgent waiter
// past starveLimit bypasses of its own.
func TestSchedPromotionVeto(t *testing.T) {
	const limit = 2
	q := newSchedQueue(SchedSJF, limit)
	// An aged batch job...
	batch := mkJob(0, 0, 1e7)
	batch.skipped = limit
	// ...and an urgent waiter that has already absorbed limit
	// promotions cannot be bypassed again.
	urgent := mkJob(1, 5, 1e4)
	urgent.bypassed = limit
	q.Push(batch)
	q.Push(urgent)
	j, ok := q.TryPop()
	if !ok || j != urgent {
		t.Fatalf("veto failed: urgent job with %d bypasses was overtaken again", limit)
	}
}

func TestParseSchedulerMode(t *testing.T) {
	for in, want := range map[string]SchedulerMode{
		"": SchedFCFS, "fcfs": SchedFCFS,
		"sjf": SchedSJF, "priority": SchedSJF, "slo": SchedSJF, "SJF": SchedSJF,
	} {
		got, err := ParseSchedulerMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSchedulerMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSchedulerMode("lifo"); err == nil {
		t.Fatal("ParseSchedulerMode(lifo) should fail")
	}
}

func TestParseClasses(t *testing.T) {
	m, err := ParseClasses("interactive=50, batch=0")
	if err != nil {
		t.Fatal(err)
	}
	if m["interactive"] != 50 || m["batch"] != 0 {
		t.Fatalf("ParseClasses = %v", m)
	}
	for _, bad := range []string{"", "x", "=5", "a=-1", "a=b"} {
		if _, err := ParseClasses(bad); err == nil {
			t.Fatalf("ParseClasses(%q) should fail", bad)
		}
	}
}

func TestPredictCostRanks(t *testing.T) {
	cell := func(n, p int, mode string) experiments.Spec {
		return experiments.Spec{Cells: []experiments.CellSpec{{N: n, P: p, Muls: 1, Mode: mode}}}
	}
	small, err := cell(8, 4, "simd").Normalize()
	if err != nil {
		t.Fatal(err)
	}
	big, err := cell(64, 16, "smimd").Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if predictCost(small) >= predictCost(big) {
		t.Fatalf("predictCost: small cell %.0f >= big cell %.0f", predictCost(small), predictCost(big))
	}
	probe, err := (experiments.Spec{Exps: []string{"table1"}}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := (experiments.Spec{Exps: []string{"ext-workloads"}}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if predictCost(probe) >= predictCost(sweep) {
		t.Fatal("predictCost: table1 should be cheaper than ext-workloads")
	}
	full := probe
	full.Full = true
	if predictCost(full) <= predictCost(probe) {
		t.Fatal("predictCost: full sweep should cost more than quick")
	}
}

func TestSortPending(t *testing.T) {
	jobs := []*job{
		mkJob(0, 0, 900), // best-effort, expensive
		mkJob(1, 50, 40), // urgent, mid
		mkJob(2, 50, 10), // urgent, cheapest
		mkJob(3, 0, 5),   // best-effort, cheap
	}
	sjf := newSchedQueue(SchedSJF, DefaultStarveLimit)
	got := append([]*job(nil), jobs...)
	sjf.sortPending(got)
	want := []int{2, 1, 3, 0}
	for i, w := range want {
		if got[i].seq != w {
			t.Fatalf("sjf sortPending[%d] = seq %d, want %d", i, got[i].seq, w)
		}
	}
	// FCFS mode leaves the backlog untouched.
	fcfs := newSchedQueue(SchedFCFS, DefaultStarveLimit)
	got = append([]*job(nil), jobs...)
	fcfs.sortPending(got)
	for i := range jobs {
		if got[i] != jobs[i] {
			t.Fatal("fcfs sortPending reordered the backlog")
		}
	}
}

func TestResolveSLO(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, run: g.run,
		Classes: map[string]int64{"interactive": 50}})
	defer func() { g.release(); s.Shutdown(context.Background()) }()

	cases := []struct {
		opts SubmitOpts
		want int64
		ok   bool
	}{
		{SubmitOpts{Class: "interactive"}, 50, true},            // class default
		{SubmitOpts{Class: "interactive", SLOMs: 20}, 20, true}, // explicit wins
		{SubmitOpts{Class: "unknown"}, 0, true},                 // undeclared: best effort
		{SubmitOpts{}, 0, true},
		{SubmitOpts{SLOMs: -1}, 0, false},
		{SubmitOpts{Class: "bad class"}, 0, false}, // space is not metric-key safe
		{SubmitOpts{Class: strings.Repeat("x", 65)}, 0, false},
	}
	for i, c := range cases {
		got, err := s.resolveSLO(c.opts)
		if (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("case %d: slo = %d, want %d", i, got, c.want)
		}
	}
}

func TestRateLimitedErrorMessage(t *testing.T) {
	e := &RateLimitedError{Client: "greedy", RetryAfter: 250 * time.Millisecond}
	msg := e.Error()
	for _, frag := range []string{"greedy", "250ms"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q missing %q", msg, frag)
		}
	}
}
