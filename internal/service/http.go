package service

import (
	"context"
	"crypto/subtle"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// HTTP API (cmd/pasmd, internal/client):
//
//	POST /v1/jobs               submit a spec -> JobStatus (200 done, 202 accepted)
//	GET  /v1/jobs               list tracked jobs
//	GET  /v1/jobs/{id}          poll one job
//	GET  /v1/jobs/{id}/wait     long-poll until terminal (?timeout_ms=)
//	GET  /v1/jobs/{id}/result   fetch the result document (bytes identical
//	                            to `pasmbench -json` with host timings off)
//	GET  /metrics               service + cache counters as JSON
//	GET  /healthz               liveness + draining flag
//	GET  /debug/requests[...]   traced request timelines (Config.Telemetry;
//	                            see internal/telemetry)
//
// Backpressure surfaces as 503 with a Retry-After header (queue full,
// unmeetable deadline, draining). Unknown jobs are 404; results of
// unfinished jobs are 409; failed jobs are 500; expired jobs are 410.
//
// Deadlines propagate from either the submit body (deadline_ms) or the
// X-Pasm-Deadline-Ms header; clients mark retries with X-Pasm-Attempt
// so /metrics exposes them.

// DeadlineHeader carries a submit's relative deadline in milliseconds
// (equivalent to SubmitRequest.DeadlineMS; the body wins when both are
// set), so callers that cannot shape the body — proxies, curl scripts —
// still get end-to-end deadline propagation.
const DeadlineHeader = "X-Pasm-Deadline-Ms"

// ClassHeader names a submit's SLO class (equivalent to
// SubmitRequest.Class; the header wins when both are set, so a proxy
// can reclassify traffic it forwards). Classes order the SJF scheduler
// and key the per-class latency quantiles in /metrics.
const ClassHeader = "X-Pasm-Class"

// SLOHeader carries the class's latency target in milliseconds
// (SubmitRequest.SLOMs; header wins). 0 with a server-declared class
// inherits the declared target.
const SLOHeader = "X-Pasm-Slo-Ms"

// ClientHeader identifies the submitting client (SubmitRequest.Client;
// header wins) for per-client token-bucket admission and the fairness
// index. Anonymous submits are never rate-limited.
const ClientHeader = "X-Pasm-Client"

// AttemptHeader carries the client's 1-based attempt number for this
// request. Values above 1 mark retries; the service counts them
// ("service/retried_submits"), making client retry behavior observable
// in /metrics.
const AttemptHeader = "X-Pasm-Attempt"

// FillSpecHeader carries a peer fill's spec as base64-encoded JSON.
// The result bytes travel as the raw request body — never re-marshaled,
// so a fill can never perturb the byte-identity guarantee — which is
// why the spec rides a header instead of a JSON envelope.
const FillSpecHeader = "X-Pasm-Fill-Spec"

// FillSecretHeader authenticates a peer fill: it must match the
// server's Config.FillSecret. The fill endpoint shares the public
// listener, so without the secret it stays disabled entirely.
const FillSecretHeader = "X-Pasm-Fill-Secret"

// FillCodeHeader names the CodeVersion that computed a fill's bytes.
// The receiver rejects a mismatch against its own compiled-in version,
// so a rolling upgrade can never launder old-semantics bytes into a
// new-version cache key.
const FillCodeHeader = "X-Pasm-Fill-Code"

// CodeHeader is set on result responses: the CodeVersion of the code
// that produced the document. Gateways forward it with peer fills.
const CodeHeader = "X-Pasm-Code"

// FillPath is the internal peer-fill endpoint (cluster gateways only;
// it is not part of the public /v1 job API).
const FillPath = "/internal/v1/fill"

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	Spec experiments.Spec `json:"spec"`
	// DeadlineMS, when > 0, is a relative deadline covering the job's
	// whole lifetime: the job is rejected at admission if the queue
	// estimate cannot meet it, expired in the queue if it passes
	// before a worker starts, and canceled mid-run (context deadline
	// through RunSpecContext) if it passes during execution.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// WaitMS, when > 0, long-polls the submitted job for up to this
	// many milliseconds before responding (one round trip for small
	// specs).
	WaitMS int64 `json:"wait_ms,omitempty"`
	// Class is the SLO class (see ClassHeader), SLOMs its target in ms
	// (see SLOHeader), Client the submitter identity (see
	// ClientHeader). Headers win over body fields.
	Class  string `json:"class,omitempty"`
	SLOMs  int64  `json:"slo_ms,omitempty"`
	Client string `json:"client,omitempty"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
	State State  `json:"state,omitempty"`
}

// Handler returns the service's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", s.handleWait)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST "+FillPath, s.handleFill)
	if s.tracer != nil {
		s.tracer.Register(mux)
	}
	return s.faultMiddleware(mux)
}

// faultMiddleware is the HTTP fault point: injected delays stall the
// response, injected errors become 500s (a retryable status for the
// client's policy), and injected panics abort the connection mid-reply
// via http.ErrAbortHandler — the client sees a transport error, the
// server neither logs a stack nor dies. /metrics and /healthz are
// exempt so chaos runs stay observable and health-checkable.
func (s *Service) faultMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.countRetry(r)
		if s.faults == nil || r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		act := s.faults.Check(faults.HTTP)
		if act.Delay > 0 {
			select {
			case <-time.After(act.Delay):
			case <-r.Context().Done():
			}
		}
		if act.Panic {
			panic(http.ErrAbortHandler)
		}
		if act.Err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: act.Err.Error()})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// countRetry folds the client-reported attempt number into the
// metrics: any request marked attempt >= 2 is a retry.
func (s *Service) countRetry(r *http.Request) {
	if v := r.Header.Get(AttemptHeader); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			s.mu.Lock()
			s.reg.Add("retried_submits", 1)
			s.mu.Unlock()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// retryAfterSeconds renders a Retry-After header value, rounded up so
// a client honoring it never retries early.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.DeadlineMS == 0 {
		if v := r.Header.Get(DeadlineHeader); v != "" {
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms <= 0 {
				writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad " + DeadlineHeader + " header"})
				return
			}
			req.DeadlineMS = ms
		}
	}
	if v := r.Header.Get(ClassHeader); v != "" {
		req.Class = v
	}
	if v := r.Header.Get(SLOHeader); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad " + SLOHeader + " header"})
			return
		}
		req.SLOMs = ms
	}
	if v := r.Header.Get(ClientHeader); v != "" {
		req.Client = v
	}
	var deadline time.Time
	if req.DeadlineMS > 0 {
		deadline = s.now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	st, err := s.SubmitWith(req.Spec, SubmitOpts{
		Deadline: deadline,
		Class:    req.Class,
		SLOMs:    req.SLOMs,
		Client:   req.Client,
		Trace:    r.Header.Get(telemetry.Header),
	})
	if err != nil {
		var full *QueueFullError
		var limited *RateLimitedError
		switch {
		case errors.As(err, &limited):
			w.Header().Set("Retry-After", retryAfterSeconds(limited.RetryAfter))
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		case errors.As(err, &full):
			w.Header().Set("Retry-After", retryAfterSeconds(full.RetryAfter))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.MinRetryAfter))
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}
	if req.WaitMS > 0 && !st.State.Terminal() {
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(req.WaitMS)*time.Millisecond)
		if polled, ok := s.Wait(ctx, st.ID); ok {
			st = polled
		}
		cancel()
	}
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or expired job id"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleWait(w http.ResponseWriter, r *http.Request) {
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		var ms int64
		if _, err := fmt.Sscanf(v, "%d", &ms); err != nil || ms <= 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad timeout_ms"})
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	st, ok := s.Wait(ctx, r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or expired job id"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	result, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown or expired job id"})
		return
	}
	switch st.State {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Pasm-Cached", fmt.Sprintf("%t", st.Cached))
		w.Header().Set(CodeHeader, experiments.CodeVersion)
		w.Write(result)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: st.Error, State: st.State})
	case StateExpired:
		writeJSON(w, http.StatusGone, errorBody{Error: st.Error, State: st.State})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished", State: st.State})
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// handleFill is the peer-fill endpoint: the spec arrives base64-encoded
// in FillSpecHeader, the result bytes are the raw body (stored verbatim
// after Service.Fill validates them against the spec). The endpoint
// shares the public listener, so it is defended in depth: disabled
// outright without a configured FillSecret, authenticated per request
// (403), pinned to this binary's CodeVersion (409), and body-capped
// (413). 200 stored, 208 already cached, 400 on a bad spec or payload.
func (s *Service) handleFill(w http.ResponseWriter, r *http.Request) {
	if s.cfg.FillSecret == "" {
		s.countFillReject()
		writeJSON(w, http.StatusForbidden, errorBody{Error: "peer fill disabled: no fill secret configured"})
		return
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get(FillSecretHeader)), []byte(s.cfg.FillSecret)) != 1 {
		s.countFillReject()
		writeJSON(w, http.StatusForbidden, errorBody{Error: "bad or missing " + FillSecretHeader + " header"})
		return
	}
	if code := r.Header.Get(FillCodeHeader); code != experiments.CodeVersion {
		s.countFillReject()
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf(
			"fill code version %q does not match this instance's %q", code, experiments.CodeVersion)})
		return
	}
	enc := r.Header.Get(FillSpecHeader)
	if enc == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing " + FillSpecHeader + " header"})
		return
	}
	rawSpec, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad " + FillSpecHeader + " encoding: " + err.Error()})
		return
	}
	var spec experiments.Spec
	if err := json.Unmarshal(rawSpec, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad fill spec: " + err.Error()})
		return
	}
	result, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxFillBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.countFillReject()
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: fmt.Sprintf(
				"fill body exceeds %d bytes", s.cfg.MaxFillBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading fill body: " + err.Error()})
		return
	}
	stored, err := s.Fill(spec, result)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	code := http.StatusOK
	if !stored {
		code = http.StatusAlreadyReported
	}
	writeJSON(w, code, map[string]bool{"stored": stored})
}

// countFillReject tallies a fill turned away before validation (auth,
// version, size) so probing the endpoint is visible in /metrics.
func (s *Service) countFillReject() {
	s.mu.Lock()
	s.reg.Add("peer_fill_rejects", 1)
	s.mu.Unlock()
}
