package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Trace replay: a virtual-time discrete-event simulation of the
// service's scheduler over a recorded workload trace. Arrivals come
// from the trace, service times from the same predictCost the live
// SJF scheduler keys on (scaled to the prototype's clock), and the
// queue is the real schedQueue — so the replayed schedule exercises
// exactly the ordering logic production runs, while being a pure
// function of (trace, config): byte-identical on every run, machine,
// -race setting, and host worker count. That purity is what the
// golden regression test and the FCFS-vs-SJF bench lock down.
//
// Execute mode additionally runs every distinct spec through the real
// engine once and stamps each outcome with its report's SHA-256 —
// byte-identity of results across scheduler modes and HostWorkers
// settings rides on the simulator's own determinism guarantee.

// ReplayConfig drives Replay.
type ReplayConfig struct {
	// Sched and StarveLimit configure the queue under test.
	Sched       SchedulerMode
	StarveLimit int
	// Workers is the virtual worker-pool size. Default 1.
	Workers int
	// ClockHz converts predicted cycles to virtual service time.
	// Default 8e6 (the prototype's 8 MHz).
	ClockHz float64
	// Execute runs each distinct spec through the real engine and
	// stamps outcomes with the report SHA-256. Virtual mode (default)
	// never executes anything.
	Execute bool
	// Options configures execution in Execute mode.
	Options experiments.Options
}

// ReplayOutcome is one request's scheduled lifetime, in virtual
// microseconds since trace start. Outcomes are logged in completion
// order (ties: worker index), which is the schedule itself.
type ReplayOutcome struct {
	Seq        int    `json:"seq"`
	Client     string `json:"client"`
	Class      string `json:"class,omitempty"`
	SLOMs      int64  `json:"slo_ms,omitempty"`
	ArriveUS   int64  `json:"arrive_us"`
	StartUS    int64  `json:"start_us"`
	FinishUS   int64  `json:"finish_us"`
	Worker     int    `json:"worker"`
	CostCycles int64  `json:"cost_cycles"`
	SHA        string `json:"sha256,omitempty"`
}

// ClassStats summarizes one class's replayed latency (virtual µs).
type ClassStats struct {
	Count   int   `json:"count"`
	P50US   int64 `json:"p50_us"`
	P95US   int64 `json:"p95_us"`
	P99US   int64 `json:"p99_us"`
	MaxUS   int64 `json:"max_us"`
	SLOMs   int64 `json:"slo_ms,omitempty"`
	SLOMiss int   `json:"slo_miss,omitempty"`
}

// ReplayResult is the schedule plus its summary.
type ReplayResult struct {
	Outcomes []ReplayOutcome
	// Log is the canonical JSONL encoding of Outcomes — the bytes the
	// golden regression test pins.
	Log []byte
	// Classes maps each class ("" = best effort) to its latency stats.
	Classes map[string]ClassStats
	// Fairness is Jain's index over per-client completion counts.
	Fairness float64
	// MakespanUS is the last completion time.
	MakespanUS int64
	// Promoted counts anti-starvation promotions the queue performed.
	Promoted int64
}

// Replay schedules every request of the trace. The event loop is
// deterministic by construction: completions process before arrivals
// at the same instant (a freed worker is visible to a simultaneous
// arrival), ties among completions break by worker index, and idle
// workers are claimed lowest-index first.
func Replay(tr *workload.Trace, cfg ReplayConfig) (*ReplayResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ClockHz <= 0 {
		cfg.ClockHz = 8e6
	}
	shas, err := executeTrace(tr, cfg)
	if err != nil {
		return nil, err
	}

	q := newSchedQueue(cfg.Sched, cfg.StarveLimit)
	type running struct {
		j        *job
		startUS  int64
		finishUS int64
		worker   int
	}
	jobs := make([]*job, len(tr.Requests))
	costs := make([]int64, len(tr.Requests))
	for i, r := range tr.Requests {
		norm, err := r.Spec.Normalize()
		if err != nil {
			return nil, fmt.Errorf("service: replay request %d: %w", i, err)
		}
		cost := predictCost(norm)
		costs[i] = int64(math.Round(cost))
		jobs[i] = &job{
			seq:       i,
			spec:      norm,
			class:     r.Class,
			slo:       r.SLOMs,
			client:    r.Client,
			cost:      cost,
			classPrio: classPriority(r.SLOMs),
		}
	}
	serviceUS := func(i int) int64 {
		us := int64(math.Round(float64(costs[i]) / cfg.ClockHz * 1e6))
		if us < 1 {
			us = 1
		}
		return us
	}

	var busy []running // kept sorted by (finishUS, worker)
	idle := make([]bool, cfg.Workers)
	for i := range idle {
		idle[i] = true
	}
	nIdle := cfg.Workers
	res := &ReplayResult{Classes: map[string]ClassStats{}}
	next := 0 // next arrival index

	dispatch := func(nowUS int64) {
		for nIdle > 0 {
			j, ok := q.TryPop()
			if !ok {
				return
			}
			w := 0
			for !idle[w] {
				w++
			}
			idle[w] = false
			nIdle--
			r := running{j: j, startUS: nowUS, finishUS: nowUS + serviceUS(j.seq), worker: w}
			at := sort.Search(len(busy), func(i int) bool {
				if busy[i].finishUS != r.finishUS {
					return busy[i].finishUS > r.finishUS
				}
				return busy[i].worker > r.worker
			})
			busy = append(busy, running{})
			copy(busy[at+1:], busy[at:])
			busy[at] = r
		}
	}

	for next < len(tr.Requests) || len(busy) > 0 {
		// Completions first at equal timestamps: the freed worker must
		// be schedulable by a simultaneous arrival.
		if len(busy) > 0 && (next >= len(tr.Requests) || busy[0].finishUS <= tr.Requests[next].AtUS) {
			r := busy[0]
			busy = busy[1:]
			idle[r.worker] = true
			nIdle++
			res.Outcomes = append(res.Outcomes, ReplayOutcome{
				Seq:        r.j.seq,
				Client:     r.j.client,
				Class:      r.j.class,
				SLOMs:      r.j.slo,
				ArriveUS:   tr.Requests[r.j.seq].AtUS,
				StartUS:    r.startUS,
				FinishUS:   r.finishUS,
				Worker:     r.worker,
				CostCycles: costs[r.j.seq],
				SHA:        shas[r.j.seq],
			})
			if r.finishUS > res.MakespanUS {
				res.MakespanUS = r.finishUS
			}
			dispatch(r.finishUS)
			continue
		}
		nowUS := tr.Requests[next].AtUS
		for next < len(tr.Requests) && tr.Requests[next].AtUS == nowUS {
			q.Push(jobs[next])
			next++
		}
		dispatch(nowUS)
	}
	res.Promoted = q.Promoted()

	var buf bytes.Buffer
	for _, o := range res.Outcomes {
		line, err := json.Marshal(o)
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	res.Log = buf.Bytes()
	res.summarize()
	return res, nil
}

// summarize derives per-class latency stats and the fairness index.
func (res *ReplayResult) summarize() {
	lat := map[string][]int64{}
	perClient := map[string]int64{}
	for _, o := range res.Outcomes {
		lat[o.Class] = append(lat[o.Class], o.FinishUS-o.ArriveUS)
		perClient[o.Client]++
	}
	for class, ls := range lat {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		cs := ClassStats{
			Count: len(ls),
			P50US: pctile(ls, 0.50),
			P95US: pctile(ls, 0.95),
			P99US: pctile(ls, 0.99),
			MaxUS: ls[len(ls)-1],
		}
		for _, o := range res.Outcomes {
			if o.Class != class {
				continue
			}
			if o.SLOMs > cs.SLOMs {
				cs.SLOMs = o.SLOMs
			}
			if o.SLOMs > 0 && o.FinishUS-o.ArriveUS > o.SLOMs*1000 {
				cs.SLOMiss++
			}
		}
		res.Classes[class] = cs
	}
	counts := make([]float64, 0, len(perClient))
	for _, n := range perClient {
		counts = append(counts, float64(n))
	}
	res.Fairness = stats.Jain(counts)
}

// pctile is the exact order-statistic quantile of a sorted slice.
func pctile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// executeTrace (Execute mode) runs each distinct spec once through
// the real engine and returns per-request report SHA-256 hex. Specs
// run sequentially in first-appearance order; the report bytes are a
// pure function of the spec, so the digests are schedule-independent
// — which is exactly the property the bench asserts when it compares
// digests across scheduler modes.
func executeTrace(tr *workload.Trace, cfg ReplayConfig) ([]string, error) {
	shas := make([]string, len(tr.Requests))
	if !cfg.Execute {
		return shas, nil
	}
	opts := cfg.Options
	if opts.Config.NumPEs == 0 {
		par := opts.Parallelism
		opts = experiments.DefaultOptions()
		opts.Parallelism = par
	}
	byKey := map[string]string{}
	for i, r := range tr.Requests {
		norm, err := r.Spec.Normalize()
		if err != nil {
			return nil, err
		}
		key, err := norm.KeyString()
		if err != nil {
			return nil, err
		}
		if sha, ok := byKey[key]; ok {
			shas[i] = sha
			continue
		}
		rep, err := experiments.RunSpecContext(context.Background(), norm, experiments.RunConfig{Options: opts})
		if err != nil {
			return nil, fmt.Errorf("service: replay execute request %d: %w", i, err)
		}
		raw, err := rep.Marshal()
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(raw)
		byKey[key] = hex.EncodeToString(sum[:])
		shas[i] = byKey[key]
	}
	return shas, nil
}
