package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
)

// instantRunner returns fixed bytes immediately, counting runs.
type instantRunner struct {
	runs  atomic.Int32
	bytes []byte
}

func newInstantRunner() *instantRunner {
	return &instantRunner{bytes: []byte(`{"fake":"report"}` + "\n")}
}

func (r *instantRunner) run(ctx context.Context, spec experiments.Spec) ([]byte, error) {
	r.runs.Add(1)
	return r.bytes, nil
}

// TestPanicIsolationSelfHeals: a panicking run fails only its job; the
// worker survives and executes the next one; the panic is counted.
func TestPanicIsolationSelfHeals(t *testing.T) {
	var n atomic.Int32
	s := New(Config{Workers: 1, QueueDepth: 4, run: func(ctx context.Context, spec experiments.Spec) ([]byte, error) {
		if n.Add(1) == 1 {
			panic("interpreter exploded")
		}
		return []byte("ok"), nil
	}})
	defer s.Shutdown(context.Background())

	a, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, s, a.ID, StateFailed)
	if !strings.Contains(st.Error, "interpreter exploded") {
		t.Errorf("panic text lost: %q", st.Error)
	}
	// Same (single-worker) pool must still execute the next job.
	b, err := s.Submit(specN(2), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, b.ID, StateDone)
	m := s.Metrics()
	if m["service/panics_recovered"] != 1 {
		t.Errorf("panics_recovered = %v, want 1", m["service/panics_recovered"])
	}
	if m["service/failed"] != 1 || m["service/completed"] != 1 {
		t.Errorf("failed=%v completed=%v", m["service/failed"], m["service/completed"])
	}
}

// TestInjectedRunFaults: with a run error rate of 1, every job fails
// with the injected sentinel; nothing is cached; counters fire.
func TestInjectedRunFaults(t *testing.T) {
	r := newInstantRunner()
	inj := faults.New(1, faults.Profile{faults.Run: {ErrorRate: 1}})
	s := New(Config{Workers: 1, QueueDepth: 4, run: r.run, Faults: inj})
	defer s.Shutdown(context.Background())

	st, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, st.ID, StateFailed)
	if !strings.Contains(got.Error, "injected fault") {
		t.Errorf("error = %q, want injected sentinel text", got.Error)
	}
	if r.runs.Load() != 0 {
		t.Errorf("real runner executed %d times behind an injected failure", r.runs.Load())
	}
	m := s.Metrics()
	if m["faults/run/errors"] != 1 {
		t.Errorf("faults/run/errors = %v, want 1", m["faults/run/errors"])
	}
	if m["faults/injected_total"] < 1 {
		t.Errorf("faults/injected_total = %v, want >= 1", m["faults/injected_total"])
	}
}

// TestInjectedPanicsSelfHeal: run panic rate 1 — every job fails via
// the recovery path and the pool keeps accepting work.
func TestInjectedPanicsSelfHeal(t *testing.T) {
	r := newInstantRunner()
	inj := faults.New(2, faults.Profile{faults.Run: {PanicRate: 1}})
	s := New(Config{Workers: 1, QueueDepth: 8, run: r.run, Faults: inj})
	defer s.Shutdown(context.Background())

	for i := uint32(1); i <= 3; i++ {
		st, err := s.Submit(specN(i), time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		got := waitState(t, s, st.ID, StateFailed)
		if !strings.Contains(got.Error, "injected chaos panic") {
			t.Errorf("job %d error = %q", i, got.Error)
		}
	}
	if m := s.Metrics(); m["service/panics_recovered"] != 3 || m["faults/run/panics"] != 3 {
		t.Errorf("panics_recovered=%v faults/run/panics=%v, want 3, 3",
			m["service/panics_recovered"], m["faults/run/panics"])
	}
}

// TestDeadlineCancelsRunningJob: the job's deadline rides the context
// into the runner; when it passes mid-run the job expires (not fails)
// and the expired_running counter fires.
func TestDeadlineCancelsRunningJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, run: func(ctx context.Context, spec experiments.Spec) ([]byte, error) {
		<-ctx.Done() // simulate a long experiment honoring cancellation
		return nil, ctx.Err()
	}})
	defer s.Shutdown(context.Background())

	// The deadline must clear the 0.5s admission fallback estimate so
	// the job is admitted, starts, and only then expires.
	st, err := s.Submit(specN(1), time.Now().Add(700*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, st.ID, StateExpired)
	if got.Error != "deadline exceeded during execution" {
		t.Errorf("error = %q", got.Error)
	}
	if m := s.Metrics(); m["service/expired_running"] != 1 {
		t.Errorf("expired_running = %v, want 1", m["service/expired_running"])
	}
}

// TestCacheFaultForcesRecompute: an injected cache fault turns a hit
// into a miss — the spec recomputes, the caller still gets bytes.
func TestCacheFaultForcesRecompute(t *testing.T) {
	r := newInstantRunner()
	inj := faults.New(3, faults.Profile{faults.Cache: {ErrorRate: 1}})
	s := New(Config{Workers: 1, QueueDepth: 4, run: r.run, Faults: inj})
	defer s.Shutdown(context.Background())

	first, err := s.Submit(specN(9), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateDone)
	second, err := s.Submit(specN(9), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Error("faulted cache lookup served a hit")
	}
	waitState(t, s, second.ID, StateDone)
	if r.runs.Load() != 2 {
		t.Errorf("runs = %d, want 2 (recompute behind cache fault)", r.runs.Load())
	}
	res, _, _ := s.Result(second.ID)
	if string(res) != string(r.bytes) {
		t.Errorf("recomputed bytes = %q", res)
	}
	if m := s.Metrics(); m["service/cache_faults"] < 1 {
		t.Errorf("cache_faults = %v, want >= 1", m["service/cache_faults"])
	}
}

// TestAdmitFaultIsRetryableOverload: an injected admission fault looks
// exactly like backpressure — QueueFullError in-process, 503 with
// Retry-After over HTTP — so clients retry it with the same policy.
func TestAdmitFaultIsRetryableOverload(t *testing.T) {
	r := newInstantRunner()
	inj := faults.New(4, faults.Profile{faults.Admit: {ErrorRate: 1}})
	s := New(Config{Workers: 1, QueueDepth: 4, run: r.run, Faults: inj, MinRetryAfter: 2 * time.Second})
	defer s.Shutdown(context.Background())

	_, err := s.Submit(specN(1), time.Time{})
	full, ok := err.(*QueueFullError)
	if !ok {
		t.Fatalf("err = %v, want QueueFullError", err)
	}
	if full.RetryAfter < 2*time.Second || !strings.Contains(full.Reason, "injected") {
		t.Errorf("QueueFullError = %+v", full)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"spec":{"exps":["table1"],"seed":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("HTTP admit fault: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if m := s.Metrics(); m["service/rejected_injected"] != 2 {
		t.Errorf("rejected_injected = %v, want 2", m["service/rejected_injected"])
	}
}

// TestHTTPFaultMiddleware: injected HTTP errors 500 every API route
// but never /metrics or /healthz (chaos must stay observable).
func TestHTTPFaultMiddleware(t *testing.T) {
	r := newInstantRunner()
	inj := faults.New(5, faults.Profile{faults.HTTP: {ErrorRate: 1}})
	s := New(Config{Workers: 1, QueueDepth: 4, run: r.run, Faults: inj})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("faulted route status = %d, want 500", resp.StatusCode)
	}
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200 (exempt from chaos)", path, resp.StatusCode)
		}
	}
	if m := s.Metrics(); m["faults/http/errors"] < 1 {
		t.Errorf("faults/http/errors = %v, want >= 1", m["faults/http/errors"])
	}
}

// TestDeadlineHeader: X-Pasm-Deadline-Ms drives admission exactly like
// the body field; garbage in the header is a 400.
func TestDeadlineHeader(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, run: g.run})
	defer func() { g.release(); s.Shutdown(context.Background()) }()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Occupy the worker so the estimate (0.5s fallback) dwarfs a 1ms
	// header deadline.
	if _, err := s.Submit(specN(1), time.Time{}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs",
		strings.NewReader(`{"spec":{"exps":["table1"],"seed":2}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("header deadline: status = %d, want 503 (unmeetable)", resp.StatusCode)
	}

	req, _ = http.NewRequest("POST", srv.URL+"/v1/jobs",
		strings.NewReader(`{"spec":{"exps":["table1"],"seed":3}}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "soon")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage header: status = %d, want 400", resp.StatusCode)
	}
}

// TestRetriedSubmitsObservable: requests marked attempt >= 2 land in
// service/retried_submits, making client retries visible in /metrics.
func TestRetriedSubmitsObservable(t *testing.T) {
	r := newInstantRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, run: r.run})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for attempt, want := range map[string]float64{"1": 0, "2": 1} {
		req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs", nil)
		req.Header.Set(AttemptHeader, attempt)
		before := s.Metrics()["service/retried_submits"]
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := s.Metrics()["service/retried_submits"] - before; got != want {
			t.Errorf("attempt %s: retried_submits delta = %v, want %v", attempt, got, want)
		}
	}
}

// TestInjectedDelayStretchesRun: a run-point delay holds the job in
// running longer than the delay; the job still completes.
func TestInjectedDelayStretchesRun(t *testing.T) {
	r := newInstantRunner()
	inj := faults.New(6, faults.Profile{faults.Run: {DelayRate: 1, Delay: 50 * time.Millisecond}})
	s := New(Config{Workers: 1, QueueDepth: 4, run: r.run, Faults: inj})
	defer s.Shutdown(context.Background())

	start := time.Now()
	st, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("job finished in %s, want >= 50ms injected delay", d)
	}
	if m := s.Metrics(); m["faults/run/delays"] != 1 {
		t.Errorf("faults/run/delays = %v, want 1", m["faults/run/delays"])
	}
}
