package service

import (
	"fmt"
	"sync"
	"time"
)

// Per-client token-bucket admission: every identified client
// (X-Pasm-Client) gets rate tokens per second up to burst, one token
// per submit. Clients above their rate are rejected with HTTP 429 +
// Retry-After before any queue slot is consumed, so one greedy cohort
// cannot crowd a shared replica's queue — the fairness-index metric
// measures how well this works under the SLO storms.
//
// The bucket is lazy (tokens materialize on the next admit from the
// elapsed time, no background refill goroutine) and clocked by the
// caller, so property tests drive it with a fake clock and the replay
// harness with virtual time.

// RateLimitedError rejects a submit that exceeded its client's rate.
// Maps to HTTP 429 + Retry-After; the cluster gateway returns it
// as-is (no failover — spilling to a peer would double the rate).
type RateLimitedError struct {
	Client     string
	RetryAfter time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("service: client %q over admission rate (retry after %s)", e.Client, e.RetryAfter)
}

type bucket struct {
	tokens float64
	last   time.Time
}

// buckets tracks one token bucket per client id.
type buckets struct {
	rate       float64 // tokens per second
	burst      float64
	maxClients int

	mu    sync.Mutex
	m     map[string]*bucket
	order []string // insertion order, oldest first (eviction)
}

// newBuckets builds the admission table. rate <= 0 disables admission
// control (returns nil, and every probe site nil-checks).
func newBuckets(rate, burst float64, maxClients int) *buckets {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if maxClients <= 0 {
		maxClients = 4096
	}
	return &buckets{rate: rate, burst: burst, maxClients: maxClients, m: map[string]*bucket{}}
}

// admit spends one token from client's bucket at time now. A new
// client starts with a full burst. Refused admits return the wait
// until one token accrues; they do not consume anything, so the
// refill is starvation-free — any client that backs off for 1/rate is
// guaranteed its next token regardless of what other clients do
// (buckets are per-client state; no cross-client contention exists to
// starve on).
func (b *buckets) admit(client string, now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bk, ok := b.m[client]
	if !ok {
		// Bound the table: forget the oldest client (it restarts with a
		// full burst if it returns — strictly more permissive, never a
		// wrongful reject).
		if len(b.m) >= b.maxClients {
			delete(b.m, b.order[0])
			b.order = b.order[1:]
		}
		bk = &bucket{tokens: b.burst, last: now}
		b.m[client] = bk
		b.order = append(b.order, client)
	}
	if dt := now.Sub(bk.last).Seconds(); dt > 0 {
		bk.tokens += dt * b.rate
		if bk.tokens > b.burst {
			bk.tokens = b.burst
		}
	}
	// A clock that goes backwards (never in production; fake clocks in
	// tests) just doesn't refill.
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	// Pad the wait by 1ms: the float division truncates at nanosecond
	// granularity, and a client that honors Retry-After exactly must be
	// guaranteed its token (the starvation-free property test backs off
	// precisely this long).
	need := (1 - bk.tokens) / b.rate
	return false, time.Duration(need*float64(time.Second)) + time.Millisecond
}

// clients returns how many client buckets are live.
func (b *buckets) clients() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}
