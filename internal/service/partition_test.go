package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/pasm"
)

func newServiceMachine(t *testing.T, pes int) *partition.Machine {
	t.Helper()
	cfg := pasm.DefaultConfig()
	cfg.NumPEs = pes
	m, err := partition.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// cellSpec is a small real-engine spec sized for a pes-PE partition
// (distinct seeds keep submissions from coalescing).
func cellSpec(pes int, seed uint32) experiments.Spec {
	return experiments.Spec{
		Cells: []experiments.CellSpec{{N: 8, P: pes, Muls: 1, Mode: "simd"}},
		PEs:   pes,
		Seed:  seed,
	}
}

// TestPartitionPacking: on a 64-PE machine, four default-size (16-PE)
// jobs run concurrently — the dispatcher packs them onto disjoint
// subcubes — while a fifth has to wait for a release; the machine
// returns to fully free once everything drains.
func TestPartitionPacking(t *testing.T) {
	m := newServiceMachine(t, 64)
	gate := make(chan struct{})
	s := New(Config{QueueDepth: 8, Machine: m, run: func(ctx context.Context, spec experiments.Spec) ([]byte, error) {
		<-gate
		return []byte("packed\n"), nil
	}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	ids := make([]string, 5)
	for i := range ids {
		st, err := s.Submit(specN(uint32(100+i)), time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// 4x16 PEs fill the machine; the fifth job must stay queued.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.Metrics()["service/inflight"] == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 4 concurrent jobs (inflight=%v)", s.Metrics()["service/inflight"])
		}
		time.Sleep(time.Millisecond)
	}
	met := s.Metrics()
	if met["partition/pes_busy"] != 64 || met["partition/leases_active"] != 4 {
		t.Errorf("pes_busy=%v leases_active=%v, want 64/4", met["partition/pes_busy"], met["partition/leases_active"])
	}
	if st, _ := s.Job(ids[4]); st.State != StateQueued {
		t.Errorf("fifth job state = %s, want queued while the machine is full", st.State)
	}

	close(gate)
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	met = s.Metrics()
	if met["partition/pes_busy"] != 0 || met["partition/pes_free"] != 64 {
		t.Errorf("machine not drained: busy=%v free=%v", met["partition/pes_busy"], met["partition/pes_free"])
	}
	if met["partition/pes_busy_peak"] != 64 {
		t.Errorf("pes_busy_peak = %v, want 64", met["partition/pes_busy_peak"])
	}
	if met["partition/leases_total"] != 5 || met["partition/releases_total"] != 5 {
		t.Errorf("leases_total=%v releases_total=%v, want 5/5", met["partition/leases_total"], met["partition/releases_total"])
	}
}

// TestPartitionModeByteIdentity: a spec served by a partition-mode
// instance — executed inside a subcube lease, co-resident with other
// jobs — returns byte-identical results to the classic worker-pool
// path. This is the serving-layer face of the subcube isomorphism.
func TestPartitionModeByteIdentity(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.Parallelism = 2

	classic := New(Config{Workers: 2, QueueDepth: 8, Options: opts})
	defer classic.Shutdown(context.Background())
	parted := New(Config{QueueDepth: 8, Machine: newServiceMachine(t, 16), Options: opts})
	defer parted.Shutdown(context.Background())

	fetch := func(s *Service, spec experiments.Spec) []byte {
		t.Helper()
		st, err := s.Submit(spec, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, st.ID, StateDone)
		res, _, ok := s.Result(st.ID)
		if !ok {
			t.Fatalf("no result for %s", st.ID)
		}
		return res
	}

	// Mixed partition sizes in flight at once: 2- and 4-PE jobs pack
	// side by side on the 16-PE machine.
	specs := []experiments.Spec{cellSpec(4, 1), cellSpec(2, 2), cellSpec(4, 3), cellSpec(2, 4)}
	var wg sync.WaitGroup
	got := make([][]byte, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec experiments.Spec) {
			defer wg.Done()
			got[i] = fetch(parted, spec)
		}(i, spec)
	}
	wg.Wait()
	for i, spec := range specs {
		want := fetch(classic, spec)
		if string(got[i]) != string(want) {
			t.Errorf("spec %d: partition-mode bytes diverge from the classic path\npartition: %s\nclassic:   %s",
				i, got[i], want)
		}
	}
}

// TestPartitionRejectsOversize: a spec whose pes exceeds the machine
// is a bad request (a plain error, not backpressure) and nothing is
// queued.
func TestPartitionRejectsOversize(t *testing.T) {
	s := New(Config{QueueDepth: 8, Machine: newServiceMachine(t, 16),
		run: func(context.Context, experiments.Spec) ([]byte, error) { return []byte("x\n"), nil }})
	defer s.Shutdown(context.Background())

	_, err := s.Submit(experiments.Spec{Cells: []experiments.CellSpec{{N: 8, P: 4, Muls: 1, Mode: "simd"}}, PEs: 64}, time.Time{})
	if err == nil {
		t.Fatal("oversize spec admitted")
	}
	var full *QueueFullError
	if errors.As(err, &full) || errors.Is(err, ErrDraining) {
		t.Fatalf("oversize spec rejected as overload (%v), want bad request", err)
	}
	if s.QueueLen() != 0 {
		t.Errorf("queue length = %d after rejection", s.QueueLen())
	}
}

// TestPartitionDrain: shutdown in partition mode places and finishes
// every accepted job, including ones still waiting for a partition
// when the drain begins.
func TestPartitionDrain(t *testing.T) {
	opts := experiments.DefaultOptions()
	s := New(Config{QueueDepth: 16, Machine: newServiceMachine(t, 16), Options: opts})

	// Six 4-PE jobs on a 16-PE machine: at most four run at once, so
	// the drain necessarily starts with jobs still pending.
	ids := make([]string, 6)
	for i := range ids {
		st, err := s.Submit(cellSpec(4, uint32(40+i)), time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, ok := s.Job(id)
		if !ok || st.State != StateDone {
			t.Errorf("job %s after drain: %+v, want done", id, st)
		}
	}
	if busy := s.Metrics()["partition/pes_busy"]; busy != 0 {
		t.Errorf("pes_busy = %v after drain", busy)
	}
}

// TestPartitionHealthAndMetrics: partition mode shows up in /healthz
// (machine size, policy) and /metrics (machine gauges, wait quantiles).
func TestPartitionHealthAndMetrics(t *testing.T) {
	s := New(Config{QueueDepth: 8, Machine: newServiceMachine(t, 32), Policy: partition.PolicyBestFit,
		run: func(context.Context, experiments.Spec) ([]byte, error) { return []byte("x\n"), nil }})
	defer s.Shutdown(context.Background())

	h := s.Health()
	if h.MachinePEs != 32 || h.Policy != "bestfit" {
		t.Errorf("health = %+v, want machine_pes=32 policy=bestfit", h)
	}

	st, err := s.Submit(specN(9), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateDone)
	m := s.Metrics()
	for _, key := range []string{"partition/pes_total", "partition/occupancy_pct", "partition/fragmentation_pct"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
	if m["partition/pes_total"] != 32 {
		t.Errorf("partition/pes_total = %v, want 32", m["partition/pes_total"])
	}
	if _, ok := m["service/partition_wait_ms/p50"]; !ok {
		t.Error("metrics missing service/partition_wait_ms quantiles")
	}

	// Classic mode must not grow partition keys.
	classic := New(Config{Workers: 1, QueueDepth: 4,
		run: func(context.Context, experiments.Spec) ([]byte, error) { return []byte("x\n"), nil }})
	defer classic.Shutdown(context.Background())
	if _, ok := classic.Metrics()["partition/pes_total"]; ok {
		t.Error("classic mode reports partition metrics")
	}
	if h := classic.Health(); h.MachinePEs != 0 || h.Policy != "" {
		t.Errorf("classic health carries partition fields: %+v", h)
	}
}
