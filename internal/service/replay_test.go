package service

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/workload"
)

var updateReplay = flag.Bool("update", false, "rewrite golden replay logs")

// goldenTracePath is the 200-request trace committed by the workload
// package's golden test; the replay regression pins the schedule this
// package produces from those same bytes.
const goldenTracePath = "../workload/testdata/golden_200.tracev1"

func loadGoldenTrace(t *testing.T) *workload.Trace {
	t.Helper()
	raw, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("reading golden trace: %v", err)
	}
	tr, err := workload.Parse(raw)
	if err != nil {
		t.Fatalf("parsing golden trace: %v", err)
	}
	return tr
}

// TestGoldenReplay is the deterministic trace-replay regression: the
// committed 200-request trace must replay to a byte-identical
// outcome/ordering log, under both scheduler modes, on every machine
// and under -race (the suite runs with -race in CI). A diff here means
// the scheduling policy changed — regenerate with -update only when
// that is intentional.
func TestGoldenReplay(t *testing.T) {
	tr := loadGoldenTrace(t)
	for _, tc := range []struct {
		mode   SchedulerMode
		golden string
	}{
		{SchedFCFS, "testdata/golden_replay_fcfs.log"},
		{SchedSJF, "testdata/golden_replay_sjf.log"},
	} {
		t.Run(string(tc.mode), func(t *testing.T) {
			res, err := Replay(tr, ReplayConfig{Sched: tc.mode, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Outcomes) != len(tr.Requests) {
				t.Fatalf("replayed %d of %d requests", len(res.Outcomes), len(tr.Requests))
			}
			if *updateReplay {
				if err := os.MkdirAll(filepath.Dir(tc.golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(tc.golden, res.Log, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatalf("reading golden log (run with -update to generate): %v", err)
			}
			if !bytes.Equal(res.Log, want) {
				t.Fatalf("replay log diverged from %s (%d vs %d bytes); rerun with -update if the schedule change is intentional",
					tc.golden, len(res.Log), len(want))
			}
		})
	}
}

// TestReplayTwiceIdentical is the acceptance criterion stated
// directly: replaying the same trace twice yields identical schedules
// and identical summaries.
func TestReplayTwiceIdentical(t *testing.T) {
	tr := loadGoldenTrace(t)
	for _, mode := range []SchedulerMode{SchedFCFS, SchedSJF} {
		a, err := Replay(tr, ReplayConfig{Sched: mode, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Replay(tr, ReplayConfig{Sched: mode, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Log, b.Log) {
			t.Fatalf("%s: two replays of the same trace differ", mode)
		}
		if a.Fairness != b.Fairness || a.MakespanUS != b.MakespanUS {
			t.Fatalf("%s: summaries differ across identical replays", mode)
		}
	}
}

// TestReplayExecuteHostWorkersInvariant: in execute mode the outcome
// log embeds each request's report SHA-256. Replaying with different
// host parallelism (the engine's cell fan-out) must give byte-
// identical logs — scheduling is virtual-time, and report bytes are a
// pure function of the spec.
func TestReplayExecuteHostWorkersInvariant(t *testing.T) {
	full := loadGoldenTrace(t)
	// A slice is plenty: every distinct spec executes for real.
	sub := &workload.Trace{Header: full.Header, Requests: full.Requests[:12]}
	sub.Header.Requests = len(sub.Requests)

	logs := make([][]byte, 0, 2)
	for _, par := range []int{1, 4} {
		opts := experiments.DefaultOptions()
		opts.Parallelism = par
		res, err := Replay(sub, ReplayConfig{Sched: SchedSJF, Workers: 2, Execute: true, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range res.Outcomes {
			if o.SHA == "" {
				t.Fatalf("execute-mode outcome seq=%d missing report sha", o.Seq)
			}
		}
		logs = append(logs, res.Log)
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatal("execute-mode replay logs differ across host parallelism settings")
	}
}

// TestReplaySJFHelpsShortClass: on the golden trace under queueing
// pressure (one virtual worker), SJF must cut the short class's p99
// versus FCFS without starving the batch class — the same comparison
// scripts/slobench publishes as BENCH_slo.json.
func TestReplaySJFHelpsShortClass(t *testing.T) {
	tr := loadGoldenTrace(t)
	fcfs, err := Replay(tr, ReplayConfig{Sched: SchedFCFS, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sjf, err := Replay(tr, ReplayConfig{Sched: SchedSJF, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fShort, ok := fcfs.Classes["interactive"]
	if !ok {
		t.Fatal("golden trace has no interactive class under fcfs")
	}
	sShort, ok := sjf.Classes["interactive"]
	if !ok {
		t.Fatal("golden trace has no interactive class under sjf")
	}
	if sShort.P99US >= fShort.P99US {
		t.Fatalf("sjf interactive p99 %dus not better than fcfs %dus", sShort.P99US, fShort.P99US)
	}
	// Both modes complete everything: no starvation, same request count
	// per class.
	if sjf.Classes["batch"].Count != fcfs.Classes["batch"].Count {
		t.Fatal("batch completions differ between modes")
	}
}

// TestReplayDefaultsAndErrors: a zero-value config gets the
// documented defaults (1 worker, 8 MHz), invalid specs refuse with a
// request index, pctile handles its edges, and execute mode dedups
// identical specs into one engine run with one shared digest.
func TestReplayDefaultsAndErrors(t *testing.T) {
	spec := experiments.Spec{Exps: []string{"table1"}, Seed: 7}
	tiny := &workload.Trace{
		Header: workload.Header{Name: "tiny", Requests: 2},
		Requests: []workload.Request{
			{Seq: 0, AtUS: 0, Client: "a", Spec: spec},
			{Seq: 1, AtUS: 10, Client: "b", Spec: spec},
		},
	}

	res, err := Replay(tiny, ReplayConfig{})
	if err != nil {
		t.Fatalf("zero-config replay: %v", err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.Worker != 0 {
			t.Errorf("default pool should be one worker, outcome on worker %d", o.Worker)
		}
	}

	bad := &workload.Trace{
		Header:   workload.Header{Requests: 1},
		Requests: []workload.Request{{Seq: 0, Spec: experiments.Spec{}}},
	}
	if _, err := Replay(bad, ReplayConfig{}); err == nil {
		t.Error("empty spec should refuse to replay")
	}
	if _, err := Replay(bad, ReplayConfig{Execute: true}); err == nil {
		t.Error("empty spec should refuse to execute")
	}

	if got := pctile(nil, 0.99); got != 0 {
		t.Errorf("pctile of empty = %d, want 0", got)
	}
	if got := pctile([]int64{3, 9}, 0); got != 3 {
		t.Errorf("pctile q=0 = %d, want first element", got)
	}

	// Execute with default options: both requests share one spec, so
	// the engine runs once and both outcomes carry the same digest.
	exec, err := Replay(tiny, ReplayConfig{Execute: true})
	if err != nil {
		t.Fatalf("execute replay: %v", err)
	}
	if exec.Outcomes[0].SHA == "" || exec.Outcomes[0].SHA != exec.Outcomes[1].SHA {
		t.Errorf("dedup digests: %q vs %q", exec.Outcomes[0].SHA, exec.Outcomes[1].SHA)
	}
}
