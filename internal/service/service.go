// Package service turns the experiment engine into a long-running
// server: a bounded FIFO job queue with deadline-aware admission
// control, a worker pool executing specs through the existing
// host-parallel engine (experiments.Options.Parallelism), request
// coalescing so identical in-flight specs share one execution, and a
// content-addressed LRU result cache (internal/cache) so repeated
// specs are served byte-identical without re-simulating. cmd/pasmd
// fronts it with HTTP; the engine itself is transport-free and fully
// testable in-process.
//
// Partition mode (Config.Machine): instead of a fixed worker pool,
// the service carves a shared partition.Machine into power-of-two
// subcube partitions and packs queued jobs onto them — each job runs
// inside a partition of its spec's pes, concurrently with whatever
// else fits, and the subcube isomorphism keeps every result
// byte-identical to the classic path (the cache, coalescing, and the
// cluster's byte-compare guarantees are mode-blind). Config.Policy
// picks which pending job a freed region goes to.
//
// Backpressure discipline: the queue never grows past its bound.
// A full queue rejects the submit with ErrQueueFull carrying a
// Retry-After estimate derived from observed job durations; a
// submit whose deadline cannot be met by the estimated queue wait is
// rejected at admission instead of wasting a slot; a job whose
// deadline passes while queued is expired without execution. Graceful
// shutdown stops admission (ErrDraining) and drains every accepted
// job before returning, so no accepted work is lost.
//
// Resilience discipline: a job's deadline follows it end to end — it
// gates admission, sheds the job if it expires while queued, and rides
// the execution context into experiments.RunSpecContext so a running
// job stops between experiments once the deadline passes. A panicking
// run (a bug, or chaos injection) fails only its own job and is
// counted; the worker goroutine survives, so the pool self-heals. An
// optional faults.Injector (Config.Faults, pasmd -chaos-seed/-chaos-
// profile) injects deterministic errors, delays, and panics at the
// admission, cache, execution, and HTTP points; detached it costs one
// nil pointer test per site.
package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// State is a job's lifecycle state. Transitions:
//
//	queued -> running -> done | failed
//	queued -> expired            (deadline passed before a worker got it)
//	running -> expired           (deadline passed mid-run; execution canceled)
//	(cache hit) -> done          (never queued)
type State string

// Job lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	StateExpired State = "expired"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateExpired
}

// Config configures a Service.
type Config struct {
	// QueueDepth bounds the number of admitted-but-unstarted jobs.
	// Default 64.
	QueueDepth int
	// Workers is the number of jobs executing concurrently. Each job
	// additionally fans its cells across Options.Parallelism host
	// goroutines, so Workers*Parallelism should track the host CPU
	// count. Default 1. Ignored in partition mode (Machine non-nil),
	// where concurrency is whatever the machine's free PEs admit.
	Workers int
	// Machine, when non-nil, switches the service to partition mode:
	// instead of a fixed worker pool, a scheduler packs queued jobs
	// onto free subcube partitions of this shared machine (each job
	// gets a partition of its spec's pes and runs with the partition's
	// network view; the subcube isomorphism keeps its result bytes
	// identical to a standalone run). Jobs whose pes exceeds the
	// machine are rejected at admission as bad requests.
	Machine *partition.Machine
	// Policy picks which pending job gets a freed partition in
	// partition mode (firstfit, bestfit, sizeaware). Default firstfit.
	Policy partition.Policy
	// Sched orders the queue: FCFS (default, strict arrival order) or
	// SJF (SLO-class priority + shortest-predicted-job-first with
	// anti-starvation aging; see sched.go).
	Sched SchedulerMode
	// StarveLimit bounds SJF reordering: an aged job is promoted after
	// this many bypasses, and no urgent job is ever bypassed by more
	// than this many promotions. Default DefaultStarveLimit.
	StarveLimit int
	// Classes declares the SLO classes and their default latency
	// targets in ms (a submit naming a class without an explicit SLO
	// inherits the declared target). Nil accepts any class name with
	// only explicit targets.
	Classes map[string]int64
	// AdmitRate/AdmitBurst arm per-client token-bucket admission:
	// each identified client (X-Pasm-Client) gets AdmitRate submits
	// per second with AdmitBurst headroom; excess is rejected with
	// 429 + Retry-After. AdmitRate 0 (default) disables admission
	// control. Unidentified submits are never rate-limited.
	AdmitRate  float64
	AdmitBurst float64
	// Options configures per-job execution (machine config and cell
	// parallelism). Full/Seed/Observe are overwritten per spec.
	Options experiments.Options
	// Cache bounds the result cache.
	Cache cache.Config
	// MaxJobs bounds the finished-job history kept for status polls;
	// older finished jobs are forgotten (their results stay cached).
	// Default 1024.
	MaxJobs int
	// MinRetryAfter floors the Retry-After estimate on rejection.
	// Default 1s.
	MinRetryAfter time.Duration
	// Name identifies this instance in /healthz (cluster deployments
	// give each replica a stable name; empty is fine standalone).
	Name string
	// FillSecret arms the peer-fill endpoint: fills must present it in
	// the X-Pasm-Fill-Secret header. Empty (the default) keeps the
	// endpoint disabled — it shares the public listener, so it must
	// never be open to anonymous writes.
	FillSecret string
	// MaxFillBytes bounds one peer-fill request body. Default 8 MiB.
	MaxFillBytes int64
	// Faults, when non-nil, injects deterministic faults at the
	// admission, cache, execution, and HTTP points (chaos testing).
	// Nil costs one pointer test per probe site.
	Faults *faults.Injector
	// Telemetry, when non-nil, records request-scoped traces: admit/
	// queue/run spans per traced submit, /debug/requests retention, and
	// the run span's simulated-clock capture. Nil (detached) costs one
	// pointer test per site, like Faults.
	Telemetry *telemetry.Tracer
	// Logger receives structured serving logs (job failures, recovered
	// panics) with trace IDs when available. Nil disables logging.
	Logger *slog.Logger

	// run overrides job execution (tests). ctx carries the job's
	// deadline; implementations should abandon work when it expires.
	run func(ctx context.Context, spec experiments.Spec) ([]byte, error)
	// now overrides the clock (tests).
	now func() time.Time
}

// Errors returned by Submit. ErrQueueFull and ErrDraining map to HTTP
// 503 + Retry-After.
var (
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("service: draining, not accepting new jobs")
)

// QueueFullError reports a rejected submission with a wait estimate.
type QueueFullError struct {
	// RetryAfter estimates when a slot should free up.
	RetryAfter time.Duration
	// Reason distinguishes "queue full" from "deadline unmeetable".
	Reason string
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// JobStatus is an immutable snapshot of a job.
type JobStatus struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Cached marks a job served from the result cache without queuing.
	Cached bool `json:"cached"`
	// Coalesced counts extra submissions sharing this execution.
	Coalesced int    `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
	Created   string `json:"created,omitempty"`
	Started   string `json:"started,omitempty"`
	Finished  string `json:"finished,omitempty"`
}

// job is the mutable record; every field below mu's line is guarded by
// Service.mu.
type job struct {
	id       string
	spec     experiments.Spec // normalized
	key      cache.Key
	deadline time.Time // zero = none
	done     chan struct{}

	// Scheduling identity, immutable after submit: arrival sequence,
	// SLO class and target, submitting client, predicted cost, and the
	// derived class priority rank.
	seq       int
	class     string
	slo       int64
	client    string
	cost      float64
	classPrio int64
	// skipped/bypassed are the SJF aging counters, guarded by the
	// schedQueue lock while the job is queued (see sched.go).
	skipped  int
	bypassed int

	state     State
	cached    bool
	coalesced int
	err       string
	result    []byte
	created   time.Time
	started   time.Time
	finished  time.Time
	trace     *telemetry.Req // nil when the submit was not traced
}

// Service is the experiment-serving engine.
type Service struct {
	cfg     Config
	run     func(ctx context.Context, spec experiments.Spec, cap *obs.Capture, lease *partition.Lease) ([]byte, error)
	now     func() time.Time
	cache   *cache.Cache
	faults  *faults.Injector
	tracer  *telemetry.Tracer
	log     *slog.Logger
	sched     *schedQueue
	admission *buckets // nil: admission control off
	machine   *partition.Machine
	policy    partition.Policy
	// partWake nudges the partition dispatcher when a lease frees up
	// (buffered size 1: the dispatcher re-scans the whole machine per
	// wake, so collapsed signals are harmless).
	partWake chan struct{}

	mu         sync.Mutex
	jobs       map[string]*job
	inflight   map[cache.Key]*job
	finished   []string // terminal job ids, oldest first (history bound)
	running    int      // jobs currently executing on a worker
	draining   bool
	seq        int
	reg        *obs.Registry
	avgRunSecs float64          // EWMA of observed job durations
	classSeen  map[string]bool  // SLO classes observed (metric keys)
	clientDone map[string]int64 // completions per client (fairness index)
	wg         sync.WaitGroup
}

// Service histogram bounds (milliseconds of host time; these are
// host-side serving metrics, unlike the simulated-time metrics the
// obs package records inside the machine).
var msBounds = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000}

// New starts a service with cfg.Workers workers.
func New(cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.MinRetryAfter <= 0 {
		cfg.MinRetryAfter = time.Second
	}
	if cfg.MaxFillBytes <= 0 {
		cfg.MaxFillBytes = 8 << 20
	}
	if cfg.Policy == "" {
		cfg.Policy = partition.PolicyFirstFit
	}
	s := &Service{
		cfg:        cfg,
		now:        cfg.now,
		cache:      cache.New(cfg.Cache),
		faults:     cfg.Faults,
		tracer:     cfg.Telemetry,
		log:        cfg.Logger,
		sched:      newSchedQueue(cfg.Sched, cfg.StarveLimit),
		admission:  newBuckets(cfg.AdmitRate, cfg.AdmitBurst, 0),
		machine:    cfg.Machine,
		policy:     cfg.Policy,
		partWake:   make(chan struct{}, 1),
		jobs:       map[string]*job{},
		inflight:   map[cache.Key]*job{},
		classSeen:  map[string]bool{},
		clientDone: map[string]int64{},
		reg:        obs.NewRegistry(),
	}
	if cfg.run != nil {
		s.run = func(ctx context.Context, spec experiments.Spec, _ *obs.Capture, _ *partition.Lease) ([]byte, error) {
			return cfg.run(ctx, spec)
		}
	} else {
		s.run = func(ctx context.Context, spec experiments.Spec, cap *obs.Capture, lease *partition.Lease) ([]byte, error) {
			opts := cfg.Options
			opts.Capture = cap
			if lease != nil {
				// The job's whole spec runs inside its partition: the
				// lease view replaces the private network, and cells run
				// sequentially — they share the one view, and a new VM
				// resets its circuits.
				opts.Config = lease.Config(opts.Config)
				opts.Parallelism = 1
			}
			rep, err := experiments.RunSpecContext(ctx, spec, experiments.RunConfig{Options: opts})
			if err != nil {
				return nil, err
			}
			return rep.Marshal()
		}
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.machine != nil {
		s.wg.Add(1)
		go s.dispatcher()
	} else {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	return s
}

// SubmitOpts carries everything about a submission besides the spec.
// The zero value is a plain untraced, unclassed, deadline-less submit.
type SubmitOpts struct {
	// Deadline bounds the job's whole lifetime (zero: none).
	Deadline time.Time
	// Class names the request's SLO class (X-Pasm-Class). SLOMs is its
	// latency target in ms; 0 with a declared class inherits the
	// class's configured target, otherwise best effort.
	Class string
	SLOMs int64
	// Client identifies the submitter for token-bucket admission and
	// the fairness index (X-Pasm-Client; empty is never rate-limited).
	Client string
	// Trace continues a propagated trace context (the X-Pasm-Trace
	// value; empty falls back to the tracer's own sampling).
	Trace string
}

// Submit admits a spec. The returned status is the job to poll — for
// a cache hit it is already done; for a coalesced submit it is the
// in-flight job every identical spec shares (its deadline, if any,
// stays the primary's). deadline zero means none.
func (s *Service) Submit(spec experiments.Spec, deadline time.Time) (JobStatus, error) {
	return s.SubmitWith(spec, SubmitOpts{Deadline: deadline})
}

// SubmitTraced is Submit continuing a propagated trace context.
func (s *Service) SubmitTraced(spec experiments.Spec, deadline time.Time, traceHeader string) (JobStatus, error) {
	return s.SubmitWith(spec, SubmitOpts{Deadline: deadline, Trace: traceHeader})
}

// SubmitWith is the full submission path: deadline, SLO class,
// client identity, and trace context. A traced submit records an
// admit span with its outcome, class, and queue depth; a queued job
// carries the trace to the worker, which adds queue and run spans and
// finishes the trace at the job's terminal state. Non-queued outcomes
// (cache hit, coalesce, rejection) finish the trace at submit return.
func (s *Service) SubmitWith(spec experiments.Spec, opts SubmitOpts) (JobStatus, error) {
	tr := s.tracer.Start(opts.Trace, "submit")
	admit := tr.Span("admit")
	if opts.Class != "" {
		admit.Attr("class", opts.Class)
	}
	st, err := s.submit(spec, opts, tr, admit)
	if err != nil {
		admit.Attr("error", err.Error())
	}
	admit.EndSpan()
	// A queued job's trace finishes at its terminal state (the worker
	// owns it now); every other outcome is terminal here.
	if err != nil || st.State.Terminal() || st.Coalesced > 0 {
		tr.Finish()
	}
	return st, err
}

func (s *Service) submit(spec experiments.Spec, opts SubmitOpts, tr *telemetry.Req, admit *telemetry.Span) (JobStatus, error) {
	deadline := opts.Deadline
	norm, err := spec.Normalize()
	if err != nil {
		admit.Attr("outcome", "bad_spec")
		return JobStatus{}, err
	}
	slo, err := s.resolveSLO(opts)
	if err != nil {
		admit.Attr("outcome", "bad_class")
		return JobStatus{}, err
	}
	if s.machine != nil && norm.PEs > s.machine.PEs() {
		admit.Attr("outcome", "bad_spec")
		return JobStatus{}, fmt.Errorf("service: spec needs pes=%d, this machine has %d PEs", norm.PEs, s.machine.PEs())
	}
	rawKey, err := norm.Key()
	if err != nil {
		admit.Attr("outcome", "bad_spec")
		return JobStatus{}, err
	}
	key := cache.Key(rawKey)

	// Fault probes happen before mu so injected delays never stall
	// other submitters. An injected admission fault is reported as
	// transient overload (503 + Retry-After), so well-behaved clients
	// retry it exactly like real backpressure. An injected cache fault
	// degrades the lookup to a miss (recompute, not reject).
	var admitErr error
	var cacheFaulted bool
	if s.faults != nil {
		if act := s.faults.Check(faults.Admit); act.Err != nil || act.Delay > 0 {
			if act.Delay > 0 {
				time.Sleep(act.Delay)
			}
			admitErr = act.Err
		}
		cacheFaulted = s.faults.Check(faults.Cache).Err != nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	admit.Attr("queue_depth", s.sched.Len())
	if s.draining {
		s.reg.Add("rejected_draining", 1)
		admit.Attr("outcome", "rejected_draining")
		return JobStatus{}, ErrDraining
	}
	s.reg.Add("submitted", 1)
	if s.admission != nil && opts.Client != "" {
		if ok, wait := s.admission.admit(opts.Client, s.now()); !ok {
			s.reg.Add("rejected_ratelimited", 1)
			admit.Attr("outcome", "rejected_ratelimited")
			return JobStatus{}, &RateLimitedError{Client: opts.Client, RetryAfter: wait}
		}
	}
	if admitErr != nil {
		s.reg.Add("rejected_injected", 1)
		admit.Attr("outcome", "rejected_injected")
		return JobStatus{}, &QueueFullError{RetryAfter: s.cfg.MinRetryAfter, Reason: "injected admission fault"}
	}
	now := s.now()

	if cacheFaulted {
		s.reg.Add("cache_faults", 1)
	}
	if val, ok := s.cacheGet(key, cacheFaulted); ok {
		j := s.newJobLocked(norm, key, deadline, now)
		j.state = StateDone
		j.cached = true
		j.result = val
		j.finished = now
		close(j.done)
		s.retireLocked(j)
		s.reg.Add("served_from_cache", 1)
		admit.Attr("outcome", "cache_hit")
		return s.statusLocked(j), nil
	}

	if prev, ok := s.inflight[key]; ok {
		prev.coalesced++
		s.reg.Add("coalesced", 1)
		admit.Attr("outcome", "coalesced").Attr("coalesced_into", prev.id).Attr("fan_in", prev.coalesced)
		return s.statusLocked(prev), nil
	}

	est := s.waitEstimateLocked()
	if !deadline.IsZero() && now.Add(est).After(deadline) {
		s.reg.Add("rejected_deadline", 1)
		admit.Attr("outcome", "rejected_deadline")
		return JobStatus{}, &QueueFullError{RetryAfter: s.floorRetry(est), Reason: "deadline unmeetable at current queue depth"}
	}

	if s.sched.Len() >= s.cfg.QueueDepth {
		s.reg.Add("rejected_queue_full", 1)
		admit.Attr("outcome", "rejected_queue_full")
		return JobStatus{}, &QueueFullError{RetryAfter: s.floorRetry(est), Reason: "queue full"}
	}
	j := s.newJobLocked(norm, key, deadline, now)
	j.trace = tr
	j.class = opts.Class
	j.slo = slo
	j.client = opts.Client
	j.cost = predictCost(norm)
	j.classPrio = classPriority(slo)
	j.seq = s.seq // newJobLocked just advanced it; arrival order
	if j.class != "" {
		s.classSeen[j.class] = true
	}
	s.sched.Push(j) // bounded: capacity was verified under mu and only Submit pushes
	s.inflight[key] = j
	s.reg.Hist("queue_depth", []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}).Observe(int64(s.sched.Len()))
	admit.Attr("outcome", "queued").Attr("job", j.id)
	return s.statusLocked(j), nil
}

// resolveSLO derives a submit's effective SLO target: an explicit
// target wins; a declared class contributes its default; an undeclared
// class with no target is best effort. Class names are bounded and
// character-restricted because they become metric keys and span attrs.
func (s *Service) resolveSLO(opts SubmitOpts) (int64, error) {
	if opts.SLOMs < 0 {
		return 0, fmt.Errorf("service: negative slo_ms %d", opts.SLOMs)
	}
	if len(opts.Class) > 64 {
		return 0, fmt.Errorf("service: class name over 64 bytes")
	}
	for i := 0; i < len(opts.Class); i++ {
		c := opts.Class[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.' {
			continue
		}
		return 0, fmt.Errorf("service: class %q has invalid character %q", opts.Class, c)
	}
	slo := opts.SLOMs
	if slo == 0 && opts.Class != "" && s.cfg.Classes != nil {
		slo = s.cfg.Classes[opts.Class]
	}
	return slo, nil
}

// cacheGet is the result-cache lookup behind the cache fault point: a
// faulted lookup misses, so the spec recomputes instead of failing.
func (s *Service) cacheGet(key cache.Key, faulted bool) ([]byte, bool) {
	if faulted {
		return nil, false
	}
	return s.cache.Get(key)
}

// newJobLocked allocates and registers a job record.
func (s *Service) newJobLocked(spec experiments.Spec, key cache.Key, deadline, now time.Time) *job {
	s.seq++
	j := &job{
		id:       fmt.Sprintf("j%d-%s", s.seq, hex.EncodeToString(key[:4])),
		spec:     spec,
		key:      key,
		deadline: deadline,
		done:     make(chan struct{}),
		state:    StateQueued,
		created:  now,
	}
	s.jobs[j.id] = j
	return j
}

// waitEstimateLocked predicts how long a newly queued job waits for a
// worker: the queued backlog divided across the pool, paced by the
// observed average job duration (half a second until measured). In
// partition mode the "pool" is how many default-size partitions the
// machine holds.
func (s *Service) waitEstimateLocked() time.Duration {
	avg := s.avgRunSecs
	if avg <= 0 {
		avg = 0.5
	}
	pool := s.cfg.Workers
	if s.machine != nil {
		if pool = s.machine.PEs() / experiments.DefaultPEs; pool < 1 {
			pool = 1
		}
	}
	backlog := float64(s.sched.Len()+1) / float64(pool)
	return time.Duration(avg * backlog * float64(time.Second))
}

func (s *Service) floorRetry(d time.Duration) time.Duration {
	if d < s.cfg.MinRetryAfter {
		return s.cfg.MinRetryAfter
	}
	return d
}

// worker executes queued jobs until the queue is closed and drained.
// Pop order is the scheduling policy (FCFS or priority-SJF).
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.Pop()
		if !ok {
			return
		}
		if !s.beginJob(j) {
			continue
		}
		result, err := s.execute(j, nil)
		s.finishJob(j, result, err, nil)
	}
}

// dispatcher is the partition-mode replacement for the worker pool:
// it pulls admitted jobs into a pending list and packs them onto free
// subcube partitions of the shared machine, waking on every arrival
// and every released lease. The configured policy picks which pending
// job a free region goes to; each placed job runs on its own
// goroutine for as long as its lease lasts, so concurrency is bounded
// by the machine's PEs, not a worker count. Drain semantics match the
// pool: once the queue closes, everything pending is still placed and
// every running job finishes before the dispatcher exits.
func (s *Service) dispatcher() {
	defer s.wg.Done()
	var pending []*job
	var running sync.WaitGroup
	for {
		// Drain every queued arrival so the policy sees the whole
		// backlog, then order it by the scheduling policy: the partition
		// policy picks among fits scanning in order, so SJF ordering
		// here is what lets urgent cheap jobs claim freed regions first.
		for {
			j, ok := s.sched.TryPop()
			if !ok {
				break
			}
			pending = append(pending, j)
		}
		s.sched.sortPending(pending)
		pending = s.shedExpired(pending)
		for {
			pes := make([]int, len(pending))
			for i, j := range pending {
				pes[i] = j.spec.PEs
			}
			idx := partition.Pick(s.machine, s.policy, pes)
			if idx < 0 {
				break
			}
			j := pending[idx]
			pending = append(pending[:idx], pending[idx+1:]...)
			lease, err := s.machine.Acquire(j.spec.PEs)
			if err != nil {
				// Unreachable in practice: Pick verified the fit and
				// only the dispatcher allocates. Fail the job rather
				// than wedge the queue.
				if s.beginJob(j) {
					s.finishJob(j, nil, err, nil)
				}
				continue
			}
			if !s.beginJob(j) { // expired at the last instant
				lease.Release()
				continue
			}
			running.Add(1)
			go s.runPartitionJob(j, lease, &running)
		}
		if s.sched.Drained() && len(pending) == 0 {
			break
		}
		select {
		case <-s.sched.arrivals:
		case <-s.partWake:
		}
	}
	running.Wait()
}

// runPartitionJob executes one job inside its partition lease, then
// returns the PEs and wakes the dispatcher.
func (s *Service) runPartitionJob(j *job, lease *partition.Lease, running *sync.WaitGroup) {
	defer running.Done()
	defer func() {
		lease.Release()
		select {
		case s.partWake <- struct{}{}:
		default:
		}
	}()
	result, err := s.execute(j, lease)
	s.finishJob(j, result, err, func(run *telemetry.Span) {
		run.Attr("partition_base", lease.Base).
			Attr("partition_pes", lease.PEs).
			Attr("policy", string(s.policy))
	})
}

// shedExpired expires every pending job whose deadline has passed,
// returning the survivors.
func (s *Service) shedExpired(pending []*job) []*job {
	kept := pending[:0]
	for _, j := range pending {
		if !j.deadline.IsZero() && s.now().After(j.deadline) {
			s.expireQueued(j)
			continue
		}
		kept = append(kept, j)
	}
	return kept
}

// beginJob transitions a dequeued job to running, or expires it if its
// deadline already passed (returning false).
func (s *Service) beginJob(j *job) bool {
	s.mu.Lock()
	now := s.now()
	if !j.deadline.IsZero() && now.After(j.deadline) {
		s.expireQueuedLocked(j, now)
		s.mu.Unlock()
		j.trace.SpanAt("queue", j.created).Attr("expired", true).EndAt(now)
		j.trace.FinishAt(now)
		s.logJob(j)
		return false
	}
	j.state = StateRunning
	j.started = now
	s.running++
	wait := now.Sub(j.created).Milliseconds()
	s.reg.Hist("queue_wait_ms", msBounds).Observe(wait)
	if s.machine != nil {
		// In partition mode the queue wait IS the wait for a free
		// partition; report it under the name the dashboards use.
		s.reg.Hist("partition_wait_ms", msBounds).Observe(wait)
	}
	s.mu.Unlock()
	j.trace.SpanAt("queue", j.created).EndAt(now)
	return true
}

// expireQueued sheds a job whose deadline passed before it got a
// worker or a partition.
func (s *Service) expireQueued(j *job) {
	s.mu.Lock()
	now := s.now()
	s.expireQueuedLocked(j, now)
	s.mu.Unlock()
	j.trace.SpanAt("queue", j.created).Attr("expired", true).EndAt(now)
	j.trace.FinishAt(now)
	s.logJob(j)
}

func (s *Service) expireQueuedLocked(j *job, now time.Time) {
	j.state = StateExpired
	j.err = "deadline exceeded before execution"
	j.finished = now
	delete(s.inflight, j.key)
	close(j.done)
	s.retireLocked(j)
	s.reg.Add("expired", 1)
}

// finishJob records a finished execution: state transition, caching,
// metrics, trace spans (decorate, when non-nil, adds mode-specific
// span attributes), and the structured log line.
func (s *Service) finishJob(j *job, result []byte, err error, decorate func(*telemetry.Span)) {
	s.mu.Lock()
	s.running--
	j.finished = s.now()
	runSecs := j.finished.Sub(j.started).Seconds()
	if s.avgRunSecs == 0 {
		s.avgRunSecs = runSecs
	} else {
		s.avgRunSecs = 0.8*s.avgRunSecs + 0.2*runSecs
	}
	s.reg.Hist("run_ms", msBounds).Observe(int64(runSecs * 1000))
	switch {
	case err != nil && errors.Is(err, context.DeadlineExceeded):
		j.state = StateExpired
		j.err = "deadline exceeded during execution"
		s.reg.Add("expired_running", 1)
	case err != nil:
		j.state = StateFailed
		j.err = err.Error()
		s.reg.Add("failed", 1)
	default:
		j.state = StateDone
		j.result = result
		s.cache.Put(j.key, result)
		s.reg.Add("completed", 1)
	}
	if j.class != "" {
		// Per-SLO-class serving outcome: end-to-end latency histogram
		// (quantiles derive in Metrics) and, when the class has a
		// target, whether this job met it.
		totalMS := j.finished.Sub(j.created).Milliseconds()
		s.reg.Hist("class_total_ms/"+j.class, msBounds).Observe(totalMS)
		if j.state == StateDone && j.slo > 0 {
			if totalMS <= j.slo {
				s.reg.Add("class_slo_ok/"+j.class, 1)
			} else {
				s.reg.Add("class_slo_miss/"+j.class, 1)
			}
		}
	}
	if j.client != "" && j.state == StateDone {
		s.clientDone[j.client]++
	}
	coalesced := j.coalesced
	delete(s.inflight, j.key)
	close(j.done)
	s.retireLocked(j)
	s.mu.Unlock()
	if j.trace != nil {
		run := j.trace.SpanAt("run", j.started).OnTrack("worker").
			Attr("outcome", string(j.state)).Attr("coalesced", coalesced)
		if j.class != "" {
			run.Attr("class", j.class)
			if j.slo > 0 {
				run.Attr("slo_ms", j.slo)
			}
		}
		if decorate != nil {
			decorate(run)
		}
		if j.err != "" {
			run.Attr("error", j.err)
		}
		run.EndAt(j.finished)
		j.trace.FinishAt(j.finished)
	}
	s.logJob(j)
}

// logJob emits one structured line per terminal job (nil logger: one
// pointer test). Reads j without mu: the job is terminal and this
// worker owns it.
func (s *Service) logJob(j *job) {
	if s.log == nil {
		return
	}
	attrs := []any{
		"job", j.id,
		"state", string(j.state),
		"queue_wait_ms", durMs(j.created, pickTime(j.started, j.finished)),
		"total_ms", durMs(j.created, j.finished),
	}
	if !j.started.IsZero() {
		attrs = append(attrs, "run_ms", durMs(j.started, j.finished))
	}
	if j.trace != nil {
		attrs = append(attrs, "trace", j.trace.Trace)
	}
	if j.err != "" {
		attrs = append(attrs, "error", j.err)
		s.log.Warn("job finished", attrs...)
		return
	}
	s.log.Info("job finished", attrs...)
}

func pickTime(a, b time.Time) time.Time {
	if !a.IsZero() {
		return a
	}
	return b
}

func durMs(from, to time.Time) float64 {
	if from.IsZero() || to.IsZero() {
		return 0
	}
	return float64(to.Sub(from).Microseconds()) / 1000
}

// execute runs one job under its deadline with panic isolation: a
// panicking run (real or injected) fails only this job — the worker
// goroutine survives, which is the pool's self-healing property. The
// run-point fault check precedes execution, so injected errors and
// panics exercise the same recovery paths real ones would. A traced
// job additionally captures its simulated event stream (bridging the
// run span to the simulated clock) and runs under a pprof label
// carrying the trace ID, so CPU profiles attribute samples to
// requests.
func (s *Service) execute(j *job, lease *partition.Lease) (result []byte, err error) {
	ctx := context.Background()
	if !j.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.reg.Add("panics_recovered", 1)
			s.mu.Unlock()
			result, err = nil, fmt.Errorf("service: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if s.faults != nil {
		if act := s.faults.Check(faults.Run); act.Err != nil || act.Panic || act.Delay > 0 {
			if act.Delay > 0 {
				select {
				case <-time.After(act.Delay):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			if act.Panic {
				panic("injected chaos panic")
			}
			if act.Err != nil {
				return nil, act.Err
			}
		}
	}
	if j.trace == nil {
		return s.run(ctx, j.spec, nil, lease)
	}
	cap := j.trace.NewSimCapture()
	start := s.now()
	pprof.Do(ctx, pprof.Labels("pasm_trace", j.trace.Trace), func(ctx context.Context) {
		result, err = s.run(ctx, j.spec, cap, lease)
	})
	j.trace.AttachSim(cap, start, s.now())
	return result, err
}

// retireLocked appends a terminal job to the bounded history, dropping
// the oldest finished jobs past MaxJobs (their cached results remain).
func (s *Service) retireLocked(j *job) {
	if !j.finished.IsZero() {
		s.reg.Hist("total_ms", msBounds).Observe(j.finished.Sub(j.created).Milliseconds())
	}
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.MaxJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Job returns a job's status snapshot.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

// Jobs lists every tracked job, newest first.
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.statusLocked(j))
	}
	// Newest first by id sequence (ids are "j<seq>-...", so creation
	// order is not lexicographic; sort by created time then id).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Created > out[k-1].Created; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Result returns a done job's result bytes.
func (s *Service) Result(id string) ([]byte, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.result, s.statusLocked(j), true
}

// Wait blocks until the job reaches a terminal state or ctx expires,
// returning the latest snapshot either way.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j), true
}

func (s *Service) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		Key:       hex.EncodeToString(j.key[:]),
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Error:     j.err,
	}
	fmtTime := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	st.Created = fmtTime(j.created)
	st.Started = fmtTime(j.started)
	st.Finished = fmtTime(j.finished)
	return st
}

// Draining reports whether graceful shutdown has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// HealthInfo is the /healthz body: liveness plus the load signals a
// cluster gateway routes on. The status code stays 200 whenever the
// process can answer — queue pressure and draining are reported in the
// body, not the code, so health checking and load reporting share one
// round trip.
type HealthInfo struct {
	Status       string `json:"status"`
	Name         string `json:"name,omitempty"`
	Draining     bool   `json:"draining"`
	QueueDepth   int    `json:"queue_depth"`
	InFlight     int    `json:"inflight"`
	CacheEntries int    `json:"cache_entries"`
	Workers      int    `json:"workers"`
	// MachinePEs and Policy describe partition mode (0/empty when the
	// instance runs the classic worker pool).
	MachinePEs int    `json:"machine_pes,omitempty"`
	Policy     string `json:"policy,omitempty"`
	Code       string `json:"code"`
}

// Health snapshots the service's load and drain state.
func (s *Service) Health() HealthInfo {
	s.mu.Lock()
	h := HealthInfo{
		Status:     "ok",
		Name:       s.cfg.Name,
		Draining:   s.draining,
		QueueDepth: s.sched.Len(),
		InFlight:   s.running,
		Workers:    s.cfg.Workers,
		Code:       experiments.CodeVersion,
	}
	if s.machine != nil {
		h.MachinePEs = s.machine.PEs()
		h.Policy = string(s.policy)
	}
	s.mu.Unlock()
	h.CacheEntries = s.cache.Len()
	return h
}

// Fill inserts an externally computed result for spec into the result
// cache — the peer-fill path: a cluster gateway offers a result served
// by one replica to the replica that owns the spec's key, so a hit
// anywhere becomes a hit everywhere. The key is recomputed from the
// spec here (never trusted from the wire), so a fill can only ever
// land under the address its spec hashes to — and the payload itself
// is validated against the spec (validateFillPayload) before it is
// stored, so a corrupt or malicious peer cannot poison the cache with
// bytes a real run of this spec could never produce. Returns whether
// the bytes were stored (false: already cached, counted as a
// duplicate).
func (s *Service) Fill(spec experiments.Spec, result []byte) (bool, error) {
	if len(result) == 0 {
		return false, errors.New("service: empty fill payload")
	}
	norm, err := spec.Normalize()
	if err != nil {
		return false, err
	}
	rawKey, err := norm.Key()
	if err != nil {
		return false, err
	}
	key := cache.Key(rawKey)
	if err := validateFillPayload(norm, result); err != nil {
		s.mu.Lock()
		s.reg.Add("peer_fill_rejects", 1)
		s.mu.Unlock()
		return false, err
	}
	stored := !s.cache.Contains(key)
	if stored {
		s.cache.Put(key, result)
	}
	s.mu.Lock()
	if stored {
		s.reg.Add("peer_fills", 1)
	} else {
		s.reg.Add("peer_fill_dups", 1)
	}
	s.mu.Unlock()
	return stored, nil
}

// validateFillPayload checks that result could only be the report
// document a real run of norm produces: it must parse as a known-
// schema report with no unknown fields, re-marshal byte-identically
// (the canonical encoding every producer emits — so the byte-identity
// guarantee failover and hedging rest on survives fills), carry no
// host-timing fields (those only appear on the non-deterministic,
// non-cacheable path), and agree with the spec on every parameter the
// report embeds (seed, full, observe, the machine size, and the
// experiment list). A
// forged payload passing all of this is still shaped exactly like a
// legitimate document for this spec; arbitrary bytes can never land in
// the cache.
func validateFillPayload(norm experiments.Spec, result []byte) error {
	var rep experiments.Report
	dec := json.NewDecoder(bytes.NewReader(result))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("service: fill payload is not a report document: %w", err)
	}
	if rep.Schema != experiments.SchemaV22 {
		return fmt.Errorf("service: fill payload has unknown schema %q", rep.Schema)
	}
	canon, err := rep.Marshal()
	if err != nil || !bytes.Equal(canon, result) {
		return errors.New("service: fill payload is not the canonical report encoding")
	}
	if rep.HostSeconds != 0 || rep.Parallel != 0 {
		return errors.New("service: fill payload carries host timings (not a deterministic document)")
	}
	if rep.Seed != norm.Seed || rep.Full != norm.Full || rep.Observe != norm.Observe || rep.PEs != norm.PEs {
		return errors.New("service: fill payload parameters do not match the spec")
	}
	want := append([]string(nil), norm.Exps...)
	if len(norm.Cells) > 0 {
		want = append(want, "custom")
	}
	if len(rep.Experiments) != len(want) {
		return fmt.Errorf("service: fill payload has %d experiments, spec runs %d", len(rep.Experiments), len(want))
	}
	for i, e := range rep.Experiments {
		if e.Name != want[i] {
			return fmt.Errorf("service: fill payload experiment %d is %q, spec runs %q", i, e.Name, want[i])
		}
		if e.HostSeconds != 0 {
			return errors.New("service: fill payload carries per-experiment host timings")
		}
	}
	return nil
}

// QueueLen returns the number of admitted-but-unstarted jobs.
func (s *Service) QueueLen() int { return s.sched.Len() }

// Metrics returns the service counters and histograms (obs-flattened,
// "service/" prefix), the cache counters ("cache/" prefix), and
// current gauges.
func (s *Service) Metrics() map[string]float64 {
	s.mu.Lock()
	m := s.reg.Flatten("service/")
	for _, name := range []string{"submitted", "completed", "failed", "expired",
		"coalesced", "served_from_cache", "rejected_queue_full",
		"rejected_deadline", "rejected_draining", "rejected_injected",
		"rejected_ratelimited", "panics_recovered", "expired_running",
		"cache_faults", "retried_submits", "peer_fills", "peer_fill_dups",
		"peer_fill_rejects"} {
		if _, ok := m["service/"+name]; !ok {
			m["service/"+name] = 0
		}
	}
	// v2: derived p50/p95/p99 for the per-stage host-latency histograms
	// (queue wait, run, total, partition wait) so dashboards and loadgen
	// get quantiles without scraping buckets.
	for _, name := range []string{"queue_wait_ms", "run_ms", "total_ms", "partition_wait_ms"} {
		if h := s.reg.Histogram(name); h != nil && h.N > 0 {
			for _, q := range telemetry.Quantiles {
				m["service/"+name+"/"+q.Key] = h.Quantile(q.Q)
			}
		}
	}
	// v3: per-SLO-class latency quantiles, the scheduler's identity,
	// and Jain's fairness index over per-client completions.
	for class := range s.classSeen {
		if h := s.reg.Histogram("class_total_ms/" + class); h != nil && h.N > 0 {
			for _, q := range telemetry.Quantiles {
				m["service/class_total_ms/"+class+"/"+q.Key] = h.Quantile(q.Q)
			}
		}
	}
	if len(s.clientDone) > 0 {
		counts := make([]float64, 0, len(s.clientDone))
		for _, n := range s.clientDone {
			counts = append(counts, float64(n))
		}
		m["service/fairness_jain"] = stats.Jain(counts)
		m["service/fairness_clients"] = float64(len(s.clientDone))
	}
	if s.sched.mode == SchedSJF {
		m["service/sched_sjf"] = 1
	} else {
		m["service/sched_sjf"] = 0
	}
	m["service/sched_promoted"] = float64(s.sched.Promoted())
	if s.admission != nil {
		m["service/admission_clients"] = float64(s.admission.clients())
	}
	m["service/queue_depth"] = float64(s.sched.Len())
	m["service/queue_capacity"] = float64(s.cfg.QueueDepth)
	m["service/inflight"] = float64(s.running)
	m["service/workers"] = float64(s.cfg.Workers)
	m["service/jobs_tracked"] = float64(len(s.jobs))
	if s.draining {
		m["service/draining"] = 1
	} else {
		m["service/draining"] = 0
	}
	s.mu.Unlock()
	if s.machine != nil {
		for k, v := range s.machine.Metrics("partition/") {
			m[k] = v
		}
	}
	for k, v := range s.tracer.Metrics("telemetry/") {
		m[k] = v
	}
	for k, v := range s.cache.Metrics("cache/") {
		m[k] = v
	}
	for k, v := range s.faults.Metrics("faults/") {
		m[k] = v
	}
	return m
}

// Shutdown begins draining: new submissions fail with ErrDraining,
// every already-accepted job still executes, and Shutdown returns when
// the queue is empty and all workers have stopped (or ctx expires, in
// which case the remaining jobs keep draining in the background).
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.sched.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown interrupted with work still draining: %w", ctx.Err())
	}
}
