package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// gatedRunner counts executions and blocks each one until released.
type gatedRunner struct {
	mu    sync.Mutex
	runs  int32
	gate  chan struct{}
	bytes []byte
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{gate: make(chan struct{}), bytes: []byte(`{"fake":"report"}` + "\n")}
}

func (g *gatedRunner) run(ctx context.Context, spec experiments.Spec) ([]byte, error) {
	atomic.AddInt32(&g.runs, 1)
	<-g.gate
	return g.bytes, nil
}

func (g *gatedRunner) release() { close(g.gate) }

func specN(seed uint32) experiments.Spec {
	return experiments.Spec{Exps: []string{"table1"}, Seed: seed}
}

func waitState(t *testing.T, s *Service, id string, want State) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, ok := s.Wait(ctx, id)
	if !ok {
		t.Fatalf("job %s unknown", id)
	}
	if st.State != want {
		t.Fatalf("job %s state = %s, want %s (err %q)", id, st.State, want, st.Error)
	}
	return st
}

// TestCoalescing: N identical in-flight submits share one execution
// and one job, and all readers get identical bytes.
func TestCoalescing(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 8, run: g.run})
	defer s.Shutdown(context.Background())

	const n = 5
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := s.Submit(specN(1988), time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Errorf("coalesced submit got job %s, want shared %s", id, ids[0])
		}
	}
	g.release()
	st := waitState(t, s, ids[0], StateDone)
	if st.Coalesced != n-1 {
		t.Errorf("coalesced count = %d, want %d", st.Coalesced, n-1)
	}
	if got := atomic.LoadInt32(&g.runs); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	res, _, ok := s.Result(ids[0])
	if !ok || string(res) != string(g.bytes) {
		t.Errorf("result = %q, %v", res, ok)
	}
	m := s.Metrics()
	if m["service/coalesced"] != n-1 || m["service/completed"] != 1 {
		t.Errorf("metrics: coalesced=%v completed=%v", m["service/coalesced"], m["service/completed"])
	}
}

// TestConcurrentCoalescing hammers one spec from many goroutines: the
// singleflight property must hold under contention (the satellite's
// "N identical submits -> 1 execution, N identical results").
func TestConcurrentCoalescing(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 2, QueueDepth: 8, run: g.run})
	defer s.Shutdown(context.Background())

	const n = 32
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(specN(7), time.Time{})
			ids[i], errs[i] = st.ID, err
		}(i)
	}
	wg.Wait()
	g.release()
	for i := range ids {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("submit %d got job %s, want %s", i, ids[i], ids[0])
		}
	}
	waitState(t, s, ids[0], StateDone)
	if got := atomic.LoadInt32(&g.runs); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	for i := 0; i < n; i++ {
		res, _, ok := s.Result(ids[i])
		if !ok || string(res) != string(g.bytes) {
			t.Fatalf("reader %d: result %q, %v", i, res, ok)
		}
	}
}

// TestQueueFull: with one busy worker and a depth-1 queue, the third
// distinct spec is rejected with a Retry-After estimate.
func TestQueueFull(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 1, run: g.run, MinRetryAfter: 2 * time.Second})
	defer func() { g.release(); s.Shutdown(context.Background()) }()

	a, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until A is running so the queue slot is truly free for B.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := s.Job(a.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(specN(2), time.Time{}); err != nil {
		t.Fatalf("B should queue: %v", err)
	}
	_, err = s.Submit(specN(3), time.Time{})
	full, ok := err.(*QueueFullError)
	if !ok {
		t.Fatalf("C: err = %v, want QueueFullError", err)
	}
	if full.RetryAfter < 2*time.Second {
		t.Errorf("RetryAfter = %s, below MinRetryAfter floor", full.RetryAfter)
	}
	if m := s.Metrics(); m["service/rejected_queue_full"] != 1 {
		t.Errorf("rejected_queue_full = %v, want 1", m["service/rejected_queue_full"])
	}
}

// fakeClock is a settable clock for deadline tests.
type fakeClock struct{ nanos atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.nanos.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.nanos.Add(int64(d)) }

// TestDeadlineAdmission: a deadline the queue-wait estimate cannot
// meet is rejected at admission; a queued job whose deadline passes
// before a worker picks it up expires without executing.
func TestDeadlineAdmission(t *testing.T) {
	clk := &fakeClock{}
	clk.advance(time.Hour) // non-zero epoch
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, run: g.run, now: clk.now})
	defer s.Shutdown(context.Background())

	a, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// No duration observed yet: the estimate falls back to 0.5s per
	// backlog slot, so a 10ms deadline is unmeetable.
	_, err = s.Submit(specN(2), clk.now().Add(10*time.Millisecond))
	if _, ok := err.(*QueueFullError); !ok {
		t.Fatalf("tight deadline: err = %v, want QueueFullError", err)
	}
	// A generous deadline is admitted... but then the clock jumps past
	// it while the worker is still busy with A, so it expires unrun.
	b, err := s.Submit(specN(3), clk.now().Add(10*time.Second))
	if err != nil {
		t.Fatalf("loose deadline: %v", err)
	}
	clk.advance(time.Minute)
	g.release() // A finishes; worker dequeues B past its deadline
	waitState(t, s, a.ID, StateDone)
	st := waitState(t, s, b.ID, StateExpired)
	if st.Error == "" {
		t.Error("expired job carries no error")
	}
	runs := atomic.LoadInt32(&g.runs)
	if runs != 1 {
		t.Errorf("executions = %d, want 1 (expired job must not run)", runs)
	}
	m := s.Metrics()
	if m["service/expired"] != 1 || m["service/rejected_deadline"] != 1 {
		t.Errorf("metrics: expired=%v rejected_deadline=%v, want 1, 1",
			m["service/expired"], m["service/rejected_deadline"])
	}
}

// TestCacheHitPath: a finished spec is served from the cache on
// resubmit — done immediately, marked cached, same bytes, no second
// execution.
func TestCacheHitPath(t *testing.T) {
	g := newGatedRunner()
	g.release() // run instantly
	s := New(Config{Workers: 1, QueueDepth: 4, run: g.run})
	defer s.Shutdown(context.Background())

	first, err := s.Submit(specN(1988), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateDone)

	second, err := s.Submit(specN(1988), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.Cached {
		t.Fatalf("resubmit: state=%s cached=%v, want done+cached", second.State, second.Cached)
	}
	if second.ID == first.ID {
		t.Error("cache hit should mint a fresh job id")
	}
	res, _, _ := s.Result(second.ID)
	orig, _, _ := s.Result(first.ID)
	if string(res) != string(orig) {
		t.Error("cached bytes differ from original")
	}
	if got := atomic.LoadInt32(&g.runs); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	m := s.Metrics()
	if m["service/served_from_cache"] != 1 || m["cache/hits"] != 1 {
		t.Errorf("metrics: served_from_cache=%v cache/hits=%v", m["service/served_from_cache"], m["cache/hits"])
	}
}

// TestGracefulDrain: shutdown rejects new work but completes every
// accepted job.
func TestGracefulDrain(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 4, run: g.run})

	a, _ := s.Submit(specN(1), time.Time{})
	b, err := s.Submit(specN(2), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Draining begins promptly; new submissions bounce.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("service never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(specN(3), time.Time{}); err != ErrDraining {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
	g.release()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		st, ok := s.Job(id)
		if !ok || st.State != StateDone {
			t.Errorf("accepted job %s lost in drain: %+v ok=%v", id, st, ok)
		}
	}
}

// TestFailedJob: an execution error lands the job in failed with the
// error text, and nothing is cached.
func TestFailedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, run: func(context.Context, experiments.Spec) ([]byte, error) {
		return nil, fmt.Errorf("machine on fire")
	}})
	defer s.Shutdown(context.Background())
	st, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, st.ID, StateFailed)
	if got.Error != "machine on fire" {
		t.Errorf("error = %q", got.Error)
	}
	// The failure is not cached: resubmitting tries again.
	st2, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cached {
		t.Error("failed result must not be served from cache")
	}
}

// TestBadSpecRejected: an invalid spec never reaches the queue.
func TestBadSpecRejected(t *testing.T) {
	s := New(Config{Workers: 1, run: newGatedRunner().run})
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(experiments.Spec{Exps: []string{"fig99"}}, time.Time{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if m := s.Metrics(); m["service/jobs_tracked"] != 0 {
		t.Errorf("bad spec left a tracked job: %v", m["service/jobs_tracked"])
	}
}

// TestHealthSnapshot: Health reports queue depth, in-flight work, the
// drain flag, and the instance name — the load signals a cluster
// gateway routes on.
func TestHealthSnapshot(t *testing.T) {
	g := newGatedRunner()
	s := New(Config{Workers: 1, QueueDepth: 8, Name: "r0", run: g.run})

	h := s.Health()
	if h.Status != "ok" || h.Name != "r0" || h.Draining || h.QueueDepth != 0 || h.InFlight != 0 {
		t.Fatalf("idle health = %+v", h)
	}
	if h.Workers != 1 || h.Code != experiments.CodeVersion {
		t.Fatalf("health constants = %+v", h)
	}

	// One running (gated) job plus one queued behind it.
	a, err := s.Submit(specN(1), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, a.ID)
	if _, err := s.Submit(specN(2), time.Time{}); err != nil {
		t.Fatal(err)
	}
	h = s.Health()
	if h.InFlight != 1 || h.QueueDepth != 1 {
		t.Fatalf("busy health = %+v, want inflight 1 queue 1", h)
	}

	g.release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	h = s.Health()
	if !h.Draining || h.InFlight != 0 || h.QueueDepth != 0 {
		t.Fatalf("drained health = %+v", h)
	}
	if m := s.Metrics(); m["service/inflight"] != 0 {
		t.Fatalf("service/inflight = %v after drain", m["service/inflight"])
	}
	if h.CacheEntries != 2 {
		t.Fatalf("cache_entries = %d, want 2 completed results", h.CacheEntries)
	}
}

func waitRunning(t *testing.T, s *Service, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := s.Job(id); ok && st.State == StateRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached running", id)
}

// fillBody builds the canonical report document a real run of specN
// (seed) would produce enough of to pass fill validation.
func fillBody(t *testing.T, seed uint32) []byte {
	t.Helper()
	rep := &experiments.Report{
		Schema:      experiments.SchemaV22,
		PEs:         experiments.DefaultPEs,
		Seed:        seed,
		Experiments: []experiments.ReportExperiment{{Name: "table1"}},
	}
	body, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestPeerFill: a filled result is served as a cache hit without
// executing anything; refills of the same key count as duplicates;
// bad specs and empty payloads are rejected.
func TestPeerFill(t *testing.T) {
	ran := false
	s := New(Config{Workers: 1, QueueDepth: 4, run: func(context.Context, experiments.Spec) ([]byte, error) {
		ran = true
		return []byte("computed\n"), nil
	}})
	defer s.Shutdown(context.Background())

	body := fillBody(t, 7)
	stored, err := s.Fill(specN(7), body)
	if err != nil || !stored {
		t.Fatalf("Fill = %v, %v; want stored", stored, err)
	}
	if stored, err = s.Fill(specN(7), body); err != nil || stored {
		t.Fatalf("refill = %v, %v; want duplicate", stored, err)
	}

	st, err := s.Submit(specN(7), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached || st.State != StateDone {
		t.Fatalf("submit after fill = %+v, want cached done", st)
	}
	res, _, ok := s.Result(st.ID)
	if !ok || string(res) != string(body) {
		t.Fatalf("filled result = %q, want the filled bytes", res)
	}
	if ran {
		t.Error("fill-satisfied submit executed the runner")
	}

	if _, err := s.Fill(specN(8), nil); err == nil {
		t.Error("empty fill payload accepted")
	}
	if _, err := s.Fill(experiments.Spec{}, body); err == nil {
		t.Error("invalid spec fill accepted")
	}
	m := s.Metrics()
	if m["service/peer_fills"] != 1 || m["service/peer_fill_dups"] != 1 {
		t.Errorf("fill metrics = %v / %v, want 1 / 1", m["service/peer_fills"], m["service/peer_fill_dups"])
	}
}

// TestFillValidation: the fill path refuses any payload that is not
// the canonical report document of the spec it claims to be for —
// arbitrary bytes, non-canonical encodings, mismatched parameters,
// wrong experiment lists, and host-timing-bearing documents all bounce
// without touching the cache.
func TestFillValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, run: func(context.Context, experiments.Spec) ([]byte, error) {
		return []byte("computed\n"), nil
	}})
	defer s.Shutdown(context.Background())

	cases := []struct {
		name string
		body []byte
	}{
		{"arbitrary bytes", []byte(`{"filled":"report"}` + "\n")},
		{"unknown field", []byte(`{"schema":"pasmbench/v2.2","full":false,"pes":16,"seed":7,"observe":false,"experiments":[{"name":"table1"}],"evil":1}` + "\n")},
		{"non-canonical encoding", []byte(`{"schema":"pasmbench/v2.2","full":false,"pes":16,"seed":7,"observe":false,"experiments":[{"name":"table1"}]}` + "\n")},
		{"wrong seed", fillBody(t, 8)},
		{"stale schema", func() []byte {
			rep := &experiments.Report{Schema: experiments.SchemaV21, PEs: experiments.DefaultPEs, Seed: 7,
				Experiments: []experiments.ReportExperiment{{Name: "table1"}}}
			b, _ := rep.Marshal()
			return b
		}()},
		{"wrong pes", func() []byte {
			rep := &experiments.Report{Schema: experiments.SchemaV22, PEs: 64, Seed: 7,
				Experiments: []experiments.ReportExperiment{{Name: "table1"}}}
			b, _ := rep.Marshal()
			return b
		}()},
		{"wrong experiments", func() []byte {
			rep := &experiments.Report{Schema: experiments.SchemaV22, PEs: experiments.DefaultPEs, Seed: 7,
				Experiments: []experiments.ReportExperiment{{Name: "fig6"}}}
			b, _ := rep.Marshal()
			return b
		}()},
		{"host timings", func() []byte {
			rep := &experiments.Report{Schema: experiments.SchemaV22, PEs: experiments.DefaultPEs, Seed: 7, HostSeconds: 1.5,
				Experiments: []experiments.ReportExperiment{{Name: "table1"}}}
			b, _ := rep.Marshal()
			return b
		}()},
		{"bad schema", func() []byte {
			rep := &experiments.Report{Schema: "pasmbench/v999", Seed: 7,
				Experiments: []experiments.ReportExperiment{{Name: "table1"}}}
			b, _ := rep.Marshal()
			return b
		}()},
	}
	for _, tc := range cases {
		if stored, err := s.Fill(specN(7), tc.body); err == nil {
			t.Errorf("%s: accepted (stored=%v), want rejection", tc.name, stored)
		}
	}
	// Nothing landed: a fresh submit must execute, not hit the cache.
	st, err := s.Submit(specN(7), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached {
		t.Error("rejected fill still poisoned the cache")
	}
	if m := s.Metrics(); m["service/peer_fill_rejects"] != float64(len(cases)) {
		t.Errorf("peer_fill_rejects = %v, want %d", m["service/peer_fill_rejects"], len(cases))
	}
}
