// Package prng provides the deterministic uniform random number
// generator used to fill the B matrices of the experiments. The paper
// used "a uniformly distributed random number generator" and reused
// the same data sets across all algorithm versions with the same n and
// p; a fixed-seed linear congruential generator reproduces that
// protocol exactly while keeping every run of this repository
// bit-identical.
package prng

// LCG is a 32-bit linear congruential generator (Numerical Recipes
// constants). The high 16 bits are used for output, which have much
// better statistical quality than the low bits.
type LCG struct {
	state uint32
}

// New returns a generator with the given seed.
func New(seed uint32) *LCG {
	return &LCG{state: seed}
}

// next advances the state.
func (g *LCG) next() uint32 {
	g.state = g.state*1664525 + 1013904223
	return g.state
}

// Uint16 returns a uniformly distributed 16-bit value.
func (g *LCG) Uint16() uint16 {
	return uint16(g.next() >> 16)
}

// Uint32 returns a uniformly distributed 32-bit value built from two
// draws.
func (g *LCG) Uint32() uint32 {
	return uint32(g.Uint16())<<16 | uint32(g.Uint16())
}

// Intn returns a value in [0, n). n must be positive.
func (g *LCG) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// 32 bits of state are plenty for the experiment sizes here; use
	// the high bits via multiply-shift to avoid modulo bias hot spots.
	return int(uint64(g.next()) * uint64(n) >> 32)
}

// Fill fills dst with uniform 16-bit values.
func (g *LCG) Fill(dst []uint16) {
	for i := range dst {
		dst[i] = g.Uint16()
	}
}
