package prng

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint16() != b.Uint16() {
			t.Fatalf("diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint16() == b.Uint16() {
			same++
		}
	}
	if same > 10 {
		t.Errorf("seeds 1 and 2 coincide on %d of 1000 draws", same)
	}
}

func TestUniformBitBalance(t *testing.T) {
	// The experiments depend on the multiplier bit count being
	// Binomial(16, 1/2)-distributed: mean 8 ones per value.
	g := New(42)
	const n = 100000
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount16(g.Uint16())
	}
	mean := float64(total) / n
	if mean < 7.9 || mean > 8.1 {
		t.Errorf("mean ones per 16-bit draw = %.3f, want about 8", mean)
	}
}

func TestIntnRange(t *testing.T) {
	g := New(7)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := g.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Errorf("Intn(10): value %d drawn %d/100000 times", v, c)
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFill(t *testing.T) {
	g := New(9)
	buf := make([]uint16, 64)
	g.Fill(buf)
	g2 := New(9)
	for i, v := range buf {
		if v != g2.Uint16() {
			t.Fatalf("Fill diverges from Uint16 at %d", i)
		}
	}
}

func TestUint32Property(t *testing.T) {
	// Uint32 must equal two consecutive Uint16 draws.
	f := func(seed uint32) bool {
		a, b := New(seed), New(seed)
		v := a.Uint32()
		hi, lo := b.Uint16(), b.Uint16()
		return v == uint32(hi)<<16|uint32(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
