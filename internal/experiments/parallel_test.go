package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// render adapts each experiment to a common (Options) -> string shape.
type renderCase struct {
	name string
	run  func(Options) (string, error)
}

func renderCases() []renderCase {
	return []renderCase{
		{"table1", func(o Options) (string, error) {
			r, err := Table1(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig6", func(o Options) (string, error) {
			r, err := Fig6(o)
			if err != nil {
				return "", err
			}
			return r.Render() + r.Plot(), nil
		}},
		{"fig7", func(o Options) (string, error) {
			r, err := Fig7(o)
			if err != nil {
				return "", err
			}
			return r.Render() + r.Plot(), nil
		}},
		{"breakdown1", func(o Options) (string, error) {
			r, err := Breakdown(o, 1)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"breakdown30", func(o Options) (string, error) {
			r, err := Breakdown(o, 30)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig11", func(o Options) (string, error) {
			r, err := Fig11(o)
			if err != nil {
				return "", err
			}
			return r.Render() + r.Plot(), nil
		}},
		{"fig12", func(o Options) (string, error) {
			r, err := Fig12(o)
			if err != nil {
				return "", err
			}
			return r.Render() + r.Plot(), nil
		}},
		{"ext-crossover", func(o Options) (string, error) {
			r, err := CrossoverVsP(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ext-model", func(o Options) (string, error) {
			r, err := ModelValidation(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ext-fault", func(o Options) (string, error) {
			r, err := FaultTolerance(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ext-mixed", func(o Options) (string, error) {
			r, err := MixedMode(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ext-workloads", func(o Options) (string, error) {
			r, err := Workloads(o)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
}

// TestParallelismDeterminism: every experiment must render
// byte-identical output whether its cells run serially or fanned out
// across parallel host workers — the paper's tables are simulated
// measurements, and host-level concurrency must not perturb them.
func TestParallelismDeterminism(t *testing.T) {
	par := runtime.NumCPU()
	if par < 2 {
		par = 4 // still exercises the concurrent code path
	}
	for _, tc := range renderCases() {
		t.Run(tc.name, func(t *testing.T) {
			serialOpts := DefaultOptions()
			serialOpts.Parallelism = 1
			parOpts := DefaultOptions()
			parOpts.Parallelism = par

			serial, err := tc.run(serialOpts)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			parallel, err := tc.run(parOpts)
			if err != nil {
				t.Fatalf("parallel (%d workers): %v", par, err)
			}
			if serial != parallel {
				t.Errorf("output differs between 1 and %d workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
					par, serial, parallel)
			}
		})
	}
}

// TestForEachCellErrorsDeterministic: when several cells fail, the
// lowest-indexed cell's error is reported regardless of worker count.
func TestForEachCellErrorsDeterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := forEachCell(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: got %v, want cell 3 failed", workers, err)
		}
	}
}
