// Package experiments reproduces every table and figure of the
// paper's evaluation (Table 1 and Figures 6-12): workload generation,
// parameter sweeps, all four program variants, and renderers that
// print the same rows and series the paper reports. Absolute numbers
// come from the simulated prototype, so the shape of each result —
// who wins, by what factor, where the crossovers fall — is the claim
// being reproduced, not the raw cycle counts.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/matmul"
	"repro/internal/obs"
	"repro/internal/pasm"
)

// Options configures an experiment run.
type Options struct {
	// Config is the machine configuration (DefaultConfig unless a
	// parameter is being ablated).
	Config pasm.Config
	// Full selects the paper's complete problem-size set
	// {4,8,16,64,128,256}; otherwise a quick set capped at 64 is used
	// (the large sizes take minutes of host time).
	Full bool
	// Seed drives the random B matrices; the same B is used for every
	// program variant at the same n, following the paper's protocol.
	Seed uint32
	// Parallelism is the number of host goroutines running independent
	// experiment cells concurrently. 0 means one per CPU; 1 means
	// serial. Every cell simulates its own virtual machine, so results
	// are identical for any value — only host wall-clock changes.
	Parallelism int
	// Observe attaches a metrics recorder (package obs) to every cell
	// and aggregates the per-cell registries into the experiment's
	// Summary under "obs/" keys. Purely additive: the v1 summary keys
	// and rendered tables are unchanged.
	Observe bool
	// Capture, when non-nil, retains whole-cell event streams for the
	// serving stack's request tracing (telemetry links them to the
	// request's run span). Bounded by the Capture itself; captured
	// events never enter the report, so byte-identity is untouched.
	Capture *obs.Capture
	// InterpTier names the interpreter tier the Config's Disable*
	// knobs select ("super", "table", "reference"); informational
	// only, surfaced in the report's Timings-gated fields. Empty means
	// the default "super".
	InterpTier string

	// memo receives the segment-cache hit/miss counters of every run
	// result an experiment produces. RunSpec wires it so a report can
	// total the cache's effectiveness; nil outside RunSpec.
	memo *memoTally
}

// memoTally accumulates segment-cache counters across a spec's
// experiment cells. Atomic because cells run on parallel host workers;
// summation is commutative, so the totals are deterministic for any
// parallelism.
type memoTally struct {
	hits, misses int64
}

// tally folds one run result's segment-cache counters into the spec's
// totals (a no-op outside RunSpec).
func (o Options) tally(res pasm.RunResult) {
	if o.memo == nil {
		return
	}
	atomic.AddInt64(&o.memo.hits, res.MemoHits)
	atomic.AddInt64(&o.memo.misses, res.MemoMisses)
}

// DefaultOptions returns quick-set options with the prototype config.
func DefaultOptions() Options {
	return Options{Config: pasm.DefaultConfig(), Seed: 1988}
}

// sizes returns the problem-size sweep.
func (o Options) sizes() []int {
	if o.Full {
		return []int{4, 8, 16, 64, 128, 256} // the paper's set
	}
	return []int{4, 8, 16, 32, 64}
}

// runner caches operand matrices per n and executes specs. The cache
// is mutex-guarded so cells running on parallel host workers can
// share it; execAll additionally pre-warms it so the hot path is
// read-only.
type runner struct {
	opts Options
	obs  *observer
	mu   sync.Mutex
	as   map[int]matmul.Matrix
	bs   map[int]matmul.Matrix
}

func newRunner(opts Options) *runner {
	return &runner{opts: opts, obs: newObserver(opts),
		as: map[int]matmul.Matrix{}, bs: map[int]matmul.Matrix{}}
}

// operands returns the paper's operand protocol for size n: identity A
// (multiplicand data does not affect MULU timing, and makes results
// trivially checkable) and seeded-random B.
func (r *runner) operands(n int) (matmul.Matrix, matmul.Matrix) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.as[n]
	if !ok {
		a = matmul.Identity(n)
		r.as[n] = a
	}
	b, ok := r.bs[n]
	if !ok {
		b = matmul.Random(n, r.opts.Seed+uint32(n))
		r.bs[n] = b
	}
	return a, b
}

// exec runs one spec and verifies the product against B (A is the
// identity, so C must equal B).
func (r *runner) exec(spec matmul.Spec) (pasm.RunResult, error) {
	a, b := r.operands(spec.N)
	cfg, rec := r.obs.cell(r.opts.Config)
	res, c, err := matmul.Execute(cfg, spec, a, b)
	if err != nil {
		return pasm.RunResult{}, err
	}
	r.opts.tally(res)
	r.obs.done(rec)
	if !matmul.Equal(c, b) {
		return pasm.RunResult{}, fmt.Errorf("experiments: %s n=%d p=%d muls=%d computed a wrong product",
			spec.Mode, spec.N, spec.P, spec.Muls)
	}
	return res, nil
}

// table rendering helpers ----------------------------------------------

type table struct {
	b strings.Builder
}

func (t *table) title(s string) {
	t.b.WriteString(s)
	t.b.WriteByte('\n')
	t.b.WriteString(strings.Repeat("=", len(s)))
	t.b.WriteByte('\n')
}

func (t *table) row(cols ...string) {
	t.b.WriteString(strings.Join(cols, "  "))
	t.b.WriteByte('\n')
}

func (t *table) String() string { return t.b.String() }

func cyc(v int64) string { return fmt.Sprintf("%12d", v) }
