package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/matmul"
	"repro/internal/pasm"
)

// workers resolves the effective host worker count for cell fan-out.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// forEachCell runs fn(0), ..., fn(n-1) on up to workers host
// goroutines. Cells must be independent. The call returns the error of
// the lowest-indexed failing cell (regardless of which goroutine hit
// it first), so error reporting is as deterministic as the results.
func forEachCell(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next int64 = -1
	var wg sync.WaitGroup
	for j := 0; j < workers; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// execAll runs every spec across the option's host workers and returns
// the results in spec order. Each cell builds and simulates its own
// virtual machine, so the cells are embarrassingly parallel; the
// shared operand cache is pre-warmed serially so the concurrent phase
// only reads it.
func (r *runner) execAll(specs []matmul.Spec) ([]pasm.RunResult, error) {
	for _, s := range specs {
		r.operands(s.N)
	}
	out := make([]pasm.RunResult, len(specs))
	err := forEachCell(r.opts.workers(), len(specs), func(i int) error {
		res, err := r.exec(specs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
