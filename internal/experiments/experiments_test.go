package experiments

import (
	"strings"
	"testing"
)

// Quick options with small sizes so the full suite stays fast; the
// paper-scale sweeps run through cmd/pasmbench.
func quickOpts() Options {
	o := DefaultOptions()
	return o
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	mips := map[string]map[string]float64{}
	for _, r := range res.Rows {
		if r.MIPS <= 0 || r.MIPS > 8 {
			t.Errorf("%s %s: implausible MIPS %.3f", r.Instruction, r.Mode, r.MIPS)
		}
		if mips[r.Instruction] == nil {
			mips[r.Instruction] = map[string]float64{}
		}
		mips[r.Instruction][r.Mode] = r.MIPS
	}
	// The paper's Table 1 property: SIMD instruction issue is faster
	// than MIMD for both instruction types (queue SRAM vs PE DRAM).
	for instr, m := range mips {
		if m["SIMD"] <= m["MIMD"] {
			t.Errorf("%s: SIMD %.3f MIPS not faster than MIMD %.3f", instr, m["SIMD"], m["MIMD"])
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "add.w") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		sisd := row.Cycles["SISD"]
		for _, mode := range []string{"SIMD", "MIMD", "S/MIMD"} {
			if row.Cycles[mode] >= sisd {
				t.Errorf("n=%d: %s (%d) not faster than SISD (%d)", row.N, mode, row.Cycles[mode], sisd)
			}
		}
		// SIMD is fastest at one multiply per inner loop.
		if row.Cycles["SIMD"] >= row.Cycles["S/MIMD"] || row.Cycles["SIMD"] >= row.Cycles["MIMD"] {
			t.Errorf("n=%d: SIMD not fastest: %v", row.N, row.Cycles)
		}
	}
	// The parallel improvement approaches a factor of about p for
	// large n.
	last := res.Rows[len(res.Rows)-1]
	ratio := float64(last.Cycles["SISD"]) / float64(last.Cycles["S/MIMD"])
	if ratio < float64(res.P)*0.6 || ratio > float64(res.P)*1.5 {
		t.Errorf("SISD/S-MIMD ratio %.2f not near p=%d", ratio, res.P)
	}
	// T_MIMD / T_S/MIMD decreases as n increases (communication's
	// O(n^2) share shrinks).
	first := res.Rows[0]
	r0 := float64(first.Cycles["MIMD"]) / float64(first.Cycles["S/MIMD"])
	r1 := float64(last.Cycles["MIMD"]) / float64(last.Cycles["S/MIMD"])
	if r1 > r0 {
		t.Errorf("MIMD/S-MIMD ratio grew with n: %.4f -> %.4f", r0, r1)
	}
}

func TestFig7CrossoverNearFourteen(t *testing.T) {
	res, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint winners per the paper.
	if res.Rows[0].Winner != "SIMD" {
		t.Errorf("at 1 multiply, winner = %s, want SIMD", res.Rows[0].Winner)
	}
	lastRow := res.Rows[len(res.Rows)-1]
	if lastRow.Winner != "S/MIMD" {
		t.Errorf("at %d multiplies, winner = %s, want S/MIMD", lastRow.Muls, lastRow.Winner)
	}
	// The paper's crossover is "approximately fourteen" multiplies.
	if res.Crossover < 11 || res.Crossover > 17 {
		t.Errorf("crossover at %.1f multiplies, want ~14", res.Crossover)
	}
	if !strings.Contains(res.Render(), "crossover") {
		t.Error("render missing crossover line")
	}
}

func TestBreakdownShapes(t *testing.T) {
	opts := quickOpts()
	for _, muls := range []int{1, 14, 30} {
		res, err := Breakdown(opts, muls)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Mult+row.Comm+row.Other != row.Total {
				t.Errorf("muls=%d n=%d %s: components %d+%d+%d != total %d",
					muls, row.N, row.Mode, row.Mult, row.Comm, row.Other, row.Total)
			}
		}
		// Multiplication time grows faster than communication time
		// (O(n^3/p) vs O(n^2)): the mult share increases with n.
		bySeries := map[string][]BreakdownRow{}
		for _, row := range res.Rows {
			bySeries[row.Mode] = append(bySeries[row.Mode], row)
		}
		for mode, rows := range bySeries {
			first, last := rows[0], rows[len(rows)-1]
			fShare := float64(first.Mult) / float64(first.Total)
			lShare := float64(last.Mult) / float64(last.Total)
			if lShare <= fShare {
				t.Errorf("muls=%d %s: mult share did not grow with n (%.3f -> %.3f)",
					muls, mode, fShare, lShare)
			}
			if float64(last.Mult) < float64(last.Comm) {
				t.Errorf("muls=%d %s: mult (%d) does not dominate comm (%d) at n=%d",
					muls, mode, last.Mult, last.Comm, last.N)
			}
		}
	}
}

func TestBreakdown30SMIMDWinsAtLargeN(t *testing.T) {
	res, err := Breakdown(quickOpts(), 30)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]map[int]int64{"SIMD": {}, "S/MIMD": {}}
	for _, row := range res.Rows {
		totals[row.Mode][row.N] = row.Total
	}
	nmax := res.Rows[len(res.Rows)-1].N
	if totals["S/MIMD"][nmax] >= totals["SIMD"][nmax] {
		t.Errorf("at 30 multiplies and n=%d, S/MIMD (%d) not faster than SIMD (%d)",
			nmax, totals["S/MIMD"][nmax], totals["SIMD"][nmax])
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	// SIMD superlinear at large n; parallel MIMD variants below 1,
	// S/MIMD above MIMD; efficiency rising with n.
	if last.Efficiency["SIMD"] <= 1 {
		t.Errorf("SIMD efficiency %.3f at n=%d not superlinear", last.Efficiency["SIMD"], last.X)
	}
	for _, mode := range []string{"MIMD", "S/MIMD"} {
		if e := last.Efficiency[mode]; e >= 1 || e <= 0 {
			t.Errorf("%s efficiency %.3f out of (0,1)", mode, e)
		}
	}
	if last.Efficiency["S/MIMD"] <= last.Efficiency["MIMD"] {
		t.Errorf("S/MIMD efficiency %.3f not above MIMD %.3f",
			last.Efficiency["S/MIMD"], last.Efficiency["MIMD"])
	}
	first := res.Rows[0]
	for _, mode := range []string{"MIMD", "S/MIMD"} {
		if last.Efficiency[mode] <= first.Efficiency[mode] {
			t.Errorf("%s efficiency did not rise with n (%.3f -> %.3f)",
				mode, first.Efficiency[mode], last.Efficiency[mode])
		}
	}
}

func TestFig12EfficiencyDropsWithP(t *testing.T) {
	res, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, mode := range []string{"SIMD", "MIMD", "S/MIMD"} {
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i].Efficiency[mode] >= res.Rows[i-1].Efficiency[mode] {
				t.Errorf("%s: efficiency did not drop from p=%d to p=%d (%.3f -> %.3f)",
					mode, res.Rows[i-1].X, res.Rows[i].X,
					res.Rows[i-1].Efficiency[mode], res.Rows[i].Efficiency[mode])
			}
		}
	}
}

func TestRendersAreNonEmpty(t *testing.T) {
	opts := quickOpts()
	t1, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Fig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"table1": t1.Render(),
		"fig12":  f12.Render(),
	} {
		if len(strings.TrimSpace(s)) == 0 {
			t.Errorf("%s renders empty", name)
		}
	}
}

func TestRendersAndPlots(t *testing.T) {
	opts := quickOpts()
	f6, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Fig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Fig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := Breakdown(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	outputs := map[string]string{
		"fig6-render":  f6.Render(),
		"fig6-plot":    f6.Plot(),
		"fig7-render":  f7.Render(),
		"fig7-plot":    f7.Plot(),
		"fig11-render": f11.Render(),
		"fig11-plot":   f11.Plot(),
		"fig12-plot":   f12.Plot(),
		"bd-render":    bd.Render(),
	}
	for name, out := range outputs {
		if len(strings.TrimSpace(out)) < 40 {
			t.Errorf("%s suspiciously short:\n%s", name, out)
		}
	}
	if !strings.Contains(f6.Plot(), "log y") {
		t.Error("fig6 plot should use a log axis")
	}
	if !strings.Contains(f7.Render(), "crossover") {
		t.Error("fig7 render missing crossover")
	}
}

func TestFullSizesSelection(t *testing.T) {
	o := DefaultOptions()
	quick := o.sizes()
	o.Full = true
	full := o.sizes()
	if full[len(full)-1] != 256 {
		t.Errorf("full sizes end at %d, want 256", full[len(full)-1])
	}
	if quick[len(quick)-1] > 64 {
		t.Errorf("quick sizes reach %d, want <= 64", quick[len(quick)-1])
	}
}
