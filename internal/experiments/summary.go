package experiments

import (
	"fmt"
	"math"
)

// Summary methods flatten each result into stable scalar metrics for
// machine-readable output (cmd/pasmbench -json). Keys are
// slash-separated paths; values are simulated quantities (cycles,
// efficiencies, MIPS), never host timings, so two runs with the same
// options produce identical summaries.

// put records a metric, dropping non-finite values (a NaN crossover
// means "no crossover in range", which JSON cannot carry — absence of
// the key encodes it instead).
func put(m map[string]float64, key string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	m[key] = v
}

// Summary flattens Table 1 into MIPS per (instruction, mode).
func (r *Table1Result) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[fmt.Sprintf("mips/%s/%s", row.Instruction, row.Mode)] = row.MIPS
		m[fmt.Sprintf("cycles/%s/%s", row.Instruction, row.Mode)] = float64(row.Cycles)
	}
	r.Obs.into(m)
	return m
}

// Summary flattens Figure 6 into cycles per (n, mode).
func (r *Fig6Result) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		for mode, cycles := range row.Cycles {
			m[fmt.Sprintf("cycles/n=%d/%s", row.N, mode)] = float64(cycles)
		}
	}
	r.Obs.into(m)
	return m
}

// Summary flattens Figure 7 into cycles per (muls, mode) plus the
// crossover point.
func (r *Fig7Result) Summary() map[string]float64 {
	m := map[string]float64{}
	put(m, "crossover_muls", r.Crossover)
	for _, row := range r.Rows {
		m[fmt.Sprintf("cycles/muls=%d/SIMD", row.Muls)] = float64(row.SIMD)
		m[fmt.Sprintf("cycles/muls=%d/SMIMD", row.Muls)] = float64(row.SMIMD)
	}
	r.Obs.into(m)
	return m
}

// Summary flattens a breakdown into per-(n, mode) component cycles.
func (r *BreakdownResult) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		prefix := fmt.Sprintf("n=%d/%s", row.N, row.Mode)
		m["mult/"+prefix] = float64(row.Mult)
		m["comm/"+prefix] = float64(row.Comm)
		m["other/"+prefix] = float64(row.Other)
		m["total/"+prefix] = float64(row.Total)
	}
	r.Obs.into(m)
	return m
}

// Summary flattens Figure 11 into efficiency per (n, mode).
func (r *Fig11Result) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		for mode, eff := range row.Efficiency {
			m[fmt.Sprintf("efficiency/n=%d/%s", row.X, mode)] = eff
		}
	}
	r.Obs.into(m)
	return m
}

// Summary flattens Figure 12 into efficiency per (p, mode).
func (r *Fig12Result) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		for mode, eff := range row.Efficiency {
			m[fmt.Sprintf("efficiency/p=%d/%s", row.X, mode)] = eff
		}
	}
	r.Obs.into(m)
	return m
}

// Summary flattens the crossover extension into measured and predicted
// crossover points per p.
func (r *CrossoverVsPResult) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		put(m, fmt.Sprintf("measured/p=%d", row.P), row.Measured)
		put(m, fmt.Sprintf("predicted/p=%d", row.P), row.Predicted)
	}
	r.Obs.into(m)
	return m
}

// Summary flattens the model validation into per-quantity values.
func (r *ModelResult) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		put(m, "simulated/"+row.Name, row.Simulated)
		put(m, "predicted/"+row.Name, row.Predicted)
		put(m, "relerr/"+row.Name, row.RelErr)
	}
	r.Obs.into(m)
	return m
}

// Summary flattens the fault-tolerance scenarios into pass flags and
// cycle counts.
func (r *FaultResult) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		ok := 0.0
		if row.OK {
			ok = 1.0
		}
		m["ok/"+row.Scenario] = ok
		if row.Cycles > 0 {
			m["cycles/"+row.Scenario] = float64(row.Cycles)
		}
	}
	r.Obs.into(m)
	return m
}

// Summary flattens the mixed-mode extension into cycles per
// (muls, mode).
func (r *MixedResult) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[fmt.Sprintf("cycles/muls=%d/SIMD", row.Muls)] = float64(row.SIMD)
		m[fmt.Sprintf("cycles/muls=%d/Mixed", row.Muls)] = float64(row.Mixed)
		m[fmt.Sprintf("cycles/muls=%d/SMIMD", row.Muls)] = float64(row.SMIMD)
	}
	r.Obs.into(m)
	return m
}

// Summary flattens the workload comparison into cycles and speedups
// per (workload, mode).
func (r *WorkloadsResult) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		m[fmt.Sprintf("cycles/%s/%s", row.Workload, row.Mode)] = float64(row.Cycles)
		m[fmt.Sprintf("speedup/%s/%s", row.Workload, row.Mode)] = row.Speedup
	}
	r.Obs.into(m)
	return m
}
