package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzSpecRoundTrip drives arbitrary JSON through the Spec pipeline
// and checks the canonicalization invariants the result cache depends
// on:
//
//   - decode -> Normalize -> Canonical -> decode -> Canonical is a
//     fixed point (the canonical encoding re-canonicalizes to itself);
//   - Normalize is idempotent;
//   - the cache Key is stable across the round trip — two encodings of
//     the same spec can never split the cache.
//
// Run `go test -fuzz=FuzzSpecRoundTrip -fuzztime=30s ./internal/experiments`.
func FuzzSpecRoundTrip(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{}`),
		[]byte(`{"exps":["table1"],"seed":1988}`),
		[]byte(`{"exps":["all"],"full":true,"observe":true,"seed":7}`),
		[]byte(`{"exps":["ext","fig6","FIG7"," table1 "],"seed":4294967295}`),
		[]byte(`{"cells":[{"n":8,"p":4,"muls":2,"mode":"MIMD"}]}`),
		[]byte(`{"cells":[{"n":16,"p":1,"muls":1,"mode":"serial"},{"n":8,"p":8,"muls":64,"mode":"smimd"}],"observe":true}`),
		[]byte(`{"exps":[""],"cells":[]}`),
		[]byte(`{"exps":["fig99"]}`),
		[]byte(`{"cells":[{"n":3,"p":4,"muls":2,"mode":"simd"}]}`),
		[]byte(`{"seed":-1}`),
		[]byte(`[1,2,3]`),
		[]byte(`{"exps":["all","all","ext"],"full":false,"seed":0}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if json.Unmarshal(data, &spec) != nil {
			return // not a spec; nothing to check
		}
		norm, err := spec.Normalize()
		if err != nil {
			// Invalid specs must fail identically everywhere.
			if _, cerr := spec.Canonical(); cerr == nil {
				t.Fatalf("Normalize rejected but Canonical accepted: %q", data)
			}
			if _, kerr := spec.Key(); kerr == nil {
				t.Fatalf("Normalize rejected but Key accepted: %q", data)
			}
			return
		}
		// Normalize is idempotent.
		norm2, err := norm.Normalize()
		if err != nil {
			t.Fatalf("re-normalizing a normalized spec failed: %v", err)
		}
		c1, err := norm.Canonical()
		if err != nil {
			t.Fatalf("Canonical of normalized spec: %v", err)
		}
		c2, err := norm2.Canonical()
		if err != nil || !bytes.Equal(c1, c2) {
			t.Fatalf("Normalize not idempotent: %q vs %q (%v)", c1, c2, err)
		}
		// The canonical encoding decodes back to a spec that
		// re-canonicalizes byte-identically (fixed point).
		var rt Spec
		if err := json.Unmarshal(c1, &rt); err != nil {
			t.Fatalf("canonical encoding does not decode: %q: %v", c1, err)
		}
		c3, err := rt.Canonical()
		if err != nil {
			t.Fatalf("re-canonicalizing decoded canonical form: %v", err)
		}
		if !bytes.Equal(c1, c3) {
			t.Fatalf("canonical encoding is not a fixed point:\nfirst:  %s\nsecond: %s", c1, c3)
		}
		// Cache keys agree across the round trip.
		k1, err1 := spec.Key()
		k2, err2 := rt.Key()
		if err1 != nil || err2 != nil {
			t.Fatalf("Key errors: %v, %v", err1, err2)
		}
		if k1 != k2 {
			t.Fatalf("cache key unstable across round trip for %q", data)
		}
	})
}

// FuzzRunSpecContextCancel pairs with the serving path: a canceled
// context must surface promptly as an error for any decodable spec,
// never a partial report. (Kept tiny — it runs no simulation.)
func FuzzRunSpecContextCancel(f *testing.F) {
	f.Add([]byte(`{"exps":["table1"],"seed":1}`))
	f.Add([]byte(`{"cells":[{"n":8,"p":4,"muls":1,"mode":"simd"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if json.Unmarshal(data, &spec) != nil {
			return
		}
		if _, err := spec.Normalize(); err != nil {
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		rep, err := RunSpecContext(ctx, spec, RunConfig{Options: DefaultOptions()})
		if rep != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run: rep=%v err=%v", rep, err)
		}
	})
}
