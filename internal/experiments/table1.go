package experiments

import (
	"fmt"

	"repro/internal/m68k"
	"repro/internal/pasm"
	"repro/internal/stats"
)

// Table1Row is one cell block of the paper's Table 1: the raw MIPS of
// one instruction type in one mode.
type Table1Row struct {
	Instruction string
	Mode        string
	Cycles      int64
	Instrs      int64
	MIPS        float64
}

// Table1Result reproduces "Table 1: Prototype raw performance":
// millions of integer instructions per second, measured with repeated
// blocks of straight-line code large enough to make loop-control
// overlap insignificant, for two instruction types in SIMD and MIMD
// modes. SIMD fetches come from the Fetch Unit queue's static RAM (one
// fewer wait state, no refresh), so SIMD MIPS exceeds MIMD MIPS.
type Table1Result struct {
	Rows []Table1Row
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

const (
	table1Block = 64  // straight-line instructions per block
	table1Loops = 256 // block repetitions
)

// Table1 measures the raw instruction rates; the four (instruction,
// mode) cells each simulate their own machine and fan out across the
// host workers.
func Table1(opts Options) (*Table1Result, error) {
	type cell struct{ name, text, mode string }
	var cells []cell
	for _, instr := range []struct{ name, text string }{
		// Register-to-register: the fetch path dominates entirely, so
		// the SIMD (queue SRAM) vs MIMD (PE DRAM) gap is largest.
		{"add.w dn,dn", "\tadd.w\td1, d0\n"},
		// Memory operand: the data access goes to PE DRAM in both
		// modes, diluting (but not erasing) the SIMD fetch advantage.
		{"move.w (an),dn", "\tmove.w\t(a0), d2\n"},
	} {
		for _, mode := range []string{"SIMD", "MIMD"} {
			cells = append(cells, cell{instr.name, instr.text, mode})
		}
	}
	o := newObserver(opts)
	rows := make([]Table1Row, len(cells))
	err := forEachCell(opts.workers(), len(cells), func(i int) error {
		cfg, rec := o.cell(opts.Config)
		cycles, instrs, err := rawRate(opts, cfg, cells[i].text, cells[i].mode)
		if err != nil {
			return err
		}
		o.done(rec)
		rows[i] = Table1Row{
			Instruction: cells[i].name,
			Mode:        cells[i].mode,
			Cycles:      cycles,
			Instrs:      instrs,
			MIPS:        stats.MIPS(cycles, instrs, opts.Config.ClockHz),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{Rows: rows, Obs: o.metrics()}, nil
}

// rawRate runs a straight-line block of one instruction repeatedly and
// returns the per-PE cycle and instruction counts.
func rawRate(opts Options, cfg pasm.Config, instrText, mode string) (cycles, instrs int64, err error) {
	cfg.PEMemBytes = 1 << 16
	vm, err := pasm.NewVM(cfg, 4)
	if err != nil {
		return 0, 0, err
	}
	if err := vm.EstablishShift(); err != nil {
		return 0, 0, err
	}
	var src string
	body := ""
	for i := 0; i < table1Block; i++ {
		body += instrText
	}
	if mode == "SIMD" {
		src = fmt.Sprintf(`	move.w	#%d, d0
l:	bcast	blk
	dbra	d0, l
	halt
	.block	blk
%s	.endblock
`, table1Loops-1, body)
	} else {
		src = fmt.Sprintf(`	move.w	#%d, d0
l:
%s	dbra	d0, l
	halt
`, table1Loops-1, body)
	}
	prog, err := m68k.Assemble(src)
	if err != nil {
		return 0, 0, err
	}
	var r pasm.RunResult
	if mode == "SIMD" {
		r, err = vm.RunSIMD(prog)
	} else {
		r, err = vm.RunMIMD(prog)
	}
	if err != nil {
		return 0, 0, err
	}
	opts.tally(r)
	perPE := r.Instrs / int64(vm.P)
	return r.Cycles, perPE, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	var t table
	t.title("Table 1: Prototype raw performance (MIPS)")
	t.row(fmt.Sprintf("%-14s", "instruction"), fmt.Sprintf("%6s", "SIMD"), fmt.Sprintf("%6s", "MIMD"))
	byInstr := map[string]map[string]float64{}
	order := []string{}
	for _, row := range r.Rows {
		if byInstr[row.Instruction] == nil {
			byInstr[row.Instruction] = map[string]float64{}
			order = append(order, row.Instruction)
		}
		byInstr[row.Instruction][row.Mode] = row.MIPS
	}
	for _, name := range order {
		t.row(fmt.Sprintf("%-14s", name),
			fmt.Sprintf("%6.3f", byInstr[name]["SIMD"]),
			fmt.Sprintf("%6.3f", byInstr[name]["MIMD"]))
	}
	return t.String()
}
