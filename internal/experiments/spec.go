package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/matmul"
	"repro/internal/partition"
)

// SpecVersion is the canonical-encoding version of Spec. Bump it when
// the encoding changes shape (it is embedded in the encoding itself, so
// old cache keys can never collide with new ones). v2 added the "pes"
// machine-size field.
const SpecVersion = 2

// CodeVersion names the simulator semantics that produced a result.
// It is folded into every cache key alongside the canonical spec
// encoding, so changing the simulated machine's behavior (cycle
// counts, program generation, report schema) must bump it — cached
// results from the old code then miss instead of serving stale bytes.
// v3: reports echo the machine size (schema pasmbench/v2.2).
const CodeVersion = "pasm-sim/3"

// DefaultPEs is the machine size a spec that does not name one gets:
// the 16-PE prototype every paper experiment models.
const DefaultPEs = 16

// expAliases expands the user-facing experiment groups.
var (
	// ExpOrder is the paper's reproduction set, in report order.
	ExpOrder = []string{"table1", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	// ExpExt is the beyond-the-paper extension set, in report order.
	ExpExt = []string{"ext-crossover", "ext-model", "ext-fault", "ext-workloads", "ext-mixed", "ext-partition"}
)

// CellSpec is one custom matrix-multiplication cell in a Spec: the
// machine-facing matmul.Spec with a stable string mode, so it has an
// obvious canonical JSON form.
type CellSpec struct {
	N    int    `json:"n"`
	P    int    `json:"p"`
	Muls int    `json:"muls"`
	Mode string `json:"mode"`
}

// ParseMode maps a CellSpec mode string onto the matmul program
// variant. Accepted names are the lowercase forms used by the CLIs:
// sisd (or serial), simd, mimd, smimd, mixed.
func ParseMode(s string) (matmul.Mode, error) {
	switch strings.ToLower(s) {
	case "sisd", "serial":
		return matmul.Serial, nil
	case "simd":
		return matmul.SIMD, nil
	case "mimd":
		return matmul.MIMD, nil
	case "smimd":
		return matmul.SMIMD, nil
	case "mixed":
		return matmul.Mixed, nil
	}
	return 0, fmt.Errorf("experiments: unknown mode %q (want sisd, simd, mimd, smimd, or mixed)", s)
}

// modeName is ParseMode's inverse: the canonical lowercase name.
func modeName(m matmul.Mode) string {
	switch m {
	case matmul.Serial:
		return "sisd"
	case matmul.SIMD:
		return "simd"
	case matmul.MIMD:
		return "mimd"
	case matmul.SMIMD:
		return "smimd"
	case matmul.Mixed:
		return "mixed"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// MatmulSpec converts the cell to the machine-facing spec.
func (c CellSpec) MatmulSpec() (matmul.Spec, error) {
	m, err := ParseMode(c.Mode)
	if err != nil {
		return matmul.Spec{}, err
	}
	s := matmul.Spec{N: c.N, P: c.P, Muls: c.Muls, Mode: m}
	if err := s.Validate(); err != nil {
		return matmul.Spec{}, err
	}
	return s, nil
}

// Spec is the complete, serializable description of one experiment
// request: which named sweeps and/or custom matmul cells to run, and
// the parameters that change the simulated results. Everything a spec
// does NOT carry (host parallelism, timing flags, output paths) is by
// construction unable to change the result bytes, which is what makes
// the canonical encoding a sound cache key.
//
// The same type backs the CLI flag parsing (cmd/pasmbench, cmd/pasmrun,
// cmd/pasmreport), the pasmd submission body, and the result cache key.
type Spec struct {
	// Exps names the sweeps to run, in report order. The aliases "all"
	// (the paper set) and "ext" (the extension set) expand in place.
	Exps []string `json:"exps,omitempty"`
	// Cells are custom matmul cells, reported as one "custom"
	// experiment after the named sweeps.
	Cells []CellSpec `json:"cells,omitempty"`
	// Full selects the paper's complete problem-size set.
	Full bool `json:"full"`
	// PEs is the simulated machine size (a power of two up to 1024;
	// 0 means the 16-PE prototype). Named sweeps need at least the
	// prototype's 16 PEs; custom cells need p <= pes. Larger machines
	// change ext-workloads and ext-partition and admit larger cells.
	PEs int `json:"pes,omitempty"`
	// Seed drives the random B matrices.
	Seed uint32 `json:"seed"`
	// Observe aggregates observability metrics into the summaries
	// ("obs/" keys).
	Observe bool `json:"observe"`
}

// Normalize expands aliases, lowercases cell modes, and validates
// every experiment name and cell. The returned spec is the canonical
// form: two requests meaning the same run normalize identically.
func (s Spec) Normalize() (Spec, error) {
	out := Spec{Full: s.Full, PEs: s.PEs, Seed: s.Seed, Observe: s.Observe}
	if out.PEs == 0 {
		out.PEs = DefaultPEs
	}
	if out.PEs < 1 || out.PEs > partition.MaxPEs || out.PEs&(out.PEs-1) != 0 {
		return Spec{}, fmt.Errorf("experiments: pes %d must be a power of two in 1..%d", out.PEs, partition.MaxPEs)
	}
	for _, name := range s.Exps {
		name = strings.ToLower(strings.TrimSpace(name))
		switch name {
		case "":
			continue
		case "all":
			out.Exps = append(out.Exps, ExpOrder...)
		case "ext":
			out.Exps = append(out.Exps, ExpExt...)
		default:
			if _, ok := runnersByName[name]; !ok {
				return Spec{}, fmt.Errorf("experiments: unknown experiment %q", name)
			}
			out.Exps = append(out.Exps, name)
		}
	}
	if len(out.Exps) > 0 && out.PEs < DefaultPEs {
		return Spec{}, fmt.Errorf("experiments: named sweeps need at least the %d-PE prototype, got pes=%d", DefaultPEs, out.PEs)
	}
	for _, c := range s.Cells {
		m, err := c.MatmulSpec()
		if err != nil {
			return Spec{}, err
		}
		if m.Mode == matmul.Serial {
			m.P = 1 // Serial ignores P; normalize so it can't split the key
		}
		if p := maxIntSpec(m.P, 1); p > out.PEs {
			return Spec{}, fmt.Errorf("experiments: cell p=%d exceeds the machine (pes=%d)", p, out.PEs)
		}
		out.Cells = append(out.Cells, CellSpec{N: m.N, P: m.P, Muls: m.Muls, Mode: modeName(m.Mode)})
	}
	if len(out.Exps) == 0 && len(out.Cells) == 0 {
		return Spec{}, fmt.Errorf("experiments: empty spec (no experiments and no cells)")
	}
	return out, nil
}

func maxIntSpec(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ParseExpList builds a Spec experiment list from a comma-separated
// -exp flag value (the pasmbench syntax).
func ParseExpList(flag string) []string {
	var exps []string
	for _, name := range strings.Split(flag, ",") {
		if name = strings.TrimSpace(name); name != "" {
			exps = append(exps, name)
		}
	}
	return exps
}

// Canonical returns the spec's canonical encoding: normalized,
// versioned, sorted-key JSON with no insignificant whitespace. Two
// specs describing the same run encode byte-identically, so the
// encoding (plus CodeVersion) is the result-cache key. The golden test
// pins the exact bytes; changing them requires bumping SpecVersion.
func (s Spec) Canonical() ([]byte, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteByte('{')
	// Keys in sorted order: cells, exps, full, observe, pes, seed, v.
	first := true
	field := func(name string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:", name)
	}
	if len(n.Cells) > 0 {
		field("cells")
		b.WriteByte('[')
		for i, c := range n.Cells {
			if i > 0 {
				b.WriteByte(',')
			}
			// Cell keys sorted: mode, muls, n, p.
			fmt.Fprintf(&b, `{"mode":%q,"muls":%d,"n":%d,"p":%d}`, c.Mode, c.Muls, c.N, c.P)
		}
		b.WriteByte(']')
	}
	if len(n.Exps) > 0 {
		field("exps")
		b.WriteByte('[')
		for i, e := range n.Exps {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q", e)
		}
		b.WriteByte(']')
	}
	field("full")
	fmt.Fprintf(&b, "%t", n.Full)
	field("observe")
	fmt.Fprintf(&b, "%t", n.Observe)
	field("pes")
	fmt.Fprintf(&b, "%d", n.PEs)
	field("seed")
	fmt.Fprintf(&b, "%d", n.Seed)
	field("v")
	fmt.Fprintf(&b, "%d", SpecVersion)
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// Key returns the spec's content address: SHA-256 over the canonical
// encoding and the code version. Identical specs served by identical
// code — and only those — share a key.
func (s Spec) Key() ([sha256.Size]byte, error) {
	c, err := s.Canonical()
	if err != nil {
		return [sha256.Size]byte{}, err
	}
	h := sha256.New()
	h.Write(c)
	h.Write([]byte{0})
	h.Write([]byte(CodeVersion))
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k, nil
}

// KeyString returns the hex form of Key (for logs and job listings).
func (s Spec) KeyString() (string, error) {
	k, err := s.Key()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(k[:]), nil
}

// ExpNames returns every runnable experiment name, sorted (for usage
// strings and validation messages).
func ExpNames() []string {
	names := make([]string, 0, len(runnersByName))
	for n := range runnersByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
