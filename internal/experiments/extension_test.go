package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestModelValidationErrorsSmall(t *testing.T) {
	res, err := ModelValidation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		limit := 0.02
		if strings.Contains(row.Name, "gain") {
			limit = 0.15 // a small difference of large numbers
		}
		if math.IsNaN(row.RelErr) || row.RelErr > limit {
			t.Errorf("%s: rel. error %.3f exceeds %.2f (sim %.2f, model %.2f)",
				row.Name, row.RelErr, limit, row.Simulated, row.Predicted)
		}
	}
	if !strings.Contains(res.Render(), "cycles/multiply") {
		t.Error("render missing rows")
	}
}

func TestFaultToleranceScenarios(t *testing.T) {
	res, err := FaultTolerance(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.OK {
			t.Errorf("scenario %q failed: %s", row.Scenario, row.Detail)
		}
	}
	// Partition isolation: fault outside the partition leaves the run
	// cycle-identical.
	if res.Rows[0].Cycles != res.Rows[1].Cycles {
		t.Errorf("out-of-partition fault changed timing: %d vs %d",
			res.Rows[0].Cycles, res.Rows[1].Cycles)
	}
	out := res.Render()
	if !strings.Contains(out, "256/256") {
		t.Errorf("connection survey missing:\n%s", out)
	}
}

// TestCrossoverVsPShape is the slowest extension (n=64 sweeps across
// three partition sizes); it validates the headline shape only.
func TestCrossoverVsPShape(t *testing.T) {
	if testing.Short() {
		t.Skip("n=64 sweep; run without -short")
	}
	res, err := CrossoverVsP(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byP := map[int]CrossoverVsPRow{}
	for _, row := range res.Rows {
		byP[row.P] = row
	}
	// p=4: both near 13-14.
	if r := byP[4]; math.Abs(r.Measured-r.Predicted) > 3 || r.Measured < 10 || r.Measured > 17 {
		t.Errorf("p=4: measured %.1f, model %.1f", r.Measured, r.Predicted)
	}
	// p=8: later than p=4, model within a few multiplies.
	if r := byP[8]; !(r.Measured > byP[4].Measured) || math.Abs(r.Measured-r.Predicted) > 5 {
		t.Errorf("p=8: measured %.1f, model %.1f", r.Measured, r.Predicted)
	}
	// p=16: no crossover in range measured; model far out.
	if r := byP[16]; !math.IsNaN(r.Measured) && r.Measured < 32 {
		t.Errorf("p=16: unexpected crossover at %.1f", r.Measured)
	}
	if out := res.Render(); !strings.Contains(out, "crossover vs PE count") {
		t.Errorf("render missing title:\n%s", out)
	}
}

func TestWorkloadsComparison(t *testing.T) {
	res, err := Workloads(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	byKey := map[string]WorkloadRow{}
	for _, row := range res.Rows {
		byKey[row.Workload+"/"+row.Mode] = row
	}
	for _, wl := range []string{"smoothing 32x32", "reduce n=4096"} {
		sisd := byKey[wl+"/SISD"]
		simd := byKey[wl+"/SIMD"]
		mimd := byKey[wl+"/MIMD"]
		if simd.Cycles >= sisd.Cycles || mimd.Cycles >= sisd.Cycles {
			t.Errorf("%s: parallel not faster than serial", wl)
		}
		if simd.Cycles >= mimd.Cycles {
			t.Errorf("%s: SIMD (%d) not faster than MIMD (%d)", wl, simd.Cycles, mimd.Cycles)
		}
	}
	if !strings.Contains(res.Render(), "workload") {
		t.Error("render missing header")
	}
}

func TestMixedModeExperiment(t *testing.T) {
	res, err := MixedMode(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	prevRatio := 10.0
	for _, row := range res.Rows {
		if row.Mixed <= row.SIMD {
			t.Errorf("muls=%d: Mixed (%d) beat SIMD (%d): correlated bursts should not pay",
				row.Muls, row.Mixed, row.SIMD)
		}
		ratio := float64(row.Mixed) / float64(row.SIMD)
		if ratio >= prevRatio {
			t.Errorf("muls=%d: Mixed/SIMD ratio %.4f did not shrink (overhead should amortize)", row.Muls, ratio)
		}
		prevRatio = ratio
	}
	// S/MIMD crosses SIMD by 30 multiplies; Mixed does not.
	last := res.Rows[len(res.Rows)-1]
	if last.SMIMD >= last.SIMD {
		t.Errorf("S/MIMD (%d) should beat SIMD (%d) at %d multiplies", last.SMIMD, last.SIMD, last.Muls)
	}
	if !strings.Contains(res.Render(), "granularity") {
		t.Error("render missing commentary")
	}
}
