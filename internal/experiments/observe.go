package experiments

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/pasm"
)

// ObsMetrics is an experiment's flattened observability aggregate:
// every cell's metrics registry (per-unit counters and fixed-bucket
// histograms — MULU cycle distribution, barrier waits, queue
// occupancy) merged across the whole sweep. nil when the experiment
// ran without Options.Observe.
type ObsMetrics map[string]float64

// into copies the metrics into a summary map under the "obs/" prefix,
// keeping them disjoint from the v1 result keys.
func (o ObsMetrics) into(m map[string]float64) {
	for k, v := range o {
		m["obs/"+k] = v
	}
}

// observer attaches a metrics-only recorder to every experiment cell
// when Options.Observe is set, and merges the per-cell registries into
// one aggregate. Counter and histogram merging is commutative, so the
// aggregate is identical for any Options.Parallelism even though
// parallel cells complete in host order. When Options.Capture is set
// it additionally attaches bounded event buffers and offers each
// finished cell's recorder to the capture (the serving stack's trace
// bridge); captured events never reach the report.
type observer struct {
	mu  sync.Mutex
	agg *obs.Registry // nil when not observing
	cap *obs.Capture  // nil when not capturing
}

func newObserver(opts Options) *observer {
	o := &observer{cap: opts.Capture}
	if opts.Observe {
		o.agg = obs.NewRegistry()
	}
	return o
}

// cell returns the configuration one cell should simulate with: when
// observing or capturing, a copy carrying a fresh recorder. Metrics
// are kept only when aggregating; events only when capturing (a
// sweep's unbounded event stream would be enormous, so the capture's
// per-unit ring bounds them).
func (o *observer) cell(cfg pasm.Config) (pasm.Config, *obs.Recorder) {
	if o.agg == nil && o.cap == nil {
		return cfg, nil
	}
	c := obs.Config{Metrics: o.agg != nil}
	if o.cap != nil {
		c.Events = o.cap.Kinds()
		c.Limit = o.cap.Limit()
	}
	rec := obs.New(c)
	cfg.Obs = rec
	return cfg, rec
}

// done folds a finished cell's metrics into the aggregate and offers
// its events to the capture.
func (o *observer) done(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	o.cap.Offer(rec)
	if o.agg == nil {
		return
	}
	m := rec.Metrics()
	o.mu.Lock()
	o.agg.Merge(m)
	o.mu.Unlock()
}

// metrics returns the flattened aggregate, or nil when not observing.
func (o *observer) metrics() ObsMetrics {
	if o.agg == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return ObsMetrics(o.agg.Flatten(""))
}
