package experiments

import (
	"fmt"

	"repro/internal/matmul"
	"repro/internal/partition"
	"repro/internal/stats"
)

// PartitionClass is one job size class of the co-scheduling sweep:
// the partition size, the cell measured for it, and how many copies
// the storm submits.
type PartitionClass struct {
	PEs    int
	N      int // matmul problem size of the class's cell
	Count  int
	Cycles int64 // measured standalone run time (= partitioned run time)
}

// PartitionPolicyRow is one scheduling policy's outcome on the storm.
type PartitionPolicyRow struct {
	Policy         string
	Makespan       int64
	Speedup        float64 // serial whole-machine baseline / makespan
	UtilizationPct float64
	MeanWait       float64
	MaxWait        int64
	PeakFragPct    float64
}

// PartitionResult is the partitioned co-scheduling sweep: a mixed-size
// job storm packed onto the machine under every scheduler policy,
// against the serial whole-machine baseline. Job durations come from
// real cell simulations; the subcube isomorphism (which the partition
// package's differential tests enforce) makes them placement-
// independent, so the discrete-event schedule is exact and fully
// deterministic.
type PartitionResult struct {
	MachinePEs     int
	Classes        []PartitionClass
	SerialMakespan int64
	Rows           []PartitionPolicyRow
	// Obs is the aggregated observability metrics of the measurement
	// cells (Options.Observe).
	Obs ObsMetrics
}

// PartitionSweep measures one cell per size class, builds the storm,
// and schedules it under every policy.
func PartitionSweep(opts Options) (*PartitionResult, error) {
	cfg := opts.Config
	r := newRunner(opts)

	// Size classes scale with the machine: a quarter-machine class is
	// always present; the larger classes join as the machine grows.
	classes := []PartitionClass{{PEs: 4, N: 16, Count: 6}}
	if cfg.NumPEs >= 16 {
		classes = append(classes, PartitionClass{PEs: 16, N: 32, Count: 4})
	}
	if cfg.NumPEs >= 64 {
		classes = append(classes, PartitionClass{PEs: 64, N: 64, Count: 2})
	}

	// Measure each class's cell once, standalone (cells fan out across
	// the host workers like any sweep).
	err := forEachCell(opts.workers(), len(classes), func(i int) error {
		res, err := r.exec(matmul.Spec{N: classes[i].N, P: classes[i].PEs, Muls: 1, Mode: matmul.SIMD})
		if err != nil {
			return fmt.Errorf("experiments: partition class p=%d: %w", classes[i].PEs, err)
		}
		classes[i].Cycles = res.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The storm interleaves the classes round-robin (small, mid,
	// large, small, ...) with a stagger of a quarter of the shortest
	// cell, so the queue always holds a size mix.
	shortest := classes[0].Cycles
	for _, c := range classes {
		if c.Cycles < shortest {
			shortest = c.Cycles
		}
	}
	var jobs []partition.SimJob
	remaining := make([]int, len(classes))
	for i, c := range classes {
		remaining[i] = c.Count
	}
	for more := true; more; {
		more = false
		for i, c := range classes {
			if remaining[i] == 0 {
				continue
			}
			remaining[i]--
			more = more || remaining[i] > 0
			jobs = append(jobs, partition.SimJob{
				Name:    fmt.Sprintf("p%d-%d", c.PEs, c.Count-remaining[i]),
				PEs:     c.PEs,
				Cycles:  c.Cycles,
				Arrival: int64(len(jobs)) * (shortest / 4),
			})
		}
	}

	out := &PartitionResult{
		MachinePEs:     cfg.NumPEs,
		Classes:        classes,
		SerialMakespan: partition.SerialMakespan(jobs),
		Obs:            r.obs.metrics(),
	}
	for _, policy := range partition.Policies() {
		sim, err := partition.Simulate(cfg.NumPEs, policy, jobs)
		if err != nil {
			return nil, fmt.Errorf("experiments: partition policy %s: %w", policy, err)
		}
		out.Rows = append(out.Rows, PartitionPolicyRow{
			Policy:         string(policy),
			Makespan:       sim.Makespan,
			Speedup:        stats.Speedup(out.SerialMakespan, sim.Makespan),
			UtilizationPct: 100 * sim.Utilization,
			MeanWait:       sim.MeanWait,
			MaxWait:        sim.MaxWait,
			PeakFragPct:    100 * sim.PeakFragmentation,
		})
	}
	return out, nil
}

// Render prints the sweep.
func (r *PartitionResult) Render() string {
	var t table
	t.title(fmt.Sprintf("Extension: partitioned co-scheduling on a %d-PE machine", r.MachinePEs))
	t.row("job storm:")
	for _, c := range r.Classes {
		t.row(fmt.Sprintf("  %d jobs of %d PEs (matmul simd n=%d, %d cycles each)",
			c.Count, c.PEs, c.N, c.Cycles))
	}
	t.row(fmt.Sprintf("serial whole-machine baseline: %d cycles", r.SerialMakespan))
	t.row("")
	t.row(fmt.Sprintf("%-10s", "policy"), fmt.Sprintf("%10s", "makespan"),
		fmt.Sprintf("%8s", "speedup"), fmt.Sprintf("%7s", "util%"),
		fmt.Sprintf("%10s", "mean wait"), fmt.Sprintf("%10s", "max wait"),
		fmt.Sprintf("%9s", "peakfrag%"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%-10s", row.Policy), fmt.Sprintf("%10d", row.Makespan),
			fmt.Sprintf("%8.2f", row.Speedup), fmt.Sprintf("%7.1f", row.UtilizationPct),
			fmt.Sprintf("%10.1f", row.MeanWait), fmt.Sprintf("%10d", row.MaxWait),
			fmt.Sprintf("%9.1f", row.PeakFragPct))
	}
	return t.String()
}

// Summary flattens the sweep: per-class cell cycles, the serial
// baseline, and every policy's schedule quality.
func (r *PartitionResult) Summary() map[string]float64 {
	m := map[string]float64{
		"machine/pes":     float64(r.MachinePEs),
		"serial/makespan": float64(r.SerialMakespan),
	}
	for _, c := range r.Classes {
		m[fmt.Sprintf("cell/p=%d/cycles", c.PEs)] = float64(c.Cycles)
		m[fmt.Sprintf("cell/p=%d/jobs", c.PEs)] = float64(c.Count)
	}
	for _, row := range r.Rows {
		m[fmt.Sprintf("policy/%s/makespan", row.Policy)] = float64(row.Makespan)
		m[fmt.Sprintf("policy/%s/speedup", row.Policy)] = row.Speedup
		m[fmt.Sprintf("policy/%s/utilization_pct", row.Policy)] = row.UtilizationPct
		m[fmt.Sprintf("policy/%s/mean_wait", row.Policy)] = row.MeanWait
		m[fmt.Sprintf("policy/%s/max_wait", row.Policy)] = float64(row.MaxWait)
		m[fmt.Sprintf("policy/%s/peak_frag_pct", row.Policy)] = row.PeakFragPct
	}
	r.Obs.into(m)
	return m
}
