package experiments

import (
	"fmt"

	"repro/internal/m68k"
	"repro/internal/matmul"
	"repro/internal/plot"
	"repro/internal/stats"
)

// Fig6Row is one problem size of Figure 6.
type Fig6Row struct {
	N      int
	Cycles map[string]int64 // mode name -> execution time
}

// Fig6Result reproduces "Figure 6: Execution time vs. problem size for
// p=8 and one multiply per inner loop": SISD against the three
// parallel versions. Expected shape: the parallel versions are about a
// factor p below SISD; for small n the O(n^2) communication dominates
// and the parallel curves spread; for large n the O(n^3) arithmetic
// dominates and the three parallel curves converge, with
// T_MIMD/T_S/MIMD decreasing in n; SIMD is fastest at one multiply.
type Fig6Result struct {
	P       int
	ClockHz float64
	Rows    []Fig6Row
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// Fig6 runs the sweep: every (n, mode) cell is independent, so the
// full grid fans out across the host workers.
func Fig6(opts Options) (*Fig6Result, error) {
	const p = 8
	r := newRunner(opts)
	out := &Fig6Result{P: p, ClockHz: opts.Config.ClockHz}
	modes := []matmul.Mode{matmul.Serial, matmul.SIMD, matmul.MIMD, matmul.SMIMD}
	var specs []matmul.Spec
	for _, n := range opts.sizes() {
		if n < p {
			continue
		}
		for _, mode := range modes {
			specs = append(specs, matmul.Spec{N: n, P: p, Muls: 1, Mode: mode})
		}
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(specs); i += len(modes) {
		row := Fig6Row{N: specs[i].N, Cycles: map[string]int64{}}
		for k, mode := range modes {
			row.Cycles[mode.String()] = results[i+k].Cycles
		}
		out.Rows = append(out.Rows, row)
	}
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints the series.
func (r *Fig6Result) Render() string {
	var t table
	t.title(fmt.Sprintf("Figure 6: Execution time vs problem size (p=%d, 1 multiply/inner loop)", r.P))
	t.row(fmt.Sprintf("%5s", "n"),
		fmt.Sprintf("%12s", "SISD"), fmt.Sprintf("%12s", "SIMD"),
		fmt.Sprintf("%12s", "MIMD"), fmt.Sprintf("%12s", "S/MIMD"),
		fmt.Sprintf("%8s", "SISD/SIMD"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%5d", row.N),
			cyc(row.Cycles["SISD"]), cyc(row.Cycles["SIMD"]),
			cyc(row.Cycles["MIMD"]), cyc(row.Cycles["S/MIMD"]),
			fmt.Sprintf("%9.2f", stats.Ratio(row.Cycles["SISD"], row.Cycles["SIMD"])))
	}
	t.row("(cycles at", fmt.Sprintf("%.0f MHz; paper reports seconds of the same shape)", r.ClockHz/1e6))
	return t.String()
}

// Fig7Row is one multiply count of Figure 7.
type Fig7Row struct {
	Muls   int
	SIMD   int64
	SMIMD  int64
	Ratio  float64
	Winner string
}

// Fig7Result reproduces "Figure 7: Execution time vs. number of inner
// loop multiplications for n=64 and p=4". The lines are disjoint at
// the endpoints — SIMD faster at few multiplies, S/MIMD faster at
// many — crossing at approximately fourteen multiplies, because each
// asynchronously executed multiply recovers the difference between the
// per-instruction maximum (lockstep) and the per-PE own time.
type Fig7Result struct {
	N, P      int
	Rows      []Fig7Row
	Crossover float64
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// Fig7 runs the sweep, fanning the (muls, mode) grid across the host
// workers.
func Fig7(opts Options) (*Fig7Result, error) {
	r := newRunner(opts)
	out := &Fig7Result{N: 64, P: 4}
	muls := []int{1, 5, 10, 13, 14, 15, 20, 25, 30}
	var specs []matmul.Spec
	for _, m := range muls {
		specs = append(specs,
			matmul.Spec{N: out.N, P: out.P, Muls: m, Mode: matmul.SIMD},
			matmul.Spec{N: out.N, P: out.P, Muls: m, Mode: matmul.SMIMD})
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	var xs []int
	var y1, y2 []int64
	for i, m := range muls {
		rs, rh := results[2*i], results[2*i+1]
		row := Fig7Row{Muls: m, SIMD: rs.Cycles, SMIMD: rh.Cycles,
			Ratio: stats.Ratio(rs.Cycles, rh.Cycles)}
		if rs.Cycles <= rh.Cycles {
			row.Winner = "SIMD"
		} else {
			row.Winner = "S/MIMD"
		}
		out.Rows = append(out.Rows, row)
		xs = append(xs, m)
		y1 = append(y1, rs.Cycles)
		y2 = append(y2, rh.Cycles)
	}
	out.Crossover = stats.Crossover(xs, y1, y2)
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints the series.
func (r *Fig7Result) Render() string {
	var t table
	t.title(fmt.Sprintf("Figure 7: Execution time vs inner-loop multiplies (n=%d, p=%d)", r.N, r.P))
	t.row(fmt.Sprintf("%5s", "muls"), fmt.Sprintf("%12s", "SIMD"),
		fmt.Sprintf("%12s", "S/MIMD"), fmt.Sprintf("%8s", "T_S/T_H"), "  winner")
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%5d", row.Muls), cyc(row.SIMD), cyc(row.SMIMD),
			fmt.Sprintf("%8.4f", row.Ratio), "  "+row.Winner)
	}
	t.row(fmt.Sprintf("crossover at ~%.1f multiplies (paper: ~14)", r.Crossover))
	return t.String()
}

// BreakdownRow is one (n, mode) of Figures 8-10.
type BreakdownRow struct {
	N     int
	Mode  string
	Mult  int64 // multiplication time incl. related address calc + accumulate
	Comm  int64 // communication time incl. transfers, polls/barriers
	Other int64 // C clearing, pointer shifting, residual control
	Total int64
}

// BreakdownResult reproduces "Figures 8/9/10: Contributions to
// execution time" for 1, 14 and 30 multiplies per inner loop at p=4.
// The multiplication component grows as O(n^3/p) against the O(n^2)
// communication, so it dominates for large n; at 14 multiplies the
// SIMD and S/MIMD totals are equal at n=64; at 30 the S/MIMD version
// wins for large n and the gap grows with n.
type BreakdownResult struct {
	Muls int
	P    int
	Rows []BreakdownRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// Breakdown runs the component analysis for the given inner-loop
// multiply count (1, 14 or 30 in the paper).
func Breakdown(opts Options, muls int) (*BreakdownResult, error) {
	r := newRunner(opts)
	out := &BreakdownResult{Muls: muls, P: 4}
	var specs []matmul.Spec
	for _, n := range opts.sizes() {
		if n < out.P {
			continue
		}
		for _, mode := range []matmul.Mode{matmul.SIMD, matmul.SMIMD} {
			specs = append(specs, matmul.Spec{N: n, P: out.P, Muls: muls, Mode: mode})
		}
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		res := results[i]
		out.Rows = append(out.Rows, BreakdownRow{
			N:     spec.N,
			Mode:  spec.Mode.String(),
			Mult:  res.Regions[m68k.RegionMult],
			Comm:  res.Regions[m68k.RegionComm],
			Other: res.Regions[m68k.RegionOther] + res.Regions[m68k.RegionControl],
			Total: res.Cycles,
		})
	}
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints the component table.
func (r *BreakdownResult) Render() string {
	var t table
	fig := map[int]string{1: "Figure 8", 14: "Figure 9", 30: "Figure 10"}[r.Muls]
	if fig == "" {
		fig = "Breakdown"
	}
	t.title(fmt.Sprintf("%s: Contributions to execution time (%d multiplies/inner loop, p=%d)", fig, r.Muls, r.P))
	t.row(fmt.Sprintf("%5s", "n"), fmt.Sprintf("%-7s", "mode"),
		fmt.Sprintf("%12s", "mult"), fmt.Sprintf("%12s", "comm"),
		fmt.Sprintf("%12s", "other"), fmt.Sprintf("%12s", "total"),
		fmt.Sprintf("%7s", "mult%"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%5d", row.N), fmt.Sprintf("%-7s", row.Mode),
			cyc(row.Mult), cyc(row.Comm), cyc(row.Other), cyc(row.Total),
			fmt.Sprintf("%6.1f%%", 100*float64(row.Mult)/float64(row.Total)))
	}
	return t.String()
}

// EffRow is one point of Figures 11/12.
type EffRow struct {
	X          int // n (Fig 11) or p (Fig 12)
	Efficiency map[string]float64
}

// Fig11Result reproduces "Figure 11: Efficiency vs. problem size for
// p=4 and one multiply per inner loop", efficiency being
// T_SISD/(p * T_parallel). Expected shape: S/MIMD and MIMD efficiency
// rise with n (communication is O(n^2) against O(n^3/p) computation)
// and never reach 1, with S/MIMD above MIMD; SIMD exceeds 1
// (superlinear) because the MCs' control-flow work and the queue's
// faster instruction delivery are free, and the benefit grows with n.
type Fig11Result struct {
	P    int
	Rows []EffRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// Fig11 runs the sweep. The serial baseline at each n is just another
// independent cell, so it joins the same fan-out; efficiencies are
// computed after the join.
func Fig11(opts Options) (*Fig11Result, error) {
	const p = 4
	r := newRunner(opts)
	out := &Fig11Result{P: p}
	modes := []matmul.Mode{matmul.Serial, matmul.SIMD, matmul.MIMD, matmul.SMIMD}
	var specs []matmul.Spec
	for _, n := range opts.sizes() {
		if n < p {
			continue
		}
		for _, mode := range modes {
			specs = append(specs, matmul.Spec{N: n, P: p, Muls: 1, Mode: mode})
		}
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(specs); i += len(modes) {
		serial := results[i] // modes[0] is Serial
		row := EffRow{X: specs[i].N, Efficiency: map[string]float64{}}
		for k := 1; k < len(modes); k++ {
			row.Efficiency[modes[k].String()] = stats.Efficiency(serial.Cycles, results[i+k].Cycles, p)
		}
		out.Rows = append(out.Rows, row)
	}
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints the series.
func (r *Fig11Result) Render() string {
	var t table
	t.title(fmt.Sprintf("Figure 11: Efficiency vs problem size (p=%d, 1 multiply/inner loop)", r.P))
	t.row(fmt.Sprintf("%5s", "n"), fmt.Sprintf("%8s", "SIMD"),
		fmt.Sprintf("%8s", "S/MIMD"), fmt.Sprintf("%8s", "MIMD"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%5d", row.X),
			fmt.Sprintf("%8.3f", row.Efficiency["SIMD"]),
			fmt.Sprintf("%8.3f", row.Efficiency["S/MIMD"]),
			fmt.Sprintf("%8.3f", row.Efficiency["MIMD"]))
	}
	t.row("(efficiency = T_SISD / (p * T_parallel); SIMD > 1 is the paper's superlinear speed-up)")
	return t.String()
}

// Fig12Result reproduces "Figure 12: Efficiency vs. number of
// processors for n=64 and one multiply per inner loop": efficiency
// drops as p grows because n/p shrinks and communication and other
// non-serial overheads gain weight against computation.
type Fig12Result struct {
	N    int
	Rows []EffRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// Fig12 runs the sweep across the host workers.
func Fig12(opts Options) (*Fig12Result, error) {
	const n = 64
	r := newRunner(opts)
	out := &Fig12Result{N: n}
	ps := []int{4, 8, 16}
	modes := []matmul.Mode{matmul.SIMD, matmul.MIMD, matmul.SMIMD}
	specs := []matmul.Spec{{N: n, Muls: 1, Mode: matmul.Serial}}
	for _, p := range ps {
		for _, mode := range modes {
			specs = append(specs, matmul.Spec{N: n, P: p, Muls: 1, Mode: mode})
		}
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	serial := results[0]
	for j, p := range ps {
		row := EffRow{X: p, Efficiency: map[string]float64{}}
		for k, mode := range modes {
			res := results[1+j*len(modes)+k]
			row.Efficiency[mode.String()] = stats.Efficiency(serial.Cycles, res.Cycles, p)
		}
		out.Rows = append(out.Rows, row)
	}
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints the series.
func (r *Fig12Result) Render() string {
	var t table
	t.title(fmt.Sprintf("Figure 12: Efficiency vs number of processors (n=%d, 1 multiply/inner loop)", r.N))
	t.row(fmt.Sprintf("%5s", "p"), fmt.Sprintf("%8s", "SIMD"),
		fmt.Sprintf("%8s", "S/MIMD"), fmt.Sprintf("%8s", "MIMD"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%5d", row.X),
			fmt.Sprintf("%8.3f", row.Efficiency["SIMD"]),
			fmt.Sprintf("%8.3f", row.Efficiency["S/MIMD"]),
			fmt.Sprintf("%8.3f", row.Efficiency["MIMD"]))
	}
	return t.String()
}

// Plot renders Figure 6 as an ASCII chart (log-scale execution time vs
// problem size, like the paper's figure).
func (r *Fig6Result) Plot() string {
	series := make([]plot.Series, 0, 4)
	for _, name := range []string{"SISD", "SIMD", "MIMD", "S/MIMD"} {
		s := plot.Series{Name: name}
		for _, row := range r.Rows {
			s.X = append(s.X, float64(row.N))
			s.Y = append(s.Y, float64(row.Cycles[name]))
		}
		series = append(series, s)
	}
	p := plot.Plot{
		Title:  fmt.Sprintf("Figure 6 (shape): execution time vs n, p=%d", r.P),
		XLabel: "n", YLabel: "cycles", LogY: true, Series: series,
	}
	return p.Render()
}

// Plot renders Figure 7 as an ASCII chart.
func (r *Fig7Result) Plot() string {
	var simd, smimd plot.Series
	simd.Name, smimd.Name = "SIMD", "S/MIMD"
	for _, row := range r.Rows {
		simd.X = append(simd.X, float64(row.Muls))
		simd.Y = append(simd.Y, float64(row.SIMD))
		smimd.X = append(smimd.X, float64(row.Muls))
		smimd.Y = append(smimd.Y, float64(row.SMIMD))
	}
	p := plot.Plot{
		Title:  fmt.Sprintf("Figure 7 (shape): time vs inner-loop multiplies, n=%d p=%d", r.N, r.P),
		XLabel: "multiplies", YLabel: "cycles", Series: []plot.Series{simd, smimd},
	}
	return p.Render()
}

// effPlot renders an efficiency chart shared by Figures 11 and 12.
func effPlot(title, xlabel string, rows []EffRow) string {
	series := make([]plot.Series, 0, 3)
	for _, name := range []string{"SIMD", "S/MIMD", "MIMD"} {
		s := plot.Series{Name: name}
		for _, row := range rows {
			s.X = append(s.X, float64(row.X))
			s.Y = append(s.Y, row.Efficiency[name])
		}
		series = append(series, s)
	}
	p := plot.Plot{Title: title, XLabel: xlabel, YLabel: "efficiency", Series: series}
	return p.Render()
}

// Plot renders Figure 11 as an ASCII chart.
func (r *Fig11Result) Plot() string {
	return effPlot(fmt.Sprintf("Figure 11 (shape): efficiency vs n, p=%d", r.P), "n", r.Rows)
}

// Plot renders Figure 12 as an ASCII chart.
func (r *Fig12Result) Plot() string {
	return effPlot(fmt.Sprintf("Figure 12 (shape): efficiency vs p, n=%d", r.N), "p", r.Rows)
}
