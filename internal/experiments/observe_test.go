package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// obsKeys counts the "obs/"-prefixed keys in a summary.
func obsKeys(m map[string]float64) int {
	n := 0
	for k := range m {
		if strings.HasPrefix(k, "obs/") {
			n++
		}
	}
	return n
}

// TestObserveDeterministicAcrossParallelism: with the observability
// layer attached, both the rendered table and the full summary
// (including the aggregated obs/ metrics) are identical no matter how
// many host goroutines run the experiment cells — the metric merges
// are commutative, so cell completion order cannot show through.
func TestObserveDeterministicAcrossParallelism(t *testing.T) {
	opts := DefaultOptions()
	opts.Observe = true

	o1 := opts
	o1.Parallelism = 1
	r1, err := Table1(o1)
	if err != nil {
		t.Fatal(err)
	}
	o4 := opts
	o4.Parallelism = 4
	r4, err := Table1(o4)
	if err != nil {
		t.Fatal(err)
	}

	if r1.Render() != r4.Render() {
		t.Error("rendered tables differ across parallelism")
	}
	if !reflect.DeepEqual(r1.Summary(), r4.Summary()) {
		t.Error("summaries (with obs/ metrics) differ across parallelism")
	}
	if n := obsKeys(r1.Summary()); n == 0 {
		t.Error("Observe produced no obs/ summary keys")
	}
}

// TestObserveOffIsInvisible: without Options.Observe the summary must
// carry no obs/ keys — the v1 JSON surface is untouched.
func TestObserveOffIsInvisible(t *testing.T) {
	opts := DefaultOptions()
	opts.Parallelism = 2
	r, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := obsKeys(r.Summary()); n != 0 {
		t.Errorf("Observe off left %d obs/ keys in the summary", n)
	}
}
