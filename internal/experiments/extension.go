package experiments

import (
	"fmt"
	"math"

	"repro/internal/matmul"
	"repro/internal/model"
	"repro/internal/pasm"
	"repro/internal/stats"
)

// machineModel builds the analytic model from a machine configuration.
func machineModel(cfg pasm.Config) model.Machine {
	return model.Machine{
		DRAMWaitStates: float64(cfg.DRAMWaitStates),
		RefreshPeriod:  float64(cfg.RefreshPeriod),
		RefreshStall:   float64(cfg.RefreshStall),
		BarrierExtra:   float64(cfg.BarrierExtra),
		PEsPerMC:       cfg.PEsPerMC,
	}
}

// CrossoverVsPRow is one PE count of the extension experiment.
type CrossoverVsPRow struct {
	P         int
	Measured  float64 // simulator crossover (multiplies per inner loop)
	Predicted float64 // analytic model crossover
}

// CrossoverVsPResult extends Figure 7 beyond the paper: the SIMD vs
// S/MIMD crossover as a function of PE count at n=64. The analytic
// model (internal/model) predicts a non-obvious shape: SIMD lockstep
// release is per MC *group* of 4 PEs, so its per-multiply worst case
// does not grow past p=4, while the S/MIMD barriers span the whole
// partition and cols = n/p shrinks — so the residual worst-case
// charging S/MIMD pays at barrier granularity grows with p and the
// crossover moves *later* (and disappears by p=16 at n=64).
type CrossoverVsPResult struct {
	N    int
	Rows []CrossoverVsPRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// CrossoverVsP runs the sweep and the model side by side; the whole
// (p, muls, mode) grid fans out across the host workers.
func CrossoverVsP(opts Options) (*CrossoverVsPResult, error) {
	const n = 64
	r := newRunner(opts)
	m := machineModel(opts.Config)
	out := &CrossoverVsPResult{N: n}
	muls := []int{1, 4, 8, 12, 16, 20, 26, 32}
	ps := []int{4, 8, 16}
	var specs []matmul.Spec
	for _, p := range ps {
		for _, mm := range muls {
			specs = append(specs,
				matmul.Spec{N: n, P: p, Muls: mm, Mode: matmul.SIMD},
				matmul.Spec{N: n, P: p, Muls: mm, Mode: matmul.SMIMD})
		}
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	for j, p := range ps {
		var xs []int
		var ys, yh []int64
		base := j * 2 * len(muls)
		for k, mm := range muls {
			xs = append(xs, mm)
			ys = append(ys, results[base+2*k].Cycles)
			yh = append(yh, results[base+2*k+1].Cycles)
		}
		out.Rows = append(out.Rows, CrossoverVsPRow{
			P:         p,
			Measured:  stats.Crossover(xs, ys, yh),
			Predicted: m.PredictCrossover(n, p),
		})
	}
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints measured vs predicted.
func (r *CrossoverVsPResult) Render() string {
	var t table
	t.title(fmt.Sprintf("Extension: SIMD/S-MIMD crossover vs PE count (n=%d)", r.N))
	t.row(fmt.Sprintf("%5s", "p"), fmt.Sprintf("%10s", "measured"), fmt.Sprintf("%10s", "model"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%5d", row.P),
			fmt.Sprintf("%10.1f", row.Measured),
			fmt.Sprintf("%10.1f", row.Predicted))
	}
	t.row("(multiplies per inner loop at which S/MIMD overtakes SIMD; NaN = no")
	t.row(" crossover in 1..32. Group-local lockstep vs partition-wide barriers")
	t.row(" pushes the crossover later as p grows.)")
	return t.String()
}

// ModelRow is one comparison of the model-validation experiment.
type ModelRow struct {
	Name      string
	Simulated float64
	Predicted float64
	RelErr    float64
}

// ModelResult cross-validates the analytic model of internal/model
// against the simulator: per-multiply costs in each mode and the
// component the paper's equations describe.
type ModelResult struct {
	Rows []ModelRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// ModelValidation measures per-multiply marginal costs by differencing
// two multiply counts, and compares them with the closed forms.
func ModelValidation(opts Options) (*ModelResult, error) {
	const n, p, m1, m2 = 64, 4, 8, 24
	r := newRunner(opts)
	m := machineModel(opts.Config)
	cols := n / p
	elems := float64(model.Multiplies(n, p)) // inner-loop iterations

	results, err := r.execAll([]matmul.Spec{
		{N: n, P: p, Muls: m1, Mode: matmul.SIMD},
		{N: n, P: p, Muls: m2, Mode: matmul.SIMD},
		{N: n, P: p, Muls: m1, Mode: matmul.SMIMD},
		{N: n, P: p, Muls: m2, Mode: matmul.SMIMD},
	})
	if err != nil {
		return nil, err
	}
	perMul := func(a, b pasm.RunResult) float64 {
		return float64(b.Cycles-a.Cycles) / float64(m2-m1) / elems
	}
	simdMul := perMul(results[0], results[1])
	smimdMul := perMul(results[2], results[3])

	predSIMD := m.SIMDPerMul(p, cols)
	predSMIMD := m.SMIMDPerMul(p, cols)

	out := &ModelResult{}
	add := func(name string, sim, pred float64) {
		out.Rows = append(out.Rows, ModelRow{
			Name: name, Simulated: sim, Predicted: pred,
			RelErr: math.Abs(sim-pred) / sim,
		})
	}
	add("SIMD cycles/multiply", simdMul, predSIMD)
	add("S/MIMD cycles/multiply", smimdMul, predSMIMD)
	add("net decoupling gain/multiply", simdMul-smimdMul, m.NetGainPerMul(p, cols))
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints the comparison.
func (r *ModelResult) Render() string {
	var t table
	t.title("Extension: analytic model vs simulator (n=64, p=4)")
	t.row(fmt.Sprintf("%-30s", "quantity"), fmt.Sprintf("%10s", "simulated"),
		fmt.Sprintf("%10s", "model"), fmt.Sprintf("%8s", "rel.err"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%-30s", row.Name),
			fmt.Sprintf("%10.2f", row.Simulated),
			fmt.Sprintf("%10.2f", row.Predicted),
			fmt.Sprintf("%7.1f%%", 100*row.RelErr))
	}
	return t.String()
}

// FaultRow is one fault scenario.
type FaultRow struct {
	Scenario string
	Detail   string
	Cycles   int64 // 0 when the scenario is connection-level only
	OK       bool
}

// FaultResult probes the Extra-Stage Cube's fault tolerance end to
// end, at the fidelity the hardware actually provides:
//
//   - a fault outside the partition's traffic leaves the matrix
//     multiplication bit- and cycle-identical (partition isolation);
//   - with a fault anywhere, every single source/destination
//     connection remains routable (the ESC one-fault guarantee), which
//     is checked exhaustively;
//   - the full shift *permutation* of an active partition saturates
//     its sub-network, so a fault on a used box forces the ESC's
//     two-pass permutation mode — reported honestly rather than
//     simulated, since the static-circuit matmul programs assume
//     single-pass circuits.
type FaultResult struct {
	N, P int
	Rows []FaultRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// FaultTolerance runs the scenario matrix. The scenarios build on one
// another narratively (baseline, then faults), so this experiment
// intentionally stays serial regardless of Options.Parallelism.
func FaultTolerance(opts Options) (*FaultResult, error) {
	const n, p = 16, 8
	out := &FaultResult{N: n, P: p}
	a := matmul.Identity(n)
	b := matmul.Random(n, opts.Seed)
	prog, l, err := matmul.Build(matmul.Spec{N: n, P: p, Muls: 1, Mode: matmul.MIMD})
	if err != nil {
		return nil, err
	}
	cfg := opts.Config
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}

	o := newObserver(opts)
	runMatmul := func(name, detail string, stage, box int) error {
		ccfg, rec := o.cell(cfg)
		vm, err := pasm.NewVM(ccfg, p)
		if err != nil {
			return err
		}
		if stage >= 0 {
			if err := vm.FailNetworkBox(stage, box); err != nil {
				return err
			}
		}
		if err := vm.EstablishShift(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := matmul.Load(vm, l, a, b); err != nil {
			return err
		}
		res, err := vm.RunMIMD(prog)
		if err != nil {
			return err
		}
		opts.tally(res)
		c, err := matmul.ReadC(vm, l)
		if err != nil {
			return err
		}
		o.done(rec)
		out.Rows = append(out.Rows, FaultRow{
			Scenario: name, Detail: detail, Cycles: res.Cycles, OK: matmul.Equal(c, b),
		})
		return nil
	}

	if err := runMatmul("matmul, fault-free", "baseline", -1, 0); err != nil {
		return nil, err
	}
	// Box (1,7) serves lines 14/15, outside the p=8 partition.
	if err := runMatmul("matmul, fault outside partition", "box (stage 1, box 7) failed", 1, 7); err != nil {
		return nil, err
	}

	// Connection-level guarantee: with a fault on a *used* interior
	// box, every single (src, dst) pair must still route.
	routable, total, err := connectionSurvey(cfg, 2, 0)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, FaultRow{
		Scenario: "every single connection, used box (2,0) failed",
		Detail:   fmt.Sprintf("%d/%d src-dst pairs routable", routable, total),
		OK:       routable == total,
	})

	// Permutation-level: the saturating shift is NOT one-pass routable
	// with that fault; the hardware would fall back to two passes.
	vm, err := pasm.NewVM(cfg, p)
	if err != nil {
		return nil, err
	}
	if err := vm.FailNetworkBox(2, 0); err != nil {
		return nil, err
	}
	shiftErr := vm.EstablishShift()
	out.Rows = append(out.Rows, FaultRow{
		Scenario: "full shift permutation, used box (2,0) failed",
		Detail:   "one-pass unroutable as expected; ESC completes such permutations in two passes",
		OK:       shiftErr != nil,
	})
	out.Obs = o.metrics()
	return out, nil
}

// connectionSurvey counts routable single connections under a fault.
func connectionSurvey(cfg pasm.Config, stage, box int) (routable, total int, err error) {
	vm, err := pasm.NewVM(cfg, cfg.NumPEs)
	if err != nil {
		return 0, 0, err
	}
	if err := vm.FailNetworkBox(stage, box); err != nil {
		return 0, 0, err
	}
	n := cfg.NumPEs
	perm := make([]int, n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			for i := range perm {
				perm[i] = -1
			}
			perm[src] = dst
			total++
			if vm.EstablishPermutation(perm) == nil {
				routable++
			}
		}
	}
	return routable, total, nil
}

// Render prints the scenarios.
func (r *FaultResult) Render() string {
	var t table
	t.title(fmt.Sprintf("Extension: Extra-Stage Cube fault tolerance (matmul MIMD, n=%d, p=%d)", r.N, r.P))
	t.row(fmt.Sprintf("%-48s", "scenario"), fmt.Sprintf("%12s", "cycles"), fmt.Sprintf("%-8s", "result"), "detail")
	for _, row := range r.Rows {
		status := "ok"
		if !row.OK {
			status = "FAILED"
		}
		cycles := "-"
		if row.Cycles > 0 {
			cycles = fmt.Sprintf("%d", row.Cycles)
		}
		t.row(fmt.Sprintf("%-48s", row.Scenario), fmt.Sprintf("%12s", cycles),
			fmt.Sprintf("%-8s", status), row.Detail)
	}
	return t.String()
}

// MixedRow is one multiply count of the mixed-mode experiment.
type MixedRow struct {
	Muls  int
	SIMD  int64
	Mixed int64
	SMIMD int64
}

// MixedResult quantifies the architecture feature the paper proposes
// but does not implement: decoupling ONLY the variable-time multiply
// grain out of the SIMD stream (a broadcast jump into an asynchronous
// burst, rejoining through the SIMD space). The measured outcome is a
// sharp negative that refines the paper's granularity question: the
// burst reuses one multiplier, so its execution-time variation is
// perfectly correlated across the burst — the rejoin pays exactly the
// per-instruction lockstep maximum, and the two mode switches are pure
// overhead. Fine-grained decoupling only pays when the decoupled
// section aggregates many INDEPENDENT variable-time draws, which is
// what S/MIMD's per-rotation granularity (n/p independent multipliers)
// provides.
type MixedResult struct {
	N, P int
	Rows []MixedRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// MixedMode runs the comparison across the host workers.
func MixedMode(opts Options) (*MixedResult, error) {
	r := newRunner(opts)
	out := &MixedResult{N: 64, P: 4}
	muls := []int{1, 5, 14, 30}
	var specs []matmul.Spec
	for _, m := range muls {
		specs = append(specs,
			matmul.Spec{N: out.N, P: out.P, Muls: m, Mode: matmul.SIMD},
			matmul.Spec{N: out.N, P: out.P, Muls: m, Mode: matmul.Mixed},
			matmul.Spec{N: out.N, P: out.P, Muls: m, Mode: matmul.SMIMD})
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	for i, m := range muls {
		out.Rows = append(out.Rows, MixedRow{Muls: m,
			SIMD: results[3*i].Cycles, Mixed: results[3*i+1].Cycles, SMIMD: results[3*i+2].Cycles})
	}
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints the comparison.
func (r *MixedResult) Render() string {
	var t table
	t.title(fmt.Sprintf("Extension: fine-grained mixed-mode decoupling (n=%d, p=%d)", r.N, r.P))
	t.row(fmt.Sprintf("%5s", "muls"), fmt.Sprintf("%12s", "SIMD"),
		fmt.Sprintf("%12s", "Mixed"), fmt.Sprintf("%12s", "S/MIMD"),
		fmt.Sprintf("%10s", "Mixed/SIMD"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%5d", row.Muls), cyc(row.SIMD), cyc(row.Mixed), cyc(row.SMIMD),
			fmt.Sprintf("%10.4f", float64(row.Mixed)/float64(row.SIMD)))
	}
	t.row("(Mixed = per-element asynchronous multiply bursts inside the SIMD program.")
	t.row(" It never overtakes SIMD here: one multiplier is reused through the burst,")
	t.row(" so the rejoin pays the full lockstep maximum and the switches are overhead.")
	t.row(" Decoupling pays only when a section aggregates independent variable-time")
	t.row(" draws - the sharpened form of the paper's granularity question.)")
	return t.String()
}
