package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/partition"
)

// TestPartitionSweepShape: the co-scheduling sweep on the prototype
// machine builds the two size classes that fit 16 PEs, beats (or ties)
// the serial whole-machine baseline under every policy, and renders a
// row per policy.
func TestPartitionSweepShape(t *testing.T) {
	res, err := PartitionSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.MachinePEs != 16 {
		t.Fatalf("machine = %d PEs, want the 16-PE prototype", res.MachinePEs)
	}
	if len(res.Classes) != 2 || res.Classes[0].PEs != 4 || res.Classes[1].PEs != 16 {
		t.Fatalf("classes = %+v, want the 4- and 16-PE classes", res.Classes)
	}
	for _, c := range res.Classes {
		if c.Cycles <= 0 {
			t.Errorf("class p=%d measured %d cycles", c.PEs, c.Cycles)
		}
	}
	if len(res.Rows) != len(partition.Policies()) {
		t.Fatalf("rows = %d, want one per policy", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Makespan <= 0 || row.Makespan > res.SerialMakespan {
			t.Errorf("%s: makespan %d outside (0, serial %d]", row.Policy, row.Makespan, res.SerialMakespan)
		}
		if row.Speedup < 1 {
			t.Errorf("%s: speedup %.2f < 1 (co-scheduling can never lose to serial)", row.Policy, row.Speedup)
		}
		if row.UtilizationPct <= 0 || row.UtilizationPct > 100 {
			t.Errorf("%s: utilization %.1f%%", row.Policy, row.UtilizationPct)
		}
	}
	out := res.Render()
	for _, want := range []string{"firstfit", "bestfit", "sizeaware", "serial whole-machine baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	sum := res.Summary()
	for _, key := range []string{"machine/pes", "serial/makespan", "cell/p=4/cycles",
		"policy/firstfit/makespan", "policy/bestfit/speedup", "policy/sizeaware/peak_frag_pct"} {
		if _, ok := sum[key]; !ok {
			t.Errorf("summary missing %q", key)
		}
	}
}

// TestPartitionSweepScalesWithMachine: pes=64 admits the 64-PE class
// and changes the schedule, which is why pes is part of the cache key.
func TestPartitionSweepScalesWithMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("64-PE class simulates an n=64 cell")
	}
	opts := quickOpts()
	applyPEs(&opts.Config, 64)
	res, err := PartitionSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.MachinePEs != 64 || len(res.Classes) != 3 || res.Classes[2].PEs != 64 {
		t.Fatalf("machine=%d classes=%+v, want the 64-PE class present", res.MachinePEs, res.Classes)
	}
	if _, ok := res.Summary()["cell/p=64/cycles"]; !ok {
		t.Error("summary missing the 64-PE class")
	}
}

// TestPartitionSweepDeterministic: the report is byte-identical for
// any host parallelism (the schedule is a discrete-event simulation on
// the simulated clock, not host goroutine timing).
func TestPartitionSweepDeterministic(t *testing.T) {
	spec := Spec{Exps: []string{"ext-partition"}, Seed: 1988}
	marshal := func(parallelism int) []byte {
		t.Helper()
		opts := DefaultOptions()
		opts.Parallelism = parallelism
		rep, err := RunSpec(spec, RunConfig{Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		buf, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if a, b := marshal(1), marshal(4); !bytes.Equal(a, b) {
		t.Errorf("ext-partition report depends on host parallelism:\n%s\nvs\n%s", a, b)
	}
}
