package experiments

import (
	"strings"
	"testing"
)

// TestSpecCanonicalGolden pins the canonical encoding byte-for-byte.
// The encoding is the result-cache key, so any change here silently
// invalidates (or worse, aliases) cached results: if this test fails,
// bump SpecVersion rather than updating the golden strings in place.
func TestSpecCanonicalGolden(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{
			name: "table1",
			spec: Spec{Exps: []string{"table1"}, Seed: 1988},
			want: `{"exps":["table1"],"full":false,"observe":false,"pes":16,"seed":1988,"v":2}`,
		},
		{
			name: "alias all expands",
			spec: Spec{Exps: []string{"all"}, Full: true, Seed: 7, Observe: true},
			want: `{"exps":["table1","fig6","fig7","fig8","fig9","fig10","fig11","fig12"],` +
				`"full":true,"observe":true,"pes":16,"seed":7,"v":2}`,
		},
		{
			name: "alias ext expands",
			spec: Spec{Exps: []string{"ext"}, Seed: 1988},
			want: `{"exps":["ext-crossover","ext-model","ext-fault","ext-workloads","ext-mixed","ext-partition"],` +
				`"full":false,"observe":false,"pes":16,"seed":1988,"v":2}`,
		},
		{
			name: "cells only",
			spec: Spec{Cells: []CellSpec{{N: 64, P: 4, Muls: 1, Mode: "MIMD"}}, Seed: 1988},
			want: `{"cells":[{"mode":"mimd","muls":1,"n":64,"p":4}],"full":false,"observe":false,"pes":16,"seed":1988,"v":2}`,
		},
		{
			name: "serial cell normalizes p",
			spec: Spec{Cells: []CellSpec{{N: 16, P: 8, Muls: 2, Mode: "serial"}}, Seed: 3},
			want: `{"cells":[{"mode":"sisd","muls":2,"n":16,"p":1}],"full":false,"observe":false,"pes":16,"seed":3,"v":2}`,
		},
		{
			name: "explicit pes",
			spec: Spec{Exps: []string{"table1"}, PEs: 64, Seed: 1988},
			want: `{"exps":["table1"],"full":false,"observe":false,"pes":64,"seed":1988,"v":2}`,
		},
		{
			name: "small machine for cells",
			spec: Spec{Cells: []CellSpec{{N: 8, P: 2, Muls: 1, Mode: "simd"}}, PEs: 2, Seed: 5},
			want: `{"cells":[{"mode":"simd","muls":1,"n":8,"p":2}],"full":false,"observe":false,"pes":2,"seed":5,"v":2}`,
		},
		{
			name: "mixed exps and cells",
			spec: Spec{Exps: []string{" fig7 ", "table1"}, Cells: []CellSpec{{N: 8, P: 2, Muls: 1, Mode: "smimd"}}, Seed: 1},
			want: `{"cells":[{"mode":"smimd","muls":1,"n":8,"p":2}],"exps":["fig7","table1"],` +
				`"full":false,"observe":false,"pes":16,"seed":1,"v":2}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := c.spec.Canonical()
			if err != nil {
				t.Fatalf("Canonical: %v", err)
			}
			if string(got) != c.want {
				t.Errorf("canonical encoding drifted\n got: %s\nwant: %s", got, c.want)
			}
		})
	}
}

func TestSpecCanonicalInvalid(t *testing.T) {
	for _, spec := range []Spec{
		{},                        // empty
		{Exps: []string{"fig99"}}, // unknown experiment
		{Cells: []CellSpec{{N: 3, P: 1, Muls: 1, Mode: "simd"}}},         // n not a power of two
		{Cells: []CellSpec{{N: 8, P: 2, Muls: 1, Mode: "warp"}}},         // unknown mode
		{Cells: []CellSpec{{N: 8, P: 2, Muls: 99, Mode: "simd"}}},        // muls over queue bound
		{Exps: []string{"table1"}, PEs: 24},                              // pes not a power of two
		{Exps: []string{"table1"}, PEs: 2048},                            // pes above the 1024-PE ceiling
		{Exps: []string{"table1"}, PEs: 8},                               // named sweep below the prototype size
		{Cells: []CellSpec{{N: 8, P: 4, Muls: 1, Mode: "simd"}}, PEs: 2}, // cell p over the machine
	} {
		if _, err := spec.Canonical(); err == nil {
			t.Errorf("Canonical(%+v): expected error, got none", spec)
		}
	}
}

// TestSpecKeySensitivity: changing any spec field changes the key, and
// equivalent spellings of the same spec share it.
func TestSpecKeySensitivity(t *testing.T) {
	base := Spec{Exps: []string{"table1"}, Cells: []CellSpec{{N: 64, P: 4, Muls: 1, Mode: "mimd"}}, Seed: 1988}
	baseKey, err := base.KeyString()
	if err != nil {
		t.Fatal(err)
	}

	variants := map[string]Spec{
		"exps":    {Exps: []string{"fig6"}, Cells: base.Cells, Seed: 1988},
		"cell n":  {Exps: base.Exps, Cells: []CellSpec{{N: 32, P: 4, Muls: 1, Mode: "mimd"}}, Seed: 1988},
		"cell p":  {Exps: base.Exps, Cells: []CellSpec{{N: 64, P: 8, Muls: 1, Mode: "mimd"}}, Seed: 1988},
		"muls":    {Exps: base.Exps, Cells: []CellSpec{{N: 64, P: 4, Muls: 2, Mode: "mimd"}}, Seed: 1988},
		"mode":    {Exps: base.Exps, Cells: []CellSpec{{N: 64, P: 4, Muls: 1, Mode: "smimd"}}, Seed: 1988},
		"full":    {Exps: base.Exps, Cells: base.Cells, Full: true, Seed: 1988},
		"seed":    {Exps: base.Exps, Cells: base.Cells, Seed: 1989},
		"observe": {Exps: base.Exps, Cells: base.Cells, Seed: 1988, Observe: true},
		"pes":     {Exps: base.Exps, Cells: base.Cells, Seed: 1988, PEs: 64},
	}
	for name, v := range variants {
		k, err := v.KeyString()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == baseKey {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}

	// Equivalent spellings collapse to one key.
	same := Spec{Exps: []string{"TABLE1"}, Cells: []CellSpec{{N: 64, P: 4, Muls: 1, Mode: "MIMD"}}, Seed: 1988}
	if k, err := same.KeyString(); err != nil || k != baseKey {
		t.Errorf("equivalent spelling got key %s err %v, want %s", k, err, baseKey)
	}
}

// TestRunSpecMatchesDirect: the shared runner produces the same
// summaries as calling the experiment functions directly, and the
// deterministic (no-timings) report marshals identically across runs
// and parallelism levels.
func TestRunSpecMatchesDirect(t *testing.T) {
	spec := Spec{Exps: []string{"table1"}, Seed: 1988}
	opts := DefaultOptions()
	opts.Parallelism = 1

	var hooked []string
	rep, err := RunSpec(spec, RunConfig{Options: opts, Hook: func(name string, res Result, _ float64) {
		hooked = append(hooked, name)
		if res.Render() == "" {
			t.Errorf("%s: empty render", name)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != "table1" {
		t.Fatalf("hook saw %v, want [table1]", hooked)
	}
	direct, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Summary()
	got := rep.Experiments[0].Summary
	if len(got) != len(want) {
		t.Fatalf("summary has %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("summary[%q] = %v, want %v", k, got[k], v)
		}
	}

	b1, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b1), "host_seconds") || strings.Contains(string(b1), "parallel") {
		t.Errorf("deterministic report leaked host fields:\n%s", b1)
	}
	opts.Parallelism = 4
	rep2, err := RunSpec(spec, RunConfig{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("deterministic report differs across parallelism levels")
	}
}

// TestRunSpecCustomCells runs a tiny custom cell through the shared
// runner and checks the "custom" experiment shows up with cycle keys.
func TestRunSpecCustomCells(t *testing.T) {
	spec := Spec{Cells: []CellSpec{{N: 8, P: 2, Muls: 1, Mode: "smimd"}}, Seed: 1988}
	opts := DefaultOptions()
	opts.Parallelism = 1
	rep, err := RunSpec(spec, RunConfig{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "custom" {
		t.Fatalf("experiments = %+v, want one custom entry", rep.Experiments)
	}
	if _, ok := rep.Experiments[0].Summary["cycles/smimd/n=8/p=2/muls=1"]; !ok {
		t.Errorf("custom summary missing cycle key; got %v", rep.Experiments[0].Summary)
	}
}
