package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/pasm"
)

// SchemaV2 is the report schema identifier (cmd/pasmbench -json v2).
const SchemaV2 = "pasmbench/v2"

// SchemaV21 extends v2 with the active interpreter tier and the
// segment-cache totals in the observe section. Every v2 field is
// intact; v2 consumers that tolerate unknown fields read v2.1
// documents unchanged.
const SchemaV21 = "pasmbench/v2.1"

// SchemaV22 extends v2.1 with the simulated machine size ("pes").
// Results depend on it (ext-workloads and ext-partition scale with
// the machine; cells are bounded by it), so consumers that cache or
// byte-compare reports must treat it as part of the identity — the
// service's fill validation rejects documents whose pes disagrees
// with the key's spec.
const SchemaV22 = "pasmbench/v2.2"

// Result is what every experiment produces: a rendered table. Concrete
// results usually also implement Summarizer and sometimes Plotter.
type Result interface{ Render() string }

// Plotter is implemented by results that can render ASCII charts.
type Plotter interface{ Plot() string }

// Summarizer exposes an experiment's simulated metrics for reports.
type Summarizer interface {
	Summary() map[string]float64
}

// ReportExperiment is one experiment's entry in a Report. HostSeconds
// is host wall-clock and therefore non-deterministic; deterministic
// reports (RunConfig.Timings false — the pasmd service path) omit it.
type ReportExperiment struct {
	Name        string             `json:"name"`
	HostSeconds float64            `json:"host_seconds,omitempty"`
	Summary     map[string]float64 `json:"summary,omitempty"`
}

// InterpInfo is the report's v2.1 observe-section extension: which
// interpreter tier simulated the spec and how the segment cache
// behaved. The simulated numbers are identical for every tier (the
// differential tests enforce it), so this records provenance and
// cache effectiveness, not semantics. The counters are totals across
// every cell's VM; summation is commutative, so they are
// deterministic for any host parallelism.
type InterpInfo struct {
	Tier       string `json:"tier"`
	MemoHits   int64  `json:"memo_hits"`
	MemoMisses int64  `json:"memo_misses"`
}

// Report is the machine-readable result of running a Spec: the
// pasmbench -json v2.1 document. All summary values are simulated
// quantities; with Timings disabled the whole document is a pure
// function of (Spec, CodeVersion, interpreter tier), which is what
// lets the service cache it and the remote CLI byte-compare it
// against a local run.
type Report struct {
	Schema      string             `json:"schema"`
	Full        bool               `json:"full"`
	PEs         int                `json:"pes"`
	Seed        uint32             `json:"seed"`
	Parallel    int                `json:"parallel,omitempty"`
	Observe     bool               `json:"observe"`
	Interp      *InterpInfo        `json:"interp,omitempty"`
	HostSeconds float64            `json:"host_seconds,omitempty"`
	Experiments []ReportExperiment `json:"experiments"`
}

// Marshal renders the report exactly as cmd/pasmbench writes it
// (indented JSON plus a trailing newline). Every producer must go
// through this so the service path and the in-process path emit
// identical bytes.
func (r *Report) Marshal() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// RunHook observes each experiment as it completes, in report order
// (cmd/pasmbench uses it to print the rendered tables). hostSeconds is
// zero when timings are disabled.
type RunHook func(name string, res Result, hostSeconds float64)

// RunConfig carries the execution parameters that are NOT part of the
// spec — everything here is forbidden from changing the result bytes
// except Timings, which only toggles the non-deterministic host
// wall-clock fields.
type RunConfig struct {
	// Options supplies the machine config and host parallelism. Its
	// Full, Seed, and Observe fields are overwritten from the spec.
	Options Options
	// Timings records host wall-clock and the parallelism level in the
	// report. Leave false for deterministic (cacheable, byte-comparable)
	// output.
	Timings bool
	// Hook, when non-nil, sees each result as it completes.
	Hook RunHook
}

// OptionsFor maps a spec onto execution options: the spec supplies
// everything result-affecting (Full, Seed, Observe), the caller
// supplies the host parallelism. This is the one place the CLI tools
// and the service translate a spec into engine options.
func OptionsFor(spec Spec, parallelism int) (Options, error) {
	n, err := spec.Normalize()
	if err != nil {
		return Options{}, err
	}
	opts := DefaultOptions()
	opts.Full = n.Full
	opts.Seed = n.Seed
	opts.Observe = n.Observe
	opts.Parallelism = parallelism
	applyPEs(&opts.Config, n.PEs)
	return opts, nil
}

// applyPEs resizes a machine config to the spec's machine size,
// clamping the MC group size for machines smaller than a group (the
// same clamp a partition lease applies).
func applyPEs(cfg *pasm.Config, pes int) {
	cfg.NumPEs = pes
	if cfg.PEsPerMC > pes {
		cfg.PEsPerMC = pes
	}
}

// runnersByName maps every named experiment to its runner.
var runnersByName = map[string]func(Options) (Result, error){
	"table1": func(o Options) (Result, error) { return Table1(o) },
	"fig6":   func(o Options) (Result, error) { return Fig6(o) },
	"fig7":   func(o Options) (Result, error) { return Fig7(o) },
	"fig8":   func(o Options) (Result, error) { return Breakdown(o, 1) },
	"fig9":   func(o Options) (Result, error) { return Breakdown(o, 14) },
	"fig10":  func(o Options) (Result, error) { return Breakdown(o, 30) },
	"fig11":  func(o Options) (Result, error) { return Fig11(o) },
	"fig12":  func(o Options) (Result, error) { return Fig12(o) },
	// Extensions beyond the paper (see DESIGN.md §6):
	"ext-crossover": func(o Options) (Result, error) { return CrossoverVsP(o) },
	"ext-model":     func(o Options) (Result, error) { return ModelValidation(o) },
	"ext-fault":     func(o Options) (Result, error) { return FaultTolerance(o) },
	"ext-workloads": func(o Options) (Result, error) { return Workloads(o) },
	"ext-mixed":     func(o Options) (Result, error) { return MixedMode(o) },
	"ext-partition": func(o Options) (Result, error) { return PartitionSweep(o) },
}

// RunSpec executes a spec and assembles its v2 report: every named
// sweep in order, then the custom cells (as one "custom" experiment).
// The report's simulated content is identical for any
// Options.Parallelism; only the Timings-gated fields vary run to run.
func RunSpec(spec Spec, rc RunConfig) (*Report, error) {
	return RunSpecContext(context.Background(), spec, rc)
}

// RunSpecContext is RunSpec under a cancelable context: a spec whose
// deadline expires or whose submitter goes away stops between
// experiments instead of simulating to completion (the serving path's
// per-job deadline reaches here). Cancellation surfaces as ctx.Err()
// wrapped with the experiment about to be abandoned; a report is never
// partially returned.
func RunSpecContext(ctx context.Context, spec Spec, rc RunConfig) (*Report, error) {
	n, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	// The spec overrides every result-affecting option (OptionsFor's
	// mapping); the caller's Options contribute config and parallelism.
	opts := rc.Options
	opts.Full = n.Full
	opts.Seed = n.Seed
	opts.Observe = n.Observe
	applyPEs(&opts.Config, n.PEs)
	opts.memo = &memoTally{}
	if opts.InterpTier == "" {
		opts.InterpTier = "super"
	}

	report := &Report{
		Schema:  SchemaV22,
		Full:    n.Full,
		PEs:     n.PEs,
		Seed:    n.Seed,
		Observe: n.Observe,
	}
	if rc.Timings {
		report.Parallel = opts.Parallelism
	}
	suiteStart := time.Now()
	run := func(name string, f func(Options) (Result, error)) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		start := time.Now()
		res, err := f(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		entry := ReportExperiment{Name: name}
		if rc.Timings {
			entry.HostSeconds = time.Since(start).Seconds()
		}
		if s, ok := res.(Summarizer); ok {
			entry.Summary = s.Summary()
		}
		report.Experiments = append(report.Experiments, entry)
		if rc.Hook != nil {
			rc.Hook(name, res, entry.HostSeconds)
		}
		return nil
	}
	for _, name := range n.Exps {
		if err := run(name, runnersByName[name]); err != nil {
			return nil, err
		}
	}
	if len(n.Cells) > 0 {
		err := run("custom", func(o Options) (Result, error) { return Custom(o, n.Cells) })
		if err != nil {
			return nil, err
		}
	}
	report.Interp = &InterpInfo{
		Tier:       opts.InterpTier,
		MemoHits:   atomic.LoadInt64(&opts.memo.hits),
		MemoMisses: atomic.LoadInt64(&opts.memo.misses),
	}
	if rc.Timings {
		report.HostSeconds = time.Since(suiteStart).Seconds()
	}
	return report, nil
}
