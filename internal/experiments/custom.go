package experiments

import (
	"fmt"

	"repro/internal/matmul"
	"repro/internal/pasm"
	"repro/internal/stats"
)

// CustomRow is one executed custom cell.
type CustomRow struct {
	Cell   CellSpec
	Result pasm.RunResult
}

// CustomResult runs an arbitrary list of matmul cells — the Spec.Cells
// escape hatch for configurations outside the paper's sweeps. Each
// cell simulates its own machine, so the list fans out across the host
// workers like any sweep.
type CustomResult struct {
	ClockHz float64
	Rows    []CustomRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// Custom executes the cells in order.
func Custom(opts Options, cells []CellSpec) (*CustomResult, error) {
	r := newRunner(opts)
	out := &CustomResult{ClockHz: opts.Config.ClockHz}
	specs := make([]matmul.Spec, len(cells))
	for i, c := range cells {
		s, err := c.MatmulSpec()
		if err != nil {
			return nil, err
		}
		specs[i] = s
	}
	results, err := r.execAll(specs)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		out.Rows = append(out.Rows, CustomRow{Cell: c, Result: results[i]})
	}
	out.Obs = r.obs.metrics()
	return out, nil
}

// Render prints one line per cell.
func (r *CustomResult) Render() string {
	var t table
	t.title("Custom cells")
	t.row(fmt.Sprintf("%-6s", "mode"), fmt.Sprintf("%5s", "n"),
		fmt.Sprintf("%4s", "p"), fmt.Sprintf("%5s", "muls"),
		fmt.Sprintf("%12s", "cycles"), fmt.Sprintf("%10s", "seconds"),
		fmt.Sprintf("%10s", "instrs"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%-6s", row.Cell.Mode), fmt.Sprintf("%5d", row.Cell.N),
			fmt.Sprintf("%4d", row.Cell.P), fmt.Sprintf("%5d", row.Cell.Muls),
			cyc(row.Result.Cycles),
			fmt.Sprintf("%10.4f", stats.Seconds(row.Result.Cycles, r.ClockHz)),
			fmt.Sprintf("%10d", row.Result.Instrs))
	}
	return t.String()
}

// Summary flattens each cell into cycles and instruction counts, keyed
// by the cell's canonical coordinates.
func (r *CustomResult) Summary() map[string]float64 {
	m := map[string]float64{}
	for _, row := range r.Rows {
		prefix := fmt.Sprintf("%s/n=%d/p=%d/muls=%d", row.Cell.Mode, row.Cell.N, row.Cell.P, row.Cell.Muls)
		m["cycles/"+prefix] = float64(row.Result.Cycles)
		m["instrs/"+prefix] = float64(row.Result.Instrs)
	}
	r.Obs.into(m)
	return m
}
