package experiments

import (
	"fmt"

	"repro/internal/reduce"
	"repro/internal/smoothing"
	"repro/internal/stats"
)

// WorkloadRow is one (workload, mode) measurement.
type WorkloadRow struct {
	Workload string
	Mode     string
	P        int
	Cycles   int64
	Speedup  float64 // vs the workload's serial run
	NetBytes int64
	Reconfig int64
	Barriers int
}

// WorkloadsResult compares all four program variants on the two
// additional workload domains (image smoothing and recursive-doubling
// all-reduce), verifying every output against the host references.
// The paper's ordering — SIMD fastest at fine-grained variable-time
// work, the decoupled variants close behind, everything superlinear-
// capable — holds in both domains.
type WorkloadsResult struct {
	Rows []WorkloadRow
}

// Workloads runs the comparison.
func Workloads(opts Options) (*WorkloadsResult, error) {
	out := &WorkloadsResult{}
	cfg := opts.Config

	// Image smoothing, 32x32, p=4.
	img := smoothing.RandomImage(32, 32, opts.Seed)
	wantImg := smoothing.Reference(img)
	var smoothSerial int64
	for _, mode := range []smoothing.Mode{smoothing.Serial, smoothing.SIMD, smoothing.MIMD, smoothing.SMIMD} {
		p := 4
		if mode == smoothing.Serial {
			p = 1
		}
		res, got, err := smoothing.Execute(cfg, smoothing.Spec{H: 32, W: 32, P: p, Mode: mode}, img)
		if err != nil {
			return nil, fmt.Errorf("experiments: smoothing %s: %w", mode, err)
		}
		if !smoothing.Equal(got, wantImg) {
			return nil, fmt.Errorf("experiments: smoothing %s produced a wrong image", mode)
		}
		if mode == smoothing.Serial {
			smoothSerial = res.Cycles
		}
		out.Rows = append(out.Rows, WorkloadRow{
			Workload: "smoothing 32x32", Mode: mode.String(), P: p,
			Cycles:   res.Cycles,
			Speedup:  stats.Speedup(smoothSerial, res.Cycles),
			NetBytes: res.NetTransfers, Reconfig: res.NetReconfigs,
			Barriers: res.BarrierRounds,
		})
	}

	// All-reduce, n=4096, p=8.
	vec := reduce.RandomVector(4096, opts.Seed+1)
	wantSum := reduce.Reference(vec)
	var reduceSerial int64
	for _, mode := range []reduce.Mode{reduce.Serial, reduce.SIMD, reduce.MIMD, reduce.SMIMD} {
		p := 8
		if mode == reduce.Serial {
			p = 1
		}
		res, sums, err := reduce.Execute(cfg, reduce.Spec{N: 4096, P: p, Mode: mode}, vec)
		if err != nil {
			return nil, fmt.Errorf("experiments: reduce %s: %w", mode, err)
		}
		for i, s := range sums {
			if s != wantSum {
				return nil, fmt.Errorf("experiments: reduce %s: PE %d sum %d != %d", mode, i, s, wantSum)
			}
		}
		if mode == reduce.Serial {
			reduceSerial = res.Cycles
		}
		out.Rows = append(out.Rows, WorkloadRow{
			Workload: "reduce n=4096", Mode: mode.String(), P: p,
			Cycles:   res.Cycles,
			Speedup:  stats.Speedup(reduceSerial, res.Cycles),
			NetBytes: res.NetTransfers, Reconfig: res.NetReconfigs,
			Barriers: res.BarrierRounds,
		})
	}
	return out, nil
}

// Render prints the comparison.
func (r *WorkloadsResult) Render() string {
	var t table
	t.title("Extension: additional workload domains (all outputs host-verified)")
	t.row(fmt.Sprintf("%-16s", "workload"), fmt.Sprintf("%-8s", "mode"),
		fmt.Sprintf("%3s", "p"), fmt.Sprintf("%10s", "cycles"),
		fmt.Sprintf("%8s", "speedup"), fmt.Sprintf("%9s", "netbytes"),
		fmt.Sprintf("%9s", "reconfigs"), fmt.Sprintf("%8s", "barriers"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%-16s", row.Workload), fmt.Sprintf("%-8s", row.Mode),
			fmt.Sprintf("%3d", row.P), fmt.Sprintf("%10d", row.Cycles),
			fmt.Sprintf("%8.2f", row.Speedup), fmt.Sprintf("%9d", row.NetBytes),
			fmt.Sprintf("%9d", row.Reconfig), fmt.Sprintf("%8d", row.Barriers))
	}
	return t.String()
}
