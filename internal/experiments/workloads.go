package experiments

import (
	"fmt"

	"repro/internal/reduce"
	"repro/internal/smoothing"
	"repro/internal/stats"
)

// WorkloadRow is one (workload, mode) measurement.
type WorkloadRow struct {
	Workload string
	Mode     string
	P        int
	Cycles   int64
	Speedup  float64 // vs the workload's serial run
	NetBytes int64
	Reconfig int64
	Barriers int
}

// WorkloadsResult compares all four program variants on the two
// additional workload domains (image smoothing and recursive-doubling
// all-reduce), verifying every output against the host references.
// The paper's ordering — SIMD fastest at fine-grained variable-time
// work, the decoupled variants close behind, everything superlinear-
// capable — holds in both domains.
type WorkloadsResult struct {
	Rows []WorkloadRow
	// Obs is the aggregated observability metrics (Options.Observe).
	Obs ObsMetrics
}

// Workloads runs the comparison. Every (workload, mode) cell simulates
// an independent machine, so all eight fan out across the host
// workers; speedups against each workload's serial run are computed
// after the join.
func Workloads(opts Options) (*WorkloadsResult, error) {
	cfg := opts.Config
	o := newObserver(opts)

	// Inputs and host references are computed up front and only read by
	// the cells.
	img := smoothing.RandomImage(32, 32, opts.Seed)
	wantImg := smoothing.Reference(img)
	vec := reduce.RandomVector(4096, opts.Seed+1)
	wantSum := reduce.Reference(vec)

	type cell func() (WorkloadRow, error)
	var cells []cell
	for _, mode := range []smoothing.Mode{smoothing.Serial, smoothing.SIMD, smoothing.MIMD, smoothing.SMIMD} {
		mode := mode
		p := 4
		if mode == smoothing.Serial {
			p = 1
		}
		cells = append(cells, func() (WorkloadRow, error) {
			ccfg, rec := o.cell(cfg)
			res, got, err := smoothing.Execute(ccfg, smoothing.Spec{H: 32, W: 32, P: p, Mode: mode}, img)
			if err != nil {
				return WorkloadRow{}, fmt.Errorf("experiments: smoothing %s: %w", mode, err)
			}
			opts.tally(res)
			if !smoothing.Equal(got, wantImg) {
				return WorkloadRow{}, fmt.Errorf("experiments: smoothing %s produced a wrong image", mode)
			}
			o.done(rec)
			return WorkloadRow{
				Workload: "smoothing 32x32", Mode: mode.String(), P: p,
				Cycles:   res.Cycles,
				NetBytes: res.NetTransfers, Reconfig: res.NetReconfigs,
				Barriers: res.BarrierRounds,
			}, nil
		})
	}
	for _, mode := range []reduce.Mode{reduce.Serial, reduce.SIMD, reduce.MIMD, reduce.SMIMD} {
		mode := mode
		p := 8
		if mode == reduce.Serial {
			p = 1
		}
		cells = append(cells, func() (WorkloadRow, error) {
			ccfg, rec := o.cell(cfg)
			res, sums, err := reduce.Execute(ccfg, reduce.Spec{N: 4096, P: p, Mode: mode}, vec)
			if err != nil {
				return WorkloadRow{}, fmt.Errorf("experiments: reduce %s: %w", mode, err)
			}
			opts.tally(res)
			for i, s := range sums {
				if s != wantSum {
					return WorkloadRow{}, fmt.Errorf("experiments: reduce %s: PE %d sum %d != %d", mode, i, s, wantSum)
				}
			}
			o.done(rec)
			return WorkloadRow{
				Workload: "reduce n=4096", Mode: mode.String(), P: p,
				Cycles:   res.Cycles,
				NetBytes: res.NetTransfers, Reconfig: res.NetReconfigs,
				Barriers: res.BarrierRounds,
			}, nil
		})
	}

	rows := make([]WorkloadRow, len(cells))
	err := forEachCell(opts.workers(), len(cells), func(i int) error {
		row, err := cells[i]()
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Post-pass: speedups vs each workload's own serial run (the first
	// row of each group of four).
	serial := map[string]int64{}
	for _, row := range rows {
		if _, ok := serial[row.Workload]; !ok {
			serial[row.Workload] = row.Cycles // serial is listed first
		}
	}
	for i := range rows {
		rows[i].Speedup = stats.Speedup(serial[rows[i].Workload], rows[i].Cycles)
	}
	return &WorkloadsResult{Rows: rows, Obs: o.metrics()}, nil
}

// Render prints the comparison.
func (r *WorkloadsResult) Render() string {
	var t table
	t.title("Extension: additional workload domains (all outputs host-verified)")
	t.row(fmt.Sprintf("%-16s", "workload"), fmt.Sprintf("%-8s", "mode"),
		fmt.Sprintf("%3s", "p"), fmt.Sprintf("%10s", "cycles"),
		fmt.Sprintf("%8s", "speedup"), fmt.Sprintf("%9s", "netbytes"),
		fmt.Sprintf("%9s", "reconfigs"), fmt.Sprintf("%8s", "barriers"))
	for _, row := range r.Rows {
		t.row(fmt.Sprintf("%-16s", row.Workload), fmt.Sprintf("%-8s", row.Mode),
			fmt.Sprintf("%3d", row.P), fmt.Sprintf("%10d", row.Cycles),
			fmt.Sprintf("%8.2f", row.Speedup), fmt.Sprintf("%9d", row.NetBytes),
			fmt.Sprintf("%9d", row.Reconfig), fmt.Sprintf("%8d", row.Barriers))
	}
	return t.String()
}
