package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
)

// startSLOReplica runs a pasmd replica with SLO-aware scheduling and
// class defaults, the way `pasmd -sched sjf -classes ...` would.
func startSLOReplica(t *testing.T, name string) (*service.Service, *httptest.Server) {
	t.Helper()
	s := service.New(service.Config{Workers: 2, QueueDepth: 16, Name: name,
		FillSecret: testFillSecret,
		Sched:      service.SchedSJF,
		Classes:    map[string]int64{"interactive": 50, "batch": 0},
		Options:    experiments.DefaultOptions()})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		srv.Close()
	})
	return s, srv
}

// TestGatewayClassPropagation: the SLO class and client identity on a
// gateway submit — as X-Pasm-* headers or body fields — reach the
// owning replica (its per-class metrics record the request) and roll
// up into the gateway's merged /metrics under cluster/class_*.
func TestGatewayClassPropagation(t *testing.T) {
	sa, r0 := startSLOReplica(t, "a")
	sb, r1 := startSLOReplica(t, "b")
	g, gsrv := startGateway(t, Config{Registry: RegistryConfig{
		Replicas: []string{"a=" + r0.URL, "b=" + r1.URL},
	}})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Header form: class + client ride X-Pasm headers on a plain POST.
	body, err := json.Marshal(service.SubmitRequest{Spec: specN(21), WaitMS: 15000})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, gsrv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.ClassHeader, "interactive")
	req.Header.Set(service.ClientHeader, "tenant-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("header-form submit: HTTP %d", resp.StatusCode)
	}

	// Body form: the client API carries the same fields.
	cl := client.New(gsrv.URL)
	if _, _, err := cl.Run(ctx, specN(22), client.SubmitOptions{
		Wait: 15 * time.Second, Class: "batch", ClientID: "tenant-7",
	}); err != nil {
		t.Fatalf("body-form run: %v", err)
	}

	// A malformed SLO header is rejected at the gateway, before any
	// replica sees it.
	bad, err := http.NewRequestWithContext(ctx, http.MethodPost, gsrv.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bad.Header.Set("Content-Type", "application/json")
	bad.Header.Set(service.SLOHeader, "soon")
	bresp, err := http.DefaultClient.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SLO header: HTTP %d, want 400", bresp.StatusCode)
	}

	// The owning replicas recorded the classes (whichever replica owns
	// each spec — check the union).
	replicaHas := func(key string) bool {
		for _, s := range []*service.Service{sa, sb} {
			if s.Metrics()[key] > 0 {
				return true
			}
		}
		return false
	}
	if !replicaHas("service/class_total_ms/interactive/count") {
		t.Error("no replica recorded the interactive class histogram")
	}
	if !replicaHas("service/class_total_ms/batch/count") {
		t.Error("no replica recorded the batch class histogram")
	}
	if !replicaHas("service/class_slo_ok/interactive") && !replicaHas("service/class_slo_miss/interactive") {
		t.Error("no replica recorded an SLO verdict for the interactive request")
	}

	// ...and the merged gateway metrics roll the classes up.
	gm := g.Metrics(ctx)
	if gm["cluster/class_total_ms/interactive/count"] < 1 {
		t.Errorf("merged metrics missing interactive class histogram: %v",
			gm["cluster/class_total_ms/interactive/count"])
	}
	if gm["cluster/class_total_ms/batch/count"] < 1 {
		t.Errorf("merged metrics missing batch class histogram: %v",
			gm["cluster/class_total_ms/batch/count"])
	}
	if gm["cluster/class_slo_ok/interactive"]+gm["cluster/class_slo_miss/interactive"] < 1 {
		t.Error("merged metrics missing interactive SLO verdict counters")
	}
	if _, ok := gm["cluster/class_total_ms/interactive/p99"]; !ok {
		t.Error("merged class histogram lacks derived quantiles")
	}
}
