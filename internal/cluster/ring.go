package cluster

import (
	"encoding/binary"
	"sort"

	"repro/internal/cache"
)

// ring is a consistent-hash ring over replica names. Each replica
// contributes vnodes points (FNV-64 of "name#i"), and a spec key maps
// to the replica owning the first point clockwise of the key's hash.
// Because the ring hashes stable names — never addresses or indices —
// ownership survives restarts and port changes, and adding or removing
// one replica only remaps the keys adjacent to its points.
type ring struct {
	hashes []uint64 // sorted
	owner  []int    // replica index per point, parallel to hashes
	n      int      // replica count
}

const defaultVnodes = 64

func newRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{n: len(names)}
	type pt struct {
		h uint64
		i int
	}
	pts := make([]pt, 0, len(names)*vnodes)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{fnv64(name, v), i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		return pts[a].i < pts[b].i // total order even on hash collision
	})
	r.hashes = make([]uint64, len(pts))
	r.owner = make([]int, len(pts))
	for i, p := range pts {
		r.hashes[i] = p.h
		r.owner[i] = p.i
	}
	return r
}

// fnv64 hashes "name#vnode" with FNV-1a plus a murmur-style finalizer:
// raw FNV avalanches poorly in the high bits for short inputs, which
// skews ring ownership badly (point order sorts on the full word).
func fnv64(name string, vnode int) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	h = (h ^ '#') * 1099511628211
	h = (h ^ uint64(vnode&0xff)) * 1099511628211
	h = (h ^ uint64((vnode>>8)&0xff)) * 1099511628211
	h ^= h >> 33
	h *= 0xff51afd7ed558ccb
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// order returns every replica index in ring order starting at the
// key's successor point: order[0] is the key's owner, and the rest is
// the deterministic failover sequence.
func (r *ring) order(key cache.Key) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	h := binary.BigEndian.Uint64(key[:8])
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make([]bool, r.n)
	for i := 0; i < len(r.hashes) && len(out) < r.n; i++ {
		o := r.owner[(start+i)%len(r.hashes)]
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}
