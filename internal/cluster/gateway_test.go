package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/partition"
	"repro/internal/service"
)

func specN(seed uint32) experiments.Spec {
	return experiments.Spec{Exps: []string{"table1"}, Seed: seed}
}

// testFillSecret authenticates peer fills between the test replicas
// and gateways (both sides must agree on it).
const testFillSecret = "cluster-test-fill-secret"

// startReplica runs a real pasmd service over httptest.
func startReplica(t *testing.T, name string) (*service.Service, *httptest.Server) {
	t.Helper()
	s := service.New(service.Config{Workers: 2, QueueDepth: 16, Name: name,
		FillSecret: testFillSecret,
		Options:    experiments.DefaultOptions()})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		srv.Close()
	})
	return s, srv
}

func startGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	if cfg.Registry.FillSecret == "" {
		cfg.Registry.FillSecret = testFillSecret
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv
}

// ownerName resolves which replica a spec hashes to.
func ownerName(t *testing.T, g *Gateway, spec experiments.Spec) string {
	t.Helper()
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	return g.owner(key).Name
}

// seedOwnedBy hunts for a spec seed whose hash owner is the named
// replica (bounded; the ring spreads keys so a hit comes fast).
func seedOwnedBy(t *testing.T, g *Gateway, name string) uint32 {
	t.Helper()
	for seed := uint32(1); seed < 200; seed++ {
		if ownerName(t, g, specN(seed)) == name {
			return seed
		}
	}
	t.Fatalf("no seed in 1..200 hashes to %s", name)
	return 0
}

// TestGatewayEndToEnd: a submit through the gateway completes, the job
// ID routes reads back through "name~id", and the result bytes are
// identical to a standalone replica's — the determinism invariant that
// makes the whole cluster design safe.
func TestGatewayEndToEnd(t *testing.T) {
	_, r0 := startReplica(t, "a")
	_, r1 := startReplica(t, "b")
	g, gsrv := startGateway(t, Config{Registry: RegistryConfig{
		Replicas: []string{"a=" + r0.URL, "b=" + r1.URL},
	}})

	cl := client.New(gsrv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	raw, st, err := cl.Run(ctx, specN(11), client.SubmitOptions{Wait: 10 * time.Second})
	if err != nil {
		t.Fatalf("run through gateway: %v", err)
	}
	if !strings.Contains(st.ID, jobIDSep) {
		t.Errorf("gateway job ID %q lacks the %q separator", st.ID, jobIDSep)
	}
	if _, ok := cl.Job(ctx, st.ID); ok != nil {
		t.Errorf("poll by gateway ID failed: %v", ok)
	}

	// Same spec on an untouched standalone replica: byte-identical.
	_, solo := startReplica(t, "solo")
	soloRaw, _, err := client.New(solo.URL).Run(ctx, specN(11), client.SubmitOptions{Wait: 10 * time.Second})
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	if !bytes.Equal(raw, soloRaw) {
		t.Fatalf("gateway result differs from standalone (%d vs %d bytes)", len(raw), len(soloRaw))
	}

	// The submit response carries routing headers.
	body, _ := json.Marshal(service.SubmitRequest{Spec: specN(12), WaitMS: 10000})
	resp, err := http.Post(gsrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(ReplicaHeader) == "" || resp.Header.Get(OwnerHeader) == "" {
		t.Errorf("missing routing headers: replica=%q owner=%q",
			resp.Header.Get(ReplicaHeader), resp.Header.Get(OwnerHeader))
	}
	_ = g
}

// TestGatewayFailover: the spec's hash owner is dead; the gateway
// fails over along the ring and still returns the right bytes.
func TestGatewayFailover(t *testing.T) {
	_, live := startReplica(t, "live")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	g, gsrv := startGateway(t, Config{Registry: RegistryConfig{
		Replicas: []string{"down=" + dead.URL, "live=" + live.URL},
	}})
	seed := seedOwnedBy(t, g, "down")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New(gsrv.URL)
	raw, st, err := cl.Run(ctx, specN(seed), client.SubmitOptions{Wait: 10 * time.Second})
	if err != nil {
		t.Fatalf("run with dead owner: %v", err)
	}
	if len(raw) == 0 || st.State != service.StateDone {
		t.Fatalf("bad outcome: state=%s len=%d", st.State, len(raw))
	}
	if !strings.HasPrefix(st.ID, "live"+jobIDSep) {
		t.Errorf("job landed on %q, want the live replica", st.ID)
	}

	m := g.Metrics(ctx)
	if m["cluster/failovers"] < 1 {
		t.Errorf("cluster/failovers = %v, want >= 1", m["cluster/failovers"])
	}

	_, solo := startReplica(t, "solo")
	soloRaw, _, err := client.New(solo.URL).Run(ctx, specN(seed), client.SubmitOptions{Wait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, soloRaw) {
		t.Fatal("failover result differs from standalone run")
	}
}

// TestGatewayAllDownSheds: with every replica dead the breakers open
// after the configured failures and the gateway sheds with 503 +
// Retry-After instead of hanging or retrying forever.
func TestGatewayAllDownSheds(t *testing.T) {
	d1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	d2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	d1.Close()
	d2.Close()

	g, gsrv := startGateway(t, Config{Registry: RegistryConfig{
		Replicas: []string{"x=" + d1.URL, "y=" + d2.URL},
		Breaker:  BreakerConfig{ConsecutiveFailures: 1, Cooldown: time.Minute},
	}})

	submit := func() *http.Response {
		body, _ := json.Marshal(service.SubmitRequest{Spec: specN(1)})
		resp, err := http.Post(gsrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// First submit: both replicas tried, both fail, both breakers open.
	resp := submit()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("all-dead submit: missing Retry-After")
	}
	for _, rep := range g.Registry().Replicas() {
		if rep.Breaker().State() != StateOpen {
			t.Errorf("replica %s breaker %v, want open", rep.Name, rep.Breaker().State())
		}
	}

	// Second submit: nothing routable — pure shed, no connection attempts.
	resp = submit()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("shed submit: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	m := g.Metrics(context.Background())
	if m["cluster/shed"] < 2 {
		t.Errorf("cluster/shed = %v, want >= 2", m["cluster/shed"])
	}
	if m["replicas/x/breaker_state"] != float64(StateOpen) {
		t.Errorf("breaker_state metric = %v, want %d", m["replicas/x/breaker_state"], StateOpen)
	}
}

// TestGatewayPeerFill: under round-robin routing a spec lands off its
// hash owner; fetching the result triggers a background fill, after
// which the owner serves the same spec from cache.
func TestGatewayPeerFill(t *testing.T) {
	_, r0 := startReplica(t, "a")
	_, r1 := startReplica(t, "b")
	_, r2 := startReplica(t, "c")
	addrs := map[string]string{"a": r0.URL, "b": r1.URL, "c": r2.URL}

	g, gsrv := startGateway(t, Config{
		Registry: RegistryConfig{Replicas: []string{"a=" + r0.URL, "b=" + r1.URL, "c=" + r2.URL}},
		Policy:   PolicyRoundRobin,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Round-robin walks a,b,c,... while ownership is hash-determined,
	// so within a handful of distinct specs one lands off-owner.
	var owner string
	var fillSpec experiments.Spec
	for seed := uint32(21); seed < 33; seed++ {
		spec := specN(seed)
		body, _ := json.Marshal(service.SubmitRequest{Spec: spec, WaitMS: 20000})
		resp, err := http.Post(gsrv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st service.JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		served := resp.Header.Get(ReplicaHeader)
		own := resp.Header.Get(OwnerHeader)
		if st.State != service.StateDone {
			t.Fatalf("seed %d: state %s, want done", seed, st.State)
		}
		// Fetch the result — the fill trigger lives on the result path.
		rresp, err := http.Get(gsrv.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, rresp.Body)
		rresp.Body.Close()
		if served != own {
			owner, fillSpec = own, spec
			break
		}
	}
	if owner == "" {
		t.Fatal("no off-owner submission in 12 distinct specs — routing or ring broken")
	}

	// The fill is async: wait for the counter.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := g.Metrics(ctx)
		if m["cluster/peer_fills"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer fill never landed: %v", m["cluster/peer_fill_errors"])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The owner now serves the spec from its cache without executing.
	st, err := client.New(addrs[owner]).Submit(ctx, fillSpec, client.SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached || st.State != service.StateDone {
		t.Errorf("owner %s: cached=%v state=%s, want a cache hit", owner, st.Cached, st.State)
	}
}

// TestGatewayDrain: a draining gateway sheds new submissions but keeps
// serving reads for accepted jobs — the lossless half of SIGTERM.
func TestGatewayDrain(t *testing.T) {
	_, r0 := startReplica(t, "a")
	g, gsrv := startGateway(t, Config{Registry: RegistryConfig{Replicas: []string{"a=" + r0.URL}}})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := client.New(gsrv.URL)
	st, err := cl.Submit(ctx, specN(5), client.SubmitOptions{Wait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	g.Drain()

	if _, err := cl.Submit(ctx, specN(6), client.SubmitOptions{}); err == nil {
		t.Fatal("draining gateway accepted a submit")
	} else {
		var api *client.APIError
		if !errors.As(err, &api) || api.Status != http.StatusServiceUnavailable || api.RetryAfter <= 0 {
			t.Fatalf("drain rejection = %v, want 503 with Retry-After", err)
		}
	}

	if _, err := cl.Job(ctx, st.ID); err != nil {
		t.Errorf("read during drain failed: %v", err)
	}
	if _, err := cl.Result(ctx, st.ID); err != nil {
		t.Errorf("result during drain failed: %v", err)
	}
}

// TestGatewayHedge: when the owner hangs, the hedge timer launches the
// submit at the next replica and the client gets its answer from
// there.
func TestGatewayHedge(t *testing.T) {
	_, live := startReplica(t, "fast")
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		// Hang until the caller gives up (or the test ends).
		select {
		case <-r.Context().Done():
		case <-release:
		}
		http.Error(w, "too late", http.StatusInternalServerError)
	}))
	t.Cleanup(slow.Close)
	t.Cleanup(func() { close(release) }) // LIFO: unblock handlers before Close waits on them

	g, gsrv := startGateway(t, Config{
		Registry: RegistryConfig{Replicas: []string{"slow=" + slow.URL, "fast=" + live.URL}},
		Hedge:    100 * time.Millisecond,
	})
	seed := seedOwnedBy(t, g, "slow")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	raw, st, err := client.New(gsrv.URL).Run(ctx, specN(seed), client.SubmitOptions{Wait: 10 * time.Second})
	if err != nil {
		t.Fatalf("hedged run: %v", err)
	}
	if !strings.HasPrefix(st.ID, "fast"+jobIDSep) {
		t.Errorf("job served by %q, want the fast replica", st.ID)
	}
	if len(raw) == 0 {
		t.Error("empty result")
	}
	if m := g.Metrics(ctx); m["cluster/hedges"] < 1 {
		t.Errorf("cluster/hedges = %v, want >= 1", m["cluster/hedges"])
	}
}

// TestRegistryHealthProbeClosesBreaker: the active health loop opens
// the breaker of a failing replica and — acting as the half-open probe
// — closes it again once the replica recovers, with no client traffic
// at all.
func TestRegistryHealthProbeClosesBreaker(t *testing.T) {
	var down atomic.Bool
	down.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"status":"ok","name":"flaky"}`)
	}))
	t.Cleanup(flaky.Close)
	_, good := startReplica(t, "good")

	reg, err := NewRegistry(RegistryConfig{
		Replicas: []string{"flaky=" + flaky.URL, "good=" + good.URL},
		Breaker:  BreakerConfig{ConsecutiveFailures: 2, Cooldown: 40 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	reg.CheckAll()
	reg.CheckAll()
	fl, _ := reg.Find("flaky")
	if fl.Breaker().State() != StateOpen {
		t.Fatalf("flaky breaker %v after 2 failed checks, want open", fl.Breaker().State())
	}
	if reg.Healthy() != 1 {
		t.Fatalf("healthy = %d, want 1", reg.Healthy())
	}

	// Recover the replica; once the cooldown passes, the next check is
	// the probe that closes the breaker.
	down.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for fl.Breaker().State() != StateClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after recovery (state %v)", fl.Breaker().State())
		}
		time.Sleep(25 * time.Millisecond)
		reg.CheckAll()
	}
	if reg.Healthy() != 2 {
		t.Errorf("healthy = %d after recovery, want 2", reg.Healthy())
	}

	// The snapshot reflects a real replica's enriched health.
	gd, _ := reg.Find("good")
	if alive, h := gd.Snapshot(); !alive || h.Name != "good" || h.Workers == 0 {
		t.Errorf("good snapshot: alive=%v name=%q workers=%d", alive, h.Name, h.Workers)
	}
}

// TestRoutableExcludesDraining: a replica advertising draining in its
// health body stops receiving new submissions even though it answers
// health checks.
func TestRoutableExcludesDraining(t *testing.T) {
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"draining","draining":true}`)
	}))
	t.Cleanup(draining.Close)

	reg, err := NewRegistry(RegistryConfig{Replicas: []string{"d=" + draining.URL}})
	if err != nil {
		t.Fatal(err)
	}
	reg.CheckAll()
	rep, _ := reg.Find("d")
	if rep.Routable(time.Now()) {
		t.Fatal("draining replica still routable")
	}
	if rep.Breaker().State() != StateClosed {
		t.Fatalf("breaker %v, want closed — draining is not a failure", rep.Breaker().State())
	}
}

// TestHedgeSelectionDoesNotConsumeProbe: regression for a breaker
// wedge. Picking a hedge candidate used to call Routable (and thus
// Breaker.Allow) before the hedge timer fired; when the primary
// answered in time, the candidate's half-open probe slot was claimed
// but never resolved, leaving the breaker rejecting everything
// forever. Hedge selection is now lazy: a candidate's breaker is only
// consulted by a request that actually launches.
func TestHedgeSelectionDoesNotConsumeProbe(t *testing.T) {
	_, r0 := startReplica(t, "a")
	_, r1 := startReplica(t, "b")
	g, gsrv := startGateway(t, Config{
		Registry: RegistryConfig{
			Replicas: []string{"a=" + r0.URL, "b=" + r1.URL},
			Breaker:  BreakerConfig{ConsecutiveFailures: 1, Cooldown: time.Millisecond},
		},
		Hedge: 30 * time.Second, // never fires: the primary is healthy
	})
	seed := seedOwnedBy(t, g, "a")

	// Trip b's breaker, then let the cooldown lapse so its next Allow
	// would hand out the single half-open probe slot.
	b, _ := g.Registry().Find("b")
	b.Breaker().Report(false, time.Now())
	if b.Breaker().State() != StateOpen {
		t.Fatalf("b breaker %v after failure, want open", b.Breaker().State())
	}
	time.Sleep(10 * time.Millisecond)

	// The primary answers long before the hedge delay, so no hedge
	// request ever launches toward b.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := client.New(gsrv.URL).Run(ctx, specN(seed), client.SubmitOptions{Wait: 15 * time.Second}); err != nil {
		t.Fatalf("hedged run with healthy primary: %v", err)
	}

	// b's probe slot must still be available: Allow either probes
	// (open -> half-open) or the breaker already closed via a real
	// hedge on a slow machine — both are fine; a wedged half-open
	// breaker that rejects is the bug.
	if !b.Breaker().Allow(time.Now()) {
		t.Fatalf("hedge candidate's breaker lost its probe slot with no hedge launched (state %v)", b.Breaker().State())
	}
	b.Breaker().Cancel()
}

// TestPeerFillVersionSkip: a fill is skipped (not sent) when the
// serving replica's code version is unknown or differs from the
// owner's — old-semantics bytes must never land under a new-version
// key during a rolling upgrade.
func TestPeerFillVersionSkip(t *testing.T) {
	_, r0 := startReplica(t, "a")
	g, _ := startGateway(t, Config{Registry: RegistryConfig{Replicas: []string{"a=" + r0.URL}}})

	rep, _ := g.Registry().Find("a")
	rep.mu.Lock()
	rep.alive = true
	rep.health.Code = "pasm-sim/other"
	rep.mu.Unlock()

	j := &gwJob{spec: specN(1), owner: "a", served: "b"}
	j.filled.Store(true)
	g.fillOwner(j, []byte("x\n"), experiments.CodeVersion)
	if g.peerFillSkips.Load() != 1 {
		t.Fatalf("peerFillSkips = %d after version mismatch, want 1", g.peerFillSkips.Load())
	}
	if j.filled.Load() {
		t.Error("filled flag not reset after a version skip (no retry possible)")
	}
	if g.peerFills.Load() != 0 || g.peerFillErrs.Load() != 0 {
		t.Error("skipped fill still issued an RPC")
	}

	g.fillOwner(j, []byte("x\n"), "") // unknown producer version
	if g.peerFillSkips.Load() != 2 {
		t.Fatalf("peerFillSkips = %d after unknown version, want 2", g.peerFillSkips.Load())
	}
	if m := g.Metrics(context.Background()); m["cluster/peer_fill_skips"] != 2 {
		t.Errorf("cluster/peer_fill_skips = %v, want 2", m["cluster/peer_fill_skips"])
	}
}

// TestRegistryStopWithoutStart: Stop must not hang when the health
// loop never launched (the error path of a caller that defers Stop but
// fails before Start).
func TestRegistryStopWithoutStart(t *testing.T) {
	reg, err := NewRegistry(RegistryConfig{Replicas: []string{"a=127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { reg.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop without Start deadlocked")
	}

	// The started path still round-trips cleanly.
	reg2, err := NewRegistry(RegistryConfig{Replicas: []string{"a=127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	reg2.Start()
	reg2.Stop()
}

// startPartitionReplica runs a pasmd service in partition mode: jobs
// pack onto subcube partitions of one shared machine instead of a
// worker pool.
func startPartitionReplica(t *testing.T, name string, pes int) (*service.Service, *httptest.Server) {
	t.Helper()
	cfg := experiments.DefaultOptions()
	machineCfg := cfg.Config
	machineCfg.NumPEs = pes
	m, err := partition.New(machineCfg)
	if err != nil {
		t.Fatal(err)
	}
	s := service.New(service.Config{QueueDepth: 16, Name: name,
		FillSecret: testFillSecret,
		Machine:    m,
		Options:    cfg})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		srv.Close()
	})
	return s, srv
}

// TestGatewayPartitionPassthrough: a spec that names a machine size
// passes through the gateway unchanged — the report echoes its pes —
// and a partition-mode replica behind the gateway returns bytes
// identical to a classic worker-pool replica, so partition sizing is
// invisible to the routing layer.
func TestGatewayPartitionPassthrough(t *testing.T) {
	_, pr := startPartitionReplica(t, "part", 32)
	_, gsrv := startGateway(t, Config{Registry: RegistryConfig{
		Replicas: []string{"part=" + pr.URL},
	}})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	spec := experiments.Spec{Exps: []string{"table1"}, PEs: 32, Seed: 21}
	raw, _, err := client.New(gsrv.URL).Run(ctx, spec, client.SubmitOptions{Wait: 20 * time.Second})
	if err != nil {
		t.Fatalf("run through gateway: %v", err)
	}
	var rep experiments.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.PEs != 32 {
		t.Errorf("report pes = %d, want the requested 32 (gateway must pass sizing through)", rep.PEs)
	}

	// The classic path produces the same bytes for the same spec.
	_, solo := startReplica(t, "solo")
	soloRaw, _, err := client.New(solo.URL).Run(ctx, spec, client.SubmitOptions{Wait: 20 * time.Second})
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	if !bytes.Equal(raw, soloRaw) {
		t.Fatalf("partition-mode replica differs from classic (%d vs %d bytes)", len(raw), len(soloRaw))
	}

	// A spec larger than the replica's machine is a clean bad request
	// through the gateway, not a failover storm.
	_, _, err = client.New(gsrv.URL).Run(ctx, experiments.Spec{Exps: []string{"table1"}, PEs: 64, Seed: 21},
		client.SubmitOptions{Wait: 5 * time.Second})
	if err == nil {
		t.Error("oversize spec succeeded on a 32-PE machine")
	}
}
