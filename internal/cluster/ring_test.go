package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"repro/internal/cache"
)

func testKey(i int) cache.Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return cache.Key(sha256.Sum256(b[:]))
}

// TestRingOrderCoversAll: every key's order lists each replica exactly
// once, owner first, and is deterministic.
func TestRingOrderCoversAll(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r := newRing(names, 0)
	for i := 0; i < 100; i++ {
		k := testKey(i)
		ord := r.order(k)
		if len(ord) != len(names) {
			t.Fatalf("key %d: order len %d, want %d", i, len(ord), len(names))
		}
		seen := map[int]bool{}
		for _, idx := range ord {
			if seen[idx] {
				t.Fatalf("key %d: replica %d twice in %v", i, idx, ord)
			}
			seen[idx] = true
		}
		ord2 := newRing(names, 0).order(k)
		for j := range ord {
			if ord[j] != ord2[j] {
				t.Fatalf("key %d: order not deterministic: %v vs %v", i, ord, ord2)
			}
		}
	}
}

// TestRingDistribution: with vnodes, no replica owns a degenerate
// share of the keyspace.
func TestRingDistribution(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	r := newRing(names, 0)
	counts := make([]int, len(names))
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.order(testKey(i))[0]]++
	}
	for i, c := range counts {
		if c < keys/10 {
			t.Errorf("replica %s owns only %d/%d keys — distribution degenerate", names[i], c, keys)
		}
	}
}

// TestRingStability: removing one replica remaps only the keys it
// owned; everyone else's keys keep their owner. This is the property
// that makes replica-local caches survive membership changes.
func TestRingStability(t *testing.T) {
	full := []string{"a", "b", "c"}
	without := []string{"a", "b"} // "c" removed
	rf, rw := newRing(full, 0), newRing(without, 0)
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		of := full[rf.order(k)[0]]
		ow := without[rw.order(k)[0]]
		if of == "c" {
			moved++
			continue // this key had to move
		}
		if of != ow {
			t.Fatalf("key %d: owner changed %s -> %s though %q was untouched", i, of, ow, of)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}

// TestRingFailoverOrder: a key's failover order equals the owner order
// of the ring with the owner deleted — so consistent failover sends a
// key to the same secondary that would own it after real membership
// loss.
func TestRingFailoverOrder(t *testing.T) {
	names := []string{"a", "b", "c"}
	r := newRing(names, 0)
	for i := 0; i < 200; i++ {
		k := testKey(i)
		ord := r.order(k)
		rest := make([]string, 0, 2)
		for _, idx := range names {
			if idx != names[ord[0]] {
				rest = append(rest, idx)
			}
		}
		sub := newRing(rest, 0)
		want := rest[sub.order(k)[0]]
		got := names[ord[1]]
		if got != want {
			t.Fatalf("key %d: failover target %s, but post-removal owner is %s", i, got, want)
		}
	}
}
