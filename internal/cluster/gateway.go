// Package cluster is the fault-tolerant serving layer over pasmd: a
// gateway (cmd/pasmgw) that fronts N replicas and keeps answering the
// same /v1 job API while individual replicas crash, hang, drain, or
// return errors.
//
// The pieces:
//
//   - Registry: the replica set plus an active health loop against each
//     replica's enriched /healthz (queue depth, in-flight, draining).
//   - Breaker: a per-replica circuit breaker fed passively by every
//     proxied request and actively by the health loop, whose allowed
//     check doubles as the half-open probe.
//   - ring: consistent hashing on stable replica names; a spec key's
//     ring order is its owner plus the deterministic failover sequence.
//   - Gateway: the HTTP front end — pluggable routing (hash,
//     least-loaded, round-robin), failover across replicas, optional
//     cross-replica hedging, peer cache fill (a result computed on any
//     replica is offered to its hash owner, so a hit anywhere becomes a
//     hit everywhere), and graceful degradation: when every breaker is
//     open the gateway sheds with 503 + Retry-After instead of hanging.
//
// Correctness rests on the repo's determinism invariant: a report is a
// pure function of (spec, CodeVersion), so any replica's answer for a
// key is byte-identical to any other's — which is what makes failover,
// hedging, and peer fill safe to do blindly.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// Policy selects how submissions are routed across replicas. Every
// policy produces a full preference order, so failover works the same
// way under all of them; they differ only in who is tried first.
type Policy string

const (
	// PolicyHash routes each spec to its consistent-hash owner —
	// maximizes replica-local cache hits.
	PolicyHash Policy = "hash"
	// PolicyLeastLoaded routes to the replica with the smallest
	// queue+in-flight load per the last health snapshot.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyRoundRobin rotates through replicas per submission.
	PolicyRoundRobin Policy = "round-robin"
)

// ParsePolicy validates a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyHash, PolicyLeastLoaded, PolicyRoundRobin:
		return Policy(s), nil
	}
	return "", fmt.Errorf("cluster: unknown routing policy %q (hash, least-loaded, round-robin)", s)
}

// Response headers the gateway adds so smoke tests (and clients) can
// see routing decisions.
const (
	// ReplicaHeader names the replica that served this response.
	ReplicaHeader = "X-Pasm-Replica"
	// OwnerHeader names the spec's consistent-hash owner (set on
	// submit and result responses; differs from ReplicaHeader when
	// routing or failover sent the job elsewhere).
	OwnerHeader = "X-Pasm-Owner"
)

// jobIDSep joins a replica name and its local job ID into a gateway
// job ID ("r1~j3-ab12"). Replica names reject '~' so the split is
// unambiguous, and the separator survives inside one mux path segment.
const jobIDSep = "~"

// Config tunes a Gateway.
type Config struct {
	// Registry configures the replica set and health loop.
	Registry RegistryConfig
	// Policy is the routing policy. Default PolicyHash.
	Policy Policy
	// Vnodes per replica on the hash ring. Default 64.
	Vnodes int
	// Hedge, when > 0, launches the submit at the second-choice replica
	// if the first has not answered within this long, taking whichever
	// answers first (safe: results are deterministic and submits
	// coalesce server-side).
	Hedge time.Duration
	// DisablePeerFill turns off owner cache fill on result fetches.
	DisablePeerFill bool
	// FillTimeout bounds one peer-fill RPC. Default 5s.
	FillTimeout time.Duration
	// MaxTracked bounds the gateway's job map (spec retention for peer
	// fill); oldest entries fall off first. Default 4096.
	MaxTracked int
	// MinRetryAfter floors the Retry-After hint on shed responses.
	// Default 1s.
	MinRetryAfter time.Duration
	// Logger, when non-nil, receives one structured line per routing
	// event worth narrating (failover, shed, hedge, peer fill), with
	// trace and replica fields where available.
	Logger *slog.Logger
	// Telemetry, when non-nil, records request-scoped traces across
	// the gateway's routing decisions (route/attempt/hedge spans) and
	// forwards the trace context to the winning replica so one trace ID
	// spans gateway -> replica -> worker. Nil costs one pointer test.
	Telemetry *telemetry.Tracer

	now func() time.Time
}

// gwJob is what the gateway remembers about a submission: enough to
// route reads back and to fill the owner's cache from the result.
type gwJob struct {
	spec   experiments.Spec
	key    cache.Key
	served string // replica that accepted the job
	owner  string // consistent-hash owner of the key
	filled atomic.Bool
}

// Gateway fronts the replica set with the same /v1 API pasmd serves.
type Gateway struct {
	cfg    Config
	reg    *Registry
	ring   *ring
	now    func() time.Time
	log    *slog.Logger
	tracer *telemetry.Tracer
	lat    *telemetry.LatencySet // submit latency per policy/outcome

	mu       sync.Mutex
	jobs     map[string]*gwJob
	jobOrder []string // FIFO eviction for the jobs map
	draining bool

	rr atomic.Int64 // round-robin cursor

	submits, accepted, failovers, hedges, sheds atomic.Int64
	peerFills, peerFillDups, peerFillErrs       atomic.Int64
	peerFillSkips                               atomic.Int64
	proxied, proxyErrs                          atomic.Int64
}

// New builds a gateway and its registry. Call Start to begin health
// checking and Stop to end it.
func New(cfg Config) (*Gateway, error) {
	if cfg.Policy == "" {
		cfg.Policy = PolicyHash
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if cfg.MaxTracked <= 0 {
		cfg.MaxTracked = 4096
	}
	if cfg.MinRetryAfter <= 0 {
		cfg.MinRetryAfter = time.Second
	}
	if cfg.FillTimeout <= 0 {
		cfg.FillTimeout = 5 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	cfg.Registry.now = cfg.now
	reg, err := NewRegistry(cfg.Registry)
	if err != nil {
		return nil, err
	}
	return &Gateway{
		cfg:    cfg,
		reg:    reg,
		ring:   newRing(reg.Names(), cfg.Vnodes),
		now:    cfg.now,
		log:    cfg.Logger,
		tracer: cfg.Telemetry,
		lat:    telemetry.NewLatencySet(),
		jobs:   make(map[string]*gwJob),
	}, nil
}

// Registry exposes the replica set (for tests and cmd wiring).
func (g *Gateway) Registry() *Registry { return g.reg }

// Start launches the health loop.
func (g *Gateway) Start() { g.reg.Start() }

// Stop ends the health loop.
func (g *Gateway) Stop() { g.reg.Stop() }

// Drain makes the gateway reject new submissions with 503 +
// Retry-After while reads (poll, wait, result) keep working, so
// clients holding accepted jobs can collect them — the lossless half
// of SIGTERM handling. In-flight HTTP requests are the server's to
// finish (http.Server.Shutdown waits for them).
func (g *Gateway) Drain() {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
}

func (g *Gateway) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// info and warn emit structured log lines (nil logger: one pointer
// test per site).
func (g *Gateway) info(msg string, args ...any) {
	if g.log != nil {
		g.log.Info(msg, args...)
	}
}

func (g *Gateway) warn(msg string, args ...any) {
	if g.log != nil {
		g.log.Warn(msg, args...)
	}
}

// candidates returns replica indices in routing preference order for
// this key. The order always contains every replica — failover
// iterates it — and only who comes first varies by policy.
func (g *Gateway) candidates(key cache.Key) []int {
	base := g.ring.order(key) // owner first, then the hash failover chain
	switch g.cfg.Policy {
	case PolicyRoundRobin:
		n := len(g.reg.replicas)
		start := int(g.rr.Add(1)-1) % n
		out := make([]int, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, (start+i)%n)
		}
		return out
	case PolicyLeastLoaded:
		out := append([]int(nil), base...)
		// Stable sort over the ring order: ties keep the deterministic
		// hash preference.
		sort.SliceStable(out, func(a, b int) bool {
			return g.reg.replicas[out[a]].load() < g.reg.replicas[out[b]].load()
		})
		return out
	default:
		return base
	}
}

// owner returns the key's consistent-hash owner.
func (g *Gateway) owner(key cache.Key) *Replica {
	return g.reg.replicas[g.ring.order(key)[0]]
}

// verdict classifies one proxied request's outcome for routing and
// breaker accounting.
type verdict int

const (
	vOK           verdict = iota // use the response
	vBackpressure                // 503: replica alive but shedding — fail over, no breaker penalty
	vPermanent                   // other 4xx: caller's fault — return as-is, no failover
	vFailure                     // transport error or 5xx: fail over, breaker penalty
	vCanceled                    // caller's context ended: stop, outcome unknowable
)

func classify(err error) verdict {
	if err == nil {
		return vOK
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return vCanceled
	}
	var api *client.APIError
	if errors.As(err, &api) {
		switch {
		case api.Status == http.StatusServiceUnavailable:
			return vBackpressure
		case api.Status >= 500:
			return vFailure
		case api.Status >= 400:
			return vPermanent
		}
		return vFailure
	}
	return vFailure // transport-level: refused, reset, cut body, timeout
}

// account feeds one classified outcome into the replica's breaker and
// tallies. Backpressure and permanent rejections count as breaker
// successes — the replica answered; the breaker measures availability,
// not capacity.
func accountVerdict(r *Replica, v verdict, now time.Time) {
	switch v {
	case vOK, vBackpressure, vPermanent:
		r.Report(true, now)
	case vFailure:
		r.Report(false, now)
	case vCanceled:
		r.breaker.Cancel()
	}
}

// Handler returns the gateway's HTTP API — route-compatible with
// pasmd's, so internal/client works against either.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", g.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/wait", g.handleWait)
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleResult)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.tracer.Register(mux) // /debug/requests (reports disabled when untraced)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// shed rejects with 503 + Retry-After: the gateway-level backpressure
// answer when no replica can take the work (all breakers open, all
// draining, or the gateway itself is draining).
func (g *Gateway) shed(w http.ResponseWriter, reason string, retryAfter time.Duration) {
	g.sheds.Add(1)
	if retryAfter < g.cfg.MinRetryAfter {
		retryAfter = g.cfg.MinRetryAfter
	}
	secs := int(retryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: reason})
}

// proxyError translates a replica error into the client-facing reply,
// preserving the replica's status and Retry-After when it was an HTTP
// rejection and mapping transport failures to 502.
func proxyError(w http.ResponseWriter, err error) {
	var api *client.APIError
	if errors.As(err, &api) {
		if api.RetryAfter > 0 {
			secs := int(api.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, api.Status, errorBody{Error: api.Message})
		return
	}
	writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
}

// submitResult pairs one replica attempt's outcome with its source.
type submitResult struct {
	rep *Replica
	st  service.JobStatus
	err error
}

// verdictName renders a verdict for span attrs and log fields.
func verdictName(v verdict) string {
	switch v {
	case vOK:
		return "ok"
	case vBackpressure:
		return "backpressure"
	case vPermanent:
		return "permanent"
	case vCanceled:
		return "canceled"
	default:
		return "failure"
	}
}

// handleSubmit accepts a spec, routes it per policy, fails over across
// replicas on transient errors, optionally hedges the first attempt,
// and rewrites the accepted job's ID to "<replica>~<id>" so reads
// route back. A propagated (or gateway-minted) trace context gets a
// route span plus one attempt span per replica tried, and is forwarded
// to the replica so the same trace ID continues server-side.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := g.now()
	g.submits.Add(1)
	tr := g.tracer.Start(r.Header.Get(telemetry.Header), "gw-submit")
	outcome := "shed"
	defer func() {
		g.lat.Observe("submit_ms/policy="+string(g.cfg.Policy)+"/outcome="+outcome, g.now().Sub(start))
		tr.Finish()
	}()
	if g.isDraining() {
		g.shed(w, "gateway draining", g.cfg.MinRetryAfter)
		return
	}
	var req service.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		outcome = "bad_request"
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad submit body: " + err.Error()})
		return
	}
	key, err := req.Spec.Key()
	if err != nil {
		outcome = "bad_request"
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad spec: " + err.Error()})
		return
	}
	// SLO class and client identity travel to the owning replica: header
	// form wins over body fields (the same precedence pasmd applies), so
	// a proxy can tag requests without rewriting bodies.
	if v := r.Header.Get(service.ClassHeader); v != "" {
		req.Class = v
	}
	if v := r.Header.Get(service.ClientHeader); v != "" {
		req.Client = v
	}
	if v := r.Header.Get(service.SLOHeader); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			outcome = "bad_request"
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad " + service.SLOHeader + " header"})
			return
		}
		req.SLOMs = ms
	}
	opts := client.SubmitOptions{
		Deadline:    time.Duration(req.DeadlineMS) * time.Millisecond,
		Wait:        time.Duration(req.WaitMS) * time.Millisecond,
		TraceHeader: tr.HeaderValue(),
		Class:       req.Class,
		SLOMs:       req.SLOMs,
		ClientID:    req.Client,
	}
	owner := g.owner(key)
	route := tr.Span("route").Attr("policy", string(g.cfg.Policy)).Attr("owner", owner.Name)

	var lastErr error
	tried, skipped := 0, 0
	idxs := g.candidates(key)
	for pos := 0; pos < len(idxs); pos++ {
		rep := g.reg.replicas[idxs[pos]]
		if !rep.Routable(g.now()) {
			skipped++ // breaker open or replica draining/dead
			continue
		}
		tried++
		if tried > 1 {
			g.failovers.Add(1)
			g.warn("failover", "hop", tried-1, "replica", rep.Name,
				"trace", tr.TraceID(), "err", lastErr)
		}
		sp := tr.Span("attempt").Attr("replica", rep.Name)
		res := g.attempt(r.Context(), tr, rep, req.Spec, opts, func() *Replica { return g.hedgePeer(idxs, pos) })
		v := classify(res.err)
		sp.Attr("verdict", verdictName(v))
		if res.rep != rep {
			sp.Attr("hedge_winner", res.rep.Name)
		}
		sp.EndSpan()
		switch v {
		case vOK:
			outcome = "accepted"
			route.Attr("attempts", tried).Attr("breaker_skips", skipped).Attr("served_by", res.rep.Name).EndSpan()
			g.accepted.Add(1)
			g.record(res.rep.Name, owner.Name, res.st.ID, req.Spec, key)
			st := res.st
			st.ID = res.rep.Name + jobIDSep + st.ID
			w.Header().Set(ReplicaHeader, res.rep.Name)
			w.Header().Set(OwnerHeader, owner.Name)
			code := http.StatusAccepted
			if st.State.Terminal() {
				code = http.StatusOK
			}
			writeJSON(w, code, st)
			return
		case vPermanent:
			outcome = "permanent"
			route.Attr("attempts", tried).Attr("breaker_skips", skipped).EndSpan()
			proxyError(w, res.err)
			return
		case vCanceled:
			outcome = "canceled"
			route.Attr("attempts", tried).Attr("breaker_skips", skipped).EndSpan()
			// Client went away; nothing sensible to write.
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "canceled: " + res.err.Error()})
			return
		default: // backpressure or failure: try the next replica
			lastErr = res.err
		}
	}
	reason := "no replica available"
	retryAfter := g.cfg.MinRetryAfter
	if lastErr != nil {
		reason = "all replicas failed: " + lastErr.Error()
		var api *client.APIError
		if errors.As(lastErr, &api) && api.RetryAfter > retryAfter {
			retryAfter = api.RetryAfter
		}
	}
	route.Attr("attempts", tried).Attr("breaker_skips", skipped).EndSpan()
	g.warn("shed submit", "attempts", tried, "skipped", skipped,
		"trace", tr.TraceID(), "reason", reason)
	g.shed(w, reason, retryAfter)
}

// hedgePeer picks the hedge counterpart for the attempt at position
// pos: the next routable replica after it, or nil when nobody else can
// take the request. Routable consumes a breaker Allow (possibly the
// half-open probe slot), so this must only run when the hedge is
// actually launched — the launched request's Report/Cancel is what
// resolves that probe. Calling it speculatively would wedge an open
// breaker in half-open forever if the hedge never fired.
func (g *Gateway) hedgePeer(idxs []int, pos int) *Replica {
	for i := pos + 1; i < len(idxs); i++ {
		rep := g.reg.replicas[idxs[i]]
		if rep.Routable(g.now()) {
			return rep
		}
	}
	return nil
}

// attempt submits to one replica, optionally racing a hedge replica
// launched after the hedge delay. Whoever answers usably first wins;
// the loser's outcome still reaches its breaker. The hedge replica is
// chosen lazily (pickHedge) at the moment the timer fires, so breaker
// probe slots are only claimed by requests that really go out. Hedging
// a submit is safe because submission is idempotent: identical
// in-flight specs coalesce on a replica and finished ones are cache
// hits, and results are byte-identical across replicas by
// construction.
func (g *Gateway) attempt(ctx context.Context, tr *telemetry.Req, rep *Replica, spec experiments.Spec, opts client.SubmitOptions, pickHedge func() *Replica) submitResult {
	one := func(r *Replica) submitResult {
		st, err := r.Client().Submit(ctx, spec, opts)
		v := classify(err)
		accountVerdict(r, v, g.now())
		return submitResult{rep: r, st: st, err: err}
	}
	if g.cfg.Hedge <= 0 {
		return one(rep)
	}
	ch := make(chan submitResult, 2)
	go func() { ch <- one(rep) }()
	timer := time.NewTimer(g.cfg.Hedge)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res
	case <-timer.C:
	}
	hedge := pickHedge()
	if hedge == nil {
		return <-ch
	}
	g.hedges.Add(1)
	g.info("hedging", "from", rep.Name, "to", hedge.Name,
		"after", g.cfg.Hedge, "trace", tr.TraceID())
	tr.Span("hedge").Attr("from", rep.Name).Attr("to", hedge.Name).EndSpan()
	go func() { ch <- one(hedge) }()
	first := <-ch
	if classify(first.err) == vOK {
		return first
	}
	second := <-ch
	if classify(second.err) == vOK {
		return second
	}
	return first
}

// record remembers a submission for read routing and peer fill,
// evicting the oldest entry past MaxTracked.
func (g *Gateway) record(served, owner, localID string, spec experiments.Spec, key cache.Key) {
	gwID := served + jobIDSep + localID
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.jobs[gwID]; ok {
		return
	}
	g.jobs[gwID] = &gwJob{spec: spec, key: key, served: served, owner: owner}
	g.jobOrder = append(g.jobOrder, gwID)
	for len(g.jobOrder) > g.cfg.MaxTracked {
		evict := g.jobOrder[0]
		g.jobOrder = g.jobOrder[1:]
		delete(g.jobs, evict)
	}
}

func (g *Gateway) lookup(gwID string) *gwJob {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.jobs[gwID]
}

// splitID resolves a gateway job ID to its replica and local ID.
func (g *Gateway) splitID(id string) (*Replica, string, bool) {
	name, local, ok := strings.Cut(id, jobIDSep)
	if !ok || local == "" {
		return nil, "", false
	}
	rep, ok := g.reg.Find(name)
	if !ok {
		return nil, "", false
	}
	return rep, local, true
}

// proxyRead runs one read RPC against the job's replica. Reads do not
// consult the breaker's Allow — the job's state lives only on that
// replica, so there is nowhere to fail over to — but their outcomes
// still feed it.
func (g *Gateway) proxyRead(w http.ResponseWriter, r *http.Request, call func(ctx context.Context, rep *Replica, local string) (any, error)) {
	rep, local, ok := g.splitID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	g.proxied.Add(1)
	out, err := call(r.Context(), rep, local)
	accountVerdict(rep, classify(err), g.now())
	if err != nil {
		g.proxyErrs.Add(1)
		proxyError(w, err)
		return
	}
	w.Header().Set(ReplicaHeader, rep.Name)
	writeJSON(w, http.StatusOK, out)
}

// rewriteStatus maps a replica-local status back into gateway ID space.
func rewriteStatus(rep *Replica, st service.JobStatus) service.JobStatus {
	st.ID = rep.Name + jobIDSep + st.ID
	return st
}

func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	g.proxyRead(w, r, func(ctx context.Context, rep *Replica, local string) (any, error) {
		st, err := rep.Client().Job(ctx, local)
		if err != nil {
			return nil, err
		}
		return rewriteStatus(rep, st), nil
	})
}

func (g *Gateway) handleWait(w http.ResponseWriter, r *http.Request) {
	timeout := 30 * time.Second
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			timeout = time.Duration(v) * time.Millisecond
		}
	}
	g.proxyRead(w, r, func(ctx context.Context, rep *Replica, local string) (any, error) {
		st, err := rep.Client().WaitOnce(ctx, local, timeout)
		if err != nil {
			return nil, err
		}
		return rewriteStatus(rep, st), nil
	})
}

// handleResult proxies the result bytes verbatim and, when the serving
// replica is not the key's hash owner, offers the bytes to the owner's
// cache in the background (peer fill): one replica computing a result
// makes it a cache hit cluster-wide, whatever routing did.
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	gwID := r.PathValue("id")
	rep, local, ok := g.splitID(gwID)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job id"})
		return
	}
	g.proxied.Add(1)
	meta, err := rep.Client().ResultMeta(r.Context(), local)
	accountVerdict(rep, classify(err), g.now())
	if err != nil {
		g.proxyErrs.Add(1)
		proxyError(w, err)
		return
	}
	body, cached := meta.Body, meta.Cached
	w.Header().Set(ReplicaHeader, rep.Name)
	if j := g.lookup(gwID); j != nil {
		w.Header().Set(OwnerHeader, j.owner)
		if !g.cfg.DisablePeerFill && j.owner != rep.Name && j.filled.CompareAndSwap(false, true) {
			go g.fillOwner(j, body, meta.Code)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Pasm-Cached", "true")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// fillOwner pushes result bytes to the key owner's cache. On error the
// job's filled flag resets so a later result fetch retries. code is the
// CodeVersion the serving replica reported alongside the bytes; a fill
// is skipped when it is unknown or differs from the owner's last known
// version — during a rolling upgrade, bytes computed under old
// simulator semantics must never land under the owner's new-version
// key (the owner re-checks against its own compiled-in version too).
func (g *Gateway) fillOwner(j *gwJob, body []byte, code string) {
	owner, ok := g.reg.Find(j.owner)
	if !ok {
		return
	}
	if code == "" {
		g.peerFillSkips.Add(1)
		g.warn("peer fill skipped", "owner", j.owner, "from", j.served,
			"reason", "serving replica did not report a code version")
		return
	}
	if alive, h := owner.Snapshot(); alive && h.Code != "" && h.Code != code {
		g.peerFillSkips.Add(1)
		j.filled.Store(false) // owner may finish upgrading; retry later
		g.warn("peer fill skipped", "owner", j.owner, "from", j.served,
			"reason", "code version mismatch", "code", code, "owner_code", h.Code)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.FillTimeout)
	defer cancel()
	stored, err := owner.Client().Fill(ctx, j.spec, body, code)
	switch {
	case err != nil:
		g.peerFillErrs.Add(1)
		j.filled.Store(false)
		g.warn("peer fill failed", "owner", j.owner, "from", j.served, "err", err)
	case stored:
		g.peerFills.Add(1)
		g.info("peer fill", "owner", j.owner, "from", j.served, "bytes", len(body))
	default:
		g.peerFillDups.Add(1)
	}
}

// handleList fans out to every replica and merges, rewriting IDs into
// gateway space. Replicas that fail to answer are skipped — a partial
// listing beats none during an outage.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	type res struct {
		rep *Replica
		sts []service.JobStatus
		err error
	}
	ch := make(chan res, len(g.reg.replicas))
	for _, rep := range g.reg.replicas {
		go func(rep *Replica) {
			sts, err := rep.Client().List(r.Context())
			ch <- res{rep, sts, err}
		}(rep)
	}
	var all []service.JobStatus
	for range g.reg.replicas {
		rs := <-ch
		accountVerdict(rs.rep, classify(rs.err), g.now())
		if rs.err != nil {
			continue
		}
		for _, st := range rs.sts {
			all = append(all, rewriteStatus(rs.rep, st))
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].ID < all[b].ID })
	writeJSON(w, http.StatusOK, all)
}

// Metrics returns the gateway's own counters plus each replica's
// breaker and health view, plus a live aggregation of replica cache
// counters (cluster/cache_hits and friends power loadgen's gateway
// hit-rate mode).
func (g *Gateway) Metrics(ctx context.Context) map[string]float64 {
	m := map[string]float64{
		"cluster/replicas":         float64(len(g.reg.replicas)),
		"cluster/healthy":          float64(g.reg.Healthy()),
		"cluster/submits":          float64(g.submits.Load()),
		"cluster/accepted":         float64(g.accepted.Load()),
		"cluster/failovers":        float64(g.failovers.Load()),
		"cluster/hedges":           float64(g.hedges.Load()),
		"cluster/shed":             float64(g.sheds.Load()),
		"cluster/peer_fills":       float64(g.peerFills.Load()),
		"cluster/peer_fill_dups":   float64(g.peerFillDups.Load()),
		"cluster/peer_fill_errors": float64(g.peerFillErrs.Load()),
		"cluster/peer_fill_skips":  float64(g.peerFillSkips.Load()),
		"cluster/proxied_reads":    float64(g.proxied.Load()),
		"cluster/proxy_errors":     float64(g.proxyErrs.Load()),
	}
	g.mu.Lock()
	m["cluster/tracked_jobs"] = float64(len(g.jobs))
	if g.draining {
		m["cluster/draining"] = 1
	} else {
		m["cluster/draining"] = 0
	}
	g.mu.Unlock()

	ch := make(chan map[string]float64, len(g.reg.replicas))
	for _, rep := range g.reg.replicas {
		go func(rep *Replica) {
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			rm, err := rep.Client().Metrics(cctx)
			if err != nil {
				rm = nil
			}
			ch <- rm
		}(rep)
	}
	for _, rep := range g.reg.replicas {
		prefix := "replicas/" + rep.Name + "/"
		opens, closes, rejects := rep.breaker.Counters()
		m[prefix+"breaker_state"] = float64(rep.breaker.State())
		m[prefix+"breaker_opens"] = float64(opens)
		m[prefix+"breaker_closes"] = float64(closes)
		m[prefix+"breaker_rejects"] = float64(rejects)
		rep.mu.Lock()
		m[prefix+"forwarded"] = float64(rep.forwarded)
		m[prefix+"failures"] = float64(rep.failures)
		m[prefix+"health_checks"] = float64(rep.checks)
		m[prefix+"health_check_failures"] = float64(rep.checkFails)
		if rep.alive {
			m[prefix+"alive"] = 1
			m[prefix+"queue_depth"] = float64(rep.health.QueueDepth)
			m[prefix+"inflight"] = float64(rep.health.InFlight)
			m[prefix+"cache_entries"] = float64(rep.health.CacheEntries)
		} else {
			m[prefix+"alive"] = 0
		}
		rep.mu.Unlock()
	}
	var replicaMetrics []map[string]float64
	for range g.reg.replicas {
		rm := <-ch
		if rm == nil {
			continue
		}
		replicaMetrics = append(replicaMetrics, rm)
		// Cluster-wide sums of the counters the bench and loadgen read.
		for _, k := range []string{"cache/hits", "cache/misses", "service/submitted",
			"service/completed", "service/served_from_cache", "service/coalesced",
			"service/peer_fills", "service/rejected_ratelimited", "service/sched_promoted"} {
			m["cluster/"+strings.ReplaceAll(k, "/", "_")] += rm[k]
		}
	}
	aggregateStageHistograms(m, replicaMetrics)
	aggregateClassMetrics(m, replicaMetrics)
	for k, v := range g.lat.Flatten("cluster/") {
		m[k] = v
	}
	for k, v := range g.tracer.Metrics("telemetry/") {
		m[k] = v
	}
	return m
}

// aggregateStageHistograms merges the replicas' flattened per-stage
// latency histograms bucket-by-bucket into cluster-level ones and
// derives cluster-wide quantiles. This works because every replica
// buckets on the same bounds (telemetry.MsBounds): summing the le=N
// counts across replicas yields exactly the histogram a single global
// service would have recorded.
func aggregateStageHistograms(m map[string]float64, replicaMetrics []map[string]float64) {
	for _, stage := range []string{"queue_wait_ms", "run_ms", "total_ms"} {
		h := obs.NewHistogram(telemetry.MsBounds)
		for _, rm := range replicaMetrics {
			base := "service/" + stage
			n := int64(rm[base+"/count"])
			if n == 0 {
				continue
			}
			if min := int64(rm[base+"/min"]); h.N == 0 || min < h.Min {
				h.Min = min
			}
			if max := int64(rm[base+"/max"]); h.N == 0 || max > h.Max {
				h.Max = max
			}
			for i, b := range h.Bounds {
				h.Counts[i] += int64(rm[base+"/le="+strconv.FormatInt(b, 10)])
			}
			h.Counts[len(h.Counts)-1] += int64(rm[base+"/overflow"])
			h.N += n
			h.Sum += int64(rm[base+"/sum"])
		}
		if h.N == 0 {
			continue
		}
		telemetry.FlattenHistogram(m, "cluster/"+stage, h)
	}
}

// aggregateClassMetrics merges the replicas' per-SLO-class serving
// metrics: class latency histograms (same bucket-sum argument as the
// stage histograms — every replica uses the service msBounds, which
// equal telemetry.MsBounds) plus the SLO hit/miss counters. Class
// names are discovered from the replica keys, so a class only ever
// seen by one replica still appears cluster-wide.
func aggregateClassMetrics(m map[string]float64, replicaMetrics []map[string]float64) {
	const histPrefix = "service/class_total_ms/"
	classes := map[string]bool{}
	for _, rm := range replicaMetrics {
		for k := range rm {
			if rest, ok := strings.CutPrefix(k, histPrefix); ok {
				if class, ok := strings.CutSuffix(rest, "/count"); ok {
					classes[class] = true
				}
			}
		}
	}
	for class := range classes {
		h := obs.NewHistogram(telemetry.MsBounds)
		for _, rm := range replicaMetrics {
			base := histPrefix + class
			n := int64(rm[base+"/count"])
			if n == 0 {
				continue
			}
			if min := int64(rm[base+"/min"]); h.N == 0 || min < h.Min {
				h.Min = min
			}
			if max := int64(rm[base+"/max"]); h.N == 0 || max > h.Max {
				h.Max = max
			}
			for i, b := range h.Bounds {
				h.Counts[i] += int64(rm[base+"/le="+strconv.FormatInt(b, 10)])
			}
			h.Counts[len(h.Counts)-1] += int64(rm[base+"/overflow"])
			h.N += n
			h.Sum += int64(rm[base+"/sum"])
		}
		if h.N > 0 {
			telemetry.FlattenHistogram(m, "cluster/class_total_ms/"+class, h)
		}
		for _, ctr := range []string{"class_slo_ok/", "class_slo_miss/"} {
			var sum float64
			for _, rm := range replicaMetrics {
				sum += rm["service/"+ctr+class]
			}
			m["cluster/"+ctr+class] = sum
		}
	}
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Metrics(r.Context()))
}

// ClusterHealth is the gateway's /healthz body.
type ClusterHealth struct {
	Status   string `json:"status"` // ok | degraded | down
	Replicas int    `json:"replicas"`
	Healthy  int    `json:"healthy"`
	Draining bool   `json:"draining"`
	Policy   string `json:"policy"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := ClusterHealth{
		Replicas: len(g.reg.replicas),
		Healthy:  g.reg.Healthy(),
		Draining: g.isDraining(),
		Policy:   string(g.cfg.Policy),
	}
	switch {
	case h.Healthy == h.Replicas:
		h.Status = "ok"
	case h.Healthy > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	writeJSON(w, http.StatusOK, h)
}
