package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position. Transitions:
//
//	closed ──(consecutive failures ≥ threshold,
//	          or windowed error rate ≥ threshold)──► open
//	open ──(cooldown + deterministic jitter elapsed)──► half-open
//	half-open ──(probe succeeds)──► closed
//	half-open ──(probe fails)──► open   (cooldown doubles, capped)
type BreakerState int32

// Breaker states. The numeric values are exported in /metrics
// (replicas/<name>/breaker_state), so they are part of the metrics
// contract: 0 closed, 1 open, 2 half-open.
const (
	StateClosed BreakerState = iota
	StateOpen
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one replica's circuit breaker. Zero values take
// the documented defaults.
type BreakerConfig struct {
	// ConsecutiveFailures opens the breaker when this many failures
	// arrive back to back. Default 3.
	ConsecutiveFailures int
	// ErrorRateThreshold opens the breaker when the failure fraction
	// over the rolling window reaches it (only once MinSamples
	// outcomes are in the window). Default 0.5.
	ErrorRateThreshold float64
	// MinSamples is the window occupancy required before the error-rate
	// rule can fire (so one early failure cannot open a cold breaker).
	// Default 10.
	MinSamples int
	// Window is the rolling outcome window size. Default 20.
	Window int
	// Cooldown is the open→half-open base delay; the actual delay draws
	// deterministic jitter in [cooldown/2, cooldown] from Seed, and the
	// base doubles after every failed probe (capped at MaxCooldown).
	// Default 5s.
	Cooldown time.Duration
	// MaxCooldown caps the probe backoff. Default 60s.
	MaxCooldown time.Duration
	// Seed drives the deterministic probe jitter; breakers with
	// different seeds desynchronize their probes even when their
	// replicas fail in lockstep.
	Seed uint64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 3
	}
	if c.ErrorRateThreshold <= 0 {
		c.ErrorRateThreshold = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 60 * time.Second
	}
	return c
}

// Breaker is a per-replica circuit breaker fed by both the request
// path (passive accounting: every proxied request reports its outcome)
// and the health loop (active probing: an open breaker's next allowed
// check is the probe that can close it). Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu            sync.Mutex
	state         BreakerState
	consec        int    // consecutive failures while closed
	window        []bool // rolling outcomes, true = failure
	wIdx, wCount  int
	probeDeadline time.Time // open: when the next probe may go out
	probing       bool      // half-open: one probe in flight
	cooldown      time.Duration
	jitter        uint64

	opens, closes, rejects int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:      cfg,
		window:   make([]bool, cfg.Window),
		cooldown: cfg.Cooldown,
		jitter:   cfg.Seed | 1, // xorshift state must be non-zero
	}
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a request (or health probe) may go to the
// replica now. Closed always allows; open allows nothing until the
// probe deadline, at which point the breaker goes half-open and admits
// exactly one probe; half-open admits nothing while that probe is out.
// Every allowed call must be matched by a Report.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		if now.Before(b.probeDeadline) {
			b.rejects++
			return false
		}
		b.state = StateHalfOpen
		b.probing = true
		return true
	default: // StateHalfOpen
		if b.probing {
			b.rejects++
			return false
		}
		b.probing = true
		return true
	}
}

// Report feeds one outcome back. In the closed state it drives the
// consecutive-failure and error-rate rules; in half-open it resolves
// the probe — success closes the breaker (and resets the cooldown
// backoff), failure reopens it with a doubled cooldown. Late reports
// arriving after the breaker opened only update the window.
func (b *Breaker) Report(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.window[b.wIdx] = !ok
	b.wIdx = (b.wIdx + 1) % len(b.window)
	if b.wCount < len(b.window) {
		b.wCount++
	}
	switch b.state {
	case StateClosed:
		if ok {
			b.consec = 0
			return
		}
		b.consec++
		if b.consec >= b.cfg.ConsecutiveFailures || b.errorRateLocked() >= b.cfg.ErrorRateThreshold {
			b.openLocked(now)
		}
	case StateHalfOpen:
		b.probing = false
		if ok {
			b.state = StateClosed
			b.closes++
			b.consec = 0
			b.cooldown = b.cfg.Cooldown
			b.wCount, b.wIdx = 0, 0 // forget the outage's window
		} else {
			b.cooldown = min(b.cooldown*2, b.cfg.MaxCooldown)
			b.openLocked(now)
		}
	}
}

// Cancel unwinds an allowed call whose outcome says nothing about the
// replica — the caller's context ended before the request resolved.
// If that call was the half-open probe, the probe slot frees so the
// next Allow can try again; no outcome enters the window.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen && b.probing {
		b.probing = false
	}
}

// errorRateLocked is the failure fraction over the occupied window, or
// 0 before MinSamples outcomes have arrived.
func (b *Breaker) errorRateLocked() float64 {
	if b.wCount < b.cfg.MinSamples {
		return 0
	}
	fails := 0
	for i := 0; i < b.wCount; i++ {
		if b.window[i] {
			fails++
		}
	}
	return float64(fails) / float64(b.wCount)
}

// openLocked trips the breaker and schedules the next probe at
// cooldown with deterministic jitter in [cooldown/2, cooldown].
func (b *Breaker) openLocked(now time.Time) {
	b.state = StateOpen
	b.opens++
	b.consec = 0
	// xorshift64: deterministic per-breaker jitter stream.
	x := b.jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	b.jitter = x
	d := b.cooldown/2 + time.Duration(x%uint64(b.cooldown/2+1))
	b.probeDeadline = now.Add(d)
}

// Counters returns the transition and rejection tallies (opens,
// closes, rejects) for /metrics.
func (b *Breaker) Counters() (opens, closes, rejects int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.closes, b.rejects
}
